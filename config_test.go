package lap

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.json")
	cfg := DefaultConfig().WithHybridL3()
	cfg.Cores = 8
	cfg.UseDRAM = true
	cfg.PrefetchDegree = 2
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != 8 || got.L3SRAMWays != 4 || !got.UseDRAM || got.PrefetchDegree != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.L3Tech.WriteNJ != cfg.L3Tech.WriteNJ {
		t.Fatal("technology constants lost")
	}
}

func TestLoadConfigPartialUsesDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := writeFile(path, `{"Cores": 2}`); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 2 {
		t.Fatalf("override lost: %d", cfg.Cores)
	}
	if cfg.L3SizeBytes != DefaultConfig().L3SizeBytes || cfg.ClockHz != 3e9 {
		t.Fatal("defaults not applied to omitted fields")
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := filepath.Join(t.TempDir(), "invalid.json")
	if err := writeFile(invalid, `{"Cores": 0}`); err != nil {
		t.Fatal(err)
	}
	_, err := LoadConfig(invalid)
	if err == nil || !strings.Contains(err.Error(), "Cores") {
		t.Fatalf("invalid config error = %v", err)
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "Cores" {
		t.Fatalf("invalid config error is not a *FieldError naming Cores: %v", err)
	}
}

func TestValidateConfig(t *testing.T) {
	if err := ValidateConfig(DefaultConfig()); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"Cores", func(c *Config) { c.Cores = -1 }},
		{"BlockBytes", func(c *Config) { c.BlockBytes = 0 }},
		{"L1SizeBytes", func(c *Config) { c.L1Ways = 0 }},
		{"L2SizeBytes", func(c *Config) { c.L2SizeBytes = -4 }},
		{"L3SizeBytes", func(c *Config) { c.L3Ways = 0 }},
		{"L3SRAMWays", func(c *Config) { c.L3SRAMWays = 99 }},
		{"L3Banks", func(c *Config) { c.L3Banks = 3 }},
		{"ClockHz", func(c *Config) { c.ClockHz = 0 }},
		{"MLP", func(c *Config) { c.MLP = 0 }},
		{"PrefetchDegree", func(c *Config) { c.PrefetchDegree = -1 }},
		{"L3SizeBytes", func(c *Config) { c.L3SizeBytes = 3 << 20 }}, // 3MB/16w -> non-pow2 sets
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := ValidateConfig(cfg)
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.field)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != tc.field {
			t.Errorf("%s: error %v does not name the field", tc.field, err)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseConfig(t *testing.T) {
	// Empty input yields the validated defaults.
	cfg, err := ParseConfig(nil)
	if err != nil || cfg != DefaultConfig() {
		t.Fatalf("ParseConfig(nil) = %+v, %v", cfg, err)
	}
	// Partial overlays keep unmentioned defaults.
	cfg, err = ParseConfig([]byte(`{"Cores": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 2 || cfg.L3SizeBytes != DefaultConfig().L3SizeBytes {
		t.Fatalf("partial overlay: %+v", cfg)
	}
	// Invalid JSON and invalid machines both error.
	if _, err := ParseConfig([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ParseConfig([]byte(`{"Cores": -1}`)); err == nil {
		t.Fatal("invalid machine accepted")
	}
}
