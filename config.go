package lap

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine-configuration serialisation: Config is a plain value struct, so
// it round-trips through JSON. SaveConfig/LoadConfig let experiments be
// pinned to files and replayed (`lapsim -config machine.json`).

// SaveConfig writes cfg to path as indented JSON.
func SaveConfig(path string, cfg Config) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("lap: encoding config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lap: writing config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON machine configuration and validates it.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("lap: reading config: %w", err)
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		return Config{}, fmt.Errorf("lap: config %s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig decodes a (possibly partial) JSON machine configuration
// overlaid on DefaultConfig, and validates it. Empty input yields the
// defaults. This is the byte-level core of LoadConfig, shared with the
// lapserved request decoder.
func ParseConfig(data []byte) (Config, error) {
	// Start from the defaults so omitted fields stay sane.
	cfg := DefaultConfig()
	if len(data) > 0 {
		if err := json.Unmarshal(data, &cfg); err != nil {
			return Config{}, fmt.Errorf("decoding config: %w", err)
		}
	}
	if err := ValidateConfig(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ValidateConfig checks a configuration for the mistakes the simulator
// would otherwise panic on, returning a descriptive error.
func ValidateConfig(cfg Config) error {
	switch {
	case cfg.Cores <= 0:
		return fmt.Errorf("cores must be positive (got %d)", cfg.Cores)
	case cfg.BlockBytes <= 0:
		return fmt.Errorf("block size must be positive (got %d)", cfg.BlockBytes)
	case cfg.L1SizeBytes <= 0 || cfg.L1Ways <= 0:
		return fmt.Errorf("invalid L1 geometry %d/%d-way", cfg.L1SizeBytes, cfg.L1Ways)
	case cfg.L2SizeBytes <= 0 || cfg.L2Ways <= 0:
		return fmt.Errorf("invalid L2 geometry %d/%d-way", cfg.L2SizeBytes, cfg.L2Ways)
	case cfg.L3SizeBytes <= 0 || cfg.L3Ways <= 0:
		return fmt.Errorf("invalid L3 geometry %d/%d-way", cfg.L3SizeBytes, cfg.L3Ways)
	case cfg.L3SRAMWays < 0 || cfg.L3SRAMWays > cfg.L3Ways:
		return fmt.Errorf("hybrid SRAM ways %d out of range 0..%d", cfg.L3SRAMWays, cfg.L3Ways)
	case cfg.L3Banks <= 0 || cfg.L3Banks&(cfg.L3Banks-1) != 0:
		return fmt.Errorf("LLC banks must be a positive power of two (got %d)", cfg.L3Banks)
	case cfg.ClockHz <= 0:
		return fmt.Errorf("clock must be positive (got %g)", cfg.ClockHz)
	case cfg.BaseCPI <= 0 || cfg.MLP <= 0:
		return fmt.Errorf("timing parameters must be positive (BaseCPI %g, MLP %g)", cfg.BaseCPI, cfg.MLP)
	case cfg.PrefetchDegree < 0:
		return fmt.Errorf("prefetch degree must be non-negative (got %d)", cfg.PrefetchDegree)
	}
	for _, geom := range []struct {
		name        string
		size, ways  int
		sramBounded bool
	}{
		{"L1", cfg.L1SizeBytes, cfg.L1Ways, false},
		{"L2", cfg.L2SizeBytes, cfg.L2Ways, false},
		{"L3", cfg.L3SizeBytes, cfg.L3Ways, false},
	} {
		blocks := geom.size / cfg.BlockBytes
		if blocks%geom.ways != 0 {
			return fmt.Errorf("%s capacity not divisible into %d ways", geom.name, geom.ways)
		}
		sets := blocks / geom.ways
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("%s set count %d is not a power of two", geom.name, sets)
		}
	}
	return nil
}
