package lap

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine-configuration serialisation: Config is a plain value struct, so
// it round-trips through JSON. SaveConfig/LoadConfig let experiments be
// pinned to files and replayed (`lapsim -config machine.json`).

// SaveConfig writes cfg to path as indented JSON.
func SaveConfig(path string, cfg Config) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("lap: encoding config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lap: writing config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON machine configuration and validates it.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("lap: reading config: %w", err)
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		return Config{}, fmt.Errorf("lap: config %s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig decodes a (possibly partial) JSON machine configuration
// overlaid on DefaultConfig, and validates it. Empty input yields the
// defaults. This is the byte-level core of LoadConfig, shared with the
// lapserved request decoder.
func ParseConfig(data []byte) (Config, error) {
	// Start from the defaults so omitted fields stay sane.
	cfg := DefaultConfig()
	if len(data) > 0 {
		if err := json.Unmarshal(data, &cfg); err != nil {
			return Config{}, fmt.Errorf("decoding config: %w", err)
		}
	}
	if err := ValidateConfig(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ValidateConfig checks a configuration for the mistakes the simulator
// would otherwise panic on. Failures are *FieldError values naming the
// offending Config field.
func ValidateConfig(cfg Config) error {
	return cfg.Validate()
}

// ValidatePolicy resolves a policy name against the policy registry
// under cfg, returning the canonical spelling ("lap+dwb" → "LAP+DWB").
// Unknown names and policies cfg cannot run — hybrid-only on a uniform
// LLC, sampled-ineligible when cfg.SampleInterval > 0 — are *FieldError
// values on "Policy" carrying the valid-name list, the same error every
// entry point (CLI, HTTP API, library) reports.
func ValidatePolicy(cfg Config, p Policy) (Policy, error) {
	canon, err := cfg.ValidatePolicy(string(p))
	if err != nil {
		return "", err
	}
	return Policy(canon), nil
}
