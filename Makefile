# Developer entry points. `make ci` is the full gate: vet, build, the
# race-enabled test suite, and a one-shot run of the heaviest artifact
# benchmark. The race run narrows the determinism sweep to a
# representative artifact subset (see internal/experiments/race_on_test.go)
# but still hammers the singleflight memo and the warm pools.

GO ?= go

.PHONY: all build test race bench bench-json alloc-gate chaos ci obs-smoke policy-smoke quick resume-smoke sample-smoke serve serve-smoke trace-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=BenchmarkFig14 -benchtime=1x -run '^$$' .

# Capture the simulator benchmark suite into the committed BENCH_sim.json
# trajectory (label "after" by default; override with LABEL=before to
# record a baseline before starting a perf change). Each capture is
# stamped with the current git revision; same label+rev replaces the
# latest entry, anything else appends a new trajectory point.
LABEL ?= after
BENCH_SUITE = 'BenchmarkSim|BenchmarkCacheLookup|BenchmarkLoopAwareVictim|BenchmarkWorkloadGen|BenchmarkFig14$$|BenchmarkFig14Banks4|BenchmarkFig14Sampled'
bench-json:
	( $(GO) test -bench $(BENCH_SUITE) -benchmem -benchtime=1x -run '^$$' . && \
	  $(GO) test -bench BenchmarkAccessAllocs -benchmem -benchtime=200000x -run '^$$' ./internal/sim ) \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -rev $$(git rev-parse --short HEAD) -o BENCH_sim.json

# The zero-alloc regression gate: the steady-state access path must not
# allocate. TestAccessAllocsZero enforces it per controller; the awk pass
# double-checks that every reported BenchmarkAccessAllocs* line says
# exactly 0 allocs/op (and that at least one such line was produced).
alloc-gate:
	$(GO) test -run TestAccessAllocsZero ./internal/sim
	$(GO) test -bench BenchmarkAccessAllocs -benchmem -benchtime=100000x -run '^$$' ./internal/sim \
		| awk '/^BenchmarkAccessAllocs/ { n++; if ($$0 !~ / 0 allocs\/op/) { bad = 1; print "FAIL:", $$0 } else print } END { exit (n == 0 || bad) }'

# Policy-registry gate: regenerate the quick-scale policy-comparison
# artifacts (fig14/15/18/19/24 — every pre-registry policy) and require
# them byte-identical to the golden captured before the registry
# refactor, then generate ext-stt and require the competitor policies
# (reuse-detector, rd-copyback) present (see cmd/policysmoke).
policy-smoke:
	$(GO) run ./cmd/policysmoke

# Sampled-simulation speed/accuracy gate: one Fig. 14 mix, exact vs
# interval-sampled across the six STT-RAM policies, asserting the
# measured speedup floor and per-policy error bound (see cmd/samplesmoke
# and the "Sampled simulation" section of EXPERIMENTS.md).
sample-smoke:
	$(GO) run ./cmd/samplesmoke

# Crash-safe checkpointing gate: boot lapserved with -checkpoint-dir,
# SIGKILL it mid-simulation, restart on the same directory, re-issue the
# run, and require the response byte-identical to an uninterrupted
# reference with at least one warm-start restore (see cmd/resumesmoke).
resume-smoke:
	$(GO) build -o /tmp/lap-resume-smoke-lapserved ./cmd/lapserved
	$(GO) run ./cmd/resumesmoke -server /tmp/lap-resume-smoke-lapserved

# Race-enabled failure-domain suite: fault injection, panic isolation,
# typed corruption errors, retry/breaker/drain chaos scenarios.
chaos:
	$(GO) test -race -timeout 10m -run 'Chaos|Fault|Corrupt' ./...

ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -timeout 30m ./...
	$(GO) test -race -timeout 10m -run 'Chaos|Fault|Corrupt' ./...
	$(MAKE) alloc-gate
	$(MAKE) policy-smoke
	$(GO) test -bench=BenchmarkFig14 -benchtime=1x -run '^$$' .
	$(MAKE) bench-json
	$(GO) run ./cmd/lapserved -smoke
	$(MAKE) trace-smoke
	$(MAKE) sample-smoke
	$(MAKE) resume-smoke
	$(MAKE) obs-smoke

# Observability gate: boot an in-process lapserved, run a sweep while
# subscribed to /v1/events and assert the event story arrives in causal
# order with monotone sequence numbers (including a Last-Event-ID
# reconnect replay), require sweep output byte-identical with and
# without a subscriber, check /readyz flips during drain while /healthz
# holds, and download + validate every member of /debug/bundle (see
# cmd/obssmoke).
obs-smoke:
	$(GO) run ./cmd/obssmoke

# Boot lapserved on an ephemeral port, hit /healthz and /v1/run, fire a
# coalesced duplicate pair and assert the recalled counter advanced,
# then scrape /metrics and validate the Prometheus exposition (format,
# required series, computed-vs-recalled histogram split). Exits non-zero
# on any failure.
serve-smoke:
	$(GO) run ./cmd/lapserved -smoke

# Record a real simulation timeline with lapsim -trace and validate it
# with the strict cmd/tracecheck parser: span nesting (warmup and epochs
# inside the run), per-interval counter tracks, numeric samples. Exits
# non-zero if the trace exporter regresses.
trace-smoke:
	$(GO) run ./cmd/lapsim -policy LAP,non-inclusive -mix WH1 \
		-accesses 20000 -warmup 2000 -trace /tmp/lap-trace-smoke.json -interval 1000 >/dev/null
	$(GO) run ./cmd/tracecheck \
		-span run,warmup,epoch \
		-counter accesses,misses,writebacks,fills,redundant_fills,loop_blocks,bypasses \
		-nested warmup:run,epoch:run /tmp/lap-trace-smoke.json

# Run the simulation server on :8080 (see README "Serving simulations").
serve:
	$(GO) run ./cmd/lapserved

# Regenerate every artifact at reduced scale (serial vs parallel timing:
# add -jobs 1 / -jobs N and compare the -timings reports).
quick:
	$(GO) run ./cmd/lapexp -quick
