package lap

import (
	"errors"
	"strings"
	"testing"
)

// One canonical policy-name behavior for every entry point: the CLI
// (-policy), the library (NewController/ResolvePolicies), and the HTTP
// API all route through Config.ValidatePolicy / Config.ResolvePolicies,
// so this table is the contract all of them share.
func TestResolvePoliciesCanonical(t *testing.T) {
	stt := DefaultConfig()
	hybrid := DefaultConfig().WithHybridL3()
	sampled := DefaultConfig()
	sampled.SampleInterval = 10000

	allSTT, _, err := ResolvePolicies(stt, "all")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cfg     Config
		arg     string
		want    []Policy
		errPart string // non-empty: expect a FieldError containing it
	}{
		{name: "single canonical", cfg: stt, arg: "LAP", want: []Policy{PolicyLAP}},
		{name: "case folded", cfg: stt, arg: "lap", want: []Policy{PolicyLAP}},
		{name: "whitespace and empties", cfg: stt, arg: " LAP , ,exclusive ", want: []Policy{PolicyLAP, PolicyExclusive}},
		{name: "duplicates collapse", cfg: stt, arg: "LAP,lap,LAP", want: []Policy{PolicyLAP}},
		{name: "dwb suffix canonicalised", cfg: stt, arg: "lap+dwb", want: []Policy{"LAP+DWB"}},
		{name: "unknown name", cfg: stt, arg: "bogus", errPart: "unknown policy"},
		{name: "explicit hybrid-only on uniform LLC", cfg: stt, arg: "Lhybrid", errPart: "hybrid"},
		{name: "hybrid-only allowed on hybrid LLC", cfg: hybrid, arg: "Lhybrid", want: []Policy{PolicyLhybrid}},
		{name: "explicit exact-only in sampled mode", cfg: sampled, arg: "reuse-detector", errPart: "sampled"},
		{name: "empty list", cfg: stt, arg: " , ", errPart: "no policies"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, _, err := ResolvePolicies(tc.cfg, tc.arg)
			if tc.errPart != "" {
				if err == nil {
					t.Fatalf("ResolvePolicies(%q) accepted, want error containing %q (got %v)", tc.arg, tc.errPart, got)
				}
				var fe *FieldError
				if !errors.As(err, &fe) || fe.Field != "Policy" {
					t.Fatalf("ResolvePolicies(%q): error %v is not a Policy FieldError", tc.arg, err)
				}
				if !strings.Contains(err.Error(), tc.errPart) {
					t.Fatalf("ResolvePolicies(%q): error %q lacks %q", tc.arg, err, tc.errPart)
				}
				return
			}
			if err != nil {
				t.Fatalf("ResolvePolicies(%q): %v", tc.arg, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ResolvePolicies(%q): got %v, want %v", tc.arg, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ResolvePolicies(%q): got %v, want %v", tc.arg, got, tc.want)
				}
			}
		})
	}

	t.Run("all skips hybrid-only on uniform LLC", func(t *testing.T) {
		for _, p := range allSTT {
			if p == PolicyLhybrid {
				t.Fatalf("all on the STT config includes Lhybrid: %v", allSTT)
			}
		}
		_, notices, err := ResolvePolicies(stt, "all")
		if err != nil {
			t.Fatal(err)
		}
		if len(notices) != 1 || !strings.Contains(notices[0], "Lhybrid") {
			t.Fatalf("want one Lhybrid skip notice, got %v", notices)
		}
	})

	t.Run("all includes everything on hybrid LLC", func(t *testing.T) {
		got, notices, err := ResolvePolicies(hybrid, "all")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(Policies()) || len(notices) != 0 {
			t.Fatalf("hybrid all: got %v (notices %v), want every policy", got, notices)
		}
	})

	t.Run("all skips exact-only policies in sampled mode", func(t *testing.T) {
		got, notices, err := ResolvePolicies(sampled, "all")
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range got {
			if p == PolicyReuseDetector || p == PolicyRDCopyback {
				t.Fatalf("sampled all includes exact-only policy %s", p)
			}
		}
		var named int
		for _, n := range notices {
			if strings.Contains(n, string(PolicyReuseDetector)) || strings.Contains(n, string(PolicyRDCopyback)) {
				named++
			}
		}
		if named != 2 {
			t.Fatalf("want skip notices for both exact-only policies, got %v", notices)
		}
	})

	t.Run("unknown error lists valid names", func(t *testing.T) {
		_, err := ValidatePolicy(stt, "bogus")
		if err == nil {
			t.Fatal("unknown policy accepted")
		}
		for _, p := range Policies() {
			if !strings.Contains(err.Error(), string(p)) {
				t.Errorf("error %q lacks valid name %q", err, p)
			}
		}
	})
}

// TestSampledRefusalRegression pins the no-silent-wrong-answer rule for
// each exact-only policy: sampled entry points refuse with a typed
// FieldError instead of extrapolating from predictor state that cannot
// survive interval jumps.
func TestSampledRefusalRegression(t *testing.T) {
	cfg := smallConfig()
	cfg.SampleInterval = 5000
	for _, p := range []Policy{PolicyReuseDetector, PolicyRDCopyback} {
		t.Run(string(p), func(t *testing.T) {
			if _, err := RunSampled(cfg, p, smallMix(), 20000, 1); !isPolicyFieldError(err) {
				t.Fatalf("RunSampled(%s): got %v, want Policy FieldError", p, err)
			}
			prof, err := BuildSampleProfile(cfg, smallMix(), 20000, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunSampledProfile(cfg, p, prof); !isPolicyFieldError(err) {
				t.Fatalf("RunSampledProfile(%s): got %v, want Policy FieldError", p, err)
			}
			// The same policy runs exact: only the sampled path refuses.
			exact := cfg
			exact.SampleInterval = 0
			if _, err := Run(exact, p, smallMix(), 20000, 1); err != nil {
				t.Fatalf("exact Run(%s): %v", p, err)
			}
		})
	}
}

func isPolicyFieldError(err error) bool {
	var fe *FieldError
	return errors.As(err, &fe) && fe.Field == "Policy"
}
