package lap

// Crash-safe resumable runs: the public face of internal/checkpoint.
// A CheckpointStore durably snapshots simulator state at interval
// boundaries (Config.CheckpointEvery accesses); a re-issued run whose
// key matches a stored checkpoint restores it and fast-forwards, with
// results byte-identical to an uninterrupted run. Every durability
// failure — a full disk, a corrupt file, a version skew — degrades to
// a cold start and is counted in the store's metrics; it never fails
// the run.

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CheckpointStore is a directory of versioned, CRC-validated, digest-
// keyed checkpoint files, written atomically (temp file + rename) so a
// crash mid-write never publishes a torn entry.
type CheckpointStore = checkpoint.Store

// OpenCheckpointStore creates (if needed) and opens the store at dir.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return checkpoint.Open(dir) }

// RunResumable is Run with durable checkpoints: every
// cfg.CheckpointEvery accesses the machine state is persisted to st,
// and a matching earlier checkpoint (same normalized config, policy,
// mix, scale, and seed) is restored and fast-forwarded instead of
// re-simulating from access zero. A nil store or zero CheckpointEvery
// runs exactly like Run. Configurations whose state the checkpoint
// codec does not cover (coherent, MOESI-tracked, profiled, DRAM-backed,
// or sampled runs) silently run cold.
func RunResumable(cfg Config, p Policy, mix Mix, accesses, seed uint64, st *CheckpointStore) (Result, error) {
	if _, err := NewController(p, cfg); err != nil {
		return Result{}, err
	}
	if len(mix.Members) != cfg.Cores {
		return Result{}, fmt.Errorf("lap: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
	}
	wl := checkpoint.MixWorkload(mix.Name, mix.Members, cfg.Cores, accesses, seed)
	mkCtrl := func() core.Controller {
		ctrl, err := NewController(p, cfg)
		if err != nil {
			// Unreachable: the same inputs resolved above.
			panic(err)
		}
		return ctrl
	}
	mkSrcs := func() ([]trace.Source, error) { return sim.MixSources(mix, accesses, seed) }
	return checkpoint.ResumableRun(st, cfg, wl, string(p), mkCtrl, mkSrcs)
}

// LoadOrBuildSampleProfile is BuildSampleProfile backed by the
// checkpoint store: a digest-matching persisted profile is restored
// (skipping the functional profiling pass entirely — only the trace
// positions are regenerated), and a freshly built profile is persisted
// for the next process. built reports which path ran. A nil store
// always builds.
func LoadOrBuildSampleProfile(cfg Config, mix Mix, accesses, seed uint64, st *CheckpointStore) (prof *SampleProfile, built bool, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	if cfg.SampleInterval == 0 {
		return nil, false, fmt.Errorf("lap: LoadOrBuildSampleProfile needs cfg.SampleInterval > 0")
	}
	if len(mix.Members) != cfg.Cores {
		return nil, false, fmt.Errorf("lap: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
	}
	key := checkpoint.ProfileKey(cfg, checkpoint.MixWorkload(mix.Name, mix.Members, cfg.Cores, accesses, seed))
	codec := checkpoint.ProfileCodec[*sample.Profile]{
		Encode: func(p *sample.Profile) []byte { return p.Encode() },
		Decode: func(b []byte) (*sample.Profile, error) {
			srcs, err := sim.MixSources(mix, accesses, seed)
			if err != nil {
				return nil, err
			}
			return sample.DecodeProfile(b, srcs)
		},
	}
	intervals := func(p *sample.Profile) uint64 { return uint64(len(p.Intervals)) }
	build := func() (*sample.Profile, error) {
		srcs, err := sim.MixSources(mix, accesses, seed)
		if err != nil {
			return nil, err
		}
		return sample.BuildProfile(cfg, srcs, cfg.SampleInterval)
	}
	return checkpoint.LoadOrBuildProfile(st, key, intervals, codec, build)
}
