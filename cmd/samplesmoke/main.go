// Command samplesmoke checks the sampled simulator's speed/accuracy
// contract on a real Fig. 14 configuration: it runs one Table III mix
// across the paper's policies twice — exact, then interval-sampled with
// one shared profile — and asserts that sampling was at least
// -min-speedup times faster while every policy's EPI and LLC miss rate
// stayed within -max-err relative error of the exact run.
//
// This is the `make sample-smoke` gate: it fails loudly (non-zero exit,
// per-policy table on stdout) when a change to the sampling subsystem
// degrades either side of the trade-off.
//
// The default bounds are the measured honest operating point of the
// shared-profile sampler at this scale (see EXPERIMENTS.md): ~3x
// wall-clock speedup over six policies with worst-case relative error
// under 6%. The profiling pass costs ~0.8x of one detailed run, so the
// asymptotic speedup for a six-policy sweep is bounded near 7x; the
// original 5x/2% aspiration is only reachable per-policy-warmed, which
// forfeits the shared-profile amortization this gate exercises.
//
// Usage:
//
//	samplesmoke [-mix WL1] [-accesses 200000] [-seed 2016]
//	            [-interval 1000] [-clusters 8] [-warmup 1]
//	            [-min-speedup 2] [-max-err 0.06]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	lap "repro"
)

func main() {
	mixName := flag.String("mix", "WL1", "Table III mix to compare on")
	accesses := flag.Uint64("accesses", 200_000, "per-core trace length")
	seed := flag.Uint64("seed", 2016, "workload seed")
	interval := flag.Uint64("interval", 1000, "sampled-mode interval length (accesses per core)")
	clusters := flag.Int("clusters", 8, "detailed representative intervals per run (0 = auto)")
	warmup := flag.Int("warmup", 1, "functional re-warm intervals before each representative")
	minSpeedup := flag.Float64("min-speedup", 2, "fail if sampled mode is not at least this many times faster")
	maxErr := flag.Float64("max-err", 0.06, "fail if any policy's EPI or miss-rate relative error exceeds this")
	flag.Parse()

	if err := run(*mixName, *accesses, *seed, *interval, *clusters, *warmup, *minSpeedup, *maxErr); err != nil {
		fmt.Fprintf(os.Stderr, "samplesmoke: %v\n", err)
		os.Exit(1)
	}
}

func run(mixName string, accesses, seed, interval uint64, clusters, warmup int, minSpeedup, maxErr float64) error {
	var mix lap.Mix
	found := false
	for _, m := range lap.TableIII() {
		if strings.EqualFold(m.Name, mixName) {
			mix, found = m, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown mix %q (want a Table III name)", mixName)
	}
	cfg := lap.DefaultConfig()
	// The Fig. 14 policy set: everything evaluated on the default
	// STT-RAM LLC (Lhybrid is excluded — it needs the hybrid geometry).
	policies := []lap.Policy{
		lap.PolicyNonInclusive, lap.PolicyExclusive, lap.PolicyInclusive,
		lap.PolicyFLEXclusion, lap.PolicyDswitch, lap.PolicyLAP,
	}

	// Exact pass: the ground truth and the speed baseline. Serial on
	// purpose — the comparison is simulator work, not scheduler luck.
	type truth struct {
		missRate float64
		epi      float64
	}
	exact := make(map[lap.Policy]truth, len(policies))
	exactStart := time.Now()
	for _, p := range policies {
		r, err := lap.Run(cfg, p, mix, accesses, seed)
		if err != nil {
			return fmt.Errorf("exact %s: %w", p, err)
		}
		exact[p] = truth{
			missRate: float64(r.Met.L3Misses) / float64(r.Met.L3Accesses),
			epi:      r.EPI.Total(),
		}
	}
	exactDur := time.Since(exactStart)

	// Sampled pass: one profiling pass shared by every policy, exactly
	// how a sampled sweep amortises it.
	scfg := cfg
	scfg.SampleInterval = interval
	scfg.SampleClusters = clusters
	scfg.SampleWarmup = warmup
	sampledStart := time.Now()
	prof, err := lap.BuildSampleProfile(scfg, mix, accesses, seed)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	profDur := time.Since(sampledStart)
	type sampledRes struct {
		missRate float64
		epi      float64
		est      *lap.SampleEstimate
	}
	sampled := make(map[lap.Policy]sampledRes, len(policies))
	for _, p := range policies {
		r, err := lap.RunSampledProfile(scfg, p, prof)
		if err != nil {
			return fmt.Errorf("sampled %s: %w", p, err)
		}
		sampled[p] = sampledRes{
			missRate: float64(r.Met.L3Misses) / float64(r.Met.L3Accesses),
			epi:      r.EPI.Total(),
			est:      r.Sample,
		}
	}
	sampledDur := time.Since(sampledStart)

	speedup := exactDur.Seconds() / sampledDur.Seconds()
	fmt.Printf("samplesmoke: %s x %d policies, %d accesses/core, interval %d, clusters %d, warmup %d\n",
		mix.Name, len(policies), accesses, interval, clusters, warmup)
	fmt.Printf("  exact   %8.2fs\n  sampled %8.2fs (%.2fs profile + %d replays)\n  speedup %8.2fx (floor %.1fx)\n",
		exactDur.Seconds(), sampledDur.Seconds(), profDur.Seconds(), len(policies), speedup, minSpeedup)

	worstMiss, worstEPI := 0.0, 0.0
	fmt.Printf("  %-16s %12s %12s %10s %10s\n", "policy", "miss exact", "miss sampled", "miss err", "EPI err")
	var failures []string
	for _, p := range policies {
		e, s := exact[p], sampled[p]
		missErr := relErr(s.missRate, e.missRate)
		epiErr := relErr(s.epi, e.epi)
		if missErr > worstMiss {
			worstMiss = missErr
		}
		if epiErr > worstEPI {
			worstEPI = epiErr
		}
		fmt.Printf("  %-16s %12.5f %12.5f %9.2f%% %9.2f%%\n",
			p, e.missRate, s.missRate, 100*missErr, 100*epiErr)
		if missErr > maxErr {
			failures = append(failures, fmt.Sprintf("%s miss-rate error %.2f%% > %.2f%%", p, 100*missErr, 100*maxErr))
		}
		if epiErr > maxErr {
			failures = append(failures, fmt.Sprintf("%s EPI error %.2f%% > %.2f%%", p, 100*epiErr, 100*maxErr))
		}
	}
	if est := sampled[policies[0]].est; est != nil {
		fmt.Printf("  estimate: %d/%d intervals detailed, %.1fx work reduction, miss ±%.2f%%, EPI ±%.2f%% (95%% CI)\n",
			est.IntervalsDetailed, est.IntervalsProfiled, est.WorkReduction,
			100*est.MissRateRelCI, 100*est.EPIRelCI)
	}
	fmt.Printf("  worst error: miss %.2f%%, EPI %.2f%% (bound %.2f%%)\n",
		100*worstMiss, 100*worstEPI, 100*maxErr)

	if speedup < minSpeedup {
		failures = append(failures, fmt.Sprintf("speedup %.2fx below floor %.1fx", speedup, minSpeedup))
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d check(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}

	// Profile persistence: a second sweep over the same workload must
	// restore the profile from the checkpoint store — skipping the
	// functional pass entirely — and replay to identical results.
	want := make(map[lap.Policy]sampledOut, len(policies))
	for p, s := range sampled {
		want[p] = sampledOut{missRate: s.missRate, epi: s.epi}
	}
	if err := checkProfilePersistence(scfg, mix, accesses, seed, policies, want); err != nil {
		return fmt.Errorf("profile persistence: %w", err)
	}

	fmt.Println("samplesmoke: OK")
	return nil
}

// sampledOut is the comparable slice of one sampled run's outcome.
type sampledOut struct {
	missRate float64
	epi      float64
}

// checkProfilePersistence builds the profile once through a checkpoint
// store, loads it back in a simulated second process, and requires (a)
// the reload to skip the functional pass (built=false) and (b) every
// policy's replay over the restored profile to match the in-process
// sweep bit for bit.
func checkProfilePersistence(scfg lap.Config, mix lap.Mix, accesses, seed uint64, policies []lap.Policy, want map[lap.Policy]sampledOut) error {
	dir, err := os.MkdirTemp("", "samplesmoke-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := lap.OpenCheckpointStore(dir)
	if err != nil {
		return err
	}
	if _, built, err := lap.LoadOrBuildSampleProfile(scfg, mix, accesses, seed, st); err != nil {
		return fmt.Errorf("first build: %w", err)
	} else if !built {
		return fmt.Errorf("first build reported a cache hit in an empty store")
	}
	start := time.Now()
	prof, built, err := lap.LoadOrBuildSampleProfile(scfg, mix, accesses, seed, st)
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	if built {
		return fmt.Errorf("second sweep re-ran the functional pass instead of restoring the persisted profile")
	}
	for _, p := range policies {
		r, err := lap.RunSampledProfile(scfg, p, prof)
		if err != nil {
			return fmt.Errorf("replay %s: %w", p, err)
		}
		got := sampledOut{
			missRate: float64(r.Met.L3Misses) / float64(r.Met.L3Accesses),
			epi:      r.EPI.Total(),
		}
		if got != want[p] {
			return fmt.Errorf("%s replay over the restored profile diverged: miss %v vs %v, EPI %v vs %v",
				p, got.missRate, want[p].missRate, got.epi, want[p].epi)
		}
	}
	fmt.Printf("  profile persistence: restored in %.2fs, %d policies replay identical\n",
		time.Since(start).Seconds(), len(policies))
	return nil
}

// relErr is |got-want|/|want| (0 when both are zero).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}
