// Command lapexp regenerates the paper's tables and figures. With no
// arguments it runs everything; otherwise pass artifact IDs such as
// "fig2", "fig14", "table1".
//
// Independent simulation runs inside each artifact execute on a worker
// pool (-jobs, default one worker per CPU); tables are byte-identical
// for any -jobs value, including the fully serial -jobs 1.
//
// Each artifact is its own failure domain: a generator that panics (a
// corrupt run, an injected fault) is reported and skipped, the remaining
// artifacts still generate, and the process exits non-zero. The
// LAP_FAULTS environment variable arms internal/fault injection points
// for chaos runs.
//
// Usage:
//
//	lapexp [-quick] [-accesses N] [-seed S] [-jobs N] [-timings out.json]
//	       [-mode exact|sampled] [-interval N] [-clusters K] [artifact ...]
//
// The default -mode exact is bit-reproducible run to run. -mode sampled
// switches eligible runs to interval-sampled simulation (one functional
// profiling pass per workload, detailed simulation of one
// representative interval per cluster, extrapolation by cluster
// weight): ~10-50x faster sweeps at a small, reported accuracy cost.
// See EXPERIMENTS.md "Sampled simulation".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
)

// artifactTiming is one artifact's perf record in the -timings report.
type artifactTiming struct {
	Artifact string `json:"artifact"`
	// Seconds is the artifact's wall-clock generation time.
	Seconds float64 `json:"seconds"`
	// Runs is the number of simulations actually executed; Recalled the
	// number served from the process-wide memo.
	Runs     uint64 `json:"runs"`
	Recalled uint64 `json:"recalled"`
	// RunsPerSec is the executed-simulation throughput.
	RunsPerSec float64 `json:"runs_per_sec"`
}

// artifactFailure records one artifact that could not be generated.
type artifactFailure struct {
	Artifact string `json:"artifact"`
	Error    string `json:"error"`
}

// timingReport is the -timings JSON document: enough context to compare
// run rates across machines, scales, and future PRs. Failures is empty
// on a clean run, so clean reports are byte-identical to pre-failure-
// domain ones.
type timingReport struct {
	Jobs         int               `json:"jobs"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	Accesses     uint64            `json:"accesses"`
	Seed         uint64            `json:"seed"`
	RandomMixes  int               `json:"random_mixes"`
	TotalSeconds float64           `json:"total_seconds"`
	TotalRuns    uint64            `json:"total_runs"`
	RunsPerSec   float64           `json:"runs_per_sec"`
	Artifacts    []artifactTiming  `json:"artifacts"`
	Failures     []artifactFailure `json:"failures,omitempty"`
	// Counters is the obs snapshot of the process-wide memo and pool
	// instrumentation ("lapexp_memo_computed_total" etc.), the same series
	// lapserved exposes on /metrics. Populated only for -timings runs.
	Counters map[string]float64 `json:"counters,omitempty"`
}

func main() {
	if n, err := fault.ArmFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "lapexp: %s: %v\n", fault.EnvVar, err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "[%d fault spec(s) armed from %s]\n", n, fault.EnvVar)
	}
	quick := flag.Bool("quick", false, "reduced scale for a fast smoke run")
	accesses := flag.Uint64("accesses", 0, "override per-core trace length")
	seed := flag.Uint64("seed", 0, "override workload seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "concurrent simulation runs (1 = serial)")
	banks := flag.Int("banks", 0, "intra-run parallelism width per simulation (tables identical at any value)")
	list := flag.Bool("list", false, "list available artifacts and exit")
	csvDir := flag.String("csv", "", "also save each artifact as CSV into this directory")
	timings := flag.String("timings", "", "write per-artifact wall-clock and runs/sec JSON to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace-event timeline of every simulation cell to this file (.jsonl for JSONL)")
	mode := flag.String("mode", "exact", "simulation mode: exact (default, bit-reproducible) or sampled (interval sampling, estimates)")
	interval := flag.Uint64("interval", 0, "sampled mode: interval length in accesses per core (0 = accesses/50, min 1000)")
	clusters := flag.Int("clusters", 0, "sampled mode: detailed intervals per run (0 = ~sqrt(intervals))")
	sampleWarmup := flag.Int("sample-warmup", 1, "sampled mode: functional re-warm intervals before each representative")
	checkpointDir := flag.String("checkpoint-dir", "", "durable checkpoint store: runs snapshot and resume across invocations (tables byte-identical either way)")
	checkpointEvery := flag.Uint64("checkpoint-every", 1_000_000, "checkpoint spacing in accesses, summed over cores (with -checkpoint-dir)")
	eventsOut := flag.String("events", "", `append cell lifecycle events (cell.start/finish/failed) as JSON lines to this file ("-" = stderr; tables byte-identical either way)`)
	flag.Parse()

	opt := experiments.Defaults()
	if *quick {
		opt = experiments.Quick()
	}
	if *accesses > 0 {
		opt.Accesses = *accesses
	}
	if *seed > 0 {
		opt.Seed = *seed
	}
	opt.Jobs = *jobs
	opt.Banks = *banks
	switch *mode {
	case "exact":
	case "sampled":
		opt.SampleInterval = *interval
		if opt.SampleInterval == 0 {
			opt.SampleInterval = opt.Accesses / 50
		}
		if opt.SampleInterval < 1000 {
			opt.SampleInterval = 1000
		}
		opt.SampleClusters = *clusters
		opt.SampleWarmup = *sampleWarmup
	default:
		fmt.Fprintf(os.Stderr, "lapexp: unknown -mode %q (want exact or sampled)\n", *mode)
		os.Exit(2)
	}
	if *traceOut != "" {
		// Tables stay byte-identical; the tracer only observes the cells
		// (wall-clock spans, memo compute-vs-recall provenance).
		opt.Trace = trace.New(0)
	}
	if *checkpointDir != "" {
		st, err := checkpoint.Open(*checkpointDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lapexp: -checkpoint-dir: %v\n", err)
			os.Exit(1)
		}
		opt.Checkpoints = st
		opt.CheckpointEvery = *checkpointEvery
	}
	if *eventsOut != "" {
		// Observation-only, like -trace: each executed cell's start/finish
		// lands as one JSON line, letting a long sweep be watched with
		// `tail -f` — the tables themselves stay byte-identical.
		w := io.Writer(os.Stderr)
		if *eventsOut != "-" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lapexp: -events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		opt.Journal = journal.New(0, slog.New(slog.NewJSONHandler(w, nil)))
	}

	all := experiments.Registry(opt)
	if *list {
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = experiments.Order()
	}
	report, err := generate(opt, targets, *csvDir, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
		os.Exit(1)
	}
	if *timings != "" {
		attachCounters(&report)
		buf, err := encodeTimings(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*timings, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[timings saved to %s]\n", *timings)
	}
	if *traceOut != "" {
		if err := writeTrace(opt.Trace, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[trace saved to %s]\n", *traceOut)
	}
	if len(report.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "lapexp: %d of %d artifact(s) failed\n",
			len(report.Failures), len(report.Failures)+len(report.Artifacts))
		os.Exit(1)
	}
}

// writeTrace exports the per-cell timeline recorded during generate.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// generate runs the named artifacts under opt, printing each table to
// stdout (and CSV into csvDir when non-empty), and returns the timing
// report. Split from main so tests can drive the -timings path without
// exec'ing the binary.
func generate(opt experiments.Options, targets []string, csvDir string, stdout, stderr io.Writer) (timingReport, error) {
	all := experiments.Registry(opt)
	report := timingReport{
		Jobs:        opt.Jobs,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Accesses:    opt.Accesses,
		Seed:        opt.Seed,
		RandomMixes: opt.RandomMixes,
	}
	allStart := time.Now()
	for _, name := range targets {
		gen, ok := all[strings.ToLower(name)]
		if !ok {
			return report, fmt.Errorf("unknown artifact %q (try -list)", name)
		}
		before := experiments.Stats()
		start := time.Now()
		tab, genErr := runArtifact(gen)
		elapsed := time.Since(start)
		after := experiments.Stats()
		if genErr != nil {
			// The artifact is its own failure domain: report, skip, and
			// keep generating the rest.
			report.Failures = append(report.Failures, artifactFailure{
				Artifact: strings.ToLower(name),
				Error:    genErr.Error(),
			})
			fmt.Fprintf(stderr, "[%s FAILED after %v: %v]\n", name, elapsed.Round(time.Millisecond), genErr)
			continue
		}
		tab.Fprint(stdout)
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return report, err
			}
			path, err := tab.SaveCSV(csvDir)
			if err != nil {
				return report, err
			}
			fmt.Fprintf(stderr, "[saved %s]\n", path)
		}
		runs := after.Computed - before.Computed
		rate := 0.0
		if s := elapsed.Seconds(); s > 0 {
			rate = float64(runs) / s
		}
		report.Artifacts = append(report.Artifacts, artifactTiming{
			Artifact:   strings.ToLower(name),
			Seconds:    elapsed.Seconds(),
			Runs:       runs,
			Recalled:   after.Recalled - before.Recalled,
			RunsPerSec: rate,
		})
		fmt.Fprintf(stderr, "[%s done in %v: %d runs, %d recalled]\n",
			name, elapsed.Round(time.Millisecond), runs, after.Recalled-before.Recalled)
	}
	report.TotalSeconds = time.Since(allStart).Seconds()
	for _, a := range report.Artifacts {
		report.TotalRuns += a.Runs
	}
	if report.TotalSeconds > 0 {
		report.RunsPerSec = float64(report.TotalRuns) / report.TotalSeconds
	}
	return report, nil
}

// runArtifact executes one generator with panic isolation: a simulation
// that dies (experiments.run panics with the failing cell's label) costs
// its own artifact, never the whole invocation.
func runArtifact(gen experiments.Generator) (tab *experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return gen(), nil
}

// attachCounters embeds the obs snapshot of the process-wide memo and
// pool instrumentation into the report, under the same series names
// lapserved exposes on /metrics. Snapshot-time registration: the
// counters are cumulative process atomics, so registering after the runs
// reads the same values as registering before them — and runs without
// -timings never touch a registry at all.
func attachCounters(report *timingReport) {
	reg := obs.NewRegistry()
	experiments.RegisterMetrics(reg, "lapexp")
	report.Counters = reg.Snapshot()
}

// encodeTimings renders the -timings document exactly as written to disk.
func encodeTimings(report timingReport) ([]byte, error) {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
