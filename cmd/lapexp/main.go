// Command lapexp regenerates the paper's tables and figures. With no
// arguments it runs everything; otherwise pass artifact IDs such as
// "fig2", "fig14", "table1".
//
// Usage:
//
//	lapexp [-quick] [-accesses N] [-seed S] [artifact ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for a fast smoke run")
	accesses := flag.Uint64("accesses", 0, "override per-core trace length")
	seed := flag.Uint64("seed", 0, "override workload seed")
	list := flag.Bool("list", false, "list available artifacts and exit")
	csvDir := flag.String("csv", "", "also save each artifact as CSV into this directory")
	flag.Parse()

	opt := experiments.Defaults()
	if *quick {
		opt = experiments.Quick()
	}
	if *accesses > 0 {
		opt.Accesses = *accesses
	}
	if *seed > 0 {
		opt.Seed = *seed
	}

	all := experiments.Registry(opt)
	if *list {
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = experiments.Order()
	}
	for _, name := range targets {
		gen, ok := all[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "lapexp: unknown artifact %q (try -list)\n", name)
			os.Exit(1)
		}
		start := time.Now()
		tab := gen()
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
				os.Exit(1)
			}
			path, err := tab.SaveCSV(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lapexp: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[saved %s]\n", path)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
