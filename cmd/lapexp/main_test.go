package main

import (
	"encoding/json"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// tinyOptions keeps the test's simulations cheap.
func tinyOptions() experiments.Options {
	opt := experiments.Quick()
	opt.Accesses = 500
	opt.Jobs = 2
	return opt
}

// TestTimingsReportRoundTrip drives the -timings path end to end:
// generate a real artifact at tiny scale, encode the report exactly as
// `lapexp -timings out.json` writes it, and unmarshal it back into the
// typed struct. A field rename or dropped json tag breaks this test
// before it breaks a downstream consumer of the timings file.
func TestTimingsReportRoundTrip(t *testing.T) {
	experiments.ResetMemo()
	var tables strings.Builder
	report, err := generate(tinyOptions(), []string{"fig2"}, "", &tables, io.Discard)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if tables.Len() == 0 {
		t.Fatal("artifact printed no table")
	}

	buf, err := encodeTimings(report)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back timingReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("the emitted timings JSON does not unmarshal: %v", err)
	}

	if back.Jobs != 2 || back.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("context fields lost: jobs=%d gomaxprocs=%d", back.Jobs, back.GOMAXPROCS)
	}
	if back.Accesses != 500 {
		t.Errorf("accesses: got %d, want 500", back.Accesses)
	}
	if len(back.Artifacts) != 1 {
		t.Fatalf("artifacts: got %d entries, want 1", len(back.Artifacts))
	}
	a := back.Artifacts[0]
	if a.Artifact != "fig2" {
		t.Errorf("artifact name: %q", a.Artifact)
	}
	if a.Runs == 0 {
		t.Error("artifact reports zero executed runs")
	}
	if a.Seconds <= 0 || a.RunsPerSec <= 0 {
		t.Errorf("timing fields not populated: seconds=%v runs/sec=%v", a.Seconds, a.RunsPerSec)
	}
	if back.TotalRuns != a.Runs {
		t.Errorf("total runs %d != artifact runs %d", back.TotalRuns, a.Runs)
	}
	if back.TotalSeconds <= 0 || back.RunsPerSec <= 0 {
		t.Errorf("totals not populated: %+v", back)
	}

	// The document must survive a second encode byte-identically (the
	// struct has no unkeyed or dropped fields).
	buf2, err := encodeTimings(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Error("timings JSON is not stable across a decode/encode cycle")
	}
}

// TestTimingsCounters: the counters block carries the obs snapshot of
// the process-wide memo/pool instrumentation and agrees with the
// artifact timing fields, and it survives the JSON round trip.
func TestTimingsCounters(t *testing.T) {
	experiments.ResetMemo()
	report, err := generate(tinyOptions(), []string{"fig2"}, "", io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	attachCounters(&report)
	computed := report.Counters["lapexp_memo_computed_total"]
	if computed < float64(report.TotalRuns) {
		t.Errorf("counters computed=%v below report total runs %d", computed, report.TotalRuns)
	}
	if _, ok := report.Counters["lapexp_pool_tasks_total"]; !ok {
		t.Error("pool counters missing from snapshot")
	}

	buf, err := encodeTimings(report)
	if err != nil {
		t.Fatal(err)
	}
	var back timingReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["lapexp_memo_computed_total"] != computed {
		t.Errorf("counters lost in round trip: %v != %v",
			back.Counters["lapexp_memo_computed_total"], computed)
	}
}

// TestGenerateUnknownArtifact pins the error (not os.Exit) contract of
// the extracted generate function.
func TestGenerateUnknownArtifact(t *testing.T) {
	_, err := generate(tinyOptions(), []string{"fig999"}, "", io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "fig999") {
		t.Fatalf("want an unknown-artifact error naming fig999, got %v", err)
	}
}

// TestChaosGeneratePartialResults pins the per-artifact failure domain:
// a panic injected into the first artifact's first simulation costs that
// artifact alone. It lands in report.Failures with the failing cell's
// label, and the remaining artifact still generates and prints.
func TestChaosGeneratePartialResults(t *testing.T) {
	experiments.ResetMemo()
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.Spec{Point: fault.PointExpRun, Mode: fault.ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}

	opt := tinyOptions()
	opt.Jobs = 1 // serial: the Count:1 panic deterministically hits fig2's first cell
	var tables strings.Builder
	report, err := generate(opt, []string{"fig2", "fig4"}, "", &tables, io.Discard)
	if err != nil {
		t.Fatalf("generate returned a hard error; want partial results: %v", err)
	}

	if len(report.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly 1", report.Failures)
	}
	f := report.Failures[0]
	if f.Artifact != "fig2" {
		t.Errorf("failed artifact = %q, want fig2", f.Artifact)
	}
	if !strings.Contains(f.Error, "experiments: run") {
		t.Errorf("failure error %q does not name the failing cell", f.Error)
	}
	if len(report.Artifacts) != 1 || report.Artifacts[0].Artifact != "fig4" {
		t.Fatalf("artifacts = %+v, want fig4 alone", report.Artifacts)
	}
	if tables.Len() == 0 {
		t.Error("surviving artifact printed no table")
	}

	// The failed run was never memoised: disarmed, the same artifact
	// regenerates cleanly on the same process-wide memo.
	fault.Reset()
	healed, err := generate(opt, []string{"fig2"}, "", io.Discard, io.Discard)
	if err != nil || len(healed.Failures) != 0 {
		t.Fatalf("healed generate: err=%v failures=%+v", err, healed.Failures)
	}
}

// TestGenerateRecallsAcrossArtifacts checks the report's recalled
// counters reflect the process-wide memo: generating the same artifact
// twice executes zero new runs the second time.
func TestGenerateRecallsAcrossArtifacts(t *testing.T) {
	experiments.ResetMemo()
	report, err := generate(tinyOptions(), []string{"fig2", "fig2"}, "", io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Artifacts) != 2 {
		t.Fatalf("got %d artifacts", len(report.Artifacts))
	}
	first, second := report.Artifacts[0], report.Artifacts[1]
	if first.Runs == 0 {
		t.Error("first pass executed no runs")
	}
	if second.Runs != 0 {
		t.Errorf("second pass recomputed %d runs; want 0 (memo recall)", second.Runs)
	}
	if second.Recalled == 0 {
		t.Error("second pass recalled nothing")
	}
}

// TestGenerateBankInvariance pins the banked engine's user-facing
// contract at the artifact level: the rendered tables (the exact bytes
// lapexp prints) are identical whether simulations run serially or
// sharded across intra-run workers, at any bank count.
func TestGenerateBankInvariance(t *testing.T) {
	render := func(banks int) string {
		experiments.ResetMemo()
		opt := tinyOptions()
		opt.Banks = banks
		var tables strings.Builder
		if _, err := generate(opt, []string{"fig2", "fig14"}, "", &tables, io.Discard); err != nil {
			t.Fatal(err)
		}
		return tables.String()
	}
	serial := render(0)
	if serial == "" {
		t.Fatal("serial render produced no output")
	}
	for _, banks := range []int{1, 4, 8} {
		if got := render(banks); got != serial {
			t.Errorf("tables at Banks=%d differ from serial render", banks)
		}
	}
}
