package main

// Strict parsers for the two export formats internal/obs/trace writes.
// Field sets are closed (DisallowUnknownFields) and numbers are kept as
// json.Number so span IDs round-trip without float64 truncation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// event is one validated record in either format, normalised for check.
type event struct {
	index  int // position in the file, for diagnostics
	ph     string
	name   string
	pid    int
	tid    uint64
	ts     int64
	dur    int64
	spanID uint64
	parent uint64
}

// chromeDoc is the exact document WriteChromeTrace produces.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Unit        string        `json:"displayTimeUnit"`
}

// chromeEvent mirrors the exporter's record; pointer fields distinguish
// "absent" from zero so required-field checks are real.
type chromeEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	TS   *int64                     `json:"ts"`
	Dur  *int64                     `json:"dur"`
	Pid  *int                       `json:"pid"`
	Tid  *uint64                    `json:"tid"`
	ID   string                     `json:"id"`
	Args map[string]json.RawMessage `json:"args"`
}

// parseChrome validates a Chrome trace-event JSON object and returns its
// events. Any deviation from the exporter's promised shape is an error.
func parseChrome(data []byte) ([]event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var doc chromeDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the trace object")
	}
	if doc.Unit != "ms" {
		return nil, fmt.Errorf("displayTimeUnit %q, want %q", doc.Unit, "ms")
	}
	var out []event
	for i, ce := range doc.TraceEvents {
		if ce.TS == nil || ce.Pid == nil || ce.Tid == nil {
			return nil, fmt.Errorf("event %d: missing ts/pid/tid", i)
		}
		ev := event{
			index: i, ph: ce.Ph, name: ce.Name,
			pid: *ce.Pid, tid: *ce.Tid, ts: *ce.TS,
		}
		if ce.Dur != nil {
			ev.dur = *ce.Dur
		}
		switch ce.Ph {
		case "M":
			if err := checkMeta(i, ce); err != nil {
				return nil, err
			}
			continue // metadata carries no timeline payload
		case "X":
			if ce.Dur == nil {
				return nil, fmt.Errorf("event %d: complete span %q without dur", i, ce.Name)
			}
			id, err := argUint(ce.Args, "span_id")
			if err != nil {
				return nil, fmt.Errorf("event %d: span %q: %v", i, ce.Name, err)
			}
			ev.spanID = id
			if _, ok := ce.Args["parent_id"]; ok {
				p, err := argUint(ce.Args, "parent_id")
				if err != nil {
					return nil, fmt.Errorf("event %d: span %q: %v", i, ce.Name, err)
				}
				ev.parent = p
			}
		case "C":
			if len(ce.Args) == 0 {
				return nil, fmt.Errorf("event %d: counter %q has no samples", i, ce.Name)
			}
			for k, v := range ce.Args {
				if _, err := rawNumber(v); err != nil {
					return nil, fmt.Errorf("event %d: counter %q sample %s is not numeric: %v", i, ce.Name, k, err)
				}
			}
			if ce.ID == "" {
				return nil, fmt.Errorf("event %d: counter %q without a lane id", i, ce.Name)
			}
		default:
			return nil, fmt.Errorf("event %d: unknown phase %q", i, ce.Ph)
		}
		if err := checkCommon(ev); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// checkMeta validates a metadata record: only the two kinds the exporter
// writes, each naming its target.
func checkMeta(i int, ce chromeEvent) error {
	switch ce.Name {
	case "process_name", "thread_name":
	default:
		return fmt.Errorf("event %d: unknown metadata kind %q", i, ce.Name)
	}
	raw, ok := ce.Args["name"]
	if !ok {
		return fmt.Errorf("event %d: metadata %q without args.name", i, ce.Name)
	}
	var name string
	if err := json.Unmarshal(raw, &name); err != nil || name == "" {
		return fmt.Errorf("event %d: metadata %q args.name is not a non-empty string", i, ce.Name)
	}
	return nil
}

// checkCommon enforces the invariants shared by both formats.
func checkCommon(ev event) error {
	if ev.name == "" {
		return fmt.Errorf("event %d: empty name", ev.index)
	}
	if ev.ts < 0 || ev.dur < 0 {
		return fmt.Errorf("event %d: %q has negative ts/dur (%d/%d)", ev.index, ev.name, ev.ts, ev.dur)
	}
	if ev.ph == "X" && ev.spanID == 0 {
		return fmt.Errorf("event %d: span %q has id 0", ev.index, ev.name)
	}
	return nil
}

// jsonlEvent mirrors internal/obs/trace's compact record.
type jsonlEvent struct {
	Seq    uint64                     `json:"seq"`
	Ph     string                     `json:"ph"`
	Name   string                     `json:"name"`
	Pid    int                        `json:"pid"`
	Track  uint64                     `json:"track"`
	TS     int64                      `json:"ts"`
	Dur    int64                      `json:"dur"`
	ID     uint64                     `json:"id"`
	Parent uint64                     `json:"parent"`
	Attrs  map[string]json.RawMessage `json:"attrs"`
}

// parseJSONL validates the one-object-per-line export. Seq must be
// strictly increasing — the ring guarantees emission order.
func parseJSONL(data []byte) ([]event, error) {
	var out []event
	lastSeq := uint64(0)
	for i, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.UseNumber()
		dec.DisallowUnknownFields()
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		if je.Seq <= lastSeq && len(out) > 0 {
			return nil, fmt.Errorf("line %d: seq %d not increasing (prev %d)", i+1, je.Seq, lastSeq)
		}
		lastSeq = je.Seq
		ev := event{
			index: i, ph: je.Ph, name: je.Name, pid: je.Pid, tid: je.Track,
			ts: je.TS, dur: je.Dur, spanID: je.ID, parent: je.Parent,
		}
		switch je.Ph {
		case "X":
		case "C":
			if len(je.Attrs) == 0 {
				return nil, fmt.Errorf("line %d: counter %q has no samples", i+1, je.Name)
			}
			for k, v := range je.Attrs {
				if _, err := rawNumber(v); err != nil {
					return nil, fmt.Errorf("line %d: counter %q sample %s is not numeric: %v", i+1, je.Name, k, err)
				}
			}
		default:
			return nil, fmt.Errorf("line %d: unknown phase %q", i+1, je.Ph)
		}
		if err := checkCommon(ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// rawNumber decodes a raw value that must be a JSON number.
func rawNumber(raw json.RawMessage) (json.Number, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var n json.Number
	if err := dec.Decode(&n); err != nil {
		return "", err
	}
	return n, nil
}

// argUint reads a numeric arg as uint64.
func argUint(args map[string]json.RawMessage, key string) (uint64, error) {
	raw, ok := args[key]
	if !ok {
		return 0, fmt.Errorf("missing %s", key)
	}
	n, err := rawNumber(raw)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	v, err := strconv.ParseUint(n.String(), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %v", key, n, err)
	}
	return v, nil
}
