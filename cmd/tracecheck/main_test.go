package main

import (
	"os"
	"strings"
	"testing"
)

// The committed example timeline is the golden input: the full check the
// Makefile runs against fresh lapsim output must accept it.
func TestCommittedExampleTimeline(t *testing.T) {
	data, err := os.ReadFile("../../examples/tracetimeline/timeline.json")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := parseChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	err = check(evs,
		[]string{"run", "warmup", "epoch"},
		[]string{"accesses", "misses", "writebacks", "fills", "redundant_fills", "loop_blocks"},
		"warmup:run,epoch:run")
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseChromeRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"trailing data":   `{"traceEvents":[],"displayTimeUnit":"ms"} garbage`,
		"unknown field":   `{"traceEvents":[],"displayTimeUnit":"ms","bogus":1}`,
		"wrong unit":      `{"traceEvents":[],"displayTimeUnit":"ns"}`,
		"missing ts":      `{"traceEvents":[{"name":"x","ph":"X","dur":1,"pid":1,"tid":1,"args":{"span_id":1}}],"displayTimeUnit":"ms"}`,
		"span sans dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1,"args":{"span_id":1}}],"displayTimeUnit":"ms"}`,
		"span sans id":    `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"negative dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1,"args":{"span_id":1}}],"displayTimeUnit":"ms"}`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"string counter":  `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":2,"tid":1,"id":"1","args":{"v":"hi"}}],"displayTimeUnit":"ms"}`,
		"counter no lane": `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":2,"tid":1,"args":{"v":3}}],"displayTimeUnit":"ms"}`,
		"bad metadata":    `{"traceEvents":[{"name":"weird_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"x"}}],"displayTimeUnit":"ms"}`,
	} {
		if _, err := parseChrome([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckNesting(t *testing.T) {
	span := func(i int, name string, ts, dur int64, id, parent uint64) event {
		return event{index: i, ph: "X", name: name, pid: 1, tid: 7, ts: ts, dur: dur, spanID: id, parent: parent}
	}
	// Child escaping its parent's time range must fail containment.
	evs := []event{
		span(0, "run", 0, 100, 1, 0),
		span(1, "epoch", 50, 100, 2, 1),
	}
	err := check(evs, nil, nil, "epoch:run")
	if err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("escaping child: %v", err)
	}
	// A dangling parent reference fails even without -nested.
	evs = []event{span(0, "epoch", 0, 1, 2, 99)}
	if err := check(evs, nil, nil, ""); err == nil {
		t.Fatal("dangling parent accepted")
	}
	// Parent with the wrong name fails the pair.
	evs = []event{
		span(0, "other", 0, 100, 1, 0),
		span(1, "epoch", 10, 10, 2, 1),
	}
	err = check(evs, nil, nil, "epoch:run")
	if err == nil || !strings.Contains(err.Error(), `want "run"`) {
		t.Fatalf("wrong parent name: %v", err)
	}
	// The happy path with counters present.
	evs = []event{
		span(0, "run", 0, 100, 1, 0),
		span(1, "epoch", 10, 10, 2, 1),
		{index: 2, ph: "C", name: "misses", pid: 2, tid: 7, ts: 20},
	}
	if err := check(evs, []string{"run", "epoch"}, []string{"misses"}, "epoch:run"); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONL(t *testing.T) {
	good := `{"seq":1,"ph":"X","name":"run","pid":2,"track":3,"ts":0,"dur":9,"id":3}
{"seq":2,"ph":"C","name":"misses","pid":2,"track":3,"ts":5,"attrs":{"misses":4}}
`
	evs, err := parseJSONL([]byte(good))
	if err != nil || len(evs) != 2 {
		t.Fatalf("good JSONL: %v (%d events)", err, len(evs))
	}
	if _, err := parseJSONL([]byte(`{"seq":5,"ph":"X","name":"a","pid":1,"track":1,"ts":0,"dur":1,"id":1}
{"seq":4,"ph":"X","name":"b","pid":1,"track":1,"ts":0,"dur":1,"id":2}
`)); err == nil {
		t.Fatal("non-increasing seq accepted")
	}
	if _, err := parseJSONL([]byte(`{"seq":1,"ph":"C","name":"c","pid":2,"track":1,"ts":0}`)); err == nil {
		t.Fatal("sample-less counter accepted")
	}
}
