// Command tracecheck is a strict validator for the trace-event files the
// lap tools emit (lapsim -trace, lapexp -trace, lapserved's
// /v1/trace/{id}). Like cmd/lapserved's exposition checker, it is a
// stdlib-only parser deliberately stricter than a viewer needs to be, so
// an export regression fails `make trace-smoke` rather than rendering as
// a silently empty Perfetto timeline.
//
// It accepts the Chrome trace-event JSON object ({"traceEvents": [...]})
// or, for files ending in .jsonl, the compact one-object-per-line form.
// Beyond per-event shape (required fields per phase, non-negative
// durations, numeric counter samples), it verifies that every span's
// parent reference resolves, and optionally that named spans and counter
// series are present and that child spans nest inside their parents:
//
//	tracecheck -span run,warmup -counter misses,writebacks \
//	    -nested warmup:run,epoch:run timeline.json
//
// Exits non-zero with a line-oriented diagnosis on the first violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	spans := flag.String("span", "", "comma-separated span names that must each appear at least once")
	counters := flag.String("counter", "", "comma-separated counter series that must each appear at least once")
	nested := flag.String("nested", "", "comma-separated child:parent pairs; every child span must nest inside a parent-named span")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-span a,b] [-counter a,b] [-nested child:parent,...] FILE")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var evs []event
	if strings.HasSuffix(path, ".jsonl") {
		evs, err = parseJSONL(data)
	} else {
		evs, err = parseChrome(data)
	}
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	if err := check(evs, splitList(*spans), splitList(*counters), *nested); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	fmt.Printf("tracecheck: %s OK (%d events)\n", path, len(evs))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
	os.Exit(1)
}

// splitList parses a comma-separated flag value, "" meaning none.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// check runs the cross-event validations and the presence/nesting
// assertions the caller requested.
func check(evs []event, wantSpans, wantCounters []string, nestedSpec string) error {
	byID := map[uint64]event{}
	spanNames := map[string]int{}
	counterNames := map[string]int{}
	for _, ev := range evs {
		switch ev.ph {
		case "X":
			if _, dup := byID[ev.spanID]; dup {
				return fmt.Errorf("event %d: duplicate span_id %d", ev.index, ev.spanID)
			}
			byID[ev.spanID] = ev
			spanNames[ev.name]++
		case "C":
			counterNames[ev.name]++
		}
	}
	for _, ev := range evs {
		if ev.ph != "X" || ev.parent == 0 {
			continue
		}
		if _, ok := byID[ev.parent]; !ok {
			return fmt.Errorf("event %d: span %q parent_id %d resolves to no span", ev.index, ev.name, ev.parent)
		}
	}
	for _, name := range wantSpans {
		if spanNames[name] == 0 {
			return fmt.Errorf("required span %q never appears", name)
		}
	}
	for _, name := range wantCounters {
		if counterNames[name] == 0 {
			return fmt.Errorf("required counter series %q never appears", name)
		}
	}
	for _, pair := range splitList(nestedSpec) {
		child, parent, ok := strings.Cut(pair, ":")
		if !ok || child == "" || parent == "" {
			return fmt.Errorf("malformed -nested pair %q (want child:parent)", pair)
		}
		if spanNames[child] == 0 {
			return fmt.Errorf("-nested %s: child span %q never appears", pair, child)
		}
		for _, ev := range evs {
			if ev.ph != "X" || ev.name != child {
				continue
			}
			if ev.parent == 0 {
				return fmt.Errorf("event %d: span %q has no parent (want %q)", ev.index, child, parent)
			}
			p := byID[ev.parent]
			if p.name != parent {
				return fmt.Errorf("event %d: span %q parent is %q, want %q", ev.index, child, p.name, parent)
			}
			if p.pid != ev.pid || p.tid != ev.tid {
				return fmt.Errorf("event %d: span %q on pid %d/track %d but parent %q on pid %d/track %d",
					ev.index, child, ev.pid, ev.tid, parent, p.pid, p.tid)
			}
			if ev.ts < p.ts || ev.ts+ev.dur > p.ts+p.dur {
				return fmt.Errorf("event %d: span %q [%d,%d] escapes parent %q [%d,%d]",
					ev.index, child, ev.ts, ev.ts+ev.dur, parent, p.ts, p.ts+p.dur)
			}
		}
	}
	return nil
}
