// Command tracegen generates a synthetic workload trace and writes it to
// a file in the binary (default) or text trace format, for replay with
// lapsim -trace or external tooling.
//
// Examples:
//
//	tracegen -bench omnetpp -n 1000000 -o omnetpp.bin
//	tracegen -bench libquantum -n 5000 -format text -o lib.trace
package main

import (
	"flag"
	"fmt"
	"os"

	lap "repro"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "omnetpp", "benchmark surrogate to generate")
	n := flag.Uint64("n", 1_000_000, "number of accesses")
	seed := flag.Uint64("seed", 1, "generator seed")
	format := flag.String("format", "binary", "output format: binary, gzip, or text")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fatal("-o output file is required")
	}
	b, err := lap.BenchmarkByName(*bench)
	if err != nil {
		fatal("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	src := trace.Limit(lap.NewWorkloadSource(b, *seed), *n)
	var written uint64
	switch *format {
	case "binary":
		written, err = trace.WriteAll(f, src)
	case "gzip":
		written, err = trace.WriteAllGzip(f, src)
	case "text":
		written, err = trace.WriteText(f, src)
	default:
		fatal("unknown -format %q (want binary, gzip, or text)", *format)
	}
	if err != nil {
		fatal("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("closing trace: %v", err)
	}
	fmt.Printf("wrote %d accesses of %s to %s (%s)\n", written, b.Name, *out, *format)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
