// Command policysmoke is the `make policy-smoke` CI gate for the policy
// registry. It regenerates the quick-scale policy-comparison artifacts
// that exercise every pre-registry policy — fig14/fig15/fig18 (STT-RAM
// policy sweeps), fig19 (LAP replacement variants), and fig24 (the
// hybrid LLC with Lhybrid) — and byte-compares them against a golden
// captured before the registry refactor: registry dispatch must be
// bit-for-bit invisible in every existing table. It then generates the
// ext-stt competitor artifact and asserts the new registry policies
// actually reach it, so the gate also fails if a policy half-joins the
// system.
package main

import (
	"bytes"
	_ "embed"
	"fmt"
	"os"
	"strings"

	lap "repro"
	"repro/internal/experiments"
)

//go:embed testdata/golden_quick.txt
var golden []byte

// goldenArtifacts are the artifacts pinned byte-identically, in golden
// file order.
var goldenArtifacts = []string{"fig14", "fig15", "fig18", "fig19", "fig24"}

func main() {
	opt := experiments.Quick()
	reg := experiments.Registry(opt)

	var buf bytes.Buffer
	for _, id := range goldenArtifacts {
		gen, ok := reg[id]
		if !ok {
			fatal("artifact %q missing from the experiment registry", id)
		}
		fmt.Fprintf(os.Stderr, "policysmoke: generating %s\n", id)
		gen().Fprint(&buf)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		reportDiff(buf.Bytes())
		fatal("quick-scale tables differ from the pre-registry golden (cmd/policysmoke/testdata/golden_quick.txt)")
	}
	fmt.Fprintf(os.Stderr, "policysmoke: %d artifacts byte-identical to the golden (%d bytes)\n",
		len(goldenArtifacts), len(golden))

	// The new competitor policies must be reachable end to end: present
	// in the registry-driven policy list and producing rows in the
	// ext-stt head-to-head artifact.
	for _, want := range []lap.Policy{lap.PolicyReuseDetector, lap.PolicyRDCopyback} {
		found := false
		for _, p := range lap.Policies() {
			if p == want {
				found = true
			}
		}
		if !found {
			fatal("policy %q missing from lap.Policies()", want)
		}
	}
	fmt.Fprintln(os.Stderr, "policysmoke: generating ext-stt")
	var stt bytes.Buffer
	reg["ext-stt"]().Fprint(&stt)
	for _, name := range []string{"reuse-det", "rd-copyback", "LAP"} {
		if !strings.Contains(stt.String(), name) {
			fatal("ext-stt table lacks a %q column:\n%s", name, stt.String())
		}
	}
	fmt.Fprintln(os.Stderr, "policysmoke: PASS")
}

// reportDiff prints the first differing line between got and the golden.
func reportDiff(got []byte) {
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(golden), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			fmt.Fprintf(os.Stderr, "policysmoke: first difference at line %d:\n  golden: %q\n  got:    %q\n",
				i+1, wantLines[i], gotLines[i])
			return
		}
	}
	fmt.Fprintf(os.Stderr, "policysmoke: line count differs: golden %d, got %d\n", len(wantLines), len(gotLines))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "policysmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
