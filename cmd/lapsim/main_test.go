package main

import (
	"strings"
	"testing"

	lap "repro"
)

func TestResolveMixTableIIINames(t *testing.T) {
	for _, name := range []string{"WH1", "wl3", "Wh5"} {
		m, err := resolveMix(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Members) != 4 {
			t.Fatalf("%s: %d members", name, len(m.Members))
		}
		if !strings.EqualFold(m.Name, name) {
			t.Fatalf("%s resolved to %s", name, m.Name)
		}
	}
}

func TestResolveMixCustom(t *testing.T) {
	m, err := resolveMix("omnetpp,mcf", 2)
	if err != nil || m.Members[1] != "mcf" {
		t.Fatalf("custom mix: %v %v", m, err)
	}
	if _, err := resolveMix("omnetpp,mcf", 4); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestReplayTraceMissingFile(t *testing.T) {
	if _, err := replayTrace(lap.DefaultConfig(), lap.PolicyLAP, "/nonexistent/file.bin", nil); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
