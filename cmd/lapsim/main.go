// Command lapsim runs one workload (a named Table III mix, a
// comma-separated custom mix, a single benchmark duplicated per core, or
// a multi-threaded PARSEC surrogate) under one inclusion policy and
// prints the full statistics.
//
// Examples:
//
//	lapsim -policy LAP -mix WH1
//	lapsim -policy exclusive -mix omnetpp,xalancbmk,mcf,lbm
//	lapsim -policy LAP -bench streamcluster -threads 4
//	lapsim -policy Lhybrid -llc hybrid -mix WH5
//	lapsim -policy LAP -llc sram -mix WL2
//	lapsim -trace trace.bin -policy exclusive -cores 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	lap "repro"
	"repro/internal/trace"
)

func main() {
	policy := flag.String("policy", "LAP", "inclusion policy (see lap.Policies)")
	mixArg := flag.String("mix", "", "Table III mix name (WL1..WH5) or comma-separated benchmarks")
	bench := flag.String("bench", "", "single benchmark: duplicated per core, or threaded if -threads > 0")
	threads := flag.Int("threads", 0, "run -bench as a multi-threaded workload with coherence")
	llc := flag.String("llc", "stt", "LLC technology: stt, sram, or hybrid")
	ratio := flag.Float64("wr-ratio", 0, "override the STT-RAM write/read energy ratio (Fig. 23)")
	accesses := flag.Uint64("accesses", 400_000, "per-core trace length")
	seed := flag.Uint64("seed", 1, "workload seed")
	cores := flag.Int("cores", 0, "number of cores (0 = keep the config's value)")
	traceFile := flag.String("trace", "", "binary trace file to replay on every core")
	useDRAM := flag.Bool("dram", false, "use the DDR3-1600 row-buffer memory model")
	warmup := flag.Uint64("warmup", 0, "per-core warmup accesses excluded from statistics")
	moesi := flag.Bool("moesi", false, "track the MOESI reference protocol (threaded runs)")
	prefetch := flag.Int("prefetch", 0, "next-N-line L2 prefetch degree")
	configPath := flag.String("config", "", "JSON machine configuration to start from")
	flag.Parse()

	cfg := lap.DefaultConfig()
	if *configPath != "" {
		loaded, err := lap.LoadConfig(*configPath)
		if err != nil {
			fatal("%v", err)
		}
		cfg = loaded
	}
	if *cores > 0 {
		cfg.Cores = *cores
	}
	llcSet := *configPath == ""
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "llc" || f.Name == "wr-ratio" {
			llcSet = true
		}
	})
	if llcSet {
		switch strings.ToLower(*llc) {
		case "stt":
			tech := lap.STTRAM()
			if *ratio > 0 {
				tech = tech.WithWriteReadRatio(*ratio)
			}
			cfg = cfg.WithSTTL3(tech)
		case "sram":
			cfg = cfg.WithSRAML3()
		case "hybrid":
			cfg = cfg.WithHybridL3()
		default:
			fatal("unknown -llc %q (want stt, sram, hybrid)", *llc)
		}
	}

	cfg.UseDRAM = cfg.UseDRAM || *useDRAM
	if *warmup > 0 {
		cfg.WarmupAccessesPerCore = *warmup
	}
	cfg.TrackMOESI = cfg.TrackMOESI || *moesi
	if *prefetch > 0 {
		cfg.PrefetchDegree = *prefetch
	}
	if err := lap.ValidateConfig(cfg); err != nil {
		fatal("%v", err)
	}

	p := lap.Policy(*policy)
	var (
		res lap.Result
		err error
	)
	switch {
	case *traceFile != "":
		res, err = replayTrace(cfg, p, *traceFile)
	case *bench != "" && *threads > 0:
		cfg.Cores = *threads
		var b lap.Benchmark
		b, err = lap.BenchmarkByName(*bench)
		if err == nil {
			res, err = lap.RunThreaded(cfg, p, b, *accesses, *seed)
		}
	case *bench != "":
		res, err = lap.Run(cfg, p, lap.DuplicateMix(*bench, cfg.Cores), *accesses, *seed)
	case *mixArg != "":
		mix, merrr := resolveMix(*mixArg, cfg.Cores)
		if merrr != nil {
			fatal("%v", merrr)
		}
		res, err = lap.Run(cfg, p, mix, *accesses, *seed)
	default:
		fatal("one of -mix, -bench or -trace is required")
	}
	if err != nil {
		fatal("%v", err)
	}
	report(res)
}

func resolveMix(arg string, cores int) (lap.Mix, error) {
	for _, m := range lap.TableIII() {
		if strings.EqualFold(m.Name, arg) {
			return m, nil
		}
	}
	members := strings.Split(arg, ",")
	if len(members) != cores {
		return lap.Mix{}, fmt.Errorf("mix %q has %d members for %d cores", arg, len(members), cores)
	}
	return lap.Mix{Name: "custom", Members: members}, nil
}

func replayTrace(cfg lap.Config, p lap.Policy, path string) (lap.Result, error) {
	srcs := make([]lap.Source, cfg.Cores)
	files := make([]*os.File, cfg.Cores)
	for i := range srcs {
		f, err := os.Open(path)
		if err != nil {
			return lap.Result{}, err
		}
		files[i] = f
		r, err := trace.NewAutoReader(f)
		if err != nil {
			return lap.Result{}, err
		}
		// Offset each replayed copy so cores do not alias.
		srcs[i] = trace.WithOffset(r, uint64(i)<<50)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	return lap.RunTraces(cfg, p, srcs)
}

func report(r lap.Result) {
	met := r.Met
	fmt.Printf("policy            %s\n", r.Policy)
	fmt.Printf("instructions      %d\n", met.Instructions)
	fmt.Printf("cycles            %d\n", met.Cycles)
	fmt.Printf("throughput (IPC)  %.3f\n", r.Throughput)
	fmt.Printf("LLC EPI           %.4f nJ/instr (static %.4f, dynamic %.4f)\n",
		r.EPI.Total(), r.EPI.StaticNJPerInstr, r.EPI.DynamicNJPerInstr)
	fmt.Printf("LLC energy        %.1f uJ\n", r.TotalNJ/1000)
	fmt.Printf("LLC accesses      %d (hits %d, misses %d, MPKI %.2f)\n",
		met.L3Accesses, met.L3Hits, met.L3Misses, met.MPKI())
	fmt.Printf("LLC writes        %d (fills %d, dirty %d, clean %d, migrations %d)\n",
		met.WritesToLLC(), met.WritesFill, met.WritesDirty, met.WritesClean, met.MigrationWrites)
	fmt.Printf("tag-only updates  %d\n", met.TagOnlyUpdates)
	fmt.Printf("memory traffic    reads %d, writes %d\n", met.MemReads, met.MemWrites)
	fmt.Printf("L2 evictions      %d (clean %d, dirty %d)\n",
		met.L2Evictions, met.L2CleanEvictions, met.L2DirtyEvictions)
	if met.SnoopProbes > 0 {
		fmt.Printf("coherence         probes %d, dirty transfers %d, traffic %d\n",
			met.SnoopProbes, met.SnoopDirtyTransfers, met.SnoopTraffic)
	}
	if r.DRAM.Reads+r.DRAM.Writes > 0 {
		fmt.Printf("DRAM              row hits %d, closed %d, conflicts %d (hit rate %.1f%%)\n",
			r.DRAM.RowHits, r.DRAM.RowClosed, r.DRAM.RowConflicts, 100*r.DRAM.HitRate())
	}
	if r.MOESIOccupancy != nil {
		fmt.Printf("MOESI             occupancy %v, cache supplies %d, invalidations %d",
			r.MOESIOccupancy, r.MOESI.CacheSupplies, r.MOESI.Invalidations)
		if r.MOESIViolation != "" {
			fmt.Printf("  VIOLATION: %s", r.MOESIViolation)
		}
		fmt.Println()
	}
	fmt.Printf("per-core IPC     ")
	for _, ipc := range r.IPCs {
		fmt.Printf(" %.3f", ipc)
	}
	fmt.Println()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapsim: "+format+"\n", args...)
	os.Exit(1)
}
