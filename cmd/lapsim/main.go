// Command lapsim runs one workload (a named Table III mix, a
// comma-separated custom mix, a single benchmark duplicated per core, or
// a multi-threaded PARSEC surrogate) under one or more inclusion policies
// and prints the full statistics. Multiple policies (comma-separated, or
// "all") simulate concurrently on -jobs workers and report in the order
// given, followed by a comparison normalised to the first policy.
//
// Examples:
//
//	lapsim -policy LAP -mix WH1
//	lapsim -policy non-inclusive,exclusive,LAP -mix WH1
//	lapsim -policy all -mix omnetpp,xalancbmk,mcf,lbm
//	lapsim -policy LAP -bench streamcluster -threads 4
//	lapsim -policy Lhybrid -llc hybrid -mix WH5
//	lapsim -policy LAP -llc sram -mix WL2
//	lapsim -replay trace.bin -policy exclusive -cores 1
//	lapsim -policy LAP,non-inclusive -mix WH1 -trace timeline.json -interval 1000
//
// -trace FILE records each policy's run as a simulated-time timeline
// (nested run → warmup → epoch spans plus per-interval counter series
// for misses, writebacks, fills, redundant fills, and loop blocks) in
// Chrome trace-event JSON — open it in Perfetto or chrome://tracing. A
// .jsonl extension selects the compact JSONL stream instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	lap "repro"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/trace"
)

func main() {
	policy := flag.String("policy", "LAP", "inclusion policy, comma-separated list, or \"all\" (see lap.Policies)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "concurrent policy simulations (with multiple -policy values)")
	mixArg := flag.String("mix", "", "Table III mix name (WL1..WH5) or comma-separated benchmarks")
	bench := flag.String("bench", "", "single benchmark: duplicated per core, or threaded if -threads > 0")
	threads := flag.Int("threads", 0, "run -bench as a multi-threaded workload with coherence")
	llc := flag.String("llc", "stt", "LLC technology: stt, sram, or hybrid")
	ratio := flag.Float64("wr-ratio", 0, "override the STT-RAM write/read energy ratio (Fig. 23)")
	accesses := flag.Uint64("accesses", 400_000, "per-core trace length")
	seed := flag.Uint64("seed", 1, "workload seed")
	cores := flag.Int("cores", 0, "number of cores (0 = keep the config's value)")
	replayFile := flag.String("replay", "", "binary trace file to replay on every core")
	traceOut := flag.String("trace", "", "write a trace-event timeline of every run to this file (.jsonl for JSONL, else Chrome JSON)")
	interval := flag.Uint64("interval", 10_000, "telemetry window for -trace, in accesses summed over cores")
	useDRAM := flag.Bool("dram", false, "use the DDR3-1600 row-buffer memory model")
	warmup := flag.Uint64("warmup", 0, "per-core warmup accesses excluded from statistics")
	moesi := flag.Bool("moesi", false, "track the MOESI reference protocol (threaded runs)")
	prefetch := flag.Int("prefetch", 0, "next-N-line L2 prefetch degree")
	banks := flag.Int("banks", 0, "intra-run parallelism width (results identical at any value)")
	mshr := flag.Int("mshr", 0, "MSHR entries per LLC miss path (0 = unbounded, the pre-MSHR model)")
	configPath := flag.String("config", "", "JSON machine configuration to start from")
	metricsFile := flag.String("metrics", "", "write a Prometheus text exposition of the run's counters to this file")
	mode := flag.String("mode", "exact", "simulation mode: exact (default) or sampled — interval-sampled simulation; -interval is then the window length in accesses per core")
	clusters := flag.Int("clusters", 0, "sampled mode: detailed intervals per run (0 = ~sqrt(intervals))")
	sampleWarmup := flag.Int("sample-warmup", 1, "sampled mode: functional re-warm intervals before each representative")
	checkpointDir := flag.String("checkpoint-dir", "", "durable checkpoint store: snapshot runs and resume interrupted invocations (mix/bench workloads)")
	checkpointEvery := flag.Uint64("checkpoint-every", 1_000_000, "checkpoint spacing in accesses, summed over cores (with -checkpoint-dir)")
	flag.Parse()

	cfg := lap.DefaultConfig()
	if *configPath != "" {
		loaded, err := lap.LoadConfig(*configPath)
		if err != nil {
			fatal("%v", err)
		}
		cfg = loaded
	}
	if *cores > 0 {
		cfg.Cores = *cores
	}
	llcSet := *configPath == ""
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "llc" || f.Name == "wr-ratio" {
			llcSet = true
		}
	})
	if llcSet {
		switch strings.ToLower(*llc) {
		case "stt":
			tech := lap.STTRAM()
			if *ratio > 0 {
				tech = tech.WithWriteReadRatio(*ratio)
			}
			cfg = cfg.WithSTTL3(tech)
		case "sram":
			cfg = cfg.WithSRAML3()
		case "hybrid":
			cfg = cfg.WithHybridL3()
		default:
			fatal("unknown -llc %q (want stt, sram, hybrid)", *llc)
		}
	}

	cfg.UseDRAM = cfg.UseDRAM || *useDRAM
	if *warmup > 0 {
		cfg.WarmupAccessesPerCore = *warmup
	}
	cfg.TrackMOESI = cfg.TrackMOESI || *moesi
	if *prefetch > 0 {
		cfg.PrefetchDegree = *prefetch
	}
	if *banks > 0 {
		cfg.Banks = *banks
	}
	if *mshr > 0 {
		cfg.MSHREntries = *mshr
	}
	sampled := false
	switch *mode {
	case "exact":
	case "sampled":
		sampled = true
		if *replayFile != "" {
			fatal("-mode sampled does not support -replay (profile a mix or bench workload instead)")
		}
		if *threads > 0 {
			fatal("-mode sampled cannot run threaded workloads (coherent state does not survive interval jumps)")
		}
		if *traceOut != "" {
			fatal("-mode sampled does not record telemetry timelines; drop -trace or use -mode exact")
		}
		cfg.SampleInterval = *interval
		cfg.SampleClusters = *clusters
		cfg.SampleWarmup = *sampleWarmup
	default:
		fatal("unknown -mode %q (want exact or sampled)", *mode)
	}
	var ckpt *lap.CheckpointStore
	if *checkpointDir != "" {
		if *replayFile != "" || *threads > 0 {
			fatal("-checkpoint-dir supports mix and bench workloads only")
		}
		if *traceOut != "" {
			fatal("-checkpoint-dir does not combine with -trace (the checkpointed engine runs unobserved)")
		}
		var err error
		if ckpt, err = lap.OpenCheckpointStore(*checkpointDir); err != nil {
			fatal("%v", err)
		}
		if !sampled {
			cfg.CheckpointEvery = *checkpointEvery
		}
	}
	if err := lap.ValidateConfig(cfg); err != nil {
		fatal("%v", err)
	}

	// The policy registry owns name resolution: canonicalisation, the
	// "all" expansion, and the capability gates (hybrid-only policies on
	// uniform LLCs, exact-only policies in sampled mode) behave exactly
	// as in the library and the lapserved API.
	policies, notices, err := lap.ResolvePolicies(cfg, *policy)
	if err != nil {
		fatal("%v", err)
	}
	for _, n := range notices {
		fmt.Fprintln(os.Stderr, "lapsim: "+n)
	}
	if *bench != "" && *threads > 0 {
		cfg.Cores = *threads
	}
	// In sampled mode one functional profile serves every policy: the
	// signatures and checkpoints are policy-independent, so the sweep
	// pays the profiling pass once.
	var prof *lap.SampleProfile
	if sampled {
		mix, err := sampledMix(*bench, *mixArg, cfg.Cores)
		if err != nil {
			fatal("%v", err)
		}
		if ckpt != nil {
			var built bool
			prof, built, err = lap.LoadOrBuildSampleProfile(cfg, mix, *accesses, *seed, ckpt)
			if err == nil && !built {
				fmt.Fprintln(os.Stderr, "lapsim: [profile restored from checkpoint store]")
			}
		} else {
			prof, err = lap.BuildSampleProfile(cfg, mix, *accesses, *seed)
		}
		if err != nil {
			fatal("%v", err)
		}
	}
	// One shared tracer; each policy's run renders onto its own track.
	var tracer *lap.Tracer
	if *traceOut != "" {
		tracer = lap.NewTracer(0)
	}
	runOne := func(p lap.Policy) (lap.Result, error) {
		if sampled {
			return lap.RunSampledProfile(cfg, p, prof)
		}
		tel := lap.TraceTelemetry(tracer, string(p), *interval)
		switch {
		case *replayFile != "":
			return replayTrace(cfg, p, *replayFile, tel)
		case *bench != "" && *threads > 0:
			b, err := lap.BenchmarkByName(*bench)
			if err != nil {
				return lap.Result{}, err
			}
			return lap.RunThreadedObserved(cfg, p, b, *accesses, *seed, tel)
		case *bench != "":
			if ckpt != nil {
				return lap.RunResumable(cfg, p, lap.DuplicateMix(*bench, cfg.Cores), *accesses, *seed, ckpt)
			}
			return lap.RunObserved(cfg, p, lap.DuplicateMix(*bench, cfg.Cores), *accesses, *seed, tel)
		case *mixArg != "":
			mix, err := resolveMix(*mixArg, cfg.Cores)
			if err != nil {
				return lap.Result{}, err
			}
			if ckpt != nil {
				return lap.RunResumable(cfg, p, mix, *accesses, *seed, ckpt)
			}
			return lap.RunObserved(cfg, p, mix, *accesses, *seed, tel)
		default:
			fatal("one of -mix, -bench or -replay is required")
			panic("unreachable")
		}
	}

	// Policies are independent simulations: fan them out on the shared
	// worker pool and report in the deterministic order given. A policy
	// whose simulation panics surfaces as a typed per-task error instead
	// of killing its siblings.
	results := make([]lap.Result, len(policies))
	tasks := make([]pool.Task, len(policies))
	for i, p := range policies {
		tasks[i] = pool.Task{Key: string(p), Do: func() error {
			var err error
			results[i], err = runOne(p)
			return err
		}}
	}
	for i, err := range pool.Run(pool.Workers(*jobs), tasks) {
		if err != nil {
			fatal("%s: %v", policies[i], err)
		}
	}
	for i, res := range results {
		if len(results) > 1 {
			fmt.Printf("=== %s ===\n", policies[i])
		}
		report(res)
		if len(results) > 1 {
			fmt.Println()
		}
	}
	if len(results) > 1 {
		compare(policies, results)
	}
	if *metricsFile != "" {
		if err := writeMetrics(*metricsFile); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lapsim: [metrics saved to %s]\n", *metricsFile)
	}
	if *traceOut != "" {
		if err := writeTrace(tracer, *traceOut); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lapsim: [trace saved to %s]\n", *traceOut)
	}
}

// writeTrace exports the recorded timeline: Chrome trace-event JSON by
// default, the compact JSONL stream for .jsonl paths.
func writeTrace(tr *lap.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the worker-pool counters as a Prometheus text
// exposition — the same lapsim_pool_* series names a scraping setup
// would use, so ad-hoc CLI runs and the lapserved service stay
// comparable. Registration happens at dump time: the counters are
// cumulative process atomics, so runs without -metrics never build a
// registry.
func writeMetrics(path string) error {
	reg := obs.NewRegistry()
	pool.Register(reg, "lapsim_pool")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := reg.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compare prints EPI and throughput normalised to the first policy.
func compare(policies []lap.Policy, results []lap.Result) {
	base := results[0]
	fmt.Printf("comparison (normalised to %s)\n", policies[0])
	fmt.Printf("  %-14s %10s %10s %12s\n", "policy", "EPI", "rel. EPI", "rel. IPC")
	for i, res := range results {
		relEPI, relIPC := 1.0, 1.0
		if base.EPI.Total() > 0 {
			relEPI = res.EPI.Total() / base.EPI.Total()
		}
		if base.Throughput > 0 {
			relIPC = res.Throughput / base.Throughput
		}
		fmt.Printf("  %-14s %10.4f %10.2f %12.2f\n", policies[i], res.EPI.Total(), relEPI, relIPC)
	}
}

func resolveMix(arg string, cores int) (lap.Mix, error) {
	for _, m := range lap.TableIII() {
		if strings.EqualFold(m.Name, arg) {
			return m, nil
		}
	}
	members := strings.Split(arg, ",")
	if len(members) != cores {
		return lap.Mix{}, fmt.Errorf("mix %q has %d members for %d cores", arg, len(members), cores)
	}
	return lap.Mix{Name: "custom", Members: members}, nil
}

func replayTrace(cfg lap.Config, p lap.Policy, path string, tel *lap.Telemetry) (lap.Result, error) {
	srcs := make([]lap.Source, cfg.Cores)
	files := make([]*os.File, cfg.Cores)
	for i := range srcs {
		f, err := os.Open(path)
		if err != nil {
			return lap.Result{}, err
		}
		files[i] = f
		r, err := trace.NewAutoReader(f)
		if err != nil {
			return lap.Result{}, err
		}
		// Offset each replayed copy so cores do not alias.
		srcs[i] = trace.WithOffset(r, uint64(i)<<50)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	return lap.RunTracesObserved(cfg, p, srcs, tel)
}

func report(r lap.Result) {
	met := r.Met
	fmt.Printf("policy            %s\n", r.Policy)
	fmt.Printf("instructions      %d\n", met.Instructions)
	fmt.Printf("cycles            %d\n", met.Cycles)
	fmt.Printf("throughput (IPC)  %.3f\n", r.Throughput)
	fmt.Printf("LLC EPI           %.4f nJ/instr (static %.4f, dynamic %.4f)\n",
		r.EPI.Total(), r.EPI.StaticNJPerInstr, r.EPI.DynamicNJPerInstr)
	fmt.Printf("LLC energy        %.1f uJ\n", r.TotalNJ/1000)
	fmt.Printf("LLC accesses      %d (hits %d, misses %d, MPKI %.2f)\n",
		met.L3Accesses, met.L3Hits, met.L3Misses, met.MPKI())
	fmt.Printf("LLC writes        %d (fills %d, dirty %d, clean %d, migrations %d)\n",
		met.WritesToLLC(), met.WritesFill, met.WritesDirty, met.WritesClean, met.MigrationWrites)
	fmt.Printf("tag-only updates  %d\n", met.TagOnlyUpdates)
	fmt.Printf("memory traffic    reads %d, writes %d\n", met.MemReads, met.MemWrites)
	fmt.Printf("L2 evictions      %d (clean %d, dirty %d)\n",
		met.L2Evictions, met.L2CleanEvictions, met.L2DirtyEvictions)
	if met.SnoopProbes > 0 {
		fmt.Printf("coherence         probes %d, dirty transfers %d, traffic %d\n",
			met.SnoopProbes, met.SnoopDirtyTransfers, met.SnoopTraffic)
	}
	if r.DRAM.Reads+r.DRAM.Writes > 0 {
		fmt.Printf("DRAM              row hits %d, closed %d, conflicts %d (hit rate %.1f%%)\n",
			r.DRAM.RowHits, r.DRAM.RowClosed, r.DRAM.RowConflicts, 100*r.DRAM.HitRate())
	}
	if r.MOESIOccupancy != nil {
		fmt.Printf("MOESI             occupancy %v, cache supplies %d, invalidations %d",
			r.MOESIOccupancy, r.MOESI.CacheSupplies, r.MOESI.Invalidations)
		if r.MOESIViolation != "" {
			fmt.Printf("  VIOLATION: %s", r.MOESIViolation)
		}
		fmt.Println()
	}
	fmt.Printf("per-core IPC     ")
	for _, ipc := range r.IPCs {
		fmt.Printf(" %.3f", ipc)
	}
	fmt.Println()
	if s := r.Sample; s != nil {
		fmt.Printf("sampled           %d/%d intervals detailed (+%d warmup), %d clusters, %.1fx work reduction\n",
			s.IntervalsDetailed, s.IntervalsProfiled, s.IntervalsWarmup, s.Clusters, s.WorkReduction)
		fmt.Printf("confidence        miss rate ±%.2f%%, EPI ±%.2f%% (95%% CI)\n",
			100*s.MissRateRelCI, 100*s.EPIRelCI)
	}
}

// sampledMix resolves the workload for a sampled run: -bench duplicates
// one benchmark per core, -mix resolves as usual.
func sampledMix(bench, mixArg string, cores int) (lap.Mix, error) {
	switch {
	case bench != "":
		if _, err := lap.BenchmarkByName(bench); err != nil {
			return lap.Mix{}, err
		}
		return lap.DuplicateMix(bench, cores), nil
	case mixArg != "":
		return resolveMix(mixArg, cores)
	default:
		return lap.Mix{}, fmt.Errorf("one of -mix or -bench is required in sampled mode")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapsim: "+format+"\n", args...)
	os.Exit(1)
}
