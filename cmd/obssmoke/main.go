// Command obssmoke is the observability integration gate (`make
// obs-smoke`). It boots an in-process lapserved instance and walks the
// whole operational surface end to end:
//
//  1. subscribes to GET /v1/events, then runs a sweep and asserts the
//     event stream tells the story in order — sweep.start, then each
//     cell's run.start / interval telemetry / run.finish, then
//     sweep.finish — with strictly increasing sequence numbers;
//  2. reconnects with Last-Event-ID mid-stream and requires the replay
//     to resume strictly after the cut, still monotone;
//  3. re-runs the identical sweep on a fresh, never-subscribed instance
//     and requires byte-identical output — streaming must observe, not
//     steer;
//  4. drains the instance and requires /readyz to flip 503 while
//     /healthz stays 200 (and back once drain is lifted);
//  5. downloads /debug/bundle and validates every member: JSON members
//     parse, the metrics exposition carries TYPE lines, events.jsonl is
//     valid JSONL, pprof profiles carry the gzip magic.
//
// It exits non-zero on the first violation, making it a one-command
// regression gate for the event journal, SSE endpoint, readiness split,
// and diagnostics bundle.
package main

import (
	"archive/tar"
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/journal"
	"repro/internal/server"
)

const sweepBody = `{"mixes":["WH1"],"policies":["LAP","non-inclusive"],"accesses":20000,"jobs":2}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: OK")
}

func run() error {
	cfg := server.Config{Jobs: 2}
	s, base, shutdown, err := boot(cfg)
	if err != nil {
		return err
	}
	defer shutdown()
	fmt.Printf("obssmoke: instance on %s\n", base)
	client := &http.Client{Timeout: time.Minute}

	// 1. Subscribe first, then sweep: the stream must narrate the run.
	sub, err := openStream(base+"/v1/events", "")
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	defer sub.close()
	if err := waitSubscribers(client, base, 1); err != nil {
		return err
	}

	sweepOut, err := postJSON(client, base+"/v1/sweep", []byte(sweepBody))
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	var sweep server.SweepResponse
	if err := json.Unmarshal(sweepOut, &sweep); err != nil {
		return fmt.Errorf("sweep response: %w", err)
	}
	if sweep.Failed != 0 || sweep.Cancelled != 0 || len(sweep.Results) != 2 {
		return fmt.Errorf("sweep: %d results, %d failed, %d cancelled (want 2/0/0)",
			len(sweep.Results), sweep.Failed, sweep.Cancelled)
	}

	frames, err := sub.collectUntil("sweep.finish", 30*time.Second)
	if err != nil {
		return fmt.Errorf("reading event stream: %w", err)
	}
	cut, err := checkStory(frames, len(sweep.Results))
	if err != nil {
		return err
	}
	fmt.Printf("obssmoke: event story OK (%d frames)\n", len(frames))

	// 2. Reconnect mid-stream: replay resumes strictly after the cut.
	sub2, err := openStream(base+"/v1/events", strconv.FormatUint(cut, 10))
	if err != nil {
		return fmt.Errorf("reconnect: %w", err)
	}
	defer sub2.close()
	replay, err := sub2.collectUntil("sweep.finish", 10*time.Second)
	if err != nil {
		return fmt.Errorf("reading replay: %w", err)
	}
	if len(replay) == 0 {
		return fmt.Errorf("replay from seq %d yielded nothing", cut)
	}
	last := cut
	for _, f := range replay {
		if f.seq <= last {
			return fmt.Errorf("replay seq %d not strictly after %d", f.seq, last)
		}
		last = f.seq
	}
	fmt.Printf("obssmoke: replay OK (%d frames after seq %d)\n", len(replay), cut)

	// 3. Streaming observes, never steers: the identical sweep on a fresh
	// instance with no subscriber must produce byte-identical output.
	_, quietBase, quietShutdown, err := boot(cfg)
	if err != nil {
		return err
	}
	defer quietShutdown()
	quietOut, err := postJSON(client, quietBase+"/v1/sweep", []byte(sweepBody))
	if err != nil {
		return fmt.Errorf("unsubscribed sweep: %w", err)
	}
	if !bytes.Equal(sweepOut, quietOut) {
		return fmt.Errorf("sweep output diverges with a subscriber attached (%d vs %d bytes)",
			len(sweepOut), len(quietOut))
	}
	fmt.Println("obssmoke: byte-identity OK (subscribed == unsubscribed sweep)")

	// 4. Drain flips readiness, not liveness.
	if err := expectStatus(client, base+"/readyz", http.StatusOK); err != nil {
		return fmt.Errorf("readyz before drain: %w", err)
	}
	s.SetDraining(true)
	if err := expectStatus(client, base+"/readyz", http.StatusServiceUnavailable); err != nil {
		return fmt.Errorf("readyz during drain: %w", err)
	}
	if err := expectStatus(client, base+"/healthz", http.StatusOK); err != nil {
		return fmt.Errorf("healthz during drain: %w", err)
	}
	s.SetDraining(false)
	if err := expectStatus(client, base+"/readyz", http.StatusOK); err != nil {
		return fmt.Errorf("readyz after drain lifted: %w", err)
	}
	fmt.Println("obssmoke: readiness split OK (readyz flips, healthz steady)")

	// 5. The diagnostics bundle holds together member by member.
	if err := checkBundle(client, base); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// boot starts one in-process lapserved on a loopback port.
func boot(cfg server.Config) (*server.Server, string, func(), error) {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	shutdown := func() {
		s.Close()
		hs.Close()
	}
	return s, "http://" + ln.Addr().String(), shutdown, nil
}

// checkStory validates the subscribed sweep's event sequence: kinds in
// causal order, per-run lifecycle complete, sequence numbers strictly
// increasing. It returns a mid-stream sequence number to reconnect from.
func checkStory(frames []frame, cells int) (uint64, error) {
	var lastSeq uint64
	firstSeen := map[string]int{}
	counts := map[string]int{}
	for i, f := range frames {
		if f.seq <= lastSeq {
			return 0, fmt.Errorf("frame %d: seq %d not strictly increasing (after %d)", i, f.seq, lastSeq)
		}
		lastSeq = f.seq
		if _, ok := firstSeen[f.kind]; !ok {
			firstSeen[f.kind] = i
		}
		counts[f.kind]++
		var e journal.Event
		if err := json.Unmarshal(f.data, &e); err != nil {
			return 0, fmt.Errorf("frame %d (%s) does not parse as a journal event: %w", i, f.kind, err)
		}
		if e.Seq != f.seq || e.Kind != f.kind {
			return 0, fmt.Errorf("frame %d: SSE id/event %d/%s disagree with payload %d/%s",
				i, f.seq, f.kind, e.Seq, e.Kind)
		}
	}
	for _, want := range []string{"sweep.start", "run.start", "interval", "run.finish", "sweep.finish"} {
		if counts[want] == 0 {
			return 0, fmt.Errorf("stream never carried a %q event (saw %v)", want, counts)
		}
	}
	if counts["run.finish"] != cells {
		return 0, fmt.Errorf("run.finish count = %d, want %d (one per cell)", counts["run.finish"], cells)
	}
	// Causal order: the sweep opens before any run starts, runs start
	// before telemetry flows, and the sweep closes last.
	order := []string{"sweep.start", "run.start", "interval"}
	for i := 1; i < len(order); i++ {
		if firstSeen[order[i-1]] >= firstSeen[order[i]] {
			return 0, fmt.Errorf("%s (frame %d) does not precede %s (frame %d)",
				order[i-1], firstSeen[order[i-1]], order[i], firstSeen[order[i]])
		}
	}
	if fin := firstSeen["sweep.finish"]; fin != len(frames)-1 {
		return 0, fmt.Errorf("sweep.finish at frame %d, want last (%d)", fin, len(frames)-1)
	}
	// Reconnect from the middle of the story.
	return frames[len(frames)/2].seq, nil
}

// checkBundle downloads /debug/bundle and validates every member.
func checkBundle(c *http.Client, base string) error {
	resp, err := c.Get(base + "/debug/bundle")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		return fmt.Errorf("not gzip: %w", err)
	}
	tr := tar.NewReader(gz)
	members := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading tar: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("reading %s: %w", hdr.Name, err)
		}
		members[hdr.Name] = data
	}
	for _, want := range []string{
		"meta.json", "config.json", "stats.json", "metrics.prom",
		"events.jsonl", "goroutine.pprof", "heap.pprof",
	} {
		if _, ok := members[want]; !ok {
			return fmt.Errorf("member %s missing", want)
		}
	}
	for name, data := range members {
		switch {
		case strings.HasSuffix(name, ".json"):
			var v any
			if err := json.Unmarshal(data, &v); err != nil {
				return fmt.Errorf("%s does not parse: %w", name, err)
			}
		case strings.HasSuffix(name, ".jsonl"):
			for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
				if line == "" {
					continue
				}
				var e journal.Event
				if err := json.Unmarshal([]byte(line), &e); err != nil {
					return fmt.Errorf("%s line does not parse: %w", name, err)
				}
			}
		case strings.HasSuffix(name, ".pprof"):
			if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
				return fmt.Errorf("%s lacks the gzip magic (pprof profiles are gzipped protobuf)", name)
			}
		case name == "metrics.prom":
			if !strings.Contains(string(data), "# TYPE") {
				return fmt.Errorf("metrics.prom carries no TYPE lines")
			}
		}
	}
	fmt.Printf("obssmoke: bundle OK (%d members, all parse)\n", len(members))
	return nil
}

// ---- SSE client ----

type frame struct {
	seq  uint64
	kind string
	data []byte
}

type stream struct {
	resp *http.Response
	rd   *bufio.Reader
}

func openStream(url, lastEventID string) (*stream, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%s: %d %s", url, resp.StatusCode, body)
	}
	return &stream{resp: resp, rd: bufio.NewReader(resp.Body)}, nil
}

func (st *stream) close() { st.resp.Body.Close() }

// collectUntil reads frames (skipping comments) until one of kind
// arrives, inclusive, or the deadline passes.
func (st *stream) collectUntil(kind string, timeout time.Duration) ([]frame, error) {
	timer := time.AfterFunc(timeout, func() { st.resp.Body.Close() })
	defer timer.Stop()
	var frames []frame
	var f frame
	seen := false
	for {
		line, err := st.rd.ReadString('\n')
		if err != nil {
			return frames, fmt.Errorf("stream ended before %s: %w", kind, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				frames = append(frames, f)
				if f.kind == kind {
					return frames, nil
				}
				f, seen = frame{}, false
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			n, perr := strconv.ParseUint(line[4:], 10, 64)
			if perr != nil {
				return frames, fmt.Errorf("bad id line %q", line)
			}
			f.seq, seen = n, true
		case strings.HasPrefix(line, "event: "):
			f.kind, seen = line[7:], true
		case strings.HasPrefix(line, "data: "):
			f.data, seen = []byte(line[6:]), true
		}
	}
}

// ---- HTTP helpers ----

func waitSubscribers(c *http.Client, base string, n int) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := c.Get(base + "/v1/stats")
		if err != nil {
			return err
		}
		var st server.StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.Events != nil && st.Events.Subscribers >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("journal never reached %d subscribers", n)
}

func postJSON(c *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
	}
	return out, nil
}

func expectStatus(c *http.Client, url string, want int) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: got %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
