// Command resumesmoke is the crash-safe checkpointing gate (`make
// resume-smoke`): it proves that SIGKILL-ing lapserved mid-simulation
// loses at most one checkpoint interval and never changes a result.
//
// The walk:
//
//  1. Reference: boot lapserved WITHOUT checkpointing and run one long
//     simulation to completion. Its response bytes are the ground truth.
//  2. Crash: boot lapserved with -checkpoint-dir on a fresh directory,
//     issue the same run, wait for checkpoint files to appear, and
//     SIGKILL the process mid-run — no drain, no flush, the hard kill a
//     crashed host delivers.
//  3. Resume: restart lapserved on the same directory and re-issue the
//     identical request. The response must be byte-identical to the
//     reference, /v1/stats must report the run warm-started from a
//     stored checkpoint (restores >= 1, intervals saved >= 1), and the
//     /metrics exposition must carry the lap_checkpoint_* series.
//
// Exits non-zero on any failure. Pass -server a prebuilt lapserved
// binary (the Makefile target builds one); everything else defaults.
//
// Usage:
//
//	resumesmoke -server /path/to/lapserved [-accesses 2000000]
//	            [-checkpoint-every 150000] [-timeout 2m]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	server := flag.String("server", "", "path to a built lapserved binary (required)")
	accesses := flag.Uint64("accesses", 2_000_000, "per-core trace length for the long run (must outlast the kill window)")
	every := flag.Uint64("checkpoint-every", 150_000, "checkpoint spacing in accesses, summed over cores")
	// The store keeps only the newest checkpoint per run key (older
	// intervals are pruned on write), so "checkpoints exist" means one
	// file whose embedded interval index keeps advancing.
	minInterval := flag.Uint64("min-interval", 3, "checkpoint interval index that must be reached before the kill")
	timeout := flag.Duration("timeout", 2*time.Minute, "bound for each phase")
	flag.Parse()

	if *server == "" {
		fmt.Fprintln(os.Stderr, "resumesmoke: -server is required (a built lapserved binary)")
		os.Exit(2)
	}
	if err := run(*server, *accesses, *every, *minInterval, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "resumesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("resumesmoke: OK")
}

// reqBody is the one simulation every phase issues; accesses is the only
// moving part.
func reqBody(accesses uint64) []byte {
	return []byte(fmt.Sprintf(`{"mix":"WH1","policy":"LAP","accesses":%d,"seed":7}`, accesses))
}

func run(bin string, accesses, every, minInterval uint64, timeout time.Duration) error {
	work, err := os.MkdirTemp("", "resumesmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	ckDir := filepath.Join(work, "checkpoints")
	client := &http.Client{Timeout: timeout}

	// Phase 1: the uninterrupted, checkpoint-free reference.
	ref, err := withServer(bin, nil, timeout, func(base string) ([]byte, error) {
		fmt.Println("resumesmoke: [1/3] reference run (no checkpointing)")
		return postJSON(client, base+"/v1/run", reqBody(accesses))
	})
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}

	// Phase 2: the same run under checkpointing, killed mid-flight with
	// SIGKILL — the one signal no defer or flush survives.
	ckArgs := []string{"-checkpoint-dir", ckDir, "-checkpoint-every", fmt.Sprint(every)}
	srv, base, err := startServer(bin, ckArgs, timeout)
	if err != nil {
		return fmt.Errorf("crash phase: %w", err)
	}
	fmt.Println("resumesmoke: [2/3] checkpointed run, SIGKILL mid-simulation")
	done := make(chan error, 1)
	go func() {
		_, err := postJSON(client, base+"/v1/run", reqBody(accesses))
		done <- err
	}()
	if err := waitForCheckpoints(ckDir, minInterval, done, timeout); err != nil {
		srv.Process.Kill()
		srv.Wait()
		return fmt.Errorf("crash phase: %w", err)
	}
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("crash phase: SIGKILL: %w", err)
	}
	srv.Wait()
	<-done // the in-flight request fails with a connection error; expected
	files, _ := filepath.Glob(filepath.Join(ckDir, "*.ckpt"))
	fmt.Printf("resumesmoke: killed with %d checkpoint file(s) on disk\n", len(files))
	if len(files) == 0 {
		return fmt.Errorf("crash phase: no checkpoint survived the kill")
	}

	// Phase 3: restart on the same directory; the re-issued run must
	// warm-start and reproduce the reference bytes exactly.
	return withServerErr(bin, ckArgs, timeout, func(base string) error {
		fmt.Println("resumesmoke: [3/3] restart, re-issue, verify")
		got, err := postJSON(client, base+"/v1/run", reqBody(accesses))
		if err != nil {
			return fmt.Errorf("re-issued run: %w", err)
		}
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("resumed result diverged from the uninterrupted reference:\n  ref: %s\n  got: %s", ref, got)
		}
		var st struct {
			Checkpoint *struct {
				Restores       uint64 `json:"restores"`
				IntervalsSaved uint64 `json:"resume_intervals_saved"`
			} `json:"checkpoint"`
		}
		if err := getJSON(client, base+"/v1/stats", &st); err != nil {
			return err
		}
		if st.Checkpoint == nil || st.Checkpoint.Restores < 1 {
			return fmt.Errorf("run did not warm-start: /v1/stats checkpoint = %+v", st.Checkpoint)
		}
		if st.Checkpoint.IntervalsSaved < 1 {
			return fmt.Errorf("warm start saved no intervals: %+v", *st.Checkpoint)
		}
		met, err := getText(client, base+"/metrics")
		if err != nil {
			return err
		}
		for _, series := range []string{"lap_checkpoint_restores_total", "lap_checkpoint_corrupt_total"} {
			if !strings.Contains(met, series) {
				return fmt.Errorf("/metrics is missing %s", series)
			}
		}
		fmt.Printf("resumesmoke: byte-identical resume, %d restore(s), %d interval(s) not re-simulated\n",
			st.Checkpoint.Restores, st.Checkpoint.IntervalsSaved)
		return nil
	})
}

// waitForCheckpoints polls dir until a *.ckpt file reaches interval
// index min (the file name ends in the hex interval, and the store
// replaces the file as the run advances), the run finishes early (too
// fast to kill — a sizing error), or the deadline.
func waitForCheckpoints(dir string, min uint64, done <-chan error, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if latestInterval(dir) >= min {
			// One more beat so the kill lands mid-interval, not at a
			// checkpoint boundary.
			time.Sleep(100 * time.Millisecond)
			return nil
		}
		select {
		case err := <-done:
			return fmt.Errorf("run finished before checkpoint interval %d appeared (err=%v); raise -accesses or lower -checkpoint-every", min, err)
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no checkpoints after %v", timeout)
		}
	}
}

// latestInterval reads the highest interval index among dir's *.ckpt
// file names ("<kind>-<cfg>-<workload>-<interval hex>.ckpt"); 0 when
// none exist.
func latestInterval(dir string) uint64 {
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	var max uint64
	for _, f := range files {
		base := strings.TrimSuffix(filepath.Base(f), ".ckpt")
		i := strings.LastIndexByte(base, '-')
		if i < 0 {
			continue
		}
		if n, err := strconv.ParseUint(base[i+1:], 16, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}

// startServer launches one lapserved on an ephemeral loopback port and
// parses the listen line for its address.
func startServer(bin string, extra []string, timeout time.Duration) (*exec.Cmd, string, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addr <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case a := <-addr:
		return cmd, "http://" + a, nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("server did not report a listen address within %v", timeout)
	}
}

// withServer runs fn against a fresh lapserved instance and always tears
// it down.
func withServer(bin string, extra []string, timeout time.Duration, fn func(base string) ([]byte, error)) ([]byte, error) {
	cmd, base, err := startServer(bin, extra, timeout)
	if err != nil {
		return nil, err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	return fn(base)
}

func withServerErr(bin string, extra []string, timeout time.Duration, fn func(base string) error) error {
	_, err := withServer(bin, extra, timeout, func(base string) ([]byte, error) { return nil, fn(base) })
	return err
}

func postJSON(c *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, out)
	}
	return out, nil
}

func getJSON(c *http.Client, url string, dst any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

func getText(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
