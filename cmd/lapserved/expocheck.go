package main

// Tiny Prometheus text-exposition (v0.0.4) checker for the smoke run: a
// stdlib-only parser that is deliberately stricter than a scraper needs
// to be, so a formatting regression in internal/obs fails `make
// serve-smoke` rather than a dashboard three hops away. It validates
// line shape, HELP/TYPE ordering, sorted family order, and histogram
// self-consistency (cumulative buckets, +Inf == _count), and returns the
// samples for series-presence assertions.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// exposition is one parsed scrape: sample values by full series name
// ("name{labels}") and declared metric types by family name.
type exposition struct {
	samples map[string]float64
	types   map[string]string
}

// parseExposition validates text and returns its samples. Any deviation
// from the format the obs writer promises is an error.
func parseExposition(text string) (*exposition, error) {
	exp := &exposition{samples: map[string]float64{}, types: map[string]string{}}
	helped := map[string]bool{}
	var familyOrder []string
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 1 || fields[0] == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			helped[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if !helped[name] {
				return nil, fmt.Errorf("line %d: TYPE for %s precedes its HELP", lineNo, name)
			}
			if _, dup := exp.types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			exp.types[name] = typ
			familyOrder = append(familyOrder, name)
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		series, valueText, ok := splitSample(line)
		if !ok {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		value, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: value %q: %v", lineNo, valueText, err)
		}
		family := sampleFamily(series)
		if _, known := exp.types[family]; !known {
			return nil, fmt.Errorf("line %d: sample %s precedes its TYPE", lineNo, series)
		}
		if _, dup := exp.samples[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		exp.samples[series] = value
	}
	if !sort.StringsAreSorted(familyOrder) {
		return nil, fmt.Errorf("families not emitted in sorted order: %v", familyOrder)
	}
	if err := exp.checkHistograms(); err != nil {
		return nil, err
	}
	return exp, nil
}

// splitSample cuts "name{labels} value" (or "name value") at the value
// separator, tolerating spaces inside label values.
func splitSample(line string) (series, value string, ok bool) {
	cut := strings.LastIndexByte(line, ' ')
	if cut <= 0 || cut == len(line)-1 {
		return "", "", false
	}
	series, value = line[:cut], line[cut+1:]
	if brace := strings.IndexByte(series, '{'); brace >= 0 && !strings.HasSuffix(series, "}") {
		return "", "", false
	}
	return series, value, true
}

// sampleFamily maps a series name onto its TYPE-declaring family,
// stripping labels and the histogram sample suffixes.
func sampleFamily(series string) string {
	name := series
	if brace := strings.IndexByte(name, '{'); brace >= 0 {
		name = name[:brace]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name {
			return trimmed
		}
	}
	return name
}

// checkHistograms verifies every declared histogram is self-consistent:
// buckets are cumulative (non-decreasing in le order), a +Inf bucket
// exists, and it equals the _count sample.
func (exp *exposition) checkHistograms() error {
	for family, typ := range exp.types {
		if typ != "histogram" {
			continue
		}
		// Group bucket samples by their non-le label set.
		type bucket struct {
			le    float64
			count float64
		}
		buckets := map[string][]bucket{}
		infs := map[string]float64{}
		for series, value := range exp.samples {
			if sampleFamily(series) != family || !strings.Contains(series, "_bucket{") {
				continue
			}
			le, rest, err := extractLE(series)
			if err != nil {
				return fmt.Errorf("%s: %v", series, err)
			}
			if le == "+Inf" {
				infs[rest] = value
				continue
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: le=%q: %v", series, le, err)
			}
			buckets[rest] = append(buckets[rest], bucket{le: ub, count: value})
		}
		if len(infs) == 0 {
			return fmt.Errorf("histogram %s has no +Inf bucket", family)
		}
		for rest, inf := range infs {
			bs := buckets[rest]
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			prev := 0.0
			for _, b := range bs {
				if b.count < prev {
					return fmt.Errorf("histogram %s%s buckets not cumulative at le=%v", family, rest, b.le)
				}
				prev = b.count
			}
			if inf < prev {
				return fmt.Errorf("histogram %s%s +Inf bucket below lower bucket", family, rest)
			}
			countSeries := family + "_count" + rest
			if got, ok := exp.samples[countSeries]; !ok {
				return fmt.Errorf("histogram %s%s missing _count", family, rest)
			} else if got != inf {
				return fmt.Errorf("histogram %s%s: +Inf bucket %v != _count %v", family, rest, inf, got)
			}
			if _, ok := exp.samples[family+"_sum"+rest]; !ok {
				return fmt.Errorf("histogram %s%s missing _sum", family, rest)
			}
		}
	}
	return nil
}

// extractLE pulls the le label out of a _bucket series, returning the le
// value and the series' remaining label suffix (normalised, "" when le
// was the only label) so buckets group by their non-le labels.
func extractLE(series string) (le, rest string, err error) {
	brace := strings.IndexByte(series, '{')
	inner := strings.TrimSuffix(series[brace+1:], "}")
	var kept []string
	for _, pair := range strings.Split(inner, ",") {
		name, value, ok := strings.Cut(pair, "=")
		if !ok {
			return "", "", fmt.Errorf("malformed label pair %q", pair)
		}
		if name == "le" {
			le = strings.Trim(value, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket series lacks an le label")
	}
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}
