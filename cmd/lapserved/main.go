// Command lapserved serves simulations over HTTP: POST /v1/run for one
// simulation, POST /v1/sweep for a (mix × policy) grid fanned out on a
// worker pool, POST /v1/traces to upload binary traces, plus /healthz
// and /v1/stats. Identical concurrent requests coalesce onto a single
// simulation and completed results are recalled from an LRU-bounded
// cache, so a fleet of clients hammering the same grid costs one pass.
//
// Examples:
//
//	lapserved -addr :8080
//	curl -s localhost:8080/v1/run -d '{"mix":"WH1","policy":"LAP"}'
//	curl -s localhost:8080/v1/sweep -d '{"jobs":8}'
//	gzip -c trace.bin | curl -s --data-binary @- 'localhost:8080/v1/traces?name=loop'
//	curl -s localhost:8080/v1/stats
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503 so balancers
// stop routing here (liveness on /healthz stays 200 — a draining
// process must not be restarted), new work is refused, open /v1/events
// streams are closed after delivering their queued events, and
// in-flight requests get -drain-timeout to finish.
//
// Live observability rides alongside /metrics: GET /v1/events streams
// the operational journal (run lifecycle, per-interval telemetry,
// breaker/checkpoint/watchdog transitions, fault hits, contained pool
// panics) as Server-Sent Events with Last-Event-ID resume and
// ?kind=/?run= filters; -journal-capacity bounds the replay ring
// (negative disables it). Rolling-window SLO burn rates
// (-slo-objective, -slo-latency-target) and a per-subsystem watchdog
// (-watchdog-interval) feed /metrics and the slo block in /v1/stats.
// GET /debug/bundle downloads one tar.gz with everything a support
// engineer asks for first: metrics, recent events and traces, resolved
// config, stats, and goroutine/heap profiles.
//
// -checkpoint-dir attaches a durable checkpoint store: exact mix runs
// snapshot machine state every -checkpoint-every accesses, and a
// re-issued run after a crash (even SIGKILL) warm-starts from the
// latest valid snapshot — at most one checkpoint interval of work is
// lost per started run, and results are byte-identical to an
// uninterrupted run. -trace-store-dir persists /v1/traces uploads
// across restarts through the same temp-file + atomic-rename
// discipline. Corrupt or stale files are quarantined and counted
// (lap_checkpoint_corrupt_total); durability failures degrade to cold
// starts, never request failures.
//
// Failed runs are never cached; conclusive failures are retried with
// exponential backoff (-retry-max, -retry-backoff), and a streak of
// -breaker-threshold consecutive failures opens a circuit breaker that
// sheds simulation requests with 503 + Retry-After until
// -breaker-cooldown passes. The LAP_FAULTS environment variable arms
// internal/fault injection points for chaos runs.
//
// Every simulation request is traced: the response carries an X-Trace-Id
// header and GET /v1/trace/{id} returns that request's Chrome
// trace-event timeline (admission, queue wait, memo lookup, retry
// attempts, execution). -trace-requests bounds the in-memory trace
// store (negative disables tracing); -trace-dir additionally writes
// each trace to disk. Requests are logged as JSON lines on stderr with
// the matching trace_id.
//
// -smoke starts the server on a loopback port, exercises /healthz, one
// /v1/run, and a coalesced duplicate pair, then verifies via /v1/stats
// that the duplicate was recalled rather than recomputed. It exits
// non-zero on any failure, making it a one-command integration check
// (`make serve-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; mounted only with -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	lap "repro"
	"repro/internal/fault"
	"repro/internal/obs/health"
	"repro/internal/obs/journal"
	"repro/internal/pool"
	"repro/internal/server"
)

func main() {
	if n, err := fault.ArmFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "lapserved: %s: %v\n", fault.EnvVar, err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "lapserved: [%d fault spec(s) armed from %s]\n", n, fault.EnvVar)
	}
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrently executing simulations")
	queueDepth := flag.Int("queue-depth", 256, "max admitted-but-unfinished jobs before 429")
	timeout := flag.Duration("request-timeout", 2*time.Minute, "per-request queue+run deadline")
	memoEntries := flag.Int("memo-entries", 4096, "result cache bound (LRU; negative = unbounded)")
	maxAccesses := flag.Uint64("max-accesses", 4_000_000, "per-core trace length cap for one run")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight requests")
	retryMax := flag.Int("retry-max", 2, "retries per failed run (negative = none)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt, plus jitter)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open the circuit breaker (negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker shed window before a half-open probe")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceRequests := flag.Int("trace-requests", 0, "recent per-request traces kept for GET /v1/trace/{id} (0 = 64; negative disables tracing)")
	traceDir := flag.String("trace-dir", "", "also write each request's Chrome trace-event JSON into this directory")
	traceStoreDir := flag.String("trace-store-dir", "", "durably persist /v1/traces uploads in this directory (reloaded at boot)")
	checkpointDir := flag.String("checkpoint-dir", "", "durable checkpoint store: runs snapshot and warm-start across restarts")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "checkpoint spacing in accesses, summed over cores (0 = 1,000,000 with -checkpoint-dir)")
	journalCapacity := flag.Int("journal-capacity", 0, "operational event ring size behind /v1/events (0 = default; negative disables the journal)")
	watchdogInterval := flag.Duration("watchdog-interval", 15*time.Second, "background health-probe period (0 = probe only on GET /readyz)")
	sloObjective := flag.Float64("slo-objective", 0, "availability objective for burn-rate tracking, e.g. 0.999 (0 = default)")
	sloLatencyTarget := flag.Duration("slo-latency-target", 0, "request latency target for the latency SLO (0 = default)")
	smoke := flag.Bool("smoke", false, "self-test against a loopback instance and exit")
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lapserved: -trace-dir: %v\n", err)
			os.Exit(1)
		}
	}
	var ckpt *lap.CheckpointStore
	if *checkpointDir != "" {
		var err error
		ckpt, err = lap.OpenCheckpointStore(*checkpointDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lapserved: -checkpoint-dir: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := server.Config{
		Jobs:             *jobs,
		QueueDepth:       *queueDepth,
		RequestTimeout:   *timeout,
		MemoEntries:      *memoEntries,
		MaxAccesses:      *maxAccesses,
		RetryMax:         *retryMax,
		RetryBackoff:     *retryBackoff,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		TraceRequests:    *traceRequests,
		TraceDir:         *traceDir,
		TraceStoreDir:    *traceStoreDir,
		Checkpoints:      ckpt,
		CheckpointEvery:  *checkpointEvery,
		JournalCapacity:  *journalCapacity,
		WatchdogInterval: *watchdogInterval,
		SLO: health.SLOConfig{
			Objective:     *sloObjective,
			LatencyTarget: *sloLatencyTarget,
		},
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "lapserved: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("lapserved: smoke OK")
		return
	}

	if err := serve(*addr, cfg, *drainTimeout, *pprofOn); err != nil {
		fmt.Fprintf(os.Stderr, "lapserved: %v\n", err)
		os.Exit(1)
	}
}

// serve listens on addr and blocks until SIGINT/SIGTERM, then drains.
func serve(addr string, cfg server.Config, drainTimeout time.Duration, pprofOn bool) error {
	// Structured request logging: one JSON line per request on stderr,
	// each carrying the trace_id/span_id that GET /v1/trace/{id} resolves.
	cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	s := server.New(cfg)
	// Process-level failure sources join the server's event stream: every
	// armed fault hit and every contained worker panic becomes a journal
	// event (Emit on a disabled journal is a no-op, so the wiring is
	// unconditional).
	j := s.Journal()
	fault.SetObserver(func(point, key, mode string, hit uint64) {
		j.Emit(journal.Event{Kind: "fault.inject", Run: key,
			Fields: journal.F("point", point, "mode", mode, "hit", hit)})
	})
	pool.SetPanicObserver(func(key string, v any) {
		j.Emit(journal.Event{Kind: "pool.panic", Run: key,
			Msg: fmt.Sprint(v)})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	handler := s.Handler()
	if pprofOn {
		// The pprof import registered on DefaultServeMux; route only its
		// prefix there so nothing else ever reaches the default mux.
		root := http.NewServeMux()
		root.Handle("/debug/pprof/", http.DefaultServeMux)
		root.Handle("/", handler)
		handler = root
		fmt.Println("lapserved: pprof enabled on /debug/pprof/")
	}
	hs := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("lapserved: listening on %s (jobs=%d queue=%d)\n",
		ln.Addr(), cfg.Jobs, cfg.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: advertise unready first so balancers stop routing here, then
	// close event subscribers (each delivers its queued events and ends —
	// an open SSE stream must not hold Shutdown open), then let in-flight
	// requests finish.
	fmt.Println("lapserved: draining")
	s.SetDraining(true)
	s.Close()
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("lapserved: stopped")
	return nil
}

// runSmoke boots a loopback instance and walks the coalescing contract
// end to end.
func runSmoke(cfg server.Config) error {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("lapserved: smoke instance on %s\n", base)

	client := &http.Client{Timeout: time.Minute}

	// 1. Liveness and readiness both green on a fresh instance.
	if err := expectStatus(client, http.MethodGet, base+"/healthz", nil, http.StatusOK); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if err := expectStatus(client, http.MethodGet, base+"/readyz", nil, http.StatusOK); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}

	// 2. One real simulation.
	run := []byte(`{"mix":"WH1","policy":"LAP","accesses":20000}`)
	body, err := postJSON(client, base+"/v1/run", run)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	var res struct {
		Workload string  `json:"workload"`
		MPKI     float64 `json:"mpki"`
		Cycles   uint64  `json:"cycles"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		return fmt.Errorf("run result: %w", err)
	}
	if res.Cycles == 0 {
		return fmt.Errorf("run produced no cycles: %s", body)
	}
	fmt.Printf("lapserved: smoke run %s: MPKI %.3f in %d cycles\n", res.Workload, res.MPKI, res.Cycles)

	stats, err := getStats(client, base)
	if err != nil {
		return err
	}
	recalledBefore := stats.Recalled

	// 3. A concurrent duplicate pair must coalesce: fire two identical
	// requests and require the recalled counter to advance while the
	// computed counter shows exactly one simulation for this key. The
	// first run above already cached the key, so both duplicates recall.
	errs := make(chan error, 2)
	resp := make(chan []byte, 2)
	for i := 0; i < 2; i++ {
		go func() {
			b, err := postJSON(client, base+"/v1/run", run)
			errs <- err
			resp <- b
		}()
	}
	var pair [][]byte
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return fmt.Errorf("duplicate run: %w", err)
		}
		pair = append(pair, <-resp)
	}
	if !bytes.Equal(pair[0], pair[1]) || !bytes.Equal(pair[0], body) {
		return fmt.Errorf("duplicate responses diverged")
	}

	stats, err = getStats(client, base)
	if err != nil {
		return err
	}
	if stats.Recalled < recalledBefore+2 {
		return fmt.Errorf("coalescing failed: recalled %d -> %d (want +2)", recalledBefore, stats.Recalled)
	}
	if stats.Computed != 1 {
		return fmt.Errorf("duplicate requests recomputed: computed=%d, want 1", stats.Computed)
	}
	fmt.Printf("lapserved: smoke coalescing OK (computed=%d recalled=%d)\n", stats.Computed, stats.Recalled)

	// 4. The metrics endpoint serves a valid exposition that agrees with
	// what just happened: one computed run, recalled duplicates, a quiet
	// breaker.
	if err := smokeMetrics(client, base); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}

	// 5. The run lifecycle landed in the event journal (stats carries the
	// journal counters), and the diagnostics bundle downloads as gzip.
	stats, err = getStats(client, base)
	if err != nil {
		return err
	}
	if stats.Events == nil || stats.Events.Emitted == 0 {
		return fmt.Errorf("journal recorded no events after %d runs", stats.Computed+stats.Recalled)
	}
	bresp, err := client.Get(base + "/debug/bundle")
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	raw, err := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if err != nil || bresp.StatusCode != http.StatusOK {
		return fmt.Errorf("bundle: status %d (%v)", bresp.StatusCode, err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		return fmt.Errorf("bundle is not gzip (%d bytes)", len(raw))
	}
	fmt.Printf("lapserved: smoke events OK (%d emitted), bundle OK (%d bytes)\n",
		stats.Events.Emitted, len(raw))
	return nil
}

// smokeMetrics scrapes /metrics and validates the exposition end to end:
// format (via parseExposition), presence of the load-bearing series, and
// the computed-vs-recalled histogram split matching the smoke traffic.
func smokeMetrics(c *http.Client, base string) error {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("content type %q, want text exposition v0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	exp, err := parseExposition(string(raw))
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}

	for series, typ := range map[string]string{
		"lapserved_breaker_state":               "gauge",
		"lapserved_queue_depth":                 "gauge",
		"lapserved_queue_limit":                 "gauge",
		"lapserved_inflight_runs":               "gauge",
		"lapserved_trace_store_entries":         "gauge",
		"lapserved_breaker_shed_total":          "counter",
		"lapserved_admit_rejected_total":        "counter",
		"lapserved_runs_failed_total":           "counter",
		"lapserved_memo_computed_total":         "counter",
		"lapserved_memo_recalled_total":         "counter",
		"lapserved_profile_memo_computed_total": "counter",
		"lapserved_sample_runs_total":           "counter",
		"lapserved_sample_last_work_reduction":  "gauge",
		"lapserved_breaker_transitions_total":   "counter",
		"lapserved_retry_attempts_total":        "counter",
		"lapserved_run_duration_seconds":        "histogram",
		"lapserved_queue_wait_seconds":          "histogram",
		"lapserved_slo_burn_rate":               "gauge",
		"lapserved_slo_requests_total":          "counter",
		"lapserved_watchdog_healthy":            "gauge",
		"lapserved_events_emitted_total":        "counter",
		"lapserved_event_subscribers":           "gauge",
		"go_goroutines":                         "gauge",
		"go_gc_pause_seconds":                   "histogram",
		"process_open_fds":                      "gauge",
		"lapsim_accesses_per_second":            "gauge",
		"lapsim_bank_ops_total":                 "counter",
	} {
		if got := exp.types[series]; got != typ {
			return fmt.Errorf("family %s: type %q, want %q", series, got, typ)
		}
	}
	for _, series := range []string{
		`lapserved_breaker_transitions_total{to="open"}`,
		`lapserved_retry_attempts_total{outcome="success"}`,
		`lapserved_retry_attempts_total{outcome="failure"}`,
		`lapserved_run_duration_seconds_count{source="computed"}`,
		`lapserved_run_duration_seconds_count{source="recalled"}`,
		"lapserved_queue_wait_seconds_count",
		`lapserved_slo_burn_rate{slo="availability",window="5m0s"}`,
		`lapserved_slo_burn_rate{slo="latency",window="5m0s"}`,
		`lapserved_watchdog_healthy{subsystem="queue"}`,
		`lapserved_watchdog_healthy{subsystem="breaker"}`,
	} {
		if _, ok := exp.samples[series]; !ok {
			return fmt.Errorf("series %s missing", series)
		}
	}

	// The smoke traffic so far: exactly one computed simulation, at least
	// two recalled duplicates, no breaker activity.
	if got := exp.samples[`lapserved_run_duration_seconds_count{source="computed"}`]; got != 1 {
		return fmt.Errorf("computed latency count = %v, want 1", got)
	}
	if got := exp.samples[`lapserved_run_duration_seconds_count{source="recalled"}`]; got < 2 {
		return fmt.Errorf("recalled latency count = %v, want >= 2", got)
	}
	if got := exp.samples["lapserved_breaker_state"]; got != 0 {
		return fmt.Errorf("breaker state = %v, want 0 (closed)", got)
	}
	// Queue wait is observed only on the compute path (the memo fast path
	// never queues), so the single computed run above contributes exactly
	// the admission→worker-start sample we expect — and it must be a
	// different series from run duration.
	if got := exp.samples["lapserved_queue_wait_seconds_count"]; got < 1 {
		return fmt.Errorf("queue wait count = %v, want >= 1", got)
	}
	// The computed run must have fed the simulator-throughput series: a
	// positive access rate and one bank-ops sample per LLC timing bank.
	if got := exp.samples["lapsim_accesses_per_second"]; got <= 0 {
		return fmt.Errorf("accesses per second = %v, want > 0", got)
	}
	if got, want := exp.samples[`lapsim_bank_ops_total{bank="0"}`], 0.0; got <= want {
		return fmt.Errorf("bank 0 ops = %v, want > 0", got)
	}
	// Every smoke request was observed by the SLO tracker, none of it
	// burned budget, and the journal recorded the run lifecycle.
	if got := exp.samples["lapserved_slo_requests_total"]; got < 3 {
		return fmt.Errorf("slo requests = %v, want >= 3", got)
	}
	if got := exp.samples["lapserved_slo_request_errors_total"]; got != 0 {
		return fmt.Errorf("slo errors = %v, want 0", got)
	}
	if got := exp.samples["lapserved_events_emitted_total"]; got <= 0 {
		return fmt.Errorf("events emitted = %v, want > 0", got)
	}
	fmt.Printf("lapserved: smoke metrics OK (%d series, computed/recalled split verified)\n", len(exp.samples))
	return nil
}

func postJSON(c *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
	}
	return out, nil
}

func getStats(c *http.Client, base string) (server.StatsResponse, error) {
	var st server.StatsResponse
	resp, err := c.Get(base + "/v1/stats")
	if err != nil {
		return st, fmt.Errorf("stats: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding stats: %w", err)
	}
	return st, nil
}

func expectStatus(c *http.Client, method, url string, body io.Reader, want int) error {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("got %d, want %d", resp.StatusCode, want)
	}
	return nil
}
