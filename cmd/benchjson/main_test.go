package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimLAP-8     	       1	219220926 ns/op	 1.82 MB/s	  276472 B/op	     149 allocs/op
BenchmarkAccessAllocs 	  200000	       150.6 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	26.603s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix must be stripped; the suffix-less name
	// passes through unchanged.
	lap, ok := snap["BenchmarkSimLAP"]
	if !ok {
		t.Fatalf("BenchmarkSimLAP missing (got %v)", snap)
	}
	if lap.NsPerOp != 219220926 || lap.AllocsPerOp != 149 || lap.BytesPerOp != 276472 {
		t.Fatalf("BenchmarkSimLAP parsed as %+v", lap)
	}
	al, ok := snap["BenchmarkAccessAllocs"]
	if !ok || al.NsPerOp != 150.6 || al.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkAccessAllocs parsed as %+v (ok=%v)", al, ok)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error on output without benchmark lines")
	}
}

// readFile decodes a trajectory file for assertions.
func readFile(t *testing.T, path string) File {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRunTrajectory checks the append contract: distinct (label, rev)
// pairs accumulate in order, and re-running the latest pair replaces it
// in place instead of appending a duplicate.
func TestRunTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run("before", "aaa1111", out, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	after := strings.ReplaceAll(sample, "219220926", "100000000")
	if err := run("after", "bbb2222", out, strings.NewReader(after)); err != nil {
		t.Fatal(err)
	}
	f := readFile(t, out)
	if len(f.Trajectory) != 2 {
		t.Fatalf("want 2 captures, got %d", len(f.Trajectory))
	}
	if f.Trajectory[0].Label != "before" || f.Trajectory[0].Rev != "aaa1111" ||
		f.Trajectory[0].Benchmarks["BenchmarkSimLAP"].NsPerOp != 219220926 {
		t.Fatalf("first capture mutated: %+v", f.Trajectory[0])
	}
	if f.Trajectory[1].Benchmarks["BenchmarkSimLAP"].NsPerOp != 100000000 {
		t.Fatalf("second capture wrong: %+v", f.Trajectory[1])
	}

	// Same label+rev as the latest capture: replace in place.
	again := strings.ReplaceAll(sample, "219220926", "50000000")
	if err := run("after", "bbb2222", out, strings.NewReader(again)); err != nil {
		t.Fatal(err)
	}
	f = readFile(t, out)
	if len(f.Trajectory) != 2 {
		t.Fatalf("re-run appended instead of replacing: %d captures", len(f.Trajectory))
	}
	if f.Trajectory[1].Benchmarks["BenchmarkSimLAP"].NsPerOp != 50000000 {
		t.Fatalf("replacement not applied: %+v", f.Trajectory[1])
	}

	// Same label at a new rev: append (the trajectory is the history).
	if err := run("after", "ccc3333", out, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	if f = readFile(t, out); len(f.Trajectory) != 3 {
		t.Fatalf("new rev should append: %d captures", len(f.Trajectory))
	}
}

// TestRunMigratesLegacyFormat checks that a pre-trajectory file
// (label -> benchmarks) converts into ordered captures, before ahead of
// after, and the new capture appends after them.
func TestRunMigratesLegacyFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	legacy := map[string]Snapshot{
		"after":  {"BenchmarkSimLAP": {NsPerOp: 2}},
		"before": {"BenchmarkSimLAP": {NsPerOp: 1}},
	}
	raw, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("after", "ddd4444", out, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	f := readFile(t, out)
	if len(f.Trajectory) != 3 {
		t.Fatalf("want 3 captures after migration, got %d", len(f.Trajectory))
	}
	if f.Trajectory[0].Label != "before" || f.Trajectory[1].Label != "after" {
		t.Fatalf("migrated order wrong: %q, %q", f.Trajectory[0].Label, f.Trajectory[1].Label)
	}
	if f.Trajectory[0].Rev != "" || f.Trajectory[1].Rev != "" {
		t.Fatalf("migrated captures should have no rev: %+v", f.Trajectory[:2])
	}
	if f.Trajectory[2].Rev != "ddd4444" {
		t.Fatalf("new capture rev: %q", f.Trajectory[2].Rev)
	}
}
