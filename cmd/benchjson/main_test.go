package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimLAP-8     	       1	219220926 ns/op	 1.82 MB/s	  276472 B/op	     149 allocs/op
BenchmarkAccessAllocs 	  200000	       150.6 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	26.603s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix must be stripped; the suffix-less name
	// passes through unchanged.
	lap, ok := snap["BenchmarkSimLAP"]
	if !ok {
		t.Fatalf("BenchmarkSimLAP missing (got %v)", snap)
	}
	if lap.NsPerOp != 219220926 || lap.AllocsPerOp != 149 || lap.BytesPerOp != 276472 {
		t.Fatalf("BenchmarkSimLAP parsed as %+v", lap)
	}
	al, ok := snap["BenchmarkAccessAllocs"]
	if !ok || al.NsPerOp != 150.6 || al.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkAccessAllocs parsed as %+v (ok=%v)", al, ok)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error on output without benchmark lines")
	}
}

// TestRunUpsert checks the label-upsert contract: writing a second label
// keeps the first, rewriting a label replaces only that snapshot.
func TestRunUpsert(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run("before", out, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	after := strings.ReplaceAll(sample, "219220926", "100000000")
	if err := run("after", out, strings.NewReader(after)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]Snapshot
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("want 2 snapshots, got %d", len(all))
	}
	if all["before"]["BenchmarkSimLAP"].NsPerOp != 219220926 {
		t.Fatalf("before snapshot mutated: %+v", all["before"]["BenchmarkSimLAP"])
	}
	if all["after"]["BenchmarkSimLAP"].NsPerOp != 100000000 {
		t.Fatalf("after snapshot wrong: %+v", all["after"]["BenchmarkSimLAP"])
	}
}
