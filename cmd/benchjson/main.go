// Command benchjson converts `go test -bench` output into a committed
// JSON snapshot, so benchmark history rides along with the code it
// measures.
//
// It reads benchmark output on stdin and appends one labelled capture to
// a trajectory file:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchjson -label after -rev $(git rev-parse --short HEAD) -o BENCH_sim.json
//
// The file holds an ordered trajectory of captures, each tagged with a
// label and the git revision it measured, so the history reads as a
// perf timeline across PRs rather than a single before/after pair.
// Re-running with the same label AND revision replaces the latest
// capture in place (iterating on one machine does not spam the
// trajectory); any other (label, rev) appends. Files in the pre-
// trajectory format (label -> benchmarks) are migrated on read.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured cost.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one capture of the benchmark suite.
type Snapshot map[string]Benchmark

// Capture is one trajectory entry: a snapshot plus its provenance.
type Capture struct {
	Label string `json:"label"`
	// Rev is the git revision the capture measured ("" when unknown,
	// e.g. entries migrated from the pre-trajectory format).
	Rev        string   `json:"rev,omitempty"`
	Benchmarks Snapshot `json:"benchmarks"`
}

// File is the on-disk document.
type File struct {
	Trajectory []Capture `json:"trajectory"`
}

// parseBench extracts benchmark lines from `go test -bench` output.
// A benchmark line looks like:
//
//	BenchmarkAccessAllocs-8   200000   150.6 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots captured on
// different machines share names.
func parseBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var b Benchmark
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, seen = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			snap[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, errors.New("no benchmark lines found on stdin")
	}
	return snap, nil
}

// load reads an existing trajectory file, migrating the pre-trajectory
// format (label -> benchmarks map) into ordered captures with no rev.
// "before" sorts ahead of "after" so a migrated pair keeps its causal
// order; other labels follow alphabetically.
func load(path string) (File, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return File{}, nil
	}
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err == nil && f.Trajectory != nil {
		return f, nil
	}
	var old map[string]Snapshot
	if err := json.Unmarshal(raw, &old); err != nil {
		return File{}, fmt.Errorf("existing %s is not a benchjson file: %w", path, err)
	}
	labels := make([]string, 0, len(old))
	for l := range old {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		rank := func(l string) int {
			switch l {
			case "before":
				return 0
			case "after":
				return 1
			}
			return 2
		}
		if ri, rj := rank(labels[i]), rank(labels[j]); ri != rj {
			return ri < rj
		}
		return labels[i] < labels[j]
	})
	for _, l := range labels {
		f.Trajectory = append(f.Trajectory, Capture{Label: l, Benchmarks: old[l]})
	}
	return f, nil
}

func run(label, rev, out string, in io.Reader) error {
	snap, err := parseBench(in)
	if err != nil {
		return err
	}
	f, err := load(out)
	if err != nil {
		return err
	}
	entry := Capture{Label: label, Rev: rev, Benchmarks: snap}
	if n := len(f.Trajectory); n > 0 && f.Trajectory[n-1].Label == label && f.Trajectory[n-1].Rev == rev {
		f.Trajectory[n-1] = entry
	} else {
		f.Trajectory = append(f.Trajectory, entry)
	}

	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}

	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: %s <- capture %d (%s@%s), %d benchmarks\n",
		out, len(f.Trajectory), label, rev, len(snap))
	for _, n := range names {
		b := snap[n]
		fmt.Fprintf(os.Stderr, "  %-40s %14.1f ns/op %8.0f allocs/op\n", n, b.NsPerOp, b.AllocsPerOp)
	}
	return nil
}

func main() {
	label := flag.String("label", "after", "capture label (same label+rev as the latest capture replaces it; otherwise appends)")
	rev := flag.String("rev", "", "git revision the capture measures (e.g. `git rev-parse --short HEAD`)")
	out := flag.String("o", "BENCH_sim.json", "trajectory file to update")
	flag.Parse()
	if err := run(*label, *rev, *out, os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
