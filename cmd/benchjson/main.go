// Command benchjson converts `go test -bench` output into a committed
// JSON snapshot, so benchmark history rides along with the code it
// measures.
//
// It reads benchmark output on stdin and upserts one labelled snapshot
// into a JSON file:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchjson -label after -o BENCH_sim.json
//
// The file maps label -> benchmark name -> {ns_per_op, bytes_per_op,
// allocs_per_op}. Re-running with an existing label replaces that
// snapshot and leaves the others untouched, so a "before" capture
// survives the "after" update and the diff is reviewable in the PR.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured cost.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one labelled capture of the benchmark suite.
type Snapshot map[string]Benchmark

// parseBench extracts benchmark lines from `go test -bench` output.
// A benchmark line looks like:
//
//	BenchmarkAccessAllocs-8   200000   150.6 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots captured on
// different machines share names.
func parseBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var b Benchmark
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, seen = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			snap[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, errors.New("no benchmark lines found on stdin")
	}
	return snap, nil
}

func run(label, out string, in io.Reader) error {
	snap, err := parseBench(in)
	if err != nil {
		return err
	}
	all := map[string]Snapshot{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &all); err != nil {
			return fmt.Errorf("existing %s is not a benchjson file: %w", out, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	all[label] = snap

	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}

	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: %s[%q] <- %d benchmarks\n", out, label, len(snap))
	for _, n := range names {
		b := snap[n]
		fmt.Fprintf(os.Stderr, "  %-40s %14.1f ns/op %8.0f allocs/op\n", n, b.NsPerOp, b.AllocsPerOp)
	}
	return nil
}

func main() {
	label := flag.String("label", "after", "snapshot label to write (replaces an existing snapshot with the same label)")
	out := flag.String("o", "BENCH_sim.json", "snapshot file to update")
	flag.Parse()
	if err := run(*label, *out, os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
