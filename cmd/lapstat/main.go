// Command lapstat characterises a memory trace the way the paper
// characterises its workloads: footprint, read/write mix, exact LRU
// reuse-distance profile, predicted hit rates at the Table II cache
// capacities, loop-block potential (Section II-C1) and redundant-fill
// potential (Section II-C2). Use it to calibrate workload surrogates or
// to inspect externally captured traces.
//
// Examples:
//
//	lapstat -bench omnetpp -n 200000
//	lapstat -trace omnetpp.bin
//	lapstat -bench libquantum -n 100000 -l2 8192 -llc 131072
package main

import (
	"flag"
	"fmt"
	"os"

	lap "repro"
	"repro/internal/analysis"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark surrogate to analyse")
	traceFile := flag.String("trace", "", "binary trace file to analyse")
	n := flag.Uint64("n", 200_000, "number of accesses to analyse")
	seed := flag.Uint64("seed", 1, "generator seed (with -bench)")
	l2 := flag.Uint64("l2", 8192, "L2 capacity in 64B blocks")
	llc := flag.Uint64("llc", 131072, "LLC capacity in 64B blocks")
	flag.Parse()

	an := analysis.NewAnalyzer()
	an.L2Blocks = *l2
	an.LLCBlocks = *llc
	an.MaxAccesses = *n

	var src trace.Source
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r, err := trace.NewAutoReader(f)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if r.Err() != nil {
				fatal("reading trace: %v", r.Err())
			}
		}()
		src = r
	case *bench != "":
		b, err := lap.BenchmarkByName(*bench)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("benchmark %s (%d regions, %.0f instr/access)\n", b.Name, len(b.Regions), b.InstrPerAccess)
		src = lap.NewWorkloadSource(b, *seed)
	default:
		fatal("one of -bench or -trace is required")
	}

	rep := an.Analyze(src)
	rep.Fprint(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapstat: "+format+"\n", args...)
	os.Exit(1)
}
