// Command lapstat characterises a memory trace the way the paper
// characterises its workloads: footprint, read/write mix, exact LRU
// reuse-distance profile, predicted hit rates at the Table II cache
// capacities, loop-block potential (Section II-C1) and redundant-fill
// potential (Section II-C2). Use it to calibrate workload surrogates or
// to inspect externally captured traces.
//
// Examples:
//
//	lapstat -bench omnetpp -n 200000
//	lapstat -trace omnetpp.bin
//	lapstat -bench libquantum -n 100000 -l2 8192 -llc 131072
//
// It also speaks lapserved's observability surface: -bundle un-tars a
// /debug/bundle diagnostics archive and prints an operator summary
// (members, capture metadata, run/SLO health, event-journal tail),
// validating every JSON member on the way; -events tails a live
// instance's /v1/events stream one line per event, with -kind / -run /
// -from mapping onto the endpoint's server-side filters.
//
//	lapstat -bundle lapserved-bundle-20260808-120000.tar.gz
//	lapstat -events localhost:8080 -kind 'run.*,breaker.transition'
package main

import (
	"flag"
	"fmt"
	"os"

	lap "repro"
	"repro/internal/analysis"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark surrogate to analyse")
	traceFile := flag.String("trace", "", "binary trace file to analyse")
	n := flag.Uint64("n", 200_000, "number of accesses to analyse")
	seed := flag.Uint64("seed", 1, "generator seed (with -bench)")
	l2 := flag.Uint64("l2", 8192, "L2 capacity in 64B blocks")
	llc := flag.Uint64("llc", 131072, "LLC capacity in 64B blocks")
	bundle := flag.String("bundle", "", "lapserved diagnostics bundle (tar.gz) to summarize")
	events := flag.String("events", "", "lapserved base URL whose /v1/events stream to tail")
	kinds := flag.String("kind", "", "with -events: comma-separated kind filters (trailing-* prefix match)")
	run := flag.String("run", "", "with -events: only events for this workload|policy cell")
	from := flag.Uint64("from", 0, "with -events: replay from this journal sequence number")
	flag.Parse()

	switch {
	case *bundle != "":
		if err := printBundle(*bundle); err != nil {
			fatal("%v", err)
		}
		return
	case *events != "":
		if err := tailEvents(*events, *kinds, *run, *from); err != nil {
			fatal("%v", err)
		}
		return
	}

	an := analysis.NewAnalyzer()
	an.L2Blocks = *l2
	an.LLCBlocks = *llc
	an.MaxAccesses = *n

	var src trace.Source
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r, err := trace.NewAutoReader(f)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if r.Err() != nil {
				fatal("reading trace: %v", r.Err())
			}
		}()
		src = r
	case *bench != "":
		b, err := lap.BenchmarkByName(*bench)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("benchmark %s (%d regions, %.0f instr/access)\n", b.Name, len(b.Regions), b.InstrPerAccess)
		src = lap.NewWorkloadSource(b, *seed)
	default:
		fatal("one of -bench or -trace is required")
	}

	rep := an.Analyze(src)
	rep.Fprint(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapstat: "+format+"\n", args...)
	os.Exit(1)
}
