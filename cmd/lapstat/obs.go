package main

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/journal"
)

// bundleEventTail bounds how many journal events the bundle summary
// prints; the full log stays in events.jsonl for jq.
const bundleEventTail = 15

// printBundle un-tars a lapserved diagnostics bundle (GET /debug/bundle)
// and prints an operator-oriented summary: what is inside, where the
// snapshot came from, the health numbers that matter, and the tail of
// the event journal. It exits non-zero if the archive or any JSON member
// fails to parse — so it doubles as a bundle validator.
func printBundle(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("%s is not gzip: %w", path, err)
	}
	tr := tar.NewReader(gz)
	members := map[string][]byte{}
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading archive: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("reading %s: %w", hdr.Name, err)
		}
		members[hdr.Name] = data
		names = append(names, hdr.Name)
	}
	sort.Strings(names)

	fmt.Printf("bundle %s: %d members\n", path, len(names))
	for _, n := range names {
		fmt.Printf("  %-24s %7d bytes\n", n, len(members[n]))
	}

	// Every JSON member must parse; a bundle with corrupt members is
	// worth knowing about before someone greps it at 3am.
	for _, n := range names {
		if strings.HasSuffix(n, ".json") {
			var v any
			if err := json.Unmarshal(members[n], &v); err != nil {
				return fmt.Errorf("%s does not parse: %w", n, err)
			}
		}
	}

	if data, ok := members["meta.json"]; ok {
		var meta struct {
			GeneratedAt  string  `json:"generated_at"`
			GoVersion    string  `json:"go_version"`
			PID          int     `json:"pid"`
			UptimeSec    float64 `json:"uptime_sec"`
			NumGoroutine int     `json:"num_goroutine"`
		}
		if err := json.Unmarshal(data, &meta); err == nil {
			fmt.Printf("\ncaptured %s  pid %d  up %s  %d goroutines  %s\n",
				meta.GeneratedAt, meta.PID,
				(time.Duration(meta.UptimeSec * float64(time.Second))).Round(time.Second),
				meta.NumGoroutine, meta.GoVersion)
		}
	}

	if data, ok := members["stats.json"]; ok {
		var st struct {
			Computed     uint64 `json:"computed"`
			Recalled     uint64 `json:"recalled"`
			Failures     uint64 `json:"failures"`
			BreakerState string `json:"breaker_state"`
			Events       *struct {
				Emitted     uint64 `json:"emitted"`
				Subscribers int    `json:"subscribers"`
			} `json:"events"`
			SLO *struct {
				Objective float64 `json:"objective"`
				Windows   []struct {
					Window           string  `json:"window"`
					Total            uint64  `json:"total"`
					SuccessRate      float64 `json:"success_rate"`
					AvailabilityBurn float64 `json:"availability_burn"`
					LatencyBurn      float64 `json:"latency_burn"`
				} `json:"windows"`
			} `json:"slo"`
		}
		if err := json.Unmarshal(data, &st); err == nil {
			fmt.Printf("runs: %d computed, %d recalled, %d failed; breaker %s\n",
				st.Computed, st.Recalled, st.Failures, st.BreakerState)
			if st.Events != nil {
				fmt.Printf("journal: %d events emitted, %d live subscribers\n",
					st.Events.Emitted, st.Events.Subscribers)
			}
			if st.SLO != nil {
				fmt.Printf("slo (objective %.4g):\n", st.SLO.Objective)
				for _, w := range st.SLO.Windows {
					fmt.Printf("  %-8s %6d reqs  success %.4f  burn avail %.2f / latency %.2f\n",
						w.Window, w.Total, w.SuccessRate, w.AvailabilityBurn, w.LatencyBurn)
				}
			}
		}
	}

	if data, ok := members["events.jsonl"]; ok {
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		var events []journal.Event
		for _, line := range lines {
			if line == "" {
				continue
			}
			var e journal.Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return fmt.Errorf("events.jsonl line does not parse: %w", err)
			}
			events = append(events, e)
		}
		tail := events
		if len(tail) > bundleEventTail {
			tail = tail[len(tail)-bundleEventTail:]
		}
		fmt.Printf("\nlast %d of %d events:\n", len(tail), len(events))
		for _, e := range tail {
			fmt.Printf("  %s\n", formatEvent(e))
		}
	}
	return nil
}

// tailEvents connects to a lapserved instance and prints its /v1/events
// stream one line per event until the server closes it or the process is
// interrupted. kinds/run/from map straight onto the endpoint's filters.
func tailEvents(base, kinds, run string, from uint64) error {
	// A bare host:port parses as scheme "host"; require an explicit
	// http(s):// and default everything else onto http.
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return err
	}
	u.Path = "/v1/events"
	q := u.Query()
	if kinds != "" {
		q.Set("kind", kinds)
	}
	if run != "" {
		q.Set("run", run)
	}
	if from > 0 {
		q.Set("from", fmt.Sprint(from))
	}
	u.RawQuery = q.Encode()

	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %d %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	fmt.Fprintf(os.Stderr, "lapstat: tailing %s\n", u)

	rd := bufio.NewReader(resp.Body)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return nil // server closed the stream (drain)
			}
			return err
		}
		line = strings.TrimRight(line, "\n")
		if !strings.HasPrefix(line, "data: ") {
			continue // ids/event names ride inside the JSON; comments are noise
		}
		var e journal.Event
		if err := json.Unmarshal([]byte(line[6:]), &e); err != nil {
			fmt.Fprintf(os.Stderr, "lapstat: bad event frame: %v\n", err)
			continue
		}
		fmt.Println(formatEvent(e))
	}
}

// formatEvent renders one journal event as a stable single line:
// timestamp, sequence, kind, then run/trace/msg and sorted fields.
func formatEvent(e journal.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s #%d %-20s", time.Unix(0, e.TS).UTC().Format("15:04:05.000"), e.Seq, e.Kind)
	if e.Run != "" {
		fmt.Fprintf(&b, " run=%s", e.Run)
	}
	if e.Trace != "" {
		fmt.Fprintf(&b, " trace=%s", e.Trace)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " msg=%q", e.Msg)
	}
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Fields[k])
	}
	return b.String()
}
