package lap

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (regenerating the artifact end-to-end at the Quick experiment
// scale), plus microbenchmarks of the simulator's hot paths and ablation
// benches for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute artifact numbers at Quick scale are noisier than cmd/lapexp's
// defaults; the benches exist to regenerate each artifact reproducibly
// and to track simulator performance.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchArtifactJobs regenerates one paper artifact per iteration on the
// given worker count (0 = GOMAXPROCS, 1 = serial).
func benchArtifactJobs(b *testing.B, id string, jobs int) {
	benchArtifactBanks(b, id, jobs, 0)
}

// benchArtifactBanks additionally sets the intra-run parallelism width
// (sim.Config.Banks) of every simulation in the artifact.
func benchArtifactBanks(b *testing.B, id string, jobs, banks int) {
	opt := experiments.Quick()
	opt.Jobs = jobs
	opt.Banks = banks
	gen, ok := experiments.Registry(opt)[id]
	if !ok {
		b.Fatalf("unknown artifact %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		tab := gen()
		if len(tab.Rows) == 0 {
			b.Fatalf("artifact %s produced no rows", id)
		}
	}
}

// benchArtifact regenerates one paper artifact per iteration on the
// default worker pool.
func benchArtifact(b *testing.B, id string) { benchArtifactJobs(b, id, 0) }

func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }
func BenchmarkFig2(b *testing.B)   { benchArtifact(b, "fig2") }
func BenchmarkFig4(b *testing.B)   { benchArtifact(b, "fig4") }
func BenchmarkFig6(b *testing.B)   { benchArtifact(b, "fig6") }
func BenchmarkFig12(b *testing.B)  { benchArtifact(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchArtifact(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchArtifact(b, "fig14") }

// The serial/parallel pair quantifies the scheduler's speedup on the
// heaviest artifact (compare ns/op across the two), and the Banks
// variant the banked engine's intra-run speedup on top of serial
// scheduling (one run at a time, four workers inside it).
func BenchmarkFig14Serial(b *testing.B)   { benchArtifactJobs(b, "fig14", 1) }
func BenchmarkFig14Parallel(b *testing.B) { benchArtifactJobs(b, "fig14", 0) }
func BenchmarkFig14Banks4(b *testing.B)   { benchArtifactBanks(b, "fig14", 1, 4) }

// BenchmarkFig14Sampled regenerates Fig. 14 in interval-sampled mode
// (one functional profiling pass per mix, detailed simulation of one
// representative per cluster, extrapolation by weight). Compare ns/op
// against BenchmarkFig14 in BENCH_sim.json for the exact-vs-sampled
// speedup; `make sample-smoke` asserts the accompanying accuracy bound.
func BenchmarkFig14Sampled(b *testing.B) {
	opt := experiments.Quick()
	// The recommended sampled operating point (see EXPERIMENTS.md):
	// 1000-access intervals, auto clusters, one warmup interval.
	opt.SampleInterval = 1000
	gen := experiments.Registry(opt)["fig14"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		tab := gen()
		if len(tab.Rows) == 0 {
			b.Fatal("artifact fig14 produced no rows")
		}
	}
}
func BenchmarkFig15(b *testing.B) { benchArtifact(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchArtifact(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchArtifact(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchArtifact(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchArtifact(b, "fig19") }
func BenchmarkFig20(b *testing.B) { benchArtifact(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchArtifact(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchArtifact(b, "fig22") }
func BenchmarkFig23(b *testing.B) { benchArtifact(b, "fig23") }
func BenchmarkFig24(b *testing.B) { benchArtifact(b, "fig24") }
func BenchmarkFig25(b *testing.B) { benchArtifact(b, "fig25") }

// BenchmarkMemoRecall measures memo-hit throughput under contention:
// fig18 is generated once to fill the memo, then concurrent goroutines
// regenerate it, with every simulation served from the shared cache.
func BenchmarkMemoRecall(b *testing.B) {
	opt := experiments.Quick()
	gen := experiments.Registry(opt)["fig18"]
	experiments.ResetMemo()
	if tab := gen(); len(tab.Rows) == 0 {
		b.Fatal("fig18 produced no rows")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if tab := gen(); len(tab.Rows) == 0 {
				b.Fatal("fig18 produced no rows")
			}
		}
	})
}

// --- Simulator microbenchmarks ---

// benchPolicy measures end-to-end simulation speed (accesses/op) for one
// policy on a loop-heavy mix.
func benchPolicy(b *testing.B, p Policy) { benchPolicyBanks(b, p, 0) }

func benchPolicyBanks(b *testing.B, p Policy, banks int) {
	cfg := DefaultConfig()
	cfg.Banks = banks
	if p == PolicyLhybrid {
		cfg = cfg.WithHybridL3()
	}
	mix := Mix{Name: "bench", Members: []string{"omnetpp", "libquantum", "mcf", "xalancbmk"}}
	const accesses = 100_000
	b.ReportAllocs()
	b.SetBytes(int64(accesses * cfg.Cores)) // "bytes" = accesses simulated
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, p, mix, accesses, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimNonInclusive(b *testing.B) { benchPolicy(b, PolicyNonInclusive) }
func BenchmarkSimExclusive(b *testing.B)    { benchPolicy(b, PolicyExclusive) }
func BenchmarkSimFLEXclusion(b *testing.B)  { benchPolicy(b, PolicyFLEXclusion) }
func BenchmarkSimDswitch(b *testing.B)      { benchPolicy(b, PolicyDswitch) }
func BenchmarkSimLAP(b *testing.B)          { benchPolicy(b, PolicyLAP) }
func BenchmarkSimLAPBanks4(b *testing.B)    { benchPolicyBanks(b, PolicyLAP, 4) }
func BenchmarkSimLhybrid(b *testing.B)      { benchPolicy(b, PolicyLhybrid) }

// BenchmarkCacheLookup measures the raw set-associative lookup path.
func BenchmarkCacheLookup(b *testing.B) {
	c := cache.New(cache.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, BlockBytes: 64})
	for blk := uint64(0); blk < 1<<17; blk++ {
		set := c.SetOf(blk)
		c.InsertAt(set, c.LRUVictim(set), blk, false, blk%3 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i) & (1<<18 - 1))
	}
}

// BenchmarkLoopAwareVictim measures the paper's replacement selector.
func BenchmarkLoopAwareVictim(b *testing.B) {
	c := cache.New(cache.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, BlockBytes: 64})
	for blk := uint64(0); blk < 1<<17; blk++ {
		set := c.SetOf(blk)
		c.InsertAt(set, c.LRUVictim(set), blk, blk%2 == 0, blk%3 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LoopAwareVictim(i & (c.NumSets() - 1))
	}
}

// BenchmarkWorkloadGen measures synthetic access generation.
func BenchmarkWorkloadGen(b *testing.B) {
	src := workload.New(workload.SPEC()[3], 1) // omnetpp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("endless source ended")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationDuelInterval sweeps the set-dueling window and reports
// LAP's EPI vs non-inclusion as a custom metric (epi_rel).
func BenchmarkAblationDuelInterval(b *testing.B) {
	cfg := DefaultConfig()
	mix := Mix{Name: "wh", Members: []string{"omnetpp", "xalancbmk", "bzip2", "omnetpp"}}
	for _, period := range []uint64{50_000, 250_000, 1_000_000} {
		b.Run(formatUint(period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := Run(cfg, PolicyNonInclusive, mix, 120_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				ctrl := core.NewLAP()
				ctrl.Duel().PeriodCycles = period
				srcs, err := sim.MixSources(mix, 120_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				res := sim.Run(cfg, ctrl, srcs)
				b.ReportMetric(res.EPI.Total()/base.EPI.Total(), "epi_rel")
			}
		})
	}
}

// BenchmarkAblationBankOccupancy compares fully blocking LLC banks with
// the sub-banked default, reporting relative throughput.
func BenchmarkAblationBankOccupancy(b *testing.B) {
	mix := Mix{Name: "wh", Members: []string{"omnetpp", "xalancbmk", "bzip2", "omnetpp"}}
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		b.Run(formatFrac(frac), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.BankOccupancyFrac = frac
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg, PolicyExclusive, mix, 120_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "throughput")
			}
		})
	}
}

// BenchmarkAblationReplacement compares LAP's replacement variants,
// reporting each variant's EPI relative to non-inclusion.
func BenchmarkAblationReplacement(b *testing.B) {
	cfg := DefaultConfig()
	mix := Mix{Name: "wh", Members: []string{"omnetpp", "xalancbmk", "bzip2", "omnetpp"}}
	for _, p := range []Policy{PolicyLAPLRU, PolicyLAPLoop, PolicyLAP} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := Run(cfg, PolicyNonInclusive, mix, 120_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(cfg, p, mix, 120_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EPI.Total()/base.EPI.Total(), "epi_rel")
			}
		})
	}
}

func formatUint(v uint64) string {
	switch {
	case v >= 1_000_000:
		return "period-1M"
	case v >= 250_000:
		return "period-250k"
	default:
		return "period-50k"
	}
}

func formatFrac(f float64) string {
	switch f {
	case 0.25:
		return "occ-0.25"
	case 0.5:
		return "occ-0.50"
	default:
		return "occ-1.00"
	}
}

// Extension artifacts.
func BenchmarkExtRRIP(b *testing.B)  { benchArtifact(b, "ext-rrip") }
func BenchmarkExtFNW(b *testing.B)   { benchArtifact(b, "ext-fnw") }
func BenchmarkExtSeeds(b *testing.B) { benchArtifact(b, "ext-seeds") }

// BenchmarkSimWithDRAM measures the row-buffer memory model's overhead.
func BenchmarkSimWithDRAM(b *testing.B) {
	cfg := DefaultConfig()
	cfg.UseDRAM = true
	mix := Mix{Name: "bench", Members: []string{"omnetpp", "libquantum", "mcf", "xalancbmk"}}
	const accesses = 100_000
	b.ReportAllocs()
	b.SetBytes(int64(accesses * cfg.Cores))
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, PolicyLAP, mix, accesses, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
