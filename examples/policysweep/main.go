// Policy sweep: reproduce the paper's Figure 23 insight — the write/read
// dynamic-energy ratio of the LLC technology is the key predictor of how
// much energy LAP saves — by sweeping a scaled STT-RAM cell from 2x to
// 25x and printing LAP's savings over non-inclusion and exclusion.
//
// Run with: go run ./examples/policysweep
package main

import (
	"fmt"
	"log"

	lap "repro"
)

func main() {
	mix := lap.Mix{Name: "sweep", Members: []string{"omnetpp", "libquantum", "xalancbmk", "GemsFDTD"}}
	const accesses = 200_000

	fmt.Println("w/r ratio   LAP vs non-inclusive   LAP vs exclusive")
	for _, ratio := range []float64{2, 4, 8, 16, 25} {
		cfg := lap.DefaultConfig().WithSTTL3(lap.STTRAM().WithWriteReadRatio(ratio))
		noni, err := lap.Run(cfg, lap.PolicyNonInclusive, mix, accesses, 1)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := lap.Run(cfg, lap.PolicyExclusive, mix, accesses, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := lap.Run(cfg, lap.PolicyLAP, mix, accesses, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1fx   %19.1f%%   %15.1f%%\n",
			ratio,
			100*(1-res.EPI.Total()/noni.EPI.Total()),
			100*(1-res.EPI.Total()/ex.EPI.Total()))
	}

	fmt.Println("\nSavings grow with the asymmetry and are already material at 2x,")
	fmt.Println("so LAP applies to any read/write-asymmetric memory, not just STT-RAM.")
}
