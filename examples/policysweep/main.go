// Policy sweep: reproduce the paper's Figure 23 insight — the write/read
// dynamic-energy ratio of the LLC technology is the key predictor of how
// much energy LAP saves — by sweeping a scaled STT-RAM cell from 2x to
// 25x and printing LAP's savings over non-inclusion and exclusion.
//
// The sweep points are independent, so they fan out across one goroutine
// per (ratio, policy) simulation, bounded by GOMAXPROCS, and print in
// ratio order once all results are in.
//
// Run with: go run ./examples/policysweep
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	lap "repro"
)

func main() {
	mix := lap.Mix{Name: "sweep", Members: []string{"omnetpp", "libquantum", "xalancbmk", "GemsFDTD"}}
	const accesses = 200_000
	ratios := []float64{2, 4, 8, 16, 25}
	policies := []lap.Policy{lap.PolicyNonInclusive, lap.PolicyExclusive, lap.PolicyLAP}

	// One cell per (ratio, policy); goroutines write disjoint slots, so
	// the only synchronisation needed is the WaitGroup.
	results := make([][]lap.Result, len(ratios))
	errs := make([]error, len(ratios)*len(policies))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, ratio := range ratios {
		results[i] = make([]lap.Result, len(policies))
		cfg := lap.DefaultConfig().WithSTTL3(lap.STTRAM().WithWriteReadRatio(ratio))
		for j, p := range policies {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i][j], errs[i*len(policies)+j] = lap.Run(cfg, p, mix, accesses, 1)
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("w/r ratio   LAP vs non-inclusive   LAP vs exclusive")
	for i, ratio := range ratios {
		noni, ex, res := results[i][0], results[i][1], results[i][2]
		fmt.Printf("%8.1fx   %19.1f%%   %15.1f%%\n",
			ratio,
			100*(1-res.EPI.Total()/noni.EPI.Total()),
			100*(1-res.EPI.Total()/ex.EPI.Total()))
	}

	fmt.Println("\nSavings grow with the asymmetry and are already material at 2x,")
	fmt.Println("so LAP applies to any read/write-asymmetric memory, not just STT-RAM.")
}
