// Trace-file example: capture a synthetic workload to a binary trace
// file, replay it from disk through the simulator, and verify the replay
// reproduces the live run exactly. This is the integration path for
// driving the simulator with externally captured traces.
//
// Run with: go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	lap "repro"
	"repro/internal/trace"
)

func main() {
	bench, err := lap.BenchmarkByName("bzip2")
	if err != nil {
		log.Fatal(err)
	}
	const accesses = 100_000

	dir, err := os.MkdirTemp("", "laptrace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bzip2.bin")

	// 1. Capture the workload to disk.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.WriteAll(f, trace.Limit(lap.NewWorkloadSource(bench, 42), accesses))
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("captured %d accesses of %s to %s (%d bytes)\n", n, bench.Name, path, fi.Size())

	// 2. Simulate live and from the trace file on a single-core system.
	cfg := lap.DefaultConfig()
	cfg.Cores = 1
	live, err := lap.RunTraces(cfg, lap.PolicyLAP, []lap.Source{
		trace.Limit(lap.NewWorkloadSource(bench, 42), accesses),
	})
	if err != nil {
		log.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	reader := trace.NewReader(rf)
	replayed, err := lap.RunTraces(cfg, lap.PolicyLAP, []lap.Source{reader})
	if err != nil {
		log.Fatal(err)
	}
	if reader.Err() != nil {
		log.Fatal(reader.Err())
	}

	// 3. The replay must be bit-identical.
	fmt.Printf("live   : EPI %.4f, LLC writes %d, misses %d\n",
		live.EPI.Total(), live.Met.WritesToLLC(), live.Met.L3Misses)
	fmt.Printf("replay : EPI %.4f, LLC writes %d, misses %d\n",
		replayed.EPI.Total(), replayed.Met.WritesToLLC(), replayed.Met.L3Misses)
	if live.Met == replayed.Met {
		fmt.Println("replay matches the live run exactly")
	} else {
		fmt.Println("MISMATCH: replay diverged from the live run")
		os.Exit(1)
	}
}
