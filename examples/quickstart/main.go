// Quickstart: simulate one loop-block-heavy workload mix under the three
// headline inclusion policies and compare the paper's metrics — LLC
// energy-per-instruction, write traffic, and throughput.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lap "repro"
)

func main() {
	// The paper's Table II system: 4 cores, 8MB shared STT-RAM LLC.
	cfg := lap.DefaultConfig()

	// WH1 from Table III: omnetpp + xalancbmk supply frequently reused
	// clean data (loop-blocks), the mix that separates the policies.
	mix := lap.TableIII()[5]
	fmt.Printf("mix %s: %v\n\n", mix.Name, mix.Members)

	const accesses = 300_000 // per core
	var baseline lap.Result
	for _, policy := range []lap.Policy{
		lap.PolicyNonInclusive, lap.PolicyExclusive, lap.PolicyLAP,
	} {
		res, err := lap.Run(cfg, policy, mix, accesses, 1)
		if err != nil {
			log.Fatal(err)
		}
		if policy == lap.PolicyNonInclusive {
			baseline = res
		}
		met := res.Met
		baseMet := baseline.Met
		fmt.Printf("%-14s EPI %.4f nJ/instr (%.2fx)  writes %8d (%.2fx)  throughput %.2f (%.2fx)\n",
			policy,
			res.EPI.Total(), res.EPI.Total()/baseline.EPI.Total(),
			met.WritesToLLC(), float64(met.WritesToLLC())/float64(baseMet.WritesToLLC()),
			res.Throughput, res.Throughput/baseline.Throughput)
	}

	fmt.Println("\nLAP should show the lowest EPI and write traffic with throughput")
	fmt.Println("at or above the exclusive policy — the paper's headline result.")
}
