// Tracetimeline: record a simulation as a Chrome trace-event timeline.
//
// Two policies run over the same loop-block-heavy mix with an interval
// telemetry hook attached; each run becomes its own track carrying a
// "run" span, the nested "warmup" span, one "epoch" span per interval,
// and per-interval counter series (accesses, misses, writebacks, fills,
// redundant_fills, loop_blocks) in simulated-cycle time. The result
// loads in Perfetto (https://ui.perfetto.dev) or chrome://tracing —
// timeline.json in this directory is a committed reference output.
//
// Run with: go run ./examples/tracetimeline
package main

import (
	"fmt"
	"log"
	"os"

	lap "repro"
)

func main() {
	cfg := lap.DefaultConfig()
	mix := lap.TableIII()[5] // WH1: loop-block heavy, separates the policies

	// One tracer collects every run; tracks keep them apart.
	tracer := lap.NewTracer(0)

	const accesses = 20_000 // per core, deliberately small for a readable timeline
	const interval = 1_000  // telemetry window in accesses (summed over cores)
	for _, policy := range []lap.Policy{lap.PolicyLAP, lap.PolicyNonInclusive} {
		tel := lap.TraceTelemetry(tracer, string(policy), interval)
		res, err := lap.RunObserved(cfg, policy, mix, accesses, 1, tel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s MPKI %.3f  %d cycles\n", policy, res.MPKI(), res.Cycles)
	}

	f, err := os.Create("timeline.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote timeline.json — open it in https://ui.perfetto.dev")
}
