// Characterize: profile workload surrogates the way the paper's Section
// II characterises its benchmarks — loop-block potential (clean reuse at
// LLC-visible distances, Fig. 4) and redundant-fill potential (writes at
// LLC-visible distances, Fig. 6) — then confirm the prediction by
// simulating the most loop-heavy one under LAP.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	lap "repro"
	"repro/internal/trace"
)

func main() {
	const window = 120_000
	fmt.Println("benchmark     loop-potential  redundant-fill  footprint")
	var loopiest lap.Benchmark
	best := -1.0
	for _, name := range []string{"omnetpp", "xalancbmk", "bzip2", "libquantum", "mcf", "lbm"} {
		b, err := lap.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		src := trace.Limit(lap.NewWorkloadSource(b, 1), window)
		rep := lap.Analyze(src, lap.AnalyzeOptions{MaxAccesses: window})
		fmt.Printf("%-12s  %13.1f%%  %13.1f%%  %6.1f MB\n",
			name, 100*rep.LoopPotential(), 100*rep.RedundantFillPotential(),
			float64(rep.FootprintBlocks)*64/1e6)
		if rep.LoopPotential() > best {
			best, loopiest = rep.LoopPotential(), b
		}
	}

	fmt.Printf("\nmost loop-heavy: %s — LAP should beat both traditional policies there:\n", loopiest.Name)
	cfg := lap.DefaultConfig()
	mix := lap.DuplicateMix(loopiest.Name, cfg.Cores)
	for _, p := range []lap.Policy{lap.PolicyNonInclusive, lap.PolicyExclusive, lap.PolicyLAP} {
		res, err := lap.Run(cfg, p, mix, 200_000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s EPI %.4f nJ/instr, LLC writes %d\n",
			p, res.EPI.Total(), res.Met.WritesToLLC())
	}
}
