// Hybrid LLC example: evaluate the paper's Section IV contribution — the
// Lhybrid loop-block-aware data placement for a 2MB SRAM + 6MB STT-RAM
// hybrid last-level cache — against plain LAP and the traditional
// policies, and show where the writes land (SRAM vs STT-RAM).
//
// Run with: go run ./examples/hybridllc
package main

import (
	"fmt"
	"log"

	lap "repro"
)

func main() {
	cfg := lap.DefaultConfig().WithHybridL3()
	mix := lap.TableIII()[6] // WH2: milc, omnetpp, bzip2, xalancbmk
	fmt.Printf("hybrid LLC (2MB SRAM + 6MB STT-RAM), mix %s: %v\n\n", mix.Name, mix.Members)

	const accesses = 300_000
	var base lap.Result
	for _, policy := range []lap.Policy{
		lap.PolicyNonInclusive, lap.PolicyExclusive, lap.PolicyLAP, lap.PolicyLhybrid,
	} {
		res, err := lap.Run(cfg, policy, mix, accesses, 1)
		if err != nil {
			log.Fatal(err)
		}
		if policy == lap.PolicyNonInclusive {
			base = res
		}
		met := res.Met
		fmt.Printf("%-14s EPI %.4f (%.2fx)  LLC writes %8d  SRAM->STT migrations %6d\n",
			policy, res.EPI.Total(), res.EPI.Total()/base.EPI.Total(),
			met.WritesToLLC(), met.MigrationWrites)
	}

	fmt.Println("\nLhybrid keeps write-prone non-loop-blocks in SRAM and migrates")
	fmt.Println("read-reused loop-blocks into STT-RAM, so the expensive STT writes")
	fmt.Println("shrink further than under technology-blind LAP placement.")
}
