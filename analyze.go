package lap

import (
	"io"

	"repro/internal/analysis"
)

// WorkloadReport is a trace characterisation: footprint, read/write mix,
// exact LRU reuse-distance profile, and the paper's two redundancy
// potentials (loop-blocks and redundant fills). See internal/analysis.
type WorkloadReport = analysis.Report

// AnalyzeOptions configures trace characterisation.
type AnalyzeOptions struct {
	// L2Blocks and LLCBlocks are the capacities (in 64B blocks) used to
	// classify reuse distances; zero selects the paper's Table II values
	// (8192 and 131072).
	L2Blocks, LLCBlocks uint64
	// MaxAccesses bounds the analysis window (0 = the whole source).
	MaxAccesses uint64
}

// Analyze characterises an access stream. Use it to calibrate custom
// workload surrogates against the paper's Figure 4/6 properties before
// simulating them.
func Analyze(src Source, opt AnalyzeOptions) *WorkloadReport {
	an := analysis.NewAnalyzer()
	if opt.L2Blocks > 0 {
		an.L2Blocks = opt.L2Blocks
	}
	if opt.LLCBlocks > 0 {
		an.LLCBlocks = opt.LLCBlocks
	}
	an.MaxAccesses = opt.MaxAccesses
	return an.Analyze(src)
}

// FprintReport renders a workload report (convenience re-export).
func FprintReport(w io.Writer, r *WorkloadReport) { r.Fprint(w) }
