// Package lap is a reproduction of "LAP: Loop-Block Aware Inclusion
// Properties for Energy-Efficient Asymmetric Last Level Caches"
// (Cheng et al., ISCA 2016) as a self-contained Go library.
//
// It provides a trace-driven, cycle-approximate simulator of a multi-core
// three-level cache hierarchy whose L2↔LLC inclusion property is
// pluggable: the traditional inclusive/non-inclusive/exclusive policies,
// the FLEXclusion and Dswitch dynamic-switching baselines, the paper's
// Loop-block-Aware Policy (LAP) in all its variants, and the Lhybrid
// data-placement policy for hybrid SRAM/STT-RAM LLCs. An NVSim/CACTI-
// derived energy model reports the paper's headline metric, LLC
// energy-per-instruction (EPI).
//
// Quick start:
//
//	cfg := lap.DefaultConfig()                   // Table II system, STT-RAM LLC
//	mix := lap.TableIII()[5]                     // the paper's WH1 mix
//	res, err := lap.Run(cfg, lap.PolicyLAP, mix, 400_000, 1)
//	if err != nil { ... }
//	fmt.Println(res.EPI.Total(), res.Throughput)
//
// The full experiment suite that regenerates every table and figure of
// the paper lives in cmd/lapexp; see DESIGN.md and EXPERIMENTS.md.
package lap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	otrace "repro/internal/obs/trace"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported building blocks. These aliases form the public surface of
// the library; the internal packages stay free to evolve.
type (
	// Config describes the simulated machine (see DefaultConfig).
	Config = sim.Config
	// Result is one simulation run's outcome.
	Result = sim.Result
	// Mix is a multi-programmed workload, one benchmark name per core.
	Mix = workload.Mix
	// Benchmark is a synthetic workload surrogate.
	Benchmark = workload.Benchmark
	// Tech is a memory technology's energy/latency description.
	Tech = energy.Tech
	// Access is one memory reference of a trace.
	Access = trace.Access
	// Source is a stream of accesses driving one core.
	Source = trace.Source
	// FieldError is a Config validation failure naming the bad field.
	FieldError = sim.FieldError
	// Telemetry is the per-interval observation hook for the Observed run
	// variants; build one by hand or with TraceTelemetry.
	Telemetry = sim.Telemetry
	// Interval is one telemetry window's counters.
	Interval = sim.Interval
	// Tracer records spans and counters for the trace-event exporters
	// (see internal/obs/trace); NewTracer constructs one.
	Tracer = otrace.Tracer
	// SampleProfile is a functional profiling pass's outcome: interval
	// signatures plus source checkpoints, reusable across policies.
	SampleProfile = sample.Profile
	// SampleEstimate is a sampled run's error report, carried in
	// Result.Sample (nil on exact runs).
	SampleEstimate = sim.SampleEstimate
)

// Policy names an inclusion property implemented by this library. Every
// policy is an entry in the internal/core registry; the constants below
// name the registered set, but any registered name (case-insensitively,
// optionally with a "+DWB" suffix) is a valid Policy.
type Policy string

// The implemented inclusion policies: the paper's Table IV set plus the
// STT-RAM competitor policies from the follow-up literature.
const (
	PolicyNonInclusive  Policy = "non-inclusive"
	PolicyExclusive     Policy = "exclusive"
	PolicyInclusive     Policy = "inclusive"
	PolicyFLEXclusion   Policy = "FLEXclusion"
	PolicyDswitch       Policy = "Dswitch"
	PolicyLAP           Policy = "LAP"
	PolicyLAPLRU        Policy = "LAP-LRU"
	PolicyLAPLoop       Policy = "LAP-Loop"
	PolicyLhybrid       Policy = "Lhybrid"
	PolicyReuseDetector Policy = "reuse-detector"
	PolicyRDCopyback    Policy = "rd-copyback"
)

// Policies returns every registered policy in Table IV order (the
// competitor policies follow the paper's set).
func Policies() []Policy {
	names := core.PolicyNames()
	out := make([]Policy, len(names))
	for i, n := range names {
		out[i] = Policy(n)
	}
	return out
}

// ResolvePolicies parses a policy argument — a single name, a comma
// list, or "all" — under cfg, returning canonical policies with
// duplicates collapsed plus notices for policies "all" skipped as
// ineligible (hybrid-only on a uniform LLC, sampled-ineligible when
// cfg.SampleInterval > 0). Explicitly requesting an ineligible or
// unknown name returns a *FieldError on "Policy".
func ResolvePolicies(cfg Config, arg string) ([]Policy, []string, error) {
	names, notices, err := cfg.ResolvePolicies(arg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Policy, len(names))
	for i, n := range names {
		out[i] = Policy(n)
	}
	return out, notices, nil
}

// DefaultConfig returns the paper's Table II system: 4 cores at 3GHz,
// 32KB L1s, 512KB L2s, and a shared 8MB 16-way STT-RAM L3 in 4 banks.
// Use the Config.WithSRAML3 / WithSTTL3 / WithHybridL3 helpers to vary
// the LLC technology.
func DefaultConfig() Config { return sim.DefaultConfig() }

// SRAM and STTRAM return the Table I technology models.
func SRAM() Tech { return energy.SRAM() }

// STTRAM returns the Table I STT-RAM model; scale its write/read energy
// ratio with Tech.WithWriteReadRatio for Figure 23-style studies.
func STTRAM() Tech { return energy.STTRAM() }

// NewController builds a fresh inclusion controller for one run by
// resolving p against the policy registry under cfg (the Dswitch policy
// derives its energy cost model from cfg). Appending "+DWB" to any
// policy name wraps it with the dead-write-bypass predictor (the
// paper's orthogonal reference [34]), e.g. "LAP+DWB". Unknown names and
// policies cfg cannot run return a *FieldError on "Policy".
func NewController(p Policy, cfg Config) (core.Controller, error) {
	return cfg.NewPolicyController(string(p), 0)
}

// Run simulates a multi-programmed mix (one member per core) under the
// given policy for accesses references per core, seeded deterministically.
func Run(cfg Config, p Policy, mix Mix, accesses, seed uint64) (Result, error) {
	return RunObserved(cfg, p, mix, accesses, seed, nil)
}

// RunObserved is Run with an optional epoch/interval telemetry hook; a
// nil tel is exactly Run.
func RunObserved(cfg Config, p Policy, mix Mix, accesses, seed uint64, tel *Telemetry) (Result, error) {
	ctrl, err := NewController(p, cfg)
	if err != nil {
		return Result{}, err
	}
	if len(mix.Members) != cfg.Cores {
		return Result{}, fmt.Errorf("lap: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
	}
	srcs, err := sim.MixSources(mix, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	return sim.RunObserved(cfg, ctrl, srcs, tel), nil
}

// BuildSampleProfile runs the functional profiling pass for sampled
// simulation over a mix: every access executes once in functional mode
// under a fixed policy-independent controller, producing per-interval
// signatures (window length cfg.SampleInterval, which must be set) and
// source checkpoints. The profile is reusable across policies — build
// it once per (config, workload) and replay it with RunSampledProfile
// for each policy of a sweep.
func BuildSampleProfile(cfg Config, mix Mix, accesses, seed uint64) (*SampleProfile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleInterval == 0 {
		return nil, fmt.Errorf("lap: BuildSampleProfile needs cfg.SampleInterval > 0")
	}
	if len(mix.Members) != cfg.Cores {
		return nil, fmt.Errorf("lap: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
	}
	srcs, err := sim.MixSources(mix, accesses, seed)
	if err != nil {
		return nil, err
	}
	return sample.BuildProfile(cfg, srcs, cfg.SampleInterval)
}

// RunSampledProfile replays a profile against one policy: cluster the
// intervals, simulate one representative per cluster in detail, and
// extrapolate by cluster weight. The returned Result carries its error
// report in Result.Sample.
func RunSampledProfile(cfg Config, p Policy, prof *SampleProfile) (Result, error) {
	ctrl, err := NewController(p, cfg)
	if err != nil {
		return Result{}, err
	}
	r, err := sample.Run(cfg, ctrl, prof)
	if err != nil {
		return Result{}, err
	}
	return r.Sim, nil
}

// RunSampled is the one-shot convenience: profile the mix, then replay
// it against one policy. For multi-policy sweeps, build the profile
// once with BuildSampleProfile and share it instead.
func RunSampled(cfg Config, p Policy, mix Mix, accesses, seed uint64) (Result, error) {
	prof, err := BuildSampleProfile(cfg, mix, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	return RunSampledProfile(cfg, p, prof)
}

// RunThreaded simulates a multi-threaded benchmark (one thread per core,
// shared address space, snooping coherence) under the given policy.
func RunThreaded(cfg Config, p Policy, b Benchmark, accesses, seed uint64) (Result, error) {
	return RunThreadedObserved(cfg, p, b, accesses, seed, nil)
}

// RunThreadedObserved is RunThreaded with an optional telemetry hook.
func RunThreadedObserved(cfg Config, p Policy, b Benchmark, accesses, seed uint64, tel *Telemetry) (Result, error) {
	ctrl, err := NewController(p, cfg)
	if err != nil {
		return Result{}, err
	}
	cfg.Coherent = true
	srcs := sim.ThreadSources(b, cfg.Cores, accesses, seed)
	return sim.RunObserved(cfg, ctrl, srcs, tel), nil
}

// RunTraces simulates arbitrary per-core access streams (e.g. loaded from
// trace files) under the given policy.
func RunTraces(cfg Config, p Policy, srcs []Source) (Result, error) {
	return RunTracesObserved(cfg, p, srcs, nil)
}

// RunTracesObserved is RunTraces with an optional telemetry hook.
func RunTracesObserved(cfg Config, p Policy, srcs []Source, tel *Telemetry) (Result, error) {
	ctrl, err := NewController(p, cfg)
	if err != nil {
		return Result{}, err
	}
	if len(srcs) != cfg.Cores {
		return Result{}, fmt.Errorf("lap: %d sources for %d cores", len(srcs), cfg.Cores)
	}
	return sim.RunObserved(cfg, ctrl, srcs, tel), nil
}

// NewTracer returns an enabled span tracer whose ring holds at most
// capacity events (<= 0 selects the default bound).
func NewTracer(capacity int) *Tracer { return otrace.New(capacity) }

// TraceTelemetry builds a Telemetry that renders a run as a
// simulated-time timeline on tr: a "run" span on a track named name, a
// nested "warmup" span, one "epoch" span per interval of the given
// length (in accesses summed over cores), and per-interval counter
// series. Nil — telemetry fully off — when tr is nil or disabled.
func TraceTelemetry(tr *Tracer, name string, interval uint64) *Telemetry {
	return sim.TraceTelemetry(tr, name, interval)
}

// SPEC returns the SPEC CPU2006 workload surrogates (Fig. 2/4/6).
func SPEC() []Benchmark { return workload.SPEC() }

// PARSEC returns the multi-threaded PARSEC surrogates (Fig. 20).
func PARSEC() []Benchmark { return workload.PARSEC() }

// BenchmarkByName resolves a benchmark, accepting the paper's
// abbreviations (omn, xalan, lib, Gems).
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// TableIII returns the paper's ten selected workload mixes WL1-WH5.
func TableIII() []Mix { return workload.TableIII() }

// RandomMixes reproduces the paper's 50-random-mix methodology.
func RandomMixes(n, width int, seed uint64) []Mix { return workload.RandomMixes(n, width, seed) }

// DuplicateMix returns n copies of one benchmark, the Figure 2 setup.
func DuplicateMix(name string, n int) Mix { return workload.Duplicate(name, n) }

// NewWorkloadSource returns an endless deterministic access stream for a
// benchmark; bound it with trace.Limit via RunTraces, or pass accesses to
// Run/RunThreaded instead.
func NewWorkloadSource(b Benchmark, seed uint64) Source { return workload.New(b, seed) }
