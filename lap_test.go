package lap

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// smallConfig shrinks the hierarchy for fast facade tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.L1SizeBytes = 4 << 10
	cfg.L2SizeBytes = 16 << 10
	cfg.L3SizeBytes = 256 << 10
	return cfg
}

func smallMix() Mix { return Mix{Name: "t", Members: []string{"omnetpp", "libquantum"}} }

func TestAllPoliciesRun(t *testing.T) {
	cfg := smallConfig()
	hybrid := cfg.WithHybridL3()
	for _, p := range Policies() {
		c := cfg
		if p == PolicyLhybrid {
			c = hybrid
		}
		res, err := Run(c, p, smallMix(), 20000, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Policy != string(p) && p != PolicyLhybrid {
			t.Errorf("%s: result policy %q", p, res.Policy)
		}
		if res.Met.Instructions == 0 || res.EPI.Total() <= 0 {
			t.Errorf("%s: empty result", p)
		}
	}
}

func TestUnknownPolicy(t *testing.T) {
	if _, err := NewController(Policy("bogus"), DefaultConfig()); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Run(smallConfig(), Policy("bogus"), smallMix(), 10, 1); err == nil {
		t.Fatal("Run accepted unknown policy")
	}
}

func TestRunValidatesMixWidth(t *testing.T) {
	if _, err := Run(smallConfig(), PolicyLAP, Mix{Name: "w", Members: []string{"mcf"}}, 10, 1); err == nil {
		t.Fatal("mix/core mismatch accepted")
	}
	if _, err := Run(smallConfig(), PolicyLAP, Mix{Name: "w", Members: []string{"nope", "nope"}}, 10, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(), PolicyLAP, smallMix(), 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(smallConfig(), PolicyLAP, smallMix(), 30000, 7)
	if a.Met != b.Met {
		t.Fatal("identical runs diverged")
	}
}

func TestLAPBeatsBaselinesOnWH(t *testing.T) {
	// End-to-end check of the paper's headline claim on a loop-heavy mix.
	cfg := DefaultConfig()
	mix := Mix{Name: "wh", Members: []string{"omnetpp", "xalancbmk", "omnetpp", "xalancbmk"}}
	noni, err := Run(cfg, PolicyNonInclusive, mix, 150000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := Run(cfg, PolicyExclusive, mix, 150000, 3)
	lap, _ := Run(cfg, PolicyLAP, mix, 150000, 3)
	if lap.EPI.Total() >= noni.EPI.Total() {
		t.Errorf("LAP EPI %.4f >= non-inclusive %.4f", lap.EPI.Total(), noni.EPI.Total())
	}
	if lap.EPI.Total() >= ex.EPI.Total() {
		t.Errorf("LAP EPI %.4f >= exclusive %.4f", lap.EPI.Total(), ex.EPI.Total())
	}
	lapMet, exMet, noniMet := lap.Met, ex.Met, noni.Met
	if lapMet.WritesToLLC() >= exMet.WritesToLLC() || lapMet.WritesToLLC() >= noniMet.WritesToLLC() {
		t.Error("LAP did not reduce LLC write traffic")
	}
}

func TestRunThreadedFacade(t *testing.T) {
	b, err := BenchmarkByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunThreaded(DefaultConfig(), PolicyLAP, b, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snoop.Probes == 0 {
		t.Fatal("threaded run had no coherence activity")
	}
}

func TestRunTraces(t *testing.T) {
	cfg := smallConfig()
	srcs := make([]Source, cfg.Cores)
	for i := range srcs {
		accs := make([]Access, 1000)
		for j := range accs {
			accs[j] = Access{Addr: uint64(i)<<40 | uint64(j*64), Write: j%3 == 0, Instrs: 4}
		}
		srcs[i] = trace.NewSliceSource(accs)
	}
	res, err := RunTraces(cfg, PolicyExclusive, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met.L1Accesses != 2000 {
		t.Fatalf("accesses = %d, want 2000", res.Met.L1Accesses)
	}
	if _, err := RunTraces(cfg, PolicyExclusive, srcs[:1]); err == nil {
		t.Fatal("source/core mismatch accepted")
	}
}

func TestCatalogueFacade(t *testing.T) {
	if len(SPEC()) != 13 || len(PARSEC()) < 11 || len(TableIII()) != 10 {
		t.Fatal("catalogue sizes drifted")
	}
	if len(RandomMixes(5, 4, 1)) != 5 {
		t.Fatal("RandomMixes wrong count")
	}
	m := DuplicateMix("mcf", 4)
	if len(m.Members) != 4 || m.Members[0] != "mcf" {
		t.Fatal("DuplicateMix wrong")
	}
	src := NewWorkloadSource(SPEC()[0], 1)
	if a, ok := src.Next(); !ok || a.Instrs == 0 {
		t.Fatal("workload source empty")
	}
}

func TestTechFacade(t *testing.T) {
	if SRAM().Name != "SRAM" || STTRAM().Name != "STT-RAM" {
		t.Fatal("tech names drifted")
	}
	scaled := STTRAM().WithWriteReadRatio(4)
	if !strings.Contains(scaled.Name, "w/r=4.0") {
		t.Fatalf("scaled name %q", scaled.Name)
	}
}

func TestAnalyzeFacade(t *testing.T) {
	b, _ := BenchmarkByName("omnetpp")
	src := NewWorkloadSource(b, 1)
	rep := Analyze(src, AnalyzeOptions{MaxAccesses: 50000})
	if rep.Accesses != 50000 {
		t.Fatalf("accesses = %d", rep.Accesses)
	}
	if rep.LoopPotential() <= 0 {
		t.Fatal("omnetpp loop potential must be positive")
	}
	// Defaults must pick up the Table II capacities.
	if rep.HitRateAtCapacity(131072) <= rep.HitRateAtCapacity(8192)-1e-9 {
		t.Fatal("hit rate not monotone in capacity")
	}
	var sb strings.Builder
	FprintReport(&sb, rep)
	if !strings.Contains(sb.String(), "loop potential") {
		t.Fatal("report rendering incomplete")
	}
}

func TestDRAMConfigViaFacade(t *testing.T) {
	cfg := smallConfig()
	cfg.UseDRAM = true
	res, err := Run(cfg, PolicyLAP, smallMix(), 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Reads == 0 {
		t.Fatal("DRAM model not engaged through the facade")
	}
}

func TestWarmupViaFacade(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupAccessesPerCore = 5000
	res, err := Run(cfg, PolicyExclusive, smallMix(), 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met.L1Accesses == 0 || res.Met.L1Accesses > 2*20000 {
		t.Fatalf("measured accesses = %d", res.Met.L1Accesses)
	}
}

func TestDWBPolicySuffix(t *testing.T) {
	cfg := smallConfig()
	for _, p := range []Policy{"LAP+DWB", "exclusive+DWB", "non-inclusive+DWB"} {
		res, err := Run(cfg, p, smallMix(), 20000, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Policy != string(p) {
			t.Fatalf("%s: result policy %q", p, res.Policy)
		}
	}
	if _, err := NewController(Policy("bogus+DWB"), cfg); err == nil {
		t.Fatal("bogus base accepted under +DWB")
	}
}
