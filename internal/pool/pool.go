// Package pool provides the bounded fan-out worker pool introduced with
// the PR 1 experiment scheduler, promoted so other subsystems (the
// lapserved sweep endpoint, lapsim's multi-policy runner) can fan batches
// of independent work onto a capped number of goroutines.
//
// Failure domain: a unit of work that panics is contained to its own
// slot. Run recovers panics into typed *RunError values carrying the
// unit's key and stack; Warm silently contains them (see Warm's
// contract). The process never dies because one simulation did.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

// Package-level instrumentation: the pool is stateless, so its counters
// are process-wide atomics (one add per task — noise-level next to a
// simulation). Register exposes them on an optional obs registry.
var (
	tasksTotal atomic.Uint64 // units executed by Run or a Warm pass
	taskErrors atomic.Uint64 // units that returned an error (injected faults included)
	taskPanics atomic.Uint64 // units whose panic was recovered
	// panicObserver, when set, receives every recovered panic (Run and
	// Warm passes alike) so contained failures can surface in an event
	// journal instead of only as a counter tick.
	panicObserver atomic.Pointer[func(key string, v any)]
)

// SetPanicObserver installs (or, with nil, removes) a process-wide hook
// called with the unit key and panic value each time the pool contains
// a panic. The hook runs on the recovering goroutine and must not
// block or re-panic.
func SetPanicObserver(fn func(key string, v any)) {
	if fn == nil {
		panicObserver.Store(nil)
		return
	}
	panicObserver.Store(&fn)
}

func notifyPanic(key string, v any) {
	if fn := panicObserver.Load(); fn != nil {
		(*fn)(key, v)
	}
}

// Register exposes the pool's process-wide task counters on an optional
// obs registry under prefix (e.g. "lapsim_pool"). Nil registries no-op.
func Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+"_tasks_total",
		"Work units executed by pool.Run and pool.Warm.", tasksTotal.Load)
	r.CounterFunc(prefix+"_task_errors_total",
		"Work units that returned an error.", taskErrors.Load)
	r.CounterFunc(prefix+"_task_panics_total",
		"Work units whose panic was recovered (process survived).", taskPanics.Load)
}

// Workers resolves an effective worker count from a jobs knob. The clamp
// is shared by every fan-out in the tree (the experiment scheduler,
// lapserved, lapsim), so negative/zero handling cannot drift between
// them: positive jobs are taken as-is, zero means one worker per
// schedulable CPU, and negative values — a caller bug with no sensible
// meaning — clamp to the serial path rather than silently behaving like
// the most parallel one.
func Workers(jobs int) int {
	if jobs > 0 {
		return jobs
	}
	if jobs < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// RunError is one work unit's recovered panic: the unit's key, the panic
// value, and the goroutine stack captured at recovery, so the failure
// stays debuggable after the process has survived it.
type RunError struct {
	// Key identifies the failed unit (run key, sweep cell label).
	Key string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the failing goroutine's stack at recovery.
	Stack []byte
}

func (e *RunError) Error() string {
	return fmt.Sprintf("pool: run %q panicked: %v", e.Key, e.Panic)
}

// Recovered converts a recovered panic value into a *RunError. Callers
// that isolate panics themselves (memoised computes, request handlers)
// share this constructor so every failure domain produces the same typed
// value.
func Recovered(key string, v any) *RunError {
	return &RunError{Key: key, Panic: v, Stack: debug.Stack()}
}

// Task is one unit of work for Run.
type Task struct {
	// Key identifies the unit in failures.
	Key string
	// Ctx optionally carries a trace span; when set, the task's execution
	// is recorded as a "pool.task" child span. A nil Ctx (or one without a
	// span) costs nothing.
	Ctx context.Context
	// Do executes the unit.
	Do func() error
}

// Run executes every task — serially when workers <= 1 — and returns one
// error slot per task (nil on success). Unlike Warm, Run always executes
// the whole batch. A task that panics is recovered into a *RunError; the
// other tasks and the process are unaffected. The pool.task fault point
// can inject failures ahead of each task for chaos tests.
func Run(workers int, tasks []Task) []error {
	errs := make([]error, len(tasks))
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i := range tasks {
			errs[i] = runTask(tasks[i])
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(tasks) {
					return
				}
				errs[j] = runTask(tasks[j])
			}
		}()
	}
	wg.Wait()
	return errs
}

// runTask executes one task with panic isolation.
func runTask(t Task) (err error) {
	tasksTotal.Add(1)
	var sp *otrace.Span
	if t.Ctx != nil {
		_, sp = otrace.Start(t.Ctx, "pool.task", otrace.Str("key", t.Key))
	}
	defer func() {
		if r := recover(); r != nil {
			taskPanics.Add(1)
			notifyPanic(t.Key, r)
			err = Recovered(t.Key, r)
		} else if err != nil {
			taskErrors.Add(1)
		}
		if sp != nil {
			sp.SetAttr(otrace.Bool("failed", err != nil))
			sp.End()
		}
	}()
	if err := fault.Inject(fault.PointPoolTask, t.Key); err != nil {
		return err
	}
	return t.Do()
}

// Warm executes the batch on up to workers goroutines and waits for all
// of them. With one worker (or fewer) it is a no-op: Warm's contract is
// that of a pure performance hint for a serial collection pass that
// follows — any unit of work the warm pass skips is simply computed on
// first use by the collector, so workers<=1 is exactly the serial path.
// Callers that need every thunk to run regardless of worker count must
// use Run instead.
//
// Each thunk runs panic-isolated: a panicking unit is contained here
// (its memo entry is dropped as poisoned, see internal/memo) and the
// failure surfaces on the serial collection pass, which re-executes the
// unit in the caller's goroutine — one corrupt run can no longer take a
// whole warm pass, or the process, down with it.
func Warm(workers int, batch []func()) {
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(batch) {
					return
				}
				func() {
					tasksTotal.Add(1)
					defer func() {
						if r := recover(); r != nil {
							taskPanics.Add(1)
							notifyPanic("warm", r)
						}
					}()
					batch[j]()
				}()
			}
		}()
	}
	wg.Wait()
}
