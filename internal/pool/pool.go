// Package pool provides the bounded fan-out worker pool introduced with
// the PR 1 experiment scheduler, promoted so other subsystems (the
// lapserved sweep endpoint) can fan batches of independent work onto a
// capped number of goroutines.
package pool

import (
	"sync"
	"sync/atomic"
)

// Warm executes the batch on up to workers goroutines and waits for all
// of them. With one worker (or fewer) it is a no-op: Warm's contract is
// that of a pure performance hint for a serial collection pass that
// follows — any unit of work the warm pass skips is simply computed on
// first use by the collector, so workers<=1 is exactly the serial path.
// Callers that need every thunk to run regardless of worker count must
// run the batch themselves when Warm declines it.
func Warm(workers int, batch []func()) {
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(batch) {
					return
				}
				batch[j]()
			}
		}()
	}
	wg.Wait()
}
