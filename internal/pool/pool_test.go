package pool

import (
	"sync/atomic"
	"testing"
)

func TestWarmRunsEveryThunk(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	batch := make([]func(), n)
	for i := 0; i < n; i++ {
		batch[i] = func() { ran[i].Add(1) }
	}
	Warm(8, batch)
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("thunk %d ran %d times, want 1", i, got)
		}
	}
}

func TestWarmSerialIsNoop(t *testing.T) {
	for _, workers := range []int{1, 0, -3} {
		ran := false
		Warm(workers, []func(){func() { ran = true }})
		if ran {
			t.Fatalf("Warm(workers=%d) executed its batch", workers)
		}
	}
}

func TestWarmClampsToBatchSize(t *testing.T) {
	// More workers than thunks must not deadlock or double-run.
	var count atomic.Int32
	Warm(64, []func(){func() { count.Add(1) }, func() { count.Add(1) }})
	if got := count.Load(); got != 2 {
		t.Fatalf("ran %d thunks, want 2", got)
	}
}

func TestWarmEmptyBatch(t *testing.T) {
	Warm(4, nil) // must not panic or hang
}

// TestWarmBoundsConcurrency checks that at most `workers` thunks are in
// flight simultaneously.
func TestWarmBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	batch := make([]func(), 50)
	for i := range batch {
		batch[i] = func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
		}
	}
	Warm(workers, batch)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
