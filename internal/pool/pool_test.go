package pool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
)

func TestWarmRunsEveryThunk(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	batch := make([]func(), n)
	for i := 0; i < n; i++ {
		batch[i] = func() { ran[i].Add(1) }
	}
	Warm(8, batch)
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("thunk %d ran %d times, want 1", i, got)
		}
	}
}

func TestWarmSerialIsNoop(t *testing.T) {
	for _, workers := range []int{1, 0, -3} {
		ran := false
		Warm(workers, []func(){func() { ran = true }})
		if ran {
			t.Fatalf("Warm(workers=%d) executed its batch", workers)
		}
	}
}

func TestWarmClampsToBatchSize(t *testing.T) {
	// More workers than thunks must not deadlock or double-run.
	var count atomic.Int32
	Warm(64, []func(){func() { count.Add(1) }, func() { count.Add(1) }})
	if got := count.Load(); got != 2 {
		t.Fatalf("ran %d thunks, want 2", got)
	}
}

func TestWarmEmptyBatch(t *testing.T) {
	Warm(4, nil) // must not panic or hang
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct{ jobs, want int }{
		{jobs: -1, want: 1}, // negative is a caller bug: clamp to serial
		{jobs: 0, want: runtime.GOMAXPROCS(0)},
		{jobs: 1, want: 1},
		{jobs: 8, want: 8},
	}
	for _, c := range cases {
		if got := Workers(c.jobs); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.jobs, got, c.want)
		}
	}
}

// TestWarmContainsPanics is the pool's core failure-domain contract: a
// panicking thunk must not take down the process (pre-PR 3, one corrupt
// run crashed the whole warm pass), and the rest of the batch still runs.
func TestWarmContainsPanics(t *testing.T) {
	var ran atomic.Int32
	batch := make([]func(), 20)
	for i := range batch {
		if i%3 == 0 {
			batch[i] = func() { panic("corrupt trace") }
		} else {
			batch[i] = func() { ran.Add(1) }
		}
	}
	Warm(4, batch) // must return normally
	if got := ran.Load(); got != 13 {
		t.Fatalf("%d healthy thunks ran, want 13", got)
	}
}

func TestRunExecutesAllAndIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		tasks := make([]Task, 10)
		for i := range tasks {
			i := i
			switch {
			case i == 3:
				tasks[i] = Task{Key: fmt.Sprintf("cell-%d", i), Do: func() error { panic("boom") }}
			case i == 7:
				tasks[i] = Task{Key: fmt.Sprintf("cell-%d", i), Do: func() error { return errors.New("plain failure") }}
			default:
				tasks[i] = Task{Key: fmt.Sprintf("cell-%d", i), Do: func() error { ran.Add(1); return nil }}
			}
		}
		errs := Run(workers, tasks)
		if got := ran.Load(); got != 8 {
			t.Fatalf("workers=%d: %d healthy tasks ran, want 8", workers, got)
		}
		var re *RunError
		if !errors.As(errs[3], &re) {
			t.Fatalf("workers=%d: panicking task error = %T %v, want *RunError", workers, errs[3], errs[3])
		}
		if re.Key != "cell-3" || re.Panic != "boom" || !strings.Contains(string(re.Stack), "pool") {
			t.Fatalf("workers=%d: RunError lost context: key=%q panic=%v stack=%d bytes",
				workers, re.Key, re.Panic, len(re.Stack))
		}
		if errs[7] == nil || errors.As(errs[7], &re) && errs[7].Error() == "" {
			t.Fatalf("workers=%d: plain error lost: %v", workers, errs[7])
		}
		for _, i := range []int{0, 1, 2, 4, 5, 6, 8, 9} {
			if errs[i] != nil {
				t.Fatalf("workers=%d: healthy task %d errored: %v", workers, i, errs[i])
			}
		}
	}
}

// TestFaultPointPoolTask drives the pool.task injection point: armed
// faults surface in the error slots of exactly the matching tasks.
func TestFaultPointPoolTask(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.Spec{Point: fault.PointPoolTask, Match: "victim", Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	errs := Run(2, []Task{
		{Key: "healthy-0", Do: func() error { ran.Add(1); return nil }},
		{Key: "victim-1", Do: func() error { ran.Add(1); return nil }},
		{Key: "healthy-2", Do: func() error { ran.Add(1); return nil }},
	})
	var inj *fault.InjectedError
	if !errors.As(errs[1], &inj) {
		t.Fatalf("victim error = %T %v, want *fault.InjectedError", errs[1], errs[1])
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy tasks errored: %v / %v", errs[0], errs[2])
	}
	if ran.Load() != 2 {
		t.Fatalf("injected fault did not pre-empt its task: ran=%d", ran.Load())
	}
}

func TestRunEmptyBatch(t *testing.T) {
	if errs := Run(4, nil); len(errs) != 0 {
		t.Fatalf("Run(4, nil) = %v", errs)
	}
}

// TestWarmBoundsConcurrency checks that at most `workers` thunks are in
// flight simultaneously.
func TestWarmBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	batch := make([]func(), 50)
	for i := range batch {
		batch[i] = func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
		}
	}
	Warm(workers, batch)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestPanicObserver: contained panics surface through the observer with
// the unit's key and panic value.
func TestPanicObserver(t *testing.T) {
	type hit struct {
		key string
		v   any
	}
	var mu sync.Mutex
	var hits []hit
	SetPanicObserver(func(key string, v any) {
		mu.Lock()
		defer mu.Unlock()
		hits = append(hits, hit{key, v})
	})
	defer SetPanicObserver(nil)

	errs := Run(2, []Task{
		{Key: "ok", Do: func() error { return nil }},
		{Key: "boom", Do: func() error { panic("kapow") }},
	})
	if errs[0] != nil || errs[1] == nil {
		t.Fatalf("errs = %v", errs)
	}
	Warm(2, []func(){func() { panic("warm-boom") }, func() {}})

	mu.Lock()
	defer mu.Unlock()
	if len(hits) != 2 {
		t.Fatalf("observer hits = %+v, want 2", hits)
	}
	seen := map[string]any{}
	for _, h := range hits {
		seen[h.key] = h.v
	}
	if seen["boom"] != "kapow" || seen["warm"] != "warm-boom" {
		t.Fatalf("observer hits = %+v", hits)
	}
}
