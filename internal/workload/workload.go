// Package workload synthesises the memory-reference behaviour of the
// SPEC CPU2006 and PARSEC benchmarks the paper evaluates. The paper's own
// analysis characterises each workload by a handful of properties — the
// fraction of loop-blocks and their clean-trip counts (Fig. 4), the
// fraction of redundant LLC data-fills (Fig. 6), and the relative
// miss/write traffic under exclusion (Fig. 2/13) — so each surrogate is a
// mixture of access regions parameterised directly in those terms:
//
//   - Hot: a small working set with high reuse (filtered by L1/L2).
//   - Loop: a cyclically scanned read-only set sized between the L2 and
//     the per-core LLC share; this is the loop-block generator.
//   - RMW: a randomly accessed read-modify-write set producing dirty
//     victims; sized above the LLC it also produces redundant data-fills.
//   - Stream: a sequential read stream with no reuse.
//   - StreamRMW: a sequential read-then-write stream with no reuse — the
//     pure redundant-data-fill generator (libquantum-style).
//
// Generators are deterministic given a seed and implement trace.Source.
package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/trace"
)

// RegionKind enumerates the access-pattern archetypes a surrogate mixes.
type RegionKind int

// Region kinds; see the package comment for semantics.
const (
	Hot RegionKind = iota
	Loop
	RMW
	Stream
	StreamRMW
)

// String returns the kind's name.
func (k RegionKind) String() string {
	switch k {
	case Hot:
		return "Hot"
	case Loop:
		return "Loop"
	case RMW:
		return "RMW"
	case Stream:
		return "Stream"
	case StreamRMW:
		return "StreamRMW"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// BlockBytes is the cache-block granularity the generators emit (matching
// the hierarchy's 64B blocks).
const BlockBytes = 64

// Region is one component of a surrogate's access mixture.
type Region struct {
	// Kind selects the access pattern.
	Kind RegionKind
	// Blocks is the region's working-set size in 64B blocks. Stream kinds
	// treat it as a ring large enough that wrap-around never re-hits the
	// caches; a zero value selects a default 4M-block (256MB) ring.
	Blocks uint64
	// Weight is the region's share of the access stream (weights are
	// normalised over the benchmark, so they need not sum to 1).
	Weight float64
	// WriteFrac is the probability an access writes (Hot), or the
	// probability a read is followed by a write-back of the same block
	// (RMW). Loop and Stream ignore it; StreamRMW always writes.
	WriteFrac float64
	// Shared marks the region as shared between the threads of a
	// multi-threaded workload; private regions get per-thread bases.
	Shared bool
}

// Benchmark is a named surrogate: a mixture of regions plus the mean
// number of instructions retired per memory access (compute intensity).
type Benchmark struct {
	// Name is the benchmark's SPEC/PARSEC name.
	Name string
	// InstrPerAccess is the mean instructions per memory reference.
	InstrPerAccess float64
	// Regions is the access mixture.
	Regions []Region
	// Threaded marks PARSEC-style shared-address-space workloads.
	Threaded bool
}

const defaultStreamRing = 1 << 22 // 256MB of block addresses; never re-hits

// generator emits the surrogate's access stream. It implements
// trace.Source and never ends; wrap it with trace.Limit.
type generator struct {
	bench    Benchmark
	rng      *rand.Rand
	pcg      *rand.PCG // rng's source, retained so Fork can snapshot it
	cum      []float64 // cumulative normalised weights
	bases    []uint64  // per-region base block address
	cursors  []uint64  // per-region loop/stream cursor
	pending  trace.Access
	havePend bool
	instErr  float64 // dithering accumulator for fractional InstrPerAccess
}

// regionSpaceBits separates region address spaces within one benchmark;
// 2^28 blocks = 16GB per region is far beyond any working set here.
const regionSpaceBits = 28

// threadSpaceBits separates per-thread private address spaces.
const threadSpaceBits = 36

// New returns an endless trace.Source for bench, seeded deterministically.
// For single-threaded use; see Threads for multi-threaded workloads.
func New(bench Benchmark, seed uint64) trace.Source {
	return newGenerator(bench, seed, 0, 1)
}

// Threads returns one source per thread of a shared-address-space
// workload. Shared regions use a common base across threads (so threads
// genuinely share blocks); private regions are offset per thread. Loop
// cursors of shared regions start phase-shifted so threads sweep the
// shared data the way PARSEC's data-parallel loops do.
func Threads(bench Benchmark, n int, seed uint64) []trace.Source {
	if n <= 0 {
		panic("workload: thread count must be positive")
	}
	srcs := make([]trace.Source, n)
	for t := 0; t < n; t++ {
		srcs[t] = newGenerator(bench, seed+uint64(t)*0x9e3779b9, t, n)
	}
	return srcs
}

func newGenerator(bench Benchmark, seed uint64, thread, nthreads int) *generator {
	if len(bench.Regions) == 0 {
		panic(fmt.Sprintf("workload %q: no regions", bench.Name))
	}
	if bench.InstrPerAccess < 1 {
		panic(fmt.Sprintf("workload %q: InstrPerAccess must be >= 1", bench.Name))
	}
	pcg := rand.NewPCG(seed, 0x9e3779b97f4a7c15+uint64(thread))
	g := &generator{
		bench: bench,
		rng:   rand.New(pcg),
		pcg:   pcg,
	}
	total := 0.0
	for _, r := range bench.Regions {
		if r.Weight < 0 {
			panic(fmt.Sprintf("workload %q: negative region weight", bench.Name))
		}
		total += r.Weight
	}
	if total <= 0 {
		panic(fmt.Sprintf("workload %q: zero total weight", bench.Name))
	}
	acc := 0.0
	for i, r := range bench.Regions {
		acc += r.Weight / total
		g.cum = append(g.cum, acc)
		base := uint64(i+1) << regionSpaceBits
		if !r.Shared {
			base += uint64(thread+1) << threadSpaceBits
		}
		g.bases = append(g.bases, base)
		cursor := uint64(0)
		if r.Shared && nthreads > 1 {
			blocks := r.Blocks
			if blocks == 0 {
				blocks = defaultStreamRing
			}
			cursor = blocks * uint64(thread) / uint64(nthreads)
		}
		g.cursors = append(g.cursors, cursor)
	}
	g.cum[len(g.cum)-1] = 1.0 // absorb rounding
	return g
}

// Next implements trace.Source. The stream is infinite.
func (g *generator) Next() (trace.Access, bool) {
	if g.havePend {
		g.havePend = false
		a := g.pending
		a.Instrs = g.instrs()
		return a, true
	}
	ri := g.pick()
	r := &g.bench.Regions[ri]
	blocks := r.Blocks
	if blocks == 0 {
		blocks = defaultStreamRing
	}
	var block uint64
	write := false
	switch r.Kind {
	case Hot:
		block = g.rng.Uint64N(blocks)
		write = g.rng.Float64() < r.WriteFrac
	case Loop:
		block = g.cursors[ri]
		g.cursors[ri] = (g.cursors[ri] + 1) % blocks
	case RMW:
		block = g.rng.Uint64N(blocks)
		if g.rng.Float64() < r.WriteFrac {
			g.pending = trace.Access{Addr: (g.bases[ri] + block) * BlockBytes, Write: true}
			g.havePend = true
		}
	case Stream, StreamRMW:
		block = g.cursors[ri]
		g.cursors[ri] = (g.cursors[ri] + 1) % blocks
		if r.Kind == StreamRMW {
			g.pending = trace.Access{Addr: (g.bases[ri] + block) * BlockBytes, Write: true}
			g.havePend = true
		}
	default:
		panic(fmt.Sprintf("workload %q: unknown region kind %d", g.bench.Name, r.Kind))
	}
	return trace.Access{
		Addr:   (g.bases[ri] + block) * BlockBytes,
		Write:  write,
		Instrs: g.instrs(),
	}, true
}

// NextBatch implements trace.BatchSource; the stream is infinite, so the
// batch is always filled completely.
func (g *generator) NextBatch(dst []trace.Access) int {
	for i := range dst {
		dst[i], _ = g.Next()
	}
	return len(dst)
}

// Fork implements trace.Forker: the returned source continues the
// stream from the generator's current position, with its own copy of
// every piece of mutable state (PCG state, region cursors, pending RMW
// write, instruction dither). The immutable mixture tables (cum, bases)
// are shared.
func (g *generator) Fork() trace.Source {
	state, err := g.pcg.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("workload %q: snapshot rng: %v", g.bench.Name, err))
	}
	pcg := &rand.PCG{}
	if err := pcg.UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("workload %q: restore rng: %v", g.bench.Name, err))
	}
	return &generator{
		bench:    g.bench,
		rng:      rand.New(pcg),
		pcg:      pcg,
		cum:      g.cum,
		bases:    g.bases,
		cursors:  append([]uint64(nil), g.cursors...),
		pending:  g.pending,
		havePend: g.havePend,
		instErr:  g.instErr,
	}
}

func (g *generator) pick() int {
	x := g.rng.Float64()
	for i, c := range g.cum {
		if x < c {
			return i
		}
	}
	return len(g.cum) - 1
}

// instrs dithers the fractional mean InstrPerAccess into a deterministic
// integer sequence whose average converges to the mean.
func (g *generator) instrs() uint16 {
	want := g.bench.InstrPerAccess + g.instErr
	n := uint16(want)
	if n < 1 {
		n = 1
	}
	g.instErr = want - float64(n)
	return n
}
