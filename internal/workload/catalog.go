package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// This file is the benchmark catalogue: the 13 SPEC CPU2006 surrogates of
// the paper's Figure 2/4/6, the PARSEC surrogates of Figure 20, the ten
// Table III workload mixes, and the 50 random mixes used by Figures 12-14.
//
// Region sizes are stated in 64B blocks. For calibration: the 512KB L2 is
// 8,192 blocks, the 8MB shared L3 is 131,072 blocks, and each of 4 cores
// can claim a ~32,768-block (2MB) LLC share. Loop regions sit between the
// L2 and the per-core LLC share so their sweeps miss L2 but hit L3 — the
// loop-block condition of Section II-C1.

// SPEC returns the SPEC CPU2006 surrogates in the order the paper's
// Figure 2 plots them.
func SPEC() []Benchmark {
	return []Benchmark{
		{
			// astar: pointer-chasing pathfinding over a large mutable
			// graph; dirty-victim dominated, many redundant fills.
			Name: "astar", InstrPerAccess: 16,
			Regions: []Region{
				{Kind: RMW, Blocks: 32768, Weight: 0.50, WriteFrac: 0.70},
				{Kind: Hot, Blocks: 1024, Weight: 0.40, WriteFrac: 0.30},
				{Kind: Stream, Weight: 0.10},
			},
		},
		{
			// zeusmp: CFD with large writable arrays; favours exclusion.
			Name: "zeusmp", InstrPerAccess: 20,
			Regions: []Region{
				{Kind: Hot, Blocks: 2048, Weight: 0.35, WriteFrac: 0.30},
				{Kind: RMW, Blocks: 24576, Weight: 0.45, WriteFrac: 0.80},
				{Kind: Stream, Weight: 0.20},
			},
		},
		{
			// dealII: finite elements; mostly cache-resident with a
			// modest reused read set.
			Name: "dealII", InstrPerAccess: 20,
			Regions: []Region{
				{Kind: Hot, Blocks: 3072, Weight: 0.56, WriteFrac: 0.30},
				{Kind: Loop, Blocks: 8192 + 4096, Weight: 0.06},
				{Kind: RMW, Blocks: 16384, Weight: 0.38, WriteFrac: 0.45},
			},
		},
		{
			// omnetpp: discrete-event simulation with a frequently-read
			// event structure bigger than L2 but smaller than the LLC —
			// the paper's canonical loop-block workload (>60%, Fig. 4).
			Name: "omnetpp", InstrPerAccess: 12,
			Regions: []Region{
				{Kind: Loop, Blocks: 24576, Weight: 0.58},
				{Kind: Hot, Blocks: 512, Weight: 0.17, WriteFrac: 0.30},
				{Kind: RMW, Blocks: 32768, Weight: 0.25, WriteFrac: 0.50},
			},
		},
		{
			// xalancbmk: XSLT processing; reused read-mostly tables,
			// >60% loop-blocks.
			Name: "xalancbmk", InstrPerAccess: 12,
			Regions: []Region{
				{Kind: Loop, Blocks: 20480, Weight: 0.58},
				{Kind: Hot, Blocks: 768, Weight: 0.18, WriteFrac: 0.25},
				{Kind: RMW, Blocks: 24576, Weight: 0.24, WriteFrac: 0.50},
			},
		},
		{
			// bzip2: compression; block-sorting tables give a moderate
			// loop-block population (>20%, Fig. 4).
			Name: "bzip2", InstrPerAccess: 16,
			Regions: []Region{
				{Kind: Loop, Blocks: 12288, Weight: 0.26},
				{Kind: Hot, Blocks: 2048, Weight: 0.40, WriteFrac: 0.35},
				{Kind: RMW, Blocks: 24576, Weight: 0.34, WriteFrac: 0.50},
			},
		},
		{
			// GemsFDTD: finite-difference time domain; sweeping updates
			// of large grids — heavy redundant data-fill (Fig. 6).
			Name: "GemsFDTD", InstrPerAccess: 16,
			Regions: []Region{
				{Kind: StreamRMW, Weight: 0.45},
				{Kind: RMW, Blocks: 40960, Weight: 0.25, WriteFrac: 0.60},
				{Kind: Hot, Blocks: 1024, Weight: 0.30, WriteFrac: 0.20},
			},
		},
		{
			// mcf: sparse network simplex; a giant pointer-heavy
			// structure far beyond the LLC, high miss rate.
			Name: "mcf", InstrPerAccess: 8,
			Regions: []Region{
				{Kind: RMW, Blocks: 49152, Weight: 0.45, WriteFrac: 0.55},
				{Kind: Stream, Weight: 0.25},
				{Kind: Hot, Blocks: 1024, Weight: 0.30, WriteFrac: 0.20},
			},
		},
		{
			// milc: lattice QCD; streaming with moderate reuse.
			Name: "milc", InstrPerAccess: 20,
			Regions: []Region{
				{Kind: Stream, Weight: 0.40},
				{Kind: RMW, Blocks: 32768, Weight: 0.20, WriteFrac: 0.50},
				{Kind: Hot, Blocks: 1024, Weight: 0.28, WriteFrac: 0.20},
				{Kind: Loop, Blocks: 8192 + 2048, Weight: 0.12},
			},
		},
		{
			// leslie3d: CFD; streaming plus a reused stencil halo.
			Name: "leslie3d", InstrPerAccess: 20,
			Regions: []Region{
				{Kind: Stream, Weight: 0.33},
				{Kind: Loop, Blocks: 8192 + 2048, Weight: 0.10},
				{Kind: Hot, Blocks: 1536, Weight: 0.27, WriteFrac: 0.25},
				{Kind: RMW, Blocks: 16384, Weight: 0.30, WriteFrac: 0.55},
			},
		},
		{
			// lbm: lattice Boltzmann; stream-and-update of the whole
			// fluid grid — write-dominated, favours exclusion.
			Name: "lbm", InstrPerAccess: 16,
			Regions: []Region{
				{Kind: StreamRMW, Weight: 0.55},
				{Kind: Stream, Weight: 0.20},
				{Kind: Hot, Blocks: 512, Weight: 0.25, WriteFrac: 0.30},
			},
		},
		{
			// bwaves: blast-wave CFD; read-streaming dominated.
			Name: "bwaves", InstrPerAccess: 24,
			Regions: []Region{
				{Kind: Stream, Weight: 0.50},
				{Kind: RMW, Blocks: 24576, Weight: 0.22, WriteFrac: 0.40},
				{Kind: Hot, Blocks: 1024, Weight: 0.28, WriteFrac: 0.20},
			},
		},
		{
			// libquantum: quantum simulation; a pure read-modify-write
			// sweep over a huge vector — >80% redundant data-fills.
			Name: "libquantum", InstrPerAccess: 16,
			Regions: []Region{
				{Kind: StreamRMW, Weight: 0.80},
				{Kind: Hot, Blocks: 256, Weight: 0.20, WriteFrac: 0.20},
			},
		},
	}
}

// PARSEC returns the multi-threaded surrogates for Figure 20.
func PARSEC() []Benchmark {
	return []Benchmark{
		{
			// blackscholes: embarrassingly parallel option pricing;
			// tiny footprint, compute bound.
			Name: "blackscholes", InstrPerAccess: 40, Threaded: true,
			Regions: []Region{
				{Kind: Hot, Blocks: 1024, Weight: 0.85, WriteFrac: 0.30},
				{Kind: Stream, Weight: 0.15},
			},
		},
		{
			Name: "bodytrack", InstrPerAccess: 36, Threaded: true,
			Regions: []Region{
				{Kind: Hot, Blocks: 2048, Weight: 0.75, WriteFrac: 0.30},
				{Kind: Loop, Blocks: 12288, Weight: 0.07, Shared: true},
				{Kind: StreamRMW, Weight: 0.08},
				{Kind: Stream, Weight: 0.10},
			},
		},
		{
			// canneal: simulated annealing over a netlist far larger
			// than the LLC; cache-hostile random RMW.
			Name: "canneal", InstrPerAccess: 10, Threaded: true,
			Regions: []Region{
				{Kind: RMW, Blocks: 163840, Weight: 0.50, WriteFrac: 0.50, Shared: true},
				{Kind: Hot, Blocks: 1024, Weight: 0.30, WriteFrac: 0.20},
				{Kind: Stream, Weight: 0.20},
			},
		},
		{
			Name: "dedup", InstrPerAccess: 14, Threaded: true,
			Regions: []Region{
				{Kind: Stream, Weight: 0.40},
				{Kind: RMW, Blocks: 32768, Weight: 0.25, WriteFrac: 0.50, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.35, WriteFrac: 0.30},
			},
		},
		{
			Name: "ferret", InstrPerAccess: 18, Threaded: true,
			Regions: []Region{
				{Kind: Loop, Blocks: 16384, Weight: 0.20, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.40, WriteFrac: 0.30},
				{Kind: RMW, Blocks: 16384, Weight: 0.25, WriteFrac: 0.40},
				{Kind: Stream, Weight: 0.15},
			},
		},
		{
			Name: "fluidanimate", InstrPerAccess: 18, Threaded: true,
			Regions: []Region{
				{Kind: RMW, Blocks: 49152, Weight: 0.35, WriteFrac: 0.60, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.40, WriteFrac: 0.30},
				{Kind: Stream, Weight: 0.25},
			},
		},
		{
			Name: "freqmine", InstrPerAccess: 18, Threaded: true,
			Regions: []Region{
				{Kind: Loop, Blocks: 32768, Weight: 0.25, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.35, WriteFrac: 0.30},
				{Kind: RMW, Blocks: 8192, Weight: 0.20, WriteFrac: 0.50},
				{Kind: StreamRMW, Weight: 0.20},
			},
		},
		{
			Name: "raytrace", InstrPerAccess: 20, Threaded: true,
			Regions: []Region{
				{Kind: Loop, Blocks: 98304, Weight: 0.45, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.35, WriteFrac: 0.25},
				{Kind: Stream, Weight: 0.20},
			},
		},
		{
			// streamcluster: repeatedly scans a shared point set with a
			// footprint between L2 and the LLC — the paper's standout
			// LAP winner (53% over non-inclusion).
			Name: "streamcluster", InstrPerAccess: 10, Threaded: true,
			Regions: []Region{
				{Kind: Loop, Blocks: 49152, Weight: 0.30, Shared: true},
				{Kind: StreamRMW, Weight: 0.45},
				{Kind: Hot, Blocks: 1024, Weight: 0.15, WriteFrac: 0.20},
				{Kind: RMW, Blocks: 4096, Weight: 0.10, WriteFrac: 0.50},
			},
		},
		{
			Name: "swaptions", InstrPerAccess: 44, Threaded: true,
			Regions: []Region{
				{Kind: Hot, Blocks: 1024, Weight: 0.90, WriteFrac: 0.30},
				{Kind: Stream, Weight: 0.10},
			},
		},
		{
			Name: "vips", InstrPerAccess: 18, Threaded: true,
			Regions: []Region{
				{Kind: Stream, Weight: 0.50},
				{Kind: Hot, Blocks: 2048, Weight: 0.30, WriteFrac: 0.30},
				{Kind: RMW, Blocks: 16384, Weight: 0.20, WriteFrac: 0.50, Shared: true},
			},
		},
		{
			Name: "x264", InstrPerAccess: 18, Threaded: true,
			Regions: []Region{
				{Kind: Stream, Weight: 0.35},
				{Kind: StreamRMW, Weight: 0.15},
				{Kind: Loop, Blocks: 16384, Weight: 0.15, Shared: true},
				{Kind: Hot, Blocks: 2048, Weight: 0.35, WriteFrac: 0.30},
			},
		},
	}
}

// ByName looks a benchmark up in both catalogues, accepting the paper's
// abbreviations (omn, xalan, lib, Gems).
func ByName(name string) (Benchmark, error) {
	switch name {
	case "omn":
		name = "omnetpp"
	case "xalan":
		name = "xalancbmk"
	case "lib":
		name = "libquantum"
	case "Gems":
		name = "GemsFDTD"
	}
	for _, b := range SPEC() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range PARSEC() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Mix is a multi-programmed workload: one benchmark per core.
type Mix struct {
	// Name labels the mix ("WL1"... "WH5", or "mix07").
	Name string
	// Members holds one benchmark name per core.
	Members []string
}

// TableIII returns the paper's ten selected workload mixes. WL mixes have
// fewer writes under exclusion than non-inclusion; WH mixes have more.
func TableIII() []Mix {
	return []Mix{
		{Name: "WL1", Members: []string{"zeusmp", "leslie3d", "omnetpp", "dealII"}},
		{Name: "WL2", Members: []string{"lbm", "xalancbmk", "libquantum", "GemsFDTD"}},
		{Name: "WL3", Members: []string{"GemsFDTD", "GemsFDTD", "GemsFDTD", "mcf"}},
		{Name: "WL4", Members: []string{"milc", "libquantum", "leslie3d", "bwaves"}},
		{Name: "WL5", Members: []string{"bzip2", "xalancbmk", "GemsFDTD", "GemsFDTD"}},
		{Name: "WH1", Members: []string{"omnetpp", "xalancbmk", "zeusmp", "libquantum"}},
		{Name: "WH2", Members: []string{"milc", "omnetpp", "bzip2", "xalancbmk"}},
		{Name: "WH3", Members: []string{"omnetpp", "omnetpp", "dealII", "leslie3d"}},
		{Name: "WH4", Members: []string{"mcf", "omnetpp", "leslie3d", "xalancbmk"}},
		{Name: "WH5", Members: []string{"xalancbmk", "xalancbmk", "xalancbmk", "bzip2"}},
	}
}

// RandomMixes reproduces the paper's methodology of randomly choosing
// combinations of SPEC CPU2006 benchmarks: n mixes of width benchmarks
// each, drawn with replacement, deterministically from seed.
func RandomMixes(n, width int, seed uint64) []Mix {
	rng := rand.New(rand.NewPCG(seed, 50))
	names := make([]string, 0, len(SPEC()))
	for _, b := range SPEC() {
		names = append(names, b.Name)
	}
	mixes := make([]Mix, n)
	for i := range mixes {
		members := make([]string, width)
		for j := range members {
			members[j] = names[rng.IntN(len(names))]
		}
		mixes[i] = Mix{Name: fmt.Sprintf("mix%02d", i+1), Members: members}
	}
	return mixes
}

// Benchmarks resolves the mix's member names.
func (m Mix) Benchmarks() ([]Benchmark, error) {
	bs := make([]Benchmark, len(m.Members))
	for i, name := range m.Members {
		b, err := ByName(name)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		bs[i] = b
	}
	return bs, nil
}

// Duplicate returns a mix running n copies of one benchmark, the setup
// the paper's Figure 2 uses ("running duplicate copies of SPEC2006").
func Duplicate(name string, n int) Mix {
	members := make([]string, n)
	for i := range members {
		members[i] = name
	}
	return Mix{Name: name + "x4", Members: members}
}

// SortByWriteRatio orders mixes by a supplied write-ratio metric,
// matching the paper's presentation (mixes sorted by the number of writes
// under exclusion normalised to non-inclusion).
func SortByWriteRatio(mixes []Mix, ratio func(Mix) float64) {
	sort.SliceStable(mixes, func(i, j int) bool { return ratio(mixes[i]) < ratio(mixes[j]) })
}
