package workload

// Calibration targets: the per-benchmark properties the surrogates were
// tuned to reproduce, expressed as ranges so tests can detect drift when
// someone edits the catalogue. The targets encode the paper's published
// characterisations (Fig. 2's relative writes under exclusion, Fig. 4's
// loop-block fractions, Fig. 6's redundant data-fills), translated to
// the measurement windows this repository uses.

// Calibration is one benchmark's target envelope. Zero-valued bounds
// mean "unconstrained".
type Calibration struct {
	// Bench is the benchmark name.
	Bench string
	// LoopFracMin/Max bound the Fig. 4 loop-block share of L2 evictions
	// measured at 400k accesses/core under non-inclusion.
	LoopFracMin, LoopFracMax float64
	// RedundantFillMin/Max bound the Fig. 6 redundant-fill share.
	RedundantFillMin, RedundantFillMax float64
	// WrelMin/Max bound the Fig. 2(c) relative write traffic of the
	// exclusive policy.
	WrelMin, WrelMax float64
}

// CalibrationTargets returns the envelope for every SPEC surrogate.
// These are consumed by TestCalibrationEnvelope (run with -short skipped)
// and documented in EXPERIMENTS.md.
func CalibrationTargets() []Calibration {
	return []Calibration{
		// Loop-block-rich workloads (paper: omnetpp/xalancbmk > 60%,
		// bzip2 > 20%; our windows reach ~50-60%).
		{Bench: "omnetpp", LoopFracMin: 0.35, LoopFracMax: 0.75, WrelMin: 1.2, WrelMax: 2.5},
		{Bench: "xalancbmk", LoopFracMin: 0.40, LoopFracMax: 0.80, WrelMin: 1.4, WrelMax: 2.8},
		{Bench: "bzip2", LoopFracMin: 0.20, LoopFracMax: 0.60, WrelMin: 1.1, WrelMax: 2.0},
		// Redundant-fill-dominated workloads (paper: libquantum > 80%,
		// GemsFDTD/lbm high); exclusion must clearly win (Wrel << 1).
		{Bench: "libquantum", LoopFracMax: 0.05, RedundantFillMin: 0.85, WrelMax: 0.6},
		{Bench: "GemsFDTD", LoopFracMax: 0.10, RedundantFillMin: 0.6, WrelMax: 0.7},
		{Bench: "lbm", LoopFracMax: 0.05, RedundantFillMin: 0.5, WrelMax: 0.7},
		// Write-light / capacity benchmarks: mild exclusion preference.
		{Bench: "astar", LoopFracMax: 0.25, RedundantFillMin: 0.2, WrelMax: 1.0},
		{Bench: "zeusmp", LoopFracMax: 0.20, WrelMax: 1.0},
		{Bench: "mcf", LoopFracMax: 0.20, WrelMax: 1.0},
		// Streaming-read benchmarks: near-neutral.
		{Bench: "milc", LoopFracMax: 0.15, WrelMin: 0.75, WrelMax: 1.05},
		{Bench: "leslie3d", LoopFracMax: 0.20, WrelMin: 0.8, WrelMax: 1.1},
		{Bench: "bwaves", LoopFracMax: 0.15, WrelMin: 0.8, WrelMax: 1.1},
		{Bench: "dealII", LoopFracMax: 0.45, WrelMin: 0.9, WrelMax: 1.45},
	}
}
