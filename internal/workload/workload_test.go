package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func take(src trace.Source, n int) []trace.Access {
	return trace.Drain(trace.Limit(src, uint64(n)))
}

func TestCatalogueComplete(t *testing.T) {
	spec := SPEC()
	if len(spec) != 13 {
		t.Fatalf("SPEC surrogates = %d, want the 13 of Fig. 2", len(spec))
	}
	parsec := PARSEC()
	if len(parsec) < 11 {
		t.Fatalf("PARSEC surrogates = %d, want >= 11 (Fig. 20)", len(parsec))
	}
	for _, b := range parsec {
		if !b.Threaded {
			t.Errorf("PARSEC %s not marked Threaded", b.Name)
		}
	}
	seen := map[string]bool{}
	for _, b := range append(spec, parsec...) {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if len(b.Regions) == 0 || b.InstrPerAccess < 1 {
			t.Errorf("benchmark %q malformed", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []struct{ in, want string }{
		{"omn", "omnetpp"}, {"xalan", "xalancbmk"}, {"lib", "libquantum"},
		{"Gems", "GemsFDTD"}, {"mcf", "mcf"}, {"streamcluster", "streamcluster"},
	} {
		b, err := ByName(alias.in)
		if err != nil || b.Name != alias.want {
			t.Errorf("ByName(%q) = %q, %v", alias.in, b.Name, err)
		}
	}
	if _, err := ByName("notabenchmark"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	b, _ := ByName("omnetpp")
	a1 := take(New(b, 42), 5000)
	a2 := take(New(b, 42), 5000)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("access %d differs between identical seeds", i)
		}
	}
	a3 := take(New(b, 43), 5000)
	same := 0
	for i := range a1 {
		if a1[i] == a3[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorBlockAligned(t *testing.T) {
	for _, b := range SPEC() {
		for _, a := range take(New(b, 1), 2000) {
			if a.Addr%BlockBytes != 0 {
				t.Fatalf("%s: unaligned address %#x", b.Name, a.Addr)
			}
			if a.Instrs < 1 {
				t.Fatalf("%s: zero instruction count", b.Name)
			}
		}
	}
}

func TestInstrPerAccessConverges(t *testing.T) {
	for _, name := range []string{"mcf", "blackscholes", "omnetpp"} {
		b, _ := ByName(name)
		accs := take(New(b, 7), 20000)
		var sum float64
		for _, a := range accs {
			sum += float64(a.Instrs)
		}
		mean := sum / float64(len(accs))
		if math.Abs(mean-b.InstrPerAccess) > 0.05*b.InstrPerAccess {
			t.Errorf("%s: mean instrs/access = %.3f, want ~%.1f", name, mean, b.InstrPerAccess)
		}
	}
}

func TestRMWEmitsWriteAfterRead(t *testing.T) {
	b := Benchmark{Name: "rmwonly", InstrPerAccess: 1, Regions: []Region{
		{Kind: RMW, Blocks: 64, Weight: 1, WriteFrac: 1},
	}}
	accs := take(New(b, 9), 1000)
	for i := 0; i+1 < len(accs); i += 2 {
		rd, wr := accs[i], accs[i+1]
		if rd.Write || !wr.Write || rd.Addr != wr.Addr {
			t.Fatalf("pair %d: read=%+v write=%+v", i/2, rd, wr)
		}
	}
}

func TestStreamNeverRepeatsWithinRing(t *testing.T) {
	b := Benchmark{Name: "stream", InstrPerAccess: 1, Regions: []Region{
		{Kind: Stream, Weight: 1},
	}}
	accs := take(New(b, 9), 100000)
	seen := map[uint64]bool{}
	for _, a := range accs {
		if seen[a.Addr] {
			t.Fatalf("stream repeated address %#x", a.Addr)
		}
		seen[a.Addr] = true
	}
}

func TestLoopCyclesExactly(t *testing.T) {
	const ws = 128
	b := Benchmark{Name: "loop", InstrPerAccess: 1, Regions: []Region{
		{Kind: Loop, Blocks: ws, Weight: 1},
	}}
	accs := take(New(b, 9), ws*3)
	for i, a := range accs {
		if a.Addr != accs[i%ws].Addr {
			t.Fatalf("loop not cyclic at access %d", i)
		}
		if a.Write {
			t.Fatal("loop region emitted a write")
		}
	}
}

func TestHotWriteFraction(t *testing.T) {
	b := Benchmark{Name: "hot", InstrPerAccess: 1, Regions: []Region{
		{Kind: Hot, Blocks: 16, Weight: 1, WriteFrac: 0.4},
	}}
	accs := take(New(b, 11), 20000)
	writes := 0
	for _, a := range accs {
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(accs))
	if math.Abs(frac-0.4) > 0.03 {
		t.Fatalf("write fraction = %.3f, want ~0.4", frac)
	}
}

func TestRegionSpacesDisjoint(t *testing.T) {
	// Every region must generate addresses in its own subspace; verify by
	// checking region index recovery from the high bits.
	b, _ := ByName("milc") // 4 regions
	accs := take(New(b, 3), 50000)
	regions := map[uint64]bool{}
	for _, a := range accs {
		block := a.Addr / BlockBytes
		regions[(block>>regionSpaceBits)&0xff] = true
	}
	if len(regions) != len(b.Regions) {
		t.Fatalf("observed %d region subspaces, want %d", len(regions), len(b.Regions))
	}
}

func TestThreadsShareOnlySharedRegions(t *testing.T) {
	b, _ := ByName("canneal") // random shared RMW: cross-thread overlap is certain
	srcs := Threads(b, 4, 5)
	if len(srcs) != 4 {
		t.Fatalf("Threads returned %d sources", len(srcs))
	}
	perThread := make([]map[uint64]bool, 4)
	for ti, src := range srcs {
		perThread[ti] = map[uint64]bool{}
		for _, a := range take(src, 60000) {
			perThread[ti][a.Addr] = true
		}
	}
	sharedSeen, privateDisjoint := false, true
	for a := range perThread[0] {
		if perThread[1][a] {
			sharedSeen = true
		}
	}
	// Private hot-region addresses carry the thread tag in high bits;
	// verify no cross-thread collision for them.
	for a := range perThread[0] {
		block := a / BlockBytes
		if (block>>threadSpaceBits)&0xff == 1 { // thread 0's private tag
			for t := 1; t < 4; t++ {
				if perThread[t][a] {
					privateDisjoint = false
				}
			}
		}
	}
	if !sharedSeen {
		t.Error("threads never touched a common shared address")
	}
	if !privateDisjoint {
		t.Error("private regions overlap across threads")
	}
}

func TestThreadsPhaseShifted(t *testing.T) {
	b := Benchmark{Name: "sl", InstrPerAccess: 1, Threaded: true, Regions: []Region{
		{Kind: Loop, Blocks: 1000, Weight: 1, Shared: true},
	}}
	srcs := Threads(b, 4, 5)
	a0, _ := srcs[0].Next()
	a2, _ := srcs[2].Next()
	if a0.Addr == a2.Addr {
		t.Fatal("shared loop cursors not phase-shifted across threads")
	}
}

func TestTableIIIMixes(t *testing.T) {
	mixes := TableIII()
	if len(mixes) != 10 {
		t.Fatalf("Table III has %d mixes, want 10", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Members) != 4 {
			t.Errorf("%s: %d members, want 4", m.Name, len(m.Members))
		}
		if _, err := m.Benchmarks(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if mixes[0].Name != "WL1" || mixes[9].Name != "WH5" {
		t.Error("Table III ordering drifted")
	}
}

func TestRandomMixesDeterministic(t *testing.T) {
	a := RandomMixes(50, 4, 2016)
	b := RandomMixes(50, 4, 2016)
	if len(a) != 50 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				t.Fatal("RandomMixes not deterministic")
			}
		}
		if _, err := a[i].Benchmarks(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDuplicateMix(t *testing.T) {
	m := Duplicate("omnetpp", 4)
	if len(m.Members) != 4 {
		t.Fatal("duplicate width wrong")
	}
	for _, name := range m.Members {
		if name != "omnetpp" {
			t.Fatal("duplicate member wrong")
		}
	}
}

func TestSortByWriteRatio(t *testing.T) {
	mixes := []Mix{{Name: "c"}, {Name: "a"}, {Name: "b"}}
	order := map[string]float64{"a": 0.5, "b": 1.0, "c": 2.0}
	SortByWriteRatio(mixes, func(m Mix) float64 { return order[m.Name] })
	if mixes[0].Name != "a" || mixes[2].Name != "c" {
		t.Fatalf("sorted order wrong: %v", mixes)
	}
}

func TestMalformedBenchmarksPanic(t *testing.T) {
	bad := []Benchmark{
		{Name: "noregions", InstrPerAccess: 1},
		{Name: "zeroipa", Regions: []Region{{Kind: Hot, Blocks: 1, Weight: 1}}},
		{Name: "negweight", InstrPerAccess: 1, Regions: []Region{{Kind: Hot, Blocks: 1, Weight: -1}}},
		{Name: "zeroweight", InstrPerAccess: 1, Regions: []Region{{Kind: Hot, Blocks: 1, Weight: 0}}},
	}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("benchmark %q: expected panic", b.Name)
				}
			}()
			New(b, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Threads(0) should panic")
			}
		}()
		Threads(SPEC()[0], 0, 1)
	}()
}

func TestRegionKindString(t *testing.T) {
	for k, want := range map[RegionKind]string{Hot: "Hot", Loop: "Loop", RMW: "RMW", Stream: "Stream", StreamRMW: "StreamRMW"} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", int(k), k.String())
		}
	}
	if RegionKind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

// Property: generated weights respected — a region with weight w receives
// approximately w of the accesses (RMW pairs inflate its share, so test a
// pure Hot/Loop mixture).
func TestPropertyWeights(t *testing.T) {
	f := func(seed uint64) bool {
		b := Benchmark{Name: "w", InstrPerAccess: 1, Regions: []Region{
			{Kind: Hot, Blocks: 8, Weight: 3},
			{Kind: Loop, Blocks: 64, Weight: 1},
		}}
		accs := take(New(b, seed), 8000)
		hot := 0
		for _, a := range accs {
			if ((a.Addr/BlockBytes)>>regionSpaceBits)&0xff == 1 {
				hot++
			}
		}
		frac := float64(hot) / float64(len(accs))
		return frac > 0.70 && frac < 0.80
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
