// Package cache implements the set-associative cache model used at every
// level of the simulated hierarchy: lines with valid/dirty/loop-bit state,
// LRU recency tracking, pluggable victim selection (including the paper's
// loop-block-aware policy), set-dueling, and the SRAM/STT-RAM way
// partitioning needed by hybrid LLCs.
//
// Addresses handled by this package are block numbers (byte address
// divided by the block size); the hierarchy layer performs the shift once
// at its edge.
//
// The backing store uses a split layout tuned for the probe-dominated
// access pattern of the simulator hot loop: a packed per-set tag array and
// valid bitmask are scanned on every probe, while the cold per-line
// metadata (dirty/loop/shared bits, RRPV) lives in a separate Line array
// touched only on hits and evictions. Recency is a compact per-set LRU
// ordering (one byte per way), so a touch is a byte shuffle instead of a
// global-counter stamp write.
package cache

import (
	"fmt"
	"math/bits"
)

// Line is one cache block's metadata. The simulator is trace-driven, so no
// data payload is stored; Tag holds the full block number, which both
// identifies the block and lets a line be re-expanded to its address.
// Tag and Valid are mirrored into the cache's packed probe arrays and must
// only change through InsertAt/Evict/Invalidate/Reset; the remaining
// fields are free to mutate through Line pointers.
type Line struct {
	// Tag is the block number stored in this line.
	Tag uint64
	// Valid reports whether the line holds a block.
	Valid bool
	// Dirty reports whether the block has been modified since it was
	// filled or last written back.
	Dirty bool
	// Loop is the paper's loop-bit: set when the block was served by an
	// LLC hit and has not been written since (Section III-C, Fig. 10).
	Loop bool
	// Shared marks lines known to be replicated in a peer core's private
	// cache; used by the coherence model to trigger write invalidations.
	Shared bool
	// rrpv is the 2-bit re-reference prediction value (RRIP replacement).
	rrpv uint8
}

// Config sizes a cache.
type Config struct {
	// Name labels the cache in stats output ("L1", "L2", "L3").
	Name string
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// Ways*BlockBytes.
	SizeBytes int
	// Ways is the associativity (at most 64).
	Ways int
	// BlockBytes is the cache-block size (64 in the paper).
	BlockBytes int
	// SRAMWays, when positive, declares the first SRAMWays ways of every
	// set to be the SRAM region of a hybrid cache; the remainder is the
	// STT-RAM region. Zero means a single-technology cache.
	SRAMWays int
	// Replacement selects the base replacement family (LRU or RRIP).
	Replacement Replacement
}

// Cache is a set-associative cache. It exposes fine-grained operations
// (probe, touch, insert-at-way, invalidate) rather than a monolithic
// access method, because the inclusion controllers in internal/core need
// to orchestrate non-standard data flows such as LAP's
// "hit-without-invalidate" and the hybrid LLC's SRAM→STT migration.
type Cache struct {
	cfg     Config
	numSets int
	setMask uint64
	ways    int
	// tags is the packed per-set tag array: tags[set*ways+way] is the
	// block number when the corresponding valid bit is set.
	tags []uint64
	// valid holds one bitmask word per set; bit w is way w's valid bit.
	valid []uint64
	// order holds the per-set recency ordering: order[set*ways+k] is the
	// way at recency rank k, rank 0 being LRU and ways-1 being MRU.
	order []uint8
	// lines is the cold metadata store, indexed like tags.
	lines []Line
	// fills is the running count of valid lines (see FillCount).
	fills int

	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
}

// New builds a cache from cfg. It panics on a malformed configuration,
// since configurations are compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.BlockBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %q: non-positive geometry: %+v", cfg.Name, cfg))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %q: %d ways exceeds the 64-way limit", cfg.Name, cfg.Ways))
	}
	blocks := cfg.SizeBytes / cfg.BlockBytes
	if blocks%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %q: capacity not divisible into %d ways", cfg.Name, cfg.Ways))
	}
	sets := blocks / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %q: %d sets is not a power of two", cfg.Name, sets))
	}
	if cfg.SRAMWays < 0 || cfg.SRAMWays > cfg.Ways {
		panic(fmt.Sprintf("cache %q: SRAMWays %d out of range", cfg.Name, cfg.SRAMWays))
	}
	c := &Cache{
		cfg:     cfg,
		numSets: sets,
		setMask: uint64(sets - 1),
		ways:    cfg.Ways,
		tags:    make([]uint64, sets*cfg.Ways),
		valid:   make([]uint64, sets),
		order:   make([]uint8, sets*cfg.Ways),
		lines:   make([]Line, sets*cfg.Ways),
	}
	c.resetOrder()
	return c
}

// resetOrder restores the identity recency ordering in every set.
func (c *Cache) resetOrder() {
	for s := 0; s < c.numSets; s++ {
		base := s * c.ways
		for w := 0; w < c.ways; w++ {
			c.order[base+w] = uint8(w)
		}
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf maps a block number to its set index.
func (c *Cache) SetOf(block uint64) int { return int(block & c.setMask) }

// Line returns the line at (set, way) for inspection or mutation.
func (c *Cache) Line(set, way int) *Line { return &c.lines[set*c.ways+way] }

// IsSRAMWay reports whether the given way lies in the SRAM region of a
// hybrid cache. For single-technology caches it is always false.
func (c *Cache) IsSRAMWay(way int) bool { return way < c.cfg.SRAMWays }

// SRAMWays returns the number of SRAM ways per set (0 for single-tech).
func (c *Cache) SRAMWays() int { return c.cfg.SRAMWays }

// probeIn scans the packed tag array of one set for block, returning the
// way index or -1. The cold Line array is not touched.
func (c *Cache) probeIn(set int, block uint64) int {
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	vm := c.valid[set]
	for w, t := range tags {
		if t == block && vm&(1<<uint(w)) != 0 {
			return w
		}
	}
	return -1
}

// Probe looks a block up without touching recency or hit/miss counters.
// It returns the way index, or -1 if the block is absent.
func (c *Cache) Probe(block uint64) int {
	return c.probeIn(int(block&c.setMask), block)
}

// Lookup probes for a block and, on a hit, promotes it to MRU. It updates
// the Hits/Misses counters and returns the way index or -1.
func (c *Cache) Lookup(block uint64) int {
	set := int(block & c.setMask)
	w := c.probeIn(set, block)
	if w < 0 {
		c.Misses++
		return -1
	}
	c.Hits++
	c.touchIn(set, w)
	return w
}

// touchIn moves (set, way) to the MRU rank of its set's recency ordering.
func (c *Cache) touchIn(set, way int) {
	base := set * c.ways
	ord := c.order[base : base+c.ways]
	w := uint8(way)
	last := c.ways - 1
	if ord[last] != w {
		for i, v := range ord {
			if v == w {
				copy(ord[i:], ord[i+1:])
				ord[last] = w
				break
			}
		}
	}
	if c.cfg.Replacement == ReplRRIP {
		c.lines[base+way].rrpv = rrpvPromote
	}
}

// Touch promotes the line at (set, way): its recency rank becomes MRU
// and, under RRIP, its re-reference prediction becomes immediate.
func (c *Cache) Touch(set, way int) { c.touchIn(set, way) }

// Stamp returns the recency rank of (set, way): 0 is the set's LRU
// position, Ways()-1 its MRU. Exported for tests, which compare ranks of
// valid lines relatively; invalid lines' ranks are unspecified.
func (c *Cache) Stamp(set, way int) uint64 {
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		if int(c.order[base+i]) == way {
			return uint64(i)
		}
	}
	panic("cache: way missing from recency ordering")
}

// InsertAt places a block into (set, way), overwriting whatever was there,
// and promotes it to MRU. The caller is responsible for having evicted the
// previous occupant (see Evict).
func (c *Cache) InsertAt(set, way int, block uint64, dirty, loop bool) {
	idx := set*c.ways + way
	if bit := uint64(1) << uint(way); c.valid[set]&bit == 0 {
		c.valid[set] |= bit
		c.fills++
	}
	c.tags[idx] = block
	l := &c.lines[idx]
	*l = Line{Tag: block, Valid: true, Dirty: dirty, Loop: loop}
	c.touchIn(set, way)
	if c.cfg.Replacement == ReplRRIP {
		l.rrpv = rrpvInsert
	}
}

// Evict invalidates (set, way) and returns the previous contents. The
// second result is false if the line was already invalid.
func (c *Cache) Evict(set, way int) (Line, bool) {
	idx := set*c.ways + way
	l := &c.lines[idx]
	old := *l
	*l = Line{}
	c.tags[idx] = 0
	if bit := uint64(1) << uint(way); c.valid[set]&bit != 0 {
		c.valid[set] &^= bit
		c.fills--
	}
	return old, old.Valid
}

// Invalidate removes a block if present, returning the line it occupied.
func (c *Cache) Invalidate(block uint64) (Line, bool) {
	set := int(block & c.setMask)
	w := c.probeIn(set, block)
	if w < 0 {
		return Line{}, false
	}
	return c.Evict(set, w)
}

// FillCount returns the number of valid lines. It is a running counter,
// not a scan, so telemetry paths can call it per interval.
func (c *Cache) FillCount() int { return c.fills }

// Reset invalidates every line and clears counters, preserving geometry.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.valid {
		c.valid[i] = 0
	}
	c.resetOrder()
	c.fills, c.Hits, c.Misses = 0, 0, 0
}

// State is a deep copy of a cache's contents — tags, valid bits,
// recency order, line metadata, and counters — detached from the live
// arrays. Sampled simulation captures States during the profiling pass
// and restores them before each measured interval, so a replay starts
// from the warm state that trace position actually had rather than
// whatever an earlier jump left behind.
type State struct {
	tags         []uint64
	valid        []uint64
	order        []uint8
	lines        []Line
	fills        int
	hits, misses uint64
}

// Snapshot copies the cache's current contents into a detached State.
// When reuse is non-nil and geometry-compatible its backing arrays are
// recycled, so a periodic snapshotter allocates only once.
func (c *Cache) Snapshot(reuse *State) *State {
	s := reuse
	if s == nil || len(s.tags) != len(c.tags) {
		s = &State{
			tags:  make([]uint64, len(c.tags)),
			valid: make([]uint64, len(c.valid)),
			order: make([]uint8, len(c.order)),
			lines: make([]Line, len(c.lines)),
		}
	}
	copy(s.tags, c.tags)
	copy(s.valid, c.valid)
	copy(s.order, c.order)
	copy(s.lines, c.lines)
	s.fills, s.hits, s.misses = c.fills, c.Hits, c.Misses
	return s
}

// Restore overwrites the cache's contents from a snapshot taken on a
// cache with identical geometry. It panics on a size mismatch, since
// restoring across geometries is always a caller bug.
func (c *Cache) Restore(s *State) {
	if len(s.tags) != len(c.tags) || len(s.valid) != len(c.valid) {
		panic(fmt.Sprintf("cache %q: restoring snapshot of different geometry", c.cfg.Name))
	}
	copy(c.tags, s.tags)
	copy(c.valid, s.valid)
	copy(c.order, s.order)
	copy(c.lines, s.lines)
	c.fills, c.Hits, c.Misses = s.fills, s.hits, s.misses
}

// rangeMask returns the bitmask selecting ways [lo, hi).
func rangeMask(lo, hi int) uint64 {
	m := ^uint64(0) >> uint(64-(hi-lo))
	return m << uint(lo)
}

// invalidIn returns the lowest invalid way in [lo, hi), or -1.
func (c *Cache) invalidIn(set, lo, hi int) int {
	if inv := ^c.valid[set] & rangeMask(lo, hi); inv != 0 {
		return bits.TrailingZeros64(inv)
	}
	return -1
}
