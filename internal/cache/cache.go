// Package cache implements the set-associative cache model used at every
// level of the simulated hierarchy: lines with valid/dirty/loop-bit state,
// LRU recency tracking, pluggable victim selection (including the paper's
// loop-block-aware policy), set-dueling, and the SRAM/STT-RAM way
// partitioning needed by hybrid LLCs.
//
// Addresses handled by this package are block numbers (byte address
// divided by the block size); the hierarchy layer performs the shift once
// at its edge.
package cache

import "fmt"

// Line is one cache block's metadata. The simulator is trace-driven, so no
// data payload is stored; Tag holds the full block number, which both
// identifies the block and lets a line be re-expanded to its address.
type Line struct {
	// Tag is the block number stored in this line.
	Tag uint64
	// Valid reports whether the line holds a block.
	Valid bool
	// Dirty reports whether the block has been modified since it was
	// filled or last written back.
	Dirty bool
	// Loop is the paper's loop-bit: set when the block was served by an
	// LLC hit and has not been written since (Section III-C, Fig. 10).
	Loop bool
	// Shared marks lines known to be replicated in a peer core's private
	// cache; used by the coherence model to trigger write invalidations.
	Shared bool
	// stamp is the recency timestamp; larger is more recent.
	stamp uint64
	// rrpv is the 2-bit re-reference prediction value (RRIP replacement).
	rrpv uint8
}

// Config sizes a cache.
type Config struct {
	// Name labels the cache in stats output ("L1", "L2", "L3").
	Name string
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// Ways*BlockBytes.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockBytes is the cache-block size (64 in the paper).
	BlockBytes int
	// SRAMWays, when positive, declares the first SRAMWays ways of every
	// set to be the SRAM region of a hybrid cache; the remainder is the
	// STT-RAM region. Zero means a single-technology cache.
	SRAMWays int
	// Replacement selects the base replacement family (LRU or RRIP).
	Replacement Replacement
}

// Cache is a set-associative cache. It exposes fine-grained operations
// (probe, touch, insert-at-way, invalidate) rather than a monolithic
// access method, because the inclusion controllers in internal/core need
// to orchestrate non-standard data flows such as LAP's
// "hit-without-invalidate" and the hybrid LLC's SRAM→STT migration.
type Cache struct {
	cfg     Config
	numSets int
	setMask uint64
	ways    int
	lines   []Line
	clock   uint64

	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
}

// New builds a cache from cfg. It panics on a malformed configuration,
// since configurations are compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.BlockBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %q: non-positive geometry: %+v", cfg.Name, cfg))
	}
	blocks := cfg.SizeBytes / cfg.BlockBytes
	if blocks%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %q: capacity not divisible into %d ways", cfg.Name, cfg.Ways))
	}
	sets := blocks / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %q: %d sets is not a power of two", cfg.Name, sets))
	}
	if cfg.SRAMWays < 0 || cfg.SRAMWays > cfg.Ways {
		panic(fmt.Sprintf("cache %q: SRAMWays %d out of range", cfg.Name, cfg.SRAMWays))
	}
	return &Cache{
		cfg:     cfg,
		numSets: sets,
		setMask: uint64(sets - 1),
		ways:    cfg.Ways,
		lines:   make([]Line, sets*cfg.Ways),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetOf maps a block number to its set index.
func (c *Cache) SetOf(block uint64) int { return int(block & c.setMask) }

// Line returns the line at (set, way) for inspection or mutation.
func (c *Cache) Line(set, way int) *Line { return &c.lines[set*c.ways+way] }

// IsSRAMWay reports whether the given way lies in the SRAM region of a
// hybrid cache. For single-technology caches it is always false.
func (c *Cache) IsSRAMWay(way int) bool { return way < c.cfg.SRAMWays }

// SRAMWays returns the number of SRAM ways per set (0 for single-tech).
func (c *Cache) SRAMWays() int { return c.cfg.SRAMWays }

// tick advances and returns the recency clock.
func (c *Cache) tick() uint64 {
	c.clock++
	return c.clock
}

// Probe looks a block up without touching recency or hit/miss counters.
// It returns the way index, or -1 if the block is absent.
func (c *Cache) Probe(block uint64) int {
	set := c.SetOf(block)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if l := &c.lines[base+w]; l.Valid && l.Tag == block {
			return w
		}
	}
	return -1
}

// Lookup probes for a block and, on a hit, promotes it to MRU. It updates
// the Hits/Misses counters and returns the way index or -1.
func (c *Cache) Lookup(block uint64) int {
	w := c.Probe(block)
	if w < 0 {
		c.Misses++
		return -1
	}
	c.Hits++
	c.Touch(c.SetOf(block), w)
	return w
}

// Touch promotes the line at (set, way): its recency stamp becomes MRU
// and, under RRIP, its re-reference prediction becomes immediate.
func (c *Cache) Touch(set, way int) {
	l := &c.lines[set*c.ways+way]
	l.stamp = c.tick()
	c.touchRepl(l)
}

// Stamp returns the recency timestamp of a line; exported for the victim
// selectors in this package and for tests.
func (c *Cache) Stamp(set, way int) uint64 { return c.lines[set*c.ways+way].stamp }

// InsertAt places a block into (set, way), overwriting whatever was there,
// and promotes it to MRU. The caller is responsible for having evicted the
// previous occupant (see Evict).
func (c *Cache) InsertAt(set, way int, block uint64, dirty, loop bool) {
	l := &c.lines[set*c.ways+way]
	*l = Line{Tag: block, Valid: true, Dirty: dirty, Loop: loop, stamp: c.tick()}
	c.insertRepl(l)
}

// Evict invalidates (set, way) and returns the previous contents. The
// second result is false if the line was already invalid.
func (c *Cache) Evict(set, way int) (Line, bool) {
	l := &c.lines[set*c.ways+way]
	old := *l
	*l = Line{}
	return old, old.Valid
}

// Invalidate removes a block if present, returning the line it occupied.
func (c *Cache) Invalidate(block uint64) (Line, bool) {
	w := c.Probe(block)
	if w < 0 {
		return Line{}, false
	}
	return c.Evict(c.SetOf(block), w)
}

// FillCount returns the number of valid lines (for occupancy tests).
func (c *Cache) FillCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// Reset invalidates every line and clears counters, preserving geometry.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.clock, c.Hits, c.Misses = 0, 0, 0
}
