package cache

// RRIP replacement (Jaleel et al. [37], "High performance cache
// replacement using re-reference interval prediction"). The paper notes
// (Section IV) that LAP's loop-block-aware victim selection composes with
// RRIP exactly as with LRU: "selecting an LRU block is just like
// selecting a block with distant re-reference interval, while selecting
// an MRU block is just like selecting a block with immediate re-reference
// interval". This file implements 2-bit SRRIP and its loop-aware variant.

// rrip constants: 2-bit re-reference prediction values.
const (
	rrpvBits    = 2
	rrpvMax     = 1<<rrpvBits - 1 // 3: predicted distant re-reference
	rrpvInsert  = rrpvMax - 1     // 2: SRRIP insertion value
	rrpvPromote = 0               // re-referenced: predicted immediate
)

// Replacement selects the base replacement family for a cache.
type Replacement int

// Replacement families. ReplLRU is the paper's default; ReplRRIP is the
// SRRIP alternative called out in Section IV. LRU recency orderings are
// always maintained (the hybrid LLC's MRU migration scan needs them);
// RRIP additionally tracks per-line RRPVs.
const (
	ReplLRU Replacement = iota
	ReplRRIP
)

// String names the replacement family.
func (r Replacement) String() string {
	if r == ReplRRIP {
		return "RRIP"
	}
	return "LRU"
}

// rripVictimIn returns the SRRIP victim in [lo, hi): an invalid way if
// any, else the first way at the maximum RRPV, ageing the range until one
// exists.
func (c *Cache) rripVictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	base := set * c.ways
	vm := c.valid[set]
	for {
		for w := lo; w < hi; w++ {
			if vm&(1<<uint(w)) == 0 {
				return w
			}
			if c.lines[base+w].rrpv >= rrpvMax {
				return w
			}
		}
		for w := lo; w < hi; w++ {
			if c.lines[base+w].rrpv < rrpvMax {
				c.lines[base+w].rrpv++
			}
		}
	}
}

// rripLoopAwareVictimIn is the loop-block-aware SRRIP victim: an invalid
// way, else the most-distant non-loop-block, else the most-distant
// loop-block (ageing as needed).
func (c *Cache) rripLoopAwareVictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	base := set * c.ways
	vm := c.valid[set]
	for {
		bestLoop := -1
		for w := lo; w < hi; w++ {
			l := &c.lines[base+w]
			if vm&(1<<uint(w)) == 0 {
				return w
			}
			if l.rrpv >= rrpvMax {
				if !l.Loop {
					return w
				}
				if bestLoop < 0 {
					bestLoop = w
				}
			}
		}
		// Check whether any non-loop block can still age to distant; if
		// every line is a loop-block, fall back to the distant loop-block.
		anyNonLoop := false
		for w := lo; w < hi; w++ {
			if !c.lines[base+w].Loop {
				anyNonLoop = true
				break
			}
		}
		if !anyNonLoop && bestLoop >= 0 {
			return bestLoop
		}
		for w := lo; w < hi; w++ {
			if c.lines[base+w].rrpv < rrpvMax {
				c.lines[base+w].rrpv++
			}
		}
	}
}

// Victim returns the configured family's victim across the whole set.
func (c *Cache) Victim(set int) int { return c.VictimInRange(set, 0, c.ways) }

// VictimInRange returns the configured family's victim within [lo, hi).
func (c *Cache) VictimInRange(set, lo, hi int) int {
	if c.cfg.Replacement == ReplRRIP {
		return c.rripVictimIn(set, lo, hi)
	}
	return c.VictimIn(set, lo, hi)
}

// LoopVictim returns the configured family's loop-aware victim across the
// whole set.
func (c *Cache) LoopVictim(set int) int { return c.LoopVictimInRange(set, 0, c.ways) }

// LoopVictimInRange returns the configured family's loop-aware victim
// within [lo, hi).
func (c *Cache) LoopVictimInRange(set, lo, hi int) int {
	if c.cfg.Replacement == ReplRRIP {
		return c.rripLoopAwareVictimIn(set, lo, hi)
	}
	return c.LoopAwareVictimIn(set, lo, hi)
}

// RRPV exposes a line's re-reference prediction value for tests.
func (c *Cache) RRPV(set, way int) uint8 { return c.lines[set*c.ways+way].rrpv }
