package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rripCache() *Cache {
	return New(Config{Name: "r", SizeBytes: 4096, Ways: 4, BlockBytes: 64, Replacement: ReplRRIP})
}

func TestReplacementString(t *testing.T) {
	if ReplLRU.String() != "LRU" || ReplRRIP.String() != "RRIP" {
		t.Fatal("replacement names drifted")
	}
}

func TestRRIPInsertionValue(t *testing.T) {
	c := rripCache()
	c.InsertAt(0, 0, 0, false, false)
	if c.RRPV(0, 0) != rrpvInsert {
		t.Fatalf("inserted RRPV = %d, want %d", c.RRPV(0, 0), rrpvInsert)
	}
	c.Touch(0, 0)
	if c.RRPV(0, 0) != rrpvPromote {
		t.Fatalf("touched RRPV = %d, want %d", c.RRPV(0, 0), rrpvPromote)
	}
}

func TestRRIPVictimPrefersInvalidThenDistant(t *testing.T) {
	c := rripCache()
	c.InsertAt(0, 0, 0, false, false)
	if v := c.Victim(0); v == 0 {
		t.Fatal("RRIP victim picked the only valid line over invalid ways")
	}
	// Fill the set; promote all but way 2, then age: way 2 must go first.
	for w := 0; w < 4; w++ {
		c.InsertAt(0, w, uint64(w*16), false, false)
	}
	c.Touch(0, 0)
	c.Touch(0, 1)
	c.Touch(0, 3)
	if v := c.Victim(0); v != 2 {
		t.Fatalf("RRIP victim = way %d, want 2 (only non-promoted line)", v)
	}
}

func TestRRIPAgeingTerminates(t *testing.T) {
	c := rripCache()
	for w := 0; w < 4; w++ {
		c.InsertAt(0, w, uint64(w*16), false, false)
		c.Touch(0, w) // all at RRPV 0
	}
	v := c.Victim(0) // must age everyone up to max and pick one
	if v < 0 || v > 3 {
		t.Fatalf("victim way %d out of range", v)
	}
	if c.RRPV(0, (v+1)%4) == 0 {
		t.Fatal("ageing did not advance other lines")
	}
}

func TestRRIPLoopAwarePrefersNonLoop(t *testing.T) {
	c := rripCache()
	// way 0: loop-block at distant RRPV; way 1: non-loop at distant RRPV.
	c.InsertAt(0, 0, 0, false, true)
	c.InsertAt(0, 1, 16, false, false)
	c.InsertAt(0, 2, 32, false, true)
	c.InsertAt(0, 3, 48, false, true)
	if v := c.LoopVictim(0); v != 1 {
		t.Fatalf("loop-aware RRIP victim = way %d, want 1 (non-loop)", v)
	}
	// All loop-blocks: fall back to a distant loop-block.
	c.Line(0, 1).Loop = true
	v := c.LoopVictim(0)
	if v < 0 || v > 3 {
		t.Fatalf("all-loop victim = %d", v)
	}
}

func TestRRIPLoopAwareProtectsPromotedLoopBlocks(t *testing.T) {
	c := rripCache()
	for w := 0; w < 4; w++ {
		c.InsertAt(0, w, uint64(w*16), false, w != 3) // way 3 is non-loop
	}
	// Promote the loop blocks to immediate; leave the non-loop block
	// at the insertion RRPV.
	for w := 0; w < 3; w++ {
		c.Touch(0, w)
	}
	if v := c.LoopVictim(0); v != 3 {
		t.Fatalf("victim = way %d, want the non-loop way 3", v)
	}
}

func TestLRUCacheIgnoresRRPV(t *testing.T) {
	c := small() // LRU config
	c.InsertAt(0, 0, 0, false, false)
	if c.RRPV(0, 0) != 0 {
		t.Fatal("LRU cache set an RRPV")
	}
	// Generic dispatchers must agree with the LRU primitives.
	for w := 0; w < 4; w++ {
		c.InsertAt(0, w, uint64(w*16), false, w%2 == 0)
	}
	if c.Victim(0) != c.LRUVictim(0) {
		t.Fatal("Victim != LRUVictim for an LRU cache")
	}
	if c.LoopVictim(0) != c.LoopAwareVictim(0) {
		t.Fatal("LoopVictim != LoopAwareVictim for an LRU cache")
	}
}

func TestVictimInRangeRRIPBounds(t *testing.T) {
	c := New(Config{Name: "h", SizeBytes: 16 * 64 * 4, Ways: 16, BlockBytes: 64,
		SRAMWays: 4, Replacement: ReplRRIP})
	for w := 0; w < 16; w++ {
		c.InsertAt(0, w, uint64(w*c.NumSets()), false, w%2 == 0)
	}
	if v := c.VictimInRange(0, 0, 4); v < 0 || v >= 4 {
		t.Fatalf("RRIP SRAM-region victim out of range: %d", v)
	}
	if v := c.LoopVictimInRange(0, 4, 16); v < 4 || v >= 16 {
		t.Fatalf("RRIP STT-region victim out of range: %d", v)
	}
}

func TestRRIPEmptyRangePanics(t *testing.T) {
	c := rripCache()
	for _, f := range []func(){
		func() { c.VictimInRange(0, 2, 2) },
		func() { c.LoopVictimInRange(0, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for empty RRIP range")
				}
			}()
			f()
		}()
	}
}

// Property: the RRIP victim is always a valid way index and, when invalid
// ways exist, is one of them.
func TestPropertyRRIPVictimSound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		c := rripCache()
		for i := 0; i < 200; i++ {
			b := rng.Uint64() % 512
			set := c.SetOf(b)
			if c.Lookup(b) < 0 {
				w := c.Victim(set)
				if w < 0 || w >= c.Ways() {
					return false
				}
				if inv := c.InvalidWayIn(set, 0, c.Ways()); inv >= 0 && c.Line(set, w).Valid {
					return false
				}
				c.InsertAt(set, w, b, rng.IntN(2) == 0, rng.IntN(2) == 0)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: loop-aware RRIP never evicts a loop-block while a non-loop
// block exists in the searched range.
func TestPropertyRRIPLoopProtection(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		c := rripCache()
		set := int(seed % 16)
		nonLoop := 0
		for w := 0; w < 4; w++ {
			loop := rng.IntN(2) == 0
			if !loop {
				nonLoop++
			}
			c.InsertAt(set, w, uint64(w*16+set), false, loop)
			if rng.IntN(2) == 0 {
				c.Touch(set, w)
			}
		}
		v := c.LoopVictim(set)
		if nonLoop > 0 && c.Line(set, v).Loop {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
