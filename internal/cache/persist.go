package cache

// Durable-state codecs. Checkpointing serializes live caches, dueling
// monitors, and MSHR tables into the wire format; the codecs live here
// because State's arrays and Line.rrpv are unexported by design. The
// layout is pinned by the checkpoint format version one level up — no
// per-structure versioning is needed.

import (
	"fmt"

	"repro/internal/checkpoint/wire"
)

// Line flag bits in the encoded form. rrpv (2 bits) occupies bits 4-5.
const (
	lineValid  = 1 << 0
	lineDirty  = 1 << 1
	lineLoop   = 1 << 2
	lineShared = 1 << 3
	lineRRPVSh = 4
)

// encodeCacheArrays is the shared layout behind Cache.EncodeSnapshot
// and State.Encode: live caches and detached snapshots hold the same
// arrays.
func encodeCacheArrays(e *wire.Encoder, tags, valid []uint64, order []uint8, lines []Line, fills int, hits, misses uint64) {
	e.U64s(tags)
	e.U64s(valid)
	e.Raw(order)
	e.U64(uint64(len(lines)))
	for i := range lines {
		l := &lines[i]
		e.U64(l.Tag)
		var f byte
		if l.Valid {
			f |= lineValid
		}
		if l.Dirty {
			f |= lineDirty
		}
		if l.Loop {
			f |= lineLoop
		}
		if l.Shared {
			f |= lineShared
		}
		f |= l.rrpv << lineRRPVSh
		e.Byte(f)
	}
	e.I64(int64(fills))
	e.U64(hits)
	e.U64(misses)
}

func decodeLines(d *wire.Decoder) []Line {
	n := d.Length(2) // each line is ≥ 2 bytes (tag uvarint + flags)
	if d.Err() != nil {
		return nil
	}
	lines := make([]Line, n)
	for i := range lines {
		l := &lines[i]
		l.Tag = d.U64()
		f := d.Byte()
		l.Valid = f&lineValid != 0
		l.Dirty = f&lineDirty != 0
		l.Loop = f&lineLoop != 0
		l.Shared = f&lineShared != 0
		l.rrpv = f >> lineRRPVSh
	}
	if d.Err() != nil {
		return nil
	}
	return lines
}

// EncodeSnapshot appends the cache's full contents — tags, valid bits,
// recency order, line metadata, and hit/miss counters — to e.
func (c *Cache) EncodeSnapshot(e *wire.Encoder) {
	encodeCacheArrays(e, c.tags, c.valid, c.order, c.lines, c.fills, c.Hits, c.Misses)
}

// RestoreSnapshot overwrites the cache's contents from a snapshot
// written by EncodeSnapshot on a cache of identical geometry. A
// geometry mismatch or malformed input returns an error and may leave
// the cache partially restored; callers discard the machine on error.
func (c *Cache) RestoreSnapshot(d *wire.Decoder) error {
	s, err := DecodeSnapshotState(d)
	if err != nil {
		return err
	}
	if len(s.tags) != len(c.tags) || len(s.valid) != len(c.valid) ||
		len(s.order) != len(c.order) || len(s.lines) != len(c.lines) {
		return fmt.Errorf("cache %q: snapshot geometry mismatch", c.cfg.Name)
	}
	c.Restore(s)
	return nil
}

// Encode appends a detached snapshot to e in the same layout as
// Cache.EncodeSnapshot.
func (s *State) Encode(e *wire.Encoder) {
	encodeCacheArrays(e, s.tags, s.valid, s.order, s.lines, s.fills, s.hits, s.misses)
}

// DecodeSnapshotState reads one cache snapshot into a detached State.
func DecodeSnapshotState(d *wire.Decoder) (*State, error) {
	s := &State{
		tags:  d.U64s(),
		valid: d.U64s(),
		order: d.Raw(),
		lines: decodeLines(d),
	}
	s.fills = int(d.I64())
	s.hits = d.U64()
	s.misses = d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DuelState is the mutable portion of a set-dueling monitor, exported
// so checkpoints can round-trip it (Stride and PeriodCycles are
// configuration, rebuilt from the controller constructor).
type DuelState struct {
	CostA, CostB float64
	NextFlip     uint64
	Winner       Role
}

// State returns the duel's current mutable state.
func (d *Duel) State() DuelState {
	return DuelState{CostA: d.costA, CostB: d.costB, NextFlip: d.nextFlip, Winner: d.winner}
}

// SetState overwrites the duel's mutable state.
func (d *Duel) SetState(s DuelState) {
	d.costA, d.costB, d.nextFlip, d.winner = s.CostA, s.CostB, s.NextFlip, s.Winner
}

// EncodeState appends the duel's mutable state to e.
func (d *Duel) EncodeState(e *wire.Encoder) {
	e.F64(d.costA)
	e.F64(d.costB)
	e.U64(d.nextFlip)
	e.Byte(byte(d.winner))
}

// DecodeState restores the duel's mutable state from e.
func (d *Duel) DecodeState(dec *wire.Decoder) error {
	s := DuelState{
		CostA:    dec.F64(),
		CostB:    dec.F64(),
		NextFlip: dec.U64(),
		Winner:   Role(dec.Byte()),
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if s.Winner != LeaderA && s.Winner != LeaderB {
		return fmt.Errorf("cache: duel winner %d out of range", s.Winner)
	}
	d.SetState(s)
	return nil
}

// EncodeState appends the MSHR table's outstanding-fill state to e.
func (t *MSHR) EncodeState(e *wire.Encoder) {
	e.U64s(t.blocks)
	e.U64s(t.readyAt)
	e.I64(int64(t.pending))
}

// DecodeState restores the table from e. The register count must match
// the table's configured size.
func (t *MSHR) DecodeState(d *wire.Decoder) error {
	blocks := d.U64s()
	readyAt := d.U64s()
	pending := int(d.I64())
	if err := d.Err(); err != nil {
		return err
	}
	if len(blocks) != len(t.blocks) || len(readyAt) != len(t.readyAt) {
		return fmt.Errorf("cache: MSHR size mismatch (%d regs, snapshot has %d)", len(t.blocks), len(blocks))
	}
	if pending < -1 || pending >= len(t.blocks) {
		return fmt.Errorf("cache: MSHR pending slot %d out of range", pending)
	}
	copy(t.blocks, blocks)
	copy(t.readyAt, readyAt)
	t.pending = pending
	return nil
}
