package cache

// Victim selection policies. The paper's loop-block-aware replacement
// (Section III-B, Fig. 9) selects, in priority order: an invalid way, the
// LRU non-loop-block, and only as a last resort the LRU loop-block. The
// baseline is plain LRU. Both are provided as range-restricted primitives
// so the hybrid LLC can apply them within its SRAM or STT-RAM way regions.
//
// Selectors consult the valid bitmask and the per-set recency ordering;
// only the loop-aware variants read the cold Line metadata.

// VictimIn returns the victim way in [lo, hi) of the given set using plain
// LRU: an invalid way if one exists, otherwise the least recently used.
// It panics if the range is empty.
func (c *Cache) VictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	if w := c.invalidIn(set, lo, hi); w >= 0 {
		return w
	}
	base := set * c.ways
	for _, w := range c.order[base : base+c.ways] {
		if int(w) >= lo && int(w) < hi {
			return int(w)
		}
	}
	panic("cache: victim range missing from recency ordering")
}

// LoopAwareVictimIn returns the victim way in [lo, hi) using the paper's
// loop-block-aware priority: invalid → LRU non-loop-block → LRU loop-block.
func (c *Cache) LoopAwareVictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	if w := c.invalidIn(set, lo, hi); w >= 0 {
		return w
	}
	base := set * c.ways
	lruLoop := -1
	for _, w := range c.order[base : base+c.ways] {
		if int(w) < lo || int(w) >= hi {
			continue
		}
		if !c.lines[base+int(w)].Loop {
			return int(w)
		}
		if lruLoop < 0 {
			lruLoop = int(w)
		}
	}
	return lruLoop
}

// LRUVictim returns the plain-LRU victim across all ways of a set.
func (c *Cache) LRUVictim(set int) int { return c.VictimIn(set, 0, c.ways) }

// LoopAwareVictim returns the loop-aware victim across all ways of a set.
func (c *Cache) LoopAwareVictim(set int) int { return c.LoopAwareVictimIn(set, 0, c.ways) }

// MRUWhere returns the most recently used way in [lo, hi) whose line
// satisfies pred, or -1 if none does. The hybrid LLC uses it to pick the
// MRU loop-block to migrate from SRAM to STT-RAM (Fig. 11b).
func (c *Cache) MRUWhere(set, lo, hi int, pred func(*Line) bool) int {
	base := set * c.ways
	vm := c.valid[set]
	ord := c.order[base : base+c.ways]
	for i := c.ways - 1; i >= 0; i-- {
		w := int(ord[i])
		if w < lo || w >= hi || vm&(1<<uint(w)) == 0 {
			continue
		}
		if pred(&c.lines[base+w]) {
			return w
		}
	}
	return -1
}

// InvalidWayIn returns an invalid way in [lo, hi), or -1 if the range is
// fully occupied.
func (c *Cache) InvalidWayIn(set, lo, hi int) int { return c.invalidIn(set, lo, hi) }
