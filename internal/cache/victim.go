package cache

// Victim selection policies. The paper's loop-block-aware replacement
// (Section III-B, Fig. 9) selects, in priority order: an invalid way, the
// LRU non-loop-block, and only as a last resort the LRU loop-block. The
// baseline is plain LRU. Both are provided as range-restricted primitives
// so the hybrid LLC can apply them within its SRAM or STT-RAM way regions.

// VictimIn returns the victim way in [lo, hi) of the given set using plain
// LRU: an invalid way if one exists, otherwise the least recently used.
// It panics if the range is empty.
func (c *Cache) VictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	base := set * c.ways
	best, bestStamp := -1, ^uint64(0)
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if !l.Valid {
			return w
		}
		if l.stamp < bestStamp {
			best, bestStamp = w, l.stamp
		}
	}
	return best
}

// LoopAwareVictimIn returns the victim way in [lo, hi) using the paper's
// loop-block-aware priority: invalid → LRU non-loop-block → LRU loop-block.
func (c *Cache) LoopAwareVictimIn(set, lo, hi int) int {
	if lo >= hi {
		panic("cache: empty victim range")
	}
	base := set * c.ways
	bestNonLoop, bestNonLoopStamp := -1, ^uint64(0)
	bestLoop, bestLoopStamp := -1, ^uint64(0)
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if !l.Valid {
			return w
		}
		if l.Loop {
			if l.stamp < bestLoopStamp {
				bestLoop, bestLoopStamp = w, l.stamp
			}
		} else if l.stamp < bestNonLoopStamp {
			bestNonLoop, bestNonLoopStamp = w, l.stamp
		}
	}
	if bestNonLoop >= 0 {
		return bestNonLoop
	}
	return bestLoop
}

// LRUVictim returns the plain-LRU victim across all ways of a set.
func (c *Cache) LRUVictim(set int) int { return c.VictimIn(set, 0, c.ways) }

// LoopAwareVictim returns the loop-aware victim across all ways of a set.
func (c *Cache) LoopAwareVictim(set int) int { return c.LoopAwareVictimIn(set, 0, c.ways) }

// MRUWhere returns the most recently used way in [lo, hi) whose line
// satisfies pred, or -1 if none does. The hybrid LLC uses it to pick the
// MRU loop-block to migrate from SRAM to STT-RAM (Fig. 11b).
func (c *Cache) MRUWhere(set, lo, hi int, pred func(*Line) bool) int {
	base := set * c.ways
	best := -1
	var bestStamp uint64
	for w := lo; w < hi; w++ {
		l := &c.lines[base+w]
		if !l.Valid || !pred(l) {
			continue
		}
		if best < 0 || l.stamp > bestStamp {
			best, bestStamp = w, l.stamp
		}
	}
	return best
}

// InvalidWayIn returns an invalid way in [lo, hi), or -1 if the range is
// fully occupied.
func (c *Cache) InvalidWayIn(set, lo, hi int) int {
	base := set * c.ways
	for w := lo; w < hi; w++ {
		if !c.lines[base+w].Valid {
			return w
		}
	}
	return -1
}
