package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", SizeBytes: 4096, Ways: 4, BlockBytes: 64}) // 16 sets
}

func TestGeometry(t *testing.T) {
	c := small()
	if c.NumSets() != 16 || c.Ways() != 4 {
		t.Fatalf("geometry: sets=%d ways=%d", c.NumSets(), c.Ways())
	}
	// L3 from Table II: 8MB, 16-way, 64B blocks → 8192 sets.
	l3 := New(Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, BlockBytes: 64})
	if l3.NumSets() != 8192 {
		t.Fatalf("L3 sets = %d, want 8192", l3.NumSets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 4, BlockBytes: 64},
		{Name: "nonpow2", SizeBytes: 3 * 64 * 4, Ways: 4, BlockBytes: 64},
		{Name: "ways", SizeBytes: 4096, Ways: 0, BlockBytes: 64},
		{Name: "sram", SizeBytes: 4096, Ways: 4, BlockBytes: 64, SRAMWays: 5},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %q: expected panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := small()
	if c.Lookup(100) >= 0 {
		t.Fatal("hit in empty cache")
	}
	set := c.SetOf(100)
	w := c.LRUVictim(set)
	c.InsertAt(set, w, 100, false, false)
	if c.Lookup(100) < 0 {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters: hits=%d misses=%d", c.Hits, c.Misses)
	}
	if _, ok := c.Invalidate(100); !ok {
		t.Fatal("invalidate missed")
	}
	if c.Probe(100) >= 0 {
		t.Fatal("block still present after invalidate")
	}
	if _, ok := c.Invalidate(100); ok {
		t.Fatal("double invalidate succeeded")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	c := small()
	set := 3
	// Fill the set with 4 blocks; block addresses must map to set 3.
	blocks := []uint64{3, 19, 35, 51}
	for _, b := range blocks {
		if c.SetOf(b) != set {
			t.Fatalf("block %d maps to set %d", b, c.SetOf(b))
		}
		c.InsertAt(set, c.LRUVictim(set), b, false, false)
	}
	// Touch everything except block 19; it becomes the LRU victim.
	c.Lookup(3)
	c.Lookup(35)
	c.Lookup(51)
	v := c.LRUVictim(set)
	if got := c.Line(set, v).Tag; got != 19 {
		t.Fatalf("LRU victim = block %d, want 19", got)
	}
}

func TestLoopAwareVictimPriority(t *testing.T) {
	c := small()
	set := 0
	// way 0: loop-block (oldest), way 1: non-loop, way 2: loop, way 3: non-loop (newest).
	c.InsertAt(set, 0, 0, false, true)
	c.InsertAt(set, 1, 16, false, false)
	c.InsertAt(set, 2, 32, false, true)
	c.InsertAt(set, 3, 48, true, false)
	// LRU non-loop-block is way 1 even though way 0 is older overall.
	if v := c.LoopAwareVictim(set); v != 1 {
		t.Fatalf("loop-aware victim = way %d, want 1 (LRU non-loop)", v)
	}
	// Plain LRU would pick way 0.
	if v := c.LRUVictim(set); v != 0 {
		t.Fatalf("LRU victim = way %d, want 0", v)
	}
	// With only loop-blocks left, the LRU loop-block is evicted.
	c.Line(set, 1).Loop = true
	c.Line(set, 3).Loop = true
	if v := c.LoopAwareVictim(set); v != 0 {
		t.Fatalf("all-loop victim = way %d, want 0", v)
	}
}

func TestLoopAwareVictimPrefersInvalid(t *testing.T) {
	c := small()
	c.InsertAt(0, 0, 0, false, false)
	c.InsertAt(0, 2, 32, false, false)
	if v := c.LoopAwareVictim(0); v != 1 && v != 3 {
		t.Fatalf("victim = way %d, want an invalid way", v)
	}
	if v := c.LRUVictim(0); v != 1 && v != 3 {
		t.Fatalf("LRU victim = way %d, want an invalid way", v)
	}
}

func TestVictimInRange(t *testing.T) {
	c := New(Config{Name: "h", SizeBytes: 16 * 64 * 4, Ways: 16, BlockBytes: 64, SRAMWays: 4})
	set := 0
	for w := 0; w < 16; w++ {
		c.InsertAt(set, w, uint64(w*c.NumSets()), false, w%2 == 0)
	}
	if v := c.VictimIn(set, 0, 4); v < 0 || v >= 4 {
		t.Fatalf("SRAM-region victim out of range: %d", v)
	}
	if v := c.LoopAwareVictimIn(set, 4, 16); v < 4 || v >= 16 {
		t.Fatalf("STT-region victim out of range: %d", v)
	}
	if !c.IsSRAMWay(3) || c.IsSRAMWay(4) {
		t.Fatal("IsSRAMWay boundary wrong")
	}
}

func TestVictimEmptyRangePanics(t *testing.T) {
	c := small()
	for _, f := range []func(){
		func() { c.VictimIn(0, 2, 2) },
		func() { c.LoopAwareVictimIn(0, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for empty range")
				}
			}()
			f()
		}()
	}
}

func TestMRUWhere(t *testing.T) {
	c := small()
	c.InsertAt(0, 0, 0, false, true)
	c.InsertAt(0, 1, 16, false, false)
	c.InsertAt(0, 2, 32, false, true) // most recent loop-block
	if w := c.MRUWhere(0, 0, 4, func(l *Line) bool { return l.Loop }); w != 2 {
		t.Fatalf("MRU loop-block way = %d, want 2", w)
	}
	if w := c.MRUWhere(0, 0, 4, func(l *Line) bool { return l.Dirty }); w != -1 {
		t.Fatalf("MRUWhere(no match) = %d, want -1", w)
	}
}

func TestInvalidWayIn(t *testing.T) {
	c := small()
	if w := c.InvalidWayIn(0, 0, 4); w != 0 {
		t.Fatalf("first invalid way = %d", w)
	}
	for w := 0; w < 4; w++ {
		c.InsertAt(0, w, uint64(w*16), false, false)
	}
	if w := c.InvalidWayIn(0, 0, 4); w != -1 {
		t.Fatalf("full set reported invalid way %d", w)
	}
}

func TestEvictReturnsContents(t *testing.T) {
	c := small()
	c.InsertAt(5, 2, 5+16, true, true)
	l, ok := c.Evict(5, 2)
	if !ok || l.Tag != 21 || !l.Dirty || !l.Loop {
		t.Fatalf("evicted line = %+v ok=%v", l, ok)
	}
	if _, ok := c.Evict(5, 2); ok {
		t.Fatal("evicting empty way reported contents")
	}
}

func TestReset(t *testing.T) {
	c := small()
	c.InsertAt(0, 0, 0, true, false)
	c.Lookup(0)
	c.Lookup(999)
	c.Reset()
	if c.FillCount() != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: after any sequence of insert-via-victim operations, the number
// of valid lines never exceeds capacity, and every inserted block that was
// not subsequently evicted is findable in its home set.
func TestPropertyOccupancyBounded(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		c := small()
		for i := 0; i < int(n%2048); i++ {
			b := rng.Uint64() % 4096
			if c.Lookup(b) < 0 {
				set := c.SetOf(b)
				c.InsertAt(set, c.LRUVictim(set), b, rng.IntN(2) == 0, rng.IntN(2) == 0)
			}
		}
		return c.FillCount() <= c.NumSets()*c.Ways()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a probe never reports a way whose tag differs from the block,
// and insert-then-probe always round-trips.
func TestPropertyProbeConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		c := small()
		for i := 0; i < 500; i++ {
			b := rng.Uint64() % 1024
			set := c.SetOf(b)
			c.InsertAt(set, c.LRUVictim(set), b, false, false)
			w := c.Probe(b)
			if w < 0 || c.Line(set, w).Tag != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU victim selection in a full set always picks the way with
// the minimum recency stamp.
func TestPropertyLRUMinStamp(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		c := small()
		set := int(seed % 16)
		for w := 0; w < 4; w++ {
			c.InsertAt(set, w, uint64(w*16+set), false, false)
		}
		for i := 0; i < 20; i++ {
			c.Touch(set, rng.IntN(4))
		}
		v := c.LRUVictim(set)
		for w := 0; w < 4; w++ {
			if c.Stamp(set, w) < c.Stamp(set, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuelRoles(t *testing.T) {
	d := NewDuel()
	if d.RoleOf(0) != LeaderA || d.RoleOf(1) != LeaderB || d.RoleOf(2) != Follower {
		t.Fatal("role assignment wrong")
	}
	if d.RoleOf(64) != LeaderA || d.RoleOf(65) != LeaderB {
		t.Fatal("role assignment not periodic with stride")
	}
	// Paper: 1/64 of sets per leader group.
	a := 0
	for s := 0; s < 8192; s++ {
		if d.RoleOf(s) == LeaderA {
			a++
		}
	}
	if a != 8192/64 {
		t.Fatalf("LeaderA count = %d, want %d", a, 8192/64)
	}
}

func TestDuelElection(t *testing.T) {
	d := NewDuel()
	d.PeriodCycles = 1000
	// Policy A suffers more misses in the first window.
	d.AddCost(LeaderA, 10)
	d.AddCost(LeaderB, 3)
	d.AddCost(Follower, 99) // ignored
	d.Observe(1000)
	if d.Winner() != LeaderB {
		t.Fatalf("winner = %v, want LeaderB", d.Winner())
	}
	if d.PolicyOf(2) != LeaderB {
		t.Fatal("follower did not adopt winner")
	}
	if d.PolicyOf(0) != LeaderA || d.PolicyOf(1) != LeaderB {
		t.Fatal("leaders must keep their own policy")
	}
	// Next window: B degrades; ties go to A.
	d.AddCost(LeaderA, 5)
	d.AddCost(LeaderB, 5)
	d.Observe(2000)
	if d.Winner() != LeaderA {
		t.Fatalf("winner = %v, want LeaderA on tie", d.Winner())
	}
}

func TestDuelObserveMidWindowNoop(t *testing.T) {
	d := NewDuel()
	d.PeriodCycles = 1000
	d.AddCost(LeaderA, 1) // A costs more this window
	d.Observe(500)        // mid-window: no election
	if d.Winner() != LeaderA {
		t.Fatal("mid-window observe changed winner")
	}
	d.Observe(5000) // multiple windows elapsed at once
	if d.Winner() != LeaderB {
		t.Fatal("late observe did not elect the cheaper policy")
	}
	// nextFlip must have advanced beyond the observed cycle, so this new
	// cost is not consumed until the next window.
	d.AddCost(LeaderB, 1)
	d.Observe(5001)
	if d.Winner() != LeaderB {
		t.Fatal("window did not advance past observed cycle")
	}
}
