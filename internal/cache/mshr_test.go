package cache

import "testing"

func TestMSHRMergeInFlight(t *testing.T) {
	m := NewMSHR(2)
	if m.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", m.Entries())
	}
	// No miss in flight: nothing to merge, reserve is free.
	if _, ok := m.Merge(0x100, 10); ok {
		t.Fatal("merged against an empty table")
	}
	delay, stalled := m.Reserve(10)
	if delay != 0 || stalled {
		t.Fatalf("empty-table Reserve = (%d, %v), want (0, false)", delay, stalled)
	}
	m.Fill(0x100, 110)

	// A second miss on the same block while the fill is outstanding
	// merges and waits exactly until the fill lands.
	wait, ok := m.Merge(0x100, 30)
	if !ok || wait != 80 {
		t.Fatalf("Merge = (%d, %v), want (80, true)", wait, ok)
	}
	// After the fill lands the entry is retired: no merge.
	if _, ok := m.Merge(0x100, 110); ok {
		t.Fatal("merged against a retired entry")
	}
}

func TestMSHRReserveStalls(t *testing.T) {
	m := NewMSHR(2)
	for i, ready := range []uint64{50, 90} {
		if delay, stalled := m.Reserve(0); delay != 0 || stalled {
			t.Fatalf("Reserve %d stalled on a free table", i)
		}
		m.Fill(uint64(0x200+i), ready)
	}
	// Table full: the third miss stalls until the earliest fill (50).
	delay, stalled := m.Reserve(20)
	if !stalled || delay != 30 {
		t.Fatalf("full-table Reserve = (%d, %v), want (30, true)", delay, stalled)
	}
	m.Fill(0x300, 80)
	// Slots now hold fills landing at 80 and 90 — both outstanding at
	// time 60, so the next reserve stalls until the earlier one (80).
	delay, stalled = m.Reserve(60)
	if !stalled || delay != 20 {
		t.Fatalf("Reserve at 60 = (%d, %v), want (20, true)", delay, stalled)
	}
	m.Fill(0x400, 100)
	// At 95 the 0x201@90 slot has retired: free reservation.
	if delay, stalled = m.Reserve(95); delay != 0 || stalled {
		t.Fatalf("Reserve at 95 = (%d, %v), want (0, false)", delay, stalled)
	}
}

func TestMSHRReset(t *testing.T) {
	m := NewMSHR(1)
	if _, stalled := m.Reserve(0); stalled {
		t.Fatal("fresh table stalled")
	}
	m.Fill(0x1, 100)
	m.Reset()
	if _, ok := m.Merge(0x1, 10); ok {
		t.Fatal("merge hit after Reset")
	}
	if delay, stalled := m.Reserve(10); delay != 0 || stalled {
		t.Fatal("Reserve stalled after Reset")
	}
}

func TestMSHRPanicsOnZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMSHR(0) did not panic")
		}
	}()
	NewMSHR(0)
}
