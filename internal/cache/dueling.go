package cache

// Set-dueling infrastructure (Qureshi et al. [35], as used by the paper in
// Section III-B). A small fraction of sets are dedicated leaders for each
// of two competing policies; follower sets adopt whichever leader group
// accumulated the lower cost over the current observation window. The
// paper dedicates 1/64 of sets to each leader group and compares miss
// counts every 10M cycles.

// Role classifies a set within a duel.
type Role int

// Duel roles. LeaderA sets always run policy A, LeaderB sets policy B, and
// Follower sets run the current winner.
const (
	LeaderA Role = iota
	LeaderB
	Follower
)

// Duel arbitrates between two policies via set-dueling.
type Duel struct {
	// Stride is the leader-set spacing: set s is a LeaderA when
	// s%Stride == 0 and a LeaderB when s%Stride == 1. The paper's 1/64
	// dedication corresponds to Stride == 64.
	Stride int
	// PeriodCycles is the observation-window length (10M in the paper).
	PeriodCycles uint64

	costA, costB float64
	nextFlip     uint64
	winner       Role // LeaderA or LeaderB
}

// NewDuel returns a duel with the paper's parameters: 1/64 leader sets per
// policy and a 10M-cycle window, with policy A winning initially.
func NewDuel() *Duel {
	return &Duel{Stride: 64, PeriodCycles: 10_000_000, winner: LeaderA}
}

// RoleOf classifies a set index.
func (d *Duel) RoleOf(set int) Role {
	switch set % d.Stride {
	case 0:
		return LeaderA
	case 1:
		return LeaderB
	default:
		return Follower
	}
}

// PolicyOf returns the policy (LeaderA or LeaderB) that the given set
// should run right now.
func (d *Duel) PolicyOf(set int) Role {
	r := d.RoleOf(set)
	if r == Follower {
		return d.winner
	}
	return r
}

// AddCost charges cost against the given leader group. Calls for Follower
// roles are ignored, which lets callers charge unconditionally.
func (d *Duel) AddCost(r Role, cost float64) {
	switch r {
	case LeaderA:
		d.costA += cost
	case LeaderB:
		d.costB += cost
	}
}

// Observe advances the duel to the given cycle, re-electing the winner and
// clearing the window counters whenever a window boundary passes.
func (d *Duel) Observe(cycle uint64) {
	if d.nextFlip == 0 {
		d.nextFlip = d.PeriodCycles
	}
	if cycle < d.nextFlip {
		return
	}
	if d.costA <= d.costB {
		d.winner = LeaderA
	} else {
		d.winner = LeaderB
	}
	d.costA, d.costB = 0, 0
	for d.nextFlip <= cycle {
		d.nextFlip += d.PeriodCycles
	}
}

// Winner returns the currently winning policy.
func (d *Duel) Winner() Role { return d.winner }

// SetWinner forces the current winner (LeaderA or LeaderB). It exists for
// tests and for externally driven mode control; normal operation elects
// winners via Observe.
func (d *Duel) SetWinner(r Role) {
	if r == LeaderA || r == LeaderB {
		d.winner = r
	}
}
