package cache

// MSHR models a bounded table of Miss Status Holding Registers in front
// of main memory: one entry per outstanding LLC miss, keyed by block
// number and holding the cycle the fill completes. A second miss to a
// block already in flight merges with the existing entry — it waits for
// the outstanding fill instead of issuing a redundant memory read — and
// a miss arriving with every register busy stalls until the earliest
// outstanding fill retires and frees its entry.
//
// The table is optional and off by default (Config.MSHREntries = 0), in
// which case every miss issues its own memory read exactly as before.
type MSHR struct {
	blocks  []uint64
	readyAt []uint64
	// pending is the slot claimed by the last Reserve, filled by Fill.
	pending int
}

// NewMSHR returns a table with n registers; n must be positive.
func NewMSHR(n int) *MSHR {
	if n <= 0 {
		panic("cache: MSHR entry count must be positive")
	}
	return &MSHR{
		blocks:  make([]uint64, n),
		readyAt: make([]uint64, n),
		pending: -1,
	}
}

// Entries returns the table's register count.
func (t *MSHR) Entries() int { return len(t.blocks) }

// Merge reports whether block already has an outstanding fill at cycle
// now. On a merge it returns the remaining wait until that fill
// completes; the caller must not issue a new memory read.
func (t *MSHR) Merge(block, now uint64) (wait uint64, ok bool) {
	for i, b := range t.blocks {
		if b == block && t.readyAt[i] > now {
			return t.readyAt[i] - now, true
		}
	}
	return 0, false
}

// Reserve claims a register for a new miss at cycle now. It returns the
// issue delay: zero when a free or retired register exists, otherwise the
// wait until the earliest outstanding fill retires (stalled is then
// true). Fill must be called next with the fill's completion cycle.
func (t *MSHR) Reserve(now uint64) (delay uint64, stalled bool) {
	earliest, slot := ^uint64(0), -1
	for i, r := range t.readyAt {
		if r <= now {
			t.pending = i
			return 0, false
		}
		if r < earliest {
			earliest, slot = r, i
		}
	}
	t.pending = slot
	return earliest - now, true
}

// Fill records the reserved register's block and completion cycle.
func (t *MSHR) Fill(block, readyAt uint64) {
	t.blocks[t.pending] = block
	t.readyAt[t.pending] = readyAt
}

// Reset retires every outstanding entry.
func (t *MSHR) Reset() {
	for i := range t.blocks {
		t.blocks[i] = 0
		t.readyAt[i] = 0
	}
	t.pending = -1
}
