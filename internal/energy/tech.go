// Package energy models the energy and latency characteristics of the
// cache technologies evaluated in the LAP paper (ISCA 2016, Table I and
// Table II), and provides an accounting meter that turns dynamic access
// counts and simulated runtime into the paper's headline metric, LLC
// energy-per-instruction (EPI).
//
// All technology constants are taken verbatim from the paper, which in
// turn derived them from CACTI 6.0 and NVSim for a 2MB cache bank in 22nm
// at 350K. The package also implements the write/read energy-ratio scaling
// used by the paper's Figure 23 sensitivity study.
package energy

// Tech describes one memory technology for a single 2MB cache bank,
// mirroring the rows of Table I in the paper.
type Tech struct {
	// Name identifies the technology ("SRAM", "STT-RAM", or a scaled
	// variant such as "STT-RAM(w/r=4.0)").
	Name string
	// AreaMM2 is the bank area in square millimetres (informational).
	AreaMM2 float64
	// ReadLatNS and WriteLatNS are the access latencies in nanoseconds.
	ReadLatNS  float64
	WriteLatNS float64
	// ReadNJ and WriteNJ are the dynamic energies per access in nanojoules.
	ReadNJ  float64
	WriteNJ float64
	// LeakMWPerBank is the leakage power of one 2MB bank in milliwatts.
	LeakMWPerBank float64
}

// BankBytes is the capacity of the bank that the Table I figures describe.
const BankBytes = 2 << 20

// SRAM returns the SRAM column of Table I.
func SRAM() Tech {
	return Tech{
		Name:          "SRAM",
		AreaMM2:       1.65,
		ReadLatNS:     2.09,
		WriteLatNS:    1.73,
		ReadNJ:        0.072,
		WriteNJ:       0.056,
		LeakMWPerBank: 50.736,
	}
}

// STTRAM returns the STT-RAM column of Table I.
func STTRAM() Tech {
	return Tech{
		Name:          "STT-RAM",
		AreaMM2:       0.62,
		ReadLatNS:     2.69,
		WriteLatNS:    10.91,
		ReadNJ:        0.133,
		WriteNJ:       0.436,
		LeakMWPerBank: 7.108,
	}
}

// WriteReadRatio reports the technology's write/read dynamic-energy ratio,
// the key indicator the paper identifies for inclusion-policy sensitivity.
func (t Tech) WriteReadRatio() float64 {
	if t.ReadNJ == 0 {
		return 0
	}
	return t.WriteNJ / t.ReadNJ
}

// WithWriteReadRatio returns a copy of t whose write energy is scaled so
// that WriteNJ/ReadNJ equals ratio while the read energy and leakage are
// held fixed. This is exactly the scaling the paper applies in Figure 23.
func (t Tech) WithWriteReadRatio(ratio float64) Tech {
	s := t
	s.WriteNJ = t.ReadNJ * ratio
	s.Name = t.Name + "(w/r=" + ftoa(ratio) + ")"
	return s
}

func ftoa(f float64) string {
	// Minimal fixed-point formatter (1 decimal) to avoid importing fmt in
	// this leaf package's hot path users.
	neg := f < 0
	if neg {
		f = -f
	}
	whole := int64(f)
	frac := int64((f-float64(whole))*10 + 0.5)
	if frac == 10 {
		whole++
		frac = 0
	}
	buf := make([]byte, 0, 8)
	if neg {
		buf = append(buf, '-')
	}
	buf = appendInt(buf, whole)
	buf = append(buf, '.')
	buf = append(buf, byte('0'+frac))
	return string(buf)
}

func appendInt(buf []byte, v int64) []byte {
	if v >= 10 {
		buf = appendInt(buf, v/10)
	}
	return append(buf, byte('0'+v%10))
}

// SRAMTag describes the SRAM tag array used by the 8MB L3 in Table II.
// Both the pure-SRAM, pure-STT-RAM and hybrid LLCs keep their tags in
// SRAM, so tag energy is technology-independent.
type SRAMTag struct {
	// LeakMW is the total tag-array leakage for the whole LLC.
	LeakMW float64
	// DynNJ is the dynamic energy of one tag-array access.
	DynNJ float64
}

// DefaultTag returns the Table II tag-array parameters for the 8MB L3.
func DefaultTag() SRAMTag {
	return SRAMTag{LeakMW: 17.73, DynNJ: 0.015}
}

// PublishedConfig is one published STT-RAM design point plotted in the
// paper's Figure 23. The write/read ratios are approximations recovered
// from the figure's x-axis positions; the citations match the paper's
// reference list.
type PublishedConfig struct {
	// Ref is the paper's bracketed citation tag, e.g. "[13]-1".
	Ref string
	// Description summarises the design point.
	Description string
	// WriteReadRatio is the design's write/read dynamic-energy ratio.
	WriteReadRatio float64
}

// PublishedConfigs returns the published STT-RAM design points overlaid on
// Figure 23, ordered by increasing write/read energy ratio.
func PublishedConfigs() []PublishedConfig {
	return []PublishedConfig{
		{Ref: "[13]-1", Description: "Smullen et al., relaxed retention (fast)", WriteReadRatio: 2.0},
		{Ref: "[12]", Description: "Noguchi et al., perpendicular MTJ cache", WriteReadRatio: 2.8},
		{Ref: "[34]", Description: "Ahn et al., DASCA baseline cell", WriteReadRatio: 3.3},
		{Ref: "[13]-2", Description: "Smullen et al., relaxed retention (dense)", WriteReadRatio: 4.4},
		{Ref: "[17]", Description: "Wang et al., hybrid-cache STT cell", WriteReadRatio: 5.5},
		{Ref: "[41]", Description: "Chang et al., low write-energy L3C", WriteReadRatio: 6.8},
		{Ref: "[11]", Description: "Noguchi et al., read-disturb-free MTJ", WriteReadRatio: 8.9},
		{Ref: "[42]", Description: "Halupka et al., negative-resistance cell", WriteReadRatio: 11.5},
		{Ref: "[43]", Description: "Ohsawa et al., 4T-2MTJ embedded", WriteReadRatio: 14.6},
		{Ref: "[14]", Description: "Noguchi et al., dual-cell magnetic cache", WriteReadRatio: 18.0},
		{Ref: "[16]", Description: "Tsuchida et al., clamped-reference MRAM", WriteReadRatio: 22.0},
	}
}
