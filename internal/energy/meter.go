package energy

import "fmt"

// RegionID indexes a technology region inside a Meter. A single-technology
// LLC has one region; the hybrid SRAM/STT-RAM LLC has two.
type RegionID int

// Canonical region indices used by the simulator. A single-technology LLC
// registers only region 0; the hybrid LLC registers RegionSRAM and
// RegionSTT in that order.
const (
	RegionSRAM RegionID = 0
	RegionSTT  RegionID = 1
)

// Region accumulates the dynamic access counts of one technology region of
// the LLC data array.
type Region struct {
	// Tech is the technology the region is built from.
	Tech Tech
	// Banks scales the per-bank leakage to the region's capacity
	// (capacity / 2MB). Fractional values are allowed so that, e.g., the
	// hybrid LLC's 6MB STT region leaks 3 banks' worth.
	Banks float64
	// Reads and Writes count data-array accesses.
	Reads  uint64
	Writes uint64
}

// Meter accumulates LLC dynamic-energy events and converts them, together
// with the simulated runtime, into energy totals and EPI. It deliberately
// covers only the LLC (tag + data), matching the paper's reported metric.
type Meter struct {
	// ClockHz is the core clock used to convert cycles into seconds.
	ClockHz float64
	// Tag is the shared SRAM tag array.
	Tag SRAMTag
	// TagAccesses counts tag-array lookups and updates.
	TagAccesses uint64
	// Regions holds one entry per technology region of the data array.
	Regions []Region
}

// NewMeter returns a meter for an LLC whose data array consists of the
// given regions, clocked at clockHz, with the default Table II tag array.
func NewMeter(clockHz float64, regions ...Region) *Meter {
	m := &Meter{ClockHz: clockHz, Tag: DefaultTag(), Regions: regions}
	return m
}

// SingleTech returns a meter for a single-technology LLC of totalBytes
// capacity built from tech.
func SingleTech(clockHz float64, tech Tech, totalBytes int64) *Meter {
	return NewMeter(clockHz, Region{Tech: tech, Banks: float64(totalBytes) / float64(BankBytes)})
}

// Hybrid returns a meter for a hybrid LLC with sramBytes of SRAM (region
// 0) and sttBytes of STT-RAM (region 1).
func Hybrid(clockHz float64, sram, stt Tech, sramBytes, sttBytes int64) *Meter {
	return NewMeter(clockHz,
		Region{Tech: sram, Banks: float64(sramBytes) / float64(BankBytes)},
		Region{Tech: stt, Banks: float64(sttBytes) / float64(BankBytes)},
	)
}

// AddTag records one tag-array access (lookup or tag-only update, such as
// LAP's loop-bit refresh on a dropped clean victim). Controllers also
// charge their SRAM metadata structures here — the reuse-detector
// signature table and the rd-copyback timestamp table probe at tag-array
// cost per access, so predictor overhead shows up in EPI rather than
// being modelled as free.
func (m *Meter) AddTag() { m.TagAccesses++ }

// AddRead records one data-array read in the given region.
func (m *Meter) AddRead(r RegionID) { m.Regions[r].Reads++ }

// AddWrite records one data-array write in the given region.
func (m *Meter) AddWrite(r RegionID) { m.Regions[r].Writes++ }

// DynamicNJ returns the total dynamic energy accumulated so far, in
// nanojoules.
func (m *Meter) DynamicNJ() float64 {
	nj := float64(m.TagAccesses) * m.Tag.DynNJ
	for i := range m.Regions {
		reg := &m.Regions[i]
		nj += float64(reg.Reads)*reg.Tech.ReadNJ + float64(reg.Writes)*reg.Tech.WriteNJ
	}
	return nj
}

// LeakMW returns the total leakage power of the LLC (tag + all data
// regions) in milliwatts.
func (m *Meter) LeakMW() float64 {
	mw := m.Tag.LeakMW
	for i := range m.Regions {
		mw += m.Regions[i].Tech.LeakMWPerBank * m.Regions[i].Banks
	}
	return mw
}

// StaticNJ returns the leakage energy dissipated over the given number of
// core cycles, in nanojoules.
func (m *Meter) StaticNJ(cycles uint64) float64 {
	seconds := float64(cycles) / m.ClockHz
	// mW * s = mJ; convert to nJ.
	return m.LeakMW() * seconds * 1e6
}

// Breakdown is the result of an EPI computation, split the way the paper's
// Figure 12 stacks its bars.
type Breakdown struct {
	// StaticNJPerInstr and DynamicNJPerInstr are the leakage and dynamic
	// components of EPI, in nanojoules per instruction.
	StaticNJPerInstr  float64
	DynamicNJPerInstr float64
}

// Total returns the overall EPI in nanojoules per instruction.
func (b Breakdown) Total() float64 { return b.StaticNJPerInstr + b.DynamicNJPerInstr }

// EPI computes the LLC energy-per-instruction over a run of the given
// length. It panics if instructions is zero, since EPI is undefined there.
func (m *Meter) EPI(cycles, instructions uint64) Breakdown {
	if instructions == 0 {
		panic("energy: EPI of a run with zero instructions")
	}
	n := float64(instructions)
	return Breakdown{
		StaticNJPerInstr:  m.StaticNJ(cycles) / n,
		DynamicNJPerInstr: m.DynamicNJ() / n,
	}
}

// TotalNJ returns the total (static + dynamic) LLC energy of a run that
// lasted the given number of cycles.
func (m *Meter) TotalNJ(cycles uint64) float64 {
	return m.StaticNJ(cycles) + m.DynamicNJ()
}

// String summarises the meter's accumulated state.
func (m *Meter) String() string {
	return fmt.Sprintf("Meter{tag=%d accesses, regions=%d, dyn=%.1f nJ, leak=%.2f mW}",
		m.TagAccesses, len(m.Regions), m.DynamicNJ(), m.LeakMW())
}
