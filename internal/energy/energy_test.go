package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTableIConstants(t *testing.T) {
	s, m := SRAM(), STTRAM()
	if s.ReadNJ != 0.072 || s.WriteNJ != 0.056 || s.LeakMWPerBank != 50.736 {
		t.Fatalf("SRAM constants drifted from Table I: %+v", s)
	}
	if m.ReadNJ != 0.133 || m.WriteNJ != 0.436 || m.LeakMWPerBank != 7.108 {
		t.Fatalf("STT-RAM constants drifted from Table I: %+v", m)
	}
	// Paper: STT write is ~8x SRAM write energy, ~6x SRAM write latency.
	if r := m.WriteNJ / s.WriteNJ; r < 7 || r > 9 {
		t.Errorf("STT/SRAM write-energy ratio = %.2f, want ~8x", r)
	}
	if r := m.WriteLatNS / s.WriteLatNS; r < 5.5 || r > 7 {
		t.Errorf("STT/SRAM write-latency ratio = %.2f, want ~6x", r)
	}
	// Paper: STT leakage ~7x lower, density ~3x higher.
	if r := s.LeakMWPerBank / m.LeakMWPerBank; r < 6.5 || r > 7.5 {
		t.Errorf("leakage ratio = %.2f, want ~7x", r)
	}
	if r := s.AreaMM2 / m.AreaMM2; r < 2.5 || r > 3 {
		t.Errorf("area ratio = %.2f, want ~2.7x", r)
	}
}

func TestWriteReadRatio(t *testing.T) {
	m := STTRAM()
	if r := m.WriteReadRatio(); !almost(r, 0.436/0.133, 1e-12) {
		t.Fatalf("WriteReadRatio = %v", r)
	}
	var zero Tech
	if zero.WriteReadRatio() != 0 {
		t.Fatal("zero tech should report ratio 0, not NaN")
	}
}

func TestWithWriteReadRatio(t *testing.T) {
	base := STTRAM()
	for _, ratio := range []float64{1, 2, 3.3, 8, 25} {
		s := base.WithWriteReadRatio(ratio)
		if !almost(s.WriteReadRatio(), ratio, 1e-9) {
			t.Errorf("ratio %v: got %v", ratio, s.WriteReadRatio())
		}
		if s.ReadNJ != base.ReadNJ || s.LeakMWPerBank != base.LeakMWPerBank {
			t.Errorf("ratio %v: read energy or leakage changed", ratio)
		}
		if !strings.Contains(s.Name, "w/r=") {
			t.Errorf("scaled tech name %q lacks ratio marker", s.Name)
		}
	}
}

func TestWithWriteReadRatioProperty(t *testing.T) {
	base := STTRAM()
	f := func(r uint8) bool {
		ratio := 0.5 + float64(r)/8
		s := base.WithWriteReadRatio(ratio)
		return almost(s.WriteNJ, base.ReadNJ*ratio, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFtoa(t *testing.T) {
	cases := map[float64]string{0: "0.0", 1: "1.0", 2.5: "2.5", 3.26: "3.3", 9.99: "10.0", -1.2: "-1.2"}
	for in, want := range cases {
		if got := ftoa(in); got != want {
			t.Errorf("ftoa(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestMeterDynamic(t *testing.T) {
	m := SingleTech(3e9, STTRAM(), 8<<20)
	for i := 0; i < 10; i++ {
		m.AddTag()
	}
	for i := 0; i < 4; i++ {
		m.AddRead(0)
	}
	for i := 0; i < 3; i++ {
		m.AddWrite(0)
	}
	want := 10*0.015 + 4*0.133 + 3*0.436
	if got := m.DynamicNJ(); !almost(got, want, 1e-9) {
		t.Fatalf("DynamicNJ = %v, want %v", got, want)
	}
}

func TestMeterLeakage(t *testing.T) {
	m := SingleTech(3e9, STTRAM(), 8<<20)
	// 8MB = 4 banks of STT-RAM plus the SRAM tag array.
	want := 4*7.108 + 17.73
	if got := m.LeakMW(); !almost(got, want, 1e-9) {
		t.Fatalf("LeakMW = %v, want %v (Table II)", got, want)
	}
	s := SingleTech(3e9, SRAM(), 8<<20)
	wantS := 4*50.736 + 17.73
	if got := s.LeakMW(); !almost(got, wantS, 1e-9) {
		t.Fatalf("SRAM LeakMW = %v, want %v", got, wantS)
	}
}

func TestHybridMeterLeakage(t *testing.T) {
	m := Hybrid(3e9, SRAM(), STTRAM(), 2<<20, 6<<20)
	want := 1*50.736 + 3*7.108 + 17.73
	if got := m.LeakMW(); !almost(got, want, 1e-9) {
		t.Fatalf("hybrid LeakMW = %v, want %v", got, want)
	}
	m.AddWrite(RegionSRAM)
	m.AddWrite(RegionSTT)
	want = 0.056 + 0.436
	if got := m.DynamicNJ(); !almost(got, want, 1e-9) {
		t.Fatalf("hybrid DynamicNJ = %v, want %v", got, want)
	}
}

func TestStaticNJ(t *testing.T) {
	m := SingleTech(3e9, STTRAM(), 8<<20)
	// One second of simulated time at 3GHz.
	nj := m.StaticNJ(3_000_000_000)
	wantMJ := m.LeakMW() // mW for 1s = mJ
	if !almost(nj/1e6, wantMJ, 1e-6) {
		t.Fatalf("StaticNJ(1s) = %v nJ, want %v mJ", nj, wantMJ)
	}
}

func TestEPI(t *testing.T) {
	m := SingleTech(3e9, STTRAM(), 8<<20)
	m.AddRead(0)
	b := m.EPI(3000, 100)
	if b.DynamicNJPerInstr <= 0 || b.StaticNJPerInstr <= 0 {
		t.Fatal("EPI components must be positive")
	}
	if !almost(b.Total(), b.StaticNJPerInstr+b.DynamicNJPerInstr, 1e-12) {
		t.Fatal("Total != static + dynamic")
	}
}

func TestEPIZeroInstructionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero instructions")
		}
	}()
	SingleTech(3e9, SRAM(), 8<<20).EPI(100, 0)
}

func TestEPIMonotoneInWrites(t *testing.T) {
	f := func(w uint16) bool {
		m := SingleTech(3e9, STTRAM(), 8<<20)
		for i := 0; i < int(w); i++ {
			m.AddWrite(0)
		}
		lo := m.EPI(1000, 1000).Total()
		m.AddWrite(0)
		hi := m.EPI(1000, 1000).Total()
		return hi > lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPublishedConfigsSorted(t *testing.T) {
	pcs := PublishedConfigs()
	if len(pcs) != 11 {
		t.Fatalf("want 11 published design points (Fig. 23), got %d", len(pcs))
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i].WriteReadRatio < pcs[i-1].WriteReadRatio {
			t.Fatalf("published configs not sorted at %d", i)
		}
	}
	for _, pc := range pcs {
		if pc.Ref == "" || pc.Description == "" || pc.WriteReadRatio <= 0 {
			t.Fatalf("incomplete published config %+v", pc)
		}
	}
}

func TestMeterString(t *testing.T) {
	m := SingleTech(3e9, STTRAM(), 8<<20)
	if s := m.String(); !strings.Contains(s, "Meter{") {
		t.Fatalf("unexpected String: %q", s)
	}
}
