package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoComputesOnceAndRecalls(t *testing.T) {
	c := New[string, int](0)
	calls := 0
	compute := func() int { calls++; return 42 }
	if got := c.Do("k", compute); got != 42 {
		t.Fatalf("first Do = %d", got)
	}
	if got := c.Do("k", compute); got != 42 {
		t.Fatalf("second Do = %d", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Computed != 1 || s.Recalled != 1 || s.Evicted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSingleflight races many goroutines on one fresh key and requires
// exactly one compute, with every caller observing its result.
func TestSingleflight(t *testing.T) {
	c := New[string, string](0)
	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 32
	results := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.Do("key", func() string {
				<-release // hold the latch so duplicates must wait
				computes.Add(1)
				return "only-once"
			})
		}()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, r := range results {
		if r != "only-once" {
			t.Fatalf("caller %d observed %q", i, r)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache size = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](2)
	c.Do(1, func() int { return 1 })
	c.Do(2, func() int { return 2 })
	// Touch 1 so it is most recent; inserting 3 must evict 2.
	c.Do(1, func() int { t.Fatal("1 recomputed"); return 0 })
	c.Do(3, func() int { return 3 })
	if c.Len() != 2 {
		t.Fatalf("cache size = %d, want 2", c.Len())
	}
	recomputed := false
	c.Do(2, func() int { recomputed = true; return 2 })
	if !recomputed {
		t.Fatal("evicted key 2 was still cached")
	}
	// Re-inserting 2 evicted the then-LRU key 1; 3 must still be cached.
	c.Do(3, func() int { t.Fatal("retained key 3 recomputed"); return 0 })
	if got := c.Stats().Evicted; got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 1000; i++ {
		c.Do(i, func() int { return i })
	}
	if c.Len() != 1000 {
		t.Fatalf("cache size = %d, want 1000", c.Len())
	}
	if s := c.Stats(); s.Evicted != 0 {
		t.Fatalf("evicted = %d, want 0", s.Evicted)
	}
}

// TestInFlightExemptFromEviction overflows a size-1 cache with entries
// while another key's computation is still in flight; the in-flight
// entry must survive and deliver its result to a waiter.
func TestInFlightExemptFromEviction(t *testing.T) {
	c := New[string, int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	var slow int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Do("slow", func() int { close(started); <-release; return 7 })
	}()
	<-started
	go func() {
		defer wg.Done()
		slow = c.Do("slow", func() int { t.Error("duplicate compute"); return 0 })
	}()
	for i := 0; i < 10; i++ {
		c.Do(fmt.Sprintf("filler-%d", i), func() int { return i })
	}
	close(release)
	wg.Wait()
	if slow != 7 {
		t.Fatalf("waiter observed %d, want 7", slow)
	}
}

func TestPanicDoesNotPoison(t *testing.T) {
	c := New[string, int](0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		c.Do("k", func() int { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatalf("poisoned entry survived: size = %d", c.Len())
	}
	if got := c.Do("k", func() int { return 9 }); got != 9 {
		t.Fatalf("retry after panic = %d", got)
	}
}

// TestDoErrFailureNotCached: a compute error reaches the caller, is
// counted in Stats.Failed, and leaves no entry behind — the retry
// recomputes and its success caches normally.
func TestDoErrFailureNotCached(t *testing.T) {
	c := New[string, int](0)
	boom := errors.New("boom")
	calls := 0
	_, err := c.DoErr(context.Background(), "k", func() (int, error) { calls++; return 0, boom })
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry cached: size = %d", c.Len())
	}
	v, err := c.DoErr(context.Background(), "k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	// The success is now cached like any Do value.
	v, err = c.DoErr(context.Background(), "k", func() (int, error) { t.Error("recompute"); return 0, nil })
	if err != nil || v != 7 {
		t.Fatalf("recall = %d, %v", v, err)
	}
	s := c.Stats()
	if s.Failed != 1 || s.Computed != 1 || s.Recalled != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDoErrWaitersShareFailure: duplicates blocked on a failing in-flight
// compute all receive the error without triggering extra computes, and a
// later caller recomputes fresh.
func TestDoErrWaitersShareFailure(t *testing.T) {
	c := New[string, int](0)
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var computes atomic.Int64
	go func() {
		c.DoErr(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			computes.Add(1)
			return 0, boom
		})
	}()
	<-started
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.DoErr(context.Background(), "k", func() (int, error) {
				t.Error("waiter recomputed while in flight")
				return 0, nil
			})
		}()
	}
	// Waiters attach to the in-flight latch before we release it. There
	// is no handle to observe "blocked", so give them a moment; a late
	// attacher would still see the dropped entry and recompute, which the
	// t.Error in their compute would catch.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != boom {
			t.Fatalf("waiter %d err = %v, want boom", i, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry cached: size = %d", c.Len())
	}
}

// TestDoErrPanicWaitersGetError: a panicking compute still propagates to
// its owner, but latched waiters receive ErrComputeFailed instead of a
// silent zero value.
func TestDoErrPanicWaitersGetError(t *testing.T) {
	c := New[string, int](0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to computing caller")
			}
		}()
		c.DoErr(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err := c.DoErr(context.Background(), "k", func() (int, error) {
			t.Error("waiter recomputed while in flight")
			return 0, nil
		})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, ErrComputeFailed) {
		t.Fatalf("waiter err = %v, want ErrComputeFailed", err)
	}
	if got := c.Stats().Failed; got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
}

func TestResetForcesRecompute(t *testing.T) {
	c := New[string, int](0)
	c.Do("k", func() int { return 1 })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("size after reset = %d", c.Len())
	}
	recomputed := false
	c.Do("k", func() int { recomputed = true; return 2 })
	if !recomputed {
		t.Fatal("entry survived reset")
	}
	if s := c.Stats(); s.Computed != 2 {
		t.Fatalf("computed = %d, want 2 (counters survive reset)", s.Computed)
	}
}

func TestDoCtxTimesOutWaiters(t *testing.T) {
	c := New[string, int](0)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do("k", func() int { close(started); <-release; return 1 })
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := c.DoCtx(ctx, "k", func() int { t.Error("duplicate compute"); return 0 })
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
	// A post-completion caller still recalls the computed value.
	v, err := c.DoCtx(context.Background(), "k", func() int { t.Error("recompute"); return 0 })
	if err != nil || v != 1 {
		t.Fatalf("post-completion DoCtx = %d, %v", v, err)
	}
}

// TestDoErrStatProvenance: computed is true exactly when this call
// executed compute — including a compute that failed — and false for
// recalls and for waiters sharing an in-flight outcome.
func TestDoErrStatProvenance(t *testing.T) {
	c := New[string, int](0)
	boom := errors.New("boom")

	_, computed, err := c.DoErrStat(context.Background(), "bad", func() (int, error) { return 0, boom })
	if err != boom || !computed {
		t.Fatalf("failing execution: computed=%v err=%v, want true/boom", computed, err)
	}

	v, computed, err := c.DoErrStat(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || !computed {
		t.Fatalf("first execution: v=%d computed=%v err=%v", v, computed, err)
	}
	v, computed, err = c.DoErrStat(context.Background(), "k", func() (int, error) {
		t.Error("recompute of cached key")
		return 0, nil
	})
	if err != nil || v != 7 || computed {
		t.Fatalf("recall: v=%d computed=%v err=%v, want 7/false/nil", v, computed, err)
	}

	// A waiter sharing an in-flight computation is not the executor.
	release := make(chan struct{})
	started := make(chan struct{})
	go c.DoErrStat(context.Background(), "slow", func() (int, error) {
		close(started)
		<-release
		return 9, nil
	})
	<-started
	done := make(chan bool, 1)
	go func() {
		_, waiterComputed, _ := c.DoErrStat(context.Background(), "slow", func() (int, error) {
			t.Error("waiter recomputed while in flight")
			return 0, nil
		})
		done <- waiterComputed
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if <-done {
		t.Fatal("waiter reported computed=true for a shared in-flight result")
	}
}

// TestPeek: Peek hits only completed successful entries, never blocks,
// counts as a recall, and refreshes the entry's LRU position.
func TestPeek(t *testing.T) {
	c := New[string, int](0)
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("Peek hit a key that was never computed")
	}

	// In-flight entries miss without blocking.
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do("slow", func() int { close(started); <-release; return 1 })
	<-started
	if _, ok := c.Peek("slow"); ok {
		t.Fatal("Peek hit an in-flight entry")
	}
	close(release)

	c.Do("k", func() int { return 42 })
	before := c.Stats().Recalled
	v, ok := c.Peek("k")
	if !ok || v != 42 {
		t.Fatalf("Peek = %d, %v, want 42, true", v, ok)
	}
	if got := c.Stats().Recalled; got != before+1 {
		t.Fatalf("recalled = %d, want %d", got, before+1)
	}
}

// TestPeekTouchesLRU: a Peek must refresh recency exactly like Do, so
// hot cached keys served via the fast path are not the first evicted.
func TestPeekTouchesLRU(t *testing.T) {
	c := New[int, int](2)
	c.Do(1, func() int { return 1 })
	c.Do(2, func() int { return 2 })
	if _, ok := c.Peek(1); !ok { // 1 becomes most recent
		t.Fatal("Peek missed a cached key")
	}
	c.Do(3, func() int { return 3 }) // must evict 2, not 1
	if _, ok := c.Peek(1); !ok {
		t.Fatal("Peek-touched key 1 was evicted")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("LRU key 2 survived past the bound")
	}
}

// TestWaiterPrefersResultOverCancelledCtx is the select-race regression:
// when the result latch is already closed AND ctx is already done, the
// waiter must deliver the result, not the cancellation. Pre-fix, select
// picked arbitrarily between the two ready channels, so this failed
// nondeterministically; loop to make the race likely.
func TestWaiterPrefersResultOverCancelledCtx(t *testing.T) {
	c := New[int, int](0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled before any call
	for i := 0; i < 200; i++ {
		c.Do(i, func() int { return i * 10 }) // entry completed: latch closed
		v, computed, err := c.DoErrStat(ctx, i, func() (int, error) {
			t.Error("recompute of completed entry")
			return 0, nil
		})
		if err != nil {
			t.Fatalf("iteration %d: err = %v, want the completed result", i, err)
		}
		if v != i*10 || computed {
			t.Fatalf("iteration %d: v=%d computed=%v, want %d/false", i, v, computed, i*10)
		}
	}
}

// TestHammer drives duplicate keys, concurrent resets, and a tight LRU
// bound through the cache; it exists chiefly for go test -race.
func TestHammer(t *testing.T) {
	c := New[int, string](5)
	const (
		goroutines = 16
		iterations = 300
		keys       = 11
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := i % keys
				want := fmt.Sprintf("v-%d", k)
				if got := c.Do(k, func() string { return want }); got != want {
					t.Errorf("key %d returned %q", k, got)
					return
				}
				if i%50 == 0 && g == 0 {
					c.Reset()
				}
			}
		}()
	}
	wg.Wait()
	if n := c.Len(); n > 5+goroutines {
		t.Fatalf("cache size %d exceeds bound plus in-flight slack", n)
	}
}

// TestEvictObserver: the LRU bound surfaces dropped keys through the
// observer, outside the lock, in eviction order.
func TestEvictObserver(t *testing.T) {
	c := New[string, int](2)
	var evicted []string
	c.SetEvictObserver(func(k string) { evicted = append(evicted, k) })
	c.Do("a", func() int { return 1 })
	c.Do("b", func() int { return 2 })
	c.Do("c", func() int { return 3 }) // evicts a
	c.Do("d", func() int { return 4 }) // evicts b
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v, want [a b]", evicted)
	}
	c.SetEvictObserver(nil)
	c.Do("e", func() int { return 5 })
	if len(evicted) != 2 {
		t.Fatalf("observer fired after removal: %v", evicted)
	}
	if got := c.Stats().Evicted; got != 3 {
		t.Fatalf("Evicted = %d, want 3", got)
	}
}
