// Package memo provides a concurrency-safe singleflight result cache
// with an optional size-bounded LRU eviction layer.
//
// The cache was born as the run memo of internal/experiments (PR 1),
// where it coordinates the parallel artifact scheduler: the first
// request for a key computes the value while concurrent duplicates
// block on a per-key latch and share the result, so no computation is
// ever executed twice no matter how many workers race for it. Promoted
// here, the same machinery backs long-lived consumers — most notably
// the lapserved result cache — which additionally need a bound on
// resident entries; New's maxEntries enables least-recently-used
// eviction of *completed* entries (in-flight computations are never
// evicted, so the singleflight guarantee survives any bound).
//
// Failure domain (PR 3): DoErr computes values that can fail. A failed
// computation is never cached — the entry is dropped so a later request
// (a retry after backoff, say) recomputes instead of recalling the
// failure — but callers already blocked on the in-flight latch receive
// the same error, so one failing compute costs one execution, exactly
// like one succeeding compute. A compute that panics propagates to the
// goroutine that owns it (after the poisoned entry is dropped); its
// waiters receive ErrComputeFailed rather than silently observing a
// zero value.
package memo

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

// ErrComputeFailed is delivered to callers that were waiting on an
// in-flight computation that panicked. (Callers waiting on a compute
// that returned an error receive that error itself.)
var ErrComputeFailed = errors.New("memo: in-flight computation panicked")

// Cache is a singleflight memo from comparable keys to values. The zero
// value is not ready to use; construct with New.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int                // 0 = unbounded
	entries map[K]*entry[K, V] // all entries, including in-flight
	order   *list.List         // completed entries, most recent at front

	computed atomic.Uint64
	recalled atomic.Uint64
	evicted  atomic.Uint64
	failed   atomic.Uint64

	// onEvict, when set, receives every key the LRU bound drops. Called
	// outside the cache lock, after the eviction took effect.
	onEvict atomic.Pointer[func(key K)]
}

// SetEvictObserver installs (or, with nil, removes) a hook receiving
// each key evicted by the LRU bound — an eviction storm is the cache
// thrashing, which operators want surfaced as events, not just a
// counter. The hook runs outside the cache lock on the goroutine whose
// insert triggered the eviction; it must not block for long.
func (c *Cache[K, V]) SetEvictObserver(fn func(key K)) {
	if fn == nil {
		c.onEvict.Store(nil)
		return
	}
	c.onEvict.Store(&fn)
}

// entry is one key's slot; done is closed once res/err are valid. elem
// is the entry's node in the LRU order list, nil while the computation
// is in flight (in-flight entries are exempt from eviction).
type entry[K comparable, V any] struct {
	key  K
	done chan struct{}
	res  V
	err  error
	elem *list.Element
}

// New returns an empty cache. maxEntries bounds the number of resident
// completed entries, evicting least-recently-used ones past the bound;
// 0 (or negative) means unbounded.
func New[K comparable, V any](maxEntries int) *Cache[K, V] {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache[K, V]{
		max:     maxEntries,
		entries: map[K]*entry[K, V]{},
		order:   list.New(),
	}
}

// Do returns the memoised value for key, computing it at most once per
// cache generation: the first caller runs compute while concurrent
// duplicates block on the entry's latch and share its result.
func (c *Cache[K, V]) Do(key K, compute func() V) V {
	v, _, _ := c.do(context.Background(), key, func() (V, error) { return compute(), nil })
	return v
}

// DoCtx is Do with a bounded wait: a caller that would block on another
// goroutine's in-flight computation gives up when ctx is done, returning
// the zero value and ctx's error. The computation itself is never
// cancelled — the caller that owns it runs compute to completion
// regardless of its own ctx, so waiters that stay see a valid result.
func (c *Cache[K, V]) DoCtx(ctx context.Context, key K, compute func() V) (V, error) {
	v, _, err := c.do(ctx, key, func() (V, error) { return compute(), nil })
	return v, err
}

// DoErr is the failure-aware variant: compute may return an error, in
// which case nothing is cached — the entry is dropped so a later request
// for the same key recomputes (this is what makes bounded retry with
// backoff meaningful upstream) — while concurrent callers already
// waiting on the in-flight latch receive the same error. Successful
// values cache exactly as with Do. The wait is bounded by ctx like
// DoCtx.
func (c *Cache[K, V]) DoErr(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	v, _, err := c.do(ctx, key, compute)
	return v, err
}

// DoErrStat is DoErr plus provenance: computed reports whether THIS call
// executed compute (successfully or not), as opposed to recalling a
// cached value or sharing another caller's in-flight outcome. Upstream
// health machinery (the lapserved circuit breaker) needs the
// distinction — a recall executes no simulation and proves nothing about
// the simulator, so only computed outcomes may move the breaker.
func (c *Cache[K, V]) DoErrStat(ctx context.Context, key K, compute func() (V, error)) (v V, computed bool, err error) {
	return c.do(ctx, key, compute)
}

// Peek returns key's value without blocking and without a compute
// function: it hits only entries whose computation has already completed
// successfully, counts as a recall, and touches the entry's LRU
// position. In-flight entries miss — a caller that wants to wait for
// them uses Do/DoErr. The fast path lets servers answer cached keys
// without consuming an execution slot.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	var zero V
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return zero, false
	}
	select {
	case <-e.done:
	default: // still in flight
		c.mu.Unlock()
		return zero, false
	}
	if e.err != nil {
		// Unreachable in practice — failed entries are dropped before
		// their latch closes — but guard the invariant anyway.
		c.mu.Unlock()
		return zero, false
	}
	if e.elem != nil {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	c.recalled.Add(1)
	return e.res, true
}

func (c *Cache[K, V]) do(ctx context.Context, key K, compute func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		// Recall-vs-compute provenance in traces: a request that found an
		// entry (completed or in flight) spends its time here, not in
		// memo.compute.
		_, sp := otrace.Start(ctx, "memo.await")
		select {
		case <-e.done:
			sp.End()
			return c.waited(e)
		case <-ctx.Done():
			// Both latch and ctx can be ready; select picks arbitrarily.
			// A result that is already available must win over a
			// cancellation — the caller asked for the value and it is
			// right there — so re-check the latch before giving up.
			select {
			case <-e.done:
				sp.End()
				return c.waited(e)
			default:
			}
			sp.SetAttr(otrace.Bool("cancelled", true))
			sp.End()
			var zero V
			return zero, false, ctx.Err()
		}
	}
	e := &entry[K, V]{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	completed := false
	defer func() {
		if !completed && e.err == nil {
			// compute panicked: the panic propagates to this caller, but
			// waiters on the latch must not observe a zero value as if it
			// were a result.
			e.err = ErrComputeFailed
		}
		if e.err != nil {
			// Failed entries are poisoned: drop them so a retry (or the
			// serial pass after a panicking warm pass) recomputes rather
			// than recalling the failure.
			c.failed.Add(1)
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}()
	_, sp := otrace.Start(ctx, "memo.compute")
	e.res, e.err = compute()
	completed = true
	sp.SetAttr(otrace.Bool("failed", e.err != nil))
	sp.End()
	if e.err != nil {
		var zero V
		return zero, true, e.err
	}
	c.computed.Add(1)

	c.mu.Lock()
	// A concurrent Reset may have replaced the map; only entries still
	// resident join the LRU order (and become evictable).
	var dropped []K
	if c.entries[key] == e {
		e.elem = c.order.PushFront(e)
		dropped = c.evictLocked()
	}
	c.mu.Unlock()
	if len(dropped) > 0 {
		if fn := c.onEvict.Load(); fn != nil {
			for _, k := range dropped {
				(*fn)(k)
			}
		}
	}
	return e.res, true, nil
}

// waited delivers a completed entry's outcome to a caller that waited on
// (or found) its latch: the shared error, or the value as a recall.
func (c *Cache[K, V]) waited(e *entry[K, V]) (V, bool, error) {
	if e.err != nil {
		var zero V
		return zero, false, e.err
	}
	c.recalled.Add(1)
	return e.res, false, nil
}

// evictLocked drops least-recently-used completed entries until the
// bound holds, returning the dropped keys (for the evict observer,
// which runs after the lock is released). In-flight entries are not in
// the order list, so a burst of concurrent distinct computations can
// transiently exceed the bound by the in-flight count; they become
// evictable on completion.
func (c *Cache[K, V]) evictLocked() []K {
	if c.max <= 0 {
		return nil
	}
	var dropped []K
	for c.order.Len() > c.max {
		back := c.order.Back()
		e := back.Value.(*entry[K, V])
		c.order.Remove(back)
		if c.entries[e.key] == e {
			delete(c.entries, e.key)
		}
		c.evicted.Add(1)
		if c.onEvict.Load() != nil {
			dropped = append(dropped, e.key)
		}
	}
	return dropped
}

// Len reports the number of resident entries, including in-flight ones.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset clears the cache. Contract under concurrency: the entry map is
// swapped under the lock, so it is safe to call with computations in
// flight — those complete and deliver results to callers already
// waiting on their latch, but become invisible to requests that start
// after the reset, which recompute into the fresh cache. The Stats
// counters are cumulative and survive a reset.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.entries = map[K]*entry[K, V]{}
	c.order = list.New()
	c.mu.Unlock()
}

// Stats counts cache activity since construction. Computed is the
// number of computations that executed successfully, Recalled the number
// of requests served from the cache (including requests that waited on
// an in-flight computation), Evicted the number of completed entries
// dropped by the LRU bound, and Failed the number of computations that
// returned an error or panicked (none of which were cached). Reset does
// not touch the counters, so deltas around a code region meter its
// computation cost.
type Stats struct {
	Computed uint64 `json:"computed"`
	Recalled uint64 `json:"recalled"`
	Evicted  uint64 `json:"evicted"`
	Failed   uint64 `json:"failed"`
}

// Register exposes the cache's counters (and resident-entry gauge) on an
// optional obs registry under prefix (e.g. "lapserved_memo"). The cache
// keeps mutating its own atomics — registration adds scrape-time readers
// only, so the hot path is untouched and a nil registry is a no-op.
func (c *Cache[K, V]) Register(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+"_computed_total",
		"Computations executed successfully.", c.computed.Load)
	r.CounterFunc(prefix+"_recalled_total",
		"Requests served from the cache, including waits on in-flight computations.", c.recalled.Load)
	r.CounterFunc(prefix+"_evicted_total",
		"Completed entries dropped by the LRU bound.", c.evicted.Load)
	r.CounterFunc(prefix+"_failed_total",
		"Computations that returned an error or panicked (never cached).", c.failed.Load)
	r.GaugeFunc(prefix+"_entries",
		"Resident entries, including in-flight computations.",
		func() float64 { return float64(c.Len()) })
}

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Computed: c.computed.Load(),
		Recalled: c.recalled.Load(),
		Evicted:  c.evicted.Load(),
		Failed:   c.failed.Load(),
	}
}
