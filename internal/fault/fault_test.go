package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// arm is a test helper that resets the registry after the test.
func arm(t *testing.T, specs ...Spec) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
	for _, s := range specs {
		if err := Arm(s); err != nil {
			t.Fatalf("Arm(%+v): %v", s, err)
		}
	}
}

func TestFaultDisabledIsNil(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("empty registry reports active")
	}
	if err := Inject("anything", "key"); err != nil {
		t.Fatalf("disabled Inject returned %v", err)
	}
}

func TestFaultErrorModeWindows(t *testing.T) {
	arm(t, Spec{Point: "p", Mode: ModeError, After: 2, Count: 2})
	var fired int
	for i := 0; i < 6; i++ {
		if err := Inject("p", "k"); err != nil {
			fired++
			var inj *InjectedError
			if !errors.As(err, &inj) {
				t.Fatalf("hit %d: error type %T", i, err)
			}
			if inj.Point != "p" || inj.Key != "k" {
				t.Fatalf("hit %d: wrong identity %+v", i, inj)
			}
		}
	}
	// After=2 skips hits 0,1; Count=2 fires on hits 2,3 only.
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
	if Hits("p") != 6 || Fired("p") != 2 {
		t.Fatalf("counters: hits=%d fired=%d, want 6/2", Hits("p"), Fired("p"))
	}
}

func TestFaultMatchTargetsKeys(t *testing.T) {
	arm(t, Spec{Point: "p", Match: "WH1", Mode: ModeError})
	if err := Inject("p", "mix:WL1[a,b]|LAP"); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := Inject("p", "mix:WH1[a,b]|LAP"); err == nil {
		t.Fatal("matching key did not fire")
	}
	// Other points are untouched.
	if err := Inject("q", "mix:WH1[a,b]|LAP"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestFaultPanicMode(t *testing.T) {
	arm(t, Spec{Point: "p", Mode: ModePanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic point did not panic")
		}
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("panic value %T, want *InjectedPanic", r)
		}
		if ip.Point != "p" || ip.Key != "k" {
			t.Fatalf("panic identity: %+v", ip)
		}
	}()
	Inject("p", "k")
}

func TestFaultDelayMode(t *testing.T) {
	arm(t, Spec{Point: "p", Mode: ModeDelay, Delay: 30 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Inject("p", "k"); err != nil {
		t.Fatalf("delay point returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay point slept only %v", d)
	}
	// Count exhausted: the next hit is instant and clean.
	start = time.Now()
	if err := Inject("p", "k"); err != nil || time.Since(start) > 20*time.Millisecond {
		t.Fatalf("spent delay point still active: err=%v", err)
	}
}

// TestFaultProbabilityDeterministic checks the seeded probabilistic
// decision is a pure function of (seed, hit): two identical passes fire
// on exactly the same hit indices.
func TestFaultProbabilityDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		arm(t, Spec{Point: "p", Mode: ModeError, P: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("p", "k") != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical passes", i)
		}
		if a[i] {
			fires++
		}
	}
	// p=0.5 over 64 hits: both extremes would mean the roll is broken.
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fires, len(a))
	}
	c := pattern(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fire patterns")
	}
}

func TestFaultParse(t *testing.T) {
	specs, err := Parse("server.execute@WH1:panic; trace.decode:error:count=1,after=2 ;p:delay:delay=50ms,p=0.25,seed=9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Spec{
		{Point: "server.execute", Match: "WH1", Mode: ModePanic},
		{Point: "trace.decode", Mode: ModeError, Count: 1, After: 2},
		{Point: "p", Mode: ModeDelay, Delay: 50 * time.Millisecond, P: 0.25, Seed: 9},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d: got %+v, want %+v", i, specs[i], want[i])
		}
	}
	if out, err := Parse(""); err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
	for _, bad := range []string{
		"justapoint",
		"p:explode",
		"p:error:count",
		"p:error:count=x",
		":error",
		"p:error:p=2",
		"p:error:bogus=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestFaultArmFromEnv(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	t.Setenv(EnvVar, "p:error:count=1")
	n, err := ArmFromEnv()
	if err != nil || n != 1 {
		t.Fatalf("ArmFromEnv = %d, %v", n, err)
	}
	if err := Inject("p", ""); err == nil {
		t.Fatal("env-armed point did not fire")
	}
	t.Setenv(EnvVar, "p:nope")
	if _, err := ArmFromEnv(); err == nil {
		t.Fatal("malformed env accepted")
	}
}

// TestFaultConcurrentInject hammers one point from many goroutines: the
// registry must stay race-free and fire exactly Count times in total.
func TestFaultConcurrentInject(t *testing.T) {
	arm(t, Spec{Point: "p", Mode: ModeError, Count: 10})
	var wg sync.WaitGroup
	fired := make(chan struct{}, 1024)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Inject("p", "k") != nil {
					fired <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for range fired {
		n++
	}
	if n != 10 {
		t.Fatalf("fired %d times across goroutines, want 10", n)
	}
}

// TestObserver: a firing spec notifies the observer with point, key,
// mode, and hit index; non-firing hits stay silent.
func TestObserver(t *testing.T) {
	arm(t, Spec{Point: "p", Mode: ModeError, After: 1})
	type fired struct {
		point, key, mode string
		hit              uint64
	}
	var got []fired
	SetObserver(func(point, key, mode string, hit uint64) {
		got = append(got, fired{point, key, mode, hit})
	})
	defer SetObserver(nil)

	if err := Inject("p", "k0"); err != nil {
		t.Fatalf("After window should skip first hit: %v", err)
	}
	if err := Inject("p", "k1"); err == nil {
		t.Fatal("second hit should fire")
	}
	if len(got) != 1 || got[0] != (fired{"p", "k1", "error", 1}) {
		t.Fatalf("observer = %+v", got)
	}
}
