// Package fault is a deterministic, seeded fault-injection registry for
// chaos testing the simulation service end to end. Code under test calls
// Inject at named points; operators (and chaos tests) arm specs against
// those points that return typed errors, panic, or delay — enabled via
// the LAP_FAULTS environment variable or programmatically, and zero-cost
// when nothing is armed (one atomic load per injection point hit).
//
// Determinism: a spec fires as a pure function of its own per-point hit
// counter (After/Count windows) and, for probabilistic specs, a seeded
// splitmix64 hash of the hit index — never of wall-clock time or global
// PRNG state. Two serial runs with the same armed specs and the same
// request order inject exactly the same faults.
//
// Spec string format (see Parse):
//
//	point[@match]:mode[:opt,opt...]
//
// where mode is error, panic, or delay, and the options are after=N
// (skip the first N matching hits), count=N (fire at most N times),
// p=F with seed=N (deterministic per-hit probability), and delay=DUR
// (sleep duration for delay mode). Multiple specs are separated by ';':
//
//	LAP_FAULTS='server.execute@WH1:panic;trace.decode:error:count=1'
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable ArmFromEnv reads.
const EnvVar = "LAP_FAULTS"

// Canonical injection points threaded through the stack. Points are
// plain strings, so packages may define private ones; these are the
// sites the chaos suite drives.
const (
	// PointPoolTask fires around every internal/pool Run task.
	PointPoolTask = "pool.task"
	// PointExpRun fires inside one experiments simulation (key
	// "mix[members]|policy").
	PointExpRun = "experiments.run"
	// PointServerRun fires inside one lapserved simulation cell (key
	// "workload|policy").
	PointServerRun = "server.execute"
	// PointTraceDecode fires once per binary trace stream, at header
	// decode time.
	PointTraceDecode = "trace.decode"
	// PointCheckpointWrite fires before each checkpoint store write
	// (key "kind/config/workload").
	PointCheckpointWrite = "checkpoint.write"
	// PointCheckpointRead fires before each checkpoint file read (same
	// key as writes).
	PointCheckpointRead = "checkpoint.read"
	// PointCheckpointRestore fires before a loaded checkpoint is applied
	// to a machine, after it passed CRC validation.
	PointCheckpointRestore = "checkpoint.restore"
)

// Mode selects what an armed spec does when it fires.
type Mode int

const (
	// ModeError makes Inject return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes Inject panic with an *InjectedPanic.
	ModePanic
	// ModeDelay makes Inject sleep for Spec.Delay, then return nil.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Spec arms one fault against one injection point.
type Spec struct {
	// Point is the injection site name (required).
	Point string
	// Match restricts the spec to hits whose key contains it ("" matches
	// every hit), so one cell of a sweep can be targeted precisely.
	Match string
	// Mode is what happens when the spec fires.
	Mode Mode
	// After skips the first After matching hits.
	After uint64
	// Count caps how many times the spec fires (0 = unlimited).
	Count uint64
	// P is the per-hit firing probability in (0,1); 0 (or >= 1) fires on
	// every eligible hit. Derived deterministically from Seed and the hit
	// index.
	P float64
	// Seed seeds the probabilistic decision.
	Seed uint64
	// Delay is the sleep duration for ModeDelay (default 10ms).
	Delay time.Duration
}

// InjectedError is the typed error returned from an armed error point.
type InjectedError struct {
	Point string // the injection site that fired
	Key   string // the site key at the firing hit
	Hit   uint64 // the per-point matching-hit index (0-based)
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at %s (key %q, hit %d)", e.Point, e.Key, e.Hit)
}

// InjectedPanic is the value thrown from an armed panic point.
type InjectedPanic struct {
	Point string
	Key   string
	Hit   uint64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (key %q, hit %d)", p.Point, p.Key, p.Hit)
}

// armed is one registered spec plus its firing state.
type armed struct {
	spec  Spec
	hits  uint64 // matching hits observed
	fired uint64 // times the spec actually fired
}

var (
	mu     sync.Mutex
	points = map[string][]*armed{}
	// count mirrors the number of armed specs so Inject's fast path is a
	// single atomic load when nothing is armed.
	count atomic.Int32
	// observer, when set, is called on the firing goroutine each time a
	// spec actually fires (before the error/panic/delay takes effect).
	observer atomic.Pointer[func(point, key, mode string, hit uint64)]
)

// SetObserver installs (or, with nil, removes) a process-wide hook
// called whenever an armed spec fires — how fault hits become journal
// events without this package knowing about the journal. The hook runs
// on the injecting goroutine and must not block. Off the fast path: the
// observer is consulted only after a spec has decided to fire.
func SetObserver(fn func(point, key, mode string, hit uint64)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// Active reports whether any spec is armed. The registry is process
// global; production binaries never arm anything, so every injection
// point costs one atomic load.
func Active() bool { return count.Load() > 0 }

// Arm registers one spec.
func Arm(s Spec) error {
	if s.Point == "" {
		return fmt.Errorf("fault: spec needs a point name")
	}
	if s.Mode < ModeError || s.Mode > ModeDelay {
		return fmt.Errorf("fault: unknown mode %d", int(s.Mode))
	}
	if s.Mode == ModeDelay && s.Delay <= 0 {
		s.Delay = 10 * time.Millisecond
	}
	mu.Lock()
	points[s.Point] = append(points[s.Point], &armed{spec: s})
	mu.Unlock()
	count.Add(1)
	return nil
}

// Reset disarms everything and zeroes all counters.
func Reset() {
	mu.Lock()
	points = map[string][]*armed{}
	mu.Unlock()
	count.Store(0)
}

// Fired reports how many times specs at point have fired.
func Fired(point string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	var n uint64
	for _, a := range points[point] {
		n += a.fired
	}
	return n
}

// Hits reports how many matching hits specs at point have observed
// (fired or not).
func Hits(point string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	var n uint64
	for _, a := range points[point] {
		n += a.hits
	}
	return n
}

// Inject is the injection point hook. It returns nil immediately when
// nothing is armed; otherwise the first armed spec for point whose Match
// is contained in key and whose After/Count/P window admits this hit
// fires: ModeError returns an *InjectedError, ModePanic panics with an
// *InjectedPanic, ModeDelay sleeps Spec.Delay and returns nil.
func Inject(point, key string) error {
	if count.Load() == 0 {
		return nil
	}
	mu.Lock()
	var fire *Spec
	var hit uint64
	for _, a := range points[point] {
		if a.spec.Match != "" && !strings.Contains(key, a.spec.Match) {
			continue
		}
		n := a.hits
		a.hits++
		if n < a.spec.After {
			continue
		}
		if a.spec.Count > 0 && a.fired >= a.spec.Count {
			continue
		}
		if p := a.spec.P; p > 0 && p < 1 && !roll(a.spec.Seed, n, p) {
			continue
		}
		a.fired++
		fire, hit = &a.spec, n
		break
	}
	mu.Unlock()
	if fire == nil {
		return nil
	}
	if fn := observer.Load(); fn != nil {
		(*fn)(point, key, fire.Mode.String(), hit)
	}
	switch fire.Mode {
	case ModePanic:
		panic(&InjectedPanic{Point: point, Key: key, Hit: hit})
	case ModeDelay:
		time.Sleep(fire.Delay)
		return nil
	default:
		return &InjectedError{Point: point, Key: key, Hit: hit}
	}
}

// roll decides a probabilistic firing deterministically: splitmix64 of
// (seed, hit) mapped to [0,1) and compared against p.
func roll(seed, hit uint64, p float64) bool {
	x := seed + (hit+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < p
}

// Parse decodes a spec list: specs separated by ';', each of the form
// point[@match]:mode[:opt,opt...] (see the package comment).
func Parse(s string) ([]Spec, error) {
	var out []Spec
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		spec, err := parseOne(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseOne(raw string) (Spec, error) {
	parts := strings.SplitN(raw, ":", 3)
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("fault: spec %q: want point[@match]:mode[:opts]", raw)
	}
	var spec Spec
	spec.Point = parts[0]
	if at := strings.IndexByte(parts[0], '@'); at >= 0 {
		spec.Point, spec.Match = parts[0][:at], parts[0][at+1:]
	}
	if spec.Point == "" {
		return Spec{}, fmt.Errorf("fault: spec %q: empty point name", raw)
	}
	switch parts[1] {
	case "error":
		spec.Mode = ModeError
	case "panic":
		spec.Mode = ModePanic
	case "delay":
		spec.Mode = ModeDelay
	default:
		return Spec{}, fmt.Errorf("fault: spec %q: unknown mode %q (want error, panic, delay)", raw, parts[1])
	}
	if len(parts) == 3 {
		for _, opt := range strings.Split(parts[2], ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return Spec{}, fmt.Errorf("fault: spec %q: option %q is not key=value", raw, opt)
			}
			var err error
			switch k {
			case "after":
				spec.After, err = strconv.ParseUint(v, 10, 64)
			case "count":
				spec.Count, err = strconv.ParseUint(v, 10, 64)
			case "seed":
				spec.Seed, err = strconv.ParseUint(v, 10, 64)
			case "p":
				spec.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (spec.P < 0 || spec.P > 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "delay":
				spec.Delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return Spec{}, fmt.Errorf("fault: spec %q: option %q: %v", raw, opt, err)
			}
		}
	}
	return spec, nil
}

// ArmFromEnv parses and arms LAP_FAULTS, returning how many specs were
// armed (0 when the variable is unset or empty).
func ArmFromEnv() (int, error) {
	specs, err := Parse(os.Getenv(EnvVar))
	if err != nil {
		return 0, err
	}
	for _, s := range specs {
		if err := Arm(s); err != nil {
			return 0, err
		}
	}
	return len(specs), nil
}
