package core
