package core

import "repro/internal/cache"

// RDCopyback implements reuse-distance-gated copy-back of clean lines
// (arXiv 2105.14442): under an exclusive LLC every clean L2 victim is
// copied back into the STT-RAM array, yet a victim whose reuse distance
// exceeds the LLC capacity will be evicted again before its next use —
// the copy-back write is wasted energy. The controller keeps the
// exclusive data flow but estimates each clean victim's reuse distance
// with a global LLC-access clock and a direct-mapped last-touch table;
// victims whose estimated distance exceeds the LLC capacity (in blocks)
// are dropped instead of copied back (Metrics.BypassedWrites). Dirty
// victims always copy back — their data exists nowhere below. Predictor
// probes are charged to the SRAM tag array like other metadata accesses.
const (
	rdcTableBits = 14
	rdcTableSize = 1 << rdcTableBits
)

// RDCopyback is the "rd-copyback" policy controller.
type RDCopyback struct {
	ex Exclusive
	// clock counts LLC fetches; the difference between it and a block's
	// last-touch stamp approximates the block's LLC-level reuse distance.
	clock uint64
	// last is the direct-mapped last-touch stamp table (0 = never seen).
	last []uint64
	// threshold is the copy-back cutoff in LLC accesses, derived lazily
	// from the LLC geometry (capacity in blocks).
	threshold uint64
}

// NewRDCopyback returns the reuse-distance copy-back controller.
func NewRDCopyback() *RDCopyback {
	return &RDCopyback{last: make([]uint64, rdcTableSize)}
}

// Name implements Controller.
func (*RDCopyback) Name() string { return "rd-copyback" }

// rdcSlot hashes a block address into the last-touch table.
func rdcSlot(block uint64) uint64 {
	return (block * 0x9e3779b97f4a7c15) >> (64 - rdcTableBits)
}

// thresholdOf derives the copy-back cutoff: a reuse distance beyond the
// LLC capacity in blocks means the line would not survive until reuse.
func (c *RDCopyback) thresholdOf(x *Ctx) uint64 {
	if c.threshold == 0 {
		c.threshold = uint64(x.L3.NumSets() * x.L3.Ways())
	}
	return c.threshold
}

// Fetch implements Controller: the exclusive flow, with every fetch
// advancing the reuse clock and stamping the block's last touch.
func (c *RDCopyback) Fetch(x *Ctx, block uint64) FetchResult {
	c.clock++
	x.tagAccess()
	c.last[rdcSlot(block)] = c.clock
	return c.ex.Fetch(x, block)
}

// EvictL2 implements Controller: dirty victims follow the exclusive
// copy-back unconditionally; clean victims are only copied back when
// their estimated reuse distance fits in the LLC, otherwise the STT-RAM
// write is skipped and the line is dropped (its data is safe in memory).
func (c *RDCopyback) EvictL2(x *Ctx, v cache.Line) {
	if v.Dirty {
		c.ex.EvictL2(x, v)
		return
	}
	x.tagAccess()
	stamp := c.last[rdcSlot(v.Tag)]
	if stamp != 0 && c.clock-stamp <= c.thresholdOf(x) {
		c.ex.EvictL2(x, v)
		return
	}
	x.Met.BypassedWrites++
}

func init() {
	// The reuse clock and last-touch stamps accumulate over the whole
	// run; interval-sampled simulation skips the accesses between
	// intervals, which would inflate every estimated distance — so the
	// policy is exact-mode only (refused, never silently wrong).
	RegisterPolicy(PolicyInfo{
		Name:           "rd-copyback",
		Description:    "exclusive flow, clean copy-backs gated on estimated reuse distance vs LLC capacity",
		BankedEligible: true,
		Rank:           11,
		New:            func(PolicyParams) Controller { return NewRDCopyback() },
	})
}
