package core

import "repro/internal/cache"

// Dynamic inclusion-switching baselines. Both select between the
// non-inclusive and exclusive flows per set-dueling, differing only in
// the cost metric the duel minimises:
//
//   - FLEXclusion (Sim et al. [25]) optimises performance and on-chip
//     bandwidth — misses dominate, writes are weighted only as bandwidth,
//     and the asymmetric write energy is invisible to it.
//   - Dswitch (Cheng et al. [26]) weighs LLC writes by their actual
//     energy, so it picks the more energy-efficient traditional mode.
//
// The paper's point is that *neither* can beat LAP, because both modes
// carry their own species of redundant write.

type switching struct {
	name      string
	duel      *cache.Duel
	missCost  float64
	writeCost float64
	noni      NonInclusive
	ex        Exclusive
}

// NewFLEXclusion returns the FLEXclusion baseline: set-dueling between
// non-inclusion and exclusion on a miss+bandwidth cost.
func NewFLEXclusion() Controller {
	return &switching{name: "FLEXclusion", duel: cache.NewDuel(), missCost: 1, writeCost: 0.25}
}

// NewDswitch returns the Dswitch baseline: set-dueling between
// non-inclusion and exclusion on an energy cost. missNJ approximates the
// energy cost of one additional LLC miss (extra runtime leakage plus the
// memory-side fill), and writeNJ is the technology's write energy.
func NewDswitch(missNJ, writeNJ float64) Controller {
	return &switching{name: "Dswitch", duel: cache.NewDuel(), missCost: missNJ, writeCost: writeNJ}
}

// Name implements Controller.
func (c *switching) Name() string { return c.name }

// Duel exposes the dueling state for tests.
func (c *switching) Duel() *cache.Duel { return c.duel }

// mode reports the inclusion property the given set currently runs:
// LeaderA sets (and followers when A wins) are non-inclusive, LeaderB
// sets are exclusive.
func (c *switching) mode(set int) cache.Role { return c.duel.PolicyOf(set) }

// charge adds the cost of the events that occurred during one dispatched
// operation to the set's leader group.
func (c *switching) charge(x *Ctx, set int, missed bool, writesBefore uint64) {
	role := c.duel.RoleOf(set)
	if role == cache.Follower {
		return
	}
	if missed {
		c.duel.AddCost(role, c.missCost)
	}
	if dw := x.Met.WritesToLLC() - writesBefore; dw > 0 {
		c.duel.AddCost(role, c.writeCost*float64(dw))
	}
}

// Fetch implements Controller.
func (c *switching) Fetch(x *Ctx, block uint64) FetchResult {
	c.duel.Observe(x.Now)
	set := x.L3.SetOf(block)
	before := x.Met.WritesToLLC()
	var r FetchResult
	if c.mode(set) == cache.LeaderA {
		r = c.noni.Fetch(x, block)
	} else {
		r = c.ex.Fetch(x, block)
	}
	c.charge(x, set, !r.Hit, before)
	return r
}

// EvictL2 implements Controller.
func (c *switching) EvictL2(x *Ctx, v cache.Line) {
	set := x.L3.SetOf(v.Tag)
	before := x.Met.WritesToLLC()
	if c.mode(set) == cache.LeaderA {
		c.noni.EvictL2(x, v)
	} else {
		c.ex.EvictL2(x, v)
	}
	c.charge(x, set, false, before)
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:            "FLEXclusion",
		Description:     "duels non-inclusion vs exclusion on capacity/bandwidth demand",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            4,
		New:             func(PolicyParams) Controller { return NewFLEXclusion() },
	})
	RegisterPolicy(PolicyInfo{
		Name:            "Dswitch",
		Description:     "duels non-inclusion vs exclusion weighing LLC writes by energy",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            5,
		New:             func(p PolicyParams) Controller { return NewDswitch(p.MissNJ, p.WriteNJ) },
	})
}
