package core

import (
	"strings"
	"testing"
)

// The registered set the rest of the tree depends on, in rank order.
var wantPolicyOrder = []string{
	"non-inclusive", "exclusive", "inclusive",
	"FLEXclusion", "Dswitch",
	"LAP-LRU", "LAP-Loop", "LAP", "Lhybrid",
	"reuse-detector", "rd-copyback",
}

func TestPolicyNamesRankOrder(t *testing.T) {
	got := PolicyNames()
	if len(got) != len(wantPolicyOrder) {
		t.Fatalf("registered policies: got %v, want %v", got, wantPolicyOrder)
	}
	for i, name := range wantPolicyOrder {
		if got[i] != name {
			t.Fatalf("policy %d: got %q, want %q (full: %v)", i, got[i], name, got)
		}
	}
}

func TestRegisterPolicyPanics(t *testing.T) {
	mustPanic := func(name string, info PolicyInfo) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RegisterPolicy did not panic", name)
			}
		}()
		RegisterPolicy(info)
	}
	factory := func(PolicyParams) Controller { return NewNonInclusive() }
	mustPanic("empty name", PolicyInfo{Rank: 1000, New: factory})
	mustPanic("nil factory", PolicyInfo{Name: "broken", Rank: 1000})
	mustPanic("dwb suffix", PolicyInfo{Name: "fancy+DWB", Rank: 1000, New: factory})
	mustPanic("duplicate name", PolicyInfo{Name: "LAP", Rank: 1000, New: factory})
	mustPanic("duplicate name case-folded", PolicyInfo{Name: "lap", Rank: 1000, New: factory})
	mustPanic("duplicate rank", PolicyInfo{Name: "fresh", Rank: 1, New: factory})
}

func TestLookupPolicyCaseInsensitive(t *testing.T) {
	for _, alias := range []string{"LAP", "lap", "Lap", " LAP "} {
		info, ok := LookupPolicy(alias)
		if !ok || info.Name != "LAP" {
			t.Fatalf("LookupPolicy(%q): got (%q, %v), want (LAP, true)", alias, info.Name, ok)
		}
	}
	if _, ok := LookupPolicy("bogus"); ok {
		t.Fatal("LookupPolicy accepted an unknown name")
	}
}

func TestLookupPolicyDWBWrapper(t *testing.T) {
	base, _ := LookupPolicy("exclusive")
	info, ok := LookupPolicy("exclusive+dwb")
	if !ok {
		t.Fatal("wrapped lookup failed")
	}
	if info.Name != "exclusive+DWB" {
		t.Fatalf("wrapped canonical name: %q", info.Name)
	}
	if info.NeedsHybridLLC != base.NeedsHybridLLC ||
		info.SampledEligible != base.SampledEligible ||
		info.BankedEligible != base.BankedEligible {
		t.Fatalf("wrapped flags differ from base: %+v vs %+v", info, base)
	}
	ctrl := info.New(PolicyParams{})
	if _, isDWB := ctrl.(*DeadWriteBypass); !isDWB {
		t.Fatalf("wrapped factory built %T", ctrl)
	}
	if ctrl.Name() != "exclusive+DWB" {
		t.Fatalf("wrapped controller name %q", ctrl.Name())
	}
	if _, ok := LookupPolicy("bogus+DWB"); ok {
		t.Fatal("wrapper over an unknown base accepted")
	}
}

// TestPolicyFactoryRoundTrip builds every registered policy (and its
// +DWB wrap) and checks the controller reports the canonical name —
// result labels across the tree depend on this equality.
func TestPolicyFactoryRoundTrip(t *testing.T) {
	for _, info := range Policies() {
		for _, name := range []string{info.Name, info.Name + "+DWB"} {
			ctrl, err := NewPolicy(name, PolicyParams{DuelPeriod: 123456})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if ctrl.Name() != name {
				t.Errorf("%s: controller reports %q", name, ctrl.Name())
			}
			if d, ok := ctrl.(dueler); ok {
				if duel := d.Duel(); duel != nil && duel.PeriodCycles != 123456 {
					t.Errorf("%s: duel period %d not applied", name, duel.PeriodCycles)
				}
			}
		}
	}
}

func TestPolicyCapabilityFlags(t *testing.T) {
	wantFlags := map[string]struct{ hybrid, sampled, banked bool }{
		"non-inclusive":  {false, true, true},
		"exclusive":      {false, true, true},
		"inclusive":      {false, true, false},
		"FLEXclusion":    {false, true, true},
		"Dswitch":        {false, true, true},
		"LAP-LRU":        {false, true, true},
		"LAP-Loop":       {false, true, true},
		"LAP":            {false, true, true},
		"Lhybrid":        {true, true, true},
		"reuse-detector": {false, false, true},
		"rd-copyback":    {false, false, true},
	}
	for name, want := range wantFlags {
		info, ok := LookupPolicy(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if info.NeedsHybridLLC != want.hybrid || info.SampledEligible != want.sampled || info.BankedEligible != want.banked {
			t.Errorf("%s flags: hybrid=%v sampled=%v banked=%v, want %+v",
				name, info.NeedsHybridLLC, info.SampledEligible, info.BankedEligible, want)
		}
	}
}

func TestNewPolicyUnknownListsValidNames(t *testing.T) {
	_, err := NewPolicy("bogus", PolicyParams{})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range wantPolicyOrder {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q lacks valid name %q", err, name)
		}
	}
}
