package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
)

// testCtx builds a tiny L3 (8 sets x 4 ways unless hybrid) with the
// STT-RAM energy model and a fresh metrics block.
func testCtx(sramWays int) *Ctx {
	ways := 4
	if sramWays > 0 {
		ways = 8
	}
	l3 := cache.New(cache.Config{
		Name: "L3", SizeBytes: 8 * ways * 64, Ways: ways, BlockBytes: 64, SRAMWays: sramWays,
	})
	var m *energy.Meter
	if sramWays > 0 {
		m = energy.Hybrid(3e9, energy.SRAM(), energy.STTRAM(), 2<<20, 6<<20)
	} else {
		m = energy.SingleTech(3e9, energy.STTRAM(), 8<<20)
	}
	return &Ctx{
		L3:        l3,
		E:         m,
		Met:       &Metrics{},
		Banks:     NewBanks(1),
		ReadCyc:   [2]uint64{8, 8},
		WriteCyc:  [2]uint64{8, 33},
		MemCycles: 160,
	}
}

func cleanLine(block uint64) cache.Line { return cache.Line{Tag: block, Valid: true} }
func dirtyLine(block uint64) cache.Line { return cache.Line{Tag: block, Valid: true, Dirty: true} }
func loopLine(block uint64) cache.Line  { return cache.Line{Tag: block, Valid: true, Loop: true} }

// --- Non-inclusive (Fig. 1b) ---

func TestNonInclusiveFillsOnMiss(t *testing.T) {
	x, c := testCtx(0), NewNonInclusive()
	r := c.Fetch(x, 100)
	if r.Hit {
		t.Fatal("hit in empty L3")
	}
	if x.L3.Probe(100) < 0 {
		t.Fatal("non-inclusive miss did not data-fill the L3")
	}
	if x.Met.WritesFill != 1 || x.Met.MemReads != 1 {
		t.Fatalf("fill accounting: %+v", x.Met)
	}
	if r.Lat != x.MemCycles {
		t.Fatalf("miss latency = %d, want %d", r.Lat, x.MemCycles)
	}
}

func TestNonInclusiveHitKeepsDuplicate(t *testing.T) {
	x, c := testCtx(0), NewNonInclusive()
	c.Fetch(x, 100)
	r := c.Fetch(x, 100)
	if !r.Hit || r.Loop {
		t.Fatalf("second fetch: %+v", r)
	}
	if x.L3.Probe(100) < 0 {
		t.Fatal("hit removed the duplicate copy")
	}
	if x.Met.L3Hits != 1 || x.Met.L3Misses != 1 {
		t.Fatalf("hit/miss counts: %+v", x.Met)
	}
}

func TestNonInclusiveCleanVictimDropped(t *testing.T) {
	x, c := testCtx(0), NewNonInclusive()
	writes := x.Met.WritesToLLC()
	c.EvictL2(x, cleanLine(5))
	if x.Met.WritesToLLC() != writes {
		t.Fatal("clean victim caused an LLC write under non-inclusion")
	}
	if x.L3.Probe(5) >= 0 {
		t.Fatal("clean victim was inserted under non-inclusion")
	}
}

func TestNonInclusiveDirtyVictimUpdatesInPlace(t *testing.T) {
	x, c := testCtx(0), NewNonInclusive()
	c.Fetch(x, 100) // fill
	c.EvictL2(x, dirtyLine(100))
	if x.Met.WritesDirty != 1 {
		t.Fatalf("dirty writes = %d", x.Met.WritesDirty)
	}
	w := x.L3.Probe(100)
	if w < 0 || !x.L3.Line(x.L3.SetOf(100), w).Dirty {
		t.Fatal("in-place dirty update missing")
	}
	// A dirty victim with no duplicate is write-allocated.
	c.EvictL2(x, dirtyLine(200))
	if x.L3.Probe(200) < 0 || x.Met.WritesDirty != 2 {
		t.Fatal("dirty victim without duplicate not allocated")
	}
}

// --- Exclusive (Fig. 1c) ---

func TestExclusiveNoFillOnMiss(t *testing.T) {
	x, c := testCtx(0), NewExclusive()
	r := c.Fetch(x, 100)
	if r.Hit || x.L3.Probe(100) >= 0 {
		t.Fatal("exclusive miss must bypass the L3")
	}
	if x.Met.WritesToLLC() != 0 {
		t.Fatal("exclusive miss wrote to the L3")
	}
}

func TestExclusiveInvalidatesOnHit(t *testing.T) {
	x, c := testCtx(0), NewExclusive()
	c.EvictL2(x, cleanLine(100)) // install via victim path
	r := c.Fetch(x, 100)
	if !r.Hit {
		t.Fatal("expected hit")
	}
	if x.L3.Probe(100) >= 0 {
		t.Fatal("exclusive hit did not invalidate the L3 copy")
	}
}

func TestExclusiveInsertsAllVictims(t *testing.T) {
	x, c := testCtx(0), NewExclusive()
	c.EvictL2(x, cleanLine(1))
	c.EvictL2(x, dirtyLine(2))
	if x.Met.WritesClean != 1 || x.Met.WritesDirty != 1 {
		t.Fatalf("victim writes: %+v", x.Met)
	}
	if x.L3.Probe(1) < 0 || x.L3.Probe(2) < 0 {
		t.Fatal("victims not installed")
	}
}

// TestRedundantCleanInsertionScenario replays the paper's Figure 3: clean
// blocks invalidated on hit are redundantly re-inserted under exclusion
// but not under non-inclusion or LAP.
func TestRedundantCleanInsertionScenario(t *testing.T) {
	run := func(c Controller) (*Ctx, *Profiler) {
		x := testCtx(0)
		x.Prof = NewProfiler()
		// First life: block fetched from memory, evicted clean.
		x.Prof.OnFetch(100, false)
		c.Fetch(x, 100)
		x.Prof.OnL2Evict(100, false)
		c.EvictL2(x, cleanLine(100))
		// Second life: refetched (L3 hit under all policies here if
		// present), evicted clean again.
		c.Fetch(x, 100)
		x.Prof.OnL2Evict(100, false)
		c.EvictL2(x, cleanLine(100))
		return x, x.Prof
	}
	if x, p := run(NewExclusive()); p.RedundantCleanInserts != 1 {
		t.Fatalf("exclusive: redundant clean inserts = %d (writes %d), want 1",
			p.RedundantCleanInserts, x.Met.WritesToLLC())
	}
	if _, p := run(NewNonInclusive()); p.RedundantCleanInserts != 0 {
		t.Fatalf("non-inclusive: redundant clean inserts = %d, want 0", p.RedundantCleanInserts)
	}
	if x, p := run(NewLAP()); p.RedundantCleanInserts != 0 || x.Met.TagOnlyUpdates == 0 {
		t.Fatalf("LAP: redundant=%d tagOnly=%d; want 0 and >0",
			p.RedundantCleanInserts, x.Met.TagOnlyUpdates)
	}
}

// --- Inclusive (Fig. 1a) ---

func TestInclusiveBackInvalidates(t *testing.T) {
	x, c := testCtx(0), NewInclusive()
	var killed []uint64
	x.BackInvalidate = func(b uint64) bool { killed = append(killed, b); return false }
	// Fill one set beyond capacity: set 0 holds blocks 0,8,16,24 (8 sets).
	for i := 0; i < 5; i++ {
		c.Fetch(x, uint64(i*8))
	}
	if len(killed) == 0 {
		t.Fatal("L3 eviction did not back-invalidate upper levels")
	}
	if x.Met.BackInvalidations == 0 {
		t.Fatal("back-invalidation not counted")
	}
}

// --- LAP (Fig. 8/10) ---

func TestLAPNoFillOnMissNoInvalidateOnHit(t *testing.T) {
	x, c := testCtx(0), NewLAP()
	r := c.Fetch(x, 100)
	if r.Hit || r.Loop || x.L3.Probe(100) >= 0 {
		t.Fatal("LAP miss must not fill the L3 and must clear the loop-bit")
	}
	c.EvictL2(x, cleanLine(100)) // clean victim, no duplicate -> inserted
	if x.L3.Probe(100) < 0 || x.Met.WritesClean != 1 {
		t.Fatal("LAP did not insert the exclusive clean victim")
	}
	r = c.Fetch(x, 100)
	if !r.Hit || !r.Loop {
		t.Fatalf("LAP hit: %+v, want hit with loop-bit set", r)
	}
	if x.L3.Probe(100) < 0 {
		t.Fatal("LAP invalidated on hit")
	}
}

func TestLAPCleanDuplicateDropTagOnly(t *testing.T) {
	x, c := testCtx(0), NewLAP()
	c.EvictL2(x, cleanLine(100))
	writes := x.Met.WritesToLLC()
	c.Fetch(x, 100) // hit, copy stays
	c.EvictL2(x, loopLine(100))
	if x.Met.WritesToLLC() != writes {
		t.Fatal("clean duplicate drop performed a data write")
	}
	if x.Met.TagOnlyUpdates != 1 {
		t.Fatalf("tag-only updates = %d, want 1", x.Met.TagOnlyUpdates)
	}
	w := x.L3.Probe(100)
	if w < 0 || !x.L3.Line(x.L3.SetOf(100), w).Loop {
		t.Fatal("loop-bit not refreshed in L3 tag")
	}
}

func TestLAPDirtyVictimUpdatesDuplicate(t *testing.T) {
	x, c := testCtx(0), NewLAP()
	c.EvictL2(x, cleanLine(100))
	c.Fetch(x, 100)
	c.EvictL2(x, dirtyLine(100))
	w := x.L3.Probe(100)
	if w < 0 || !x.L3.Line(x.L3.SetOf(100), w).Dirty {
		t.Fatal("dirty duplicate not updated in place")
	}
	if x.Met.WritesDirty != 1 {
		t.Fatalf("dirty writes = %d", x.Met.WritesDirty)
	}
}

func TestLAPWriteCountIdentity(t *testing.T) {
	// Paper Section III-A: LAP writes = exclusive clean victims (those
	// without a duplicate) + dirty victims; data-fills are zero.
	x, c := testCtx(0), NewLAP()
	for b := uint64(0); b < 20; b++ {
		c.Fetch(x, b)
		c.EvictL2(x, cleanLine(b))
	}
	if x.Met.WritesFill != 0 {
		t.Fatal("LAP performed data-fills")
	}
	if x.Met.WritesClean == 0 {
		t.Fatal("LAP inserted no exclusive clean victims")
	}
}

func TestLAPVariantNames(t *testing.T) {
	if NewLAP().Name() != "LAP" ||
		NewLAPVariant(AlwaysLRU).Name() != "LAP-LRU" ||
		NewLAPVariant(AlwaysLoopAware).Name() != "LAP-Loop" {
		t.Fatal("variant names drifted")
	}
}

func TestLAPLoopVariantProtectsLoopBlocks(t *testing.T) {
	// With loop-aware replacement, inserting a non-loop block into a set
	// full of loop-blocks must evict... nothing but a non-loop block, and
	// loop-blocks only as a last resort.
	x, c := testCtx(0), NewLAPVariant(AlwaysLoopAware)
	set0 := func(i int) uint64 { return uint64(i * 8) } // all map to set 0
	// Fill set 0 with 3 loop-blocks and 1 non-loop block.
	for i := 0; i < 3; i++ {
		c.EvictL2(x, loopLine(set0(i)))
	}
	c.EvictL2(x, cleanLine(set0(3)))
	// Insert a new non-loop block: the non-loop block must be the victim.
	c.EvictL2(x, cleanLine(set0(4)))
	for i := 0; i < 3; i++ {
		if x.L3.Probe(set0(i)) < 0 {
			t.Fatalf("loop-block %d was evicted while a non-loop block existed", i)
		}
	}
	if x.L3.Probe(set0(3)) >= 0 {
		t.Fatal("non-loop block survived loop-aware replacement")
	}
}

func TestLAPDuelingSwitchesPolicy(t *testing.T) {
	x := testCtx(0)
	c := NewLAP()
	c.Duel().PeriodCycles = 100
	// Make the loop-aware leader group (role A, set 0) suffer misses.
	x.Now = 1
	for i := 0; i < 10; i++ {
		c.Fetch(x, 0) // set 0 = LeaderA; all misses
	}
	x.Now = 200
	c.Fetch(x, 8) // triggers Observe past window
	if c.Duel().Winner() != cache.LeaderB {
		t.Fatal("duel did not elect LRU after loop-aware leader misses")
	}
}

// --- FLEXclusion / Dswitch ---

func TestSwitchingNames(t *testing.T) {
	if NewFLEXclusion().Name() != "FLEXclusion" || NewDswitch(2, 0.436).Name() != "Dswitch" {
		t.Fatal("switching names drifted")
	}
}

func TestSwitchingLeaderSetsKeepTheirMode(t *testing.T) {
	x := testCtx(0)
	c := NewFLEXclusion().(*switching)
	// Set 0 (LeaderA) behaves non-inclusively: miss fills.
	c.Fetch(x, 0)
	if x.L3.Probe(0) < 0 {
		t.Fatal("LeaderA set did not fill (non-inclusive mode)")
	}
	// Set 1 (LeaderB) behaves exclusively: miss does not fill.
	c.Fetch(x, 1)
	if x.L3.Probe(1) >= 0 {
		t.Fatal("LeaderB set filled (must be exclusive mode)")
	}
}

func TestDswitchPrefersFewerWritesWhenCostly(t *testing.T) {
	x := testCtx(0)
	c := NewDswitch(0.3, 10).(*switching) // writes vastly more expensive
	c.duel.PeriodCycles = 10
	// Leader A (noni, set 0): each miss fills -> 1 write each.
	// Leader B (ex, set 1): misses don't write.
	x.Now = 1
	for i := 0; i < 8; i++ {
		c.Fetch(x, uint64(i*8*2)&^7) // set 0 blocks: multiples of 8
	}
	for i := 0; i < 8; i++ {
		c.Fetch(x, uint64(i*8)+1) // set 1 blocks
	}
	x.Now = 100
	c.Fetch(x, 2)
	if c.duel.Winner() != cache.LeaderB {
		t.Fatal("Dswitch did not elect exclusion when writes dominate cost")
	}
}

// --- Hybrid / Lhybrid (Fig. 11) ---

func TestHybridNames(t *testing.T) {
	if NewLhybrid().Name() != "Lhybrid" ||
		NewHybridStage(true, false, false).Name() != "LAP+Winv" ||
		NewHybridStage(false, true, false).Name() != "LAP+LoopSTT" ||
		NewHybridStage(false, false, true).Name() != "LAP+NloopSRAM" {
		t.Fatal("hybrid names drifted")
	}
}

func TestLhybridInsertsIntoSRAMFirst(t *testing.T) {
	x, c := testCtx(2), NewLhybrid() // 2 SRAM ways + 6 STT ways
	c.EvictL2(x, dirtyLine(0))
	w := x.L3.Probe(0)
	if w < 0 || !x.L3.IsSRAMWay(w) {
		t.Fatalf("victim landed in way %d, want SRAM region", w)
	}
	if x.E.Regions[energy.RegionSTT].Writes != 0 {
		t.Fatal("insertion charged an STT write")
	}
}

func TestLhybridWinvRedirectsDirtyHit(t *testing.T) {
	x, c := testCtx(2), NewLhybrid()
	set := x.L3.SetOf(100)
	// Plant a clean copy in the STT region.
	x.L3.InsertAt(set, 5, 100, false, false)
	sttWritesBefore := x.E.Regions[energy.RegionSTT].Writes
	c.EvictL2(x, dirtyLine(100))
	if x.E.Regions[energy.RegionSTT].Writes != sttWritesBefore {
		t.Fatal("dirty hit wrote to STT-RAM despite Winv")
	}
	w := x.L3.Probe(100)
	if w < 0 || !x.L3.IsSRAMWay(w) {
		t.Fatalf("dirty block at way %d, want SRAM", w)
	}
	if !x.L3.Line(set, w).Dirty {
		t.Fatal("redirected block lost its dirty bit")
	}
}

func TestLhybridMigratesMRULoopBlockToSTT(t *testing.T) {
	x, c := testCtx(2), NewLhybrid()
	// Fill both SRAM ways of set 0: one loop-block, one plain.
	c.EvictL2(x, loopLine(0)) // blocks multiple of 8 -> set 0
	c.EvictL2(x, cleanLine(8))
	// Next insertion into set 0 must migrate the loop-block to STT.
	c.EvictL2(x, cleanLine(16))
	w := x.L3.Probe(0)
	if w < 0 || x.L3.IsSRAMWay(w) {
		t.Fatalf("loop-block at way %d, want STT region after migration", w)
	}
	if x.Met.MigrationWrites != 1 {
		t.Fatalf("migrations = %d, want 1", x.Met.MigrationWrites)
	}
	if x.L3.Probe(16) < 0 {
		t.Fatal("incoming block not installed")
	}
}

func TestLhybridEvictsSRAMLRUWithoutLoopBlocks(t *testing.T) {
	x, c := testCtx(2), NewLhybrid()
	c.EvictL2(x, cleanLine(0))
	c.EvictL2(x, cleanLine(8))
	c.EvictL2(x, cleanLine(16)) // no loop-blocks: SRAM LRU (block 0) evicted
	if x.L3.Probe(0) >= 0 {
		t.Fatal("SRAM LRU block not evicted")
	}
	if x.Met.MigrationWrites != 0 {
		t.Fatal("migration happened without loop-blocks")
	}
	if w := x.L3.Probe(16); w < 0 || !x.L3.IsSRAMWay(w) {
		t.Fatal("incoming block not in SRAM")
	}
}

func TestLhybridIncomingLoopBlockGoesToSTTWhenSRAMLoopFree(t *testing.T) {
	x, c := testCtx(2), NewLhybrid()
	c.EvictL2(x, cleanLine(0))
	c.EvictL2(x, cleanLine(8))
	c.EvictL2(x, loopLine(16)) // SRAM full of non-loop: loop incomer -> STT
	w := x.L3.Probe(16)
	if w < 0 || x.L3.IsSRAMWay(w) {
		t.Fatalf("incoming loop-block at way %d, want STT", w)
	}
}

func TestHybridStageLoopSTTPlacement(t *testing.T) {
	x, c := testCtx(2), NewHybridStage(false, true, false)
	c.EvictL2(x, loopLine(0))
	if w := x.L3.Probe(0); w < 0 || x.L3.IsSRAMWay(w) {
		t.Fatal("LoopSTT stage did not steer loop-block to STT")
	}
}

func TestHybridStageNloopSRAMPlacement(t *testing.T) {
	x, c := testCtx(2), NewHybridStage(false, false, true)
	c.EvictL2(x, cleanLine(0))
	if w := x.L3.Probe(0); w < 0 || !x.L3.IsSRAMWay(w) {
		t.Fatal("NloopSRAM stage did not steer non-loop block to SRAM")
	}
}

// --- Banks ---

func TestBanksQueueing(t *testing.T) {
	b := NewBanks(1)
	if lat := b.Access(0, 100, 33, 33); lat != 33 {
		t.Fatalf("first access lat = %d", lat)
	}
	// Second access at the same time queues behind the first.
	if lat := b.Access(0, 100, 8, 8); lat != 33+8 {
		t.Fatalf("queued access lat = %d, want 41", lat)
	}
	// Later access after the bank drained sees no queueing.
	if lat := b.Access(0, 1000, 8, 8); lat != 8 {
		t.Fatalf("drained access lat = %d, want 8", lat)
	}
	// Sub-banked access: occupies 8 cycles but takes 33 to complete.
	if lat := b.Access(0, 2000, 8, 33); lat != 33 {
		t.Fatalf("sub-banked access lat = %d, want 33", lat)
	}
	if lat := b.Access(0, 2000, 8, 33); lat != 8+33 {
		t.Fatalf("second sub-banked access lat = %d, want 41", lat)
	}
}

func TestBanksMapping(t *testing.T) {
	b := NewBanks(4)
	if b.BankOf(0) == b.BankOf(1) {
		t.Fatal("adjacent sets mapped to the same bank")
	}
	if b.BankOf(0) != b.BankOf(4) {
		t.Fatal("bank mapping not modular")
	}
}

func TestBanksBadCountPanics(t *testing.T) {
	for _, n := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBanks(%d): expected panic", n)
				}
			}()
			NewBanks(n)
		}()
	}
}

// --- Metrics ---

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{WritesFill: 1, WritesDirty: 2, WritesClean: 3, L3Misses: 10, Instructions: 1000, Cycles: 500}
	if m.WritesToLLC() != 6 {
		t.Fatal("WritesToLLC wrong")
	}
	if m.MPKI() != 10 {
		t.Fatalf("MPKI = %v", m.MPKI())
	}
	if m.IPC() != 2 {
		t.Fatalf("IPC = %v", m.IPC())
	}
	var zero Metrics
	if zero.MPKI() != 0 || zero.IPC() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}

// --- Profiler ---

func TestProfilerRedundantFill(t *testing.T) {
	p := NewProfiler()
	p.OnFill(1)
	p.OnL2Write(1) // modified before reuse -> redundant (Fig. 5)
	if p.RedundantFills != 1 || p.TotalFills != 1 {
		t.Fatalf("redundant fills: %d/%d", p.RedundantFills, p.TotalFills)
	}
	p.OnFill(2)
	p.OnFetch(2, true) // reused at L3 first -> useful
	p.OnL2Write(2)
	if p.RedundantFills != 1 {
		t.Fatal("useful fill miscounted as redundant")
	}
	if f := p.RedundantFillFrac(); f != 0.5 {
		t.Fatalf("fraction = %v", f)
	}
}

func TestProfilerCTC(t *testing.T) {
	p := NewProfiler()
	// Block 1: three clean trips then a write (CTC run of 3).
	p.OnFetch(1, false)
	p.OnL2Evict(1, false) // from memory: not a clean trip
	for i := 0; i < 3; i++ {
		p.OnFetch(1, true)
		p.OnL2Evict(1, false)
	}
	p.OnL2Write(1)
	// Block 2: five clean trips, still running at end of sim.
	for i := 0; i < 5; i++ {
		p.OnFetch(2, true)
		p.OnL2Evict(2, false)
	}
	p.Finish()
	if p.CTCRuns[3] != 1 || p.CTCRuns[5] != 1 {
		t.Fatalf("CTC runs: %v", p.CTCRuns)
	}
	c1, cMid, cHigh := p.CTCBuckets()
	// 9 evictions total; 3 in the mid bucket, 5 in the high bucket.
	if c1 != 0 || cMid != 3.0/9 || cHigh != 5.0/9 {
		t.Fatalf("buckets = %v %v %v", c1, cMid, cHigh)
	}
	if lf := p.LoopBlockFrac(); lf != 8.0/9 {
		t.Fatalf("loop-block fraction = %v", lf)
	}
}

func TestProfilerCleanInsertAfterL3Evict(t *testing.T) {
	p := NewProfiler()
	p.OnCleanInsert(7) // first insert: not redundant
	if p.RedundantCleanInserts != 0 {
		t.Fatal("first insert counted redundant")
	}
	p.OnCleanInsert(7) // content already in L3 -> redundant
	if p.RedundantCleanInserts != 1 {
		t.Fatal("re-insert not counted")
	}
	p.OnL3Evict(7)
	p.OnCleanInsert(7) // L3 lost the copy: capacity-forced, not redundant
	if p.RedundantCleanInserts != 1 {
		t.Fatal("capacity re-insert wrongly counted redundant")
	}
}
