package core

import "repro/internal/cache"

// ReuseDetector implements the reuse-detection bypass for STT-RAM shared
// LLCs (arXiv 2402.00533): most blocks brought into an LLC are never
// referenced there again, so writing them into the STT-RAM data array is
// pure write energy wasted. The controller keeps the non-inclusive data
// flow but gates every fill and every dirty-victim insertion on a small
// reuse detector — a direct-mapped signature table remembering which
// blocks have missed in the LLC before. A block is only installed on its
// second LLC touch; first-touch fills are bypassed straight to the core
// (counted in Metrics.BypassedFills) and first-touch dirty victims go
// straight to memory (Metrics.BypassedWrites). Detector probes are
// charged to the SRAM tag array like every other metadata access.
const (
	reuseSigBits = 14
	reuseSigSize = 1 << reuseSigBits
)

// ReuseDetector is the "reuse-detector" policy controller.
type ReuseDetector struct {
	// sig is the direct-mapped reuse signature table. Each slot holds
	// block+1 of the last block hashed there (0 = empty); a matching
	// signature on a miss means the block was seen before and is
	// predicted to have LLC-level reuse.
	sig []uint64
}

// NewReuseDetector returns the reuse-detection bypass controller.
func NewReuseDetector() *ReuseDetector {
	return &ReuseDetector{sig: make([]uint64, reuseSigSize)}
}

// Name implements Controller.
func (*ReuseDetector) Name() string { return "reuse-detector" }

// reuseSlot hashes a block address into the signature table.
func reuseSlot(block uint64) uint64 {
	return (block * 0x9e3779b97f4a7c15) >> (64 - reuseSigBits)
}

// probe checks the detector for a prior touch of block, recording the
// touch either way. The probe reads/updates a small SRAM array and is
// charged like a tag access.
func (c *ReuseDetector) probe(x *Ctx, block uint64) bool {
	x.tagAccess()
	s := &c.sig[reuseSlot(block)]
	seen := *s == block+1
	*s = block + 1
	return seen
}

// Fetch implements Controller: the non-inclusive flow, except that a
// miss only fills the LLC when the detector predicts reuse.
func (c *ReuseDetector) Fetch(x *Ctx, block uint64) FetchResult {
	x.Met.L3Accesses++
	x.tagAccess()
	if w := x.L3.Lookup(block); w >= 0 {
		x.Met.L3Hits++
		lat := x.dataRead(x.L3.SetOf(block), w)
		if x.Prof != nil {
			x.Prof.OnFetch(block, true)
		}
		return FetchResult{Hit: true, Lat: lat}
	}
	x.Met.L3Misses++
	lat := x.memRead(block)
	if x.Prof != nil {
		x.Prof.OnFetch(block, false)
	}
	if c.probe(x, block) {
		x.insert(block, false, false, SrcFill, x.L3.Victim)
	} else {
		x.Met.BypassedFills++
	}
	return FetchResult{Lat: lat}
}

// EvictL2 implements Controller: dirty victims with a resident duplicate
// update it in place; without one they are only installed when the
// detector predicts reuse, otherwise the write bypasses the STT-RAM
// array straight to memory. Clean victims are dropped (non-inclusive).
func (c *ReuseDetector) EvictL2(x *Ctx, v cache.Line) {
	if !v.Dirty {
		return
	}
	x.tagAccess()
	if w := x.L3.Probe(v.Tag); w >= 0 {
		set := x.L3.SetOf(v.Tag)
		l := x.L3.Line(set, w)
		l.Dirty = true
		x.L3.Touch(set, w)
		x.dataWrite(set, w)
		x.Met.AddWrite(SrcDirty)
		return
	}
	if c.probe(x, v.Tag) {
		x.insert(v.Tag, true, false, SrcDirty, x.L3.Victim)
		return
	}
	x.Met.BypassedWrites++
	x.memWrite(v.Tag)
}

func init() {
	// Bypass decisions depend on detector state accumulated over the
	// whole run; interval-sampled simulation resets that state at every
	// jump, which would systematically under-predict reuse — so the
	// policy is exact-mode only (refused, never silently wrong).
	RegisterPolicy(PolicyInfo{
		Name:           "reuse-detector",
		Description:    "non-inclusive flow, fills and dirty insertions gated on detected LLC reuse",
		BankedEligible: true,
		Rank:           10,
		New:            func(PolicyParams) Controller { return NewReuseDetector() },
	})
}
