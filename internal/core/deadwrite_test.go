package core

import (
	"testing"

	"repro/internal/cache"
)

func TestDWBName(t *testing.T) {
	if NewDeadWriteBypass(NewNonInclusive()).Name() != "non-inclusive+DWB" {
		t.Fatal("DWB name wrong")
	}
	if NewDeadWriteBypass(NewLAP()).Name() != "LAP+DWB" {
		t.Fatal("DWB over LAP name wrong")
	}
}

func TestDWBForwardsDuel(t *testing.T) {
	if NewDeadWriteBypass(NewLAP()).Duel() == nil {
		t.Fatal("LAP's duel not forwarded")
	}
	if NewDeadWriteBypass(NewNonInclusive()).Duel() != nil {
		t.Fatal("phantom duel on a non-dueling base")
	}
}

// trainDeadOn runs enough dead round trips through the wrapper to push
// the block's predictor to the dead threshold.
func trainDeadOn(x *Ctx, c *DeadWriteBypass, block uint64) {
	for i := 0; i < 3; i++ {
		// Insert via a dirty victim, then force its L3 eviction without
		// reuse by filling the set with conflicting insertions.
		c.EvictL2(x, dirtyLine(block))
		set := x.L3.SetOf(block)
		for j := 1; x.L3.Probe(block) >= 0; j++ {
			conflict := block + uint64(j*x.L3.NumSets())
			x.insert(conflict, false, false, SrcClean, func(int) int {
				// evict our block's way specifically
				if w := x.L3.Probe(block); w >= 0 {
					return w
				}
				return x.L3.LRUVictim(set)
			})
		}
	}
}

func TestDWBTrainsAndBypasses(t *testing.T) {
	x := testCtx(0)
	c := NewDeadWriteBypass(NewNonInclusive())
	const block = 100
	trainDeadOn(x, c, block)
	if !c.predictedDead(block) {
		t.Fatal("predictor not trained dead after untouched evictions")
	}
	memWrites := x.Met.MemWrites
	writes := x.Met.WritesToLLC()
	c.EvictL2(x, dirtyLine(block))
	if x.Met.BypassedWrites == 0 {
		t.Fatal("predicted-dead dirty victim not bypassed")
	}
	if x.Met.WritesToLLC() != writes {
		t.Fatal("bypassed write still touched the LLC")
	}
	if x.Met.MemWrites != memWrites+1 {
		t.Fatal("bypassed dirty data not written to memory")
	}
	if x.L3.Probe(block) >= 0 {
		t.Fatal("bypassed block present in LLC")
	}
}

func TestDWBCleanBypassIsFree(t *testing.T) {
	x := testCtx(0)
	c := NewDeadWriteBypass(NewExclusive())
	const block = 100
	trainDeadOn(x, c, block)
	memWrites := x.Met.MemWrites
	c.EvictL2(x, cleanLine(block))
	if x.Met.MemWrites != memWrites {
		t.Fatal("clean bypass wrote memory")
	}
	if x.L3.Probe(block) >= 0 {
		t.Fatal("clean bypass inserted into LLC")
	}
}

func TestDWBReuseTrainsLive(t *testing.T) {
	x := testCtx(0)
	c := NewDeadWriteBypass(NewNonInclusive())
	const block = 100
	trainDeadOn(x, c, block)
	// Erase the prediction through observed reuse: insert, then hit.
	*c.slot(block) = 0
	c.EvictL2(x, dirtyLine(block))
	r := c.Fetch(x, block)
	if !r.Hit {
		t.Fatal("expected hit on just-inserted block")
	}
	if _, pending := c.pending[block]; pending {
		t.Fatal("reused block still pending")
	}
	if c.predictedDead(block) {
		t.Fatal("reuse did not train live")
	}
}

func TestDWBDelegatesUntrained(t *testing.T) {
	x := testCtx(0)
	c := NewDeadWriteBypass(NewNonInclusive())
	// Cold predictor: behaviour must match plain non-inclusion.
	c.Fetch(x, 7)
	if x.L3.Probe(7) < 0 {
		t.Fatal("base fill suppressed by cold predictor")
	}
	c.EvictL2(x, dirtyLine(8))
	if x.L3.Probe(8) < 0 {
		t.Fatal("base dirty insertion suppressed by cold predictor")
	}
	if x.Met.BypassedWrites != 0 {
		t.Fatal("cold predictor bypassed a write")
	}
}

func TestDWBDuplicateNotBypassed(t *testing.T) {
	// A predicted-dead victim whose duplicate lives in the L3 must still
	// update that duplicate (bypassing would leave stale LLC data).
	x := testCtx(0)
	c := NewDeadWriteBypass(NewNonInclusive())
	const block = 100
	trainDeadOn(x, c, block)
	c.Fetch(x, block) // fill a duplicate
	if x.L3.Probe(block) < 0 {
		t.Fatal("setup: no duplicate")
	}
	writesBefore := x.Met.WritesDirty
	c.EvictL2(x, dirtyLine(block))
	if x.Met.WritesDirty != writesBefore+1 {
		t.Fatal("duplicate update skipped by bypass")
	}
}

var _ Controller = (*DeadWriteBypass)(nil)
var _ = cache.Line{}
