package core

// Controller checkpoint codecs. Every controller the simulator can
// checkpoint implements StateCodec; the machine serializer verifies the
// controller name and delegates the policy-specific payload here. The
// codecs restore *exact* state — dueling cost accumulators, dead-write
// predictor counters, pending tables — because a resumed run must be
// byte-identical to an uninterrupted one, not merely re-warmed.

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/checkpoint/wire"
)

// StateCodec is implemented by controllers (and machine components)
// whose mutable state round-trips through the wire format.
type StateCodec interface {
	EncodeState(e *wire.Encoder)
	DecodeState(d *wire.Decoder) error
}

// CanCheckpoint reports whether c's mutable state can be serialized:
// it implements StateCodec and, for wrappers, so does everything it
// wraps.
func CanCheckpoint(c Controller) bool {
	switch v := c.(type) {
	case *DeadWriteBypass:
		return CanCheckpoint(v.base)
	case StateCodec:
		return true
	default:
		return false
	}
}

// EncodeState appends every Metrics counter, in declaration order.
func (m *Metrics) EncodeState(e *wire.Encoder) { e.U64Struct(m) }

// DecodeState restores every Metrics counter. A field-count mismatch
// (the struct changed since the checkpoint was written) is an error.
func (m *Metrics) DecodeState(d *wire.Decoder) error {
	d.U64Struct(m)
	return d.Err()
}

// EncodeState appends the bank model's busy-horizon and op counters.
func (b *Banks) EncodeState(e *wire.Encoder) {
	e.U64s(b.next)
	e.U64s(b.ops)
}

// DecodeState restores the bank model; the bank count must match.
func (b *Banks) DecodeState(d *wire.Decoder) error {
	next := d.U64s()
	ops := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(next) != len(b.next) || len(ops) != len(b.ops) {
		return fmt.Errorf("core: bank count mismatch (%d banks, snapshot has %d)", len(b.next), len(next))
	}
	copy(b.next, next)
	copy(b.ops, ops)
	return nil
}

// The stateless traditional controllers have nothing to save: their
// behavior is a pure function of cache state, which the machine
// serializes separately.

// EncodeState implements StateCodec (no mutable state).
func (*NonInclusive) EncodeState(*wire.Encoder) {}

// DecodeState implements StateCodec (no mutable state).
func (*NonInclusive) DecodeState(*wire.Decoder) error { return nil }

// EncodeState implements StateCodec (no mutable state).
func (*Exclusive) EncodeState(*wire.Encoder) {}

// DecodeState implements StateCodec (no mutable state).
func (*Exclusive) DecodeState(*wire.Decoder) error { return nil }

// EncodeState implements StateCodec (no mutable state).
func (*Inclusive) EncodeState(*wire.Encoder) {}

// DecodeState implements StateCodec (no mutable state).
func (*Inclusive) DecodeState(*wire.Decoder) error { return nil }

// EncodeState implements StateCodec: LAP's only mutable state is the
// replacement duel (the mode is configuration).
func (c *LAP) EncodeState(e *wire.Encoder) { c.duel.EncodeState(e) }

// DecodeState implements StateCodec.
func (c *LAP) DecodeState(d *wire.Decoder) error { return c.duel.DecodeState(d) }

// EncodeState implements StateCodec: Lhybrid's placement flags are
// configuration; the wrapped LAP duel is the mutable state.
func (c *Hybrid) EncodeState(e *wire.Encoder) { c.lap.EncodeState(e) }

// DecodeState implements StateCodec.
func (c *Hybrid) DecodeState(d *wire.Decoder) error { return c.lap.DecodeState(d) }

// EncodeState implements StateCodec: the inclusion duel carries the
// switching baselines' election state.
func (c *switching) EncodeState(e *wire.Encoder) { c.duel.EncodeState(e) }

// DecodeState implements StateCodec.
func (c *switching) DecodeState(d *wire.Decoder) error { return c.duel.DecodeState(d) }

// EncodeState implements StateCodec: the predictor table, the pending
// (inserted-not-yet-reused) block set in sorted order for determinism,
// then the wrapped base controller's state.
func (c *DeadWriteBypass) EncodeState(e *wire.Encoder) {
	e.Raw(c.table)
	keys := make([]uint64, 0, len(c.pending))
	for b := range c.pending {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.U64s(keys)
	base, ok := c.base.(StateCodec)
	if !ok {
		panic(fmt.Sprintf("core: checkpointing DWB over non-checkpointable %s", c.base.Name()))
	}
	base.EncodeState(e)
}

// DecodeState implements StateCodec.
func (c *DeadWriteBypass) DecodeState(d *wire.Decoder) error {
	table := d.Raw()
	keys := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(table) != len(c.table) {
		return fmt.Errorf("core: DWB table size mismatch (%d, snapshot has %d)", len(c.table), len(table))
	}
	copy(c.table, table)
	c.pending = make(map[uint64]struct{}, len(keys))
	for _, b := range keys {
		c.pending[b] = struct{}{}
	}
	base, ok := c.base.(StateCodec)
	if !ok {
		return fmt.Errorf("core: restoring DWB over non-checkpointable %s", c.base.Name())
	}
	return base.DecodeState(d)
}

// EncodeState implements StateCodec: the reuse signature table is the
// only mutable state.
func (c *ReuseDetector) EncodeState(e *wire.Encoder) { e.U64s(c.sig) }

// DecodeState implements StateCodec.
func (c *ReuseDetector) DecodeState(d *wire.Decoder) error {
	sig := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(sig) != len(c.sig) {
		return fmt.Errorf("core: reuse-detector table size mismatch (%d, snapshot has %d)", len(c.sig), len(sig))
	}
	copy(c.sig, sig)
	return nil
}

// EncodeState implements StateCodec: the reuse clock, the derived
// threshold, and the last-touch table.
func (c *RDCopyback) EncodeState(e *wire.Encoder) {
	e.U64(c.clock)
	e.U64(c.threshold)
	e.U64s(c.last)
}

// DecodeState implements StateCodec.
func (c *RDCopyback) DecodeState(d *wire.Decoder) error {
	clock := d.U64()
	threshold := d.U64()
	last := d.U64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(last) != len(c.last) {
		return fmt.Errorf("core: rd-copyback table size mismatch (%d, snapshot has %d)", len(c.last), len(last))
	}
	c.clock = clock
	c.threshold = threshold
	copy(c.last, last)
	return nil
}

// ensure the controllers actually satisfy the interface.
var (
	_ StateCodec = (*LAP)(nil)
	_ StateCodec = (*Hybrid)(nil)
	_ StateCodec = (*switching)(nil)
	_ StateCodec = (*DeadWriteBypass)(nil)
	_ StateCodec = (*NonInclusive)(nil)
	_ StateCodec = (*Exclusive)(nil)
	_ StateCodec = (*Inclusive)(nil)
	_ StateCodec = (*ReuseDetector)(nil)
	_ StateCodec = (*RDCopyback)(nil)
	_ StateCodec = (*Metrics)(nil)
	_ StateCodec = (*Banks)(nil)
	_ StateCodec = (*cache.Duel)(nil)
	_ StateCodec = (*cache.MSHR)(nil)
)
