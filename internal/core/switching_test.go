package core

import (
	"testing"

	"repro/internal/cache"
)

// Mode-transition coverage for the dynamic switching baselines: a set
// that flips between non-inclusive and exclusive mode inherits the other
// mode's residual LLC state and must handle it correctly.

// electWinner forces the duel to the given winner and freezes it there
// (the window length is pushed out so no re-election overturns it).
func electWinner(c *switching, want cache.Role, _ uint64) {
	c.duel.SetWinner(want)
	c.duel.PeriodCycles = 1 << 60
}

func TestSwitchNoniToExInvalidatesResidualDuplicate(t *testing.T) {
	x := testCtx(0)
	c := NewFLEXclusion().(*switching)
	// Follower set (e.g. set 2, since 8 sets < stride 64 -> roles by %64:
	// set 2 is a follower) starts in noni mode (A wins by default).
	const block = 2   // maps to set 2
	c.Fetch(x, block) // noni: fill
	if x.L3.Probe(block) < 0 {
		t.Fatal("setup: no duplicate")
	}
	// Flip followers to exclusive.
	electWinner(c, cache.LeaderB, 1)
	x.Now = 2
	r := c.Fetch(x, block)
	if !r.Hit {
		t.Fatal("residual duplicate not served")
	}
	if x.L3.Probe(block) >= 0 {
		t.Fatal("exclusive mode kept the duplicate on hit")
	}
}

func TestSwitchExToNoniUpdatesResidualVictim(t *testing.T) {
	x := testCtx(0)
	c := NewFLEXclusion().(*switching)
	electWinner(c, cache.LeaderB, 1) // exclusive first
	const block = 2
	x.Now = 2
	c.EvictL2(x, cleanLine(block)) // exclusive insertion
	if x.L3.Probe(block) < 0 {
		t.Fatal("setup: victim not installed")
	}
	// Flip back to non-inclusive; a dirty victim now finds the residual
	// copy and must update it in place, not double-insert.
	electWinner(c, cache.LeaderA, 3)
	x.Now = 4
	writes := x.Met.WritesToLLC()
	c.EvictL2(x, dirtyLine(block))
	if x.Met.WritesToLLC() != writes+1 {
		t.Fatal("residual victim not updated in a single write")
	}
	set := x.L3.SetOf(block)
	w := x.L3.Probe(block)
	if w < 0 || !x.L3.Line(set, w).Dirty {
		t.Fatal("residual copy lost its update")
	}
}

func TestSwitchingLeadersImmuneToWinner(t *testing.T) {
	x := testCtx(0)
	c := NewFLEXclusion().(*switching)
	electWinner(c, cache.LeaderB, 1)
	// Set 0 remains a noni leader: misses must still fill.
	x.Now = 2
	c.Fetch(x, 0)
	if x.L3.Probe(0) < 0 {
		t.Fatal("noni leader stopped filling after B won")
	}
	// Set 1 remains an ex leader: misses must still bypass.
	c.Fetch(x, 1)
	if x.L3.Probe(1) >= 0 {
		t.Fatal("ex leader filled")
	}
}

func TestSwitchingChargesOnlyLeaders(t *testing.T) {
	x := testCtx(0)
	c := NewDswitch(1.0, 0.436).(*switching)
	c.duel.PeriodCycles = 1_000_000
	// Misses in follower sets must not move the duel costs.
	c.Fetch(x, 2) // follower set
	c.Fetch(x, 3)
	d := c.duel
	d.AddCost(cache.LeaderA, 0) // no-op, just to access
	// Miss in each leader set moves its own counter only.
	c.Fetch(x, 0) // LeaderA
	c.Fetch(x, 1) // LeaderB
	// Force an election and verify the winner reflects only leader costs:
	// A paid miss+fill write, B paid miss only -> B must win.
	d.Observe(2_000_000)
	if d.Winner() != cache.LeaderB {
		t.Fatalf("winner = %v; follower costs leaked into the duel", d.Winner())
	}
}

func TestLAPVictimSelectorFollowsDuel(t *testing.T) {
	x := testCtx(0)
	c := NewLAP()
	c.Duel().PeriodCycles = 1
	// Force LRU (LeaderB) to win.
	c.Duel().AddCost(cache.LeaderA, 1e9)
	c.Duel().Observe(1)
	// Fill follower set 2 with loop-blocks plus one older non-loop block;
	// under LRU the oldest (the loop block at way 0) is evicted, under
	// loop-aware the non-loop one would be.
	set := 2
	x.L3.InsertAt(set, 0, 2, false, true) // oldest, loop
	x.L3.InsertAt(set, 1, 10, false, false)
	x.L3.InsertAt(set, 2, 18, false, true)
	x.L3.InsertAt(set, 3, 26, false, true)
	sel := c.victimSelector(x)
	if w := sel(set); w != 0 {
		t.Fatalf("duel winner LRU but selector chose way %d", w)
	}
	// Flip to loop-aware (LeaderA).
	c.Duel().AddCost(cache.LeaderB, 1e9)
	c.Duel().Observe(2)
	if w := sel(set); w != 1 {
		t.Fatalf("duel winner loop-aware but selector chose way %d", w)
	}
}

func TestHybridWithoutSRAMDegradesToLAP(t *testing.T) {
	x := testCtx(0) // single-tech L3
	c := NewLhybrid()
	c.EvictL2(x, cleanLine(5))
	if x.L3.Probe(5) < 0 {
		t.Fatal("hybrid-on-single-tech dropped the insertion")
	}
	if x.Met.MigrationWrites != 0 {
		t.Fatal("migration on a single-tech cache")
	}
}

func TestMetricsAddWriteSources(t *testing.T) {
	var m Metrics
	m.AddWrite(SrcFill)
	m.AddWrite(SrcDirty)
	m.AddWrite(SrcDirty)
	m.AddWrite(SrcClean)
	if m.WritesFill != 1 || m.WritesDirty != 2 || m.WritesClean != 1 {
		t.Fatalf("write decomposition wrong: %+v", m)
	}
	if m.WritesToLLC() != 4 {
		t.Fatal("total wrong")
	}
}
