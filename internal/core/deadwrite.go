package core

import "repro/internal/cache"

// Dead-write bypass (after Ahn et al., "DASCA: Dead Write Prediction
// Assisted STT-RAM Cache Architecture", HPCA 2014 — the paper's reference
// [34]). A write to the LLC is "dead" when the block is evicted again
// without ever being re-read; predicting dead writes and bypassing them
// straight to memory removes their STT-RAM write energy. The paper calls
// this technique orthogonal to LAP ("can be combined with our approaches
// to further reduce the dynamic energy consumption"); DeadWriteBypass is
// a wrapper over any inclusion controller, so both the baseline
// (non-inclusive + DWB) and the combination (LAP + DWB) are expressible.
//
// The predictor is an address-hashed table of saturating 2-bit counters,
// trained by outcome: an LLC insertion that is later hit trains towards
// "live"; one that is evicted untouched trains towards "dead".

// dwbTableSize is the predictor size (entries of 2-bit counters).
const dwbTableSize = 1 << 14

// dwbDeadThreshold is the counter value at which a write is predicted dead.
const dwbDeadThreshold = 2

// DeadWriteBypass wraps a base controller with dead-write prediction.
type DeadWriteBypass struct {
	base    Controller
	table   []uint8
	pending map[uint64]struct{} // blocks inserted and not yet reused
}

// NewDeadWriteBypass wraps base with a dead-write predictor.
func NewDeadWriteBypass(base Controller) *DeadWriteBypass {
	return &DeadWriteBypass{
		base:    base,
		table:   make([]uint8, dwbTableSize),
		pending: make(map[uint64]struct{}),
	}
}

// Name implements Controller.
func (c *DeadWriteBypass) Name() string { return c.base.Name() + "+DWB" }

// Duel forwards the base controller's dueling state when it has one.
func (c *DeadWriteBypass) Duel() *cache.Duel {
	if d, ok := c.base.(interface{ Duel() *cache.Duel }); ok {
		return d.Duel()
	}
	return nil
}

func (c *DeadWriteBypass) slot(block uint64) *uint8 {
	h := block * 0x9e3779b97f4a7c15
	return &c.table[h>>(64-14)]
}

func (c *DeadWriteBypass) predictedDead(block uint64) bool {
	return *c.slot(block) >= dwbDeadThreshold
}

func (c *DeadWriteBypass) trainDead(block uint64) {
	if s := c.slot(block); *s < 3 {
		*s++
	}
}

func (c *DeadWriteBypass) trainLive(block uint64) {
	if s := c.slot(block); *s > 0 {
		*s = 0 // strong reset: one reuse proves the write was live
	}
}

// onL3Evict is installed as the Ctx eviction observer: an insertion that
// leaves the LLC untouched was a dead write.
func (c *DeadWriteBypass) onL3Evict(block uint64) {
	if _, ok := c.pending[block]; ok {
		delete(c.pending, block)
		c.trainDead(block)
	}
}

// hook installs the eviction observer once per run.
func (c *DeadWriteBypass) hook(x *Ctx) {
	if x.EvictObserver == nil {
		x.EvictObserver = c.onL3Evict
	}
}

// Fetch implements Controller: delegate, and train "live" when a hit
// touches one of our pending insertions.
func (c *DeadWriteBypass) Fetch(x *Ctx, block uint64) FetchResult {
	c.hook(x)
	r := c.base.Fetch(x, block)
	if r.Hit {
		if _, ok := c.pending[block]; ok {
			delete(c.pending, block)
			c.trainLive(block)
		}
	}
	return r
}

// EvictL2 implements Controller: dirty victims predicted dead bypass the
// LLC and go straight to memory; clean victims predicted dead are simply
// dropped (their data is already safe in memory or the LLC). Everything
// else flows through the base policy, and resulting LLC insertions are
// tracked for training.
func (c *DeadWriteBypass) EvictL2(x *Ctx, v cache.Line) {
	c.hook(x)
	if c.predictedDead(v.Tag) && x.L3.Probe(v.Tag) < 0 {
		x.Met.BypassedWrites++
		if v.Dirty {
			x.memWrite(v.Tag)
		}
		// Re-arm training: a bypassed block that later misses and gets
		// re-fetched will not retrain towards live (conservative, as in
		// DASCA's design where mispredictions cost an extra memory trip).
		return
	}
	inL3Before := x.L3.Probe(v.Tag) >= 0
	c.base.EvictL2(x, v)
	if !inL3Before && x.L3.Probe(v.Tag) >= 0 {
		c.pending[v.Tag] = struct{}{}
	}
}
