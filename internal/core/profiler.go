package core

// Profiler tracks per-block history to measure the paper's motivational
// quantities: redundant LLC data-fills (Section II-C2, Fig. 5/6/17),
// redundant clean-data insertions a.k.a. loop-block insertions (Section
// II-C1, Fig. 3/16), and the clean-trip-count (CTC) distribution of
// loop-blocks (Fig. 4). It is optional — production-speed runs leave it
// nil — and keyed by block number, which is safe because multi-programmed
// cores occupy disjoint address spaces.
type Profiler struct {
	blocks map[uint64]*blockState

	// TotalFills and RedundantFills measure non-inclusive data-fill
	// waste: a fill is redundant when the block is modified in the upper
	// levels before the LLC copy is ever reused.
	TotalFills     uint64
	RedundantFills uint64

	// TotalCleanInserts and RedundantCleanInserts measure exclusive-style
	// waste: a clean insertion is redundant when an identical clean copy
	// was present in the LLC since the block's last modification.
	TotalCleanInserts     uint64
	RedundantCleanInserts uint64

	// L2Evictions and CTC histogram for Fig. 4. A "clean trip" is a block
	// fetched from an LLC hit and later evicted from the L2 still clean;
	// CTCRuns[k] counts completed runs of exactly k consecutive clean
	// trips (k capped at CTCMax).
	L2Evictions uint64
	CTCRuns     map[int]uint64
}

// CTCMax caps the recorded run length; the paper's top bucket is CTC >= 5.
const CTCMax = 64

type blockState struct {
	// fillUnused: the block was data-filled into the LLC (non-inclusive
	// path) and that copy has not been reused yet.
	fillUnused bool
	// cleanInL3: an unmodified copy of the block's current data sits (or
	// sat, for exclusive hit-invalidates) in the LLC.
	cleanInL3 bool
	// fromL3Hit: the current L2 residency was served by an LLC hit.
	fromL3Hit bool
	// run is the current consecutive clean-trip count.
	run int
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{blocks: make(map[uint64]*blockState), CTCRuns: make(map[int]uint64)}
}

func (p *Profiler) state(block uint64) *blockState {
	st := p.blocks[block]
	if st == nil {
		st = &blockState{}
		p.blocks[block] = st
	}
	return st
}

// OnFill records a non-inclusive-style data-fill of the LLC.
func (p *Profiler) OnFill(block uint64) {
	st := p.state(block)
	st.fillUnused = true
	st.cleanInL3 = true
	p.TotalFills++
}

// OnFetch records the source of an L2 fill: hit=true means the LLC served
// it (so the LLC copy was reused, and a future clean eviction is a clean
// trip), hit=false means it came from memory.
func (p *Profiler) OnFetch(block uint64, hit bool) {
	st := p.state(block)
	st.fromL3Hit = hit
	if hit {
		st.fillUnused = false
		st.cleanInL3 = true
	}
}

// OnL2Write records a store to the block while it lives in the upper
// levels. Modification ends any clean-trip run and invalidates both the
// "unused fill" and "clean copy in L3" properties.
func (p *Profiler) OnL2Write(block uint64) {
	st := p.state(block)
	if st.fillUnused {
		p.RedundantFills++
		st.fillUnused = false
	}
	st.cleanInL3 = false
	p.endRun(st)
}

// OnL2Evict records an L2 eviction; dirty indicates the victim state.
func (p *Profiler) OnL2Evict(block uint64, dirty bool) {
	p.L2Evictions++
	st := p.state(block)
	if dirty {
		p.endRun(st)
		return
	}
	if st.fromL3Hit {
		st.run++
		if st.run > CTCMax {
			st.run = CTCMax
		}
	}
}

// OnCleanInsert records a clean-victim insertion into the LLC and reports
// whether it was redundant.
func (p *Profiler) OnCleanInsert(block uint64) {
	p.TotalCleanInserts++
	st := p.state(block)
	if st.cleanInL3 {
		p.RedundantCleanInserts++
	}
	st.cleanInL3 = true
}

// OnL3Evict records that the LLC dropped its copy of the block.
func (p *Profiler) OnL3Evict(block uint64) {
	if st := p.blocks[block]; st != nil {
		st.cleanInL3 = false
		st.fillUnused = false
	}
}

// Finish flushes in-flight clean-trip runs into the histogram; call once
// at end of simulation before reading CTC statistics.
func (p *Profiler) Finish() {
	for _, st := range p.blocks {
		p.endRun(st)
	}
}

func (p *Profiler) endRun(st *blockState) {
	if st.run > 0 {
		p.CTCRuns[st.run]++
		st.run = 0
	}
}

// RedundantFillFrac returns the redundant fraction of LLC data-fills
// (Fig. 6 / Fig. 17).
func (p *Profiler) RedundantFillFrac() float64 {
	if p.TotalFills == 0 {
		return 0
	}
	return float64(p.RedundantFills) / float64(p.TotalFills)
}

// RedundantCleanFrac returns the redundant fraction of clean insertions.
func (p *Profiler) RedundantCleanFrac() float64 {
	if p.TotalCleanInserts == 0 {
		return 0
	}
	return float64(p.RedundantCleanInserts) / float64(p.TotalCleanInserts)
}

// CTCBuckets summarises the clean-trip histogram as the paper's Figure 4
// does: the fraction of all L2 evictions attributable to loop-blocks with
// CTC == 1, 1 < CTC < 5, and CTC >= 5. A run of length k contributes k
// clean-trip evictions.
func (p *Profiler) CTCBuckets() (ctc1, ctcMid, ctcHigh float64) {
	if p.L2Evictions == 0 {
		return 0, 0, 0
	}
	var e1, eMid, eHigh uint64
	for k, runs := range p.CTCRuns {
		evictions := uint64(k) * runs
		switch {
		case k == 1:
			e1 += evictions
		case k < 5:
			eMid += evictions
		default:
			eHigh += evictions
		}
	}
	d := float64(p.L2Evictions)
	return float64(e1) / d, float64(eMid) / d, float64(eHigh) / d
}

// LoopBlockFrac returns the total loop-block share of L2 evictions — the
// bar height of Fig. 4.
func (p *Profiler) LoopBlockFrac() float64 {
	a, b, c := p.CTCBuckets()
	return a + b + c
}
