package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
)

// The policy registry is the single source of truth for which inclusion
// policies exist and what each one can do. Every controller file
// registers itself in an init(), and every dispatch site in the tree —
// lap.Policies, config validation, cmd/lapsim -policy parsing, lapexp
// table generation, and the lapserved request validators — resolves
// names through LookupPolicy/NewPolicy instead of keeping its own list.
// Adding a policy is therefore one file: controller + RegisterPolicy,
// and it appears everywhere at once.

// PolicyParams carries the configuration-derived knobs a policy factory
// may need. The zero value is valid for every policy: dueling policies
// then keep the paper's 10M-cycle window and Dswitch falls back to a
// zero-cost miss model (callers that care derive real costs with
// sim.Config.PolicyParams).
type PolicyParams struct {
	// DuelPeriod rescales a dueling controller's observation window in
	// cycles; 0 keeps the constructor default.
	DuelPeriod uint64
	// MissNJ and WriteNJ parameterise Dswitch's energy duel: the cost of
	// one additional LLC miss and of one LLC write, in nanojoules.
	MissNJ  float64
	WriteNJ float64
}

// PolicyInfo describes one registered inclusion policy: its canonical
// name, a Table IV-style description, the capability flags the dispatch
// sites check, and the factory.
type PolicyInfo struct {
	// Name is the canonical (display) policy name, e.g. "non-inclusive"
	// or "LAP". Lookups are case-insensitive; results and tables always
	// carry this exact spelling.
	Name string
	// Description is the one-line Table IV description.
	Description string
	// NeedsHybridLLC marks policies that steer blocks between SRAM and
	// STT-RAM partitions and therefore require Config.L3SRAMWays > 0.
	NeedsHybridLLC bool
	// SampledEligible marks policies whose results stay trustworthy
	// under interval-sampled simulation. Predictor-table policies whose
	// state cannot be re-warmed across interval jumps set it false and
	// are refused (never silently wrong) in sampled mode.
	SampledEligible bool
	// BankedEligible marks policies that may run under the banked
	// parallel engine. Policies needing globally ordered side effects
	// across cores (back-invalidation) set it false.
	BankedEligible bool
	// Rank orders Policies()/PolicyNames() (paper Table IV order).
	Rank int
	// New builds a fresh controller; dueling state is per-run, so every
	// run needs its own instance. NewPolicy applies PolicyParams.
	New func(PolicyParams) Controller
}

// dwbSuffix is the wrapper suffix accepted on any registered name:
// "LAP+DWB" is LAP wrapped with the dead-write-bypass predictor.
const dwbSuffix = "+DWB"

var policyRegistry = map[string]PolicyInfo{}

// RegisterPolicy adds a policy to the registry; controller files call it
// from init(). It panics on an empty name, a name that parses as a
// "+DWB"-wrapped form, a duplicate name, or a duplicate rank — all
// programmer errors that must fail at process start, not at dispatch.
func RegisterPolicy(info PolicyInfo) {
	key := strings.ToLower(info.Name)
	switch {
	case key == "":
		panic("core: RegisterPolicy with an empty name")
	case strings.HasSuffix(key, strings.ToLower(dwbSuffix)):
		panic(fmt.Sprintf("core: policy name %q collides with the %s wrapper suffix", info.Name, dwbSuffix))
	case info.New == nil:
		panic(fmt.Sprintf("core: policy %q registered without a factory", info.Name))
	}
	if prev, dup := policyRegistry[key]; dup {
		panic(fmt.Sprintf("core: duplicate policy name %q (already registered as %q)", info.Name, prev.Name))
	}
	for _, other := range policyRegistry {
		if other.Rank == info.Rank {
			panic(fmt.Sprintf("core: policies %q and %q share rank %d", info.Name, other.Name, info.Rank))
		}
	}
	policyRegistry[key] = info
}

// LookupPolicy resolves a policy name case-insensitively, transparently
// handling the "+DWB" wrapper suffix: the returned info for "lap+dwb"
// has canonical name "LAP+DWB", inherits the base policy's capability
// flags, and its factory wraps the base controller with the dead-write
// predictor.
func LookupPolicy(name string) (PolicyInfo, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	if base, wrapped := strings.CutSuffix(key, strings.ToLower(dwbSuffix)); wrapped {
		info, ok := policyRegistry[base]
		if !ok {
			return PolicyInfo{}, false
		}
		return wrapDWB(info), true
	}
	info, ok := policyRegistry[key]
	return info, ok
}

// wrapDWB derives the "+DWB" variant of a registered policy.
func wrapDWB(base PolicyInfo) PolicyInfo {
	info := base
	info.Name = base.Name + dwbSuffix
	info.Description = base.Description + ", with dead-write bypass prediction"
	info.New = func(p PolicyParams) Controller {
		return NewDeadWriteBypass(base.New(p))
	}
	return info
}

// Policies returns every registered policy in rank (Table IV) order.
func Policies() []PolicyInfo {
	out := make([]PolicyInfo, 0, len(policyRegistry))
	for _, info := range policyRegistry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// PolicyNames returns the canonical registered names in rank order.
func PolicyNames() []string {
	infos := Policies()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// dueler is implemented by controllers with set-dueling state.
type dueler interface{ Duel() *cache.Duel }

// NewPolicy resolves a name and builds a fresh controller, applying the
// params: a non-zero DuelPeriod rescales the controller's dueling window
// when it has one (a no-op for duel-less policies). Unknown names error
// with the valid-name list.
func NewPolicy(name string, params PolicyParams) (Controller, error) {
	info, ok := LookupPolicy(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (valid: %s; append %s for dead-write bypass)",
			name, strings.Join(PolicyNames(), ", "), dwbSuffix)
	}
	ctrl := info.New(params)
	if params.DuelPeriod > 0 {
		if d, isDueler := ctrl.(dueler); isDueler {
			if duel := d.Duel(); duel != nil {
				duel.PeriodCycles = params.DuelPeriod
			}
		}
	}
	return ctrl, nil
}
