package core

import "repro/internal/cache"

// Traditional inclusion properties (paper Fig. 1). The non-inclusive LLC
// fills on miss and keeps duplicates on hit; the exclusive LLC never fills
// on miss, invalidates on hit, and absorbs every L2 victim; the inclusive
// LLC behaves like the non-inclusive one plus back-invalidation of the
// upper levels when it evicts a block.

// NonInclusive implements the paper's baseline policy (Fig. 1b):
// Writes(L3) = data-fills + dirty victims.
type NonInclusive struct{}

// NewNonInclusive returns the non-inclusive controller.
func NewNonInclusive() *NonInclusive { return &NonInclusive{} }

// Name implements Controller.
func (*NonInclusive) Name() string { return "non-inclusive" }

// Fetch implements Controller: fill both levels on miss, keep the
// duplicate on hit.
func (*NonInclusive) Fetch(x *Ctx, block uint64) FetchResult {
	x.Met.L3Accesses++
	x.tagAccess()
	if w := x.L3.Lookup(block); w >= 0 {
		x.Met.L3Hits++
		lat := x.dataRead(x.L3.SetOf(block), w)
		if x.Prof != nil {
			x.Prof.OnFetch(block, true)
		}
		return FetchResult{Hit: true, Lat: lat}
	}
	x.Met.L3Misses++
	lat := x.memRead(block)
	if x.Prof != nil {
		x.Prof.OnFetch(block, false)
	}
	x.insert(block, false, false, SrcFill, x.L3.Victim)
	return FetchResult{Lat: lat}
}

// EvictL2 implements Controller: dirty victims are written to the L3
// (updating a duplicate in place when one exists); clean victims are
// silently dropped.
func (*NonInclusive) EvictL2(x *Ctx, v cache.Line) {
	if !v.Dirty {
		return
	}
	x.tagAccess()
	if w := x.L3.Probe(v.Tag); w >= 0 {
		set := x.L3.SetOf(v.Tag)
		l := x.L3.Line(set, w)
		l.Dirty = true
		x.L3.Touch(set, w)
		x.dataWrite(set, w)
		x.Met.AddWrite(SrcDirty)
		return
	}
	x.insert(v.Tag, true, false, SrcDirty, x.L3.Victim)
}

// Exclusive implements the exclusive policy (Fig. 1c):
// Writes(L3) = clean victims + dirty victims.
type Exclusive struct{}

// NewExclusive returns the exclusive controller.
func NewExclusive() *Exclusive { return &Exclusive{} }

// Name implements Controller.
func (*Exclusive) Name() string { return "exclusive" }

// Fetch implements Controller: serve and invalidate on hit, bypass the
// LLC entirely on miss.
func (*Exclusive) Fetch(x *Ctx, block uint64) FetchResult {
	x.Met.L3Accesses++
	x.tagAccess()
	if w := x.L3.Lookup(block); w >= 0 {
		x.Met.L3Hits++
		set := x.L3.SetOf(block)
		lat := x.dataRead(set, w)
		x.L3.Evict(set, w) // invalidate-on-hit; the L2 copy carries the dirt
		if x.Prof != nil {
			x.Prof.OnFetch(block, true)
		}
		return FetchResult{Hit: true, Lat: lat}
	}
	x.Met.L3Misses++
	lat := x.memRead(block)
	if x.Prof != nil {
		x.Prof.OnFetch(block, false)
	}
	return FetchResult{Lat: lat}
}

// EvictL2 implements Controller: every victim is installed. (After an
// inclusion-mode switch a duplicate may linger; it is updated in place.)
func (*Exclusive) EvictL2(x *Ctx, v cache.Line) {
	src := SrcClean
	if v.Dirty {
		src = SrcDirty
	}
	x.tagAccess()
	if w := x.L3.Probe(v.Tag); w >= 0 {
		set := x.L3.SetOf(v.Tag)
		l := x.L3.Line(set, w)
		l.Dirty = l.Dirty || v.Dirty
		l.Loop = v.Loop
		x.L3.Touch(set, w)
		x.dataWrite(set, w)
		x.Met.AddWrite(src)
		if x.Prof != nil && src == SrcClean {
			x.Prof.OnCleanInsert(v.Tag)
		}
		return
	}
	x.insert(v.Tag, v.Dirty, v.Loop, src, x.L3.Victim)
}

// Inclusive implements the strictly inclusive policy (Fig. 1a): the
// non-inclusive flow plus back-invalidation of upper-level copies when
// the LLC evicts a block. The paper excludes it from the main evaluation
// (bypassing writes is impossible under strict inclusion) but uses it as
// background; it is provided for completeness and the Fig. 1 data-flow
// tests.
type Inclusive struct {
	noni NonInclusive
}

// NewInclusive returns the inclusive controller. The simulator must set
// Ctx.BackInvalidate for it to enforce inclusion.
func NewInclusive() *Inclusive { return &Inclusive{} }

// Name implements Controller.
func (*Inclusive) Name() string { return "inclusive" }

// Fetch implements Controller. Back-invalidation happens in
// Ctx.evictVictim whenever Ctx.BackInvalidate is non-nil.
func (c *Inclusive) Fetch(x *Ctx, block uint64) FetchResult {
	return c.noni.Fetch(x, block)
}

// EvictL2 implements Controller.
func (c *Inclusive) EvictL2(x *Ctx, v cache.Line) { c.noni.EvictL2(x, v) }

func init() {
	RegisterPolicy(PolicyInfo{
		Name:            "non-inclusive",
		Description:     "baseline inclusion property; fills both levels, drops clean victims",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            1,
		New:             func(PolicyParams) Controller { return NewNonInclusive() },
	})
	RegisterPolicy(PolicyInfo{
		Name:            "exclusive",
		Description:     "fills upper level only, invalidates on hit, inserts all victims",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            2,
		New:             func(PolicyParams) Controller { return NewExclusive() },
	})
	// Inclusive back-invalidates upper-level copies on LLC eviction, a
	// globally ordered cross-core side effect the banked engine cannot
	// replay, so it is the one banked-ineligible policy.
	RegisterPolicy(PolicyInfo{
		Name:            "inclusive",
		Description:     "non-inclusive flow plus back-invalidation of upper-level copies",
		SampledEligible: true,
		Rank:            3,
		New:             func(PolicyParams) Controller { return NewInclusive() },
	})
}
