package core

import "repro/internal/cache"

// Hybrid SRAM/STT-RAM LLC placement (paper Section IV, Fig. 11). The LLC
// keeps its LAP inclusion flow; placement within a set decides which
// technology region absorbs each write:
//
//   - Winv: a dirty L2 victim that hits a duplicate in the STT-RAM region
//     invalidates it and lands in SRAM instead (Fig. 11a).
//   - LoopSTT: loop-blocks belong in STT-RAM, where they will not be
//     rewritten (Fig. 11b).
//   - NloopSRAM: write-prone non-loop-blocks belong in SRAM (Fig. 11c).
//
// Lhybrid composes all three with the full Fig. 11 migration flow: every
// insertion enters SRAM; when SRAM overflows, the MRU loop-block migrates
// to STT-RAM, otherwise the SRAM LRU block is evicted.
type Hybrid struct {
	lap  *LAP
	winv bool
	// loopSTT / nloopSRAM steer insertions by loop-bit (ablation stages).
	loopSTT   bool
	nloopSRAM bool
	// full enables the complete Lhybrid insertion/migration flow.
	full bool
}

// NewLhybrid returns the full Lhybrid policy of Section IV.
func NewLhybrid() *Hybrid {
	return &Hybrid{lap: NewLAP(), winv: true, loopSTT: true, nloopSRAM: true, full: true}
}

// NewHybridStage returns one of the Fig. 25 ablation stages layered on
// plain LAP: winv, loopSTT, or nloopSRAM.
func NewHybridStage(winv, loopSTT, nloopSRAM bool) *Hybrid {
	return &Hybrid{lap: NewLAP(), winv: winv, loopSTT: loopSTT, nloopSRAM: nloopSRAM}
}

// Name implements Controller.
func (c *Hybrid) Name() string {
	if c.full {
		return "Lhybrid"
	}
	switch {
	case c.winv:
		return "LAP+Winv"
	case c.loopSTT:
		return "LAP+LoopSTT"
	case c.nloopSRAM:
		return "LAP+NloopSRAM"
	default:
		return "LAP(hybrid)"
	}
}

// Fetch implements Controller: identical to LAP (no fill on miss, no
// invalidation on hit, loop-bit set on hit).
func (c *Hybrid) Fetch(x *Ctx, block uint64) FetchResult { return c.lap.Fetch(x, block) }

// Duel exposes the underlying LAP replacement duel.
func (c *Hybrid) Duel() *cache.Duel { return c.lap.Duel() }

// EvictL2 implements Controller with technology-aware placement.
func (c *Hybrid) EvictL2(x *Ctx, v cache.Line) {
	x.tagAccess()
	set := x.L3.SetOf(v.Tag)
	sram := x.L3.SRAMWays()
	if w := x.L3.Probe(v.Tag); w >= 0 {
		l := x.L3.Line(set, w)
		if v.Dirty {
			if c.winv && !x.L3.IsSRAMWay(w) {
				// Fig. 11a: invalidate the STT-RAM copy and write the
				// dirty block into SRAM instead.
				x.L3.Evict(set, w)
				if x.Prof != nil {
					x.Prof.OnL3Evict(v.Tag)
				}
				c.place(x, v.Tag, true, v.Loop, SrcDirty)
				return
			}
			l.Dirty = true
			l.Loop = v.Loop
			x.L3.Touch(set, w)
			x.dataWrite(set, w)
			x.Met.AddWrite(SrcDirty)
			return
		}
		// Clean victim with a duplicate: tag-only loop-bit refresh (LAP).
		l.Loop = v.Loop
		x.L3.Touch(set, w)
		x.tagAccess()
		x.Met.TagOnlyUpdates++
		return
	}
	src := SrcClean
	if v.Dirty {
		src = SrcDirty
	}
	if sram == 0 {
		// Not actually a hybrid cache; degrade to LAP insertion.
		x.insert(v.Tag, v.Dirty, v.Loop, src, c.lap.victimSelector(x))
		return
	}
	c.place(x, v.Tag, v.Dirty, v.Loop, src)
}

// place inserts a block with technology-aware placement.
func (c *Hybrid) place(x *Ctx, block uint64, dirty, loop bool, src WriteSource) {
	sram := x.L3.SRAMWays()
	ways := x.L3.Ways()
	if c.full {
		c.placeFull(x, block, dirty, loop, src)
		return
	}
	// Ablation stages: steer the victim region by loop-bit, otherwise
	// fall back to LAP's whole-set selection.
	selector := c.lap.victimSelector(x)
	switch {
	case c.loopSTT && loop:
		selector = func(s int) int { return x.L3.LoopVictimInRange(s, sram, ways) }
	case c.nloopSRAM && !loop:
		selector = func(s int) int { return x.L3.VictimInRange(s, 0, sram) }
	case c.winv && dirty:
		selector = func(s int) int { return x.L3.VictimInRange(s, 0, sram) }
	}
	x.insert(block, dirty, loop, src, selector)
}

// placeFull implements the complete Fig. 11 flow: insert into SRAM; on
// SRAM pressure migrate the MRU loop-block to STT-RAM (evicting an STT
// non-loop-block first), else evict the SRAM LRU block.
func (c *Hybrid) placeFull(x *Ctx, block uint64, dirty, loop bool, src WriteSource) {
	set := x.L3.SetOf(block)
	sram := x.L3.SRAMWays()
	ways := x.L3.Ways()

	if w := x.L3.InvalidWayIn(set, 0, sram); w >= 0 {
		c.installAt(x, set, w, block, dirty, loop, src)
		return
	}
	mruLoop := x.L3.MRUWhere(set, 0, sram, func(l *cache.Line) bool { return l.Loop })
	switch {
	case mruLoop >= 0:
		// Fig. 11b: migrate the MRU loop-block to STT-RAM, then reuse its
		// SRAM way for the incoming block.
		c.migrate(x, set, mruLoop, sram, ways)
		c.installAt(x, set, mruLoop, block, dirty, loop, src)
	case loop:
		// The incoming block is itself the only loop-block: it belongs in
		// STT-RAM directly.
		w := c.sttVictim(x, set, sram, ways)
		c.installAt(x, set, w, block, dirty, loop, src)
	default:
		// Fig. 11c: no loop-blocks anywhere — evict the SRAM LRU block.
		w := x.L3.VictimInRange(set, 0, sram)
		c.installAt(x, set, w, block, dirty, loop, src)
	}
}

// sttVictim frees and returns a way in the STT-RAM region: an invalid way
// if present, else the loop-aware victim (LRU non-loop-block first).
func (c *Hybrid) sttVictim(x *Ctx, set, sram, ways int) int {
	if w := x.L3.InvalidWayIn(set, sram, ways); w >= 0 {
		return w
	}
	return x.L3.LoopVictimInRange(set, sram, ways)
}

// migrate moves the line at (set, from) in SRAM into the STT-RAM region.
func (c *Hybrid) migrate(x *Ctx, set, from, sram, ways int) {
	to := c.sttVictim(x, set, sram, ways)
	x.evictVictim(set, to)
	src, ok := x.L3.Evict(set, from)
	if !ok {
		return
	}
	// Reading the block out of SRAM and writing it into STT-RAM.
	x.E.AddRead(x.regionOf(from))
	x.L3.InsertAt(set, to, src.Tag, src.Dirty, src.Loop)
	x.dataWrite(set, to)
	x.Met.MigrationWrites++
}

// installAt writes the incoming block into a specific way, evicting any
// occupant first.
func (c *Hybrid) installAt(x *Ctx, set, way int, block uint64, dirty, loop bool, src WriteSource) {
	x.evictVictim(set, way)
	x.L3.InsertAt(set, way, block, dirty, loop)
	x.dataWrite(set, way)
	x.Met.AddWrite(src)
	if x.Prof != nil {
		switch src {
		case SrcFill:
			x.Prof.OnFill(block)
		case SrcClean:
			x.Prof.OnCleanInsert(block)
		}
	}
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:            "Lhybrid",
		Description:     "LAP plus loop-block-aware SRAM/STT-RAM data placement",
		NeedsHybridLLC:  true,
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            9,
		New:             func(PolicyParams) Controller { return NewLhybrid() },
	})
}
