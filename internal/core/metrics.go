// Package core implements the paper's contribution: the inclusion
// properties between the private L2s and the shared LLC. It provides
// controllers for the three traditional policies (inclusive,
// non-inclusive, exclusive), the two dynamic switching baselines
// (FLEXclusion and Dswitch), the proposed Loop-block-Aware Policy (LAP)
// with its loop-bit identification and loop-aware set-dueling replacement,
// and the Lhybrid data-placement policy for hybrid SRAM/STT-RAM LLCs.
//
// A controller owns the LLC-side state machine; the hierarchy simulator
// (internal/sim) calls Fetch on every L2 miss and EvictL2 on every L2
// victim, exactly the two data paths the paper's Figure 8 draws.
package core

// WriteSource categorises a write to the LLC, matching the decomposition
// of the paper's Figure 15.
type WriteSource int

// Write sources: data-fills from memory, dirty victims from the L2, and
// clean victims from the L2.
const (
	SrcFill WriteSource = iota
	SrcDirty
	SrcClean
)

// Metrics accumulates the event counts every experiment in the paper
// reports. The controller updates the LLC-side counters; the simulator
// fills in the upper-level and end-of-run fields.
type Metrics struct {
	// L3Accesses, L3Hits and L3Misses count controller Fetch outcomes.
	L3Accesses uint64
	L3Hits     uint64
	L3Misses   uint64

	// WritesFill, WritesDirty and WritesClean decompose data-array writes
	// to the LLC by source (Fig. 15).
	WritesFill  uint64
	WritesDirty uint64
	WritesClean uint64

	// MigrationWrites counts hybrid-LLC SRAM→STT migrations (Lhybrid).
	MigrationWrites uint64

	// TagOnlyUpdates counts LAP's loop-bit refreshes on dropped clean
	// victims — tag-array writes that spare a full data-array write.
	TagOnlyUpdates uint64

	// L3Evictions and L3DirtyEvictions count replacement victims.
	L3Evictions      uint64
	L3DirtyEvictions uint64

	// MemReads and MemWrites count main-memory traffic.
	MemReads  uint64
	MemWrites uint64

	// BackInvalidations counts inclusive-policy upper-level kills.
	BackInvalidations uint64

	// Upper-level counters, filled by the simulator.
	L1Accesses       uint64
	L1Misses         uint64
	L2Accesses       uint64
	L2Misses         uint64
	L2Evictions      uint64
	L2CleanEvictions uint64
	L2DirtyEvictions uint64

	// SnoopProbes and SnoopDirtyTransfers count coherence activity for
	// multi-threaded runs (Fig. 20c); SnoopTraffic is the weighted bus
	// message total.
	SnoopProbes         uint64
	SnoopDirtyTransfers uint64
	SnoopTraffic        uint64

	// Prefetches counts L2 prefetch fills (PrefetchDegree > 0).
	Prefetches uint64

	// BypassedWrites counts L2 victims a bypass predictor diverted
	// around the LLC (DeadWriteBypass, ReuseDetector, RDCopyback).
	BypassedWrites uint64

	// BypassedFills counts demand fills a bypass predictor served to the
	// core without installing the block in the LLC (ReuseDetector).
	BypassedFills uint64

	// MSHRMerges counts LLC misses that merged with an outstanding fill
	// of the same block instead of issuing a redundant memory read;
	// MSHRStalls counts misses that waited for a free miss register.
	// Both are zero unless Config.MSHREntries is set.
	MSHRMerges uint64
	MSHRStalls uint64

	// Instructions and Cycles summarise the run.
	Instructions uint64
	Cycles       uint64
}

// Add accumulates o's counts into m. The banked simulator uses it to fold
// per-core counter shards back into the run's metrics; all counters are
// event counts, so addition is exact regardless of interleaving.
func (m *Metrics) Add(o *Metrics) {
	m.L3Accesses += o.L3Accesses
	m.L3Hits += o.L3Hits
	m.L3Misses += o.L3Misses
	m.WritesFill += o.WritesFill
	m.WritesDirty += o.WritesDirty
	m.WritesClean += o.WritesClean
	m.MigrationWrites += o.MigrationWrites
	m.TagOnlyUpdates += o.TagOnlyUpdates
	m.L3Evictions += o.L3Evictions
	m.L3DirtyEvictions += o.L3DirtyEvictions
	m.MemReads += o.MemReads
	m.MemWrites += o.MemWrites
	m.BackInvalidations += o.BackInvalidations
	m.L1Accesses += o.L1Accesses
	m.L1Misses += o.L1Misses
	m.L2Accesses += o.L2Accesses
	m.L2Misses += o.L2Misses
	m.L2Evictions += o.L2Evictions
	m.L2CleanEvictions += o.L2CleanEvictions
	m.L2DirtyEvictions += o.L2DirtyEvictions
	m.SnoopProbes += o.SnoopProbes
	m.SnoopDirtyTransfers += o.SnoopDirtyTransfers
	m.SnoopTraffic += o.SnoopTraffic
	m.Prefetches += o.Prefetches
	m.BypassedWrites += o.BypassedWrites
	m.BypassedFills += o.BypassedFills
	m.MSHRMerges += o.MSHRMerges
	m.MSHRStalls += o.MSHRStalls
}

// Sub subtracts o's counts from m, including the end-of-run
// Instructions and Cycles fields. The sampled executor uses it to turn
// two snapshots into an interval delta.
func (m *Metrics) Sub(o *Metrics) {
	m.L3Accesses -= o.L3Accesses
	m.L3Hits -= o.L3Hits
	m.L3Misses -= o.L3Misses
	m.WritesFill -= o.WritesFill
	m.WritesDirty -= o.WritesDirty
	m.WritesClean -= o.WritesClean
	m.MigrationWrites -= o.MigrationWrites
	m.TagOnlyUpdates -= o.TagOnlyUpdates
	m.L3Evictions -= o.L3Evictions
	m.L3DirtyEvictions -= o.L3DirtyEvictions
	m.MemReads -= o.MemReads
	m.MemWrites -= o.MemWrites
	m.BackInvalidations -= o.BackInvalidations
	m.L1Accesses -= o.L1Accesses
	m.L1Misses -= o.L1Misses
	m.L2Accesses -= o.L2Accesses
	m.L2Misses -= o.L2Misses
	m.L2Evictions -= o.L2Evictions
	m.L2CleanEvictions -= o.L2CleanEvictions
	m.L2DirtyEvictions -= o.L2DirtyEvictions
	m.SnoopProbes -= o.SnoopProbes
	m.SnoopDirtyTransfers -= o.SnoopDirtyTransfers
	m.SnoopTraffic -= o.SnoopTraffic
	m.Prefetches -= o.Prefetches
	m.BypassedWrites -= o.BypassedWrites
	m.BypassedFills -= o.BypassedFills
	m.MSHRMerges -= o.MSHRMerges
	m.MSHRStalls -= o.MSHRStalls
	m.Instructions -= o.Instructions
	m.Cycles -= o.Cycles
}

// AddScaled accumulates k copies of o into m (again including
// Instructions and Cycles): the sampled executor extrapolates a full
// run by adding each representative interval's delta once per interval
// in its cluster.
func (m *Metrics) AddScaled(o *Metrics, k uint64) {
	m.L3Accesses += o.L3Accesses * k
	m.L3Hits += o.L3Hits * k
	m.L3Misses += o.L3Misses * k
	m.WritesFill += o.WritesFill * k
	m.WritesDirty += o.WritesDirty * k
	m.WritesClean += o.WritesClean * k
	m.MigrationWrites += o.MigrationWrites * k
	m.TagOnlyUpdates += o.TagOnlyUpdates * k
	m.L3Evictions += o.L3Evictions * k
	m.L3DirtyEvictions += o.L3DirtyEvictions * k
	m.MemReads += o.MemReads * k
	m.MemWrites += o.MemWrites * k
	m.BackInvalidations += o.BackInvalidations * k
	m.L1Accesses += o.L1Accesses * k
	m.L1Misses += o.L1Misses * k
	m.L2Accesses += o.L2Accesses * k
	m.L2Misses += o.L2Misses * k
	m.L2Evictions += o.L2Evictions * k
	m.L2CleanEvictions += o.L2CleanEvictions * k
	m.L2DirtyEvictions += o.L2DirtyEvictions * k
	m.SnoopProbes += o.SnoopProbes * k
	m.SnoopDirtyTransfers += o.SnoopDirtyTransfers * k
	m.SnoopTraffic += o.SnoopTraffic * k
	m.Prefetches += o.Prefetches * k
	m.BypassedWrites += o.BypassedWrites * k
	m.BypassedFills += o.BypassedFills * k
	m.MSHRMerges += o.MSHRMerges * k
	m.MSHRStalls += o.MSHRStalls * k
	m.Instructions += o.Instructions * k
	m.Cycles += o.Cycles * k
}

// AddWrite records a data-array write by source.
func (m *Metrics) AddWrite(src WriteSource) {
	switch src {
	case SrcFill:
		m.WritesFill++
	case SrcDirty:
		m.WritesDirty++
	case SrcClean:
		m.WritesClean++
	}
}

// WritesToLLC is the total data-array write traffic (Fig. 15's bar
// height), excluding hybrid migrations.
func (m *Metrics) WritesToLLC() uint64 {
	return m.WritesFill + m.WritesDirty + m.WritesClean
}

// MPKI returns LLC misses per kilo-instruction (Fig. 18).
func (m *Metrics) MPKI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return 1000 * float64(m.L3Misses) / float64(m.Instructions)
}

// IPC returns aggregate retired instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}
