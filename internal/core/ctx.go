package core

import (
	"repro/internal/cache"
	"repro/internal/energy"
)

// Banks models LLC bank contention: each bank serialises its accesses, so
// a burst of long STT-RAM writes delays subsequent reads to the same bank.
// This is the mechanism behind the paper's observation that reducing
// long-latency writes can *improve* performance.
type Banks struct {
	next []uint64
	ops  []uint64
	mask uint64
}

// NewBanks returns a bank model with n banks; n must be a power of two.
func NewBanks(n int) *Banks {
	if n <= 0 || n&(n-1) != 0 {
		panic("core: bank count must be a positive power of two")
	}
	return &Banks{next: make([]uint64, n), ops: make([]uint64, n), mask: uint64(n - 1)}
}

// BankOf maps a set index to its bank.
func (b *Banks) BankOf(set int) int { return int(uint64(set) & b.mask) }

// Access schedules an access that keeps the bank busy for occ cycles and
// completes after lat cycles, starting no earlier than now. It returns
// the total latency (queueing + lat) seen by the access. Banks are
// internally sub-banked, so occ is typically a fraction of lat.
func (b *Banks) Access(set int, now, occ, lat uint64) uint64 {
	bank := b.BankOf(set)
	b.ops[bank]++
	start := now
	if b.next[bank] > start {
		start = b.next[bank]
	}
	b.next[bank] = start + occ
	return start - now + lat
}

// Ops returns the per-bank access counts accumulated so far (the bank
// utilization profile exported through Result.BankOps and /metrics).
func (b *Banks) Ops() []uint64 { return b.ops }

// Ctx is the environment a Controller operates in: the LLC itself, the
// energy meter, metrics, optional profiler, the bank timing model, and
// the per-region latencies. The simulator refreshes Now before each call.
type Ctx struct {
	// L3 is the shared last-level cache.
	L3 *cache.Cache
	// E meters LLC energy. Region 0 is the whole data array for a
	// single-technology LLC; the hybrid LLC uses region 0 for SRAM ways
	// and region 1 for STT-RAM ways.
	E *energy.Meter
	// Met accumulates event counts.
	Met *Metrics
	// Prof, when non-nil, tracks per-block redundancy statistics.
	Prof *Profiler
	// Banks models bank contention.
	Banks *Banks
	// ReadCyc and WriteCyc are data-array access latencies per region;
	// ReadOcc and WriteOcc are the (sub-banked, hence shorter) bank
	// occupancies those accesses impose.
	ReadCyc  [2]uint64
	WriteCyc [2]uint64
	ReadOcc  [2]uint64
	WriteOcc [2]uint64
	// MemCycles is the main-memory access latency when MemAccess is nil.
	MemCycles uint64
	// MemAccess, when non-nil, models main-memory timing (e.g. the DRAM
	// row-buffer model in internal/dram); it receives the block number,
	// the current cycle, and whether the access is a write.
	MemAccess func(block, now uint64, write bool) uint64
	// MSHR, when non-nil, bounds outstanding LLC misses: concurrent
	// misses to the same block merge with the in-flight fill, and a full
	// table stalls new misses (Config.MSHREntries).
	MSHR *cache.MSHR
	// Now is the requesting core's current cycle.
	Now uint64
	// BackInvalidate, set by the simulator, removes the block from every
	// upper-level cache and reports whether any copy was dirty. Only the
	// inclusive controller uses it.
	BackInvalidate func(block uint64) bool
	// EvictObserver, when non-nil, is notified of every LLC replacement
	// eviction (dead-write predictors train on it).
	EvictObserver func(block uint64)
	// Functional switches the context into functional-warmup mode for
	// sampled simulation: cache state (tags, recency, loop bits, dueling)
	// still updates through the normal controller paths, and the cheap
	// event counters in Met keep counting (interval signatures need them),
	// but energy metering, bank/DRAM timing, and the MSHR are skipped —
	// their state must not drift while the clock is frozen.
	Functional bool
}

// regionOf maps an L3 way to its energy/timing region.
func (x *Ctx) regionOf(way int) energy.RegionID {
	if x.L3.SRAMWays() > 0 && way >= x.L3.SRAMWays() {
		return energy.RegionSTT
	}
	return energy.RegionSRAM // region 0 doubles as "the" region for single-tech
}

// tagAccess meters one tag-array access.
func (x *Ctx) tagAccess() {
	if x.Functional {
		return
	}
	x.E.AddTag()
}

// dataRead meters and times a data-array read of (set, way), returning
// the latency including bank queueing.
func (x *Ctx) dataRead(set, way int) uint64 {
	if x.Functional {
		return 0
	}
	r := x.regionOf(way)
	x.E.AddRead(r)
	return x.Banks.Access(set, x.Now, x.occ(x.ReadOcc[r], x.ReadCyc[r]), x.ReadCyc[r])
}

// occ falls back to the full latency when no occupancy was configured.
func (x *Ctx) occ(configured, lat uint64) uint64 {
	if configured > 0 {
		return configured
	}
	return lat
}

// dataWrite meters and times a data-array write of (set, way). Fills and
// victim insertions are off the requester's critical path, so callers
// usually discard the returned latency; the bank stays occupied either
// way, which is how write pressure turns into read stalls.
func (x *Ctx) dataWrite(set, way int) uint64 {
	if x.Functional {
		return 0
	}
	r := x.regionOf(way)
	x.E.AddWrite(r)
	return x.Banks.Access(set, x.Now, x.occ(x.WriteOcc[r], x.WriteCyc[r]), x.WriteCyc[r])
}

// memRead fetches a block from main memory, returning its latency. With
// an MSHR attached, a miss to a block already in flight merges with the
// outstanding fill (no new memory read), and a full table delays the
// issue until the earliest outstanding fill retires.
func (x *Ctx) memRead(block uint64) uint64 {
	if x.Functional {
		// Count the read (miss-traffic signatures need it) but leave the
		// MSHR and DRAM models untouched: their state is keyed to the
		// cycle clock, which does not advance in functional mode.
		x.Met.MemReads++
		return 0
	}
	if t := x.MSHR; t != nil {
		if wait, ok := t.Merge(block, x.Now); ok {
			x.Met.MSHRMerges++
			return wait
		}
		delay, stalled := t.Reserve(x.Now)
		if stalled {
			x.Met.MSHRStalls++
		}
		issue := x.Now + delay
		x.Met.MemReads++
		lat := x.MemCycles
		if x.MemAccess != nil {
			lat = x.MemAccess(block, issue, false)
		}
		t.Fill(block, issue+lat)
		return delay + lat
	}
	x.Met.MemReads++
	if x.MemAccess != nil {
		return x.MemAccess(block, x.Now, false)
	}
	return x.MemCycles
}

// memWrite writes a block back to main memory. Writebacks are off the
// requester's critical path, so the latency is discarded, but the DRAM
// model still sees the access (row-buffer and bank occupancy effects).
func (x *Ctx) memWrite(block uint64) {
	x.Met.MemWrites++
	if x.MemAccess != nil && !x.Functional {
		x.MemAccess(block, x.Now, true)
	}
}

// evictVictim processes the replacement victim at (set, way): a dirty
// victim is read out and written back to memory; the profiler learns the
// LLC no longer holds the block. The way is left invalid.
func (x *Ctx) evictVictim(set, way int) {
	v, ok := x.L3.Evict(set, way)
	if !ok {
		return
	}
	x.Met.L3Evictions++
	if v.Dirty {
		x.Met.L3DirtyEvictions++
		x.memWrite(v.Tag)
		if !x.Functional {
			// Reading the block out of the data array for writeback costs a
			// data-array read.
			x.E.AddRead(x.regionOf(way))
		}
	}
	if x.Prof != nil {
		x.Prof.OnL3Evict(v.Tag)
	}
	if x.EvictObserver != nil {
		x.EvictObserver(v.Tag)
	}
	if x.BackInvalidate != nil {
		if dirtyAbove := x.BackInvalidate(v.Tag); dirtyAbove {
			x.memWrite(v.Tag)
		}
		x.Met.BackInvalidations++
	}
}

// insert places a block into the L3 at the victim chosen by selectWay,
// charging a data write attributed to src. It returns the way used.
func (x *Ctx) insert(block uint64, dirty, loop bool, src WriteSource, selectWay func(set int) int) int {
	set := x.L3.SetOf(block)
	way := selectWay(set)
	x.evictVictim(set, way)
	x.L3.InsertAt(set, way, block, dirty, loop)
	x.dataWrite(set, way)
	x.Met.AddWrite(src)
	if x.Prof != nil {
		switch src {
		case SrcFill:
			x.Prof.OnFill(block)
		case SrcClean:
			x.Prof.OnCleanInsert(block)
		}
	}
	return way
}

// FetchResult reports the outcome of a Fetch to the hierarchy.
type FetchResult struct {
	// Hit reports whether the LLC served the block.
	Hit bool
	// Lat is the L3-side latency (cycles) the requesting core observed.
	Lat uint64
	// Loop is the loop-bit value the L2 should attach to its new copy:
	// true exactly when the block was served by an LLC hit under LAP
	// (Fig. 10c).
	Loop bool
}

// Controller is an inclusion property between the private L2s and the
// shared LLC. Implementations must be deterministic.
type Controller interface {
	// Name identifies the policy ("non-inclusive", "LAP", ...).
	Name() string
	// Fetch handles an L2 miss for the given block.
	Fetch(x *Ctx, block uint64) FetchResult
	// EvictL2 handles a victim evicted by an L2.
	EvictL2(x *Ctx, v cache.Line)
}
