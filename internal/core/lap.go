package core

import (
	"repro/internal/cache"
)

// ReplacementMode selects how LAP chooses LLC replacement victims.
type ReplacementMode int

// Replacement modes for LAP (paper Section III-B and Fig. 19):
// DuelingReplacement is the full design (set-dueling between loop-aware
// and LRU); AlwaysLRU and AlwaysLoopAware are the LAP-LRU and LAP-Loop
// ablation variants.
const (
	DuelingReplacement ReplacementMode = iota
	AlwaysLRU
	AlwaysLoopAware
)

// LAP implements the paper's Loop-block-Aware Policy (Section III):
//
//   - L3 misses fill only the upper levels, eliminating redundant
//     data-fills (exclusive-style fetch).
//   - L3 hits do not invalidate the LLC copy, eliminating redundant
//     clean-data re-insertions (non-inclusive-style hit), and set the
//     loop-bit of the L2 copy (Fig. 10c).
//   - Clean L2 victims with an LLC duplicate are dropped with a tag-only
//     loop-bit refresh; those without a duplicate are inserted. Dirty
//     victims are written as usual.
//   - Replacement prefers evicting non-loop-blocks, guarded by
//     set-dueling against plain LRU (Fig. 9).
type LAP struct {
	mode ReplacementMode
	duel *cache.Duel
}

// NewLAP returns the full LAP controller with set-dueling replacement
// using the paper's parameters (1/64 leader sets, 10M-cycle windows).
func NewLAP() *LAP { return NewLAPVariant(DuelingReplacement) }

// NewLAPVariant returns a LAP controller with the given replacement mode.
func NewLAPVariant(mode ReplacementMode) *LAP {
	return &LAP{mode: mode, duel: cache.NewDuel()}
}

// Name implements Controller.
func (c *LAP) Name() string {
	switch c.mode {
	case AlwaysLRU:
		return "LAP-LRU"
	case AlwaysLoopAware:
		return "LAP-Loop"
	default:
		return "LAP"
	}
}

// Duel exposes the set-dueling state for tests and stats.
func (c *LAP) Duel() *cache.Duel { return c.duel }

// victimSelector returns the victim-choice function for a set, honouring
// the replacement mode and, under dueling, the set's current policy.
func (c *LAP) victimSelector(x *Ctx) func(set int) int {
	return func(set int) int {
		loopAware := false
		switch c.mode {
		case AlwaysLoopAware:
			loopAware = true
		case DuelingReplacement:
			loopAware = c.duel.PolicyOf(set) == cache.LeaderA
		}
		if loopAware {
			return x.L3.LoopVictim(set)
		}
		return x.L3.Victim(set)
	}
}

// Fetch implements Controller: no fill on miss; no invalidation on hit;
// hits mark the outgoing copy as a potential loop-block.
func (c *LAP) Fetch(x *Ctx, block uint64) FetchResult {
	x.Met.L3Accesses++
	x.tagAccess()
	set := x.L3.SetOf(block)
	if c.mode == DuelingReplacement {
		c.duel.Observe(x.Now)
	}
	if w := x.L3.Lookup(block); w >= 0 {
		x.Met.L3Hits++
		lat := x.dataRead(set, w)
		// The copy stays; its own loop-bit is refreshed when the L2 copy
		// comes back (Fig. 10b). Mark the L2 copy as loop-candidate.
		if x.Prof != nil {
			x.Prof.OnFetch(block, true)
		}
		return FetchResult{Hit: true, Lat: lat, Loop: true}
	}
	x.Met.L3Misses++
	lat := x.memRead(block)
	if c.mode == DuelingReplacement {
		c.duel.AddCost(c.duel.RoleOf(set), 1)
	}
	if x.Prof != nil {
		x.Prof.OnFetch(block, false)
	}
	// Data is installed only in the upper levels: no redundant data-fill.
	return FetchResult{Lat: lat}
}

// EvictL2 implements Controller (Fig. 8 and Fig. 10b).
func (c *LAP) EvictL2(x *Ctx, v cache.Line) {
	x.tagAccess()
	set := x.L3.SetOf(v.Tag)
	if w := x.L3.Probe(v.Tag); w >= 0 {
		l := x.L3.Line(set, w)
		if v.Dirty {
			// Dirty data and loop-bit are both updated in place.
			l.Dirty = true
			l.Loop = v.Loop
			x.L3.Touch(set, w)
			x.dataWrite(set, w)
			x.Met.AddWrite(SrcDirty)
			return
		}
		// Clean victim with a duplicate: drop the data, refresh only the
		// loop-bit in the SRAM tag array — the write LAP exists to avoid.
		l.Loop = v.Loop
		x.L3.Touch(set, w)
		x.tagAccess()
		x.Met.TagOnlyUpdates++
		return
	}
	src := SrcClean
	if v.Dirty {
		src = SrcDirty
	}
	x.insert(v.Tag, v.Dirty, v.Loop, src, c.victimSelector(x))
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:            "LAP-LRU",
		Description:     "LAP data flow with plain LRU replacement",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            6,
		New:             func(PolicyParams) Controller { return NewLAPVariant(AlwaysLRU) },
	})
	RegisterPolicy(PolicyInfo{
		Name:            "LAP-Loop",
		Description:     "LAP data flow, always evicting non-loop-blocks first",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            7,
		New:             func(PolicyParams) Controller { return NewLAPVariant(AlwaysLoopAware) },
	})
	RegisterPolicy(PolicyInfo{
		Name:            "LAP",
		Description:     "LAP with set-dueling between LRU and loop-aware replacement",
		SampledEligible: true,
		BankedEligible:  true,
		Rank:            8,
		New:             func(PolicyParams) Controller { return NewLAP() },
	})
}
