package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// encodeBinary renders accesses in the binary format (test helper for
// seeding the fuzz corpus).
func encodeBinary(t testing.TB, accs []Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(accs)); err != nil {
		t.Fatalf("encoding seed: %v", err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the binary decoder. Corrupt
// inputs must surface as errors — never panics. Inputs that decode
// cleanly are a valid access stream, which must then survive every codec
// in the package exactly: binary, gzip, and (when representable) text.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a trace"))
	f.Add(binaryMagic[:])                  // header, zero records
	f.Add(append(binaryMagic[:], 1, 2, 3)) // truncated record
	f.Add(encodeBinary(f, nil))
	f.Add(encodeBinary(f, []Access{
		{Addr: 0x1000, Write: false, Instrs: 1},
		{Addr: 0xdeadbeef, Write: true, Instrs: 65535},
		{Addr: 0, Write: false, Instrs: 0}, // binary allows Instrs=0; text rejects it
	}))
	corrupt := encodeBinary(f, []Access{{Addr: 42, Instrs: 3}})
	corrupt[2] ^= 0xff // damage the magic
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		accs := Drain(r)
		if err := r.Err(); err != nil {
			// Corrupt input: a typed error (not a panic) is the contract.
			var ec *ErrCorrupt
			if !errors.As(err, &ec) {
				t.Fatalf("decode error %T is not *ErrCorrupt: %v", err, err)
			}
			if ec.Offset < 0 || ec.Offset > int64(len(data)) || ec.Reason == "" {
				t.Fatalf("ErrCorrupt lost context: %+v for %d input bytes", ec, len(data))
			}
			return
		}

		// Binary: encode → decode must reproduce the stream exactly.
		r2 := NewReader(bytes.NewReader(encodeBinary(t, accs)))
		if got := Drain(r2); r2.Err() != nil || !streamsEqual(accs, got) {
			t.Fatalf("binary round trip: err=%v\n in: %v\nout: %v", r2.Err(), accs, got)
		}

		// Gzip: the compressed path must be transparent.
		var gz bytes.Buffer
		if _, err := WriteAllGzip(&gz, NewSliceSource(accs)); err != nil {
			t.Fatalf("gzip encode: %v", err)
		}
		ar, err := NewAutoReader(bytes.NewReader(gz.Bytes()))
		if err != nil {
			t.Fatalf("gzip open: %v", err)
		}
		if got := Drain(ar); ar.Err() != nil || !streamsEqual(accs, got) {
			t.Fatalf("gzip round trip: err=%v\n in: %v\nout: %v", ar.Err(), accs, got)
		}

		// Text: round-trips exactly when representable. The text format
		// requires Instrs >= 1, so streams with a zero-instruction record
		// must be rejected by the parser rather than decoded differently.
		var txt bytes.Buffer
		if _, err := WriteText(&txt, NewSliceSource(accs)); err != nil {
			t.Fatalf("text encode: %v", err)
		}
		got, err := ParseText(bytes.NewReader(txt.Bytes()))
		if hasZeroInstrs(accs) {
			if err == nil {
				t.Fatalf("text parser accepted a zero-instruction record: %v", accs)
			}
		} else if err != nil || !streamsEqual(accs, got) {
			t.Fatalf("text round trip: err=%v\n in: %v\nout: %v", err, accs, got)
		}
	})
}

func streamsEqual(a, b []Access) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func hasZeroInstrs(accs []Access) bool {
	for _, a := range accs {
		if a.Instrs == 0 {
			return true
		}
	}
	return false
}

// TestCorruptTraceTyped pins the ErrCorrupt contract on hand-mangled
// inputs: the offset points at the damage and the reason names it.
func TestCorruptTraceTyped(t *testing.T) {
	good := encodeBinary(t, []Access{{Addr: 42, Instrs: 3}, {Addr: 43, Instrs: 1}})
	cases := []struct {
		name       string
		data       []byte
		wantOffset int64
		wantReason string
	}{
		{"damaged magic", append([]byte("XAPTRC01"), good[8:]...), 0, "bad magic"},
		{"truncated mid-record", good[:len(good)-4], 8 + recordSize, "truncated record"},
		{"garbage", []byte("definitely not a trace, long enough for a header"), 0, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.data))
			Drain(r)
			var ec *ErrCorrupt
			if !errors.As(r.Err(), &ec) {
				t.Fatalf("err = %v (%T), want *ErrCorrupt", r.Err(), r.Err())
			}
			if ec.Offset != tc.wantOffset {
				t.Errorf("offset = %d, want %d", ec.Offset, tc.wantOffset)
			}
			if !bytes.Contains([]byte(ec.Reason), []byte(tc.wantReason)) {
				t.Errorf("reason = %q, want it to mention %q", ec.Reason, tc.wantReason)
			}
		})
	}
}

// TestFaultPointTraceDecode drives the trace.decode injection point: a
// perfectly healthy stream fails with a typed ErrCorrupt wrapping the
// injected fault.
func TestFaultPointTraceDecode(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.Spec{Point: fault.PointTraceDecode, Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	data := encodeBinary(t, []Access{{Addr: 42, Instrs: 3}})
	r := NewReader(bytes.NewReader(data))
	if accs := Drain(r); len(accs) != 0 {
		t.Fatalf("faulted decode yielded %d accesses", len(accs))
	}
	var ec *ErrCorrupt
	var inj *fault.InjectedError
	if !errors.As(r.Err(), &ec) || !errors.As(r.Err(), &inj) {
		t.Fatalf("err = %v, want *ErrCorrupt wrapping *fault.InjectedError", r.Err())
	}
	// Count exhausted: the same bytes decode cleanly on retry.
	r2 := NewReader(bytes.NewReader(data))
	if accs := Drain(r2); r2.Err() != nil || len(accs) != 1 {
		t.Fatalf("retry after spent fault: %d accesses, err %v", len(accs), r2.Err())
	}
}

// TestCodecFuzzSeeds runs the fuzz body over a deterministic corpus in
// ordinary `go test` runs, so the round-trip property is exercised by CI
// even when fuzzing is never invoked.
func TestCodecFuzzSeeds(t *testing.T) {
	// Reuse the binary property check over a generated corpus.
	for seed := uint64(1); seed <= 5; seed++ {
		accs := make([]Access, 0, 200)
		x := seed
		for i := 0; i < 200; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			accs = append(accs, Access{
				Addr:   x,
				Write:  x&1 == 0,
				Instrs: uint16(x>>32)%100 + 1,
			})
		}
		data := encodeBinary(t, accs)
		r := NewReader(bytes.NewReader(data))
		if got := Drain(r); r.Err() != nil || !streamsEqual(accs, got) {
			t.Fatalf("seed %d: binary round trip failed: %v", seed, r.Err())
		}
		var txt bytes.Buffer
		if _, err := WriteText(&txt, NewSliceSource(accs)); err != nil {
			t.Fatal(err)
		}
		got, err := ParseText(&txt)
		if err != nil || !streamsEqual(accs, got) {
			t.Fatalf("seed %d: text round trip failed: %v", seed, err)
		}
	}
}
