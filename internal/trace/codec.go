package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/fault"
)

// ErrCorrupt is the typed decoding failure of the binary trace reader:
// it carries the byte offset of the damage and a reason, so an API layer
// can tell a client where its upload went bad instead of returning an
// opaque string. It wraps the underlying I/O error (when there is one),
// preserving errors.As/Is chains — notably http.MaxBytesError through
// the lapserved upload path.
type ErrCorrupt struct {
	// Offset is the stream offset in bytes where decoding failed.
	Offset int64
	// Reason describes the corruption.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

func (e *ErrCorrupt) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: corrupt at byte %d: %s", e.Offset, e.Reason)
}

func (e *ErrCorrupt) Unwrap() error { return e.Err }

// Binary trace format: an 8-byte magic header followed by fixed 11-byte
// little-endian records (addr uint64, flags uint8, instrs uint16). The
// format is deliberately simple: traces are bulk data, not documents.

var binaryMagic = [8]byte{'L', 'A', 'P', 'T', 'R', 'C', '0', '1'}

const recordSize = 11

const flagWrite = 1 << 0

// Writer streams accesses to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	n     uint64
}

// NewWriter returns a trace writer targeting w. The header is emitted
// lazily on the first Write so that an abandoned writer leaves no bytes.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one access to the trace.
func (tw *Writer) Write(a Access) error {
	if !tw.wrote {
		if _, err := tw.w.Write(binaryMagic[:]); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		tw.wrote = true
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], a.Addr)
	if a.Write {
		rec[8] = flagWrite
	}
	binary.LittleEndian.PutUint16(rec[9:11], a.Instrs)
	if _, err := tw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.n++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush drains buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// WriteAll copies src to w in the binary format and flushes.
func WriteAll(w io.Writer, src Source) (uint64, error) {
	tw := NewWriter(w)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(a); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Reader replays a binary trace from an io.Reader. It implements Source;
// decoding errors surface through Err — always as *ErrCorrupt — after
// Next reports false.
type Reader struct {
	r      *bufio.Reader
	header bool
	off    int64
	err    error
}

// NewReader returns a Source reading the binary trace format from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next implements Source.
func (tr *Reader) Next() (Access, bool) {
	if tr.err != nil {
		return Access{}, false
	}
	if !tr.header {
		if err := fault.Inject(fault.PointTraceDecode, ""); err != nil {
			tr.err = &ErrCorrupt{Offset: tr.off, Reason: "injected fault", Err: err}
			return Access{}, false
		}
		var magic [8]byte
		if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
			// A completely empty input is a valid empty trace (the writer
			// emits its header lazily, so zero records mean zero bytes).
			if err != io.EOF {
				tr.err = &ErrCorrupt{Offset: tr.off, Reason: "reading header", Err: err}
			}
			return Access{}, false
		}
		if magic != binaryMagic {
			tr.err = &ErrCorrupt{Offset: tr.off, Reason: "bad magic; not a LAP binary trace"}
			return Access{}, false
		}
		tr.header = true
		tr.off += int64(len(magic))
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if err != io.EOF {
			tr.err = &ErrCorrupt{Offset: tr.off, Reason: "truncated record", Err: err}
		}
		return Access{}, false
	}
	tr.off += recordSize
	return Access{
		Addr:   binary.LittleEndian.Uint64(rec[0:8]),
		Write:  rec[8]&flagWrite != 0,
		Instrs: binary.LittleEndian.Uint16(rec[9:11]),
	}, true
}

// Err returns the first decoding error encountered, or nil on clean EOF.
// A non-nil error is always a *ErrCorrupt.
func (tr *Reader) Err() error { return tr.err }

// Text format: one access per line, "R|W <hex addr> <instrs>", with '#'
// comments. Intended for hand-written tests and human inspection.

// WriteText renders src to w in the text trace format.
func WriteText(w io.Writer, src Source) (uint64, error) {
	bw := bufio.NewWriter(w)
	var n uint64
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%c %x %d\n", op, a.Addr, a.Instrs); err != nil {
			return n, fmt.Errorf("trace: writing text record: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ParseText parses the text trace format into a slice of accesses.
func ParseText(r io.Reader) ([]Access, error) {
	sc := bufio.NewScanner(r)
	var out []Access
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W addr instrs', got %q", lineNo, line)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		instrs, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad instruction count: %w", lineNo, err)
		}
		if instrs == 0 {
			return nil, fmt.Errorf("trace: line %d: instruction count must be >= 1", lineNo)
		}
		out = append(out, Access{Addr: addr, Write: write, Instrs: uint16(instrs)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning text: %w", err)
	}
	return out, nil
}
