package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Gzip support: the binary record format compresses ~6-8x (addresses are
// highly redundant), so large captured traces are stored gzipped. Readers
// auto-detect compression from the gzip magic bytes.

// GzipWriter writes the binary trace format through gzip. Close must be
// called to flush the compressed stream.
type GzipWriter struct {
	*Writer
	gz *gzip.Writer
}

// NewGzipWriter returns a trace writer that gzip-compresses its output.
func NewGzipWriter(w io.Writer) *GzipWriter {
	gz := gzip.NewWriter(w)
	return &GzipWriter{Writer: NewWriter(gz), gz: gz}
}

// Close flushes buffered records and finalises the gzip stream.
func (w *GzipWriter) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if err := w.gz.Close(); err != nil {
		return fmt.Errorf("trace: closing gzip stream: %w", err)
	}
	return nil
}

// WriteAllGzip copies src to w as a gzipped binary trace.
func WriteAllGzip(w io.Writer, src Source) (uint64, error) {
	gw := NewGzipWriter(w)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := gw.Write(a); err != nil {
			return gw.Count(), err
		}
	}
	return gw.Count(), gw.Close()
}

// NewAutoReader returns a binary-trace Source that transparently handles
// both plain and gzip-compressed inputs, sniffing the gzip magic bytes.
func NewAutoReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gzr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		return NewReader(gzr), nil
	}
	return NewReader(br), nil
}
