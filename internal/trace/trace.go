// Package trace defines the memory-reference stream that drives the
// simulator, plus binary and text codecs so traces can be captured to disk
// and replayed. Workload surrogates (internal/workload) generate accesses
// on the fly through the same Source interface, so the simulator cannot
// tell a synthetic stream from a recorded one.
package trace

// Access is one memory reference in a core's instruction stream.
type Access struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Write reports whether the reference is a store.
	Write bool
	// Instrs is the number of instructions retired by this reference's
	// instruction and the non-memory instructions since the previous
	// reference. It is at least 1 and lets the simulator convert an
	// access stream into instruction counts and base execution cycles.
	Instrs uint16
}

// Source produces a stream of accesses for one core. Next reports ok=false
// when the stream is exhausted.
type Source interface {
	Next() (a Access, ok bool)
}

// SliceSource replays a fixed slice of accesses; useful in tests and for
// traces loaded fully into memory.
type SliceSource struct {
	accs []Access
	pos  int
}

// NewSliceSource returns a Source over the given accesses.
func NewSliceSource(accs []Access) *SliceSource { return &SliceSource{accs: accs} }

// Next implements Source.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.accs) {
		return Access{}, false
	}
	a := s.accs[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limited wraps a source and truncates it after n accesses.
type Limited struct {
	src  Source
	left uint64
}

// Limit returns a Source that yields at most n accesses from src.
func Limit(src Source, n uint64) *Limited { return &Limited{src: src, left: n} }

// Next implements Source.
func (l *Limited) Next() (Access, bool) {
	if l.left == 0 {
		return Access{}, false
	}
	a, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Access{}, false
	}
	l.left--
	return a, true
}

// Offset shifts every address from src by a fixed base, giving each core
// in a multi-programmed mix a disjoint address space (the paper runs
// duplicate copies of SPEC2006 benchmarks, one per core).
type Offset struct {
	src  Source
	base uint64
}

// WithOffset returns a Source whose addresses are src's plus base.
func WithOffset(src Source, base uint64) *Offset { return &Offset{src: src, base: base} }

// Next implements Source.
func (o *Offset) Next() (Access, bool) {
	a, ok := o.src.Next()
	if !ok {
		return Access{}, false
	}
	a.Addr += o.base
	return a, true
}

// Drain reads every access from src into a slice (test helper and codec
// round-trip support). Use with bounded sources only.
func Drain(src Source) []Access {
	var out []Access
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
