// Package trace defines the memory-reference stream that drives the
// simulator, plus binary and text codecs so traces can be captured to disk
// and replayed. Workload surrogates (internal/workload) generate accesses
// on the fly through the same Source interface, so the simulator cannot
// tell a synthetic stream from a recorded one.
package trace

// Access is one memory reference in a core's instruction stream.
type Access struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Write reports whether the reference is a store.
	Write bool
	// Instrs is the number of instructions retired by this reference's
	// instruction and the non-memory instructions since the previous
	// reference. It is at least 1 and lets the simulator convert an
	// access stream into instruction counts and base execution cycles.
	Instrs uint16
}

// Source produces a stream of accesses for one core. Next reports ok=false
// when the stream is exhausted.
type Source interface {
	Next() (a Access, ok bool)
}

// BatchSource is an optional Source extension that decodes many accesses
// per call, amortising the per-access interface-call overhead on the
// simulator's hot loop. NextBatch fills dst from the front and returns
// the number of accesses written; a short count (anything less than
// len(dst)) means the source is exhausted.
type BatchSource interface {
	Source
	NextBatch(dst []Access) int
}

// Forker is an optional Source extension for sources whose position can
// be checkpointed: Fork returns an independent Source that continues
// from the receiver's current position, after which the two streams
// advance separately. Sampled simulation (internal/sample) captures
// forks at interval boundaries during its profiling pass so the
// executor can jump straight to any interval without regenerating the
// accesses in between. Deterministic generators (workload surrogates,
// in-memory traces) support it; streaming file readers do not.
type Forker interface {
	Source
	Fork() Source
}

// ForkSource forks src when it supports Forker and reports ok=false
// otherwise. A Fork that returns nil (a wrapper around a non-forkable
// source) also reports ok=false.
func ForkSource(src Source) (Source, bool) {
	f, ok := src.(Forker)
	if !ok {
		return nil, false
	}
	s := f.Fork()
	if s == nil {
		return nil, false
	}
	return s, true
}

// FillBatch fills dst from src, using the batched path when src supports
// it and falling back to repeated Next calls otherwise. Like
// BatchSource.NextBatch, it returns a short count only on exhaustion.
func FillBatch(src Source, dst []Access) int {
	if b, ok := src.(BatchSource); ok {
		return b.NextBatch(dst)
	}
	for i := range dst {
		a, ok := src.Next()
		if !ok {
			return i
		}
		dst[i] = a
	}
	return len(dst)
}

// SliceSource replays a fixed slice of accesses; useful in tests and for
// traces loaded fully into memory.
type SliceSource struct {
	accs []Access
	pos  int
}

// NewSliceSource returns a Source over the given accesses.
func NewSliceSource(accs []Access) *SliceSource { return &SliceSource{accs: accs} }

// Next implements Source.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.accs) {
		return Access{}, false
	}
	a := s.accs[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// NextBatch implements BatchSource by copying a run of the slice.
func (s *SliceSource) NextBatch(dst []Access) int {
	n := copy(dst, s.accs[s.pos:])
	s.pos += n
	return n
}

// Fork implements Forker; the fork shares the immutable backing slice.
func (s *SliceSource) Fork() Source { return &SliceSource{accs: s.accs, pos: s.pos} }

// Limited wraps a source and truncates it after n accesses.
type Limited struct {
	src  Source
	left uint64
}

// Limit returns a Source that yields at most n accesses from src.
func Limit(src Source, n uint64) *Limited { return &Limited{src: src, left: n} }

// Next implements Source.
func (l *Limited) Next() (Access, bool) {
	if l.left == 0 {
		return Access{}, false
	}
	a, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Access{}, false
	}
	l.left--
	return a, true
}

// Fork implements Forker when the wrapped source does; it returns nil
// (reported as not-forkable by ForkSource) otherwise.
func (l *Limited) Fork() Source {
	src, ok := ForkSource(l.src)
	if !ok {
		return nil
	}
	return &Limited{src: src, left: l.left}
}

// NextBatch implements BatchSource, clipping the batch to the remaining
// quota.
func (l *Limited) NextBatch(dst []Access) int {
	if uint64(len(dst)) > l.left {
		dst = dst[:l.left]
	}
	n := FillBatch(l.src, dst)
	l.left -= uint64(n)
	if n < len(dst) {
		l.left = 0
	}
	return n
}

// Offset shifts every address from src by a fixed base, giving each core
// in a multi-programmed mix a disjoint address space (the paper runs
// duplicate copies of SPEC2006 benchmarks, one per core).
type Offset struct {
	src  Source
	base uint64
}

// WithOffset returns a Source whose addresses are src's plus base.
func WithOffset(src Source, base uint64) *Offset { return &Offset{src: src, base: base} }

// Next implements Source.
func (o *Offset) Next() (Access, bool) {
	a, ok := o.src.Next()
	if !ok {
		return Access{}, false
	}
	a.Addr += o.base
	return a, true
}

// Fork implements Forker when the wrapped source does; it returns nil
// (reported as not-forkable by ForkSource) otherwise.
func (o *Offset) Fork() Source {
	src, ok := ForkSource(o.src)
	if !ok {
		return nil
	}
	return &Offset{src: src, base: o.base}
}

// NextBatch implements BatchSource, shifting the batch in place.
func (o *Offset) NextBatch(dst []Access) int {
	n := FillBatch(o.src, dst)
	for i := range dst[:n] {
		dst[i].Addr += o.base
	}
	return n
}

// Drain reads every access from src into a slice (test helper and codec
// round-trip support). Use with bounded sources only.
func Drain(src Source) []Access {
	var out []Access
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// Skip discards up to n accesses from src and returns how many were
// actually discarded (short only when the source exhausts first).
// Checkpoint resume uses it to fast-forward a freshly rebuilt
// deterministic source past the prefix a restored machine already
// executed.
func Skip(src Source, n uint64) uint64 {
	var buf [256]Access
	var done uint64
	for done < n {
		chunk := n - done
		if chunk > uint64(len(buf)) {
			chunk = uint64(len(buf))
		}
		got := FillBatch(src, buf[:chunk])
		done += uint64(got)
		if uint64(got) < chunk {
			break
		}
	}
	return done
}
