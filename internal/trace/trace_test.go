package trace

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() []Access {
	return []Access{
		{Addr: 0x1000, Write: false, Instrs: 3},
		{Addr: 0x1040, Write: true, Instrs: 1},
		{Addr: 0xdeadbeef00, Write: false, Instrs: 65535},
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource(sample())
	got := Drain(s)
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("drain mismatch: %+v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded an access")
	}
	s.Reset()
	if a, ok := s.Next(); !ok || a.Addr != 0x1000 {
		t.Fatal("reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := Limit(NewSliceSource(sample()), 2)
	if got := len(Drain(s)); got != 2 {
		t.Fatalf("limited drain = %d accesses, want 2", got)
	}
	// Limit larger than the stream truncates at stream end.
	s2 := Limit(NewSliceSource(sample()), 100)
	if got := len(Drain(s2)); got != 3 {
		t.Fatalf("over-limit drain = %d accesses, want 3", got)
	}
	if _, ok := s2.Next(); ok {
		t.Fatal("drained limited source yielded an access")
	}
}

func TestWithOffset(t *testing.T) {
	s := WithOffset(NewSliceSource(sample()), 1<<40)
	got := Drain(s)
	for i, a := range got {
		if a.Addr != sample()[i].Addr+1<<40 {
			t.Fatalf("access %d addr = %#x", i, a.Addr)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteAll(&buf, NewSliceSource(sample()))
	if err != nil || n != 3 {
		t.Fatalf("WriteAll: n=%d err=%v", n, err)
	}
	r := NewReader(&buf)
	got := Drain(r)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		in := make([]Access, int(n))
		for i := range in {
			in[i] = Access{Addr: rng.Uint64(), Write: rng.IntN(2) == 1, Instrs: uint16(1 + rng.IntN(1000))}
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, NewSliceSource(in)); err != nil {
			return false
		}
		r := NewReader(&buf)
		out := Drain(r)
		if r.Err() != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOTATRACEFILE......."))
	if _, ok := r.Next(); ok {
		t.Fatal("bad magic yielded an access")
	}
	if r.Err() == nil {
		t.Fatal("bad magic not reported")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(sample())); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	Drain(r)
	if r.Err() == nil {
		t.Fatal("truncated trace not reported")
	}
}

func TestEmptyBinaryWriterWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("abandoned writer emitted %d bytes", buf.Len())
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteText(&buf, NewSliceSource(sample())); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("text round trip mismatch: %+v", got)
	}
}

func TestParseTextCommentsAndErrors(t *testing.T) {
	good := "# header comment\nR 1000 3\n\nW 1040 1\n"
	got, err := ParseText(strings.NewReader(good))
	if err != nil || len(got) != 2 {
		t.Fatalf("parse: %v, n=%d", err, len(got))
	}
	bad := []string{
		"X 1000 1\n",     // bad op
		"R zz 1\n",       // bad addr
		"R 1000 nope\n",  // bad count
		"R 1000\n",       // missing field
		"R 1000 0\n",     // zero instructions
		"R 1000 99999\n", // overflows uint16
	}
	for _, in := range bad {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) accepted invalid input", in)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteAllGzip(&buf, NewSliceSource(sample()))
	if err != nil || n != 3 {
		t.Fatalf("WriteAllGzip: n=%d err=%v", n, err)
	}
	r, err := NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("gzip round trip mismatch: %+v", got)
	}
}

func TestAutoReaderPlain(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceSource(sample())); err != nil {
		t.Fatal(err)
	}
	r, err := NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(r); !reflect.DeepEqual(got, sample()) {
		t.Fatalf("plain auto-read mismatch: %+v", got)
	}
}

func TestGzipCompresses(t *testing.T) {
	// A long trace of similar records must compress substantially.
	accs := make([]Access, 20000)
	for i := range accs {
		accs[i] = Access{Addr: uint64(i * 64), Instrs: 4}
	}
	var plain, packed bytes.Buffer
	if _, err := WriteAll(&plain, NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteAllGzip(&packed, NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	if packed.Len()*3 > plain.Len() {
		t.Fatalf("gzip trace %dB not well below plain %dB", packed.Len(), plain.Len())
	}
}

func TestAutoReaderCorruptGzip(t *testing.T) {
	// Correct magic but garbage body must error at open or first read.
	buf := bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff, 0xff})
	r, err := NewAutoReader(buf)
	if err == nil {
		Drain(r)
		err = r.Err()
	}
	if err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestEmptyTraceReadsClean(t *testing.T) {
	// Zero records -> zero bytes (lazy header); the reader must treat
	// that as a valid empty trace, not a header error.
	r := NewReader(bytes.NewReader(nil))
	if got := Drain(r); len(got) != 0 {
		t.Fatalf("empty trace yielded %d accesses", len(got))
	}
	if r.Err() != nil {
		t.Fatalf("empty trace reported error: %v", r.Err())
	}
}
