package dram

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{},
		{Banks: 0, RowBytes: 8192, BlockBytes: 64},
		{Banks: 8, RowBytes: 32, BlockBytes: 64}, // row smaller than block
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
	if New(DDR3_1600()).Config().Banks != 16 {
		t.Fatal("default config drifted")
	}
}

func TestRowHitCheaperThanConflict(t *testing.T) {
	m := New(DDR3_1600())
	cfg := m.Config()
	// First access to a closed bank: activate + CAS.
	lat1 := m.Access(0, 1_000_000, false)
	if lat1 != cfg.RCDCycles+cfg.CASCycles+cfg.BurstCycles {
		t.Fatalf("closed-bank latency = %d", lat1)
	}
	// Same row, later in time (bank drained): row hit.
	lat2 := m.Access(64, 2_000_000, false)
	if lat2 != cfg.CASCycles+cfg.BurstCycles {
		t.Fatalf("row-hit latency = %d", lat2)
	}
	// Different row, same bank: conflict.
	rowStride := uint64(cfg.RowBytes * cfg.Banks)
	lat3 := m.Access(rowStride, 3_000_000, false)
	if lat3 != cfg.RPCycles+cfg.RCDCycles+cfg.CASCycles+cfg.BurstCycles {
		t.Fatalf("conflict latency = %d", lat3)
	}
	if m.Stats.RowHits != 1 || m.Stats.RowClosed != 1 || m.Stats.RowConflicts != 1 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestBankQueueing(t *testing.T) {
	m := New(DDR3_1600())
	l1 := m.Access(0, 100, false)
	l2 := m.Access(64, 100, false) // same bank & row, same time: queues
	if l2 <= l1-1 && l2 < l1 {
		t.Fatalf("queued access latency %d not above first %d", l2, l1)
	}
	if l2 <= m.Config().CASCycles {
		t.Fatal("queued access did not wait for the bank")
	}
}

func TestStreamingBeatsRandom(t *testing.T) {
	seq := New(DDR3_1600())
	var seqTotal uint64
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now += 200
		seqTotal += seq.Access(uint64(i*64), now, false)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	rnd := New(DDR3_1600())
	var rndTotal uint64
	now = 0
	for i := 0; i < 2000; i++ {
		now += 200
		rndTotal += rnd.Access(rng.Uint64()%(1<<32), now, false)
	}
	if seqTotal >= rndTotal {
		t.Fatalf("sequential stream (%d cycles) not faster than random (%d)", seqTotal, rndTotal)
	}
	if seq.Stats.HitRate() < 0.9 {
		t.Fatalf("sequential row-hit rate = %.2f, want ~1", seq.Stats.HitRate())
	}
	if rnd.Stats.HitRate() > 0.3 {
		t.Fatalf("random row-hit rate = %.2f, want low", rnd.Stats.HitRate())
	}
}

func TestReadsWritesCounted(t *testing.T) {
	m := New(DDR3_1600())
	m.Access(0, 0, false)
	m.Access(64, 1000, true)
	if m.Stats.Reads != 1 || m.Stats.Writes != 1 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestHitRateZeroWhenIdle(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate must be 0")
	}
}

// Property: latency is always at least the CAS+burst minimum and exactly
// one row-buffer outcome is recorded per access.
func TestPropertyLatencyFloorAndAccounting(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		m := New(DDR3_1600())
		cfg := m.Config()
		now := uint64(0)
		for i := 0; i < int(n); i++ {
			now += uint64(rng.IntN(500))
			lat := m.Access(rng.Uint64()%(1<<34), now, rng.IntN(2) == 0)
			if lat < cfg.CASCycles+cfg.BurstCycles {
				return false
			}
		}
		total := m.Stats.RowHits + m.Stats.RowClosed + m.Stats.RowConflicts
		return total == uint64(n) && m.Stats.Reads+m.Stats.Writes == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder spreads consecutive rows across banks.
func TestPropertyBankInterleaving(t *testing.T) {
	m := New(DDR3_1600())
	seen := map[int]bool{}
	for r := 0; r < m.Config().Banks; r++ {
		bank, _ := m.decode(uint64(r * m.Config().RowBytes))
		seen[bank] = true
	}
	if len(seen) != m.Config().Banks {
		t.Fatalf("row interleaving reached %d/%d banks", len(seen), m.Config().Banks)
	}
}

func BenchmarkAccess(b *testing.B) {
	m := New(DDR3_1600())
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Access(rng.Uint64()%(1<<32), uint64(i*50), i%3 == 0)
	}
}
