// Package dram models a DDR3-class main memory with per-bank row buffers
// and an open-page policy, replacing the simulator's fixed memory latency
// when configured. The paper's Table II machine uses 4GB DDR3-1600; the
// defaults here correspond to that part's timing at a 3GHz core clock.
//
// The model captures the first-order effects that matter to an LLC study:
// row-buffer hits are much cheaper than conflicts, so streaming misses
// (sequential fills) are faster than pointer-chasing misses, and bank
// contention queues concurrent misses.
package dram

// Config sizes and times the memory system. All latencies are in core
// clock cycles.
type Config struct {
	// Banks is the total number of DRAM banks (channels x ranks x banks).
	Banks int
	// RowBytes is the row-buffer size.
	RowBytes int
	// BlockBytes is the transfer granularity (cache-block size).
	BlockBytes int
	// CASCycles is the column access latency (row-buffer hit cost).
	CASCycles uint64
	// RCDCycles is the RAS-to-CAS delay (activating a closed row).
	RCDCycles uint64
	// RPCycles is the precharge latency (closing a conflicting row).
	RPCycles uint64
	// BurstCycles is the data-burst occupancy per block transfer.
	BurstCycles uint64
}

// DDR3_1600 returns timing for DDR3-1600 (CL-tRCD-tRP = 11-11-11,
// ~13.75ns each) at a 3GHz core clock, with 8 banks x 2 ranks and 8KB
// rows.
func DDR3_1600() Config {
	return Config{
		Banks:       16,
		RowBytes:    8 << 10,
		BlockBytes:  64,
		CASCycles:   41,
		RCDCycles:   41,
		RPCycles:    41,
		BurstCycles: 12, // 4 DRAM-bus cycles at 800MHz
	}
}

// Stats counts row-buffer outcomes.
type Stats struct {
	// RowHits are accesses served from an open row.
	RowHits uint64
	// RowClosed are accesses that had to activate a closed bank.
	RowClosed uint64
	// RowConflicts are accesses that displaced another open row.
	RowConflicts uint64
	// Reads and Writes count accesses by type.
	Reads, Writes uint64
}

// HitRate returns the row-buffer hit fraction.
func (s Stats) HitRate() float64 {
	total := s.RowHits + s.RowClosed + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Memory is an open-page DRAM model. Not safe for concurrent use; the
// simulator is single-threaded by design.
type Memory struct {
	cfg      Config
	openRow  []int64 // per bank; -1 = precharged (closed)
	nextFree []uint64
	// Stats accumulates row-buffer outcomes.
	Stats Stats
}

// New builds a memory from cfg, validating its geometry.
func New(cfg Config) *Memory {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.BlockBytes <= 0 || cfg.RowBytes < cfg.BlockBytes {
		panic("dram: invalid geometry")
	}
	m := &Memory{
		cfg:      cfg,
		openRow:  make([]int64, cfg.Banks),
		nextFree: make([]uint64, cfg.Banks),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// addressing: block address -> (bank, row). Consecutive blocks walk a
// row; rows interleave across banks so streams engage multiple banks.
func (m *Memory) decode(addr uint64) (bank int, row int64) {
	blocksPerRow := uint64(m.cfg.RowBytes / m.cfg.BlockBytes)
	rowID := addr / uint64(m.cfg.BlockBytes) / blocksPerRow
	bank = int(rowID % uint64(m.cfg.Banks))
	row = int64(rowID / uint64(m.cfg.Banks))
	return bank, row
}

// Access performs one block transfer at byte address addr starting no
// earlier than now, returning its latency (queueing + DRAM timing).
// Writes use the same timing; their latency is typically not on the
// requester's critical path, but the bank stays occupied either way.
func (m *Memory) Access(addr uint64, now uint64, write bool) uint64 {
	bank, row := m.decode(addr)
	var lat uint64
	switch {
	case m.openRow[bank] == row:
		m.Stats.RowHits++
		lat = m.cfg.CASCycles
	case m.openRow[bank] == -1:
		m.Stats.RowClosed++
		lat = m.cfg.RCDCycles + m.cfg.CASCycles
	default:
		m.Stats.RowConflicts++
		lat = m.cfg.RPCycles + m.cfg.RCDCycles + m.cfg.CASCycles
	}
	m.openRow[bank] = row
	if write {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}
	start := now
	if m.nextFree[bank] > start {
		start = m.nextFree[bank]
	}
	// The bank is busy for the access plus the burst; the requester also
	// waits for the burst to complete.
	m.nextFree[bank] = start + lat + m.cfg.BurstCycles
	return start - now + lat + m.cfg.BurstCycles
}
