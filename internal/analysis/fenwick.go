package analysis

// fenwick is a binary indexed tree over int32 counters, used by the
// reuse-distance computation to count live last-access marks in a time
// range in O(log n).
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

// add adds delta at 1-based index i.
func (f *fenwick) add(i int, delta int32) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of [1, i].
func (f *fenwick) prefix(i int) int32 {
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of (lo, hi], 1-based.
func (f *fenwick) rangeSum(lo, hi int) int32 {
	if hi <= lo {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo)
}
