package analysis

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/workload"
)

func accessesOf(blocks []uint64, writes []bool) []trace.Access {
	out := make([]trace.Access, len(blocks))
	for i, b := range blocks {
		w := false
		if writes != nil {
			w = writes[i]
		}
		out[i] = trace.Access{Addr: b * BlockBytes, Write: w, Instrs: 2}
	}
	return out
}

func analyze(accs []trace.Access) *Report {
	return NewAnalyzer().Analyze(trace.NewSliceSource(accs))
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 1)
	f.add(9, 1)
	if f.prefix(10) != 3 || f.prefix(6) != 1 {
		t.Fatal("prefix sums wrong")
	}
	if f.rangeSum(3, 9) != 2 { // (3,9] holds marks at 7 and 9
		t.Fatalf("rangeSum = %d", f.rangeSum(3, 9))
	}
	f.add(7, -1)
	if f.rangeSum(0, 10) != 2 {
		t.Fatal("removal not reflected")
	}
	if f.rangeSum(5, 5) != 0 {
		t.Fatal("empty range must be 0")
	}
}

func TestBasicCounts(t *testing.T) {
	rep := analyze(accessesOf([]uint64{1, 2, 3, 1}, []bool{false, true, false, false}))
	if rep.Accesses != 4 || rep.Reads != 3 || rep.Writes != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.FootprintBlocks != 3 || rep.ColdMisses != 3 {
		t.Fatalf("footprint: %+v", rep)
	}
	if rep.Instructions != 8 {
		t.Fatalf("instructions = %d", rep.Instructions)
	}
	if rep.Reuses() != 1 {
		t.Fatalf("reuses = %d", rep.Reuses())
	}
}

func TestExactStackDistances(t *testing.T) {
	// Access pattern A B C A: A's re-access has 2 distinct blocks (B, C)
	// between -> distance 2 -> bucket 2 ([2,4)).
	rep := analyze(accessesOf([]uint64{10, 20, 30, 10}, nil))
	if rep.DistHist[2] != 1 {
		t.Fatalf("distance histogram: %v", rep.DistHist[:4])
	}
	// A A: distance 0 -> bucket 0.
	rep = analyze(accessesOf([]uint64{5, 5}, nil))
	if rep.DistHist[0] != 1 {
		t.Fatalf("bucket0: %v", rep.DistHist[:2])
	}
	// A B A B A: each re-access sees exactly 1 distinct block -> bucket 1.
	rep = analyze(accessesOf([]uint64{1, 2, 1, 2, 1}, nil))
	if rep.DistHist[1] != 3 {
		t.Fatalf("alternating: %v", rep.DistHist[:3])
	}
	// Duplicate accesses between reuse must not inflate the distance:
	// A B B B A -> distance 1.
	rep = analyze(accessesOf([]uint64{1, 2, 2, 2, 1}, nil))
	if rep.DistHist[1] != 1 || rep.DistHist[3] != 0 {
		t.Fatalf("dup-squash: %v", rep.DistHist[:4])
	}
}

func TestHitRateAtCapacity(t *testing.T) {
	// Cyclic sweep over 100 blocks, 3 passes: every reuse has distance
	// 99, so a 128-block cache catches all reuses and a 64-block cache
	// none.
	var blocks []uint64
	for p := 0; p < 3; p++ {
		for b := uint64(0); b < 100; b++ {
			blocks = append(blocks, b)
		}
	}
	rep := analyze(accessesOf(blocks, nil))
	if hr := rep.HitRateAtCapacity(128); hr < 0.6 {
		t.Fatalf("128-block hit rate = %.2f, want ~200/300", hr)
	}
	if hr := rep.HitRateAtCapacity(64); hr != 0 {
		t.Fatalf("64-block hit rate = %.2f, want 0", hr)
	}
	if rep.HitRateAtCapacity(0) != 0 {
		t.Fatal("zero-capacity hit rate must be 0")
	}
}

func TestLoopPotentialDetectsLoopRegion(t *testing.T) {
	an := NewAnalyzer()
	an.L2Blocks = 64
	an.LLCBlocks = 4096
	// Clean cyclic reuse over 256 blocks: distances 255, between L2 (64)
	// and LLC (4096) -> loop potential high.
	var blocks []uint64
	for p := 0; p < 4; p++ {
		for b := uint64(0); b < 256; b++ {
			blocks = append(blocks, b)
		}
	}
	rep := an.Analyze(trace.NewSliceSource(accessesOf(blocks, nil)))
	if lp := rep.LoopPotential(); lp < 0.5 {
		t.Fatalf("loop potential = %.2f, want high", lp)
	}
	if rf := rep.RedundantFillPotential(); rf != 0 {
		t.Fatalf("read-only trace has redundant-fill potential %.2f", rf)
	}
}

func TestRedundantFillPotential(t *testing.T) {
	an := NewAnalyzer()
	an.L2Blocks = 64
	an.LLCBlocks = 4096
	// Write sweep over 256 blocks: each revisit writes at LLC distance.
	var blocks []uint64
	var writes []bool
	for p := 0; p < 4; p++ {
		for b := uint64(0); b < 256; b++ {
			blocks = append(blocks, b)
			writes = append(writes, true)
		}
	}
	rep := an.Analyze(trace.NewSliceSource(accessesOf(blocks, writes)))
	if rf := rep.RedundantFillPotential(); rf < 0.5 {
		t.Fatalf("redundant-fill potential = %.2f, want high", rf)
	}
	if lp := rep.LoopPotential(); lp != 0 {
		t.Fatalf("write trace has loop potential %.2f", lp)
	}
}

func TestMaxAccessesBounds(t *testing.T) {
	an := NewAnalyzer()
	an.MaxAccesses = 10
	rep := an.Analyze(trace.NewSliceSource(accessesOf(make([]uint64, 100), nil)))
	if rep.Accesses != 10 {
		t.Fatalf("window = %d accesses, want 10", rep.Accesses)
	}
}

func TestSurrogateShapesVisible(t *testing.T) {
	an := NewAnalyzer()
	an.MaxAccesses = 60000
	omn, _ := workload.ByName("omnetpp")
	lib, _ := workload.ByName("libquantum")
	repOmn := an.Analyze(workload.New(omn, 1))
	an2 := NewAnalyzer()
	an2.MaxAccesses = 60000
	repLib := an2.Analyze(workload.New(lib, 1))
	if repOmn.LoopPotential() <= repLib.LoopPotential() {
		t.Fatalf("omnetpp loop potential %.3f not above libquantum %.3f",
			repOmn.LoopPotential(), repLib.LoopPotential())
	}
	if repLib.Writes == 0 || repOmn.FootprintBlocks == 0 {
		t.Fatal("degenerate surrogate reports")
	}
}

func TestFprint(t *testing.T) {
	rep := analyze(accessesOf([]uint64{1, 2, 1, 2, 3, 3}, []bool{false, true, false, false, true, false}))
	var sb strings.Builder
	rep.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"accesses", "footprint", "reuse-distance histogram", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestZeroReportSafe(t *testing.T) {
	var rep Report
	if rep.LoopPotential() != 0 || rep.RedundantFillPotential() != 0 || rep.HitRateAtCapacity(10) != 0 {
		t.Fatal("zero report divided by zero")
	}
	var sb strings.Builder
	rep.Fprint(&sb) // must not panic
}

// Property: the sum of histogram entries equals the reuse count, and
// estimated hit rate is monotone in capacity.
func TestPropertyHistogramConsistent(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		blocks := make([]uint64, int(n)+10)
		for i := range blocks {
			blocks[i] = rng.Uint64() % 32
		}
		rep := analyze(accessesOf(blocks, nil))
		var sum uint64
		for _, c := range rep.DistHist {
			sum += c
		}
		if sum != rep.Reuses() {
			return false
		}
		prev := -1.0
		for _, capBlocks := range []uint64{1, 4, 16, 64, 1 << 20} {
			hr := rep.HitRateAtCapacity(capBlocks)
			if hr < prev {
				return false
			}
			prev = hr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: cold misses equal footprint, and every block's first access
// is never counted as a reuse.
func TestPropertyColdMissesEqualFootprint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		blocks := make([]uint64, 300)
		for i := range blocks {
			blocks[i] = rng.Uint64() % 64
		}
		rep := analyze(accessesOf(blocks, nil))
		return rep.ColdMisses == rep.FootprintBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	omn, _ := workload.ByName("omnetpp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		an := NewAnalyzer()
		an.MaxAccesses = 50000
		an.Analyze(workload.New(omn, uint64(i+1)))
	}
}
