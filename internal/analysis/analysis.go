// Package analysis characterises memory-reference traces the way the
// paper characterises its workloads: footprint, read/write mix, the LRU
// reuse-distance profile (which predicts hit rates at each cache level),
// the loop-block potential (clean reuse at LLC-visible distances, the
// raw material of the paper's Section II-C1), and the redundant-fill
// potential (blocks written before LLC-distance reuse, Section II-C2).
//
// Reuse distances are exact LRU stack distances in unique 64B blocks,
// computed with the classic last-access + Fenwick-tree algorithm in
// O(n log n) time and O(n) space.
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/trace"
)

// BlockBytes is the analysis granularity.
const BlockBytes = 64

// MaxLog2Distance bounds the reuse-distance histogram; distances at or
// above 2^MaxLog2Distance blocks land in the top bucket.
const MaxLog2Distance = 26 // 2^26 blocks = 4GB

// Report summarises one trace.
type Report struct {
	// Accesses is the trace length; Instructions the retired-instruction
	// total implied by the records.
	Accesses     uint64
	Instructions uint64
	// Reads and Writes split the accesses.
	Reads, Writes uint64
	// FootprintBlocks is the number of distinct blocks touched.
	FootprintBlocks uint64
	// ColdMisses is the number of first-touch accesses.
	ColdMisses uint64
	// DistHist[k] counts re-accesses with LRU stack distance in
	// [2^(k-1), 2^k) unique blocks (bucket 0 is distance 0, i.e.
	// consecutive accesses to the same block).
	DistHist [MaxLog2Distance + 1]uint64
	// CleanLLCReuse counts re-reads at L2-missing, LLC-fitting distances
	// whose previous access was also a read — loop-block raw material.
	CleanLLCReuse uint64
	// WriteBeforeLLCReuse counts writes to blocks whose next reuse (if
	// any) would have been served by the LLC — redundant-fill raw
	// material is approximated by writes at LLC-visible distances.
	WriteBeforeLLCReuse uint64
	// l2Blocks and llcBlocks record the capacities used for the above.
	l2Blocks, llcBlocks uint64
}

// Analyzer consumes a trace and produces a Report. Capacities configure
// the level-classification heuristics (defaults: paper Table II).
type Analyzer struct {
	// L2Blocks and LLCBlocks are the capacities (in blocks) separating
	// "fits in L2" from "LLC-visible" reuse.
	L2Blocks  uint64
	LLCBlocks uint64
	// MaxAccesses bounds the analysis window (0 = unbounded).
	MaxAccesses uint64
}

// NewAnalyzer returns an analyzer with the paper's Table II capacities
// (512KB L2, 8MB LLC).
func NewAnalyzer() *Analyzer {
	return &Analyzer{L2Blocks: 8192, LLCBlocks: 131072}
}

type lastInfo struct {
	t     int32 // 1-based time of last access
	write bool  // whether that access was a write
}

// Analyze drains src and returns its report.
func (a *Analyzer) Analyze(src trace.Source) *Report {
	rep := &Report{l2Blocks: a.L2Blocks, llcBlocks: a.LLCBlocks}
	// First pass is streaming: we buffer accesses because the Fenwick
	// tree needs the trace length up front; bounded by MaxAccesses.
	var accs []trace.Access
	for {
		acc, ok := src.Next()
		if !ok {
			break
		}
		accs = append(accs, acc)
		if a.MaxAccesses > 0 && uint64(len(accs)) >= a.MaxAccesses {
			break
		}
	}
	n := len(accs)
	ft := newFenwick(n)
	last := make(map[uint64]lastInfo, 1<<16)
	for i, acc := range accs {
		t := i + 1
		block := acc.Addr / BlockBytes
		rep.Accesses++
		rep.Instructions += uint64(acc.Instrs)
		if acc.Write {
			rep.Writes++
		} else {
			rep.Reads++
		}
		prev, seen := last[block]
		if !seen {
			rep.ColdMisses++
			rep.FootprintBlocks++
		} else {
			dist := uint64(ft.rangeSum(int(prev.t), t-1))
			rep.DistHist[bucketOf(dist)]++
			llcVisible := dist >= a.L2Blocks && dist < a.LLCBlocks
			if llcVisible && !acc.Write && !prev.write {
				rep.CleanLLCReuse++
			}
			if llcVisible && acc.Write {
				rep.WriteBeforeLLCReuse++
			}
			ft.add(int(prev.t), -1)
		}
		ft.add(t, 1)
		last[block] = lastInfo{t: int32(t), write: acc.Write}
	}
	return rep
}

func bucketOf(dist uint64) int {
	if dist == 0 {
		return 0
	}
	b := int(math.Ilogb(float64(dist))) + 1
	if b > MaxLog2Distance {
		b = MaxLog2Distance
	}
	return b
}

// Reuses returns the number of non-cold accesses.
func (r *Report) Reuses() uint64 { return r.Accesses - r.ColdMisses }

// HitRateAtCapacity estimates the LRU hit rate of a cache holding the
// given number of blocks: the fraction of accesses whose stack distance
// is below the capacity (the classic stack-distance property).
func (r *Report) HitRateAtCapacity(blocks uint64) float64 {
	if r.Accesses == 0 {
		return 0
	}
	var hits uint64
	for k, cnt := range r.DistHist {
		// Bucket k spans [2^(k-1), 2^k); count it as hits only if the
		// whole bucket fits.
		if k == 0 {
			if blocks > 0 {
				hits += cnt
			}
			continue
		}
		if uint64(1)<<k <= blocks {
			hits += cnt
		}
	}
	return float64(hits) / float64(r.Accesses)
}

// LoopPotential is the fraction of accesses that are clean LLC-distance
// re-reads — an upper bound on the loop-block traffic the paper's LAP
// can exploit.
func (r *Report) LoopPotential() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.CleanLLCReuse) / float64(r.Accesses)
}

// RedundantFillPotential is the fraction of writes landing at
// LLC-visible reuse distances — non-inclusive fills for these blocks are
// wasted (Section II-C2).
func (r *Report) RedundantFillPotential() float64 {
	if r.Writes == 0 {
		return 0
	}
	return float64(r.WriteBeforeLLCReuse) / float64(r.Writes)
}

// Fprint renders the report, including a log-scale distance histogram.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "accesses        %d (%.1f%% writes)\n", r.Accesses, 100*safeDiv(float64(r.Writes), float64(r.Accesses)))
	fmt.Fprintf(w, "instructions    %d (%.1f per access)\n", r.Instructions, safeDiv(float64(r.Instructions), float64(r.Accesses)))
	fmt.Fprintf(w, "footprint       %d blocks (%.1f MB)\n", r.FootprintBlocks, float64(r.FootprintBlocks)*BlockBytes/1e6)
	fmt.Fprintf(w, "cold misses     %d (%.1f%%)\n", r.ColdMisses, 100*safeDiv(float64(r.ColdMisses), float64(r.Accesses)))
	fmt.Fprintf(w, "est. hit rate   L2(%d blk) %.1f%%   LLC(%d blk) %.1f%%\n",
		r.l2Blocks, 100*r.HitRateAtCapacity(r.l2Blocks),
		r.llcBlocks, 100*r.HitRateAtCapacity(r.llcBlocks))
	fmt.Fprintf(w, "loop potential  %.1f%% of accesses (clean LLC-distance re-reads)\n", 100*r.LoopPotential())
	fmt.Fprintf(w, "redundant-fill  %.1f%% of writes at LLC-visible distances\n", 100*r.RedundantFillPotential())
	fmt.Fprintln(w, "reuse-distance histogram (unique 64B blocks):")
	var peak uint64
	for _, c := range r.DistHist {
		if c > peak {
			peak = c
		}
	}
	labels := []int{}
	for k, c := range r.DistHist {
		if c > 0 {
			labels = append(labels, k)
		}
	}
	sort.Ints(labels)
	for _, k := range labels {
		c := r.DistHist[k]
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(1+40*c/peak))
		}
		lo := uint64(0)
		if k > 0 {
			lo = 1 << (k - 1)
		}
		fmt.Fprintf(w, "  %10d+  %10d  %s\n", lo, c, bar)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
