package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	lap "repro"
	"repro/internal/trace"
)

// testServer spins up a full httptest stack around a Server.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns (status, response bytes).
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, out
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	status, body := get(t, base+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats returned %d: %s", status, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return st
}

// smallRun keeps e2e simulations fast.
const smallAccesses = 2000

func TestHealthzAndDrain(t *testing.T) {
	s, ts := testServer(t, Config{})
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz: %d %s", status, body)
	}
	s.SetDraining(true)
	// Liveness survives drain — only readiness flips, so an orchestrator
	// pulls the instance from routing without restarting it.
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("draining healthz: got %d, want 200 (liveness must survive drain)", status)
	}
	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: got %d %s, want 503", status, body)
	}
	if status, _ := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1"}); status != http.StatusServiceUnavailable {
		t.Fatalf("draining run: got %d, want 503", status)
	}
	s.SetDraining(false)
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz after undrain: got %d, want 200", status)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after undrain: got %d, want 200", status)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Policy != "LAP" {
		t.Errorf("default policy: got %q, want LAP", res.Policy)
	}
	if !strings.HasPrefix(res.Workload, "mix:WL1[") {
		t.Errorf("workload label: %q", res.Workload)
	}
	if res.Accesses != smallAccesses || res.Seed != 1 {
		t.Errorf("echoed accesses/seed: %d/%d", res.Accesses, res.Seed)
	}
	if res.Cycles == 0 || res.Throughput <= 0 || len(res.IPCs) == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.EPITotalNJ <= 0 || res.TotalNJ <= 0 {
		t.Errorf("energy missing from result: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		req  RunRequest
	}{
		{"no workload", RunRequest{}},
		{"two workloads", RunRequest{Mix: "WL1", Bench: "mcf"}},
		{"unknown policy", RunRequest{Mix: "WL1", Policy: "bogus"}},
		{"unknown mix member", RunRequest{Mix: "nope,nope,nope,nope"}},
		{"unknown bench", RunRequest{Bench: "nope"}},
		{"unknown trace", RunRequest{Trace: "never-uploaded"}},
		{"accesses over cap", RunRequest{Mix: "WL1", Accesses: 1 << 60}},
		{"bad config", RunRequest{Mix: "WL1", Config: json.RawMessage(`{"Cores": -1}`)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+"/v1/run", tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("got %d (%s), want 400", status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("400 body is not an error response: %s", body)
			}
		})
	}
	// A config validation failure names the offending field in the 400
	// body (sim.FieldError surfaced through lap.ParseConfig).
	status, body := post(t, ts.URL+"/v1/run",
		RunRequest{Mix: "WL1", Config: json.RawMessage(`{"Cores": -1}`)})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid config: got %d (%s), want 400", status, body)
	}
	var fe errorResponse
	if err := json.Unmarshal(body, &fe); err != nil || fe.Field != "Cores" {
		t.Fatalf("400 body does not name the Cores field: %s", body)
	}

	// Malformed JSON and unknown fields are 400s too.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"mix": `))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: got %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"mixx": "WL1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: got %d, want 400", resp.StatusCode)
	}
}

// TestRunCoalescing is an acceptance gate: two concurrent identical
// requests must share exactly one simulation — one computed, one
// recalled.
func TestRunCoalescing(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 4})
	req := RunRequest{Mix: "WH1", Accesses: smallAccesses}

	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = post(t, ts.URL+"/v1/run", req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < 2; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, statuses[i], bodies[i])
		}
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("coalesced responses differ:\n%s\n%s", bodies[0], bodies[1])
	}
	st := getStats(t, ts.URL)
	if st.Computed != 1 {
		t.Errorf("computed: got %d, want exactly 1", st.Computed)
	}
	if st.Recalled != 1 {
		t.Errorf("recalled: got %d, want exactly 1", st.Recalled)
	}

	// A third, sequential identical request is a pure recall.
	if status, body := post(t, ts.URL+"/v1/run", req); status != http.StatusOK || !bytes.Equal(body, bodies[0]) {
		t.Errorf("recalled response differs (status %d):\n%s", status, body)
	}
	if st := getStats(t, ts.URL); st.Computed != 1 || st.Recalled != 2 {
		t.Errorf("after recall: computed=%d recalled=%d, want 1/2", st.Computed, st.Recalled)
	}
}

// TestSweepByteIdenticalAcrossJobs is the other acceptance gate: the same
// sweep against two fresh servers, fanned out at jobs=1 and jobs=8, must
// produce byte-identical bodies. Fresh servers ensure the jobs=8 pass
// really computes in parallel rather than recalling the jobs=1 results.
func TestSweepByteIdenticalAcrossJobs(t *testing.T) {
	req := SweepRequest{
		Mixes:    []string{"WL1", "WH1", "WL2"},
		Accesses: smallAccesses,
	}
	var bodies [][]byte
	for _, jobs := range []int{1, 8} {
		_, ts := testServer(t, Config{Jobs: 8})
		req.Jobs = jobs
		status, body := post(t, ts.URL+"/v1/sweep", req)
		if status != http.StatusOK {
			t.Fatalf("sweep jobs=%d: %d %s", jobs, status, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("sweep bodies differ between jobs=1 and jobs=8:\n%s\n%s", bodies[0], bodies[1])
	}

	var resp SweepResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatalf("decoding sweep: %v", err)
	}
	// The default expansion is configuration-aware: the default config
	// has a uniform STT-RAM LLC, so hybrid-only policies are skipped
	// (with a notice) instead of silently simulating a degenerate LLC.
	eligible, notices, err := lap.ResolvePolicies(lap.DefaultConfig(), "all")
	if err != nil {
		t.Fatal(err)
	}
	nPolicies := len(eligible)
	if wantCells := 3 * nPolicies; len(resp.Results) != wantCells {
		t.Fatalf("sweep cells: got %d, want %d", len(resp.Results), wantCells)
	}
	if len(resp.Skipped) != len(notices) {
		t.Fatalf("skipped notices: got %v, want %v", resp.Skipped, notices)
	}
	if len(resp.Skipped) == 0 || !strings.Contains(resp.Skipped[0], "Lhybrid") {
		t.Fatalf("expected a Lhybrid skip notice, got %v", resp.Skipped)
	}
	// Mix-major request order: first block is WL1 under every policy.
	for i, r := range resp.Results[:nPolicies] {
		if !strings.HasPrefix(r.Workload, "mix:WL1[") {
			t.Errorf("cell %d out of order: %s", i, r.Workload)
		}
	}
}

func TestSweepDefaultsCoverGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full default grid is slow")
	}
	_, ts := testServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{Accesses: 500})
	if status != http.StatusOK {
		t.Fatalf("default sweep: %d %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	eligible, _, err := lap.ResolvePolicies(lap.DefaultConfig(), "all")
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * len(eligible)
	if len(resp.Results) != want {
		t.Fatalf("default grid: got %d cells, want %d", len(resp.Results), want)
	}
}

func TestSweepBackpressure(t *testing.T) {
	_, ts := testServer(t, Config{QueueDepth: 2})
	status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
		Mixes:    []string{"WL1"},
		Policies: []string{"LAP", "inclusive", "exclusive"},
		Accesses: smallAccesses,
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep: got %d (%s), want 429", status, body)
	}
}

func TestRunBackpressureAndTimeout(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 1, RequestTimeout: 50 * time.Millisecond})

	// Occupy the only worker slot so requests queue.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// First request is admitted, waits for the slot, and times out → 504.
	done := make(chan struct{})
	var status504 int
	go func() {
		defer close(done)
		status504, _ = post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	}()

	// While it waits it holds the queue's single slot: the next request
	// must bounce with 429.
	deadline := time.Now().Add(2 * time.Second)
	got429 := false
	for time.Now().Before(deadline) {
		if s.queued.Load() == 1 {
			status, _ := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WH1", Accesses: smallAccesses})
			if status == http.StatusTooManyRequests {
				got429 = true
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if status504 != http.StatusGatewayTimeout {
		t.Errorf("queued request: got %d, want 504", status504)
	}
	if !got429 {
		t.Errorf("second request was not rejected with 429")
	}
}

func TestTraceUploadAndRun(t *testing.T) {
	_, ts := testServer(t, Config{})

	accs := make([]trace.Access, 0, 512)
	for i := 0; i < 512; i++ {
		accs = append(accs, trace.Access{
			Addr:   uint64(i) * 64,
			Write:  i%3 == 0,
			Instrs: uint16(i%7) + 1,
		})
	}
	var buf bytes.Buffer
	if _, err := trace.WriteAllGzip(&buf, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}

	// Name is required and validated.
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless upload: got %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/traces?name=loopy", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var up TraceUploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Name != "loopy" || up.Records != 512 || len(up.Digest) != 16 {
		t.Fatalf("upload ack: %+v", up)
	}

	// The uploaded trace is runnable by name; default accesses = whole trace.
	status, rbody := post(t, ts.URL+"/v1/run", RunRequest{Trace: "loopy"})
	if status != http.StatusOK {
		t.Fatalf("trace run: %d %s", status, rbody)
	}
	var res RunResult
	if err := json.Unmarshal(rbody, &res); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("trace:loopy@%s", up.Digest); res.Workload != want {
		t.Errorf("trace workload: got %q, want %q", res.Workload, want)
	}
	if res.Accesses != 512 {
		t.Errorf("default trace accesses: got %d, want 512", res.Accesses)
	}

	// Re-uploading different content under the same name changes the
	// digest, so cached results for the old content cannot be recalled.
	accs[0].Addr = 0xfeedface
	var buf2 bytes.Buffer
	if _, err := trace.WriteAll(&buf2, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/traces?name=loopy", "application/octet-stream", &buf2)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var up2 TraceUploadResponse
	if err := json.Unmarshal(body, &up2); err != nil {
		t.Fatal(err)
	}
	if up2.Digest == up.Digest {
		t.Error("digest did not change after re-upload with different content")
	}
	if st := getStats(t, ts.URL); st.Traces != 1 {
		t.Errorf("stats traces: got %d, want 1 (replaced, not appended)", st.Traces)
	}
}

func TestTraceUploadRejectsGarbage(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, payload := range map[string][]byte{
		"not a trace": []byte("plain text, no magic"),
		"empty":       {},
	} {
		resp, err := http.Post(ts.URL+"/v1/traces?name=bad", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestStatsLatencyQuantiles(t *testing.T) {
	_, ts := testServer(t, Config{})
	for i := 0; i < 3; i++ {
		// Distinct seeds force distinct computations.
		status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses, Seed: uint64(i) + 1})
		if status != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, status, body)
		}
	}
	st := getStats(t, ts.URL)
	if st.RunLatencySamples != 3 {
		t.Fatalf("latency samples: got %d, want 3", st.RunLatencySamples)
	}
	if st.RunLatencyP50Sec <= 0 || st.RunLatencyP95Sec < st.RunLatencyP50Sec {
		t.Errorf("implausible latency quantiles: p50=%v p95=%v", st.RunLatencyP50Sec, st.RunLatencyP95Sec)
	}
	if st.Computed != 3 || st.MemoEntries != 3 {
		t.Errorf("memo stats: computed=%d entries=%d, want 3/3", st.Computed, st.MemoEntries)
	}
	if st.Queued != 0 || st.InFlight != 0 {
		t.Errorf("idle server reports queued=%d in_flight=%d", st.Queued, st.InFlight)
	}
}

func TestMemoLRUBoundOnServer(t *testing.T) {
	_, ts := testServer(t, Config{MemoEntries: 2})
	for seed := uint64(1); seed <= 4; seed++ {
		status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses, Seed: seed})
		if status != http.StatusOK {
			t.Fatalf("seed %d: %d %s", seed, status, body)
		}
	}
	st := getStats(t, ts.URL)
	if st.MemoEntries != 2 {
		t.Errorf("bounded memo holds %d entries, want 2", st.MemoEntries)
	}
	if st.Evicted != 2 {
		t.Errorf("evicted: got %d, want 2", st.Evicted)
	}
}

func TestThreadedAndBenchRuns(t *testing.T) {
	_, ts := testServer(t, Config{})

	status, body := post(t, ts.URL+"/v1/run", RunRequest{Bench: "mcf", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("bench run: %d %s", status, body)
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Workload, "mix:4x-mcf[") && !strings.Contains(res.Workload, "mcf") {
		t.Errorf("bench workload label: %q", res.Workload)
	}

	status, body = post(t, ts.URL+"/v1/run", RunRequest{Bench: "x264", Threads: 2, Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("threaded run: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Workload != "bench:x264/threads=2" {
		t.Errorf("threaded workload label: %q", res.Workload)
	}
	if len(res.IPCs) != 2 {
		t.Errorf("threaded IPCs: got %d cores, want 2", len(res.IPCs))
	}
}

// TestRunConfigOverride checks a partial config JSON really reaches the
// simulator (and splits the cache key from the default-config run).
func TestRunConfigOverride(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := RunRequest{Bench: "mcf", Accesses: smallAccesses}
	over := RunRequest{Bench: "mcf", Accesses: smallAccesses, Config: json.RawMessage(`{"Cores": 2}`)}

	s1, b1 := post(t, ts.URL+"/v1/run", base)
	s2, b2 := post(t, ts.URL+"/v1/run", over)
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("runs failed: %d %s / %d %s", s1, b1, s2, b2)
	}
	var r1, r2 RunResult
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}
	if len(r1.IPCs) != 4 || len(r2.IPCs) != 2 {
		t.Fatalf("config override did not take: %d vs %d cores", len(r1.IPCs), len(r2.IPCs))
	}
	if st := getStats(t, ts.URL); st.Computed != 2 {
		t.Errorf("distinct configs coalesced: computed=%d, want 2", st.Computed)
	}
}

// TestRunContextCancel covers the 499 path without waiting out a timeout.
func TestRunContextCancel(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 4, RequestTimeout: time.Minute})
	s.sem <- struct{}{} // park the worker slot so the request queues
	defer func() { <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	data, _ := json.Marshal(RunRequest{Mix: "WL1", Accesses: smallAccesses})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}
	// The handler must have released its queue slot despite the cancel.
	deadline := time.Now().Add(2 * time.Second)
	for s.queued.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("queue slot leaked after cancel: queued=%d", got)
	}
}

// TestCachedRunBypassesWorkerSlots: a request for an already-cached key
// must be served by the memo fast path without waiting for (or burning)
// a worker slot. Pre-fix, runCell acquired the semaphore before looking
// at the memo, so cache hits queued behind running simulations.
func TestCachedRunBypassesWorkerSlots(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 2, RequestTimeout: time.Minute})
	req := RunRequest{Mix: "WL1", Accesses: smallAccesses}
	if status, body := post(t, ts.URL+"/v1/run", req); status != http.StatusOK {
		t.Fatalf("priming run: %d %s", status, body)
	}

	// Saturate every worker slot, as slow simulations would.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()

	type reply struct {
		status int
		body   []byte
	}
	done := make(chan reply, 1)
	go func() {
		status, body := post(t, ts.URL+"/v1/run", req)
		done <- reply{status, body}
	}()
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("cached run: %d %s", r.status, r.body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cached run queued behind saturated worker slots")
	}
	if st := getStats(t, ts.URL); st.Computed != 1 || st.Recalled == 0 {
		t.Fatalf("stats = computed %d recalled %d, want 1 and >0", st.Computed, st.Recalled)
	}
}

// TestMetricsEndpoint: GET /metrics serves the Prometheus text format
// with the load-bearing lapserved series present, and the run-latency
// histogram advances in the right provenance bucket.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	req := RunRequest{Mix: "WL1", Accesses: smallAccesses}
	for i := 0; i < 2; i++ { // one computed, one recalled
		if status, body := post(t, ts.URL+"/v1/run", req); status != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE lapserved_queue_depth gauge",
		"# TYPE lapserved_breaker_state gauge",
		"# TYPE lapserved_breaker_transitions_total counter",
		"# TYPE lapserved_retry_attempts_total counter",
		"# TYPE lapserved_run_duration_seconds histogram",
		`lapserved_retry_attempts_total{outcome="success"} 0`,
		`lapserved_breaker_transitions_total{to="open"} 0`,
		"lapserved_memo_computed_total 1",
		"lapserved_queue_limit " + fmt.Sprint(defaultQueueDepth),
		"lapserved_breaker_state 0",
		`lapserved_run_duration_seconds_bucket{source="computed",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap[`lapserved_run_duration_seconds_count{source="computed"}`]; got != 1 {
		t.Errorf("computed latency count = %v, want 1", got)
	}
	if got := snap[`lapserved_run_duration_seconds_count{source="recalled"}`]; got < 1 {
		t.Errorf("recalled latency count = %v, want >= 1", got)
	}
	if got := snap["lapserved_memo_recalled_total"]; got < 1 {
		t.Errorf("memo recalled = %v, want >= 1", got)
	}
}
