package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	lap "repro"
	"repro/internal/fault"
	"repro/internal/obs/journal"
	"repro/internal/pool"
	"repro/internal/trace"
)

// The wire types of lapserved's JSON API. Response structs contain only
// deterministic, order-stable fields: a sweep's body must be
// byte-identical regardless of worker count, so nothing scheduling-
// dependent (timings, cache hit flags, jobs) ever appears in a result.

// RunRequest asks for one simulation. Exactly one of Mix, Bench, or
// Trace selects the workload; Config is a partial machine configuration
// overlaid on the paper's defaults (same semantics as `lapsim -config`).
type RunRequest struct {
	// Config is a partial sim.Config JSON object (omitted fields keep the
	// paper's Table II defaults).
	Config json.RawMessage `json:"config,omitempty"`
	// Policy is an inclusion policy name (lap.Policies, optionally with
	// the "+DWB" suffix). Default "LAP".
	Policy string `json:"policy,omitempty"`
	// Mix is a Table III mix name (WL1..WH5) or comma-separated benchmark
	// names, one per core.
	Mix string `json:"mix,omitempty"`
	// Bench is a single benchmark duplicated per core, or run threaded
	// with coherence when Threads > 0.
	Bench   string `json:"bench,omitempty"`
	Threads int    `json:"threads,omitempty"`
	// Trace names a previously uploaded trace (POST /v1/traces), replayed
	// on every core.
	Trace string `json:"trace,omitempty"`
	// Accesses is the per-core trace length (default 400000; for Trace
	// workloads, default the full trace).
	Accesses uint64 `json:"accesses,omitempty"`
	// Seed makes the synthetic workloads deterministic (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Mode selects the simulation mode: "" or "exact" (default,
	// bit-reproducible) or "sampled" (interval-sampled estimation for mix
	// and bench workloads; threaded and trace runs must stay exact).
	// Sampled results carry sampled:true plus a Sample error report, and
	// cache separately from exact results for the same workload.
	Mode string `json:"mode,omitempty"`
	// SampleInterval is the sampled-mode interval length in accesses per
	// core (0 = accesses/50, floored at 1000). Requires Mode "sampled".
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	// SampleClusters is the number of detailed representative intervals
	// (0 = ~sqrt of the interval count). Requires Mode "sampled".
	SampleClusters int `json:"sample_clusters,omitempty"`
	// SampleWarmup is the functional re-warm window count before each
	// representative (0 = 1). Requires Mode "sampled".
	SampleWarmup int `json:"sample_warmup,omitempty"`
}

// RunResult is one simulation's outcome. Error is set — and the metric
// fields zero — when the cell failed; it is omitted entirely on success,
// so successful cells serialize byte-identically whether or not other
// cells of their sweep failed.
type RunResult struct {
	Policy       string    `json:"policy"`
	Workload     string    `json:"workload"`
	Accesses     uint64    `json:"accesses"`
	Seed         uint64    `json:"seed"`
	MPKI         float64   `json:"mpki"`
	Throughput   float64   `json:"throughput"`
	Cycles       uint64    `json:"cycles"`
	EPIStaticNJ  float64   `json:"epi_static_nj"`
	EPIDynamicNJ float64   `json:"epi_dynamic_nj"`
	EPITotalNJ   float64   `json:"epi_total_nj"`
	TotalNJ      float64   `json:"total_nj"`
	IPCs         []float64 `json:"ipcs"`
	// Sampled marks an interval-sampled (estimated) result; Sample then
	// carries the run's confidence report. Both are absent on exact runs,
	// so exact responses stay byte-identical to pre-sampling versions.
	Sampled bool                `json:"sampled,omitempty"`
	Sample  *lap.SampleEstimate `json:"sample,omitempty"`
	Error   *CellError          `json:"error,omitempty"`
}

// CellError is one failed cell's error on the wire. Kind is the failure
// taxonomy: "fault" (injected), "panic" (recovered simulation panic),
// "cancelled" (drain or client cancel), "timeout" (request deadline),
// "error" (anything else).
type CellError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// SweepRequest fans one run per (mix, policy) grid cell onto the worker
// pool. Results come back mix-major in request order, byte-identical for
// any Jobs value.
type SweepRequest struct {
	Config json.RawMessage `json:"config,omitempty"`
	// Policies defaults to every implemented policy (Table IV order).
	Policies []string `json:"policies,omitempty"`
	// Mixes defaults to the ten Table III mixes. Each entry is a mix name
	// or comma-separated benchmark names.
	Mixes    []string `json:"mixes,omitempty"`
	Accesses uint64   `json:"accesses,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	// Jobs caps the sweep's fan-out; clamped to the server's worker cap.
	// 0 uses the server cap, 1 is fully serial.
	Jobs int `json:"jobs,omitempty"`
	// Mode and the Sample* knobs apply to every cell (see RunRequest).
	// A sampled sweep pays one functional profiling pass per mix, shared
	// across its policies.
	Mode           string `json:"mode,omitempty"`
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleClusters int    `json:"sample_clusters,omitempty"`
	SampleWarmup   int    `json:"sample_warmup,omitempty"`
}

// SweepResponse carries the grid's results, mix-major in request order.
// A sweep is a partial-result API: failed cells stay in Results (with
// Error set) so the grid keeps its shape, and Failed/Cancelled count
// them. Both counters are zero — and omitted — on a fully clean sweep,
// keeping clean responses byte-identical to pre-failure-domain ones.
type SweepResponse struct {
	Results   []RunResult `json:"results"`
	Failed    int         `json:"failed,omitempty"`
	Cancelled int         `json:"cancelled,omitempty"`
	// Skipped lists policies the default ("all") policy expansion
	// dropped as ineligible under the request's configuration, with the
	// reason. Empty — and omitted — when policies were named explicitly
	// or nothing was skipped.
	Skipped []string `json:"skipped,omitempty"`
}

// TraceUploadResponse acknowledges a stored trace.
type TraceUploadResponse struct {
	Name    string `json:"name"`
	Records uint64 `json:"records"`
	Digest  string `json:"digest"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	// Computed/Recalled/Evicted are the cumulative result-cache counters:
	// simulations executed, requests served by coalescing or recall, and
	// entries dropped by the LRU bound.
	Computed uint64 `json:"computed"`
	Recalled uint64 `json:"recalled"`
	Evicted  uint64 `json:"evicted"`
	// MemoEntries is the current resident entry count.
	MemoEntries int `json:"memo_entries"`
	// Queued counts admitted-but-unfinished jobs (the bounded queue's
	// occupancy); InFlight the simulations executing right now.
	Queued   int64 `json:"queued"`
	InFlight int64 `json:"in_flight"`
	// Traces is the number of stored uploaded traces.
	Traces int `json:"traces"`
	// Run latency quantiles over the most recent computed simulations
	// (seconds); zero until the first simulation completes.
	RunLatencyP50Sec  float64 `json:"run_latency_p50_sec"`
	RunLatencyP95Sec  float64 `json:"run_latency_p95_sec"`
	RunLatencySamples int     `json:"run_latency_samples"`
	// MemoFailed counts computations that errored or panicked (never
	// cached); Failures counts runs that stayed failed after retries,
	// Retries the retry attempts made.
	MemoFailed uint64 `json:"memo_failed"`
	Failures   uint64 `json:"failures"`
	Retries    uint64 `json:"retries"`
	// Breaker state: "closed", "open", "half-open", or "disabled";
	// BreakerOpens counts trips, BreakerShed requests refused with 503.
	BreakerState string `json:"breaker_state"`
	BreakerOpens uint64 `json:"breaker_opens"`
	BreakerShed  uint64 `json:"breaker_shed"`
	// Checkpoint reports the attached checkpoint store's durability
	// counters; absent when no store is configured, so storeless
	// responses stay byte-identical to pre-checkpoint versions.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`
	// Events reports the operational journal's counters (emitted events,
	// ring/subscriber drops, live /v1/events subscribers); absent when
	// the journal is disabled.
	Events *journal.Stats `json:"events,omitempty"`
	// SLO reports the rolling-window request objectives and burn rates.
	SLO *SLOStats `json:"slo,omitempty"`
}

// SLOStats is the /v1/stats slo block: the configured objectives plus
// one rolling-window accounting row per configured window.
type SLOStats struct {
	// Objective is the availability target (fraction of run/sweep
	// requests that must not fail server-side).
	Objective float64 `json:"objective"`
	// LatencyObjective is the fraction of requests that must finish
	// within LatencyTargetSec.
	LatencyObjective float64     `json:"latency_objective"`
	LatencyTargetSec float64     `json:"latency_target_sec"`
	Windows          []SLOWindow `json:"windows"`
}

// SLOWindow is one rolling window's request accounting. Burn rates are
// the SRE convention: bad-event fraction divided by the error budget
// (1 − objective); 1.0 burns the budget exactly at the window's pace,
// higher exhausts it early.
type SLOWindow struct {
	Window           string  `json:"window"`
	Total            uint64  `json:"total"`
	Errors           uint64  `json:"errors"`
	Slow             uint64  `json:"slow"`
	SuccessRate      float64 `json:"success_rate"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// ReadyzResponse is the GET /readyz payload. Ready gates routing:
// false (with a 503) from drain start and while the breaker is open.
// Degraded lists watchdog subsystems currently unhealthy — advisory
// detail, not a readiness gate.
type ReadyzResponse struct {
	Ready    bool     `json:"ready"`
	Reasons  []string `json:"reasons,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
}

// CheckpointStats is the checkpoint store's counter snapshot on the
// wire (see internal/checkpoint.Metrics for semantics).
type CheckpointStats struct {
	// Writes/WriteErrors count checkpoint persist attempts and failures;
	// a write failure never fails the run it was snapshotting.
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors,omitempty"`
	// Restores counts runs warm-started from a stored checkpoint;
	// IntervalsSaved sums the checkpoint intervals those restores skipped
	// re-simulating.
	Restores       uint64 `json:"restores"`
	IntervalsSaved uint64 `json:"resume_intervals_saved"`
	// Corrupt and VersionMismatch count quarantined entries (CRC or key
	// echo failures, and intact files from another format version).
	Corrupt         uint64 `json:"corrupt,omitempty"`
	VersionMismatch uint64 `json:"version_mismatch,omitempty"`
	// BytesWritten/BytesRead meter store I/O volume.
	BytesWritten uint64 `json:"bytes_written"`
	BytesRead    uint64 `json:"bytes_read"`
}

// HealthzResponse is the GET /healthz payload: liveness plus the
// signals an operator needs first when the instance looks sick.
type HealthzResponse struct {
	// Status is "ok", or "draining" while the instance is being pulled
	// from rotation. Liveness is always 200 — /readyz carries the 503
	// that takes the instance out of routing.
	Status string `json:"status"`
	// Breaker is the circuit breaker's position: "closed", "open",
	// "half-open", or "disabled".
	Breaker string `json:"breaker"`
	// QueueDepth is the bounded job queue's occupancy, QueueLimit its
	// configured bound (admissions past it answer 429).
	QueueDepth int64 `json:"queue_depth"`
	QueueLimit int   `json:"queue_limit"`
	// InFlight is the number of simulations executing right now.
	InFlight int64 `json:"in_flight"`
}

// errorResponse is every non-2xx body. Kind carries the failure taxonomy
// (see CellError); Field names the offending Config field on validation
// failures.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
	Field string `json:"field,omitempty"`
}

// runKey identifies one simulation run in the result cache. lap.Config
// is embedded by value (comparable — see sim's TestMemoKeyConfigFields),
// so identical (config, workload) pairs coalesce onto one computation.
type runKey struct {
	Cfg      lap.Config
	Policy   string
	Workload string
	Accesses uint64
	Seed     uint64
}

// profileKey identifies one functional profile in the server's profile
// cache. Policy is absent — profiles are policy-independent — and the
// replay-shaping knobs (Banks, SampleClusters, SampleWarmup) are
// normalised away, so a sampled sweep's six-plus policies per mix share
// one profiling pass.
type profileKey struct {
	Cfg      lap.Config
	Workload string
	Accesses uint64
	Seed     uint64
}

// profileFor builds (or recalls) the functional profile for a sampled
// spec. Coalescing matters here the same way it does for runs:
// concurrent policies over one workload block on a per-key latch while
// the first builds the profile.
func (s *Server) profileFor(sp *runSpec) (*lap.SampleProfile, error) {
	kcfg := sp.cfg
	kcfg.Banks = 0
	kcfg.SampleClusters = 0
	kcfg.SampleWarmup = 0
	key := profileKey{Cfg: kcfg, Workload: sp.key.Workload, Accesses: sp.accesses, Seed: sp.seed}
	return s.profiles.DoErr(context.Background(), key, func() (*lap.SampleProfile, error) {
		if s.cfg.Checkpoints != nil {
			// A digest-matching persisted profile replaces the functional
			// profiling pass across restarts; store failures degrade to a
			// fresh build inside LoadOrBuildSampleProfile.
			prof, _, err := lap.LoadOrBuildSampleProfile(sp.cfg, sp.mix, sp.accesses, sp.seed, s.cfg.Checkpoints)
			return prof, err
		}
		return lap.BuildSampleProfile(sp.cfg, sp.mix, sp.accesses, sp.seed)
	})
}

// runKind discriminates the workload shapes a runSpec can execute.
type runKind int

const (
	kindMix runKind = iota
	kindThreaded
	kindTrace
)

// runSpec is a fully resolved, validated run: everything needed to
// execute without further lookups (the trace snapshot is taken at
// resolve time, so a concurrent re-upload cannot tear a run).
type runSpec struct {
	key      runKey
	cfg      lap.Config
	policy   lap.Policy
	kind     runKind
	mix      lap.Mix
	bench    lap.Benchmark
	traceAcc []lap.Access
	accesses uint64
	seed     uint64
	// profile supplies the functional profile for sampled runs (nil on
	// exact runs). Set at resolve time to a closure over the server's
	// profile cache, so every policy replaying the same workload shares
	// one profiling pass.
	profile func() (*lap.SampleProfile, error)
	// ckpt is the server's checkpoint store when this run should snapshot
	// and warm-start (exact mix runs only); nil runs cold. cfg's
	// CheckpointEvery carries the spacing.
	ckpt *lap.CheckpointStore
}

// badRequestError marks resolution failures the client caused (400, as
// opposed to internal execution failures). field names the offending
// Config field when the failure was a validation error.
type badRequestError struct {
	msg   string
	field string
}

func (e badRequestError) Error() string { return e.msg }

func badReqf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// policyBadRequest shapes a registry policy-resolution failure into a
// 400 carrying the "Policy" field, matching config validation errors.
func policyBadRequest(err error) error {
	var fe *lap.FieldError
	if errors.As(err, &fe) {
		return badRequestError{msg: err.Error(), field: fe.Field}
	}
	return badReqf("%v", err)
}

// resolveRun validates a RunRequest into an executable spec.
func (s *Server) resolveRun(req RunRequest) (*runSpec, error) {
	cfg, err := lap.ParseConfig(req.Config)
	if err != nil {
		var fe *lap.FieldError
		if errors.As(err, &fe) {
			return nil, badRequestError{msg: err.Error(), field: fe.Field}
		}
		return nil, badReqf("%v", err)
	}

	sampled := false
	switch req.Mode {
	case "", "exact":
		if req.SampleInterval != 0 || req.SampleClusters != 0 || req.SampleWarmup != 0 {
			return nil, badReqf("sample_interval, sample_clusters, and sample_warmup require mode %q", "sampled")
		}
	case "sampled":
		sampled = true
	default:
		return nil, badReqf("unknown mode %q (want %q or %q)", req.Mode, "exact", "sampled")
	}

	// Policy names resolve through the registry: the stored canonical
	// spelling keys the run cache, so case variants of one policy hit
	// the same cached result instead of simulating twice.
	policy := lap.Policy(req.Policy)
	if policy == "" {
		policy = lap.PolicyLAP
	}
	policy, err = lap.ValidatePolicy(cfg, policy)
	if err != nil {
		return nil, policyBadRequest(err)
	}

	accesses := req.Accesses
	if accesses == 0 {
		accesses = defaultAccesses
	}
	if accesses > s.cfg.MaxAccesses {
		return nil, badReqf("accesses %d exceeds the server cap %d", accesses, s.cfg.MaxAccesses)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	selected := 0
	for _, set := range []bool{req.Mix != "", req.Bench != "", req.Trace != ""} {
		if set {
			selected++
		}
	}
	if selected != 1 {
		return nil, badReqf("exactly one of mix, bench, or trace must be set")
	}

	sp := &runSpec{cfg: cfg, policy: policy, accesses: accesses, seed: seed}
	var workload string
	switch {
	case req.Trace != "":
		st, ok := s.store.get(req.Trace)
		if !ok {
			return nil, badReqf("unknown trace %q (upload it via POST /v1/traces?name=%s)", req.Trace, req.Trace)
		}
		sp.kind = kindTrace
		sp.traceAcc = st.accs
		if req.Accesses == 0 {
			sp.accesses = st.records
		}
		// The digest keys the cache to the trace's content, so
		// re-uploading a different trace under the same name cannot
		// recall stale results.
		workload = fmt.Sprintf("trace:%s@%016x", req.Trace, st.digest)
	case req.Bench != "" && req.Threads > 0:
		b, err := lap.BenchmarkByName(req.Bench)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		sp.kind = kindThreaded
		sp.bench = b
		sp.cfg.Cores = req.Threads
		workload = fmt.Sprintf("bench:%s/threads=%d", b.Name, req.Threads)
	case req.Bench != "":
		b, err := lap.BenchmarkByName(req.Bench)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		sp.kind = kindMix
		sp.mix = lap.DuplicateMix(b.Name, cfg.Cores)
		workload = "mix:" + sp.mix.Name + "[" + strings.Join(sp.mix.Members, ",") + "]"
	default:
		mix, err := resolveMix(req.Mix, cfg.Cores)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		sp.kind = kindMix
		sp.mix = mix
		workload = "mix:" + mix.Name + "[" + strings.Join(mix.Members, ",") + "]"
	}

	if sampled {
		if sp.kind != kindMix {
			return nil, badReqf("mode %q supports mix and bench workloads only (threaded and trace runs must be exact)", "sampled")
		}
		sp.cfg.SampleInterval = req.SampleInterval
		if sp.cfg.SampleInterval == 0 {
			sp.cfg.SampleInterval = sp.accesses / 50
			if sp.cfg.SampleInterval < 1000 {
				sp.cfg.SampleInterval = 1000
			}
		}
		sp.cfg.SampleClusters = req.SampleClusters
		sp.cfg.SampleWarmup = req.SampleWarmup
		if sp.cfg.SampleWarmup == 0 {
			sp.cfg.SampleWarmup = 1
		}
		// Re-validate: the sampling knobs have their own ranges, and an
		// explicit out-of-range request must 400 with the field named
		// rather than be silently clamped.
		if err := sp.cfg.Validate(); err != nil {
			var fe *lap.FieldError
			if errors.As(err, &fe) {
				return nil, badRequestError{msg: err.Error(), field: fe.Field}
			}
			return nil, badReqf("%v", err)
		}
		// With SampleInterval now set, the registry's sampled-eligible
		// gate applies: exact-only policies 400 here instead of running
		// through a mode that would silently mis-predict.
		if _, err := lap.ValidatePolicy(sp.cfg, policy); err != nil {
			return nil, policyBadRequest(err)
		}
		sp.profile = func() (*lap.SampleProfile, error) { return s.profileFor(sp) }
	}

	// Exact mix runs pick up the checkpoint store: snapshots every
	// CheckpointEvery accesses, and a re-issued run matching a stored
	// prefix warm-starts instead of simulating from access zero. Results
	// are byte-identical either way.
	if s.cfg.Checkpoints != nil && sp.kind == kindMix && !sampled {
		sp.ckpt = s.cfg.Checkpoints
		if sp.cfg.CheckpointEvery == 0 {
			sp.cfg.CheckpointEvery = s.cfg.CheckpointEvery
		}
	}

	// The Sample* fields ride inside Cfg, so sampled results key — and
	// cache — separately from exact results of the same workload.
	sp.key = runKey{
		Cfg:      sp.cfg,
		Policy:   string(policy),
		Workload: workload,
		Accesses: sp.accesses,
		Seed:     seed,
	}
	// Banks only changes how a run is scheduled, never its result, and
	// CheckpointEvery only changes durability, so requests differing in
	// either coalesce onto one cache entry.
	sp.key.Cfg.Banks = 0
	sp.key.Cfg.CheckpointEvery = 0
	return sp, nil
}

// resolveMix accepts a Table III mix name (case-insensitive) or
// comma-separated benchmark names, one per core.
func resolveMix(arg string, cores int) (lap.Mix, error) {
	for _, m := range lap.TableIII() {
		if strings.EqualFold(m.Name, arg) {
			return m, nil
		}
	}
	members := strings.Split(arg, ",")
	if len(members) != cores {
		return lap.Mix{}, fmt.Errorf("mix %q has %d members for %d cores", arg, len(members), cores)
	}
	for i, m := range members {
		members[i] = strings.TrimSpace(m)
		if _, err := lap.BenchmarkByName(members[i]); err != nil {
			return lap.Mix{}, err
		}
	}
	return lap.Mix{Name: "custom", Members: members}, nil
}

// cellKey labels the cell in failures and fault-point matches:
// "workload|policy", e.g. "mix:WH1[...]|LAP".
func (sp *runSpec) cellKey() string {
	return sp.key.Workload + "|" + sp.key.Policy
}

// execute runs the simulation. Panics (bad geometry the validator
// missed, zero-instruction traces) are recovered into typed
// *pool.RunError values — the cell's failure domain is itself; a worker
// goroutine can never take the process down. The server.execute fault
// point fires first, so chaos tests can target one cell by key.
//
// tel optionally observes the run per interval (the /v1/events bridge);
// nil is fully off. Checkpointed and sampled executions run through
// entry points without an observation hook and ignore it. Telemetry
// never steers the simulation, so results are byte-identical either
// way.
func (sp *runSpec) execute(tel *lap.Telemetry) (res lap.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = lap.Result{}, pool.Recovered(sp.cellKey(), r)
		}
	}()
	if err := fault.Inject(fault.PointServerRun, sp.cellKey()); err != nil {
		return lap.Result{}, err
	}
	switch sp.kind {
	case kindThreaded:
		return lap.RunThreadedObserved(sp.cfg, sp.policy, sp.bench, sp.accesses, sp.seed, tel)
	case kindTrace:
		srcs := make([]lap.Source, sp.cfg.Cores)
		for i := range srcs {
			srcs[i] = trace.Limit(trace.NewSliceSource(sp.traceAcc), sp.accesses)
		}
		return lap.RunTracesObserved(sp.cfg, sp.policy, srcs, tel)
	default:
		if sp.profile != nil {
			prof, err := sp.profile()
			if err != nil {
				return lap.Result{}, err
			}
			return lap.RunSampledProfile(sp.cfg, sp.policy, prof)
		}
		if sp.ckpt != nil && sp.cfg.CheckpointEvery > 0 {
			return lap.RunResumable(sp.cfg, sp.policy, sp.mix, sp.accesses, sp.seed, sp.ckpt)
		}
		return lap.RunObserved(sp.cfg, sp.policy, sp.mix, sp.accesses, sp.seed, tel)
	}
}

// result shapes a successful run for the wire.
func (sp *runSpec) result(r lap.Result) RunResult {
	rr := RunResult{
		Policy:       string(sp.policy),
		Workload:     sp.key.Workload,
		Accesses:     sp.accesses,
		Seed:         sp.seed,
		MPKI:         r.MPKI(),
		Throughput:   r.Throughput,
		Cycles:       r.Cycles,
		EPIStaticNJ:  r.EPI.StaticNJPerInstr,
		EPIDynamicNJ: r.EPI.DynamicNJPerInstr,
		EPITotalNJ:   r.EPI.Total(),
		TotalNJ:      r.TotalNJ,
		IPCs:         r.IPCs,
	}
	if r.Sample != nil {
		rr.Sampled = true
		rr.Sample = r.Sample
	}
	return rr
}

// errorResult shapes a failed sweep cell for the wire: identity fields
// only, metrics zero, Error set.
func (sp *runSpec) errorResult(kind string, err error) RunResult {
	return RunResult{
		Policy:   string(sp.policy),
		Workload: sp.key.Workload,
		Accesses: sp.accesses,
		Seed:     sp.seed,
		Error:    &CellError{Kind: kind, Message: err.Error()},
	}
}
