package server

// Crash-safety end-to-end: warm starts across server restarts, durable
// trace uploads surviving reboots, and the chaos half of the contract —
// checkpoint write failures and corrupted checkpoint files must degrade
// to cold starts (counted, quarantined) without ever failing a request.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	lap "repro"
	"repro/internal/fault"
	"repro/internal/trace"
)

// ckptAccesses gives the small test runs a few checkpoint intervals:
// 2000 accesses/core x 4 cores = 8000 total, 8 intervals at the
// validator's minimum spacing of 1000.
const ckptAccesses = smallAccesses

func openTestStore(t *testing.T, dir string) *lap.CheckpointStore {
	t.Helper()
	st, err := lap.OpenCheckpointStore(dir)
	if err != nil {
		t.Fatalf("opening checkpoint store: %v", err)
	}
	return st
}

// runOnce posts one fixed WL1 run and returns the raw response bytes.
func runOnce(t *testing.T, base string) []byte {
	t.Helper()
	status, body := post(t, base+"/v1/run", RunRequest{Mix: "WL1", Accesses: ckptAccesses})
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	return body
}

func TestCheckpointWarmStartAcrossRestart(t *testing.T) {
	// Ground truth: a server with no checkpointing at all.
	_, plain := testServer(t, Config{})
	ref := runOnce(t, plain.URL)

	dir := t.TempDir()
	_, first := testServer(t, Config{Checkpoints: openTestStore(t, dir), CheckpointEvery: 1000})
	if got := runOnce(t, first.URL); !bytes.Equal(got, ref) {
		t.Fatalf("checkpointed run diverged from plain run:\n ref %s\n got %s", ref, got)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) == 0 {
		t.Fatal("no checkpoint file persisted")
	}

	// "Restart": a brand-new server and store over the same directory.
	// The re-issued run must warm-start from the persisted checkpoint
	// and reproduce the reference bytes.
	st2 := openTestStore(t, dir)
	_, second := testServer(t, Config{Checkpoints: st2, CheckpointEvery: 1000})
	if got := runOnce(t, second.URL); !bytes.Equal(got, ref) {
		t.Fatalf("warm-started run diverged:\n ref %s\n got %s", ref, got)
	}
	if r := st2.Metrics().Restores(); r != 1 {
		t.Errorf("restores = %d, want 1", r)
	}
	if s := st2.Metrics().IntervalsSaved(); s == 0 {
		t.Error("warm start saved no intervals")
	}
	stats := getStats(t, second.URL)
	if stats.Checkpoint == nil || stats.Checkpoint.Restores != 1 {
		t.Errorf("/v1/stats checkpoint block = %+v, want restores 1", stats.Checkpoint)
	}

	// The storeless server's stats must not grow a checkpoint block.
	if st := getStats(t, plain.URL); st.Checkpoint != nil {
		t.Errorf("storeless /v1/stats grew a checkpoint block: %+v", st.Checkpoint)
	}
}

func TestChaosCheckpointWriteFaultDegradesToCold(t *testing.T) {
	_, plain := testServer(t, Config{})
	ref := runOnce(t, plain.URL)

	if err := fault.Arm(fault.Spec{Point: fault.PointCheckpointWrite, Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	st := openTestStore(t, t.TempDir())
	_, ts := testServer(t, Config{Checkpoints: st, CheckpointEvery: 1000})
	// A sweep, so several cells all hit the failing writes mid-flight.
	status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
		Mixes: []string{"WL1"}, Policies: []string{"LAP", "non-inclusive"}, Accesses: ckptAccesses,
	})
	if status != http.StatusOK {
		t.Fatalf("sweep under write faults: %d %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || resp.Cancelled != 0 {
		t.Fatalf("cells failed under checkpoint write faults: %+v", resp)
	}
	if got := runOnce(t, ts.URL); !bytes.Equal(got, ref) {
		t.Fatalf("run under write faults diverged from plain run:\n ref %s\n got %s", ref, got)
	}
	if we := st.Metrics().WriteErrors(); we == 0 {
		t.Error("write faults fired but write_errors stayed 0")
	}
	if w := st.Metrics().Writes(); w != 0 {
		t.Errorf("writes = %d under a total write fault, want 0", w)
	}
}

func TestChaosCorruptCheckpointFileDegradesToCold(t *testing.T) {
	_, plain := testServer(t, Config{})
	ref := runOnce(t, plain.URL)

	dir := t.TempDir()
	_, first := testServer(t, Config{Checkpoints: openTestStore(t, dir), CheckpointEvery: 1000})
	runOnce(t, first.URL)
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("checkpoint files = %d, want 1", len(files))
	}

	// Flip one byte mid-file: the CRC must catch it on the next boot.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	_, second := testServer(t, Config{Checkpoints: st2, CheckpointEvery: 1000})
	if got := runOnce(t, second.URL); !bytes.Equal(got, ref) {
		t.Fatalf("run over a corrupt checkpoint diverged:\n ref %s\n got %s", ref, got)
	}
	if c := st2.Metrics().Corrupt(); c == 0 {
		t.Error("corrupt checkpoint consumed without incrementing the corrupt counter")
	}
	if r := st2.Metrics().Restores(); r != 0 {
		t.Errorf("restores = %d from a corrupt-only store, want 0", r)
	}
	// The corrupt bytes were quarantined to *.bad; the cold re-run then
	// legitimately published a fresh checkpoint at the same interval, so
	// only the .bad file proves the quarantine happened.
	bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bad) != 1 {
		t.Errorf("quarantined files = %d, want 1", len(bad))
	}

	// The required series, live on /metrics, after the corruption.
	status, met := get(t, second.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	found := false
	for _, line := range strings.Split(string(met), "\n") {
		if f, ok := strings.CutPrefix(line, "lap_checkpoint_corrupt_total "); ok {
			found = true
			if f == "0" {
				t.Errorf("lap_checkpoint_corrupt_total = %s, want >= 1", f)
			}
		}
	}
	if !found {
		t.Error("lap_checkpoint_corrupt_total missing from /metrics")
	}
}

func TestChaosCheckpointRestoreFaultFallsBackCold(t *testing.T) {
	_, plain := testServer(t, Config{})
	ref := runOnce(t, plain.URL)

	dir := t.TempDir()
	_, first := testServer(t, Config{Checkpoints: openTestStore(t, dir), CheckpointEvery: 1000})
	runOnce(t, first.URL)

	if err := fault.Arm(fault.Spec{Point: fault.PointCheckpointRestore, Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	st2 := openTestStore(t, dir)
	_, second := testServer(t, Config{Checkpoints: st2, CheckpointEvery: 1000})
	if got := runOnce(t, second.URL); !bytes.Equal(got, ref) {
		t.Fatalf("run under restore faults diverged:\n ref %s\n got %s", ref, got)
	}
	if r := st2.Metrics().Restores(); r != 0 {
		t.Errorf("restores = %d under a restore fault, want 0", r)
	}
}

func TestTraceStoreSurvivesRestartAndQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	accs := make([]trace.Access, 0, 256)
	for i := 0; i < 256; i++ {
		accs = append(accs, trace.Access{Addr: uint64(i) * 64, Write: i%5 == 0, Instrs: 1})
	}
	var buf bytes.Buffer
	if _, err := trace.WriteAll(&buf, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}

	_, first := testServer(t, Config{TraceStoreDir: dir})
	resp, err := http.Post(first.URL+"/v1/traces?name=durable", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "durable.trace")); err != nil {
		t.Fatalf("upload not persisted: %v", err)
	}

	// A crash mid-upload leaves at worst a temp file and a truncated
	// garbage file under some other name — plant both and reboot.
	if err := os.WriteFile(filepath.Join(dir, "upload-123.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.trace"), buf.Bytes()[:11], 0o644); err != nil {
		t.Fatal(err)
	}

	_, second := testServer(t, Config{TraceStoreDir: dir})
	if st := getStats(t, second.URL); st.Traces != 1 {
		t.Errorf("reloaded traces = %d, want 1 (torn file must not load)", st.Traces)
	}
	status, body := post(t, second.URL+"/v1/run", RunRequest{Trace: "durable", Accesses: 256})
	if status != http.StatusOK {
		t.Fatalf("run on reloaded trace: %d %s", status, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.trace.bad")); err != nil {
		t.Errorf("torn trace not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.trace")); !os.IsNotExist(err) {
		t.Error("torn trace still present under its live name")
	}
}
