package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"
)

// bundleTraceMax bounds how many recent request traces ride in one
// diagnostics bundle.
const bundleTraceMax = 16

// bundleMeta is the bundle's self-description (meta.json).
type bundleMeta struct {
	GeneratedAt  string  `json:"generated_at"`
	GoVersion    string  `json:"go_version"`
	PID          int     `json:"pid"`
	UptimeSec    float64 `json:"uptime_sec"`
	NumGoroutine int     `json:"num_goroutine"`
}

// resolvedConfig is the server's effective configuration after
// defaulting, shaped for the bundle (config.json). Pointer-valued
// Config fields (registry, logger, checkpoint store) render as
// attached/not-attached booleans.
type resolvedConfig struct {
	Jobs                int     `json:"jobs"`
	QueueDepth          int     `json:"queue_depth"`
	RequestTimeoutSec   float64 `json:"request_timeout_sec"`
	MemoEntries         int     `json:"memo_entries"`
	MaxTraceBytes       int64   `json:"max_trace_bytes"`
	MaxAccesses         uint64  `json:"max_accesses"`
	RetryMax            int     `json:"retry_max"`
	RetryBackoffMS      float64 `json:"retry_backoff_ms"`
	BreakerThreshold    int     `json:"breaker_threshold"`
	BreakerCooldownMS   float64 `json:"breaker_cooldown_ms"`
	TraceRequests       int     `json:"trace_requests"`
	TraceDir            string  `json:"trace_dir,omitempty"`
	TraceStoreDir       string  `json:"trace_store_dir,omitempty"`
	CheckpointStore     bool    `json:"checkpoint_store"`
	CheckpointEvery     uint64  `json:"checkpoint_every"`
	JournalCapacity     int     `json:"journal_capacity"`
	WatchdogIntervalMS  float64 `json:"watchdog_interval_ms"`
	SLOObjective        float64 `json:"slo_objective"`
	SLOLatencyTargetSec float64 `json:"slo_latency_target_sec"`
}

// handleBundle serves GET /debug/bundle: one tar.gz snapshot of
// everything a support engineer asks for first — metrics exposition,
// recent journal events, recent request traces, the resolved config,
// /v1/stats (checkpoint-store stats included), and goroutine/heap pprof
// profiles — assembled in memory so a sick server never half-writes a
// bundle to disk.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	now := time.Now()
	add := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	addJSON := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return add(name, append(data, '\n'))
	}

	err := func() error {
		if err := addJSON("meta.json", bundleMeta{
			GeneratedAt:  now.UTC().Format(time.RFC3339Nano),
			GoVersion:    runtime.Version(),
			PID:          os.Getpid(),
			UptimeSec:    now.Sub(s.started).Seconds(),
			NumGoroutine: runtime.NumGoroutine(),
		}); err != nil {
			return err
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			if err := add("buildinfo.txt", []byte(bi.String())); err != nil {
				return err
			}
		}
		cfg := s.cfg
		if err := addJSON("config.json", resolvedConfig{
			Jobs:                cfg.Jobs,
			QueueDepth:          cfg.QueueDepth,
			RequestTimeoutSec:   cfg.RequestTimeout.Seconds(),
			MemoEntries:         cfg.MemoEntries,
			MaxTraceBytes:       cfg.MaxTraceBytes,
			MaxAccesses:         cfg.MaxAccesses,
			RetryMax:            cfg.RetryMax,
			RetryBackoffMS:      float64(cfg.RetryBackoff) / float64(time.Millisecond),
			BreakerThreshold:    cfg.BreakerThreshold,
			BreakerCooldownMS:   float64(cfg.BreakerCooldown) / float64(time.Millisecond),
			TraceRequests:       cfg.TraceRequests,
			TraceDir:            cfg.TraceDir,
			TraceStoreDir:       cfg.TraceStoreDir,
			CheckpointStore:     cfg.Checkpoints != nil,
			CheckpointEvery:     cfg.CheckpointEvery,
			JournalCapacity:     cfg.JournalCapacity,
			WatchdogIntervalMS:  float64(cfg.WatchdogInterval) / float64(time.Millisecond),
			SLOObjective:        s.slo.Config().Objective,
			SLOLatencyTargetSec: s.slo.Config().LatencyTarget.Seconds(),
		}); err != nil {
			return err
		}
		var mb bytes.Buffer
		if _, err := s.met.reg.WriteTo(&mb); err != nil {
			return err
		}
		if err := add("metrics.prom", mb.Bytes()); err != nil {
			return err
		}
		if err := addJSON("stats.json", s.statsSnapshot()); err != nil {
			return err
		}
		if s.journal != nil {
			var eb bytes.Buffer
			for _, e := range s.journal.Recent(0) {
				line, merr := json.Marshal(e)
				if merr != nil {
					continue
				}
				eb.Write(line)
				eb.WriteByte('\n')
			}
			if err := add("events.jsonl", eb.Bytes()); err != nil {
				return err
			}
		}
		if s.traces != nil {
			for _, t := range s.traces.recent(bundleTraceMax) {
				if err := add("traces/"+t.id+".json", t.data); err != nil {
					return err
				}
			}
		}
		for _, prof := range []string{"goroutine", "heap"} {
			var pb bytes.Buffer
			if p := pprof.Lookup(prof); p != nil {
				if err := p.WriteTo(&pb, 0); err != nil {
					return err
				}
			}
			if err := add(prof+".pprof", pb.Bytes()); err != nil {
				return err
			}
		}
		if err := tw.Close(); err != nil {
			return err
		}
		return gz.Close()
	}()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "assembling bundle: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="lapserved-bundle-%s.tar.gz"`, now.UTC().Format("20060102-150405")))
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Write(buf.Bytes())
}
