package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestHealthzBody(t *testing.T) {
	s, ts := testServer(t, Config{QueueDepth: 7})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body is not JSON: %v (%s)", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Breaker != "closed" {
		t.Errorf("breaker = %q, want closed", h.Breaker)
	}
	if h.QueueLimit != 7 {
		t.Errorf("queue_limit = %d, want 7", h.QueueLimit)
	}
	if h.QueueDepth != 0 || h.InFlight != 0 {
		t.Errorf("idle server reports occupancy: %+v", h)
	}

	s.SetDraining(true)
	status, body = get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("draining healthz: %d, want 200 (liveness survives drain)", status)
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "draining" {
		t.Fatalf("draining body: %s (err %v)", body, err)
	}
	if h.Breaker == "" {
		t.Error("draining body lost the breaker field")
	}
}

// postTraced is post plus the X-Trace-Id response header.
func postTraced(t *testing.T, url string, body any) (int, []byte, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes(), resp.Header.Get("X-Trace-Id")
}

// traceSpans fetches /v1/trace/{id} and returns the span names present.
func traceSpans(t *testing.T, base, id string) map[string]int {
	t.Helper()
	status, body := get(t, base+"/v1/trace/"+id)
	if status != http.StatusOK {
		t.Fatalf("trace %s: %d %s", id, status, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace %s is not valid trace-event JSON: %v", id, err)
	}
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name]++
		}
	}
	return spans
}

func TestRequestTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, Config{TraceDir: dir})

	status, body, id := postTraced(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	if id == "" {
		t.Fatal("traced run response carries no X-Trace-Id")
	}
	spans := traceSpans(t, ts.URL, id)
	// A first (uncached) run computes: the timeline must show the whole
	// path — request root, retry attempt, queue wait, memo compute, and
	// the execution itself.
	for _, want := range []string{"request", "attempt", "queue_wait", "memo.compute", "execute"} {
		if spans[want] == 0 {
			t.Errorf("trace %s lacks span %q (got %v)", id, want, spans)
		}
	}

	// The same run again recalls from the memo: provenance must show in
	// the trace as a peek hit with no execution.
	status, _, id2 := postTraced(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK || id2 == "" || id2 == id {
		t.Fatalf("second run: %d, trace %q", status, id2)
	}
	spans2 := traceSpans(t, ts.URL, id2)
	if spans2["execute"] != 0 {
		t.Errorf("recalled run executed: %v", spans2)
	}
	if spans2["memo.peek"] == 0 {
		t.Errorf("recalled run has no memo.peek span: %v", spans2)
	}

	// -trace-dir wrote both files.
	for _, tid := range []string{id, id2} {
		if _, err := os.Stat(filepath.Join(dir, tid+".json")); err != nil {
			t.Errorf("trace file for %s: %v", tid, err)
		}
	}

	// Unknown IDs are a clean 404.
	if status, _ := get(t, ts.URL+"/v1/trace/req-999999"); status != http.StatusNotFound {
		t.Errorf("unknown trace id: got %d, want 404", status)
	}
}

func TestRequestTracingDisabled(t *testing.T) {
	_, ts := testServer(t, Config{TraceRequests: -1})
	status, body, id := postTraced(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	// The correlation ID is independent of the tracer: every request gets
	// one (logs and journal events key on it) even when span recording is
	// off — but the trace endpoint has nothing to serve.
	if id == "" {
		t.Error("tracing disabled but response lost its X-Trace-Id correlation header")
	}
	if status, _ := get(t, ts.URL+"/v1/trace/"+id); status != http.StatusNotFound {
		t.Errorf("trace endpoint with tracing disabled: got %d, want 404", status)
	}
}

func TestTraceLogEvictsOldest(t *testing.T) {
	l := newTraceLog(3)
	for i := 1; i <= 5; i++ {
		l.put(fmt.Sprintf("req-%06d", i), []byte{byte(i)})
	}
	if l.count() != 3 {
		t.Fatalf("resident = %d, want 3", l.count())
	}
	for i := 1; i <= 2; i++ {
		if _, ok := l.get(fmt.Sprintf("req-%06d", i)); ok {
			t.Errorf("entry %d survived past the bound", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if data, ok := l.get(fmt.Sprintf("req-%06d", i)); !ok || data[0] != byte(i) {
			t.Errorf("entry %d missing or corrupt", i)
		}
	}
}
