package server

import (
	"encoding/binary"
	"hash/fnv"
	"regexp"
	"sync"

	"repro/internal/trace"
)

// traceStore holds uploaded traces decoded to access slices, keyed by
// name. Traces are immutable once stored (re-uploading a name replaces
// the whole entry), and run specs snapshot the slice at resolve time, so
// readers never observe a torn trace.
type traceStore struct {
	mu     sync.Mutex
	traces map[string]storedTrace
}

// storedTrace is one named upload.
type storedTrace struct {
	accs    []trace.Access
	records uint64
	// digest fingerprints the content; it joins the run cache key so a
	// re-upload under the same name invalidates cached results.
	digest uint64
}

func newTraceStore() *traceStore {
	return &traceStore{traces: map[string]storedTrace{}}
}

// traceNameRE bounds names to something path- and log-safe.
var traceNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// put stores (or replaces) a named trace.
func (ts *traceStore) put(name string, accs []trace.Access) storedTrace {
	st := storedTrace{accs: accs, records: uint64(len(accs)), digest: digest(accs)}
	ts.mu.Lock()
	ts.traces[name] = st
	ts.mu.Unlock()
	return st
}

// get returns the named trace.
func (ts *traceStore) get(name string) (storedTrace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.traces[name]
	return st, ok
}

// count reports the number of stored traces.
func (ts *traceStore) count() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// digest fingerprints an access stream (FNV-1a over the records' binary
// form).
func digest(accs []trace.Access) uint64 {
	h := fnv.New64a()
	var rec [11]byte
	for _, a := range accs {
		binary.LittleEndian.PutUint64(rec[0:8], a.Addr)
		rec[8] = 0
		if a.Write {
			rec[8] = 1
		}
		binary.LittleEndian.PutUint16(rec[9:11], a.Instrs)
		h.Write(rec[:])
	}
	return h.Sum64()
}
