package server

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"repro/internal/trace"
)

// traceStore holds uploaded traces decoded to access slices, keyed by
// name. Traces are immutable once stored (re-uploading a name replaces
// the whole entry), and run specs snapshot the slice at resolve time, so
// readers never observe a torn trace.
//
// With a directory attached the store is also durable: every accepted
// upload is written to dir/<name>.trace through a temp file and an
// atomic rename — a crash mid-upload can never leave a truncated trace
// under a live name — and the directory is reloaded at boot, with
// undecodable files quarantined to *.bad rather than trusted.
type traceStore struct {
	mu     sync.Mutex
	dir    string // "" = memory-only
	traces map[string]storedTrace
}

// storedTrace is one named upload.
type storedTrace struct {
	accs    []trace.Access
	records uint64
	// digest fingerprints the content; it joins the run cache key so a
	// re-upload under the same name invalidates cached results.
	digest uint64
}

const (
	traceFileExt = ".trace"
	traceBadExt  = ".bad"
)

// newTraceStore returns a store rooted at dir ("" = memory-only),
// reloading every previously persisted trace. Files that fail to decode
// are quarantined and skipped: one rotten file cannot keep the server
// from booting.
func newTraceStore(dir string) (*traceStore, error) {
	ts := &traceStore{dir: dir, traces: map[string]storedTrace{}}
	if dir == "" {
		return ts, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: opening trace store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading trace store: %w", err)
	}
	for _, de := range entries {
		name, ok := strings.CutSuffix(de.Name(), traceFileExt)
		if !ok || !traceNameRE.MatchString(name) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		accs, err := loadTraceFile(path)
		if err != nil || len(accs) == 0 {
			os.Rename(path, path+traceBadExt)
			continue
		}
		ts.traces[name] = storedTrace{accs: accs, records: uint64(len(accs)), digest: digest(accs)}
	}
	return ts, nil
}

// loadTraceFile decodes one persisted trace.
func loadTraceFile(path string) ([]trace.Access, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr := trace.NewReader(f)
	accs := trace.Drain(tr)
	return accs, tr.Err()
}

// traceNameRE bounds names to something path- and log-safe.
var traceNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// put stores (or replaces) a named trace, persisting it first when the
// store is durable: the in-memory map only changes once the bytes are
// safely renamed into place, so memory and disk cannot disagree after a
// failed write.
func (ts *traceStore) put(name string, accs []trace.Access) (storedTrace, error) {
	st := storedTrace{accs: accs, records: uint64(len(accs)), digest: digest(accs)}
	if ts.dir != "" {
		if err := ts.persist(name, accs); err != nil {
			return storedTrace{}, err
		}
	}
	ts.mu.Lock()
	ts.traces[name] = st
	ts.mu.Unlock()
	return st, nil
}

// persist durably writes one trace: temp file in the store directory,
// fsync, atomic rename onto <name>.trace.
func (ts *traceStore) persist(name string, accs []trace.Access) error {
	f, err := os.CreateTemp(ts.dir, "upload-*.tmp")
	if err != nil {
		return fmt.Errorf("server: creating trace temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := trace.WriteAll(f, trace.NewSliceSource(accs)); err != nil {
		return fail(fmt.Errorf("server: writing trace %s: %w", name, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("server: syncing trace %s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: closing trace %s: %w", name, err)
	}
	dst := filepath.Join(ts.dir, name+traceFileExt)
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: publishing trace %s: %w", name, err)
	}
	return nil
}

// get returns the named trace.
func (ts *traceStore) get(name string) (storedTrace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.traces[name]
	return st, ok
}

// count reports the number of stored traces.
func (ts *traceStore) count() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// digest fingerprints an access stream (FNV-1a over the records' binary
// form).
func digest(accs []trace.Access) uint64 {
	h := fnv.New64a()
	var rec [11]byte
	for _, a := range accs {
		binary.LittleEndian.PutUint64(rec[0:8], a.Addr)
		rec[8] = 0
		if a.Write {
			rec[8] = 1
		}
		binary.LittleEndian.PutUint16(rec[9:11], a.Instrs)
		h.Write(rec[:])
	}
	return h.Sum64()
}
