package server

// Chaos suite: drives the internal/fault injection points through the
// full httptest stack and asserts the failure-domain contract — the
// process survives, healthy cells are byte-identical to a clean run,
// failed cells carry typed errors, and the stats counters tell the
// truth. Run with `make chaos` (race-enabled) or the ordinary test run.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/fault"
)

// chaosSweep is the 3-cell grid the chaos tests target: one policy so a
// Match on the mix name selects exactly one cell.
func chaosSweep() SweepRequest {
	return SweepRequest{
		Mixes:    []string{"WL1", "WH1", "WL2"},
		Policies: []string{"LAP"},
		Accesses: smallAccesses,
		Jobs:     2,
	}
}

func doSweep(t *testing.T, base string, req SweepRequest) SweepResponse {
	t.Helper()
	status, body := post(t, base+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding sweep: %v", err)
	}
	return resp
}

func cellJSON(t *testing.T, r RunResult) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestChaosSweepPanicCellIsolated is the acceptance scenario: a panic
// point armed in one of three sweep cells. The server stays up, the
// response carries the two healthy cells byte-identically to a clean
// sweep plus one typed per-cell error, the counters advance, and after
// disarming the same server heals completely.
func TestChaosSweepPanicCellIsolated(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	cfg := Config{Jobs: 2, RetryMax: 1, RetryBackoff: time.Millisecond}
	_, clean := testServer(t, cfg)
	baseline := doSweep(t, clean.URL, chaosSweep())
	if len(baseline.Results) != 3 || baseline.Failed != 0 || baseline.Cancelled != 0 {
		t.Fatalf("baseline sweep not clean: %+v", baseline)
	}

	if err := fault.Arm(fault.Spec{Point: fault.PointServerRun, Match: "WH1", Mode: fault.ModePanic}); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, cfg)
	resp := doSweep(t, ts.URL, chaosSweep())
	if len(resp.Results) != 3 {
		t.Fatalf("faulted sweep returned %d cells, want 3", len(resp.Results))
	}
	if resp.Failed != 1 || resp.Cancelled != 0 {
		t.Fatalf("failed/cancelled = %d/%d, want 1/0", resp.Failed, resp.Cancelled)
	}
	for i, cell := range resp.Results {
		if i == 1 { // the WH1 victim
			if cell.Error == nil || cell.Error.Kind != "panic" {
				t.Fatalf("victim cell error = %+v, want kind panic", cell.Error)
			}
			if cell.Workload != baseline.Results[1].Workload || cell.Cycles != 0 {
				t.Fatalf("victim cell lost identity or kept metrics: %+v", cell)
			}
			continue
		}
		if got, want := cellJSON(t, cell), cellJSON(t, baseline.Results[i]); got != want {
			t.Fatalf("healthy cell %d diverged from clean sweep:\n got %s\nwant %s", i, got, want)
		}
	}

	// The process is fine: liveness holds and the counters advanced.
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz after panic cell: %d, want 200", status)
	}
	st := getStats(t, ts.URL)
	if st.Failures != 1 || st.Retries != 1 {
		t.Fatalf("failures/retries = %d/%d, want 1/1", st.Failures, st.Retries)
	}
	if st.MemoFailed == 0 {
		t.Fatalf("memo_failed = 0, want > 0")
	}

	// Disarm: the same server recovers — the failed cell was never
	// cached, so it recomputes cleanly; the whole grid now matches the
	// baseline byte for byte.
	fault.Reset()
	healed := doSweep(t, ts.URL, chaosSweep())
	if healed.Failed != 0 || healed.Cancelled != 0 {
		t.Fatalf("healed sweep still failing: %+v", healed)
	}
	for i := range healed.Results {
		if got, want := cellJSON(t, healed.Results[i]), cellJSON(t, baseline.Results[i]); got != want {
			t.Fatalf("healed cell %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestChaosRunRetryRecoversTransientFault: a fault that fires once is
// absorbed by the retry layer — the client sees a clean 200.
func TestChaosRunRetryRecoversTransientFault(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.Spec{Point: fault.PointServerRun, Mode: fault.ModeError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{RetryMax: 2, RetryBackoff: time.Millisecond})
	status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("run with transient fault: %d %s", status, body)
	}
	st := getStats(t, ts.URL)
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.Retries)
	}
	if st.Failures != 0 {
		t.Fatalf("failures = %d, want 0 (the retry recovered)", st.Failures)
	}
	if st.Computed != 1 {
		t.Fatalf("computed = %d, want 1", st.Computed)
	}
}

// TestChaosBreakerShedsLoad: persistent failures trip the breaker, which
// sheds subsequent requests with 503 + Retry-After; after the fault is
// gone and the cooldown passes, a probe closes it again.
func TestChaosBreakerShedsLoad(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.Spec{Point: fault.PointServerRun, Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{
		RetryMax:         -1, // no retries: each request is one failure
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	req := RunRequest{Mix: "WL1", Accesses: smallAccesses}
	for i := 0; i < 2; i++ {
		status, body := post(t, ts.URL+"/v1/run", req)
		if status != http.StatusInternalServerError {
			t.Fatalf("failing run %d: %d %s", i, status, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Kind != "fault" {
			t.Fatalf("failing run %d kind = %q (%v)", i, er.Kind, err)
		}
	}

	// Threshold reached: the breaker sheds before any simulation runs.
	data, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	st := getStats(t, ts.URL)
	if st.BreakerState != "open" || st.BreakerOpens != 1 || st.BreakerShed != 1 {
		t.Fatalf("breaker stats = %q opens=%d shed=%d, want open/1/1",
			st.BreakerState, st.BreakerOpens, st.BreakerShed)
	}
	if st.Failures != 2 {
		t.Fatalf("failures = %d, want 2", st.Failures)
	}

	// Fault gone + cooldown over: the half-open probe succeeds and the
	// breaker closes.
	fault.Reset()
	time.Sleep(150 * time.Millisecond)
	if status, body := post(t, ts.URL+"/v1/run", req); status != http.StatusOK {
		t.Fatalf("probe after cooldown: %d %s", status, body)
	}
	if st := getStats(t, ts.URL); st.BreakerState != "closed" {
		t.Fatalf("breaker state after probe = %q, want closed", st.BreakerState)
	}
}

// TestChaosDrainMidSweepCancelsUndoneCells: drain flips mid-sweep. The
// cell already executing finishes and delivers its result; cells that
// have not started are reported cancelled — not failed — and /readyz
// goes 503 immediately.
func TestChaosDrainMidSweepCancelsUndoneCells(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	// Delay only the first cell, long enough to flip drain under it.
	if err := fault.Arm(fault.Spec{
		Point: fault.PointServerRun, Mode: fault.ModeDelay,
		Delay: 300 * time.Millisecond, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{Jobs: 1, RetryMax: -1})

	req := chaosSweep()
	req.Jobs = 1 // serial: cell 0 runs first, cells 1-2 have not started
	type sweepOut struct {
		resp SweepResponse
	}
	done := make(chan sweepOut, 1)
	go func() {
		var out sweepOut
		out.resp = doSweep(t, ts.URL, req)
		done <- out
	}()

	// Wait until cell 0's simulation is committed (in flight), then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first cell never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.SetDraining(true)
	t.Cleanup(func() { s.SetDraining(false) })
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", status)
	}

	out := <-done
	resp := out.resp
	if len(resp.Results) != 3 {
		t.Fatalf("drained sweep returned %d cells, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != nil || resp.Results[0].Cycles == 0 {
		t.Fatalf("started cell did not finish: %+v", resp.Results[0])
	}
	for i := 1; i < 3; i++ {
		cell := resp.Results[i]
		if cell.Error == nil || cell.Error.Kind != "cancelled" {
			t.Fatalf("undone cell %d error = %+v, want kind cancelled", i, cell.Error)
		}
	}
	if resp.Cancelled != 2 || resp.Failed != 0 {
		t.Fatalf("cancelled/failed = %d/%d, want 2/0 (drain is not failure)", resp.Cancelled, resp.Failed)
	}
	// Drain is inconclusive for the breaker and not a failure.
	if st := getStats(t, ts.URL); st.Failures != 0 {
		t.Fatalf("failures = %d, want 0", st.Failures)
	}
}

// TestChaosBreakerOpensDespiteCacheHits is the recall-liveness
// regression: with the simulator failing every fresh execution, a stream
// of interleaved cache hits must not keep the breaker alive. Pre-fix,
// each recalled success fed breaker.success() and reset the
// consecutive-failure streak, so a popular cached key made the breaker
// untrippable exactly when it was needed.
func TestChaosBreakerOpensDespiteCacheHits(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	const threshold = 3
	_, ts := testServer(t, Config{
		RetryMax:         -1, // each failing request is one conclusive failure
		BreakerThreshold: threshold,
		BreakerCooldown:  time.Minute, // nothing here waits out a cooldown
	})
	cached := RunRequest{Mix: "WL1", Accesses: smallAccesses}
	failing := RunRequest{Mix: "WH1", Accesses: smallAccesses}

	// Prime the cache while everything is healthy.
	if status, body := post(t, ts.URL+"/v1/run", cached); status != http.StatusOK {
		t.Fatalf("priming run: %d %s", status, body)
	}
	// Then the simulator breaks for anything not cached.
	if err := fault.Arm(fault.Spec{Point: fault.PointServerRun, Match: "WH1", Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}

	// threshold failures, each chased by a healthy cache hit.
	for i := 0; i < threshold; i++ {
		if status, body := post(t, ts.URL+"/v1/run", failing); status != http.StatusInternalServerError {
			t.Fatalf("failing run %d: %d %s", i, status, body)
		}
		if i < threshold-1 { // after the trip the breaker sheds cached keys too
			if status, body := post(t, ts.URL+"/v1/run", cached); status != http.StatusOK {
				t.Fatalf("cache hit %d: %d %s", i, status, body)
			}
		}
	}

	// The streak survived the interleaved recalls: the breaker is open.
	if status, _ := post(t, ts.URL+"/v1/run", failing); status != http.StatusServiceUnavailable {
		t.Fatalf("post-trip request: %d, want 503", status)
	}
	st := getStats(t, ts.URL)
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("breaker = %q opens=%d, want open/1", st.BreakerState, st.BreakerOpens)
	}
	if st.Failures != threshold {
		t.Fatalf("failures = %d, want %d", st.Failures, threshold)
	}
}

// TestChaosBreakerIgnoresStaleSuccess is the cooldown-bypass regression
// end to end: a slow healthy run admitted before the breaker trips
// completes while it is open. Its success is stale evidence and must not
// end the cooldown early. Pre-fix, success() unconditionally closed the
// breaker, so one straggler reopened the floodgates onto a failing
// simulator.
func TestChaosBreakerIgnoresStaleSuccess(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	cooldown := 1200 * time.Millisecond
	s, ts := testServer(t, Config{
		Jobs:             2, // the slow run and the failing runs overlap
		RetryMax:         -1,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
	})
	// The WL2 run is healthy but slow; WH1 runs fail outright.
	if err := fault.Arm(fault.Spec{
		Point: fault.PointServerRun, Match: "WL2",
		Mode: fault.ModeDelay, Delay: 400 * time.Millisecond, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.Spec{Point: fault.PointServerRun, Match: "WH1", Mode: fault.ModeError}); err != nil {
		t.Fatal(err)
	}

	// Launch the slow healthy run; it is admitted while the breaker is
	// still closed.
	slowDone := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL2", Accesses: smallAccesses})
		slowDone <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow run never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Two conclusive failures trip the breaker while the slow run is
	// still executing.
	failing := RunRequest{Mix: "WH1", Accesses: smallAccesses}
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts.URL+"/v1/run", failing); status != http.StatusInternalServerError {
			t.Fatalf("failing run %d: %d %s", i, status, body)
		}
	}

	// The straggler finishes healthy — while the breaker is open.
	if status := <-slowDone; status != http.StatusOK {
		t.Fatalf("slow run: %d, want 200", status)
	}

	// Its stale success must not have closed the breaker: the cooldown
	// stands and the next request is shed.
	if status, _ := post(t, ts.URL+"/v1/run", failing); status != http.StatusServiceUnavailable {
		t.Fatalf("request after stale success: %d, want 503 (breaker reopened early)", status)
	}
	st := getStats(t, ts.URL)
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("breaker = %q opens=%d, want open/1", st.BreakerState, st.BreakerOpens)
	}

	// Recovery still works: fault gone, cooldown over, the probe closes it.
	fault.Reset()
	time.Sleep(cooldown + 100*time.Millisecond)
	if status, body := post(t, ts.URL+"/v1/run", failing); status != http.StatusOK {
		t.Fatalf("probe after cooldown: %d %s", status, body)
	}
	if st := getStats(t, ts.URL); st.BreakerState != "closed" {
		t.Fatalf("breaker after probe = %q, want closed", st.BreakerState)
	}
}
