package server

import (
	"testing"
	"time"
)

// TestBreakerSuccessByState is the cooldown-bypass regression table: a
// success may close the breaker only from closed or half-open. A success
// arriving while OPEN belongs to a request admitted before the trip and
// must not end the cooldown early (the pre-fix success() unconditionally
// set state = closed).
func TestBreakerSuccessByState(t *testing.T) {
	cases := []struct {
		name  string
		setup func(b *breaker)
		want  breakerState
	}{
		{
			name:  "closed stays closed and resets the streak",
			setup: func(b *breaker) { b.failure() }, // fails = 1 of 3
			want:  breakerClosed,
		},
		{
			name: "open ignores a stale success",
			setup: func(b *breaker) {
				for i := 0; i < 3; i++ {
					b.failure()
				}
			},
			want: breakerOpen,
		},
		{
			name: "half-open probe success closes",
			setup: func(b *breaker) {
				for i := 0; i < 3; i++ {
					b.failure()
				}
				time.Sleep(2 * time.Millisecond) // let the cooldown lapse
				if ok, _ := b.allow(); !ok {
					t.Fatal("probe not admitted after cooldown")
				}
			},
			want: breakerClosed,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBreaker(3, time.Millisecond)
			tc.setup(b)
			b.success()
			b.mu.Lock()
			got, fails := b.state, b.fails
			b.mu.Unlock()
			if got != tc.want {
				t.Fatalf("state after success = %v, want %v", got, tc.want)
			}
			if got == breakerClosed && fails != 0 {
				t.Fatalf("failure streak not reset: fails = %d", fails)
			}
		})
	}
}

// TestBreakerStaleSuccessKeepsShedding drives the public surface of the
// same bug: while open and mid-cooldown, a stale success must leave the
// breaker shedding.
func TestBreakerStaleSuccessKeepsShedding(t *testing.T) {
	b := newBreaker(2, time.Minute)
	b.failure()
	b.failure()
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker did not open at threshold")
	}
	b.success() // stale: from a request admitted before the trip
	ok, retryAfter := b.allow()
	if ok {
		t.Fatal("stale success closed an open breaker mid-cooldown")
	}
	if retryAfter <= 0 || retryAfter > time.Minute {
		t.Fatalf("retry-after = %v, want within the remaining cooldown", retryAfter)
	}
	if st := b.snapshot(); st.state != "open" || st.opens != 1 {
		t.Fatalf("snapshot = %+v, want open/1", st)
	}
}

// TestBreakerHalfOpenShedAdvertisesRemainingWait: while a half-open
// probe is in flight, sheds must advertise the remaining probe window,
// not a fresh full cooldown.
func TestBreakerHalfOpenShedAdvertisesRemainingWait(t *testing.T) {
	cooldown := 200 * time.Millisecond
	b := newBreaker(1, cooldown)
	b.failure() // trips
	time.Sleep(cooldown + 10*time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("probe not admitted after cooldown")
	}
	time.Sleep(50 * time.Millisecond)
	ok, retryAfter := b.allow()
	if ok {
		t.Fatal("second request admitted while a probe is in flight")
	}
	// ~150ms of the probe window remain; anything >= the full cooldown
	// reproduces the old bug, and negative waits must clamp to zero.
	if retryAfter >= cooldown {
		t.Fatalf("retry-after = %v, want < full cooldown %v", retryAfter, cooldown)
	}
	if retryAfter < 0 {
		t.Fatalf("retry-after = %v, want >= 0", retryAfter)
	}

	// Long after the window the advertised wait bottoms out at zero.
	time.Sleep(cooldown)
	if _, retryAfter = b.allow(); retryAfter != 0 {
		t.Fatalf("expired probe window advertises %v, want 0", retryAfter)
	}
}

// TestBreakerProbeDoneReleasesSlot: an inconclusive probe outcome frees
// the slot without closing the breaker.
func TestBreakerProbeDoneReleasesSlot(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	b.failure()
	time.Sleep(3 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("probe not admitted")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("two probes admitted at once")
	}
	b.probeDone()
	if st := b.snapshot(); st.state != "half-open" {
		t.Fatalf("state after inconclusive probe = %q, want half-open", st.state)
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("next probe not admitted after probeDone")
	}
}
