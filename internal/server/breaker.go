package server

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breakerMetrics is the breaker's optional obs wiring. The counters are
// nil-safe, so a breaker constructed without a registry (unit tests)
// records nothing and pays a nil check per transition.
type breakerMetrics struct {
	toOpen     *obs.Counter
	toHalfOpen *obs.Counter
	toClosed   *obs.Counter
	shed       *obs.Counter
}

// breaker is a consecutive-failure circuit breaker over the server's
// simulation path. Closed, it counts consecutive run failures; at
// threshold it opens and the server sheds new simulation requests with
// 503 + Retry-After for cooldown. After the cooldown one probe request
// is admitted (half-open): its success closes the breaker, its failure
// re-opens it. A threshold <= 0 disables the breaker entirely.
//
// Only conclusive *executions* move the state. Cancellations, drain
// refusals, and queue timeouts say nothing about whether the simulator
// is healthy, and neither do memo recalls (they executed no simulation)
// — both release the half-open probe slot (probeDone) without moving the
// state. Symmetrically, a success or failure from a request admitted
// *before* the breaker tripped arrives while the state is open and is
// ignored: the cooldown stands, and only the half-open probe decides
// what happens next.
type breaker struct {
	threshold int
	cooldown  time.Duration
	met       breakerMetrics
	// onTransition, when set, hears every state change with the
	// destination state's name ("open", "half-open", "closed") — how
	// transitions become journal events. Called with b.mu held, so it
	// must not call back into the breaker.
	onTransition func(to string)

	mu         sync.Mutex
	state      breakerState
	fails      int  // consecutive failures while closed
	probing    bool // a half-open probe is in flight
	openedAt   time.Time
	probeStart time.Time // when the in-flight probe was admitted
	opens      uint64    // times the breaker tripped open
	shed       uint64    // requests refused while open/half-open
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a new simulation request may proceed. When it
// may not, the remaining wait is returned for a Retry-After header:
// the remaining cooldown while open, the remaining probe window while a
// half-open probe is in flight.
func (b *breaker) allow() (bool, time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if rem := b.cooldown - time.Since(b.openedAt); rem > 0 {
			b.shedLocked()
			return false, rem
		}
		// Cooldown over: admit exactly one probe.
		b.state = breakerHalfOpen
		b.met.toHalfOpen.Inc()
		b.notifyLocked("half-open")
		b.probing = true
		b.probeStart = time.Now()
		return true, 0
	case breakerHalfOpen:
		if b.probing {
			b.shedLocked()
			// The probe decides within roughly one more cooldown window;
			// advertise what is left of it, not a fresh full cooldown.
			rem := b.cooldown - time.Since(b.probeStart)
			if rem < 0 {
				rem = 0
			}
			return false, rem
		}
		b.probing = true
		b.probeStart = time.Now()
		return true, 0
	}
	return true, 0
}

// success records a healthy *executed* run. It closes the breaker from
// half-open (the probe passed) and resets the failure streak while
// closed. While open it is ignored: the success belongs to a request
// admitted before the trip and proves nothing about current health — the
// cooldown stands (the guard is symmetric with failure's "already open:
// changes nothing").
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return
	case breakerHalfOpen:
		b.state = breakerClosed
		b.met.toClosed.Inc()
		b.notifyLocked("closed")
	}
	b.fails = 0
	b.probing = false
}

// failure records a run failure, tripping the breaker at threshold (or
// immediately when a half-open probe fails).
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
	// Already open: the failure belongs to a request admitted before the
	// trip; it changes nothing.
}

// probeDone releases the half-open probe slot after an inconclusive
// outcome (cancel, drain, queue timeout, memo recall) without moving the
// state.
func (b *breaker) probeDone() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// notifyLocked reports one transition to the optional hook; the caller
// holds b.mu.
func (b *breaker) notifyLocked(to string) {
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// trip opens the breaker; the caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.met.toOpen.Inc()
	b.notifyLocked("open")
	b.fails = 0
	b.probing = false
	b.openedAt = time.Now()
	b.opens++
}

// shedLocked counts one refused request; the caller holds b.mu.
func (b *breaker) shedLocked() {
	b.shed++
	b.met.shed.Inc()
}

// stateValue maps the breaker position onto the metrics gauge encoding:
// -1 disabled, 0 closed, 1 open, 2 half-open.
func (b *breaker) stateValue() float64 {
	if b.threshold <= 0 {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 2
	}
	return 0
}

// breakerStats is the /v1/stats snapshot of the breaker.
type breakerStats struct {
	state string
	opens uint64
	shed  uint64
}

func (b *breaker) snapshot() breakerStats {
	if b.threshold <= 0 {
		return breakerStats{state: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStats{state: b.state.String(), opens: b.opens, shed: b.shed}
}
