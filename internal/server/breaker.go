package server

import (
	"sync"
	"time"
)

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is a consecutive-failure circuit breaker over the server's
// simulation path. Closed, it counts consecutive run failures; at
// threshold it opens and the server sheds new simulation requests with
// 503 + Retry-After for cooldown. After the cooldown one probe request
// is admitted (half-open): its success closes the breaker, its failure
// re-opens it. A threshold <= 0 disables the breaker entirely.
//
// Cancellations, drain refusals, and queue timeouts are inconclusive —
// they say nothing about whether the simulator is healthy — so they
// release the half-open probe slot (probeDone) without moving the state.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int  // consecutive failures while closed
	probing  bool // a half-open probe is in flight
	openedAt time.Time
	opens    uint64 // times the breaker tripped open
	shed     uint64 // requests refused while open/half-open
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a new simulation request may proceed. When it
// may not, the remaining cooldown is returned for a Retry-After header.
func (b *breaker) allow() (bool, time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if rem := b.cooldown - time.Since(b.openedAt); rem > 0 {
			b.shed++
			return false, rem
		}
		// Cooldown over: admit exactly one probe.
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	case breakerHalfOpen:
		if b.probing {
			b.shed++
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
	return true, 0
}

// success records a healthy run: the breaker closes and the failure
// streak resets.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a run failure, tripping the breaker at threshold (or
// immediately when a half-open probe fails).
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
	// Already open: the failure belongs to a request admitted before the
	// trip; it changes nothing.
}

// probeDone releases the half-open probe slot after an inconclusive
// outcome (cancel, drain, queue timeout) without moving the state.
func (b *breaker) probeDone() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// trip opens the breaker; the caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.fails = 0
	b.probing = false
	b.openedAt = time.Now()
	b.opens++
}

// breakerStats is the /v1/stats snapshot of the breaker.
type breakerStats struct {
	state string
	opens uint64
	shed  uint64
}

func (b *breaker) snapshot() breakerStats {
	if b.threshold <= 0 {
		return breakerStats{state: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStats{state: b.state.String(), opens: b.opens, shed: b.shed}
}
