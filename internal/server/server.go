// Package server implements lapserved, the simulation-as-a-service HTTP
// subsystem: a JSON API over the lap simulator with a bounded job queue,
// request coalescing, and a size-bounded result cache.
//
// Design:
//
//   - Coalescing: run results live in an internal/memo singleflight
//     cache keyed by (config, policy, workload, accesses, seed).
//     Concurrent identical requests share one simulation; later
//     identical requests recall the cached result. The LRU bound keeps
//     the cache from growing without bound on a long-lived server.
//   - Backpressure: a bounded queue admits at most QueueDepth unfinished
//     jobs; requests past the bound get 429 immediately rather than
//     piling up. Admitted jobs wait for one of Jobs worker slots, so at
//     most Jobs simulations execute concurrently.
//   - Determinism: sweeps warm the grid on the PR 1 worker pool
//     (internal/pool) and then collect serially in request order — the
//     response is byte-identical for any jobs value, exactly like
//     lapexp's tables.
//   - Timeouts and drain: every request runs under a RequestTimeout
//     context that bounds queue and coalescing waits (a simulation that
//     already started runs to completion — its result is still useful to
//     cache). SetDraining flips /healthz to 503 and rejects new work so
//     a load balancer can pull the instance before http.Server.Shutdown
//     drains in-flight requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	lap "repro"
	"repro/internal/memo"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Jobs caps concurrently executing simulations (0 = GOMAXPROCS).
	Jobs int
	// QueueDepth bounds admitted-but-unfinished jobs; requests beyond it
	// receive 429 (0 = 256).
	QueueDepth int
	// RequestTimeout bounds each request's queue and coalescing waits
	// (0 = 2 minutes).
	RequestTimeout time.Duration
	// MemoEntries bounds the result cache, LRU-evicting past it
	// (0 = 4096; negative = unbounded).
	MemoEntries int
	// MaxTraceBytes caps one trace upload's body (0 = 64 MiB).
	MaxTraceBytes int64
	// MaxAccesses caps a run's per-core trace length (0 = 4,000,000).
	MaxAccesses uint64
}

const (
	defaultQueueDepth    = 256
	defaultTimeout       = 2 * time.Minute
	defaultMemoEntries   = 4096
	defaultMaxTraceBytes = 64 << 20
	defaultMaxAccesses   = 4_000_000
	defaultAccesses      = 400_000
	latencyWindow        = 512
)

// Server is the lapserved HTTP core. Construct with New; serve
// Handler() with net/http.
type Server struct {
	cfg   Config
	memo  *memo.Cache[runKey, outcome]
	store *traceStore
	sem   chan struct{}

	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	lat latRing
	mux *http.ServeMux
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultTimeout
	}
	if cfg.MemoEntries == 0 {
		cfg.MemoEntries = defaultMemoEntries
	}
	if cfg.MemoEntries < 0 {
		cfg.MemoEntries = 0 // unbounded
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = defaultMaxTraceBytes
	}
	if cfg.MaxAccesses == 0 {
		cfg.MaxAccesses = defaultMaxAccesses
	}
	s := &Server{
		cfg:   cfg,
		memo:  memo.New[runKey, outcome](cfg.MemoEntries),
		store: newTraceStore(),
		sem:   make(chan struct{}, cfg.Jobs),
		lat:   latRing{buf: make([]float64, 0, latencyWindow)},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips the server into (or out of) drain mode: /healthz
// answers 503 so load balancers stop routing here, and new simulation
// work is refused while in-flight requests finish.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// admit reserves n slots in the bounded job queue, reporting false when
// the queue cannot take them (the caller answers 429).
func (s *Server) admit(n int) bool {
	for {
		cur := s.queued.Load()
		if cur+int64(n) > int64(s.cfg.QueueDepth) {
			return false
		}
		if s.queued.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// release returns n queue slots.
func (s *Server) release(n int) { s.queued.Add(int64(-n)) }

// runCell executes (or recalls) one resolved run under the worker cap.
// It blocks for a worker slot until ctx expires; identical concurrent
// cells coalesce inside the memo, and the latch wait is also bounded by
// ctx.
func (s *Server) runCell(ctx context.Context, sp *runSpec) (outcome, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return outcome{}, ctx.Err()
	}
	defer func() { <-s.sem }()
	return s.memo.DoCtx(ctx, sp.key, func() outcome {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		out := sp.execute()
		s.lat.add(time.Since(start).Seconds())
		return out
	})
}

// handleHealthz reports liveness; 503 while draining so balancers pull
// the instance before shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats reports the memo counters, queue occupancy, and run
// latency quantiles.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ms := s.memo.Stats()
	sample := s.lat.snapshot()
	sum := stats.Summarize(sample)
	writeJSON(w, http.StatusOK, StatsResponse{
		Computed:          ms.Computed,
		Recalled:          ms.Recalled,
		Evicted:           ms.Evicted,
		MemoEntries:       s.memo.Len(),
		Queued:            s.queued.Load(),
		InFlight:          s.inflight.Load(),
		Traces:            s.store.count(),
		RunLatencyP50Sec:  sum.Median(),
		RunLatencyP95Sec:  sum.Quantile(0.95),
		RunLatencySamples: len(sample),
	})
}

// handleRun serves one simulation, coalescing identical requests.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	sp, err := s.resolveRun(req)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(1) {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job queue full; retry later"})
		return
	}
	defer s.release(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, err := s.runCell(ctx, sp)
	if err != nil {
		writeTimeout(w, err)
		return
	}
	if out.Err != "" {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: out.Err})
		return
	}
	writeJSON(w, http.StatusOK, sp.result(out))
}

// handleSweep serves a (mix × policy) grid: resolve every cell up front,
// admit the whole batch against the queue bound, warm the grid on the
// worker pool, then collect serially in request order so the response
// bytes are independent of the fan-out.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if len(req.Policies) == 0 {
		for _, p := range lap.Policies() {
			req.Policies = append(req.Policies, string(p))
		}
	}
	if len(req.Mixes) == 0 {
		for _, m := range lap.TableIII() {
			req.Mixes = append(req.Mixes, m.Name)
		}
	}

	specs := make([]*runSpec, 0, len(req.Mixes)*len(req.Policies))
	for _, mix := range req.Mixes {
		for _, pol := range req.Policies {
			sp, err := s.resolveRun(RunRequest{
				Config:   req.Config,
				Policy:   pol,
				Mix:      mix,
				Accesses: req.Accesses,
				Seed:     req.Seed,
			})
			if err != nil {
				writeError(w, err)
				return
			}
			specs = append(specs, sp)
		}
	}
	if len(specs) == 0 {
		writeJSON(w, http.StatusOK, SweepResponse{Results: []RunResult{}})
		return
	}
	if !s.admit(len(specs)) {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("job queue cannot take %d sweep cells; retry later", len(specs)),
		})
		return
	}
	defer s.release(len(specs))

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Warm pass: fan the grid onto the pool. Duplicate cells coalesce in
	// the memo, failures surface during collection, and jobs=1 skips the
	// pass entirely (the serial collection below computes everything),
	// mirroring the lapexp scheduler.
	jobs := req.Jobs
	if jobs <= 0 || jobs > s.cfg.Jobs {
		jobs = s.cfg.Jobs
	}
	batch := make([]func(), len(specs))
	for i, sp := range specs {
		batch[i] = func() { s.runCell(ctx, sp) }
	}
	pool.Warm(jobs, batch)

	resp := SweepResponse{Results: make([]RunResult, 0, len(specs))}
	for _, sp := range specs {
		out, err := s.runCell(ctx, sp)
		if err != nil {
			writeTimeout(w, err)
			return
		}
		if out.Err != "" {
			writeJSON(w, http.StatusInternalServerError, errorResponse{
				Error: fmt.Sprintf("%s under %s: %s", sp.key.Workload, sp.policy, out.Err),
			})
			return
		}
		resp.Results = append(resp.Results, sp.result(out))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceUpload stores a binary trace (plain or gzipped; the reader
// sniffs) under ?name=, decoded through internal/trace's codec.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	name := r.URL.Query().Get("name")
	if !traceNameRE.MatchString(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "trace name must match " + traceNameRE.String() + " (pass ?name=...)",
		})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	tr, err := trace.NewAutoReader(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	accs := trace.Drain(tr)
	if err := tr.Err(); err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if len(accs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "trace has no records"})
		return
	}
	st := s.store.put(name, accs)
	writeJSON(w, http.StatusOK, TraceUploadResponse{
		Name:    name,
		Records: st.records,
		Digest:  fmt.Sprintf("%016x", st.digest),
	})
}

// refuseDraining answers 503 for new work while draining.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return true
	}
	return false
}

// decodeJSON reads a bounded JSON body, answering 400 itself on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decoding request: " + err.Error()})
		return err
	}
	return nil
}

// writeError maps resolution errors to status codes.
func writeError(w http.ResponseWriter, err error) {
	var bad badRequestError
	if errors.As(err, &bad) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: bad.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

// writeTimeout maps context errors: deadline → 504, client cancel → 499
// (nginx's convention; net/http has no name for it).
func writeTimeout(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request timed out in queue"})
		return
	}
	writeJSON(w, 499, errorResponse{Error: "request cancelled"})
}

// writeJSON renders one response. Marshal of our wire types cannot fail;
// a failure here is a programming error worth a 500 over a panic.
func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// latRing keeps the most recent computed-run latencies for the stats
// quantiles.
type latRing struct {
	mu  sync.Mutex
	buf []float64
	pos int
}

func (l *latRing) add(sec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, sec)
		return
	}
	l.buf[l.pos] = sec
	l.pos = (l.pos + 1) % len(l.buf)
}

func (l *latRing) snapshot() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.buf...)
}
