// Package server implements lapserved, the simulation-as-a-service HTTP
// subsystem: a JSON API over the lap simulator with a bounded job queue,
// request coalescing, and a size-bounded result cache.
//
// Design:
//
//   - Coalescing: run results live in an internal/memo singleflight
//     cache keyed by (config, policy, workload, accesses, seed).
//     Concurrent identical requests share one simulation; later
//     identical requests recall the cached result. The LRU bound keeps
//     the cache from growing without bound on a long-lived server.
//   - Backpressure: a bounded queue admits at most QueueDepth unfinished
//     jobs; requests past the bound get 429 immediately rather than
//     piling up. Admitted jobs wait for one of Jobs worker slots, so at
//     most Jobs simulations execute concurrently.
//   - Determinism: sweeps warm the grid on the PR 1 worker pool
//     (internal/pool) and then collect serially in request order — the
//     response is byte-identical for any jobs value, exactly like
//     lapexp's tables.
//   - Timeouts and drain: every request runs under a RequestTimeout
//     context that bounds queue and coalescing waits (a simulation that
//     already started runs to completion — its result is still useful to
//     cache). SetDraining flips /readyz to 503 and rejects new work so
//     a load balancer can pull the instance before http.Server.Shutdown
//     drains in-flight requests (liveness on /healthz stays 200 to the
//     end — shutting down cleanly is not a reason to be restarted).
//     Mid-sweep, drain lets started cells finish and reports undone
//     cells as cancelled.
//   - Observability: every request logs one structured line (method,
//     route, status, bytes, duration, trace_id); simulation requests
//     are traced (GET /v1/trace/{id}); lifecycle and per-interval
//     telemetry events stream over GET /v1/events (SSE, resumable);
//     rolling-window SLO burn rates and a per-subsystem watchdog feed
//     /metrics; GET /debug/bundle assembles a one-shot diagnostics
//     tarball.
//   - Failure domains: a run that panics is recovered into a typed
//     *pool.RunError — one corrupt simulation cannot take the process
//     (or its sweep) down. Failed runs are never cached; they are
//     retried with exponential backoff and deterministic jitter, and a
//     consecutive-failure circuit breaker sheds load (503 + Retry-After)
//     while the simulator is unhealthy. Sweeps are a partial-result API:
//     failed cells carry a typed error in place, healthy cells are
//     byte-identical to a clean sweep. The internal/fault registry
//     (LAP_FAULTS) drives all of this in chaos tests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	lap "repro"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/obs/journal"
	otrace "repro/internal/obs/trace"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// Jobs caps concurrently executing simulations (0 = GOMAXPROCS).
	Jobs int
	// QueueDepth bounds admitted-but-unfinished jobs; requests beyond it
	// receive 429 (0 = 256).
	QueueDepth int
	// RequestTimeout bounds each request's queue and coalescing waits
	// (0 = 2 minutes).
	RequestTimeout time.Duration
	// MemoEntries bounds the result cache, LRU-evicting past it
	// (0 = 4096; negative = unbounded).
	MemoEntries int
	// MaxTraceBytes caps one trace upload's body (0 = 64 MiB).
	MaxTraceBytes int64
	// MaxAccesses caps a run's per-core trace length (0 = 4,000,000).
	MaxAccesses uint64
	// RetryMax caps per-run retry attempts after the first execution
	// fails retryably (0 = 2; negative = no retries).
	RetryMax int
	// RetryBackoff is the backoff before the first retry, doubling per
	// attempt with deterministic per-key jitter (0 = 50ms).
	RetryBackoff time.Duration
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive run failures (0 = 5; negative = disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds load before
	// admitting a probe (0 = 5s).
	BreakerCooldown time.Duration
	// Metrics is an optional obs registry to expose on GET /metrics; nil
	// builds a private one (still served — metrics are not optional for a
	// production service, only the registry's ownership is).
	Metrics *obs.Registry
	// TraceRequests bounds the per-request trace log served by GET
	// /v1/trace/{id}, evicting oldest-first (0 = 64; negative disables
	// request tracing entirely — the untraced path costs one nil check).
	TraceRequests int
	// TraceDir additionally writes each request's Chrome trace-event JSON
	// to TraceDir/<id>.json; empty writes no files.
	TraceDir string
	// TraceStoreDir durably persists /v1/traces uploads (temp file +
	// atomic rename per upload; reloaded at boot, corrupt files
	// quarantined); empty keeps uploads in memory only. Distinct from
	// TraceDir, which holds Chrome trace-event exports.
	TraceStoreDir string
	// Checkpoints optionally attaches a durable checkpoint store: exact
	// mix runs snapshot machine state every CheckpointEvery accesses, a
	// /v1/run matching a checkpointed prefix warm-starts from the latest
	// valid snapshot, and sampling profiles persist across restarts. The
	// store's counters join /metrics (lap_checkpoint_*) and /v1/stats.
	// Durability failures degrade to cold starts, never run failures.
	Checkpoints *lap.CheckpointStore
	// CheckpointEvery is the snapshot spacing in accesses, summed over
	// cores (0 = 1,000,000 when a store is attached). It is normalized
	// out of cache keys: checkpointed and plain runs coalesce.
	CheckpointEvery uint64
	// Logger receives one structured line per request (method, path,
	// status, duration, trace/span IDs); nil logs nothing.
	Logger *slog.Logger
	// JournalCapacity bounds the operational event ring behind GET
	// /v1/events and the diagnostics bundle (0 = journal.DefaultCapacity;
	// negative disables the journal entirely — /v1/events then answers
	// 404 and lifecycle events are not recorded).
	JournalCapacity int
	// SLO tunes the rolling-window request-objective tracker surfaced as
	// lapserved_slo_burn_rate and the /v1/stats slo block. Zero fields
	// take health.SLOConfig defaults.
	SLO health.SLOConfig
	// WatchdogInterval is the background probe period for the
	// per-subsystem watchdog (queue stalled, run over deadline budget,
	// checkpoint store erroring, breaker open). 0 runs no background
	// goroutine — probes then run on each GET /readyz — so unit tests
	// and short-lived servers stay goroutine-free; lapserved passes a
	// real interval. Stop the loop with Close.
	WatchdogInterval time.Duration
}

const (
	defaultQueueDepth       = 256
	defaultTimeout          = 2 * time.Minute
	defaultMemoEntries      = 4096
	defaultMaxTraceBytes    = 64 << 20
	defaultMaxAccesses      = 4_000_000
	defaultAccesses         = 400_000
	latencyWindow           = 512
	defaultRetryMax         = 2
	defaultRetryBackoff     = 50 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 5 * time.Second
	defaultTraceRequests    = 64
	defaultCheckpointEvery  = 1_000_000
	// Profiles carry cache-hierarchy snapshots (~70 MB each at the
	// paper's default geometry — see sample.Profile), so the profile
	// cache is kept much smaller than the result memo: 8 entries bound
	// it near half a gigabyte while still covering a sweep's mix set.
	defaultProfileEntries = 8
)

// Server is the lapserved HTTP core. Construct with New; serve
// Handler() with net/http.
type Server struct {
	cfg      Config
	memo     *memo.Cache[runKey, lap.Result]
	profiles *memo.Cache[profileKey, *lap.SampleProfile]
	store    *traceStore
	traces   *traceLog // per-request trace exports; nil when disabled
	sem      chan struct{}
	breaker  *breaker
	journal  *journal.Journal   // operational event ring; nil when disabled
	slo      *health.SLOTracker // run/sweep request objectives
	watchdog *health.Watchdog   // per-subsystem degradation probes
	running  *runRegistry       // in-flight executions, for the deadline probe
	started  time.Time

	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	failures atomic.Uint64 // runs still failed after retries
	retries  atomic.Uint64 // retry attempts made
	reqSeq   atomic.Uint64 // request/trace ID counter

	met *serverMetrics
	lat latRing
	mux *http.ServeMux
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	cfg.Jobs = pool.Workers(cfg.Jobs)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultTimeout
	}
	if cfg.MemoEntries == 0 {
		cfg.MemoEntries = defaultMemoEntries
	}
	if cfg.MemoEntries < 0 {
		cfg.MemoEntries = 0 // unbounded
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = defaultMaxTraceBytes
	}
	if cfg.MaxAccesses == 0 {
		cfg.MaxAccesses = defaultMaxAccesses
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = defaultRetryMax
	}
	if cfg.RetryMax < 0 {
		cfg.RetryMax = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	if cfg.Checkpoints != nil && cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = defaultCheckpointEvery
	}
	store, err := newTraceStore(cfg.TraceStoreDir)
	if err != nil {
		// An unusable trace directory degrades to a memory-only store:
		// the service stays up, uploads just stop surviving restarts.
		if cfg.Logger != nil {
			cfg.Logger.Error("trace store unavailable; uploads are memory-only", "err", err)
		}
		store, _ = newTraceStore("")
	}
	s := &Server{
		cfg:      cfg,
		memo:     memo.New[runKey, lap.Result](cfg.MemoEntries),
		profiles: memo.New[profileKey, *lap.SampleProfile](defaultProfileEntries),
		store:    store,
		sem:      make(chan struct{}, cfg.Jobs),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		slo:      health.NewSLO(cfg.SLO),
		running:  newRunRegistry(),
		started:  time.Now(),
		lat:      latRing{buf: make([]float64, 0, latencyWindow)},
	}
	if cfg.JournalCapacity >= 0 {
		s.journal = journal.New(cfg.JournalCapacity, cfg.Logger)
	}
	if cfg.TraceRequests >= 0 {
		n := cfg.TraceRequests
		if n == 0 {
			n = defaultTraceRequests
		}
		s.traces = newTraceLog(n)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.met = newServerMetrics(reg, s)
	health.RegisterRuntime(reg)
	s.slo.Register(reg, "lapserved")
	s.watchdog = s.newWatchdog()
	s.watchdog.Register(reg, "lapserved")
	if cfg.WatchdogInterval > 0 {
		s.watchdog.Start()
	}
	// Journal counters ride the registry too (Snapshot is nil-safe, so a
	// disabled journal just exports zeros): emitted volume, the two drop
	// paths, and how many /v1/events streams are live right now.
	reg.CounterFunc("lapserved_events_emitted_total",
		"Operational events emitted to the journal.",
		func() uint64 { return s.journal.Snapshot().Emitted })
	reg.CounterFunc("lapserved_events_dropped_total",
		"Events lost to the bounded ring or slow subscriber queues.",
		func() uint64 {
			st := s.journal.Snapshot()
			return st.RingDropped + st.SubDropped
		})
	reg.GaugeFunc("lapserved_event_subscribers",
		"Live /v1/events subscribers.",
		func() float64 { return float64(s.journal.Snapshot().Subscribers) })

	// Lifecycle sources feed the journal without their packages knowing
	// about it: the breaker reports transitions, the checkpoint store its
	// durability operations, the memo its evictions. All three hooks are
	// nil-safe no-ops when the journal is disabled (Emit on nil records
	// nothing), so the wiring is unconditional.
	s.breaker.onTransition = func(to string) {
		s.journal.Emit(journal.Event{Kind: "breaker.transition", Fields: journal.F("to", to)})
	}
	if cfg.Checkpoints != nil {
		cfg.Checkpoints.SetObserver(func(op, key, detail string, err error) {
			e := journal.Event{Kind: "checkpoint." + op, Run: key}
			if detail != "" {
				e.Fields = journal.F("detail", detail)
			}
			if err != nil {
				e.Msg = err.Error()
			}
			s.journal.Emit(e)
		})
	}
	s.memo.SetEvictObserver(func(k runKey) {
		s.journal.Emit(journal.Event{Kind: "memo.evict", Run: k.Workload + "|" + k.Policy})
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/bundle", s.handleBundle)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	return s
}

// Handler returns the server's HTTP handler: the router wrapped with
// per-request tracing and structured logging (see instrument).
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// Metrics returns the obs registry behind GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Journal returns the operational event journal behind GET /v1/events
// (nil when Config.JournalCapacity was negative), so the binary hosting
// the server can route its own lifecycle — process fault hits, contained
// pool panics, shutdown phases — into the same stream.
func (s *Server) Journal() *journal.Journal { return s.journal }

// Close releases the server's background resources: the watchdog loop
// stops and every live event subscriber is closed (each drains its
// queued events, then its SSE stream ends). The server itself remains
// usable for tests that keep serving after Close; production callers
// Close during shutdown, after SetDraining(true) and before
// http.Server.Shutdown so open /v1/events streams cannot hold the
// drain open.
func (s *Server) Close() {
	s.watchdog.Stop()
	s.journal.CloseSubscribers()
}

// SetDraining flips the server into (or out of) drain mode: /readyz
// answers 503 so load balancers stop routing here, and new simulation
// work is refused while in-flight requests finish. Liveness (/healthz)
// stays 200 — the process is healthy, just leaving rotation. Each
// transition lands in the event journal as drain.begin/drain.end.
func (s *Server) SetDraining(d bool) {
	if s.draining.Swap(d) == d {
		return
	}
	kind := "drain.end"
	if d {
		kind = "drain.begin"
	}
	s.journal.Emit(journal.Event{Kind: kind, Fields: journal.F(
		"queued", s.queued.Load(), "in_flight", s.inflight.Load())})
}

// admit reserves n slots in the bounded job queue, reporting false when
// the queue cannot take them (the caller answers 429).
func (s *Server) admit(n int) bool {
	for {
		cur := s.queued.Load()
		if cur+int64(n) > int64(s.cfg.QueueDepth) {
			return false
		}
		if s.queued.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// release returns n queue slots.
func (s *Server) release(n int) { s.queued.Add(int64(-n)) }

// errDraining marks a run that would have *started* during drain. Cells
// already executing (or cached) still deliver — drain means "finish what
// you started, start nothing new".
var errDraining = errors.New("server: draining; run not started")

// runCell executes (or recalls) one resolved run under the worker cap,
// reporting provenance: computed is true when THIS call executed the
// simulation (successfully or not), false when the result was recalled
// from the memo or shared from another caller's in-flight execution.
//
// A key whose result is already cached is served by a completed-entry
// fast path (memo.Peek) *before* the worker-semaphore acquire: a cache
// hit executes nothing, so making it wait behind running simulations —
// and burn a slot doing no work — would be pure queuing delay. Only
// requests that may actually compute contend for slots. The latch wait
// for in-flight duplicates is bounded by ctx, and failed runs are never
// cached (memo.DoErrStat), so a retry recomputes.
func (s *Server) runCell(ctx context.Context, sp *runSpec) (lap.Result, bool, error) {
	start := time.Now()
	_, psp := otrace.Start(ctx, "memo.peek", otrace.Str("cell", sp.cellKey()))
	res, ok := s.memo.Peek(sp.key)
	if psp != nil {
		psp.SetAttr(otrace.Bool("hit", ok))
		psp.End()
	}
	if ok {
		s.met.latRecalled.Observe(time.Since(start).Seconds())
		return res, false, nil
	}
	// Queue wait: admission happened in the handler; this is the gap
	// until a worker slot frees (zero when a slot is idle). Separate
	// histogram from run latency — climbing queue waits with flat run
	// latency means the worker cap, not the simulator, is the bottleneck.
	qstart := time.Now()
	_, qsp := otrace.Start(ctx, "queue_wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		if qsp != nil {
			qsp.SetAttr(otrace.Bool("cancelled", true))
			qsp.End()
		}
		s.met.queueWait.Observe(time.Since(qstart).Seconds())
		return lap.Result{}, false, ctx.Err()
	}
	qsp.End()
	s.met.queueWait.Observe(time.Since(qstart).Seconds())
	defer func() { <-s.sem }()
	res, computed, err := s.memo.DoErrStat(ctx, sp.key, func() (lap.Result, error) {
		if s.draining.Load() {
			return lap.Result{}, errDraining
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.running.add(sp.cellKey())
		defer s.running.remove(sp.cellKey())
		tid := traceIDFrom(ctx)
		s.journal.Emit(journal.Event{Kind: "run.start", Run: sp.cellKey(), Trace: tid,
			Fields: journal.F("accesses", sp.accesses, "seed", sp.seed)})
		execStart := time.Now()
		_, esp := otrace.Start(ctx, "execute", otrace.Str("cell", sp.cellKey()))
		res, err := sp.execute(s.runTelemetry(sp, tid))
		if esp != nil {
			esp.SetAttr(otrace.Bool("failed", err != nil))
			esp.End()
		}
		if err != nil {
			s.journal.Emit(journal.Event{Kind: "run.failed", Run: sp.cellKey(), Trace: tid,
				Msg: err.Error(), Fields: journal.F("kind", errKind(err))})
			return lap.Result{}, err
		}
		d := time.Since(execStart).Seconds()
		s.lat.add(d)
		s.met.latComputed.Observe(d)
		s.met.recordRun(res, d)
		s.journal.Emit(journal.Event{Kind: "run.finish", Run: sp.cellKey(), Trace: tid,
			Fields: journal.F("duration_ms", d*1000, "cycles", res.Cycles, "mpki", res.MPKI())})
		return res, nil
	})
	if err == nil && !computed {
		// Lost the Peek race to a completing duplicate: still a recall.
		s.met.latRecalled.Observe(time.Since(start).Seconds())
	}
	return res, computed, err
}

// runCellRetry is runCell under the resilience policy: retryable
// failures are re-executed up to RetryMax times with exponential backoff
// and deterministic jitter, the breaker hears about conclusive
// *executions* only, and the failure counters advance when a run stays
// failed.
//
// Provenance gates the breaker. A memo recall runs no simulation: while
// the simulator is broken, a stream of cache hits says nothing about its
// health, so recalled successes must not reset the consecutive-failure
// streak (they only release a half-open probe slot, like any other
// inconclusive outcome). Likewise an error merely shared from another
// caller's in-flight execution is that execution's evidence, not a
// second data point.
func (s *Server) runCellRetry(ctx context.Context, sp *runSpec) (lap.Result, error) {
	var res lap.Result
	var computed bool
	var err error
	for attempt := 0; ; attempt++ {
		actx, asp := otrace.Start(ctx, "attempt",
			otrace.Str("cell", sp.cellKey()), otrace.Int("n", int64(attempt)))
		res, computed, err = s.runCell(actx, sp)
		if asp != nil {
			asp.SetAttr(otrace.Bool("computed", computed), otrace.Bool("failed", err != nil))
			asp.End()
		}
		if attempt > 0 {
			if err == nil {
				s.met.retrySuccess.Inc()
			} else {
				s.met.retryFailure.Inc()
			}
		}
		if err == nil {
			if computed {
				s.breaker.success()
			} else {
				s.breaker.probeDone()
			}
			return res, nil
		}
		if !retryable(err) || attempt >= s.cfg.RetryMax {
			break
		}
		s.retries.Add(1)
		select {
		case <-time.After(backoffDelay(s.cfg.RetryBackoff, attempt, sp.cellKey())):
		case <-ctx.Done():
			s.breaker.probeDone()
			return lap.Result{}, ctx.Err()
		}
	}
	if retryable(err) {
		// A conclusive failure (fault, panic, simulation error) — not a
		// cancellation, which says nothing about the simulator's health.
		s.failures.Add(1)
		if computed {
			s.breaker.failure()
		} else {
			s.breaker.probeDone()
		}
	} else {
		s.breaker.probeDone()
	}
	return lap.Result{}, err
}

// retryable reports whether re-executing could help: cancellation,
// deadline, and drain refusals are terminal for this request.
func retryable(err error) bool {
	return !errors.Is(err, errDraining) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay grows exponentially from base per attempt and adds up to
// 50% jitter derived deterministically from the cell key, spreading
// concurrent retries without nondeterministic randomness.
func backoffDelay(base time.Duration, attempt int, key string) time.Duration {
	if attempt > 6 {
		attempt = 6 // cap the exponent; RetryMax bounds attempts anyway
	}
	d := base << uint(attempt)
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, strconv.Itoa(attempt))
	return d + time.Duration(h.Sum64()%uint64(d/2+1))
}

// errKind maps a run failure onto the wire taxonomy (see CellError).
func errKind(err error) string {
	var inj *fault.InjectedError
	var re *pool.RunError
	switch {
	case errors.Is(err, errDraining), errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.As(err, &inj):
		return "fault"
	case errors.As(err, &re):
		return "panic"
	}
	return "error"
}

// handleHealthz reports liveness: always 200 while the process can
// serve HTTP at all — draining changes readiness (/readyz), not
// liveness, so an orchestrator never kills an instance for the crime of
// shutting down cleanly. The body carries the load-bearing health
// signals — breaker position, queue occupancy against its bound,
// in-flight runs — so an operator's first curl answers "is it sick, and
// how" without a metrics scrape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	bs := s.breaker.snapshot()
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:     status,
		Breaker:    bs.state,
		QueueDepth: s.queued.Load(),
		QueueLimit: s.cfg.QueueDepth,
		InFlight:   s.inflight.Load(),
	})
}

// handleReadyz reports readiness: whether this instance should receive
// new traffic. Unready (503) from the moment drain begins and while the
// circuit breaker is open — both mean "route elsewhere", neither means
// "restart me" (that is /healthz's call). The watchdog runs one probe
// pass first, so readiness checks double as the degradation sampler on
// servers without a background watchdog loop; degraded subsystems are
// reported but only drain and an open breaker gate readiness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.watchdog.RunOnce()
	resp := ReadyzResponse{Ready: true}
	if s.draining.Load() {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "draining")
	}
	if bs := s.breaker.snapshot(); bs.state == "open" {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "circuit breaker open")
	}
	for sub, st := range s.watchdog.Snapshot() {
		if !st.Healthy {
			resp.Degraded = append(resp.Degraded, sub+": "+st.Detail)
		}
	}
	sort.Strings(resp.Degraded)
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// statsSnapshot assembles the /v1/stats payload; the diagnostics bundle
// reuses it so the two views can never drift.
func (s *Server) statsSnapshot() StatsResponse {
	ms := s.memo.Stats()
	sample := s.lat.snapshot()
	sum := stats.Summarize(sample)
	bs := s.breaker.snapshot()
	var ck *CheckpointStats
	if s.cfg.Checkpoints != nil {
		m := s.cfg.Checkpoints.Metrics()
		ck = &CheckpointStats{
			Writes:          m.Writes(),
			WriteErrors:     m.WriteErrors(),
			Restores:        m.Restores(),
			IntervalsSaved:  m.IntervalsSaved(),
			Corrupt:         m.Corrupt(),
			VersionMismatch: m.VersionMismatches(),
			BytesWritten:    m.BytesWritten(),
			BytesRead:       m.BytesRead(),
		}
	}
	var ev *journal.Stats
	if s.journal != nil {
		st := s.journal.Snapshot()
		ev = &st
	}
	return StatsResponse{
		Computed:          ms.Computed,
		Recalled:          ms.Recalled,
		Evicted:           ms.Evicted,
		MemoEntries:       s.memo.Len(),
		Queued:            s.queued.Load(),
		InFlight:          s.inflight.Load(),
		Traces:            s.store.count(),
		RunLatencyP50Sec:  sum.Median(),
		RunLatencyP95Sec:  sum.Quantile(0.95),
		RunLatencySamples: len(sample),
		MemoFailed:        ms.Failed,
		Failures:          s.failures.Load(),
		Retries:           s.retries.Load(),
		BreakerState:      bs.state,
		BreakerOpens:      bs.opens,
		BreakerShed:       bs.shed,
		Checkpoint:        ck,
		Events:            ev,
		SLO:               s.sloStats(),
	}
}

// sloStats shapes the SLO tracker's rolling windows for the wire.
func (s *Server) sloStats() *SLOStats {
	cfg := s.slo.Config()
	out := &SLOStats{
		Objective:        cfg.Objective,
		LatencyObjective: cfg.LatencyObjective,
		LatencyTargetSec: cfg.LatencyTarget.Seconds(),
	}
	for _, w := range s.slo.Windows() {
		out.Windows = append(out.Windows, SLOWindow{
			Window:           w.Window,
			Total:            w.Total,
			Errors:           w.Errors,
			Slow:             w.Slow,
			SuccessRate:      w.SuccessRate,
			AvailabilityBurn: w.AvailabilityBurn,
			LatencyBurn:      w.LatencyBurn,
		})
	}
	return out
}

// handleStats reports the memo counters, queue occupancy, run latency
// quantiles, SLO windows, and journal counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleRun serves one simulation, coalescing identical requests.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	sp, err := s.resolveRun(req)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(1) {
		s.met.admitRejected.Inc()
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "job queue full; retry later"})
		return
	}
	defer s.release(1)
	if s.refuseBreaker(w) {
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, err := s.runCellRetry(ctx, sp)
	if err != nil {
		s.met.cellError(errKind(err)).Inc()
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sp.result(res))
}

// handleSweep serves a (mix × policy) grid: resolve every cell up front,
// admit the whole batch against the queue bound, warm the grid on the
// worker pool, then collect serially in request order so the response
// bytes are independent of the fan-out.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	// The default policy set is the registry's configuration-aware "all"
	// expansion: hybrid-only policies drop out on uniform LLCs and
	// exact-only policies drop out of sampled sweeps, each skip reported
	// in the response rather than silently running (or 400ing the grid).
	var skipped []string
	if len(req.Policies) == 0 {
		cfg, err := lap.ParseConfig(req.Config)
		if err != nil {
			writeError(w, policyBadRequest(err))
			return
		}
		if req.Mode == "sampled" && cfg.SampleInterval == 0 {
			// Any non-zero interval engages the sampled-eligibility
			// gate; resolveRun derives the real interval per cell.
			cfg.SampleInterval = 1000
		}
		policies, notices, err := lap.ResolvePolicies(cfg, "all")
		if err != nil {
			writeError(w, policyBadRequest(err))
			return
		}
		for _, p := range policies {
			req.Policies = append(req.Policies, string(p))
		}
		skipped = notices
	}
	if len(req.Mixes) == 0 {
		for _, m := range lap.TableIII() {
			req.Mixes = append(req.Mixes, m.Name)
		}
	}

	specs := make([]*runSpec, 0, len(req.Mixes)*len(req.Policies))
	for _, mix := range req.Mixes {
		for _, pol := range req.Policies {
			sp, err := s.resolveRun(RunRequest{
				Config:         req.Config,
				Policy:         pol,
				Mix:            mix,
				Accesses:       req.Accesses,
				Seed:           req.Seed,
				Mode:           req.Mode,
				SampleInterval: req.SampleInterval,
				SampleClusters: req.SampleClusters,
				SampleWarmup:   req.SampleWarmup,
			})
			if err != nil {
				writeError(w, err)
				return
			}
			specs = append(specs, sp)
		}
	}
	if len(specs) == 0 {
		writeJSON(w, http.StatusOK, SweepResponse{Results: []RunResult{}, Skipped: skipped})
		return
	}
	if !s.admit(len(specs)) {
		s.met.admitRejected.Inc()
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("job queue cannot take %d sweep cells; retry later", len(specs)),
		})
		return
	}
	defer s.release(len(specs))
	if s.refuseBreaker(w) {
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	sweepStart := time.Now()
	s.journal.Emit(journal.Event{Kind: "sweep.start", Trace: traceIDFrom(ctx),
		Fields: journal.F("cells", len(specs), "mixes", len(req.Mixes), "policies", len(req.Policies))})

	// Warm pass: fan the grid onto the pool. Duplicate cells coalesce in
	// the memo, failures surface during collection (a failed warm run is
	// never cached, so the collection pass recomputes and retries it),
	// and jobs=1 skips the pass entirely (the serial collection below
	// computes everything), mirroring the lapexp scheduler.
	jobs := req.Jobs
	if jobs <= 0 || jobs > s.cfg.Jobs {
		jobs = s.cfg.Jobs
	}
	if jobs > 1 {
		tasks := make([]pool.Task, len(specs))
		for i, sp := range specs {
			sp := sp
			tasks[i] = pool.Task{Key: sp.cellKey(), Ctx: ctx, Do: func() error {
				_, _, err := s.runCell(ctx, sp)
				return err
			}}
		}
		pool.Run(jobs, tasks)
	}

	// Collection: a sweep is a partial-result API after admission. A cell
	// that stays failed after retries is reported in place with a typed
	// error; the surviving cells carry their results byte-identically to
	// a clean sweep.
	resp := SweepResponse{Results: make([]RunResult, 0, len(specs)), Skipped: skipped}
	for _, sp := range specs {
		res, err := s.runCellRetry(ctx, sp)
		if err != nil {
			kind := errKind(err)
			s.met.cellError(kind).Inc()
			if kind == "cancelled" || kind == "timeout" {
				resp.Cancelled++
			} else {
				resp.Failed++
			}
			resp.Results = append(resp.Results, sp.errorResult(kind, err))
			continue
		}
		resp.Results = append(resp.Results, sp.result(res))
	}
	s.journal.Emit(journal.Event{Kind: "sweep.finish", Trace: traceIDFrom(ctx),
		Fields: journal.F("cells", len(specs), "failed", resp.Failed, "cancelled", resp.Cancelled,
			"duration_ms", time.Since(sweepStart).Seconds()*1000)})
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceUpload stores a binary trace (plain or gzipped; the reader
// sniffs) under ?name=, decoded through internal/trace's codec.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	name := r.URL.Query().Get("name")
	if !traceNameRE.MatchString(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "trace name must match " + traceNameRE.String() + " (pass ?name=...)",
		})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	tr, err := trace.NewAutoReader(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	accs := trace.Drain(tr)
	if err := tr.Err(); err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if len(accs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "trace has no records"})
		return
	}
	st, err := s.store.put(name, accs)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.journal.Emit(journal.Event{Kind: "trace.upload", Trace: traceIDFrom(r.Context()),
		Fields: journal.F("name", name, "records", st.records,
			"digest", fmt.Sprintf("%016x", st.digest))})
	writeJSON(w, http.StatusOK, TraceUploadResponse{
		Name:    name,
		Records: st.records,
		Digest:  fmt.Sprintf("%016x", st.digest),
	})
}

// refuseDraining answers 503 for new work while draining.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return true
	}
	return false
}

// refuseBreaker answers 503 + Retry-After while the circuit breaker
// sheds load.
func (s *Server) refuseBreaker(w http.ResponseWriter) bool {
	ok, retryAfter := s.breaker.allow()
	if ok {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)+1))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: "circuit breaker open; simulations are failing, retry later",
		Kind:  "breaker",
	})
	return true
}

// decodeJSON reads a bounded JSON body, answering 400 itself on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decoding request: " + err.Error()})
		return err
	}
	return nil
}

// writeError maps resolution errors to status codes; validation
// failures carry the offending Config field name.
func writeError(w http.ResponseWriter, err error) {
	var bad badRequestError
	if errors.As(err, &bad) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: bad.msg, Field: bad.field})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

// writeRunError maps a run failure onto a status: drain refusal → 503,
// deadline → 504, client cancel → 499 (nginx's convention; net/http has
// no name for it), anything conclusive → 500 with its taxonomy kind.
func writeRunError(w http.ResponseWriter, err error) {
	kind := errKind(err)
	switch {
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining", Kind: kind})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "request timed out in queue", Kind: kind})
	case errors.Is(err, context.Canceled):
		writeJSON(w, 499, errorResponse{Error: "request cancelled", Kind: kind})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Kind: kind})
	}
}

// writeJSON renders one response. Marshal of our wire types cannot fail;
// a failure here is a programming error worth a 500 over a panic.
func writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// runTelemetry builds the per-interval event bridge for one execution:
// nil — telemetry fully off, the simulator pays one nil check per access
// — unless a live /v1/events subscriber exists (one atomic load decides,
// see journal.Streaming). Checkpointed and sampled runs execute through
// entry points without an observation hook and stream lifecycle events
// only. Telemetry observes and never steers, so results stay
// byte-identical with or without subscribers — the obs-smoke gate
// byte-compares exactly this.
func (s *Server) runTelemetry(sp *runSpec, traceID string) *sim.Telemetry {
	if !s.journal.Streaming() || sp.ckpt != nil || sp.profile != nil {
		return nil
	}
	// ~16 windows per run, summed over cores, floored so tiny runs emit
	// at most a handful of events rather than one per access.
	interval := sp.accesses * uint64(sp.cfg.Cores) / 16
	if interval < 1000 {
		interval = 1000
	}
	return sim.JournalTelemetry(s.journal, sp.cellKey(), traceID, interval)
}

// runRegistry tracks in-flight executions by cell key so the watchdog's
// deadline probe can name the run that is blowing its budget.
type runRegistry struct {
	mu sync.Mutex
	m  map[string]time.Time
}

func newRunRegistry() *runRegistry {
	return &runRegistry{m: map[string]time.Time{}}
}

func (r *runRegistry) add(key string) {
	r.mu.Lock()
	if _, dup := r.m[key]; !dup {
		r.m[key] = time.Now()
	}
	r.mu.Unlock()
}

func (r *runRegistry) remove(key string) {
	r.mu.Lock()
	delete(r.m, key)
	r.mu.Unlock()
}

// oldest returns the longest-running execution's key and start time.
func (r *runRegistry) oldest() (string, time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var key string
	var at time.Time
	for k, t := range r.m {
		if key == "" || t.Before(at) {
			key, at = k, t
		}
	}
	return key, at, key != ""
}

// newWatchdog builds the per-subsystem degradation probes: a full job
// queue (stalled intake), an execution past the request deadline budget
// (a run the timeout machinery lost track of, or a pathological cell),
// a checkpoint store accumulating write errors, and an open breaker.
// Transitions are edge-triggered into the journal and flip the
// lapserved_watchdog_healthy{subsystem=...} gauges.
func (s *Server) newWatchdog() *health.Watchdog {
	w := health.NewWatchdog(s.cfg.WatchdogInterval)
	w.Add("queue", func() health.Status {
		if q := s.queued.Load(); q >= int64(s.cfg.QueueDepth) {
			return health.Degraded(fmt.Sprintf("job queue full (%d/%d)", q, s.cfg.QueueDepth))
		}
		return health.OK()
	})
	w.Add("deadline", func() health.Status {
		if key, at, ok := s.running.oldest(); ok {
			if age := time.Since(at); age > s.cfg.RequestTimeout {
				return health.Degraded(fmt.Sprintf("run %s executing for %s (budget %s)",
					key, age.Round(time.Millisecond), s.cfg.RequestTimeout))
			}
		}
		return health.OK()
	})
	w.Add("breaker", func() health.Status {
		if bs := s.breaker.snapshot(); bs.state == "open" {
			return health.Degraded("circuit breaker open")
		}
		return health.OK()
	})
	if s.cfg.Checkpoints != nil {
		var lastErrs uint64
		var mu sync.Mutex
		w.Add("checkpoint", func() health.Status {
			errs := s.cfg.Checkpoints.Metrics().WriteErrors()
			mu.Lock()
			delta := errs - lastErrs
			lastErrs = errs
			mu.Unlock()
			if delta > 0 {
				return health.Degraded(fmt.Sprintf("%d checkpoint write error(s) since last probe", delta))
			}
			return health.OK()
		})
	}
	w.OnTransition(func(subsystem string, healthy bool, detail string) {
		s.journal.Emit(journal.Event{Kind: "watchdog.transition", Msg: detail,
			Fields: journal.F("subsystem", subsystem, "healthy", healthy)})
	})
	return w
}

// latRing keeps the most recent computed-run latencies for the stats
// quantiles.
type latRing struct {
	mu  sync.Mutex
	buf []float64
	pos int
}

func (l *latRing) add(sec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, sec)
		return
	}
	l.buf[l.pos] = sec
	l.pos = (l.pos + 1) % len(l.buf)
}

func (l *latRing) snapshot() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.buf...)
}
