package server

import (
	"repro/internal/obs"
	"repro/internal/pool"
)

// serverMetrics is lapserved's first-class observability layer: every
// series GET /metrics exposes. Mutated instruments live here; sampled
// values (queue occupancy, memo residency, breaker position) register as
// scrape-time gauge functions so the hot path never touches the
// registry.
//
// The run-latency histogram is split by provenance — source="computed"
// observes simulation execution time, source="recalled" the time a
// cached answer took to reach the client. The split is load-bearing:
// recalls that climb toward computed latencies mean cache hits are
// queuing behind workers, and a breaker that never opens while
// recalled traffic stays healthy and computed traffic fails is the
// exact signature of the recall/breaker liveness bug this layer was
// built to expose.
type serverMetrics struct {
	reg *obs.Registry

	admitRejected *obs.Counter
	retrySuccess  *obs.Counter
	retryFailure  *obs.Counter
	cellErrors    map[string]*obs.Counter
	latComputed   *obs.Histogram
	latRecalled   *obs.Histogram
	queueWait     *obs.Histogram
}

// cellErrorKinds is the closed failure taxonomy of the wire (see
// CellError); every kind pre-registers so series exist at zero.
var cellErrorKinds = []string{"cancelled", "timeout", "fault", "panic", "error"}

// newServerMetrics registers every lapserved series on reg and wires the
// sampled gauges to s. Called once from New, after the server's
// components exist.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		admitRejected: reg.Counter("lapserved_admit_rejected_total",
			"Requests refused with 429 because the job queue was full."),
		cellErrors: map[string]*obs.Counter{},
	}
	m.retrySuccess = reg.Counter("lapserved_retry_attempts_total",
		"Retry attempts by outcome of the retried execution.", obs.L("outcome", "success"))
	m.retryFailure = reg.Counter("lapserved_retry_attempts_total",
		"Retry attempts by outcome of the retried execution.", obs.L("outcome", "failure"))
	for _, kind := range cellErrorKinds {
		m.cellErrors[kind] = reg.Counter("lapserved_cell_errors_total",
			"Failed run/sweep cells by failure kind.", obs.L("kind", kind))
	}
	m.latComputed = reg.Histogram("lapserved_run_duration_seconds",
		"Run latency split by provenance: simulation execution time (computed) vs cached-answer delivery time (recalled).",
		obs.RunLatencyBuckets, obs.L("source", "computed"))
	m.latRecalled = reg.Histogram("lapserved_run_duration_seconds",
		"Run latency split by provenance: simulation execution time (computed) vs cached-answer delivery time (recalled).",
		obs.RunLatencyBuckets, obs.L("source", "recalled"))
	// Queue wait is deliberately a separate series from run duration:
	// admission-to-worker-start time isolates contention for the worker
	// cap from the simulator's own speed.
	m.queueWait = reg.Histogram("lapserved_queue_wait_seconds",
		"Time between a cell's admission and its worker-slot acquisition (queueing delay, not execution).",
		obs.RunLatencyBuckets)

	reg.GaugeFunc("lapserved_queue_depth",
		"Admitted-but-unfinished jobs (bounded queue occupancy).",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("lapserved_queue_limit",
		"Configured job queue bound (QueueDepth).",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("lapserved_inflight_runs",
		"Simulations executing right now.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("lapserved_trace_store_entries",
		"Uploaded traces resident in the trace store.",
		func() float64 { return float64(s.store.count()) })
	reg.GaugeFunc("lapserved_breaker_state",
		"Circuit breaker position: -1 disabled, 0 closed, 1 open, 2 half-open.",
		s.breaker.stateValue)
	reg.CounterFunc("lapserved_runs_failed_total",
		"Runs that stayed failed after exhausting retries (mirrors /v1/stats failures).",
		s.failures.Load)

	// The breaker reports its own transitions and sheds.
	s.breaker.met = breakerMetrics{
		toOpen: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "open")),
		toHalfOpen: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "half-open")),
		toClosed: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "closed")),
		shed: reg.Counter("lapserved_breaker_shed_total",
			"Requests refused with 503 while the breaker was open or probing."),
	}

	// Memo and pool counters ride along under the lapserved namespace.
	s.memo.Register(reg, "lapserved_memo")
	pool.Register(reg, "lapserved_pool")
	return m
}

// cellError resolves the counter for one failure kind, falling back to
// the generic "error" series for kinds outside the taxonomy.
func (m *serverMetrics) cellError(kind string) *obs.Counter {
	if c, ok := m.cellErrors[kind]; ok {
		return c
	}
	return m.cellErrors["error"]
}
