package server

import (
	"strconv"
	"sync"

	lap "repro"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sample"
)

// serverMetrics is lapserved's first-class observability layer: every
// series GET /metrics exposes. Mutated instruments live here; sampled
// values (queue occupancy, memo residency, breaker position) register as
// scrape-time gauge functions so the hot path never touches the
// registry.
//
// The run-latency histogram is split by provenance — source="computed"
// observes simulation execution time, source="recalled" the time a
// cached answer took to reach the client. The split is load-bearing:
// recalls that climb toward computed latencies mean cache hits are
// queuing behind workers, and a breaker that never opens while
// recalled traffic stays healthy and computed traffic fails is the
// exact signature of the recall/breaker liveness bug this layer was
// built to expose.
type serverMetrics struct {
	reg *obs.Registry

	admitRejected *obs.Counter
	retrySuccess  *obs.Counter
	retryFailure  *obs.Counter
	cellErrors    map[string]*obs.Counter
	latComputed   *obs.Histogram
	latRecalled   *obs.Histogram
	queueWait     *obs.Histogram

	// accessRate is the most recent computed run's simulated-access
	// throughput (accesses simulated per wall-clock second of execution)
	// — the simulator-speed series the banked engine's speedups move.
	accessRate *obs.Gauge
	// bankOps accumulates each computed run's per-LLC-bank access counts
	// (Result.BankOps). Series materialise lazily because the bank count
	// is a per-run Config knob, not a server constant.
	bankOpsMu sync.Mutex
	bankOps   map[int]*obs.Counter
}

// cellErrorKinds is the closed failure taxonomy of the wire (see
// CellError); every kind pre-registers so series exist at zero.
var cellErrorKinds = []string{"cancelled", "timeout", "fault", "panic", "error"}

// newServerMetrics registers every lapserved series on reg and wires the
// sampled gauges to s. Called once from New, after the server's
// components exist.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		admitRejected: reg.Counter("lapserved_admit_rejected_total",
			"Requests refused with 429 because the job queue was full."),
		cellErrors: map[string]*obs.Counter{},
	}
	m.retrySuccess = reg.Counter("lapserved_retry_attempts_total",
		"Retry attempts by outcome of the retried execution.", obs.L("outcome", "success"))
	m.retryFailure = reg.Counter("lapserved_retry_attempts_total",
		"Retry attempts by outcome of the retried execution.", obs.L("outcome", "failure"))
	for _, kind := range cellErrorKinds {
		m.cellErrors[kind] = reg.Counter("lapserved_cell_errors_total",
			"Failed run/sweep cells by failure kind.", obs.L("kind", kind))
	}
	m.accessRate = reg.Gauge("lapsim_accesses_per_second",
		"Simulated accesses per wall-clock second of the most recent computed run (recalls do not move it).")
	m.bankOps = map[int]*obs.Counter{}
	m.latComputed = reg.Histogram("lapserved_run_duration_seconds",
		"Run latency split by provenance: simulation execution time (computed) vs cached-answer delivery time (recalled).",
		obs.RunLatencyBuckets, obs.L("source", "computed"))
	m.latRecalled = reg.Histogram("lapserved_run_duration_seconds",
		"Run latency split by provenance: simulation execution time (computed) vs cached-answer delivery time (recalled).",
		obs.RunLatencyBuckets, obs.L("source", "recalled"))
	// Queue wait is deliberately a separate series from run duration:
	// admission-to-worker-start time isolates contention for the worker
	// cap from the simulator's own speed.
	m.queueWait = reg.Histogram("lapserved_queue_wait_seconds",
		"Time between a cell's admission and its worker-slot acquisition (queueing delay, not execution).",
		obs.RunLatencyBuckets)

	reg.GaugeFunc("lapserved_queue_depth",
		"Admitted-but-unfinished jobs (bounded queue occupancy).",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("lapserved_queue_limit",
		"Configured job queue bound (QueueDepth).",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("lapserved_inflight_runs",
		"Simulations executing right now.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("lapserved_trace_store_entries",
		"Uploaded traces resident in the trace store.",
		func() float64 { return float64(s.store.count()) })
	reg.GaugeFunc("lapserved_breaker_state",
		"Circuit breaker position: -1 disabled, 0 closed, 1 open, 2 half-open.",
		s.breaker.stateValue)
	reg.CounterFunc("lapserved_runs_failed_total",
		"Runs that stayed failed after exhausting retries (mirrors /v1/stats failures).",
		s.failures.Load)

	// The breaker reports its own transitions and sheds.
	s.breaker.met = breakerMetrics{
		toOpen: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "open")),
		toHalfOpen: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "half-open")),
		toClosed: reg.Counter("lapserved_breaker_transitions_total",
			"Breaker state transitions by destination state.", obs.L("to", "closed")),
		shed: reg.Counter("lapserved_breaker_shed_total",
			"Requests refused with 503 while the breaker was open or probing."),
	}

	// Memo and pool counters ride along under the lapserved namespace,
	// as do the sampled-simulation series (profile cache activity plus
	// the interval/work-reduction telemetry from internal/sample).
	s.memo.Register(reg, "lapserved_memo")
	s.profiles.Register(reg, "lapserved_profile_memo")
	pool.Register(reg, "lapserved_pool")
	sample.RegisterMetrics(reg, "lapserved")
	// Checkpoint durability counters (lap_checkpoint_*) join the scrape
	// when a store is attached; the store owns the series, the server
	// just exposes them.
	if s.cfg.Checkpoints != nil {
		s.cfg.Checkpoints.Register(reg, "lap")
	}
	return m
}

// recordRun feeds the simulation-throughput series from one computed
// run: res is the run's result, seconds its execution wall-clock.
func (m *serverMetrics) recordRun(res lap.Result, seconds float64) {
	if seconds > 0 {
		// L1Accesses counts every simulated access in the measurement
		// window, across all cores.
		m.accessRate.Set(float64(res.Met.L1Accesses) / seconds)
	}
	if len(res.BankOps) == 0 {
		return
	}
	m.bankOpsMu.Lock()
	defer m.bankOpsMu.Unlock()
	for b, n := range res.BankOps {
		c, ok := m.bankOps[b]
		if !ok {
			c = m.reg.Counter("lapsim_bank_ops_total",
				"LLC accesses routed to each timing-model bank, summed over computed runs (bank utilization profile).",
				obs.L("bank", strconv.Itoa(b)))
			m.bankOps[b] = c
		}
		c.Add(n)
	}
}

// cellError resolves the counter for one failure kind, falling back to
// the generic "error" series for kinds outside the taxonomy.
func (m *serverMetrics) cellError(kind string) *obs.Counter {
	if c, ok := m.cellErrors[kind]; ok {
		return c
	}
	return m.cellErrors["error"]
}
