package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/journal"
)

// eventsHeartbeat is the idle keepalive period for /v1/events streams:
// a comment line every so often keeps proxies from reaping a quiet
// connection and lets the server notice a dead client.
const eventsHeartbeat = 15 * time.Second

// handleEvents streams the operational event journal as Server-Sent
// Events. Each event is one SSE frame (`id:` = journal sequence,
// `event:` = kind, `data:` = the JSON event), so a reconnecting client
// resumes from Last-Event-ID (or an explicit ?from=seq) and observes
// strictly increasing sequence numbers — a gap means the ring evicted
// events while it was away.
//
// Filters: ?kind=run.*,breaker.transition (comma-separated, trailing-*
// prefix match) and ?run=workload|policy narrow the stream server-side.
// A slow consumer never blocks emitters: its bounded queue drops oldest
// events, and the drop count is reported in-stream as a comment before
// the next batch.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "event journal is disabled"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	var f journal.Filter
	if kinds := r.URL.Query().Get("kind"); kinds != "" {
		for _, k := range strings.Split(kinds, ",") {
			if k = strings.TrimSpace(k); k != "" {
				f.Kinds = append(f.Kinds, k)
			}
		}
	}
	f.Run = r.URL.Query().Get("run")

	// Resume point: an explicit ?from= wins, else Last-Event-ID + 1
	// (the header names the last event the client got).
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "from must be an unsigned integer"})
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			from = n + 1
		}
	}

	sub := s.journal.Subscribe(0, from, f)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // nginx: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": lapserved event stream\n\n")
	flusher.Flush()

	ctx := r.Context()
	for {
		// Bound each wait so idle streams heartbeat; only the child
		// deadline distinguishes "quiet" from "client gone".
		wctx, cancel := context.WithTimeout(ctx, eventsHeartbeat)
		batch, drops, err := sub.Next(wctx)
		cancel()
		switch {
		case err == nil:
		case errors.Is(err, journal.ErrClosed):
			// Server shutdown (CloseSubscribers): the queue is drained,
			// end the stream cleanly.
			return
		case ctx.Err() != nil:
			return // client disconnected
		default:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
			continue
		}
		if drops > 0 {
			fmt.Fprintf(w, ": dropped %d events (slow consumer)\n\n", drops)
		}
		for _, e := range batch {
			data, merr := json.Marshal(e)
			if merr != nil {
				continue // unmarshalable Fields value; skip the frame
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		}
		flusher.Flush()
	}
}
