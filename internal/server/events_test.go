package server

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/journal"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    uint64
	event string
	data  []byte
}

// sseClient reads frames off an open /v1/events stream.
type sseClient struct {
	resp   *http.Response
	rd     *bufio.Reader
	cancel context.CancelFunc
}

// openSSE connects to url and returns a frame reader; the stream is torn
// down via t.Cleanup.
func openSSE(t *testing.T, url string, lastEventID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatalf("building events request: %v", err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type = %q, want text/event-stream", ct)
	}
	c := &sseClient{resp: resp, rd: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one frame, skipping comments/heartbeats, within the
// deadline. Returns false when the stream ends or the deadline passes.
func (c *sseClient) next(t *testing.T, deadline time.Duration) (sseFrame, bool) {
	t.Helper()
	timer := time.AfterFunc(deadline, c.cancel)
	defer timer.Stop()
	var f sseFrame
	seen := false
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return sseFrame{}, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, true
			}
			// Blank after a comment-only block: keep reading.
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			n, perr := strconv.ParseUint(line[4:], 10, 64)
			if perr != nil {
				t.Fatalf("bad SSE id line %q: %v", line, perr)
			}
			f.id, seen = n, true
		case strings.HasPrefix(line, "event: "):
			f.event, seen = line[7:], true
		case strings.HasPrefix(line, "data: "):
			f.data, seen = []byte(line[6:]), true
		}
	}
}

// collectUntil reads frames until one matching kind arrives (inclusive)
// or the deadline passes.
func (c *sseClient) collectUntil(t *testing.T, kind string, deadline time.Duration) []sseFrame {
	t.Helper()
	var frames []sseFrame
	limit := time.Now().Add(deadline)
	for {
		rem := time.Until(limit)
		if rem <= 0 {
			return frames
		}
		f, ok := c.next(t, rem)
		if !ok {
			return frames
		}
		frames = append(frames, f)
		if f.event == kind {
			return frames
		}
	}
}

// waitSubscribers polls /v1/stats until the journal reports n live
// subscribers, so a test can order "subscribe" before "run".
func waitSubscribers(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := getStats(t, base)
		if st.Events != nil && st.Events.Subscribers >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("journal never reached %d subscribers", n)
}

// TestEventsSSELifecycle: a live subscriber sees the run lifecycle —
// run.start, per-interval telemetry, run.finish — as ordered SSE frames
// with strictly increasing sequence IDs, and the event payloads carry
// the run key and the request's trace ID.
func TestEventsSSELifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	c := openSSE(t, ts.URL+"/v1/events", "")
	waitSubscribers(t, ts.URL, 1)

	status, body, tid := postTraced(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses})
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}

	frames := c.collectUntil(t, "run.finish", 10*time.Second)
	kinds := map[string]int{}
	var lastSeq uint64
	for _, f := range frames {
		kinds[f.event]++
		if f.id <= lastSeq {
			t.Fatalf("sequence not strictly increasing: %d after %d", f.id, lastSeq)
		}
		lastSeq = f.id
	}
	for _, want := range []string{"run.start", "interval", "run.finish"} {
		if kinds[want] == 0 {
			t.Errorf("stream lacks %q events (got %v)", want, kinds)
		}
	}

	// Events decode as journal.Event and correlate: run key on every
	// lifecycle frame, the request's trace ID threaded through.
	for _, f := range frames {
		var e journal.Event
		if err := json.Unmarshal(f.data, &e); err != nil {
			t.Fatalf("frame %d (%s) data is not a journal event: %v", f.id, f.event, err)
		}
		if e.Seq != f.id || e.Kind != f.event {
			t.Fatalf("frame %d/%s disagrees with payload %d/%s", f.id, f.event, e.Seq, e.Kind)
		}
		if f.event == "run.start" {
			if e.Run == "" {
				t.Error("run.start event lacks a run key")
			}
			if tid != "" && e.Trace != tid {
				t.Errorf("run.start trace = %q, want %q", e.Trace, tid)
			}
		}
	}
}

// TestEventsSSEReplay: a reconnecting client presenting Last-Event-ID
// replays the retained suffix with monotone sequence numbers, and
// ?kind= filters narrow the stream server-side.
func TestEventsSSEReplay(t *testing.T) {
	_, ts := testServer(t, Config{})
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses}); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}

	// Replay everything: ?from=1 on a quiet server yields the whole ring.
	c := openSSE(t, ts.URL+"/v1/events?from=1", "")
	frames := c.collectUntil(t, "run.finish", 5*time.Second)
	if len(frames) == 0 {
		t.Fatal("replay from seq 1 yielded no frames")
	}
	if frames[0].id != 1 {
		t.Errorf("replay starts at seq %d, want 1", frames[0].id)
	}
	cut := frames[len(frames)-1].id
	if frames[len(frames)-1].event != "run.finish" {
		t.Fatalf("replay never reached run.finish (%d frames)", len(frames))
	}
	c.close()

	// Reconnect as a browser would: Last-Event-ID = the split point means
	// "I have everything through cut"; with a fresh run afterwards the
	// stream resumes strictly after it.
	c2 := openSSE(t, ts.URL+"/v1/events", strconv.FormatUint(cut, 10))
	waitSubscribers(t, ts.URL, 1)
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL2", Accesses: smallAccesses}); status != http.StatusOK {
		t.Fatalf("second run: %d %s", status, body)
	}
	resumed := c2.collectUntil(t, "run.finish", 10*time.Second)
	if len(resumed) == 0 {
		t.Fatal("resumed stream yielded no frames")
	}
	last := cut
	for _, f := range resumed {
		if f.id <= last {
			t.Fatalf("resumed seq %d not after %d", f.id, last)
		}
		last = f.id
	}
	c2.close()

	// Kind filter: only run.* frames come through.
	c3 := openSSE(t, ts.URL+"/v1/events?from=1&kind=run.*", "")
	filtered := c3.collectUntil(t, "run.finish", 5*time.Second)
	if len(filtered) == 0 {
		t.Fatal("filtered replay yielded no frames")
	}
	for _, f := range filtered {
		if !strings.HasPrefix(f.event, "run.") {
			t.Errorf("kind=run.* let %q through", f.event)
		}
	}
}

// TestReadyzBreakerOpen: an open circuit breaker makes the instance
// unready (route elsewhere) while liveness stays green (do not restart).
func TestReadyzBreakerOpen(t *testing.T) {
	s, ts := testServer(t, Config{BreakerThreshold: 2})
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz before trip: %d, want 200", status)
	}

	s.breaker.mu.Lock()
	s.breaker.trip()
	s.breaker.mu.Unlock()

	status, body := get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with breaker open: %d %s, want 503", status, body)
	}
	var rz ReadyzResponse
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatalf("readyz body: %v (%s)", err, body)
	}
	if rz.Ready {
		t.Error("body says ready under an open breaker")
	}
	found := false
	for _, r := range rz.Reasons {
		if strings.Contains(r, "breaker") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons %v do not mention the breaker", rz.Reasons)
	}
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz went unhealthy with the breaker open (liveness must not gate on readiness)")
	}

	// The transition itself landed in the journal.
	foundEv := false
	for _, e := range s.journal.Recent(0) {
		if e.Kind == "breaker.transition" {
			foundEv = true
		}
	}
	if !foundEv {
		t.Error("no breaker.transition event in the journal")
	}
}

// TestDiagnosticsBundle: GET /debug/bundle yields one tar.gz whose
// members all parse — JSON documents decode, the metrics exposition has
// TYPE lines, the event log is valid JSONL, and the pprof profiles are
// non-empty.
func TestDiagnosticsBundle(t *testing.T) {
	_, ts := testServer(t, Config{})
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: smallAccesses}); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatalf("GET /debug/bundle: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("bundle content type = %q", ct)
	}

	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	members := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading tar: %v", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("reading member %s: %v", hdr.Name, err)
		}
		members[hdr.Name] = data
	}

	for _, name := range []string{"meta.json", "config.json", "stats.json"} {
		data, ok := members[name]
		if !ok {
			t.Fatalf("bundle lacks %s (have %v)", name, memberNames(members))
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
	if !strings.Contains(string(members["metrics.prom"]), "# TYPE") {
		t.Error("metrics.prom has no TYPE lines")
	}
	evl, ok := members["events.jsonl"]
	if !ok {
		t.Fatalf("bundle lacks events.jsonl (have %v)", memberNames(members))
	}
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(evl)), "\n") {
		if line == "" {
			continue
		}
		var e journal.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("events.jsonl line does not parse: %v (%s)", err, line)
		}
		lines++
	}
	if lines == 0 {
		t.Error("events.jsonl is empty after a completed run")
	}
	for _, prof := range []string{"goroutine.pprof", "heap.pprof"} {
		if len(members[prof]) == 0 {
			t.Errorf("%s is missing or empty", prof)
		}
	}
	// The run above was traced (tracing is on by default), so at least
	// one trace document rides along and parses.
	traced := 0
	for name, data := range members {
		if strings.HasPrefix(name, "traces/") {
			traced++
			var v map[string]any
			if err := json.Unmarshal(data, &v); err != nil {
				t.Errorf("%s does not parse: %v", name, err)
			}
		}
	}
	if traced == 0 {
		t.Error("bundle carries no request traces")
	}
}

func memberNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	return names
}
