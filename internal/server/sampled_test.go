package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// Sampled runs need enough trace for several intervals at the 1000-
// access validation floor; still fast (a few ms per policy).
const sampledAccesses = 12000

func sampledReq(mix string) RunRequest {
	return RunRequest{
		Mix:            mix,
		Accesses:       sampledAccesses,
		Mode:           "sampled",
		SampleInterval: 1000,
		SampleClusters: 4,
	}
}

func TestRunSampledEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, body := post(t, ts.URL+"/v1/run", sampledReq("WL1"))
	if status != http.StatusOK {
		t.Fatalf("sampled run: %d %s", status, body)
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if !res.Sampled || res.Sample == nil {
		t.Fatalf("sampled run missing sampled/sample fields: %s", body)
	}
	if res.Sample.Clusters <= 0 || res.Sample.IntervalsProfiled <= res.Sample.IntervalsDetailed {
		t.Errorf("implausible estimate: %+v", *res.Sample)
	}
	if res.Sample.WorkReduction <= 1 {
		t.Errorf("work reduction not > 1: %v", res.Sample.WorkReduction)
	}
	if res.Cycles == 0 || res.EPITotalNJ <= 0 || res.MPKI <= 0 {
		t.Errorf("implausible sampled metrics: %+v", res)
	}

	// An exact run of the same workload is a different cache cell and
	// carries no sampling fields.
	status, body = post(t, ts.URL+"/v1/run", RunRequest{Mix: "WL1", Accesses: sampledAccesses})
	if status != http.StatusOK {
		t.Fatalf("exact run: %d %s", status, body)
	}
	var exact RunResult
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatalf("decoding exact result: %v", err)
	}
	if exact.Sampled || exact.Sample != nil {
		t.Errorf("exact run carries sampling fields: %s", body)
	}
	if st := getStats(t, ts.URL); st.Computed != 2 {
		t.Errorf("sampled and exact runs should be distinct cache cells: computed=%d, want 2", st.Computed)
	}

	// A repeat of the sampled request is a recall, not a recompute, and
	// serializes identically.
	status, body2 := post(t, ts.URL+"/v1/run", sampledReq("WL1"))
	if status != http.StatusOK {
		t.Fatalf("sampled rerun: %d %s", status, body2)
	}
	var rerun RunResult
	if err := json.Unmarshal(body2, &rerun); err != nil {
		t.Fatalf("decoding rerun: %v", err)
	}
	if st := getStats(t, ts.URL); st.Computed != 2 || st.Recalled == 0 {
		t.Errorf("sampled rerun should recall: computed=%d recalled=%d", st.Computed, st.Recalled)
	}
}

func TestRunSampledValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name  string
		req   RunRequest
		field string
	}{
		{"unknown mode", RunRequest{Mix: "WL1", Mode: "approximate"}, ""},
		{"knobs without sampled mode", RunRequest{Mix: "WL1", SampleInterval: 2000}, ""},
		{"clusters without sampled mode", RunRequest{Mix: "WL1", SampleClusters: 4}, ""},
		{"interval below floor", RunRequest{Mix: "WL1", Mode: "sampled", SampleInterval: 500}, "SampleInterval"},
		{"cluster count out of range", RunRequest{Mix: "WL1", Mode: "sampled", SampleClusters: 300}, "SampleClusters"},
		{"warmup out of range", RunRequest{Mix: "WL1", Mode: "sampled", SampleWarmup: 65}, "SampleWarmup"},
		{"sampled threaded", RunRequest{Bench: "x264", Threads: 2, Mode: "sampled"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+"/v1/run", tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("got %d %s, want 400", status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("decoding error body: %v", err)
			}
			if er.Field != tc.field {
				t.Errorf("error field: got %q, want %q (%s)", er.Field, tc.field, er.Error)
			}
		})
	}
}

func TestSweepSampled(t *testing.T) {
	s, ts := testServer(t, Config{})
	req := SweepRequest{
		Policies:       []string{"LAP", "non-inclusive"},
		Mixes:          []string{"WL1"},
		Accesses:       sampledAccesses,
		Mode:           "sampled",
		SampleInterval: 1000,
		SampleClusters: 4,
	}
	status, body := post(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sampled sweep: %d %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding sweep: %v", err)
	}
	if len(resp.Results) != 2 || resp.Failed != 0 {
		t.Fatalf("sweep shape: %d results, %d failed", len(resp.Results), resp.Failed)
	}
	for _, r := range resp.Results {
		if !r.Sampled || r.Sample == nil {
			t.Errorf("cell %s|%s not sampled: %+v", r.Workload, r.Policy, r)
		}
	}
	// Both policies replay one shared profile: exactly one profiling
	// pass for the whole sweep.
	if ps := s.profiles.Stats(); ps.Computed != 1 {
		t.Errorf("profile passes: got %d, want 1 (policies must share)", ps.Computed)
	}
}
