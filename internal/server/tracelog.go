package server

import (
	"container/list"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	otrace "repro/internal/obs/trace"
)

// perRequestTraceEvents bounds one request's span ring. A request emits
// a handful of spans per attempt (queue wait, memo, execute), so this is
// generous headroom even for a large sweep.
const perRequestTraceEvents = 4096

// traceLog is the bounded in-memory store behind GET /v1/trace/{id}:
// each traced request's exported Chrome trace-event JSON, keyed by
// request ID, evicting oldest-first past the bound.
type traceLog struct {
	mu    sync.Mutex
	max   int
	byID  map[string]*list.Element
	order *list.List // *traceEntry, newest at front
}

type traceEntry struct {
	id   string
	data []byte
}

func newTraceLog(max int) *traceLog {
	return &traceLog{max: max, byID: map[string]*list.Element{}, order: list.New()}
}

func (l *traceLog) put(id string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byID[id] = l.order.PushFront(&traceEntry{id: id, data: data})
	for l.order.Len() > l.max {
		back := l.order.Back()
		delete(l.byID, back.Value.(*traceEntry).id)
		l.order.Remove(back)
	}
}

func (l *traceLog) get(id string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.byID[id]
	if !ok {
		return nil, false
	}
	return el.Value.(*traceEntry).data, true
}

func (l *traceLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// recent returns up to max stored traces, newest first, for the
// diagnostics bundle.
func (l *traceLog) recent(max int) []traceEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]traceEntry, 0, max)
	for el := l.order.Front(); el != nil && len(out) < max; el = el.Next() {
		e := el.Value.(*traceEntry)
		out = append(out, traceEntry{id: e.id, data: e.data})
	}
	return out
}

// traceIDKey carries the request's trace ID down through handler
// contexts so journal events emitted during the request (run lifecycle,
// interval telemetry) correlate with the request log and
// GET /v1/trace/{id} on the same ID.
type traceIDKey struct{}

// traceIDFrom reads the request trace ID stashed by instrument ("" when
// the context did not come through a request).
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// instrument wraps the router with per-request tracing, structured
// logging, and SLO accounting. EVERY request — simulation POSTs and
// read-only GETs alike — gets a request ID (echoed in X-Trace-Id and
// stashed in the context for journal correlation) and the same
// structured log line: method, route (the matched mux pattern), status,
// bytes written, duration, trace_id. Simulation requests additionally
// get a private small tracer whose root "request" span flows down
// through the handler via the request context — queue waits, memo
// provenance, retry attempts, and executions all record under it — and
// whose export lands in the trace log for GET /v1/trace/{id} (and
// TraceDir, when set); their log line carries the root span's ID too.
// Run and sweep requests feed the SLO tracker: server-side failure
// (5xx) burns the availability budget, a slow answer the latency one.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		ctx := context.WithValue(r.Context(), traceIDKey{}, id)
		w.Header().Set("X-Trace-Id", id)
		var tr *otrace.Tracer
		var root *otrace.Span
		if s.traces != nil && r.Method == http.MethodPost {
			tr = otrace.New(perRequestTraceEvents)
			ctx, root = tr.Root(ctx, "request",
				otrace.Str("id", id),
				otrace.Str("method", r.Method),
				otrace.Str("path", r.URL.Path))
			tr.NameTrack(otrace.PidWall, root.ID(), id)
		}
		r = r.WithContext(ctx)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		dur := time.Since(start)
		if root != nil {
			root.SetAttr(otrace.Int("status", int64(rec.status)))
			root.End()
			data := tr.ChromeJSON()
			s.traces.put(id, data)
			if s.cfg.TraceDir != "" {
				// Best-effort: a full disk must not fail the request.
				_ = os.WriteFile(filepath.Join(s.cfg.TraceDir, id+".json"), data, 0o644)
			}
		}
		route := r.Pattern
		if route == "" {
			route = r.URL.Path // no mux match (404s)
		}
		if r.Method == http.MethodPost &&
			(r.URL.Path == "/v1/run" || r.URL.Path == "/v1/sweep") {
			// 5xx burns availability; client-side aborts (499) and client
			// errors do not — the server did its part.
			s.slo.Observe(rec.status < http.StatusInternalServerError, dur)
		}
		if s.cfg.Logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", dur),
				slog.String("trace_id", id),
			}
			if root != nil {
				attrs = append(attrs, slog.Uint64("span_id", root.ID()))
			}
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

// statusRecorder captures the response status and byte count for the
// request log and the root span, and forwards Flush so streaming
// handlers (the /v1/events SSE stream) still reach the client
// incrementally through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleTrace serves one traced request's Chrome trace-event JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "request tracing is disabled"})
		return
	}
	id := r.PathValue("id")
	data, ok := s.traces.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no trace for id " + id + " (evicted or never recorded)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
