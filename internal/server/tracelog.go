package server

import (
	"container/list"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	otrace "repro/internal/obs/trace"
)

// perRequestTraceEvents bounds one request's span ring. A request emits
// a handful of spans per attempt (queue wait, memo, execute), so this is
// generous headroom even for a large sweep.
const perRequestTraceEvents = 4096

// traceLog is the bounded in-memory store behind GET /v1/trace/{id}:
// each traced request's exported Chrome trace-event JSON, keyed by
// request ID, evicting oldest-first past the bound.
type traceLog struct {
	mu    sync.Mutex
	max   int
	byID  map[string]*list.Element
	order *list.List // *traceEntry, newest at front
}

type traceEntry struct {
	id   string
	data []byte
}

func newTraceLog(max int) *traceLog {
	return &traceLog{max: max, byID: map[string]*list.Element{}, order: list.New()}
}

func (l *traceLog) put(id string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byID[id] = l.order.PushFront(&traceEntry{id: id, data: data})
	for l.order.Len() > l.max {
		back := l.order.Back()
		delete(l.byID, back.Value.(*traceEntry).id)
		l.order.Remove(back)
	}
}

func (l *traceLog) get(id string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.byID[id]
	if !ok {
		return nil, false
	}
	return el.Value.(*traceEntry).data, true
}

func (l *traceLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// instrument wraps the router with per-request tracing and structured
// logging. Simulation requests (the POST endpoints) each get a private
// small tracer whose root "request" span flows down through the handler
// via the request context — queue waits, memo provenance, retry
// attempts, and executions all record under it — and whose export lands
// in the trace log for GET /v1/trace/{id} (and TraceDir, when set). The
// response carries the request ID in X-Trace-Id, and the request log
// line carries the same ID plus the root span's ID, so logs, traces,
// and responses correlate. Read-only endpoints are logged but not
// traced. With request tracing disabled and no logger, instrument adds
// two nil checks per request.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		var tr *otrace.Tracer
		var root *otrace.Span
		var id string
		if s.traces != nil && r.Method == http.MethodPost {
			tr = otrace.New(perRequestTraceEvents)
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
			ctx, root = tr.Root(ctx, "request",
				otrace.Str("id", id),
				otrace.Str("method", r.Method),
				otrace.Str("path", r.URL.Path))
			tr.NameTrack(otrace.PidWall, root.ID(), id)
			w.Header().Set("X-Trace-Id", id)
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		if root != nil {
			root.SetAttr(otrace.Int("status", int64(rec.status)))
			root.End()
			data := tr.ChromeJSON()
			s.traces.put(id, data)
			if s.cfg.TraceDir != "" {
				// Best-effort: a full disk must not fail the request.
				_ = os.WriteFile(filepath.Join(s.cfg.TraceDir, id+".json"), data, 0o644)
			}
		}
		if s.cfg.Logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("duration", time.Since(start)),
			}
			if id != "" {
				attrs = append(attrs,
					slog.String("trace_id", id),
					slog.Uint64("span_id", root.ID()))
			}
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

// statusRecorder captures the response status for the request log and
// the root span.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// handleTrace serves one traced request's Chrome trace-event JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "request tracing is disabled"})
		return
	}
	id := r.PathValue("id")
	data, ok := s.traces.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no trace for id " + id + " (evicted or never recorded)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
