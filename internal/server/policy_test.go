package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	lap "repro"
)

// TestSampledPolicyRefusal pins the HTTP side of the sampled-eligibility
// gate: exact-only policies (their predictor state does not survive
// interval jumps) get a typed 400 on the Policy field from sampled-mode
// /v1/run, and the identical request runs fine in exact mode.
func TestSampledPolicyRefusal(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, p := range []lap.Policy{lap.PolicyReuseDetector, lap.PolicyRDCopyback} {
		t.Run(string(p), func(t *testing.T) {
			status, body := post(t, ts.URL+"/v1/run",
				RunRequest{Mix: "WL1", Policy: string(p), Mode: "sampled", Accesses: smallAccesses})
			if status != http.StatusBadRequest {
				t.Fatalf("sampled %s: got %d (%s), want 400", p, status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Field != "Policy" {
				t.Fatalf("400 body does not name the Policy field: %s", body)
			}
			if !strings.Contains(e.Error, "sampled") {
				t.Fatalf("400 error does not explain the sampled refusal: %s", e.Error)
			}

			status, body = post(t, ts.URL+"/v1/run",
				RunRequest{Mix: "WL1", Policy: string(p), Accesses: smallAccesses})
			if status != http.StatusOK {
				t.Fatalf("exact %s: got %d (%s), want 200", p, status, body)
			}
			var res RunResult
			if err := json.Unmarshal(body, &res); err != nil || res.Policy != string(p) {
				t.Fatalf("exact %s result: %s", p, body)
			}
		})
	}
}

// TestEveryRegisteredPolicyRunsOverHTTP is the server leg of the
// cross-layer conformance suite: every name in the registry validates
// and completes on /v1/run (hybrid-only policies with a hybrid-LLC
// config override), echoing its canonical name back.
func TestEveryRegisteredPolicyRunsOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})
	hybridCfg := json.RawMessage(`{"L3SRAMWays": 4}`)
	for _, p := range lap.Policies() {
		t.Run(string(p), func(t *testing.T) {
			req := RunRequest{Mix: "WL1", Policy: strings.ToLower(string(p)), Accesses: smallAccesses}
			if p == lap.PolicyLhybrid {
				req.Config = hybridCfg
			}
			status, body := post(t, ts.URL+"/v1/run", req)
			if status != http.StatusOK {
				t.Fatalf("%s: got %d (%s), want 200", p, status, body)
			}
			var res RunResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("%s: decoding result: %v", p, err)
			}
			if res.Policy != string(p) {
				t.Fatalf("%s: echoed policy %q is not canonical", p, res.Policy)
			}
		})
	}
}
