// Package sim wires the full simulated machine together: per-core L1/L2
// private caches, the shared banked LLC driven by an inclusion controller
// from internal/core, the energy meter, an optional snooping coherence
// bus, and a cycle-approximate timing model with LLC bank contention. It
// is the stand-in for the paper's modified gem5 setup (Table II).
package sim

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/energy"
)

// Config describes one simulated machine. DefaultConfig reproduces the
// paper's Table II; experiments vary individual fields.
type Config struct {
	// Cores is the number of cores (and of trace sources).
	Cores int

	// Private L1 data cache geometry (per core).
	L1SizeBytes, L1Ways int
	// Private L2 geometry (per core).
	L2SizeBytes, L2Ways int
	// Shared L3 geometry.
	L3SizeBytes, L3Ways int
	// BlockBytes is the block size at every level.
	BlockBytes int
	// L3Banks is the number of independently scheduled LLC banks.
	L3Banks int

	// L3SRAMWays > 0 selects a hybrid LLC whose first L3SRAMWays ways per
	// set are SRAM and the rest STT-RAM.
	L3SRAMWays int

	// L3Replacement selects the LLC's base replacement family (LRU, the
	// paper's default, or RRIP per the Section IV note).
	L3Replacement cache.Replacement

	// L3Tech is the single-technology LLC data technology; SRAMTech and
	// STTTech are the hybrid regions' technologies (SRAMTech also provides
	// hybrid-SRAM latency/energy when L3SRAMWays > 0).
	L3Tech   energy.Tech
	SRAMTech energy.Tech
	STTTech  energy.Tech

	// ClockHz is the core clock.
	ClockHz float64
	// L1Cycles and L2Cycles are upper-level access latencies.
	L1Cycles, L2Cycles uint64
	// L3ReadCycles/L3WriteCycles are the single-technology LLC data-array
	// occupancies; the hybrid regions use SRAMReadCycles... STTWriteCycles.
	L3ReadCycles, L3WriteCycles     uint64
	SRAMReadCycles, SRAMWriteCycles uint64
	STTReadCycles, STTWriteCycles   uint64
	// MemCycles is the main-memory access latency.
	MemCycles uint64
	// SnoopCycles is the latency of a cache-to-cache dirty transfer.
	SnoopCycles uint64
	// BankOccupancyFrac is the fraction of an access's latency that its
	// LLC bank stays busy (sub-banked arrays pipeline accesses, so the
	// array is blocked for less than the full access latency).
	BankOccupancyFrac float64

	// PrefetchDegree enables a next-N-line prefetcher at the L2: on an
	// L2 demand miss, the next PrefetchDegree sequential blocks are
	// fetched into the L2 through the inclusion controller (so prefetch
	// traffic sees the same policy costs demand traffic does). Zero
	// disables prefetching (the paper's configuration).
	PrefetchDegree int

	// BaseCPI is the no-stall cycles-per-instruction (1/issue width).
	BaseCPI float64
	// MLP divides read-miss penalties to model memory-level parallelism
	// in the out-of-order core.
	MLP float64
	// StoreStallFrac is the fraction of a store's latency the core
	// actually stalls for (the store buffer hides the rest).
	StoreStallFrac float64

	// UseDRAM replaces the fixed MemCycles latency with the row-buffer
	// DRAM model in internal/dram (DDR3-1600 timing by default).
	UseDRAM bool
	// DRAM configures the DRAM model when UseDRAM is set; a zero value
	// selects dram.DDR3_1600().
	DRAM dram.Config

	// Coherent enables the snooping bus; use for multi-threaded workloads
	// sharing one address space.
	Coherent bool
	// TrackMOESI additionally runs the full MOESI reference directory
	// alongside a coherent simulation, reporting protocol statistics and
	// state occupancy and asserting the protocol invariants.
	TrackMOESI bool
	// Profile enables the per-block redundancy/CTC profiler.
	Profile bool

	// Banks selects the intra-run parallelism width: when greater than 1,
	// the run's cores are sharded across up to Banks worker goroutines
	// (clamped to Cores) that walk their private L1/L2 hierarchies
	// concurrently while every shared-LLC operation executes in exactly
	// the serial simulation order, so results are byte-identical to the
	// serial path. 0 or 1 selects the serial loop. Runs that are
	// coherent, MOESI-tracked, profiled, telemetry-observed, or under the
	// inclusive controller fall back to the serial loop automatically
	// (their access walks touch cross-core state). Unlike L3Banks this is
	// a host-execution knob, not a timing-model parameter: it never
	// changes simulation results.
	Banks int

	// MSHREntries > 0 models a bounded table of miss-status holding
	// registers in front of main memory: concurrent LLC misses to a block
	// already in flight merge with the outstanding fill instead of
	// issuing a redundant memory read, and a full table stalls new misses
	// until the earliest fill retires. 0 (the default) gives every miss
	// its own memory read, exactly the pre-MSHR behaviour.
	MSHREntries int

	// MaxAccessesPerCore bounds the run; 0 means run until every source
	// is exhausted.
	MaxAccessesPerCore uint64

	// WarmupAccessesPerCore runs the hierarchy for this many leading
	// accesses per core before statistics start, mirroring the paper's
	// fast-forward-then-measure methodology. Warmup accesses change cache
	// state but are excluded from every reported metric.
	WarmupAccessesPerCore uint64

	// SampleInterval > 0 selects sampled interval simulation
	// (internal/sample): the trace is split into windows of this many
	// accesses per core, windows are clustered by behavior signature, and
	// only one representative per cluster is simulated in detail — the
	// rest are fast-forwarded in functional warmup mode and extrapolated
	// by cluster weight. 0 (the default) is exact mode. Sampled runs
	// require forkable trace sources (workload surrogates, in-memory
	// traces) and are incompatible with Coherent, TrackMOESI, Profile,
	// WarmupAccessesPerCore, and MaxAccessesPerCore (bound the sources
	// instead); Validate reports which knob conflicts.
	SampleInterval uint64
	// SampleClusters is the number of k-means clusters (= detailed
	// intervals simulated per run) in sampled mode. 0 picks
	// ~sqrt(intervals) automatically.
	SampleClusters int
	// SampleWarmup is the number of preceding intervals re-run in
	// functional mode before each representative interval, restoring
	// recency/loop-block state after a fast-forward jump.
	SampleWarmup int

	// CheckpointEvery, when positive, snapshots the full machine state
	// every CheckpointEvery executed accesses (summed across cores) so an
	// attached checkpoint sink can persist them (RunCheckpointed). Like
	// Banks it is a host-execution knob with no effect on results — a
	// checkpointed run is byte-identical to an uninterrupted one — so the
	// memo layers normalize it out of their keys. Checkpointing forces
	// the serial loop and silently disables itself on configurations
	// whose state is not serialized (Coherent, TrackMOESI, Profile,
	// UseDRAM, sampled mode, telemetry).
	CheckpointEvery uint64
}

// DefaultConfig returns the paper's Table II system with an STT-RAM LLC:
// 4 cores at 3GHz (OoO, issue width 4), 32KB 4-way L1s, 512KB 8-way L2s,
// and a shared 8MB 16-way 4-bank L3 with 64B blocks.
func DefaultConfig() Config {
	return Config{
		Cores:       4,
		L1SizeBytes: 32 << 10, L1Ways: 4,
		L2SizeBytes: 512 << 10, L2Ways: 8,
		L3SizeBytes: 8 << 20, L3Ways: 16,
		BlockBytes: 64,
		L3Banks:    4,

		L3Tech:   energy.STTRAM(),
		SRAMTech: energy.SRAM(),
		STTTech:  energy.STTRAM(),

		ClockHz:  3e9,
		L1Cycles: 2, L2Cycles: 4,
		L3ReadCycles: 8, L3WriteCycles: 33,
		SRAMReadCycles: 8, SRAMWriteCycles: 8,
		STTReadCycles: 8, STTWriteCycles: 33,
		MemCycles:         160,
		SnoopCycles:       30,
		BankOccupancyFrac: 0.25,

		BaseCPI:        0.25,
		MLP:            4,
		StoreStallFrac: 0.3,
	}
}

// WithSRAML3 returns a copy of c with a pure-SRAM LLC (Fig. 2a/12a).
func (c Config) WithSRAML3() Config {
	c.L3Tech = energy.SRAM()
	c.L3ReadCycles, c.L3WriteCycles = 8, 8
	c.L3SRAMWays = 0
	return c
}

// WithSTTL3 returns a copy of c with a pure STT-RAM LLC built from tech
// (use energy.STTRAM() or a WithWriteReadRatio-scaled variant).
func (c Config) WithSTTL3(tech energy.Tech) Config {
	c.L3Tech = tech
	c.L3ReadCycles, c.L3WriteCycles = 8, 33
	c.L3SRAMWays = 0
	return c
}

// WithHybridL3 returns a copy of c with the paper's hybrid LLC: 2MB SRAM
// (4 ways) + 6MB STT-RAM (12 ways) per Table II.
func (c Config) WithHybridL3() Config {
	c.L3SRAMWays = 4
	return c
}

// numL3Regions reports how many energy regions the LLC has.
func (c Config) hybrid() bool { return c.L3SRAMWays > 0 }
