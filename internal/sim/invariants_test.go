package sim

// Integration tests asserting the structural invariants each inclusion
// property promises, checked against the live cache state after a run.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// runMachine builds and runs a machine, returning it for inspection.
func runMachine(cfg Config, ctrl core.Controller, b workload.Benchmark, accesses uint64) *machine {
	m := build(cfg, ctrl, sourcesFor(b, cfg.Cores, accesses))
	m.loop()
	return m
}

// l2Duplication returns how many valid L2 lines have (dup) and lack
// (nodup) a copy in the L3.
func l2Duplication(m *machine) (dup, nodup int) {
	for _, c := range m.cores {
		for set := 0; set < c.l2.NumSets(); set++ {
			for way := 0; way < c.l2.Ways(); way++ {
				l := c.l2.Line(set, way)
				if !l.Valid {
					continue
				}
				if m.ctx.L3.Probe(l.Tag) >= 0 {
					dup++
				} else {
					nodup++
				}
			}
		}
	}
	return dup, nodup
}

func TestInvariantInclusive(t *testing.T) {
	cfg := smallCfg()
	m := runMachine(cfg, core.NewInclusive(), loopy(), 40000)
	dup, nodup := l2Duplication(m)
	if nodup != 0 {
		t.Fatalf("inclusion violated: %d L2 lines missing from L3 (%d present)", nodup, dup)
	}
	// L1 must be included too.
	for _, c := range m.cores {
		for set := 0; set < c.l1.NumSets(); set++ {
			for way := 0; way < c.l1.Ways(); way++ {
				l := c.l1.Line(set, way)
				if l.Valid && m.ctx.L3.Probe(l.Tag) < 0 {
					t.Fatalf("inclusion violated at L1: block %#x", l.Tag)
				}
			}
		}
	}
}

func TestInvariantExclusive(t *testing.T) {
	cfg := smallCfg()
	m := runMachine(cfg, core.NewExclusive(), loopy(), 40000)
	dup, nodup := l2Duplication(m)
	// Exclusion keeps upper-level blocks out of the L3, with one known
	// transient: an L1 dirty writeback can re-create an L2 line whose
	// stale copy still sits in the L3 (the L2 is non-inclusive of the
	// L1). Those duplicates must therefore all be dirty in the L2, and
	// they must be rare.
	if dup*10 > nodup {
		t.Fatalf("exclusivity violated: %d duplicated vs %d exclusive L2 lines", dup, nodup)
	}
	for _, c := range m.cores {
		for set := 0; set < c.l2.NumSets(); set++ {
			for way := 0; way < c.l2.Ways(); way++ {
				l := c.l2.Line(set, way)
				if l.Valid && !l.Dirty && m.ctx.L3.Probe(l.Tag) >= 0 {
					t.Fatalf("clean L2 block %#x duplicated in an exclusive L3", l.Tag)
				}
			}
		}
	}
}

func TestInvariantNonInclusiveMostlyDuplicates(t *testing.T) {
	cfg := smallCfg()
	m := runMachine(cfg, core.NewNonInclusive(), loopy(), 40000)
	dup, nodup := l2Duplication(m)
	// Non-inclusion holds "most" upper-level blocks (Section II-B); the
	// exceptions are blocks whose L3 copy was replaced without
	// back-invalidation.
	if dup <= nodup {
		t.Fatalf("non-inclusive L3 duplicates only %d of %d L2 lines", dup, dup+nodup)
	}
}

func TestInvariantLAPKeepsLoopDuplicates(t *testing.T) {
	cfg := smallCfg()
	m := runMachine(cfg, core.NewLAP(), loopy(), 60000)
	// LAP's promise: the duplicates it does keep skew toward loop-blocks
	// (the data it pays capacity for), and dirty L3 lines only arise from
	// dirty victims, never data-fills.
	loopDup := 0
	dup, _ := l2Duplication(m)
	for _, c := range m.cores {
		for set := 0; set < c.l2.NumSets(); set++ {
			for way := 0; way < c.l2.Ways(); way++ {
				l := c.l2.Line(set, way)
				if l.Valid && l.Loop && m.ctx.L3.Probe(l.Tag) >= 0 {
					loopDup++
				}
			}
		}
	}
	if dup == 0 {
		t.Fatal("LAP kept no duplicates at all on a loop workload")
	}
	if loopDup == 0 {
		t.Fatal("none of LAP's duplicates are loop-blocks")
	}
	if m.ctx.Met.WritesFill != 0 {
		t.Fatal("LAP data-filled the L3")
	}
}

// TestInvariantVictimConsistency drives every policy and verifies global
// accounting invariants that must hold regardless of policy.
func TestInvariantAccounting(t *testing.T) {
	cfg := smallCfg()
	ctrls := []func() core.Controller{
		func() core.Controller { return core.NewNonInclusive() },
		func() core.Controller { return core.NewExclusive() },
		func() core.Controller { return core.NewInclusive() },
		func() core.Controller { return core.NewFLEXclusion() },
		func() core.Controller { return core.NewDswitch(0.5, 0.436) },
		func() core.Controller { return core.NewLAP() },
	}
	for _, mk := range ctrls {
		ctrl := mk()
		m := runMachine(cfg, ctrl, loopy(), 30000)
		met := m.ctx.Met
		if met.L3Hits+met.L3Misses != met.L3Accesses {
			t.Errorf("%s: L3 accounting inconsistent", ctrl.Name())
		}
		if met.MemReads != met.L3Misses {
			t.Errorf("%s: memory reads %d != LLC misses %d", ctrl.Name(), met.MemReads, met.L3Misses)
		}
		if met.L2CleanEvictions+met.L2DirtyEvictions != met.L2Evictions {
			t.Errorf("%s: L2 eviction accounting inconsistent", ctrl.Name())
		}
		// The L3 can never hold more valid lines than its capacity.
		if got, max := m.ctx.L3.FillCount(), m.ctx.L3.NumSets()*m.ctx.L3.Ways(); got > max {
			t.Errorf("%s: L3 overfilled %d/%d", ctrl.Name(), got, max)
		}
	}
}

// TestInvariantHybridRegions verifies that, under Lhybrid, loop-blocks
// accumulate in the STT-RAM region and dirty blocks skew toward SRAM.
func TestInvariantHybridRegions(t *testing.T) {
	cfg := smallCfg().WithHybridL3()
	m := runMachine(cfg, core.NewLhybrid(), loopy(), 60000)
	var sramDirty, sttDirty, sramLoop, sttLoop int
	l3 := m.ctx.L3
	for set := 0; set < l3.NumSets(); set++ {
		for way := 0; way < l3.Ways(); way++ {
			l := l3.Line(set, way)
			if !l.Valid {
				continue
			}
			if l3.IsSRAMWay(way) {
				if l.Dirty {
					sramDirty++
				}
				if l.Loop {
					sramLoop++
				}
			} else {
				if l.Dirty {
					sttDirty++
				}
				if l.Loop {
					sttLoop++
				}
			}
		}
	}
	if sttLoop == 0 {
		t.Fatal("no loop-blocks migrated to STT-RAM")
	}
	// The STT region is 3x the SRAM region; loop-blocks should dominate
	// there relative to SRAM in per-way density.
	if float64(sttLoop)/3 < float64(sramLoop)/4 {
		t.Errorf("loop-block density: STT %d/12-way vs SRAM %d/4-way", sttLoop, sramLoop)
	}
}
