package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/trace"
)

// Result summarises one simulation run.
type Result struct {
	// Policy names the inclusion controller that ran.
	Policy string
	// Met holds the raw event counts.
	Met core.Metrics
	// EPI is the LLC energy-per-instruction breakdown (the paper's
	// headline metric).
	EPI energy.Breakdown
	// TotalNJ is the total LLC energy of the run.
	TotalNJ float64
	// IPCs holds the per-core instructions-per-cycle; Throughput is their
	// sum (the paper's multi-programmed performance metric).
	IPCs       []float64
	Throughput float64
	// Cycles is the runtime (slowest core).
	Cycles uint64
	// Prof holds redundancy/CTC statistics when profiling was enabled.
	Prof *core.Profiler
	// Snoop holds coherence-bus statistics for coherent runs.
	Snoop coherence.Stats
	// DRAM holds row-buffer statistics when the DRAM model was enabled.
	DRAM dram.Stats
	// MOESI holds reference-protocol statistics for TrackMOESI runs;
	// MOESIOccupancy is the end-of-run state mix and MOESIViolation the
	// first invariant violation ("" when the protocol stayed consistent).
	MOESI          coherence.DirectoryStats
	MOESIOccupancy map[coherence.MOESIState]int
	MOESIViolation string
	// BankOps is the per-bank access count of the LLC timing model
	// (Config.L3Banks banks) — the bank utilization profile.
	BankOps []uint64
	// Sample is the sampled-simulation error estimate; nil for exact
	// runs. Riding inside Result lets the estimate flow through every
	// memo and cache layer without changing their value types.
	Sample *SampleEstimate
}

// SampleEstimate is the sampled executor's report for one run: how much
// of the trace was actually simulated and the propagated per-metric
// confidence of the extrapolated totals. Produced by internal/sample;
// defined here so it can travel inside Result.
type SampleEstimate struct {
	// Clusters is the number of k-means clusters over full intervals.
	Clusters int `json:"clusters"`
	// IntervalsProfiled is the total interval count of the trace.
	IntervalsProfiled int `json:"intervals_profiled"`
	// IntervalsDetailed is how many intervals ran the full timing model.
	IntervalsDetailed int `json:"intervals_detailed"`
	// IntervalsWarmup is how many intervals re-ran functionally to warm
	// cache state before representatives.
	IntervalsWarmup int `json:"intervals_warmup"`
	// IntervalsSkipped is how many intervals were neither simulated nor
	// warmed — pure extrapolation.
	IntervalsSkipped int `json:"intervals_skipped"`
	// WorkReduction is IntervalsProfiled / (IntervalsDetailed +
	// IntervalsWarmup): the fraction of interval-work avoided, counting
	// a functional warmup interval as expensive as a detailed one. The
	// realized wall-clock speedup is higher (functional intervals are
	// cheaper) and further amortized when one profile serves several
	// policies; this figure is the conservative per-run bound.
	WorkReduction float64 `json:"work_reduction"`
	// MissRateRelCI is the relative 95% confidence half-width of the LLC
	// miss rate, propagated from within-cluster signature dispersion.
	MissRateRelCI float64 `json:"miss_rate_rel_ci"`
	// EPIRelCI is the relative 95% confidence half-width of EPI,
	// propagated from the LLC read- and write-traffic series (the two
	// activity terms dominating dynamic LLC energy).
	EPIRelCI float64 `json:"epi_rel_ci"`
}

// MPKI returns LLC misses per kilo-instruction.
func (r Result) MPKI() float64 { return r.Met.MPKI() }

// accessBatch is the per-core trace decode buffer length: sources are
// drained in runs of this many accesses to amortise the Source interface
// call overhead (trace.FillBatch) on the hot loop.
const accessBatch = 256

// coreState is one core's private hierarchy and progress.
type coreState struct {
	id     int
	l1, l2 *cache.Cache
	src    trace.Source
	cycles float64
	instrs uint64
	nAcc   uint64
	done   bool

	// met receives the upper-level counters this core's walk produces.
	// In the serial loop it aliases the machine's shared Metrics; the
	// banked loop points it at a private shard merged after the run.
	met *core.Metrics

	// buf/bufPos/srcEOF implement the batched trace decode (see next).
	buf    []trace.Access
	bufPos int
	srcEOF bool

	// worker/gateKey/gateHeld belong to the banked execution mode: the
	// worker that owns this core, the published pre-access progress key,
	// and whether this access already acquired the shared-state gate.
	worker   int
	gateKey  uint64
	gateHeld bool
}

// next returns the core's next access, refilling the decode buffer in
// accessBatch-sized runs.
func (c *coreState) next() (trace.Access, bool) {
	if c.bufPos >= len(c.buf) {
		if c.srcEOF {
			return trace.Access{}, false
		}
		buf := c.buf[:cap(c.buf)]
		n := trace.FillBatch(c.src, buf)
		if n < len(buf) {
			c.srcEOF = true
		}
		c.buf, c.bufPos = buf[:n], 0
		if n == 0 {
			return trace.Access{}, false
		}
	}
	a := c.buf[c.bufPos]
	c.bufPos++
	return a, true
}

// machine is the assembled simulator.
type machine struct {
	cfg   Config
	cores []*coreState
	ctx   *core.Ctx
	ctrl  core.Controller
	bus   *coherence.Bus
	mem   *dram.Memory
	moesi *coherence.Directory

	// Telemetry observation (nil on unobserved runs — the hot loop then
	// pays one nil check per access). loopFills counts loop-classified
	// fetches for the per-interval series.
	tel       *telemetryState
	loopFills uint64

	// par is the banked execution engine while the parallel phase runs
	// (nil in the serial loop, so enterShared costs one nil check).
	par *parEngine

	// ck is the checkpoint schedule (nil on non-checkpointed runs — the
	// hot loop then pays one nil check per access, like telemetry).
	// Checkpointing forces the serial loop: snapshots are defined between
	// two accesses of the reference schedule.
	ck *ckState

	// Warmup baselines, captured when the measurement window opens so
	// that reported metrics cover only the post-warmup region.
	warmupDone  bool
	baseMet     core.Metrics
	baseSnoop   coherence.Stats
	baseMeter   meterSnapshot
	baseCycles  []float64
	baseInstrs  []uint64
	baseBankOps []uint64
}

// meterSnapshot freezes the energy meter's counters at a point in time.
type meterSnapshot struct {
	tag    uint64
	reads  [2]uint64
	writes [2]uint64
}

// Run simulates srcs (one per core) under the given inclusion controller
// and returns the collected metrics. It panics on configuration misuse
// (wrong source count), since that is a programming error.
func Run(cfg Config, ctrl core.Controller, srcs []trace.Source) Result {
	return RunObserved(cfg, ctrl, srcs, nil)
}

// RunObserved is Run with an optional epoch/interval telemetry hook.
// tel lives outside Config on purpose: Config stays comparable (memo
// keys embed it by value), and a nil tel keeps the loop's cost at one
// nil check per access.
func RunObserved(cfg Config, ctrl core.Controller, srcs []trace.Source, tel *Telemetry) Result {
	if len(srcs) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d sources for %d cores", len(srcs), cfg.Cores))
	}
	m := build(cfg, ctrl, srcs)
	if tel != nil {
		m.tel = &telemetryState{cfg: tel}
	}
	m.loop()
	if m.tel != nil {
		m.telFlush(true)
		if tel.OnDone != nil {
			tel.OnDone(m.maxCycles())
		}
	}
	return m.result()
}

func build(cfg Config, ctrl core.Controller, srcs []trace.Source) *machine {
	l3 := cache.New(cache.Config{
		Name: "L3", SizeBytes: cfg.L3SizeBytes, Ways: cfg.L3Ways,
		BlockBytes: cfg.BlockBytes, SRAMWays: cfg.L3SRAMWays,
		Replacement: cfg.L3Replacement,
	})
	var meter *energy.Meter
	readCyc := [2]uint64{cfg.L3ReadCycles, cfg.L3ReadCycles}
	writeCyc := [2]uint64{cfg.L3WriteCycles, cfg.L3WriteCycles}
	if cfg.hybrid() {
		sramBytes := int64(cfg.L3SizeBytes) * int64(cfg.L3SRAMWays) / int64(cfg.L3Ways)
		sttBytes := int64(cfg.L3SizeBytes) - sramBytes
		meter = energy.Hybrid(cfg.ClockHz, cfg.SRAMTech, cfg.STTTech, sramBytes, sttBytes)
		readCyc = [2]uint64{cfg.SRAMReadCycles, cfg.STTReadCycles}
		writeCyc = [2]uint64{cfg.SRAMWriteCycles, cfg.STTWriteCycles}
	} else {
		meter = energy.SingleTech(cfg.ClockHz, cfg.L3Tech, int64(cfg.L3SizeBytes))
	}
	occ := func(lat uint64) uint64 {
		frac := cfg.BankOccupancyFrac
		if frac <= 0 || frac > 1 {
			frac = 1
		}
		o := uint64(float64(lat) * frac)
		if o < 1 {
			o = 1
		}
		return o
	}
	ctx := &core.Ctx{
		L3:        l3,
		E:         meter,
		Met:       &core.Metrics{},
		Banks:     core.NewBanks(cfg.L3Banks),
		ReadCyc:   readCyc,
		WriteCyc:  writeCyc,
		ReadOcc:   [2]uint64{occ(readCyc[0]), occ(readCyc[1])},
		WriteOcc:  [2]uint64{occ(writeCyc[0]), occ(writeCyc[1])},
		MemCycles: cfg.MemCycles,
	}
	if cfg.Profile {
		ctx.Prof = core.NewProfiler()
	}
	if cfg.MSHREntries > 0 {
		ctx.MSHR = cache.NewMSHR(cfg.MSHREntries)
	}
	m := &machine{cfg: cfg, ctx: ctx, ctrl: ctrl}
	if cfg.UseDRAM {
		dcfg := cfg.DRAM
		if dcfg.Banks == 0 {
			dcfg = dram.DDR3_1600()
		}
		m.mem = dram.New(dcfg)
		blockBytes := uint64(cfg.BlockBytes)
		ctx.MemAccess = func(block, now uint64, write bool) uint64 {
			return m.mem.Access(block*blockBytes, now, write)
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &coreState{
			id: i,
			l1: cache.New(cache.Config{Name: "L1", SizeBytes: cfg.L1SizeBytes,
				Ways: cfg.L1Ways, BlockBytes: cfg.BlockBytes}),
			l2: cache.New(cache.Config{Name: "L2", SizeBytes: cfg.L2SizeBytes,
				Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes}),
			src: srcs[i],
			met: ctx.Met,
			buf: make([]trace.Access, 0, accessBatch),
		})
	}
	if cfg.Coherent {
		peers := make([]coherence.Peer, len(m.cores))
		for i, c := range m.cores {
			peers[i] = (*corePeer)(c)
		}
		m.bus = coherence.NewBus(peers)
		if cfg.TrackMOESI {
			m.moesi = coherence.NewDirectory(cfg.Cores)
		}
	}
	if _, ok := ctrl.(*core.Inclusive); ok {
		ctx.BackInvalidate = m.backInvalidate
	}
	return m
}

// loop drives the run to completion. The serial loop advances the
// least-progressed active core one access at a time, which interleaves
// the cores' LLC traffic in timestamp order; with Config.Banks > 1 (and
// an eligible configuration) the same order is reproduced by the banked
// engine in parallel.go, with the warmup phase always run serially so the
// measurement window opens at exactly the serial boundary.
func (m *machine) loop() {
	if nw := m.parWorkers(); nw > 0 {
		if m.cfg.WarmupAccessesPerCore > 0 {
			m.serialLoop(true)
		}
		if !m.allDone() {
			for _, c := range m.cores {
				c.met = &core.Metrics{}
			}
			m.runParallel(nw)
			for _, c := range m.cores {
				m.ctx.Met.Add(c.met)
				c.met = m.ctx.Met
			}
		}
		return
	}
	m.serialLoop(false)
	if m.ctx.Prof != nil {
		m.ctx.Prof.Finish()
	}
}

// serialLoop is the reference single-goroutine schedule. When
// stopAfterWarmup is set it returns as soon as the measurement window
// opens, leaving the rest of the run to the banked engine.
func (m *machine) serialLoop(stopAfterWarmup bool) {
	for {
		var next *coreState
		for _, c := range m.cores {
			if c.done {
				continue
			}
			if next == nil || c.cycles < next.cycles {
				next = c
			}
		}
		if next == nil {
			return
		}
		acc, ok := next.next()
		if !ok {
			next.done = true
			continue
		}
		m.step(next, acc)
		next.nAcc++
		if m.tel != nil {
			m.telTick()
		}
		if !m.warmupDone && m.cfg.WarmupAccessesPerCore > 0 {
			m.maybeEndWarmup()
		}
		if m.cfg.MaxAccessesPerCore > 0 && next.nAcc >= m.cfg.MaxAccessesPerCore+m.cfg.WarmupAccessesPerCore {
			next.done = true
		}
		if m.ck != nil {
			m.ck.seen++
			if m.ck.seen == m.ck.next {
				m.checkpointNow()
				m.ck.next += m.ck.every
			}
		}
		if stopAfterWarmup && m.warmupDone {
			return
		}
	}
}

// allDone reports whether every core has exhausted its stream or quota.
func (m *machine) allDone() bool {
	for _, c := range m.cores {
		if !c.done {
			return false
		}
	}
	return true
}

// maybeEndWarmup opens the measurement window once every core has
// finished its warmup quota, snapshotting the counters accumulated so
// far so they can be subtracted from the final report.
func (m *machine) maybeEndWarmup() {
	for _, c := range m.cores {
		if !c.done && c.nAcc < m.cfg.WarmupAccessesPerCore {
			return
		}
	}
	m.warmupDone = true
	m.baseMet = *m.ctx.Met
	if m.bus != nil {
		m.baseSnoop = m.bus.Stats
	}
	m.baseMeter = meterSnapshot{tag: m.ctx.E.TagAccesses}
	for i := range m.ctx.E.Regions {
		m.baseMeter.reads[i] = m.ctx.E.Regions[i].Reads
		m.baseMeter.writes[i] = m.ctx.E.Regions[i].Writes
	}
	m.baseBankOps = append([]uint64(nil), m.ctx.Banks.Ops()...)
	m.baseCycles = make([]float64, len(m.cores))
	m.baseInstrs = make([]uint64, len(m.cores))
	for i, c := range m.cores {
		m.baseCycles[i] = c.cycles
		m.baseInstrs[i] = c.instrs
	}
	if m.ctx.Prof != nil {
		// Redundancy statistics restart with the measurement window.
		m.ctx.Prof = core.NewProfiler()
	}
	if m.tel != nil {
		m.telWarmupEnd()
	}
}

// subtractBaselines removes warmup-era counts from the final metrics.
func (m *machine) subtractBaselines() {
	if !m.warmupDone {
		return
	}
	met, base := m.ctx.Met, &m.baseMet
	met.L3Accesses -= base.L3Accesses
	met.L3Hits -= base.L3Hits
	met.L3Misses -= base.L3Misses
	met.WritesFill -= base.WritesFill
	met.WritesDirty -= base.WritesDirty
	met.WritesClean -= base.WritesClean
	met.MigrationWrites -= base.MigrationWrites
	met.TagOnlyUpdates -= base.TagOnlyUpdates
	met.L3Evictions -= base.L3Evictions
	met.L3DirtyEvictions -= base.L3DirtyEvictions
	met.MemReads -= base.MemReads
	met.MemWrites -= base.MemWrites
	met.BackInvalidations -= base.BackInvalidations
	met.L1Accesses -= base.L1Accesses
	met.L1Misses -= base.L1Misses
	met.L2Accesses -= base.L2Accesses
	met.L2Misses -= base.L2Misses
	met.L2Evictions -= base.L2Evictions
	met.L2CleanEvictions -= base.L2CleanEvictions
	met.L2DirtyEvictions -= base.L2DirtyEvictions
	met.SnoopDirtyTransfers -= base.SnoopDirtyTransfers
	met.Prefetches -= base.Prefetches
	met.BypassedWrites -= base.BypassedWrites
	met.BypassedFills -= base.BypassedFills
	met.MSHRMerges -= base.MSHRMerges
	met.MSHRStalls -= base.MSHRStalls
	if m.bus != nil {
		m.bus.Stats.Probes -= m.baseSnoop.Probes
		m.bus.Stats.Broadcasts -= m.baseSnoop.Broadcasts
		m.bus.Stats.DirtyTransfers -= m.baseSnoop.DirtyTransfers
		m.bus.Stats.Invalidations -= m.baseSnoop.Invalidations
		m.bus.Stats.MemMessages -= m.baseSnoop.MemMessages
	}
	m.ctx.E.TagAccesses -= m.baseMeter.tag
	for i := range m.ctx.E.Regions {
		m.ctx.E.Regions[i].Reads -= m.baseMeter.reads[i]
		m.ctx.E.Regions[i].Writes -= m.baseMeter.writes[i]
	}
}

// step processes one access on core c. Ctx.Now is refreshed at each
// shared-state entry point (access, prefetch, onL2Evict), never here: in
// the banked mode this function runs concurrently across cores and only
// the gated sections may touch the shared Ctx.
func (m *machine) step(c *coreState, acc trace.Access) {
	cfg := &m.cfg
	c.instrs += uint64(acc.Instrs)
	c.cycles += cfg.BaseCPI * float64(acc.Instrs)

	block := acc.Addr / uint64(cfg.BlockBytes)
	lat := m.access(c, block, acc.Write)
	if m.moesi != nil {
		if acc.Write {
			m.moesi.Write(c.id, block)
		} else {
			m.moesi.Read(c.id, block)
		}
	}

	// Latency beyond the (pipelined) L1 stalls the core, divided by the
	// memory-level parallelism the OoO window extracts; stores stall only
	// for the un-buffered fraction.
	penalty := 0.0
	if lat > cfg.L1Cycles {
		penalty = float64(lat-cfg.L1Cycles) / cfg.MLP
		if acc.Write {
			penalty *= cfg.StoreStallFrac
		}
	}
	c.cycles += penalty
}

// stepFunctional processes one access with the clock frozen: the full
// hierarchy walk runs, so tags, recency, loop bits, and dueling state
// stay warm, but no cycles accumulate and no stall penalty is computed.
// Ctx.Functional (set by the Engine around functional windows)
// suppresses energy metering and bank/memory timing below the
// controller, while the cheap event counters keep counting — interval
// signatures are built from them. Like step, this path must not
// allocate (TestAccessAllocsZero pins both).
//
// The clock staying frozen is deliberate, not an approximation gap: a
// cycle-ordered functional loop paced by nominal latencies was tried
// and reverted. Without the bank-queueing feedback that couples cores
// in detailed mode, pseudo-clocks drift apart per-core, and a later
// detailed window then charges the lagging cores enormous phantom bank
// waits against leader-stamped timestamps, inflating cycle and static-
// energy extrapolations severalfold. Lockstep functional interleaving
// reproduces the detailed run's cache trajectory to within ~0.01% of
// LLC misses on the Table III mixes, so the extra machinery bought no
// state fidelity either.
func (m *machine) stepFunctional(c *coreState, acc trace.Access) {
	c.instrs += uint64(acc.Instrs)
	m.access(c, acc.Addr/uint64(m.cfg.BlockBytes), acc.Write)
}

// access performs the hierarchy walk and returns the access latency.
// Upper-level counters go to c.met (the core's shard in banked mode);
// everything from the coherence snoop down is shared state and runs
// behind enterShared.
func (m *machine) access(c *coreState, block uint64, write bool) uint64 {
	cfg := &m.cfg
	met := c.met
	met.L1Accesses++

	if write && m.ctx.Prof != nil {
		m.ctx.Prof.OnL2Write(block)
	}

	// L1.
	if w := c.l1.Lookup(block); w >= 0 {
		set := c.l1.SetOf(block)
		l := c.l1.Line(set, w)
		if write {
			m.onWriteHit(c, block, l)
			l.Dirty = true
		}
		return cfg.L1Cycles
	}
	met.L1Misses++
	met.L2Accesses++

	// L2.
	if w := c.l2.Lookup(block); w >= 0 {
		set := c.l2.SetOf(block)
		l := c.l2.Line(set, w)
		if write {
			m.onWriteHit(c, block, l)
			l.Loop = false // a written block is no loop-block (Fig. 10a)
		}
		m.fillL1(c, block, write, l.Shared)
		return cfg.L1Cycles + cfg.L2Cycles
	}
	met.L2Misses++

	// Coherence snoop before going to the LLC.
	shared := false
	if m.bus != nil {
		res := m.bus.OnMiss(c.id, block)
		shared = res.SharedElsewhere
		if res.SuppliedDirty {
			met.SnoopDirtyTransfers++
			// Cache-to-cache supply: the requester inherits ownership of
			// the dirty data; the LLC is not consulted.
			m.installL2(c, block, true, false, shared)
			m.fillL1(c, block, write, shared)
			if write {
				m.busWrite(c, block)
			}
			return cfg.L1Cycles + cfg.L2Cycles + cfg.SnoopCycles
		}
	}

	// LLC via the inclusion controller.
	m.enterShared(c)
	m.ctx.Now = uint64(c.cycles)
	r := m.ctrl.Fetch(m.ctx, block)
	if r.Loop {
		m.loopFills++
	}
	if !r.Hit && m.bus != nil {
		m.bus.OnLLCMiss()
	}
	m.installL2(c, block, write, r.Loop && !write, shared)
	m.fillL1(c, block, write, shared)
	if write && shared {
		m.busWrite(c, block)
	}
	m.prefetch(c, block)
	return cfg.L1Cycles + cfg.L2Cycles + r.Lat
}

// prefetch issues next-line prefetches into the L2 after a demand miss.
// Prefetches run through the inclusion controller like demand fetches
// (they cost LLC energy and bank time) but never stall the core.
func (m *machine) prefetch(c *coreState, block uint64) {
	for d := 1; d <= m.cfg.PrefetchDegree; d++ {
		pb := block + uint64(d)
		if c.l2.Probe(pb) >= 0 || c.l1.Probe(pb) >= 0 {
			continue
		}
		m.enterShared(c)
		m.ctx.Now = uint64(c.cycles)
		r := m.ctrl.Fetch(m.ctx, pb)
		if r.Loop {
			m.loopFills++
		}
		if !r.Hit && m.bus != nil {
			m.bus.OnLLCMiss()
		}
		m.installL2(c, pb, false, r.Loop, false)
		c.met.Prefetches++
	}
}

// onWriteHit handles a store that hit a private-cache line: shared copies
// elsewhere are invalidated, and the L2 duplicate's loop-bit is cleared.
func (m *machine) onWriteHit(c *coreState, block uint64, l *cache.Line) {
	if l.Shared {
		m.busWrite(c, block)
		l.Shared = false
	}
	if w := c.l2.Probe(block); w >= 0 {
		c.l2.Line(c.l2.SetOf(block), w).Loop = false
	}
}

// busWrite broadcasts a write-invalidation for a shared block.
func (m *machine) busWrite(c *coreState, block uint64) {
	if m.bus != nil {
		m.bus.OnWriteShared(c.id, block)
	}
}

// fillL1 installs a block into the L1, writing back the victim into the
// L2 (allocating there if needed, since the L2 is non-inclusive of L1).
func (m *machine) fillL1(c *coreState, block uint64, write, shared bool) {
	if w := c.l1.Probe(block); w >= 0 {
		set := c.l1.SetOf(block)
		l := c.l1.Line(set, w)
		l.Dirty = l.Dirty || write
		l.Shared = l.Shared || shared
		c.l1.Touch(set, w)
		return
	}
	set := c.l1.SetOf(block)
	way := c.l1.LRUVictim(set)
	if v, ok := c.l1.Evict(set, way); ok && v.Dirty {
		m.writebackL1Victim(c, v)
	}
	c.l1.InsertAt(set, way, block, write, false)
	c.l1.Line(set, way).Shared = shared
}

// writebackL1Victim merges a dirty L1 victim into the L2.
func (m *machine) writebackL1Victim(c *coreState, v cache.Line) {
	if w := c.l2.Probe(v.Tag); w >= 0 {
		set := c.l2.SetOf(v.Tag)
		l := c.l2.Line(set, w)
		l.Dirty = true
		l.Loop = false
		c.l2.Touch(set, w)
		return
	}
	// The L2 no longer holds the block (non-inclusive): allocate it.
	m.installL2(c, v.Tag, true, false, v.Shared)
}

// installL2 places a block into the L2, handing the victim to the
// inclusion controller.
func (m *machine) installL2(c *coreState, block uint64, dirty, loop, shared bool) {
	if w := c.l2.Probe(block); w >= 0 {
		set := c.l2.SetOf(block)
		l := c.l2.Line(set, w)
		l.Dirty = l.Dirty || dirty
		l.Loop = loop
		l.Shared = l.Shared || shared
		c.l2.Touch(set, w)
		return
	}
	set := c.l2.SetOf(block)
	way := c.l2.LRUVictim(set)
	if v, ok := c.l2.Evict(set, way); ok {
		m.onL2Evict(c, v)
	}
	c.l2.InsertAt(set, way, block, dirty, loop)
	c.l2.Line(set, way).Shared = shared
}

// onL2Evict routes an L2 victim to the inclusion controller. This is
// reachable from otherwise-private walks (an L1 victim writeback can
// allocate in the L2 and evict), so it is a shared-state entry point.
func (m *machine) onL2Evict(c *coreState, v cache.Line) {
	m.enterShared(c)
	if m.moesi != nil && c.l1.Probe(v.Tag) < 0 {
		m.moesi.Evict(c.id, v.Tag)
	}
	met := c.met
	met.L2Evictions++
	if v.Dirty {
		met.L2DirtyEvictions++
	} else {
		met.L2CleanEvictions++
	}
	if m.ctx.Prof != nil {
		m.ctx.Prof.OnL2Evict(v.Tag, v.Dirty)
	}
	m.ctx.Now = uint64(c.cycles)
	m.ctrl.EvictL2(m.ctx, v)
}

// backInvalidate enforces strict inclusion: every upper-level copy of the
// block is removed; reports whether a dirty copy existed.
func (m *machine) backInvalidate(block uint64) bool {
	dirty := false
	for _, c := range m.cores {
		if l, ok := c.l1.Invalidate(block); ok && l.Dirty {
			dirty = true
		}
		if l, ok := c.l2.Invalidate(block); ok && l.Dirty {
			dirty = true
		}
	}
	return dirty
}

// corePeer adapts a coreState to the coherence.Peer interface.
type corePeer coreState

// ProbeBlock implements coherence.Peer.
func (p *corePeer) ProbeBlock(block uint64, downgrade bool) (found, dirty bool) {
	c := (*coreState)(p)
	if w := c.l1.Probe(block); w >= 0 {
		l := c.l1.Line(c.l1.SetOf(block), w)
		found = true
		if l.Dirty {
			dirty = true
			if downgrade {
				l.Dirty = false
			}
		}
		l.Shared = true
	}
	if w := c.l2.Probe(block); w >= 0 {
		l := c.l2.Line(c.l2.SetOf(block), w)
		found = true
		if l.Dirty {
			dirty = true
			if downgrade {
				l.Dirty = false
			}
		}
		l.Shared = true
	}
	return found, dirty
}

// DropBlock implements coherence.Peer.
func (p *corePeer) DropBlock(block uint64) {
	c := (*coreState)(p)
	c.l1.Invalidate(block)
	c.l2.Invalidate(block)
}

// result assembles the Result.
func (m *machine) result() Result {
	m.subtractBaselines()
	met := m.ctx.Met
	var maxCycles float64
	var totalInstr uint64
	ipcs := make([]float64, len(m.cores))
	throughput := 0.0
	for i, c := range m.cores {
		cycles, instrs := c.cycles, c.instrs
		if m.warmupDone {
			cycles -= m.baseCycles[i]
			instrs -= m.baseInstrs[i]
		}
		if cycles > maxCycles {
			maxCycles = cycles
		}
		totalInstr += instrs
		if cycles > 0 {
			ipcs[i] = float64(instrs) / cycles
		}
		throughput += ipcs[i]
	}
	met.Instructions = totalInstr
	met.Cycles = uint64(maxCycles)
	if m.bus != nil {
		met.SnoopProbes = m.bus.Stats.Probes
		met.SnoopTraffic = m.bus.Stats.Traffic()
	}
	res := Result{
		Policy:     m.ctrl.Name(),
		Met:        *met,
		IPCs:       ipcs,
		Throughput: throughput,
		Cycles:     met.Cycles,
		Prof:       m.ctx.Prof,
		BankOps:    append([]uint64(nil), m.ctx.Banks.Ops()...),
	}
	if m.warmupDone {
		for i := range res.BankOps {
			res.BankOps[i] -= m.baseBankOps[i]
		}
	}
	if m.bus != nil {
		res.Snoop = m.bus.Stats
	}
	if m.mem != nil {
		res.DRAM = m.mem.Stats
	}
	if m.moesi != nil {
		res.MOESI = m.moesi.Stats
		res.MOESIOccupancy = m.moesi.Occupancy()
		res.MOESIViolation = m.moesi.CheckInvariants()
	}
	if totalInstr > 0 {
		res.EPI = m.ctx.E.EPI(met.Cycles, totalInstr)
	}
	res.TotalNJ = m.ctx.E.TotalNJ(met.Cycles)
	return res
}
