package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
)

// Engine is the stepwise execution surface behind sampled interval
// simulation (internal/sample). Where Run drives a machine from first
// access to last, the Engine exposes the three motions the sampled
// executor composes:
//
//   - RunFunctional(n): advance every core n accesses with the clock
//     frozen — cache state (tags, recency, loop bits, dueling) updates
//     through the normal controller paths, event counters keep
//     counting, but energy metering and bank/memory timing are off.
//   - RunDetailed(n): advance every core n accesses under the full
//     timing model, in the exact serial scheduling order.
//   - SetSources: jump the machine to a different trace position in
//     O(1) by swapping in source forks captured during profiling. Cache
//     state is deliberately kept (stale but warm); functional warmup
//     intervals re-freshen it before measurements resume.
//
// The Engine always runs serially (Config.Banks is ignored): sampled
// runs get their speedup from skipping intervals, not from intra-run
// parallelism, and the telemetry seam requires the serial order anyway.
type Engine struct {
	m *machine
	// scratch is the functional loop's decode buffer: functional windows
	// read sources directly (bypassing each core's buffered decode) so
	// that interval boundaries land exactly on source positions and
	// ForkSources snapshots are aligned.
	scratch [accessBatch]trace.Access
	rem     []uint64
}

// NewEngine assembles a machine for stepwise execution. tel, when
// non-nil, receives one Interval per RunFunctional/RunDetailed window
// through the same telemetry path RunObserved uses. It panics on
// configuration misuse (wrong source count), like Run.
func NewEngine(cfg Config, ctrl core.Controller, srcs []trace.Source, tel *Telemetry) *Engine {
	if len(srcs) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d sources for %d cores", len(srcs), cfg.Cores))
	}
	m := build(cfg, ctrl, srcs)
	if tel != nil {
		m.tel = &telemetryState{cfg: tel}
	}
	return &Engine{m: m, rem: make([]uint64, cfg.Cores)}
}

// ForkSources captures an independent fork of every core's source at
// its current position, or ok=false when any source does not support
// trace.Forker. It must be called on an interval boundary of the
// functional loop (no buffered decode in flight); the profiling pass
// only forks there.
func (e *Engine) ForkSources() ([]trace.Source, bool) {
	out := make([]trace.Source, len(e.m.cores))
	for i, c := range e.m.cores {
		if c.bufPos < len(c.buf) {
			panic("sim: ForkSources with buffered accesses in flight")
		}
		s, ok := trace.ForkSource(c.src)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// SetSources jumps the machine to a different trace position: every
// core's stream is replaced and its decode state reset. Cache and
// controller state are untouched.
func (e *Engine) SetSources(srcs []trace.Source) {
	if len(srcs) != len(e.m.cores) {
		panic(fmt.Sprintf("sim: SetSources got %d sources for %d cores", len(srcs), len(e.m.cores)))
	}
	for i, c := range e.m.cores {
		c.src = srcs[i]
		c.buf = c.buf[:0]
		c.bufPos = 0
		c.srcEOF = false
		c.done = false
	}
}

// RunFunctional advances every active core up to perCore accesses in
// functional warmup mode, interleaving cores in accessBatch-sized
// chunks, and returns the total number of accesses executed (short only
// when sources exhaust). An attached Telemetry receives the window as
// one Interval.
func (e *Engine) RunFunctional(perCore uint64) uint64 {
	m := e.m
	m.ctx.Functional = true
	var total uint64
	for i, c := range m.cores {
		if c.done {
			e.rem[i] = 0
		} else {
			e.rem[i] = perCore
		}
	}
	for {
		progressed := false
		for i, c := range m.cores {
			if c.done || e.rem[i] == 0 {
				continue
			}
			// Drain any buffered decode left over from a detailed window
			// before touching the source directly.
			for c.bufPos < len(c.buf) && e.rem[i] > 0 {
				m.stepFunctional(c, c.buf[c.bufPos])
				c.bufPos++
				e.rem[i]--
				total++
				progressed = true
			}
			if e.rem[i] == 0 {
				continue
			}
			if c.srcEOF {
				c.done = true
				continue
			}
			chunk := uint64(len(e.scratch))
			if e.rem[i] < chunk {
				chunk = e.rem[i]
			}
			n := trace.FillBatch(c.src, e.scratch[:chunk])
			for j := 0; j < n; j++ {
				m.stepFunctional(c, e.scratch[j])
			}
			e.rem[i] -= uint64(n)
			total += uint64(n)
			if n > 0 {
				progressed = true
			}
			if uint64(n) < chunk {
				c.srcEOF = true
				c.done = true
			}
		}
		if !progressed {
			break
		}
		pending := false
		for i, c := range m.cores {
			if e.rem[i] > 0 && !c.done {
				pending = true
				break
			}
		}
		if !pending {
			break
		}
	}
	m.ctx.Functional = false
	if m.tel != nil && total > 0 {
		m.tel.accSeen += total
		m.telFlush(false)
	}
	return total
}

// RunDetailed advances every active core up to perCore accesses under
// the full timing model, in the serial scheduling order (ascending
// pre-access cycle count), and returns the total executed. An attached
// Telemetry receives the window as one Interval.
func (e *Engine) RunDetailed(perCore uint64) uint64 {
	m := e.m
	var total uint64
	for i, c := range m.cores {
		if c.done {
			e.rem[i] = 0
		} else {
			e.rem[i] = perCore
		}
	}
	for {
		var next *coreState
		ni := -1
		for i, c := range m.cores {
			if c.done || e.rem[i] == 0 {
				continue
			}
			if next == nil || c.cycles < next.cycles {
				next, ni = c, i
			}
		}
		if next == nil {
			break
		}
		acc, ok := next.next()
		if !ok {
			next.done = true
			continue
		}
		m.step(next, acc)
		next.nAcc++
		e.rem[ni]--
		total++
	}
	if m.tel != nil && total > 0 {
		m.tel.accSeen += total
		m.telFlush(false)
	}
	return total
}

// Exhausted reports whether every core's source has ended.
func (e *Engine) Exhausted() bool { return e.m.allDone() }

// MachineState is a deep copy of every cache in the machine: each
// core's private L1 and L2 plus the shared L3. The profiling pass
// captures MachineStates at interval boundaries so sampled replays can
// restore the true warm hierarchy before measuring, instead of
// re-warming an 8 MB LLC from whatever a source jump left stale.
// Controller-internal state (duel counters, loop tables) is not
// captured: it is policy-specific, small, and re-warms within the
// functional warmup intervals that precede every measurement.
type MachineState struct {
	l1, l2 []*cache.State
	l3     *cache.State
}

// SnapshotState copies the machine's cache hierarchy into a detached
// MachineState, recycling reuse's arrays when shapes match.
func (e *Engine) SnapshotState(reuse *MachineState) *MachineState {
	s := reuse
	if s == nil || len(s.l1) != len(e.m.cores) {
		s = &MachineState{
			l1: make([]*cache.State, len(e.m.cores)),
			l2: make([]*cache.State, len(e.m.cores)),
		}
	}
	for i, c := range e.m.cores {
		s.l1[i] = c.l1.Snapshot(s.l1[i])
		s.l2[i] = c.l2.Snapshot(s.l2[i])
	}
	s.l3 = e.m.ctx.L3.Snapshot(s.l3)
	return s
}

// RestoreState overwrites the machine's cache hierarchy from a
// snapshot captured on an identically-configured machine.
func (e *Engine) RestoreState(s *MachineState) {
	if len(s.l1) != len(e.m.cores) {
		panic(fmt.Sprintf("sim: restoring %d-core state into %d-core machine", len(s.l1), len(e.m.cores)))
	}
	for i, c := range e.m.cores {
		c.l1.Restore(s.l1[i])
		c.l2.Restore(s.l2[i])
	}
	e.m.ctx.L3.Restore(s.l3)
}

// Counters is a point-in-time snapshot of every accumulator a sampled
// run extrapolates: event counts, energy-meter activity, per-core
// progress, and LLC bank operations. The zero value is a valid
// accumulator for AddScaled.
type Counters struct {
	Met          core.Metrics
	TagAccesses  uint64
	RegionReads  [2]uint64
	RegionWrites [2]uint64
	Cycles       []float64
	Instrs       []uint64
	BankOps      []uint64
}

// Counters snapshots the machine's accumulators.
func (e *Engine) Counters() Counters {
	m := e.m
	c := Counters{
		Met:         *m.ctx.Met,
		TagAccesses: m.ctx.E.TagAccesses,
		Cycles:      make([]float64, len(m.cores)),
		Instrs:      make([]uint64, len(m.cores)),
		BankOps:     append([]uint64(nil), m.ctx.Banks.Ops()...),
	}
	for i := range m.ctx.E.Regions {
		c.RegionReads[i] = m.ctx.E.Regions[i].Reads
		c.RegionWrites[i] = m.ctx.E.Regions[i].Writes
	}
	for i, cs := range m.cores {
		c.Cycles[i] = cs.cycles
		c.Instrs[i] = cs.instrs
	}
	return c
}

// Clone returns a deep copy with fresh slices. Assigning a Counters
// value copies the struct but shares the slice backing; Clone before
// mutating a snapshot that is still needed elsewhere.
func (c Counters) Clone() Counters {
	c.Cycles = append([]float64(nil), c.Cycles...)
	c.Instrs = append([]uint64(nil), c.Instrs...)
	c.BankOps = append([]uint64(nil), c.BankOps...)
	return c
}

// Sub subtracts o from c elementwise, turning two snapshots into the
// delta of the window between them.
func (c *Counters) Sub(o *Counters) {
	c.Met.Sub(&o.Met)
	c.TagAccesses -= o.TagAccesses
	for i := range c.RegionReads {
		c.RegionReads[i] -= o.RegionReads[i]
		c.RegionWrites[i] -= o.RegionWrites[i]
	}
	for i := range c.Cycles {
		c.Cycles[i] -= o.Cycles[i]
		c.Instrs[i] -= o.Instrs[i]
	}
	for i := range c.BankOps {
		c.BankOps[i] -= o.BankOps[i]
	}
}

// AddScaled accumulates k copies of o into c — the extrapolation step:
// one representative interval's delta is added once per interval in its
// cluster. A zero-valued receiver sizes its slices from o.
func (c *Counters) AddScaled(o *Counters, k uint64) {
	if c.Cycles == nil {
		c.Cycles = make([]float64, len(o.Cycles))
		c.Instrs = make([]uint64, len(o.Instrs))
		c.BankOps = make([]uint64, len(o.BankOps))
	}
	c.Met.AddScaled(&o.Met, k)
	c.TagAccesses += o.TagAccesses * k
	for i := range c.RegionReads {
		c.RegionReads[i] += o.RegionReads[i] * k
		c.RegionWrites[i] += o.RegionWrites[i] * k
	}
	for i := range c.Cycles {
		c.Cycles[i] += o.Cycles[i] * float64(k)
		c.Instrs[i] += o.Instrs[i] * k
	}
	for i := range c.BankOps {
		c.BankOps[i] += o.BankOps[i] * k
	}
}

// Finalize installs the extrapolated totals into the machine and
// assembles the Result through the same path exact runs use, so EPI,
// IPC, and throughput are computed by identical code.
func (e *Engine) Finalize(total Counters) Result {
	m := e.m
	*m.ctx.Met = total.Met
	m.ctx.E.TagAccesses = total.TagAccesses
	for i := range m.ctx.E.Regions {
		m.ctx.E.Regions[i].Reads = total.RegionReads[i]
		m.ctx.E.Regions[i].Writes = total.RegionWrites[i]
	}
	for i, c := range m.cores {
		c.cycles = total.Cycles[i]
		c.instrs = total.Instrs[i]
	}
	m.warmupDone = false
	res := m.result()
	res.BankOps = append([]uint64(nil), total.BankOps...)
	return res
}
