package sim

import (
	"testing"

	"repro/internal/core"
	otrace "repro/internal/obs/trace"
)

// TestTelemetryIntervalsSumToTotals pins the delta accounting: the
// per-interval counters, summed over every window, must equal the run's
// final raw metrics, and windows must tile the run without gaps.
func TestTelemetryIntervalsSumToTotals(t *testing.T) {
	cfg := smallCfg()
	const perCore = 20000
	var ivs []Interval
	tel := &Telemetry{
		Interval:   5000,
		OnInterval: func(iv Interval) { ivs = append(ivs, iv) },
	}
	var done uint64
	tel.OnDone = func(cycles uint64) { done = cycles }

	r := RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, perCore), tel)

	if len(ivs) == 0 {
		t.Fatal("no intervals emitted")
	}
	wantWindows := 2 * perCore / 5000
	if len(ivs) != wantWindows {
		t.Fatalf("got %d windows, want %d", len(ivs), wantWindows)
	}
	var acc, misses, l3acc, wb, fills, tagOnly uint64
	var prevEnd uint64
	for i, iv := range ivs {
		if iv.Index != uint64(i) {
			t.Fatalf("window %d has index %d", i, iv.Index)
		}
		if iv.StartCycles != prevEnd {
			t.Fatalf("window %d starts at %d, previous ended at %d", i, iv.StartCycles, prevEnd)
		}
		if iv.EndCycles < iv.StartCycles {
			t.Fatalf("window %d runs backwards: [%d, %d]", i, iv.StartCycles, iv.EndCycles)
		}
		prevEnd = iv.EndCycles
		acc += iv.Accesses
		misses += iv.L3Misses
		l3acc += iv.L3Accesses
		wb += iv.Writebacks
		fills += iv.Fills
		tagOnly += iv.TagOnlyUpdates
	}
	if acc != 2*perCore {
		t.Fatalf("interval accesses sum to %d, want %d", acc, 2*perCore)
	}
	// No warmup in this run, so Result metrics are the raw totals the
	// intervals decompose.
	if misses != r.Met.L3Misses {
		t.Fatalf("interval misses sum to %d, run reports %d", misses, r.Met.L3Misses)
	}
	if l3acc != r.Met.L3Accesses {
		t.Fatalf("interval L3 accesses sum to %d, run reports %d", l3acc, r.Met.L3Accesses)
	}
	if wb != r.Met.WritesDirty+r.Met.WritesClean {
		t.Fatalf("interval writebacks sum to %d, run reports %d", wb, r.Met.WritesDirty+r.Met.WritesClean)
	}
	if fills != r.Met.WritesFill {
		t.Fatalf("interval fills sum to %d, run reports %d", fills, r.Met.WritesFill)
	}
	if tagOnly != r.Met.TagOnlyUpdates {
		t.Fatalf("interval tag-only sum to %d, run reports %d", tagOnly, r.Met.TagOnlyUpdates)
	}
	if done == 0 || done != prevEnd {
		t.Fatalf("OnDone cycles = %d, want final window end %d", done, prevEnd)
	}
}

// TestTelemetryObservedMatchesUnobserved: attaching telemetry must not
// perturb the simulation itself.
func TestTelemetryObservedMatchesUnobserved(t *testing.T) {
	cfg := smallCfg()
	plain := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 15000))
	observed := RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 15000),
		&Telemetry{Interval: 1000, OnInterval: func(Interval) {}})
	if plain.Met != observed.Met {
		t.Fatalf("telemetry changed the simulation:\nplain    %+v\nobserved %+v", plain.Met, observed.Met)
	}
}

// TestTelemetryWarmupHook: the warmup hook fires once, before any
// post-warmup window closes beyond it, and never on warmup-free runs.
func TestTelemetryWarmupHook(t *testing.T) {
	cfg := smallCfg()
	cfg.WarmupAccessesPerCore = 5000
	var warmups int
	var warmupCycles uint64
	tel := &Telemetry{
		Interval:    4000,
		OnInterval:  func(Interval) {},
		OnWarmupEnd: func(c uint64) { warmups++; warmupCycles = c },
	}
	RunObserved(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 30000), tel)
	if warmups != 1 {
		t.Fatalf("warmup hook fired %d times, want 1", warmups)
	}
	if warmupCycles == 0 {
		t.Fatal("warmup hook reported zero cycles")
	}

	warmups = 0
	cfg.WarmupAccessesPerCore = 0
	RunObserved(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 10000), tel)
	if warmups != 0 {
		t.Fatal("warmup hook fired on a warmup-free run")
	}
}

// TestTraceTelemetryTimeline runs a small simulation through the tracer
// bridge and asserts the exported timeline shape: a run span on its own
// named track, a nested warmup span, nested epoch spans, and counter
// samples for the per-interval series.
func TestTraceTelemetryTimeline(t *testing.T) {
	tr := otrace.New(0)
	cfg := smallCfg()
	cfg.WarmupAccessesPerCore = 4000
	tel := TraceTelemetry(tr, "LAP", 8000)
	if tel == nil {
		t.Fatal("enabled tracer produced nil telemetry")
	}
	RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 20000), tel)

	var runEv, warmEv *otrace.Event
	epochs := 0
	counters := map[string]int{}
	evs := tr.Events()
	for i := range evs {
		ev := &evs[i]
		if ev.Pid != otrace.PidSim {
			t.Fatalf("simulated-time event on pid %d: %+v", ev.Pid, ev)
		}
		switch {
		case ev.Phase == otrace.PhaseSpan && ev.Name == "run":
			runEv = ev
		case ev.Phase == otrace.PhaseSpan && ev.Name == "warmup":
			warmEv = ev
		case ev.Phase == otrace.PhaseSpan && ev.Name == "epoch":
			epochs++
		case ev.Phase == otrace.PhaseCounter:
			counters[ev.Name]++
		}
	}
	if runEv == nil || warmEv == nil {
		t.Fatalf("missing run/warmup span (run=%v warmup=%v)", runEv, warmEv)
	}
	if epochs == 0 {
		t.Fatal("no epoch spans")
	}
	if warmEv.Parent != runEv.ID || warmEv.Dur <= 0 || warmEv.Dur > runEv.Dur {
		t.Fatalf("warmup span not nested in run: warmup=%+v run=%+v", warmEv, runEv)
	}
	for _, series := range []string{"accesses", "misses", "writebacks", "fills", "redundant_fills", "loop_blocks"} {
		if counters[series] != epochs {
			t.Fatalf("series %q has %d samples for %d epochs", series, counters[series], epochs)
		}
	}

	// Disabled tracer → nil telemetry, so observed call sites need no
	// branching of their own.
	tr.SetEnabled(false)
	if TraceTelemetry(tr, "x", 100) != nil {
		t.Fatal("disabled tracer produced telemetry")
	}
	if TraceTelemetry(nil, "x", 100) != nil {
		t.Fatal("nil tracer produced telemetry")
	}
}
