package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestDRAMModelEnabled(t *testing.T) {
	cfg := smallCfg()
	cfg.UseDRAM = true
	r := Run(cfg, core.NewNonInclusive(), sourcesFor(writy(), 2, 30000))
	total := r.DRAM.RowHits + r.DRAM.RowClosed + r.DRAM.RowConflicts
	if total == 0 {
		t.Fatal("DRAM model saw no accesses")
	}
	// Reads = LLC misses; writes = memory writebacks.
	if r.DRAM.Reads != r.Met.MemReads {
		t.Fatalf("DRAM reads %d != mem reads %d", r.DRAM.Reads, r.Met.MemReads)
	}
	if r.DRAM.Writes != r.Met.MemWrites {
		t.Fatalf("DRAM writes %d != mem writes %d", r.DRAM.Writes, r.Met.MemWrites)
	}
}

func TestDRAMRowLocalityMatters(t *testing.T) {
	// A streaming workload's misses walk DRAM rows sequentially, so the
	// row-buffer hit rate must be high and runtime shorter than with a
	// random-miss workload of equal length.
	cfg := smallCfg()
	cfg.UseDRAM = true
	stream := Run(cfg, core.NewExclusive(), sourcesFor(writy(), 2, 30000))
	if stream.DRAM.HitRate() < 0.6 {
		t.Fatalf("streaming DRAM hit rate = %.2f, want high", stream.DRAM.HitRate())
	}
	randomB := workload.Benchmark{
		Name: "rand", InstrPerAccess: 2,
		Regions: []workload.Region{{Kind: workload.RMW, Blocks: 1 << 20, Weight: 1, WriteFrac: 0.5}},
	}
	random := Run(cfg, core.NewExclusive(), sourcesFor(randomB, 2, 30000))
	if random.DRAM.HitRate() > stream.DRAM.HitRate() {
		t.Fatalf("random hit rate %.2f above streaming %.2f", random.DRAM.HitRate(), stream.DRAM.HitRate())
	}
}

func TestDRAMDisabledByDefault(t *testing.T) {
	r := Run(smallCfg(), core.NewNonInclusive(), sourcesFor(writy(), 2, 10000))
	if r.DRAM.Reads != 0 {
		t.Fatal("DRAM stats populated without UseDRAM")
	}
}

func TestDRAMPreservesPolicyOrdering(t *testing.T) {
	// The headline LAP result must be robust to the memory model. The
	// loop workload checks write reduction; the fill-heavy workload
	// checks the energy win (on an LLC-resident loop the tiny test cache
	// leaves LAP nothing to save, and its tag-update overhead shows —
	// an honest property of the mechanism).
	cfg := smallCfg()
	cfg.UseDRAM = true
	noniLoop := Run(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 50000))
	lapLoop := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 50000))
	if lapLoop.Met.WritesToLLC() >= noniLoop.Met.WritesToLLC() {
		t.Fatal("LAP write reduction vanished under the DRAM model")
	}
	noniFill := Run(cfg, core.NewNonInclusive(), sourcesFor(writy(), 2, 50000))
	lapFill := Run(cfg, core.NewLAP(), sourcesFor(writy(), 2, 50000))
	if lapFill.EPI.Total() >= noniFill.EPI.Total() {
		t.Fatalf("LAP energy win vanished under the DRAM model: %.5f vs %.5f",
			lapFill.EPI.Total(), noniFill.EPI.Total())
	}
}
