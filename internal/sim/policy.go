package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
)

// Policy dispatch against the core registry. Every entry point that
// accepts a policy name — the lap facade, cmd/lapsim's -policy flag,
// lapexp's table factories, and lapserved's /v1/run and /v1/sweep
// validators — resolves it through these helpers, so canonicalisation,
// capability gating ("needs hybrid LLC", "sampled-eligible"), and the
// unknown-name error text are identical everywhere.

// PolicyParams derives the configuration-dependent factory knobs for
// the registered policies. Dswitch's duel weighs an avoided LLC miss
// against an LLC write in nanojoules: a miss costs one LLC read's worth
// of re-reference plus the leakage burned over the exposed (MLP- and
// core-overlap-adjusted) memory latency.
func (c Config) PolicyParams(duelPeriod uint64) core.PolicyParams {
	tech := c.L3Tech
	leakMW := tech.LeakMWPerBank*float64(c.L3SizeBytes)/float64(energy.BankBytes) + energy.DefaultTag().LeakMW
	exposed := float64(c.MemCycles) / c.MLP / float64(c.Cores)
	missNJ := tech.ReadNJ + leakMW*1e-3*exposed/c.ClockHz*1e9
	return core.PolicyParams{
		DuelPeriod: duelPeriod,
		MissNJ:     missNJ,
		WriteNJ:    tech.WriteNJ,
	}
}

// policyIneligible explains why a registered policy cannot run under
// this configuration; "" means eligible.
func (c Config) policyIneligible(info core.PolicyInfo) string {
	if info.NeedsHybridLLC && c.L3SRAMWays == 0 {
		return "needs a hybrid LLC: set L3SRAMWays > 0"
	}
	if c.SampleInterval > 0 && !info.SampledEligible {
		return "not sampled-eligible: its predictor state does not survive interval jumps; use exact mode"
	}
	return ""
}

// ValidatePolicy resolves a policy name against the registry under this
// configuration, returning the canonical name. Unknown names and
// policies the configuration cannot run (hybrid-only on a uniform LLC,
// sampled-ineligible when SampleInterval > 0) return a *FieldError on
// "Policy" so every CLI error and HTTP 400 carries the same text.
func (c Config) ValidatePolicy(name string) (string, error) {
	info, ok := core.LookupPolicy(name)
	if !ok {
		return "", fieldErrf("Policy", "unknown policy %q (valid: %s; append +DWB for dead-write bypass)",
			name, strings.Join(core.PolicyNames(), ", "))
	}
	if reason := c.policyIneligible(info); reason != "" {
		return "", fieldErrf("Policy", "%s %s", info.Name, reason)
	}
	return info.Name, nil
}

// NewPolicyController validates name under this configuration and
// builds a fresh controller with the configuration-derived params.
func (c Config) NewPolicyController(name string, duelPeriod uint64) (core.Controller, error) {
	canon, err := c.ValidatePolicy(name)
	if err != nil {
		return nil, err
	}
	return core.NewPolicy(canon, c.PolicyParams(duelPeriod))
}

// ResolvePolicies parses a policy argument — a single name, a comma
// list, or "all" — under this configuration. It returns the canonical
// names in request order (registry order for "all") with duplicates
// collapsed, plus human-readable notices for policies "all" skipped as
// ineligible. Explicitly requested ineligible or unknown names are a
// *FieldError instead.
func (c Config) ResolvePolicies(arg string) (names []string, notices []string, err error) {
	if strings.EqualFold(strings.TrimSpace(arg), "all") {
		for _, info := range core.Policies() {
			if reason := c.policyIneligible(info); reason != "" {
				notices = append(notices, fmt.Sprintf("skipping %s (%s)", info.Name, reason))
				continue
			}
			names = append(names, info.Name)
		}
		return names, notices, nil
	}
	seen := make(map[string]bool)
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		canon, err := c.ValidatePolicy(tok)
		if err != nil {
			return nil, nil, err
		}
		if seen[canon] {
			continue
		}
		seen[canon] = true
		names = append(names, canon)
	}
	if len(names) == 0 {
		return nil, nil, fieldErrf("Policy", "no policies named in %q", arg)
	}
	return names, notices, nil
}
