package sim

import "fmt"

// FieldError is a validation failure tied to one Config field, so API
// layers can tell a caller which knob to fix (lapserved returns the
// field name in its 400 responses) instead of a free-form string.
type FieldError struct {
	// Field is the Go field name in Config (which is also the JSON key —
	// Config marshals with default field names).
	Field string
	// Reason describes the constraint that failed, including the
	// offending value.
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("%s: %s", e.Field, e.Reason)
}

func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the configuration for the mistakes the simulator would
// otherwise panic on. Every failure is a *FieldError naming the field.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fieldErrf("Cores", "must be positive (got %d)", c.Cores)
	case c.BlockBytes <= 0:
		return fieldErrf("BlockBytes", "block size must be positive (got %d)", c.BlockBytes)
	case c.L1SizeBytes <= 0 || c.L1Ways <= 0:
		return fieldErrf("L1SizeBytes", "invalid L1 geometry %d/%d-way", c.L1SizeBytes, c.L1Ways)
	case c.L2SizeBytes <= 0 || c.L2Ways <= 0:
		return fieldErrf("L2SizeBytes", "invalid L2 geometry %d/%d-way", c.L2SizeBytes, c.L2Ways)
	case c.L3SizeBytes <= 0 || c.L3Ways <= 0:
		return fieldErrf("L3SizeBytes", "invalid L3 geometry %d/%d-way", c.L3SizeBytes, c.L3Ways)
	case c.L3SRAMWays < 0 || c.L3SRAMWays > c.L3Ways:
		return fieldErrf("L3SRAMWays", "hybrid SRAM ways %d out of range 0..%d", c.L3SRAMWays, c.L3Ways)
	case c.L3Banks <= 0 || c.L3Banks&(c.L3Banks-1) != 0:
		return fieldErrf("L3Banks", "LLC banks must be a positive power of two (got %d)", c.L3Banks)
	case c.ClockHz <= 0:
		return fieldErrf("ClockHz", "clock must be positive (got %g)", c.ClockHz)
	case c.BaseCPI <= 0:
		return fieldErrf("BaseCPI", "must be positive (got %g)", c.BaseCPI)
	case c.MLP <= 0:
		return fieldErrf("MLP", "must be positive (got %g)", c.MLP)
	case c.PrefetchDegree < 0:
		return fieldErrf("PrefetchDegree", "prefetch degree must be non-negative (got %d)", c.PrefetchDegree)
	case c.Banks < 0:
		return fieldErrf("Banks", "worker banks must be non-negative (got %d)", c.Banks)
	case c.MSHREntries < 0:
		return fieldErrf("MSHREntries", "MSHR entries must be non-negative (got %d)", c.MSHREntries)
	case c.SampleInterval > 0 && c.SampleInterval < 1000:
		return fieldErrf("SampleInterval", "sampling interval must be at least 1000 accesses per core (got %d)", c.SampleInterval)
	case c.SampleClusters < 0 || c.SampleClusters > 256:
		return fieldErrf("SampleClusters", "cluster count must be in 0..256 (got %d)", c.SampleClusters)
	case c.SampleClusters > 0 && c.SampleInterval == 0:
		return fieldErrf("SampleClusters", "requires sampled mode (set SampleInterval > 0)")
	case c.SampleWarmup < 0 || c.SampleWarmup > 64:
		return fieldErrf("SampleWarmup", "warmup intervals must be in 0..64 (got %d)", c.SampleWarmup)
	case c.SampleWarmup > 0 && c.SampleInterval == 0:
		return fieldErrf("SampleWarmup", "requires sampled mode (set SampleInterval > 0)")
	case c.SampleInterval > 0 && (c.Coherent || c.TrackMOESI):
		return fieldErrf("SampleInterval", "sampled mode cannot run coherent workloads (cross-core state does not survive interval jumps)")
	case c.SampleInterval > 0 && c.Profile:
		return fieldErrf("SampleInterval", "sampled mode cannot profile per-block redundancy (profiler state spans skipped intervals)")
	case c.SampleInterval > 0 && c.WarmupAccessesPerCore > 0:
		return fieldErrf("WarmupAccessesPerCore", "sampled mode replaces access-count warmup with functional cluster warmup (SampleWarmup)")
	case c.SampleInterval > 0 && c.MaxAccessesPerCore > 0:
		return fieldErrf("MaxAccessesPerCore", "sampled mode derives run length from the profiled trace; bound the sources instead")
	case c.CheckpointEvery > 0 && c.CheckpointEvery < 1000:
		return fieldErrf("CheckpointEvery", "checkpoint interval must be at least 1000 accesses (got %d)", c.CheckpointEvery)
	}
	for _, geom := range []struct {
		field      string
		name       string
		size, ways int
	}{
		{"L1SizeBytes", "L1", c.L1SizeBytes, c.L1Ways},
		{"L2SizeBytes", "L2", c.L2SizeBytes, c.L2Ways},
		{"L3SizeBytes", "L3", c.L3SizeBytes, c.L3Ways},
	} {
		blocks := geom.size / c.BlockBytes
		if blocks%geom.ways != 0 {
			return fieldErrf(geom.field, "%s capacity not divisible into %d ways", geom.name, geom.ways)
		}
		sets := blocks / geom.ways
		if sets <= 0 || sets&(sets-1) != 0 {
			return fieldErrf(geom.field, "%s set count %d is not a power of two", geom.name, sets)
		}
	}
	return nil
}
