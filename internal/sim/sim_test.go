package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallCfg shrinks the hierarchy so tests exercise capacity effects with
// short streams: 4KB L1, 16KB L2, 64KB L3.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.L1SizeBytes = 4 << 10
	cfg.L2SizeBytes = 16 << 10
	cfg.L3SizeBytes = 64 << 10
	return cfg
}

// loopy is a workload whose read set fits the L3 but not the L2 (two
// cores of it together use ~60% of the small L3), with enough RMW traffic
// to keep insertion pressure on the LLC.
func loopy() workload.Benchmark {
	return workload.Benchmark{
		Name: "loopy", InstrPerAccess: 2,
		Regions: []workload.Region{
			{Kind: workload.Loop, Blocks: 300, Weight: 0.6},
			{Kind: workload.Hot, Blocks: 16, Weight: 0.2, WriteFrac: 0.3},
			{Kind: workload.RMW, Blocks: 128, Weight: 0.2, WriteFrac: 0.8},
		},
	}
}

// writy is a streaming read-modify-write workload (libquantum-like).
func writy() workload.Benchmark {
	return workload.Benchmark{
		Name: "writy", InstrPerAccess: 2,
		Regions: []workload.Region{
			{Kind: workload.StreamRMW, Weight: 0.8},
			{Kind: workload.Hot, Blocks: 16, Weight: 0.2, WriteFrac: 0.2},
		},
	}
}

func sourcesFor(b workload.Benchmark, cores int, n uint64) []trace.Source {
	srcs := make([]trace.Source, cores)
	for i := 0; i < cores; i++ {
		srcs[i] = trace.Limit(trace.WithOffset(workload.New(b, uint64(i+3)), uint64(i+1)<<coreSpaceShift), n)
	}
	return srcs
}

func TestRunPanicsOnSourceMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(smallCfg(), core.NewLAP(), nil)
}

func TestDeterministic(t *testing.T) {
	cfg := smallCfg()
	a := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 20000))
	b := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 20000))
	if a.Met != b.Met || a.Cycles != b.Cycles {
		t.Fatal("simulation not deterministic")
	}
}

func TestWriteSourceIdentities(t *testing.T) {
	cfg := smallCfg()
	// Non-inclusive: writes = fills + dirty victims; no clean insertions.
	rn := Run(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 30000))
	if rn.Met.WritesClean != 0 {
		t.Fatalf("non-inclusive inserted %d clean victims", rn.Met.WritesClean)
	}
	if rn.Met.WritesFill == 0 || rn.Met.WritesDirty == 0 {
		t.Fatalf("non-inclusive write decomposition empty: %+v", rn.Met)
	}
	// Exclusive: no data-fills.
	re := Run(cfg, core.NewExclusive(), sourcesFor(loopy(), 2, 30000))
	if re.Met.WritesFill != 0 {
		t.Fatalf("exclusive performed %d fills", re.Met.WritesFill)
	}
	if re.Met.WritesClean == 0 {
		t.Fatal("exclusive inserted no clean victims")
	}
	// LAP: no data-fills either.
	rl := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 30000))
	if rl.Met.WritesFill != 0 {
		t.Fatalf("LAP performed %d fills", rl.Met.WritesFill)
	}
}

func TestEvictionConservation(t *testing.T) {
	r := Run(smallCfg(), core.NewLAP(), sourcesFor(loopy(), 2, 30000))
	if r.Met.L2Evictions != r.Met.L2CleanEvictions+r.Met.L2DirtyEvictions {
		t.Fatal("L2 eviction decomposition does not add up")
	}
	if r.Met.L3Hits+r.Met.L3Misses != r.Met.L3Accesses {
		t.Fatal("L3 hit/miss decomposition does not add up")
	}
}

func TestLAPReducesWritesOnLoopWorkload(t *testing.T) {
	cfg := smallCfg()
	noni := Run(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 50000))
	ex := Run(cfg, core.NewExclusive(), sourcesFor(loopy(), 2, 50000))
	lap := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 50000))
	if lap.Met.WritesToLLC() >= ex.Met.WritesToLLC() {
		t.Fatalf("LAP writes %d >= exclusive %d on loop workload",
			lap.Met.WritesToLLC(), ex.Met.WritesToLLC())
	}
	if lap.Met.WritesToLLC() >= noni.Met.WritesToLLC() {
		t.Fatalf("LAP writes %d >= non-inclusive %d on loop workload",
			lap.Met.WritesToLLC(), noni.Met.WritesToLLC())
	}
}

func TestExclusionSavesWritesOnStreamRMW(t *testing.T) {
	// Fig. 2: libquantum-like workloads favour exclusion because
	// non-inclusive fills are redundant (block is dirtied before reuse).
	cfg := smallCfg()
	noni := Run(cfg, core.NewNonInclusive(), sourcesFor(writy(), 2, 50000))
	ex := Run(cfg, core.NewExclusive(), sourcesFor(writy(), 2, 50000))
	if float64(ex.Met.WritesToLLC()) > 0.8*float64(noni.Met.WritesToLLC()) {
		t.Fatalf("exclusive writes %d not clearly below non-inclusive %d on StreamRMW",
			ex.Met.WritesToLLC(), noni.Met.WritesToLLC())
	}
}

func TestExclusiveEffectiveCapacity(t *testing.T) {
	// With a working set around L2+L3, exclusion must miss less than
	// non-inclusion (Fig. 18 direction).
	cfg := smallCfg()
	b := workload.Benchmark{
		Name: "cap", InstrPerAccess: 2,
		Regions: []workload.Region{{Kind: workload.Loop, Blocks: 600, Weight: 1}},
	}
	noni := Run(cfg, core.NewNonInclusive(), sourcesFor(b, 2, 60000))
	ex := Run(cfg, core.NewExclusive(), sourcesFor(b, 2, 60000))
	if ex.Met.L3Misses >= noni.Met.L3Misses {
		t.Fatalf("exclusive misses %d >= non-inclusive %d", ex.Met.L3Misses, noni.Met.L3Misses)
	}
}

func TestProfilerEnabled(t *testing.T) {
	cfg := smallCfg()
	cfg.Profile = true
	r := Run(cfg, core.NewNonInclusive(), sourcesFor(writy(), 2, 40000))
	if r.Prof == nil {
		t.Fatal("profiler missing")
	}
	if f := r.Prof.RedundantFillFrac(); f < 0.5 {
		t.Fatalf("StreamRMW redundant-fill fraction = %.2f, want high", f)
	}
	rl := Run(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 40000))
	if lf := rl.Prof.LoopBlockFrac(); lf < 0.3 {
		t.Fatalf("loopy loop-block fraction = %.2f, want substantial", lf)
	}
}

func TestHybridRun(t *testing.T) {
	cfg := smallCfg().WithHybridL3()
	r := Run(cfg, core.NewLhybrid(), sourcesFor(loopy(), 2, 40000))
	if r.Met.WritesToLLC() == 0 {
		t.Fatal("hybrid run produced no LLC writes")
	}
	// Both regions must be exercised on a loop-heavy workload.
	lh := Run(cfg, core.NewLhybrid(), sourcesFor(loopy(), 2, 40000))
	if lh.Met.MigrationWrites == 0 {
		t.Fatal("Lhybrid never migrated a loop-block to STT-RAM")
	}
}

func TestCoherentRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Coherent = true
	b := workload.Benchmark{
		Name: "shared", InstrPerAccess: 2, Threaded: true,
		Regions: []workload.Region{
			{Kind: workload.RMW, Blocks: 256, Weight: 0.5, WriteFrac: 0.5, Shared: true},
			{Kind: workload.Loop, Blocks: 512, Weight: 0.5, Shared: true},
		},
	}
	srcs := ThreadSources(b, cfg.Cores, 30000, 9)
	r := Run(cfg, core.NewNonInclusive(), srcs)
	if r.Snoop.Probes == 0 {
		t.Fatal("coherent run produced no snoop probes")
	}
	if r.Snoop.DirtyTransfers == 0 {
		t.Fatal("no cache-to-cache dirty transfers on shared RMW data")
	}
	if r.Met.SnoopTraffic == 0 {
		t.Fatal("snoop traffic not recorded")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	cfg := smallCfg()
	r := Run(cfg, core.NewInclusive(), sourcesFor(writy(), 2, 40000))
	if r.Met.BackInvalidations == 0 {
		t.Fatal("inclusive run performed no back-invalidations")
	}
}

func TestThroughputPositive(t *testing.T) {
	r := Run(smallCfg(), core.NewLAP(), sourcesFor(loopy(), 2, 20000))
	if r.Throughput <= 0 || len(r.IPCs) != 2 {
		t.Fatalf("throughput %v, IPCs %v", r.Throughput, r.IPCs)
	}
	for _, ipc := range r.IPCs {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("implausible IPC %v", ipc)
		}
	}
	if r.EPI.Total() <= 0 {
		t.Fatal("EPI must be positive")
	}
}

func TestSTTWritePressureSlowsExclusive(t *testing.T) {
	// The bank model must make write-heavy exclusive traffic cost cycles:
	// with a much slower write, runtime should not improve.
	cfg := smallCfg()
	fast := cfg
	fast.L3WriteCycles = 8
	slow := cfg
	slow.L3WriteCycles = 66
	rf := Run(fast, core.NewExclusive(), sourcesFor(loopy(), 2, 40000))
	rs := Run(slow, core.NewExclusive(), sourcesFor(loopy(), 2, 40000))
	if rs.Cycles <= rf.Cycles {
		t.Fatalf("slow writes did not cost cycles: %d vs %d", rs.Cycles, rf.Cycles)
	}
}

func TestMixSources(t *testing.T) {
	mix := workload.TableIII()[0]
	srcs, err := MixSources(mix, 100, 1)
	if err != nil || len(srcs) != 4 {
		t.Fatalf("MixSources: %v, n=%d", err, len(srcs))
	}
	if _, err := MixSources(workload.Mix{Name: "bad", Members: []string{"nope"}}, 10, 1); err == nil {
		t.Fatal("bad mix did not error")
	}
	// Disjoint core address spaces.
	a0 := trace.Drain(srcs[0])
	a1 := trace.Drain(srcs[1])
	addrs := map[uint64]bool{}
	for _, a := range a0 {
		addrs[a.Addr] = true
	}
	for _, a := range a1 {
		if addrs[a.Addr] {
			t.Fatal("core address spaces overlap in a mix")
		}
	}
}

func TestRunMixAndRunThreaded(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 4
	res, err := RunMix(cfg, func() core.Controller { return core.NewLAP() },
		workload.TableIII()[5], 5000, 1)
	if err != nil || res.Met.Instructions == 0 {
		t.Fatalf("RunMix: %v", err)
	}
	b, _ := workload.ByName("streamcluster")
	rt := RunThreaded(cfg, func() core.Controller { return core.NewExclusive() }, b, 5000, 1)
	if rt.Snoop.Probes == 0 {
		t.Fatal("RunThreaded did not enable coherence")
	}
	if _, err := RunMix(cfg, func() core.Controller { return core.NewLAP() },
		workload.Mix{Name: "w", Members: []string{"mcf"}}, 10, 1); err == nil {
		t.Fatal("mix/core mismatch not detected")
	}
}

func TestConfigVariants(t *testing.T) {
	c := DefaultConfig()
	if c.WithSRAML3().L3Tech.Name != "SRAM" {
		t.Fatal("WithSRAML3 wrong tech")
	}
	scaled := energy.STTRAM().WithWriteReadRatio(4)
	if c.WithSTTL3(scaled).L3Tech.WriteReadRatio() != 4 {
		t.Fatal("WithSTTL3 did not take scaled tech")
	}
	h := c.WithHybridL3()
	if !h.hybrid() || h.L3SRAMWays != 4 {
		t.Fatal("WithHybridL3 wrong")
	}
}
