package sim

import (
	"testing"

	"repro/internal/core"
)

// TestEngineDetailedMatchesRun: driving a machine entirely through
// RunDetailed windows must reproduce the one-shot Run result exactly —
// the Engine is a re-scheduling of the same loop, not a second
// implementation of it.
func TestEngineDetailedMatchesRun(t *testing.T) {
	cfg := smallCfg()
	const perCore = 20000

	want := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, perCore))

	eng := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, perCore), nil)
	// One window covering the whole run: the engine's scheduler then
	// makes exactly the choices serialLoop makes. (Windowed schedules
	// barrier at quota boundaries, which legitimately shifts bank
	// contention timestamps; sampled runs accept that, exact equality
	// holds only for the single-window drive.)
	eng.RunDetailed(perCore)
	got := eng.Finalize(eng.Counters())

	if got.Met != want.Met {
		t.Fatalf("engine metrics differ from Run:\n got %+v\nwant %+v", got.Met, want.Met)
	}
	if got.EPI != want.EPI {
		t.Fatalf("engine EPI %.6f != Run EPI %.6f", got.EPI, want.EPI)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("engine cycles %d != Run cycles %d", got.Cycles, want.Cycles)
	}
}

// TestEngineFunctionalPreservesState: a run whose first half executes
// functionally must leave the caches in exactly the state a detailed
// run leaves them in — functional mode changes what is measured, never
// what happens to cache contents. We check by running the second half
// in detail and comparing its event deltas against the same window of
// an all-detailed engine.
func TestEngineFunctionalPreservesState(t *testing.T) {
	cfg := smallCfg()
	const half = 10000

	detail := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 2*half), nil)
	detail.RunDetailed(half)
	dBefore := detail.Counters()
	detail.RunDetailed(half)
	dAfter := detail.Counters()
	dAfter.Sub(&dBefore)

	mixed := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 2*half), nil)
	if n := mixed.RunFunctional(half); n != 2*half {
		t.Fatalf("functional half executed %d accesses, want %d", n, 2*half)
	}
	mBefore := mixed.Counters()
	mixed.RunDetailed(half)
	mAfter := mixed.Counters()
	mAfter.Sub(&mBefore)

	// Event counters of the detailed second half must be identical:
	// same cache state at the window boundary, same accesses, same
	// outcomes. (Cycles differ — the functional half never advanced the
	// clock, which shifts bank/DRAM timestamps — so compare events.)
	da, ma := dAfter.Met, mAfter.Met
	da.Cycles, ma.Cycles = 0, 0
	if da != ma {
		t.Fatalf("second-half deltas differ after functional first half:\n got %+v\nwant %+v", ma, da)
	}
}

// TestEngineFunctionalMetersNothing: functional windows must not
// accumulate energy-meter activity or bank operations.
func TestEngineFunctionalMetersNothing(t *testing.T) {
	cfg := smallCfg()
	eng := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 10000), nil)
	eng.RunFunctional(10000)
	c := eng.Counters()
	if c.TagAccesses != 0 {
		t.Fatalf("functional run metered %d tag accesses, want 0", c.TagAccesses)
	}
	for i := range c.RegionReads {
		if c.RegionReads[i] != 0 || c.RegionWrites[i] != 0 {
			t.Fatalf("functional run metered region %d reads=%d writes=%d, want 0", i, c.RegionReads[i], c.RegionWrites[i])
		}
	}
	for i, ops := range c.BankOps {
		if ops != 0 {
			t.Fatalf("functional run recorded %d ops on bank %d, want 0", ops, i)
		}
	}
	for i, cy := range c.Cycles {
		if cy != 0 {
			t.Fatalf("functional run advanced core %d clock to %g, want 0", i, cy)
		}
	}
	// But event counters must keep counting — signatures depend on them.
	if c.Met.L3Accesses == 0 || c.Met.L2Accesses == 0 {
		t.Fatalf("functional run recorded no cache events: %+v", c.Met)
	}
}

// TestEngineForkJumpReplaysSameAccesses: forking at a boundary and
// replaying from the fork must yield the same access stream the
// original sources continue with — the checkpoint mechanism behind
// interval jumps.
func TestEngineForkJumpReplaysSameAccesses(t *testing.T) {
	cfg := smallCfg()
	const win = 5000

	a := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 4*win), nil)
	a.RunFunctional(win)
	forks, ok := a.ForkSources()
	if !ok {
		t.Fatal("workload sources must be forkable")
	}
	a.RunFunctional(win)
	ca := a.Counters()

	// Second engine: same first window, then jump onto the forks —
	// must land on the identical stream positions.
	b := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 4*win), nil)
	b.RunFunctional(win)
	b.SetSources(forks)
	b.RunFunctional(win)
	cb := b.Counters()

	if ca.Met != cb.Met {
		t.Fatalf("fork replay diverged:\n got %+v\nwant %+v", cb.Met, ca.Met)
	}
}

// TestCountersSubAddScaledRoundTrip: extrapolating a delta with weight
// 1 must reproduce plain accumulation.
func TestCountersSubAddScaledRoundTrip(t *testing.T) {
	cfg := smallCfg()
	eng := NewEngine(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 20000), nil)

	var total Counters
	var snaps []Counters
	prev := eng.Counters()
	for !eng.Exhausted() {
		if eng.RunDetailed(4000) == 0 {
			break
		}
		cur := eng.Counters()
		snaps = append(snaps, cur)
		delta := cur.Clone()
		delta.Sub(&prev)
		total.AddScaled(&delta, 1)
		prev = cur
	}
	final := snaps[len(snaps)-1]
	if total.Met != final.Met || total.TagAccesses != final.TagAccesses {
		t.Fatalf("weight-1 extrapolation diverged from direct totals")
	}
	for i := range total.Cycles {
		if total.Cycles[i] != final.Cycles[i] || total.Instrs[i] != final.Instrs[i] {
			t.Fatalf("core %d progress diverged: %g/%d vs %g/%d",
				i, total.Cycles[i], total.Instrs[i], final.Cycles[i], final.Instrs[i])
		}
	}
}
