package sim

import (
	"repro/internal/core"
	otrace "repro/internal/obs/trace"
)

// Interval is one telemetry window's counters: deltas of the machine's
// metrics over the window, plus the window's position in simulated time.
// Windows are measured in accesses (summed over cores), so a run of A
// accesses per core on C cores emits about A*C/Telemetry.Interval
// windows regardless of how the cores interleave.
type Interval struct {
	// Index numbers windows from 0 in emission order.
	Index uint64
	// StartCycles/EndCycles bound the window in simulated time (the
	// slowest core's cycle count at open/close).
	StartCycles, EndCycles uint64
	// Accesses is the number of demand references in the window.
	Accesses uint64
	// L3Accesses/L3Misses are the window's LLC traffic.
	L3Accesses, L3Misses uint64
	// Writebacks counts victim writes into the LLC (dirty + clean);
	// Fills counts demand data-fills; both are the per-interval series
	// behind the paper's Fig. 15-style write decomposition.
	Writebacks, Fills uint64
	// RedundantFills is the profiler's redundant-fill delta; zero unless
	// Config.Profile is set.
	RedundantFills uint64
	// LoopBlocks counts fetches the inclusion controller classified as
	// loop-blocks (FetchResult.Loop) in the window.
	LoopBlocks uint64
	// TagOnlyUpdates counts LAP-style tag-only writes in the window.
	TagOnlyUpdates uint64
	// Bypasses counts accesses a bypass predictor diverted around the
	// LLC in the window (dead-write bypasses, non-reused fills, and
	// dropped clean copy-backs combined).
	Bypasses uint64
	// DynamicNJ is the LLC dynamic energy dissipated in the window, in
	// nanojoules (raw meter delta — warmup baselines are subtracted only
	// in the run's final Result, not per window).
	DynamicNJ float64
}

// Telemetry is the epoch/interval observation hook for RunObserved. It
// is deliberately NOT part of Config: memo keys across the tree embed
// Config by value and rely on its comparability, which a func field
// would break at compile time. A nil *Telemetry is "no observation" —
// the simulator's hot loop then pays exactly one nil check per access.
type Telemetry struct {
	// Interval is the window length in accesses summed over cores;
	// 0 disables OnInterval (warmup/done hooks still fire).
	Interval uint64
	// OnInterval receives each closed window, including the final
	// partial one (skipped when empty).
	OnInterval func(Interval)
	// OnWarmupEnd fires once when every core has finished its warmup
	// quota (never fires when Config.WarmupAccessesPerCore is 0).
	OnWarmupEnd func(cycles uint64)
	// OnDone fires after the last access with the run's final simulated
	// cycle count (warmup included — this is timeline time, not the
	// baseline-subtracted Result.Cycles).
	OnDone func(cycles uint64)
}

// telemetryState is the machine-side bookkeeping for one Telemetry.
type telemetryState struct {
	cfg      *Telemetry
	idx      uint64
	accSeen  uint64
	winStart uint64
	last     core.Metrics
	lastLoop uint64
	lastRed  uint64
	lastDyn  float64
}

// maxCycles is the slowest core's raw cycle count — the timeline clock.
func (m *machine) maxCycles() uint64 {
	var max float64
	for _, c := range m.cores {
		if c.cycles > max {
			max = c.cycles
		}
	}
	return uint64(max)
}

// telTick advances the telemetry window after one access; called from
// the main loop only when telemetry is attached.
func (m *machine) telTick() {
	t := m.tel
	t.accSeen++
	if t.cfg.Interval > 0 && t.accSeen >= t.cfg.Interval {
		m.telFlush(false)
	}
}

// telFlush closes the current window and reports its deltas. final
// flushes the trailing partial window at end of run (skipped if empty).
func (m *machine) telFlush(final bool) {
	t := m.tel
	if final && t.accSeen == 0 {
		return
	}
	if t.cfg.Interval == 0 && final {
		return
	}
	end := m.maxCycles()
	met := m.ctx.Met
	iv := Interval{
		Index:          t.idx,
		StartCycles:    t.winStart,
		EndCycles:      end,
		Accesses:       t.accSeen,
		L3Accesses:     met.L3Accesses - t.last.L3Accesses,
		L3Misses:       met.L3Misses - t.last.L3Misses,
		Writebacks:     (met.WritesDirty + met.WritesClean) - (t.last.WritesDirty + t.last.WritesClean),
		Fills:          met.WritesFill - t.last.WritesFill,
		LoopBlocks:     m.loopFills - t.lastLoop,
		TagOnlyUpdates: met.TagOnlyUpdates - t.last.TagOnlyUpdates,
		Bypasses:       (met.BypassedWrites + met.BypassedFills) - (t.last.BypassedWrites + t.last.BypassedFills),
	}
	if p := m.ctx.Prof; p != nil {
		iv.RedundantFills = p.RedundantFills - t.lastRed
		t.lastRed = p.RedundantFills
	}
	if e := m.ctx.E; e != nil {
		dyn := e.DynamicNJ()
		iv.DynamicNJ = dyn - t.lastDyn
		t.lastDyn = dyn
	}
	t.last = *met
	t.lastLoop = m.loopFills
	t.idx++
	t.accSeen = 0
	t.winStart = end
	if t.cfg.OnInterval != nil {
		t.cfg.OnInterval(iv)
	}
}

// telWarmupEnd resets profiler deltas (maybeEndWarmup swaps in a fresh
// profiler) and fires the warmup hook.
func (m *machine) telWarmupEnd() {
	t := m.tel
	t.lastRed = 0
	if t.cfg.OnWarmupEnd != nil {
		t.cfg.OnWarmupEnd(m.maxCycles())
	}
}

// TraceTelemetry builds a Telemetry that renders the run as a
// simulated-time timeline on tr: a "run" span covering the whole run on
// its own track (named after the run), a nested "warmup" span, one
// nested "epoch" span per interval, and per-interval counter samples
// (accesses, misses, writebacks, fills, redundant_fills, loop_blocks,
// bypasses)
// at each window close. Returns nil — telemetry fully off — when the
// tracer is nil or disabled.
func TraceTelemetry(tr *otrace.Tracer, name string, interval uint64) *Telemetry {
	if !tr.Enabled() {
		return nil
	}
	runID := tr.NextID()
	tr.NameTrack(otrace.PidSim, runID, name)
	warmupEnd := int64(-1)
	return &Telemetry{
		Interval: interval,
		OnInterval: func(iv Interval) {
			id := tr.NextID()
			tr.Emit(otrace.Event{
				Phase: otrace.PhaseSpan, Name: "epoch", Pid: otrace.PidSim,
				Track: runID, TS: int64(iv.StartCycles),
				Dur: int64(iv.EndCycles - iv.StartCycles),
				ID:  id, Parent: runID,
				Attrs: []otrace.Attr{
					otrace.Uint("index", iv.Index),
					otrace.Uint("accesses", iv.Accesses),
				},
			})
			ts := int64(iv.EndCycles)
			for _, c := range []struct {
				series string
				v      uint64
			}{
				{"accesses", iv.Accesses},
				{"misses", iv.L3Misses},
				{"writebacks", iv.Writebacks},
				{"fills", iv.Fills},
				{"redundant_fills", iv.RedundantFills},
				{"loop_blocks", iv.LoopBlocks},
				{"bypasses", iv.Bypasses},
			} {
				tr.Emit(otrace.Event{
					Phase: otrace.PhaseCounter, Name: c.series,
					Pid: otrace.PidSim, Track: runID, TS: ts,
					Attrs: []otrace.Attr{otrace.Uint(c.series, c.v)},
				})
			}
		},
		OnWarmupEnd: func(cycles uint64) { warmupEnd = int64(cycles) },
		OnDone: func(cycles uint64) {
			// The warmup span always exists so timelines have a stable
			// shape; zero-length when the run had no warmup phase.
			w := warmupEnd
			if w < 0 {
				w = 0
			}
			tr.Emit(otrace.Event{
				Phase: otrace.PhaseSpan, Name: "warmup", Pid: otrace.PidSim,
				Track: runID, TS: 0, Dur: w,
				ID: tr.NextID(), Parent: runID,
			})
			tr.Emit(otrace.Event{
				Phase: otrace.PhaseSpan, Name: "run", Pid: otrace.PidSim,
				Track: runID, TS: 0, Dur: int64(cycles), ID: runID,
				Attrs: []otrace.Attr{otrace.Str("name", name)},
			})
		},
	}
}
