package sim

import (
	"repro/internal/obs/journal"
)

// JournalTelemetry builds a Telemetry that streams the run's life as
// journal events: one "interval" event per closed telemetry window
// (misses, loop-block classifications, bypasses, fills, per-window
// dynamic energy), plus "run.warmup" when the measurement window opens.
// run and traceID stamp every event for correlation with the request
// log and /v1/trace/{id}.
//
// Returns nil — telemetry fully off, the simulator pays one nil check
// per access — when no subscriber is live (j.Streaming() is one atomic
// load). Like every Telemetry, this is observation only: it never
// touches Config, memo keys, or results, so observed and unobserved
// runs stay byte-identical.
func JournalTelemetry(j *journal.Journal, run, traceID string, interval uint64) *Telemetry {
	if !j.Streaming() {
		return nil
	}
	return &Telemetry{
		Interval: interval,
		OnInterval: func(iv Interval) {
			j.Emit(journal.Event{
				Kind: "interval", Run: run, Trace: traceID,
				Fields: journal.F(
					"index", iv.Index,
					"start_cycles", iv.StartCycles,
					"end_cycles", iv.EndCycles,
					"accesses", iv.Accesses,
					"l3_accesses", iv.L3Accesses,
					"l3_misses", iv.L3Misses,
					"writebacks", iv.Writebacks,
					"fills", iv.Fills,
					"redundant_fills", iv.RedundantFills,
					"loop_blocks", iv.LoopBlocks,
					"tag_only_updates", iv.TagOnlyUpdates,
					"bypasses", iv.Bypasses,
					"dynamic_nj", iv.DynamicNJ,
				),
			})
		},
		OnWarmupEnd: func(cycles uint64) {
			j.Emit(journal.Event{
				Kind: "run.warmup", Run: run, Trace: traceID,
				Fields: journal.F("cycles", cycles),
			})
		},
	}
}

// MergeTelemetry fans one run's observation out to multiple sinks (e.g.
// a request trace and the live journal at once). Nil entries are
// skipped; returns nil when every entry is nil. Interval length is
// taken from the first non-nil entry with a nonzero Interval.
func MergeTelemetry(tels ...*Telemetry) *Telemetry {
	live := tels[:0]
	for _, t := range tels {
		if t != nil {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	m := &Telemetry{}
	for _, t := range live {
		if t.Interval > 0 {
			m.Interval = t.Interval
			break
		}
	}
	snap := append([]*Telemetry(nil), live...)
	m.OnInterval = func(iv Interval) {
		for _, t := range snap {
			if t.OnInterval != nil {
				t.OnInterval(iv)
			}
		}
	}
	m.OnWarmupEnd = func(c uint64) {
		for _, t := range snap {
			if t.OnWarmupEnd != nil {
				t.OnWarmupEnd(c)
			}
		}
	}
	m.OnDone = func(c uint64) {
		for _, t := range snap {
			if t.OnDone != nil {
				t.OnDone(c)
			}
		}
	}
	return m
}
