package sim

// Serialization of the engine-level snapshot types used by persistent
// sampling profiles (internal/sample): detached cache-hierarchy states
// and per-interval telemetry signatures. The run-level machine codec
// lives in checkpoint.go; these are the pieces a profile stores instead
// of a whole machine.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/checkpoint/wire"
)

// NCores reports how many per-core cache pairs the snapshot holds.
func (s *MachineState) NCores() int { return len(s.l1) }

// Encode appends the snapshot to enc (per-core L1+L2 states, then L3).
func (s *MachineState) Encode(enc *wire.Encoder) {
	enc.U64(uint64(len(s.l1)))
	for i := range s.l1 {
		s.l1[i].Encode(enc)
		s.l2[i].Encode(enc)
	}
	s.l3.Encode(enc)
}

// DecodeMachineState reads one snapshot back. Geometry is validated
// against the decoded arrays' own framing; restoring into a machine of
// a different geometry still panics at Restore time (profiles are
// digest-keyed by config, so that is a caller bug, not data corruption).
func DecodeMachineState(d *wire.Decoder) (*MachineState, error) {
	n := d.Length(4)
	if err := d.Err(); err != nil {
		return nil, err
	}
	s := &MachineState{
		l1: make([]*cache.State, n),
		l2: make([]*cache.State, n),
	}
	for i := 0; i < n; i++ {
		var err error
		if s.l1[i], err = cache.DecodeSnapshotState(d); err != nil {
			return nil, fmt.Errorf("core %d L1: %w", i, err)
		}
		if s.l2[i], err = cache.DecodeSnapshotState(d); err != nil {
			return nil, fmt.Errorf("core %d L2: %w", i, err)
		}
	}
	l3, err := cache.DecodeSnapshotState(d)
	if err != nil {
		return nil, fmt.Errorf("L3: %w", err)
	}
	s.l3 = l3
	return s, nil
}

// EncodeInterval appends one telemetry signature to enc. The reflection
// codec pins the field set: adding a field of any type other than
// uint64/float64 to Interval panics here (update the codec), and
// decoding an artifact written with a different field count errors
// (the profile is rebuilt).
func EncodeInterval(enc *wire.Encoder, iv *Interval) { enc.NumStruct(iv) }

// DecodeInterval reads one telemetry signature.
func DecodeInterval(d *wire.Decoder) (Interval, error) {
	var iv Interval
	d.NumStruct(&iv)
	return iv, d.Err()
}
