package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
)

// TestConfigJSONRoundTrip pins the property lapserved relies on: a
// sim.Config survives encode→decode exactly. Every knob is set to a
// non-zero, non-default value so a field that stops marshalling (an
// unexported rename, a json:"-" tag) breaks this test rather than
// silently splitting server cache keys or dropping request overrides.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig().WithHybridL3()
	cfg.Cores = 2
	cfg.L3Replacement = cache.ReplRRIP
	cfg.L3Tech = energy.STTRAM().WithWriteReadRatio(4)
	cfg.PrefetchDegree = 2
	cfg.UseDRAM = true
	cfg.Coherent = true
	cfg.TrackMOESI = true
	cfg.Profile = true
	cfg.MaxAccessesPerCore = 123
	cfg.WarmupAccessesPerCore = 45

	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("config did not round-trip:\n in: %+v\nout: %+v", cfg, back)
	}
	// Round-tripped configs must also compare equal as memo-key material.
	if cfg != back {
		t.Fatal("round-tripped config is not ==-equal to the original")
	}
}

// TestConfigFieldsAllExported rejects unexported fields, which
// encoding/json would silently drop — a decoded config would then
// diverge from the encoded one without any error.
func TestConfigFieldsAllExported(t *testing.T) {
	tp := reflect.TypeOf(Config{})
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() {
			t.Errorf("Config.%s is unexported: it will not survive JSON", f.Name)
		}
		if tag := f.Tag.Get("json"); tag == "-" {
			t.Errorf("Config.%s is json:\"-\": it will not survive JSON", f.Name)
		}
	}
}
