package sim

import (
	"testing"

	"repro/internal/core"
)

// TestTelemetryDeterministicAcrossBanks pins the contract the sampled
// simulator's profiling pass depends on: interval signatures must be
// byte-identical regardless of the Config.Banks host-parallelism
// setting, and must sum exactly to the full run's totals. Banks > 1
// shards cores across worker goroutines for exact runs; telemetry-
// observed runs take the serial path, and that fallback (plus the
// shared-LLC ordering guarantee behind it) is what keeps signatures
// stable. A diff here means interval fingerprints — and therefore
// cluster assignments and sampled results — would depend on a knob
// that is documented never to change simulation results.
func TestTelemetryDeterministicAcrossBanks(t *testing.T) {
	const perCore = 20000
	collect := func(banks int) ([]Interval, Result) {
		cfg := smallCfg()
		cfg.Banks = banks
		var ivs []Interval
		tel := &Telemetry{
			Interval:   4000,
			OnInterval: func(iv Interval) { ivs = append(ivs, iv) },
		}
		r := RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, perCore), tel)
		return ivs, r
	}

	ivsSerial, resSerial := collect(0)
	for _, banks := range []int{1, 2, 4} {
		ivs, res := collect(banks)
		if len(ivs) != len(ivsSerial) {
			t.Fatalf("banks=%d emitted %d intervals, serial emitted %d", banks, len(ivs), len(ivsSerial))
		}
		for i := range ivs {
			if ivs[i] != ivsSerial[i] {
				t.Fatalf("banks=%d interval %d differs:\n got %+v\nwant %+v", banks, i, ivs[i], ivsSerial[i])
			}
		}
		if res.Met != resSerial.Met {
			t.Fatalf("banks=%d metrics differ from serial run", banks)
		}
	}

	// The signatures must also tile the run exactly: per-series sums
	// equal the full-run totals the sampled extrapolation reconstructs.
	var acc, l3acc, misses, wb, fills, loops, tagOnly uint64
	for _, iv := range ivsSerial {
		acc += iv.Accesses
		l3acc += iv.L3Accesses
		misses += iv.L3Misses
		wb += iv.Writebacks
		fills += iv.Fills
		loops += iv.LoopBlocks
		tagOnly += iv.TagOnlyUpdates
	}
	if acc != 2*perCore {
		t.Fatalf("interval accesses sum to %d, want %d", acc, 2*perCore)
	}
	m := resSerial.Met
	for _, c := range []struct {
		name      string
		got, want uint64
	}{
		{"L3Accesses", l3acc, m.L3Accesses},
		{"L3Misses", misses, m.L3Misses},
		{"Writebacks", wb, m.WritesDirty + m.WritesClean},
		{"Fills", fills, m.WritesFill},
		{"TagOnlyUpdates", tagOnly, m.TagOnlyUpdates},
	} {
		if c.got != c.want {
			t.Fatalf("%s: interval sum %d != run total %d", c.name, c.got, c.want)
		}
	}
}
