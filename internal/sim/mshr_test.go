package sim

import (
	"testing"

	"repro/internal/core"
)

// TestMSHROffByDefault pins the opt-in contract: the default config
// (MSHREntries = 0) runs the pre-MSHR model and reports no MSHR events.
func TestMSHROffByDefault(t *testing.T) {
	r := Run(smallCfg(), core.NewLAP(), sourcesFor(writy(), 2, 20000))
	if r.Met.MSHRMerges != 0 || r.Met.MSHRStalls != 0 {
		t.Fatalf("default run reported MSHR events: merges=%d stalls=%d",
			r.Met.MSHRMerges, r.Met.MSHRStalls)
	}
}

// TestMSHRBoundsMissConcurrency checks the model does what it claims on
// a streaming workload whose misses overlap in time: a tiny table
// stalls, and the added stall cycles slow the run down relative to the
// unbounded default.
func TestMSHRBoundsMissConcurrency(t *testing.T) {
	cfg := smallCfg()
	free := Run(cfg, core.NewLAP(), sourcesFor(writy(), 2, 20000))
	cfg.MSHREntries = 1
	tight := Run(cfg, core.NewLAP(), sourcesFor(writy(), 2, 20000))
	if tight.Met.MSHRStalls == 0 {
		t.Fatal("1-entry MSHR never stalled on a streaming workload")
	}
	if tight.Met.Cycles <= free.Met.Cycles {
		t.Fatalf("MSHR stalls did not cost cycles: bounded %d <= unbounded %d",
			tight.Met.Cycles, free.Met.Cycles)
	}
	// Same access stream either way: the miss traffic itself must not
	// change, only its timing.
	if tight.Met.L3Misses != free.Met.L3Misses {
		t.Fatalf("MSHR changed miss counts: %d vs %d", tight.Met.L3Misses, free.Met.L3Misses)
	}
	if tight.Met.MemReads+tight.Met.MSHRMerges < free.Met.MemReads {
		t.Fatalf("memory reads lost: bounded %d+%d merges vs unbounded %d",
			tight.Met.MemReads, tight.Met.MSHRMerges, free.Met.MemReads)
	}
}

// TestMSHRDeterministic pins repeatability with the table enabled.
func TestMSHRDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.MSHREntries = 4
	a := Run(cfg, core.NewLAP(), sourcesFor(writy(), 2, 20000))
	b := Run(cfg, core.NewLAP(), sourcesFor(writy(), 2, 20000))
	if a.Met != b.Met {
		t.Fatal("MSHR-enabled simulation not deterministic")
	}
}
