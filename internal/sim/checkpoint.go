package sim

// Machine checkpointing: serialize the *complete* mutable state of a
// mid-run machine — caches, controller, counters, timing horizons, and
// per-core progress — so a later process can rebuild the same config
// and sources, restore the snapshot, skip each source forward by the
// accesses its core already executed, and continue the serial loop as
// if nothing happened. Resumed results are byte-identical to an
// uninterrupted run because the snapshot is observational: it is taken
// between two accesses of the unchanged serial schedule and restores
// every value that schedule reads, including the float64 cycle counts
// bit-for-bit.
//
// What is deliberately NOT serialized: per-core decode buffers (the
// buffered-but-unexecuted accesses re-decode identically from the
// deterministic sources), and the state behind ineligible
// configurations (coherence buses, MOESI directories, per-block
// profilers, DRAM row buffers, telemetry windows) — those
// configurations silently run cold instead.

import (
	"fmt"

	"repro/internal/checkpoint/wire"
	"repro/internal/core"
	"repro/internal/trace"
)

// machinePayloadVersion pins the layout of the machine-state payload
// inside a checkpoint entry (the store's FormatVersion pins the
// envelope).
const machinePayloadVersion = 1

// CheckpointSink receives one encoded machine snapshot per checkpoint
// boundary. interval is the boundary ordinal (seen/CheckpointEvery),
// accesses the total executed by then. payload aliases an internal
// buffer and is only valid for the duration of the call; persist it
// (the checkpoint store copies) before returning. Sink errors are the
// sink's problem by design: durability failures must never fail a run.
type CheckpointSink func(interval, accesses uint64, payload []byte)

// ckState is the live checkpoint schedule attached to a machine.
type ckState struct {
	every uint64
	seen  uint64 // accesses executed so far, including a restored prefix
	next  uint64 // the access count at which the next snapshot fires
	sink  CheckpointSink
	enc   wire.Encoder
}

// checkpointableCfg reports whether this machine's full mutable state
// is covered by the codec. Ineligible configurations run cold.
func (m *machine) checkpointableCfg() bool {
	return !m.cfg.Coherent && !m.cfg.TrackMOESI && !m.cfg.Profile && !m.cfg.UseDRAM &&
		m.cfg.SampleInterval == 0 && m.tel == nil && core.CanCheckpoint(m.ctrl)
}

// RunCheckpointed is Run with durability: when resume is non-empty the
// machine state is restored from it (the caller guarantees, via digest
// keying, that cfg, controller, and sources match the run that wrote
// it), and when sink is non-nil and the configuration is eligible a
// snapshot is delivered every cfg.CheckpointEvery executed accesses.
// The returned result is byte-identical to Run on the same inputs,
// resumed or not. An error means the resume payload could not be
// applied; the machine and sources are then in an undefined state and
// the caller must rebuild both and run cold.
func RunCheckpointed(cfg Config, ctrl core.Controller, srcs []trace.Source, resume []byte, sink CheckpointSink) (Result, error) {
	if len(srcs) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d sources for %d cores", len(srcs), cfg.Cores))
	}
	m := build(cfg, ctrl, srcs)
	if len(resume) > 0 {
		if err := m.restoreCheckpoint(resume); err != nil {
			return Result{}, err
		}
	}
	if sink != nil && cfg.CheckpointEvery > 0 && m.checkpointableCfg() {
		var seen uint64
		for _, c := range m.cores {
			seen += c.nAcc
		}
		m.ck = &ckState{
			every: cfg.CheckpointEvery,
			seen:  seen,
			next:  (seen/cfg.CheckpointEvery + 1) * cfg.CheckpointEvery,
			sink:  sink,
		}
	}
	m.loop()
	return m.result(), nil
}

// checkpointNow snapshots the machine and hands it to the sink.
func (m *machine) checkpointNow() {
	ck := m.ck
	ck.enc.Reset()
	m.encodeCheckpoint(&ck.enc)
	ck.sink(ck.seen/ck.every, ck.seen, ck.enc.Bytes())
}

// encodeCheckpoint serializes the machine's full mutable state.
func (m *machine) encodeCheckpoint(e *wire.Encoder) {
	e.Byte(machinePayloadVersion)
	e.Str(m.ctrl.Name())
	e.U64(uint64(len(m.cores)))
	for _, c := range m.cores {
		e.F64(c.cycles)
		e.U64(c.instrs)
		e.U64(c.nAcc)
		e.Bool(c.done)
	}

	// Aggregate counters and timing state.
	m.ctx.Met.EncodeState(e)
	e.U64(m.ctx.E.TagAccesses)
	e.U64(uint64(len(m.ctx.E.Regions)))
	for i := range m.ctx.E.Regions {
		e.U64(m.ctx.E.Regions[i].Reads)
		e.U64(m.ctx.E.Regions[i].Writes)
	}
	m.ctx.Banks.EncodeState(e)
	e.Bool(m.ctx.MSHR != nil)
	if m.ctx.MSHR != nil {
		m.ctx.MSHR.EncodeState(e)
	}
	e.U64(m.loopFills)

	// Warmup baselines (zero-valued when the window has not opened).
	e.Bool(m.warmupDone)
	m.baseMet.EncodeState(e)
	e.U64(m.baseMeter.tag)
	for i := range m.baseMeter.reads {
		e.U64(m.baseMeter.reads[i])
		e.U64(m.baseMeter.writes[i])
	}
	e.F64s(m.baseCycles)
	e.U64s(m.baseInstrs)
	e.U64s(m.baseBankOps)

	// Cache hierarchy, then the controller's policy state.
	for _, c := range m.cores {
		c.l1.EncodeSnapshot(e)
		c.l2.EncodeSnapshot(e)
	}
	m.ctx.L3.EncodeSnapshot(e)
	m.ctrl.(core.StateCodec).EncodeState(e)
}

// restoreCheckpoint applies a payload written by encodeCheckpoint on an
// identically configured machine, then fast-forwards every source past
// the accesses its core already executed. Any mismatch — payload
// version, controller name, core count, cache geometry — is an error;
// the caller degrades to cold start with fresh sources.
func (m *machine) restoreCheckpoint(payload []byte) error {
	if !m.checkpointableCfg() {
		return fmt.Errorf("sim: configuration is not checkpointable")
	}
	d := wire.NewDecoder(payload)
	if v := d.Byte(); v != machinePayloadVersion {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint payload version %d, want %d", v, machinePayloadVersion)
	}
	if name := d.Str(); name != m.ctrl.Name() {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint is for controller %q, machine runs %q", name, m.ctrl.Name())
	}
	if n := d.U64(); n != uint64(len(m.cores)) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint has %d cores, machine has %d", n, len(m.cores))
	}
	for _, c := range m.cores {
		c.cycles = d.F64()
		c.instrs = d.U64()
		c.nAcc = d.U64()
		c.done = d.Bool()
	}

	if err := m.ctx.Met.DecodeState(d); err != nil {
		return err
	}
	m.ctx.E.TagAccesses = d.U64()
	if n := d.U64(); n != uint64(len(m.ctx.E.Regions)) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint has %d energy regions, machine has %d", n, len(m.ctx.E.Regions))
	}
	for i := range m.ctx.E.Regions {
		m.ctx.E.Regions[i].Reads = d.U64()
		m.ctx.E.Regions[i].Writes = d.U64()
	}
	if err := m.ctx.Banks.DecodeState(d); err != nil {
		return err
	}
	hasMSHR := d.Bool()
	if hasMSHR != (m.ctx.MSHR != nil) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint MSHR presence %v, machine %v", hasMSHR, m.ctx.MSHR != nil)
	}
	if hasMSHR {
		if err := m.ctx.MSHR.DecodeState(d); err != nil {
			return err
		}
	}
	m.loopFills = d.U64()

	m.warmupDone = d.Bool()
	if err := m.baseMet.DecodeState(d); err != nil {
		return err
	}
	m.baseMeter.tag = d.U64()
	for i := range m.baseMeter.reads {
		m.baseMeter.reads[i] = d.U64()
		m.baseMeter.writes[i] = d.U64()
	}
	m.baseCycles = d.F64s()
	m.baseInstrs = d.U64s()
	m.baseBankOps = d.U64s()
	if m.warmupDone &&
		(len(m.baseCycles) != len(m.cores) || len(m.baseInstrs) != len(m.cores) ||
			len(m.baseBankOps) != len(m.ctx.Banks.Ops())) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("sim: checkpoint warmup baselines have wrong shape")
	}

	for _, c := range m.cores {
		if err := c.l1.RestoreSnapshot(d); err != nil {
			return err
		}
		if err := c.l2.RestoreSnapshot(d); err != nil {
			return err
		}
	}
	if err := m.ctx.L3.RestoreSnapshot(d); err != nil {
		return err
	}
	if err := m.ctrl.(core.StateCodec).DecodeState(d); err != nil {
		return err
	}
	if err := d.Err(); err != nil {
		return err
	}
	if len(d.Rest()) != 0 {
		return fmt.Errorf("sim: checkpoint payload has %d trailing bytes", len(d.Rest()))
	}

	// Fast-forward each (freshly rebuilt, deterministic) source past the
	// prefix its core already executed. Decode buffers start empty; any
	// accesses that were buffered-but-unexecuted at snapshot time simply
	// re-decode. A core that exhausted its stream skips short and stays
	// done via its restored flag.
	for _, c := range m.cores {
		if c.nAcc > 0 {
			trace.Skip(c.src, c.nAcc)
		}
	}
	return nil
}
