package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// bankedVariants is the configuration matrix the equivalence tests sweep:
// every combination must produce results byte-identical to the serial
// loop at any bank count.
func bankedVariants() []struct {
	name string
	cfg  Config
	ctrl func() core.Controller
	b    workload.Benchmark
} {
	base := smallCfg()
	base.Cores = 4

	warm := base
	warm.WarmupAccessesPerCore = 5000

	pf := base
	pf.PrefetchDegree = 2

	dr := base
	dr.UseDRAM = true

	mshr := base
	mshr.MSHREntries = 8

	hyb := base.WithHybridL3()

	return []struct {
		name string
		cfg  Config
		ctrl func() core.Controller
		b    workload.Benchmark
	}{
		{"noni", base, func() core.Controller { return core.NewNonInclusive() }, loopy()},
		{"exclusive", base, func() core.Controller { return core.NewExclusive() }, loopy()},
		{"flexclusion", base, func() core.Controller { return core.NewFLEXclusion() }, writy()},
		{"lap", base, func() core.Controller { return core.NewLAP() }, loopy()},
		{"lap-dwb", base, func() core.Controller { return core.NewDeadWriteBypass(core.NewLAP()) }, writy()},
		{"lhybrid", hyb, func() core.Controller { return core.NewLhybrid() }, loopy()},
		{"lap-warmup", warm, func() core.Controller { return core.NewLAP() }, loopy()},
		{"lap-prefetch", pf, func() core.Controller { return core.NewLAP() }, loopy()},
		{"exclusive-dram", dr, func() core.Controller { return core.NewExclusive() }, writy()},
		{"lap-mshr", mshr, func() core.Controller { return core.NewLAP() }, loopy()},
	}
}

// TestBankedMatchesSerial pins the banked engine's core guarantee: for
// every eligible configuration, running with Banks=4 or Banks=8 yields a
// Result deeply equal to the serial loop's.
func TestBankedMatchesSerial(t *testing.T) {
	const accesses = 20000
	for _, v := range bankedVariants() {
		t.Run(v.name, func(t *testing.T) {
			serial := Run(v.cfg, v.ctrl(), sourcesFor(v.b, v.cfg.Cores, accesses))
			for _, banks := range []int{4, 8} {
				cfg := v.cfg
				cfg.Banks = banks
				got := Run(cfg, v.ctrl(), sourcesFor(v.b, cfg.Cores, accesses))
				if !reflect.DeepEqual(serial, got) {
					t.Fatalf("Banks=%d diverges from serial:\nserial: %+v\nbanked: %+v",
						banks, serial, got)
				}
			}
		})
	}
}

// TestBankedIneligibleFallsBack checks that configurations the banked
// engine cannot handle (cross-core access walks) still run and still
// match their own serial results — the Banks knob must never change
// behaviour, only scheduling.
func TestBankedIneligibleFallsBack(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 4
	cfg.Coherent = true
	serial := Run(cfg, core.NewLAP(), sourcesFor(loopy(), cfg.Cores, 10000))
	cfg.Banks = 4
	banked := Run(cfg, core.NewLAP(), sourcesFor(loopy(), cfg.Cores, 10000))
	if !reflect.DeepEqual(serial, banked) {
		t.Fatal("coherent run changed under Banks=4 (fallback broken)")
	}

	// The inclusive controller registers a back-invalidation hook; it must
	// fall back too.
	cfg2 := smallCfg()
	cfg2.Cores = 4
	serial2 := Run(cfg2, core.NewInclusive(), sourcesFor(loopy(), cfg2.Cores, 10000))
	cfg2.Banks = 4
	banked2 := Run(cfg2, core.NewInclusive(), sourcesFor(loopy(), cfg2.Cores, 10000))
	if !reflect.DeepEqual(serial2, banked2) {
		t.Fatal("inclusive run changed under Banks=4 (fallback broken)")
	}
}

// TestBankedRaceHammer runs many short banked simulations back to back.
// Its value is under `go test -race`: the ordered-exclusion protocol's
// atomics must establish happens-before for every shared-state access,
// so any gate bug shows up as a detected race here.
func TestBankedRaceHammer(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 8
	cfg.Banks = 4
	for round := 0; round < 6; round++ {
		ctrl := core.Controller(core.NewLAP())
		if round%2 == 1 {
			ctrl = core.NewExclusive()
		}
		r := Run(cfg, ctrl, sourcesFor(loopy(), cfg.Cores, 4000))
		if r.Met.L3Accesses == 0 {
			t.Fatalf("round %d: banked run performed no LLC accesses", round)
		}
	}
}

// TestBankedManyBankCounts sweeps bank counts beyond the core count to
// make sure clamping works and results stay pinned.
func TestBankedManyBankCounts(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 3
	serial := Run(cfg, core.NewLAP(), sourcesFor(loopy(), cfg.Cores, 8000))
	for _, banks := range []int{2, 3, 5, 16} {
		c := cfg
		c.Banks = banks
		got := Run(c, core.NewLAP(), sourcesFor(loopy(), cfg.Cores, 8000))
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("Banks=%d diverges from serial", banks)
		}
	}
}

func ExampleConfig_banks() {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Banks = 4
	r := Run(cfg, core.NewLAP(), sourcesFor(loopy(), cfg.Cores, 2000))
	fmt.Println(r.Policy)
	// Output: LAP
}
