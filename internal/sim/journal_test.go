package sim

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs/journal"
)

// TestJournalTelemetry runs a small simulation through the journal
// bridge and asserts the streamed shape: one "interval" event per
// telemetry window with delta fields (including the per-window dynamic
// energy), a "run.warmup" marker, and run/trace correlation on every
// event — plus the gating contract (no subscriber → nil telemetry).
func TestJournalTelemetry(t *testing.T) {
	j := journal.New(256, nil)
	if JournalTelemetry(j, "w|p", "req-000001", 1000) != nil {
		t.Fatal("subscriber-free journal produced telemetry")
	}
	if JournalTelemetry(nil, "w|p", "req-000001", 1000) != nil {
		t.Fatal("nil journal produced telemetry")
	}

	sub := j.Subscribe(0, 0, journal.Filter{})
	defer sub.Close()
	cfg := smallCfg()
	cfg.WarmupAccessesPerCore = 4000
	tel := JournalTelemetry(j, "w|p", "req-000001", 8000)
	if tel == nil {
		t.Fatal("subscribed journal produced nil telemetry")
	}
	r := RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 20000), tel)
	if r.Met.L3Accesses == 0 {
		t.Fatal("degenerate run")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var evs []journal.Event
	wantIntervals := 2 * 20000 / 8000
	for len(evs) < wantIntervals+1 {
		batch, _, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v (have %d events)", err, len(evs))
		}
		evs = append(evs, batch...)
	}

	intervals, warmups := 0, 0
	var accSum uint64
	var dynSum float64
	for _, e := range evs {
		if e.Run != "w|p" || e.Trace != "req-000001" {
			t.Fatalf("event missing correlation: %+v", e)
		}
		switch e.Kind {
		case "interval":
			if e.Fields["index"].(uint64) != uint64(intervals) {
				t.Fatalf("interval %d has index %v", intervals, e.Fields["index"])
			}
			accSum += e.Fields["accesses"].(uint64)
			dynSum += e.Fields["dynamic_nj"].(float64)
			if _, ok := e.Fields["l3_misses"]; !ok {
				t.Fatalf("interval event missing l3_misses: %v", e.Fields)
			}
			intervals++
		case "run.warmup":
			warmups++
			if e.Fields["cycles"].(uint64) == 0 {
				t.Fatal("warmup event with zero cycles")
			}
		default:
			t.Fatalf("unexpected kind %q", e.Kind)
		}
	}
	if intervals != wantIntervals {
		t.Fatalf("got %d interval events, want %d", intervals, wantIntervals)
	}
	if warmups != 1 {
		t.Fatalf("got %d warmup events, want 1", warmups)
	}
	if accSum != 2*20000 {
		t.Fatalf("interval accesses sum to %d, want %d", accSum, 2*20000)
	}
	if dynSum <= 0 {
		t.Fatal("per-interval dynamic energy never accumulated")
	}
}

// TestJournalTelemetryObservedMatchesUnobserved: streaming must never
// perturb results — same discipline as every other Telemetry.
func TestJournalTelemetryObservedMatchesUnobserved(t *testing.T) {
	j := journal.New(64, nil)
	sub := j.Subscribe(64, 0, journal.Filter{})
	defer sub.Close()
	cfg := smallCfg()
	plain := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 15000))
	observed := RunObserved(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 15000),
		JournalTelemetry(j, "w|p", "", 1000))
	if plain.Met != observed.Met {
		t.Fatalf("journal streaming changed the simulation:\nplain    %+v\nobserved %+v", plain.Met, observed.Met)
	}
}

// TestMergeTelemetry: fan-out to multiple sinks preserves every hook
// and collapses nils.
func TestMergeTelemetry(t *testing.T) {
	if MergeTelemetry(nil, nil) != nil {
		t.Fatal("all-nil merge not nil")
	}
	single := &Telemetry{Interval: 7}
	if MergeTelemetry(nil, single) != single {
		t.Fatal("single-entry merge should return it unchanged")
	}
	var a, b, warm, done int
	m := MergeTelemetry(
		&Telemetry{Interval: 500, OnInterval: func(Interval) { a++ }},
		nil,
		&Telemetry{OnInterval: func(Interval) { b++ }, OnWarmupEnd: func(uint64) { warm++ }, OnDone: func(uint64) { done++ }},
	)
	if m.Interval != 500 {
		t.Fatalf("merged interval = %d", m.Interval)
	}
	m.OnInterval(Interval{})
	m.OnWarmupEnd(1)
	m.OnDone(2)
	if a != 1 || b != 1 || warm != 1 || done != 1 {
		t.Fatalf("hooks fired a=%d b=%d warm=%d done=%d", a, b, warm, done)
	}
}
