package sim

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestMOESITrackerOnThreadedRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Coherent = true
	cfg.TrackMOESI = true
	// Small shared regions so the threads' windows genuinely overlap
	// within a short run.
	b := workload.Benchmark{
		Name: "sharing", InstrPerAccess: 2, Threaded: true,
		Regions: []workload.Region{
			{Kind: workload.Loop, Blocks: 512, Weight: 0.5, Shared: true},
			{Kind: workload.RMW, Blocks: 256, Weight: 0.3, WriteFrac: 0.6, Shared: true},
			{Kind: workload.Hot, Blocks: 64, Weight: 0.2, WriteFrac: 0.3},
		},
	}
	srcs := ThreadSources(b, cfg.Cores, 30000, 5)
	r := Run(cfg, core.NewLAP(), srcs)
	if r.MOESIViolation != "" {
		t.Fatalf("MOESI invariant violated: %s", r.MOESIViolation)
	}
	if r.MOESI.Reads == 0 || r.MOESI.Writes == 0 {
		t.Fatalf("tracker saw no traffic: %+v", r.MOESI)
	}
	// Shared read-mostly data must produce genuine sharing.
	if r.MOESIOccupancy[coherence.Shared] == 0 {
		t.Fatalf("no Shared-state lines on a shared workload: %v", r.MOESIOccupancy)
	}
	// Dirty shared data produces Owned or Modified lines.
	if r.MOESIOccupancy[coherence.Modified]+r.MOESIOccupancy[coherence.Owned] == 0 {
		t.Fatalf("no dirty coherence states: %v", r.MOESIOccupancy)
	}
	if r.MOESI.CacheSupplies == 0 {
		t.Fatal("no cache-to-cache supplies on shared data")
	}
}

func TestMOESITrackerOffByDefault(t *testing.T) {
	cfg := smallCfg()
	cfg.Coherent = true
	b, _ := workload.ByName("streamcluster")
	r := Run(cfg, core.NewLAP(), ThreadSources(b, cfg.Cores, 5000, 5))
	if r.MOESIOccupancy != nil || r.MOESI.Reads != 0 {
		t.Fatal("MOESI tracker ran without TrackMOESI")
	}
}
