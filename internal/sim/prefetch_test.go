package sim

import (
	"testing"

	"repro/internal/core"
)

func TestPrefetcherOffByDefault(t *testing.T) {
	r := Run(smallCfg(), core.NewNonInclusive(), sourcesFor(writy(), 2, 10000))
	if r.Met.Prefetches != 0 {
		t.Fatal("prefetches issued without PrefetchDegree")
	}
}

func TestPrefetcherHelpsStreams(t *testing.T) {
	base := smallCfg()
	pf := base
	pf.PrefetchDegree = 2
	off := Run(base, core.NewNonInclusive(), sourcesFor(writy(), 2, 40000))
	on := Run(pf, core.NewNonInclusive(), sourcesFor(writy(), 2, 40000))
	if on.Met.Prefetches == 0 {
		t.Fatal("prefetcher idle on a streaming workload")
	}
	// Streaming accesses now hit in the L2 that the prefetcher warmed.
	offMissRate := float64(off.Met.L2Misses) / float64(off.Met.L2Accesses)
	onMissRate := float64(on.Met.L2Misses) / float64(on.Met.L2Accesses)
	if onMissRate >= offMissRate {
		t.Fatalf("L2 demand miss rate did not improve: %.3f -> %.3f", offMissRate, onMissRate)
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("prefetching did not shorten the run: %d -> %d cycles", off.Cycles, on.Cycles)
	}
}

func TestPrefetchTrafficSeesPolicyCosts(t *testing.T) {
	// Under non-inclusion, prefetch fetches that miss the LLC fill it,
	// so prefetching must increase LLC write (fill) traffic.
	base := smallCfg()
	pf := base
	pf.PrefetchDegree = 2
	off := Run(base, core.NewNonInclusive(), sourcesFor(writy(), 2, 30000))
	on := Run(pf, core.NewNonInclusive(), sourcesFor(writy(), 2, 30000))
	if on.Met.WritesFill <= off.Met.WritesFill {
		t.Fatal("prefetch fills invisible to the inclusion controller")
	}
	// Under LAP, prefetches must not create fills either.
	lapOn := Run(pf, core.NewLAP(), sourcesFor(writy(), 2, 30000))
	if lapOn.Met.WritesFill != 0 {
		t.Fatal("LAP filled the LLC on prefetches")
	}
}
