package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The access loop must not allocate: every per-access allocation turns
// into GC pressure multiplied by the hundreds of millions of accesses a
// figure sweep simulates. These tests pin allocs/access at exactly zero
// for every inclusion controller on the parallel-eligible fast path.
// BenchmarkAccessAllocs is additionally parsed by the CI gate (`make ci`
// greps its allocs/op), so renaming it requires updating the Makefile.

// allocMachine builds a machine and fully warms its structures: the
// steady state matters, not cold-start fills of lazily-grown maps.
func allocMachine(ctrl core.Controller, b workload.Benchmark, hybrid bool) (*machine, *coreState, []trace.Access) {
	cfg := smallCfg()
	if hybrid {
		cfg = cfg.WithHybridL3()
	}
	m := build(cfg, ctrl, sourcesFor(b, cfg.Cores, 40000))
	m.loop()
	c := m.cores[0]
	c.done = false
	accs := make([]trace.Access, 4096)
	if n := trace.FillBatch(workload.New(b, 99), accs); n != len(accs) {
		panic("workload source ended early")
	}
	return m, c, accs
}

func allocControllers() map[string]func() core.Controller {
	return map[string]func() core.Controller{
		"NonInclusive":  func() core.Controller { return core.NewNonInclusive() },
		"Exclusive":     func() core.Controller { return core.NewExclusive() },
		"FLEXclusion":   func() core.Controller { return core.NewFLEXclusion() },
		"LAP":           func() core.Controller { return core.NewLAP() },
		"Lhybrid":       func() core.Controller { return core.NewLhybrid() },
		"ReuseDetector": func() core.Controller { return core.NewReuseDetector() },
		"RDCopyback":    func() core.Controller { return core.NewRDCopyback() },
	}
}

// TestAccessAllocsZero fails if any controller's steady-state access
// path allocates at all.
func TestAccessAllocsZero(t *testing.T) {
	for name, mk := range allocControllers() {
		t.Run(name, func(t *testing.T) {
			m, c, accs := allocMachine(mk(), loopy(), name == "Lhybrid")
			i := 0
			got := testing.AllocsPerRun(2000, func() {
				m.step(c, accs[i%len(accs)])
				i++
			})
			if got != 0 {
				t.Fatalf("%s access path allocates %.2f times per access, want 0", name, got)
			}
		})
	}
}

// TestAccessAllocsZeroFunctional pins the functional-warmup access path
// (Ctx.Functional set, stepFunctional) at zero allocations too: sampled
// runs spend most of their accesses there, so a per-access allocation
// would erase the sampling speedup.
func TestAccessAllocsZeroFunctional(t *testing.T) {
	for name, mk := range allocControllers() {
		t.Run(name, func(t *testing.T) {
			m, c, accs := allocMachine(mk(), loopy(), name == "Lhybrid")
			m.ctx.Functional = true
			defer func() { m.ctx.Functional = false }()
			i := 0
			got := testing.AllocsPerRun(2000, func() {
				m.stepFunctional(c, accs[i%len(accs)])
				i++
			})
			if got != 0 {
				t.Fatalf("%s functional access path allocates %.2f times per access, want 0", name, got)
			}
		})
	}
}

// BenchmarkAccessAllocs reports ns/op and allocs/op for a single
// steady-state access on the LAP controller. CI requires its allocs/op
// to be exactly 0.
func BenchmarkAccessAllocs(b *testing.B) {
	m, c, accs := allocMachine(core.NewLAP(), loopy(), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step(c, accs[i%len(accs)])
	}
}

// BenchmarkAccessAllocsFunctional is the functional-mode counterpart;
// the CI alloc gate requires its allocs/op to be exactly 0 as well.
func BenchmarkAccessAllocsFunctional(b *testing.B) {
	m, c, accs := allocMachine(core.NewLAP(), loopy(), false)
	m.ctx.Functional = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.stepFunctional(c, accs[i%len(accs)])
	}
}

// BenchmarkAccessAllocsCompetitors pins the predictor-table competitor
// policies (reuse-detector, rd-copyback) in the same CI alloc gate: the
// sub-benchmark names keep the BenchmarkAccessAllocs prefix the gate
// greps, so their allocs/op must also be exactly 0.
func BenchmarkAccessAllocsCompetitors(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func() core.Controller
	}{
		{"ReuseDetector", func() core.Controller { return core.NewReuseDetector() }},
		{"RDCopyback", func() core.Controller { return core.NewRDCopyback() }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, c, accs := allocMachine(tc.mk(), loopy(), false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.step(c, accs[i%len(accs)])
			}
		})
	}
}
