package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Controller is a factory producing a fresh inclusion controller for one
// run. Controllers carry run state (set-dueling counters), so each
// simulation needs its own instance.
type Controller func() core.Controller

// coreSpaceShift separates the address spaces of multi-programmed cores,
// mirroring the paper's setup of independent benchmark copies per core.
const coreSpaceShift = 50

// MixSources builds one bounded trace source per core for a
// multi-programmed mix, offsetting each core into a disjoint address
// space. accesses bounds the per-core stream length.
func MixSources(mix workload.Mix, accesses uint64, seed uint64) ([]trace.Source, error) {
	benches, err := mix.Benchmarks()
	if err != nil {
		return nil, err
	}
	srcs := make([]trace.Source, len(benches))
	for i, b := range benches {
		gen := workload.New(b, seed+uint64(i)*0x51ed2701)
		srcs[i] = trace.Limit(trace.WithOffset(gen, uint64(i+1)<<coreSpaceShift), accesses)
	}
	return srcs, nil
}

// ThreadSources builds bounded per-thread sources for a multi-threaded
// workload sharing one address space.
func ThreadSources(b workload.Benchmark, threads int, accesses uint64, seed uint64) []trace.Source {
	raw := workload.Threads(b, threads, seed)
	srcs := make([]trace.Source, len(raw))
	for i, s := range raw {
		srcs[i] = trace.Limit(s, accesses)
	}
	return srcs
}

// RunMix is the common experiment step: simulate a mix under a controller.
func RunMix(cfg Config, ctrl Controller, mix workload.Mix, accesses, seed uint64) (Result, error) {
	if len(mix.Members) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: mix %s has %d members for %d cores", mix.Name, len(mix.Members), cfg.Cores)
	}
	srcs, err := MixSources(mix, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	return Run(cfg, ctrl(), srcs), nil
}

// RunThreaded simulates a multi-threaded benchmark with coherence enabled.
func RunThreaded(cfg Config, ctrl Controller, b workload.Benchmark, accesses, seed uint64) Result {
	cfg.Coherent = true
	srcs := ThreadSources(b, cfg.Cores, accesses, seed)
	return Run(cfg, ctrl(), srcs)
}
