package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestWarmupExcludesColdMisses(t *testing.T) {
	cfg := smallCfg()
	cold := Run(cfg, core.NewNonInclusive(), sourcesFor(loopy(), 2, 60000))

	warm := cfg
	warm.WarmupAccessesPerCore = 20000
	warmed := Run(warm, core.NewNonInclusive(), sourcesFor(loopy(), 2, 80000))

	// Both measure ~60k accesses per core, but the warmed run starts with
	// hot caches: its measured MPKI must be lower.
	if warmed.MPKI() >= cold.MPKI() {
		t.Fatalf("warmup did not reduce measured MPKI: %.3f vs %.3f", warmed.MPKI(), cold.MPKI())
	}
	if warmed.Met.Instructions == 0 || warmed.Met.Instructions >= cold.Met.Instructions*2 {
		t.Fatalf("measured instructions off: %d", warmed.Met.Instructions)
	}
}

func TestWarmupAccountingConsistent(t *testing.T) {
	cfg := smallCfg()
	cfg.WarmupAccessesPerCore = 10000
	r := Run(cfg, core.NewLAP(), sourcesFor(loopy(), 2, 40000))
	met := r.Met
	if met.L3Hits+met.L3Misses != met.L3Accesses {
		t.Fatal("post-warmup L3 accounting inconsistent")
	}
	if met.L2CleanEvictions+met.L2DirtyEvictions != met.L2Evictions {
		t.Fatal("post-warmup L2 accounting inconsistent")
	}
	if met.MemReads != met.L3Misses {
		t.Fatal("post-warmup memory accounting inconsistent")
	}
	if r.EPI.Total() <= 0 || r.Throughput <= 0 {
		t.Fatal("warmed run produced empty results")
	}
}

func TestWarmupWithMaxAccesses(t *testing.T) {
	cfg := smallCfg()
	cfg.WarmupAccessesPerCore = 5000
	cfg.MaxAccessesPerCore = 10000
	// Endless sources: the run must stop at warmup+max per core.
	srcs := sourcesFor(loopy(), 2, 1<<40)
	r := Run(cfg, core.NewExclusive(), srcs)
	// The warmup window closes when the slowest core finishes its quota,
	// so cores that ran ahead donate a few accesses to warmup; the
	// measured count is bounded by (max, max+slack).
	if r.Met.L1Accesses > 2*10000 || r.Met.L1Accesses < 2*10000-500 {
		t.Fatalf("measured accesses = %d, want ~%d", r.Met.L1Accesses, 2*10000)
	}
}

func TestWarmupCoherentRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Coherent = true
	cfg.WarmupAccessesPerCore = 5000
	b, err := workload.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	srcs := ThreadSources(b, cfg.Cores, 20000, 3)
	r := Run(cfg, core.NewNonInclusive(), srcs)
	if r.Snoop.Probes == 0 {
		t.Fatal("coherent warmed run lost snoop stats")
	}
	if r.Met.SnoopTraffic == 0 {
		t.Fatal("snoop traffic empty after warmup subtraction")
	}
}
