package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// ckTestConfig is a small geometry that still exercises warmup, MSHRs,
// banked-LLC timing state, and both warm phases around the checkpoint
// boundaries.
func ckTestConfig() Config {
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 10_000
	cfg.WarmupAccessesPerCore = 5_000
	cfg.MSHREntries = 8
	return cfg
}

func ckControllers() map[string]func() core.Controller {
	return map[string]func() core.Controller{
		"LAP":      func() core.Controller { return core.NewLAP() },
		"FLEX":     func() core.Controller { return core.NewFLEXclusion() },
		"noni":     func() core.Controller { return core.NewNonInclusive() },
		"noni+DWB": func() core.Controller { return core.NewDeadWriteBypass(core.NewNonInclusive()) },
	}
}

// TestCheckpointResumeByteIdentical is the tentpole guarantee: for every
// checkpoint taken during a run, rebuilding the machine, restoring that
// snapshot, and finishing the run yields a Result deeply equal to the
// uninterrupted run's — including float64 cycle counts bit-for-bit.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	mix := workload.TableIII()[0]
	const accesses, seed = 30_000, 7

	for name, mk := range ckControllers() {
		t.Run(name, func(t *testing.T) {
			cfg := ckTestConfig()

			srcs, err := MixSources(mix, accesses, seed)
			if err != nil {
				t.Fatal(err)
			}
			ref := Run(cfg, mk(), srcs)

			type snap struct {
				interval, accesses uint64
				payload            []byte
			}
			var snaps []snap
			srcs, _ = MixSources(mix, accesses, seed)
			got, err := RunCheckpointed(cfg, mk(), srcs, nil, func(iv, acc uint64, p []byte) {
				snaps = append(snaps, snap{iv, acc, append([]byte(nil), p...)})
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("checkpointed run diverged from plain run:\nref %+v\ngot %+v", ref, got)
			}
			// 4 cores × 30k = 120k accesses, boundary every 10k: expect many
			// snapshots, some inside the warmup window.
			if len(snaps) < 5 {
				t.Fatalf("only %d checkpoints taken", len(snaps))
			}

			for _, s := range snaps {
				srcs, _ = MixSources(mix, accesses, seed)
				res, err := RunCheckpointed(cfg, mk(), srcs, s.payload, nil)
				if err != nil {
					t.Fatalf("resume from interval %d: %v", s.interval, err)
				}
				if !reflect.DeepEqual(ref, res) {
					t.Fatalf("resume from interval %d diverged:\nref %+v\ngot %+v", s.interval, ref, res)
				}
			}
		})
	}
}

// TestCheckpointResumeRejectsMismatch pins the typed degradation path:
// a payload from another controller or geometry must error (the caller
// then runs cold), never apply silently.
func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	mix := workload.TableIII()[0]
	cfg := ckTestConfig()
	var payload []byte
	srcs, _ := MixSources(mix, 15_000, 1)
	if _, err := RunCheckpointed(cfg, core.NewLAP(), srcs, nil, func(_, _ uint64, p []byte) {
		payload = append(payload[:0], p...)
	}); err != nil {
		t.Fatal(err)
	}
	if payload == nil {
		t.Fatal("no checkpoint captured")
	}

	srcs, _ = MixSources(mix, 15_000, 1)
	if _, err := RunCheckpointed(cfg, core.NewExclusive(), srcs, payload, nil); err == nil {
		t.Fatal("restoring a LAP checkpoint into an exclusive machine did not error")
	}
	small := cfg
	small.L3SizeBytes = cfg.L3SizeBytes / 2
	srcs, _ = MixSources(mix, 15_000, 1)
	if _, err := RunCheckpointed(small, core.NewLAP(), srcs, payload, nil); err == nil {
		t.Fatal("restoring across LLC geometries did not error")
	}
	srcs, _ = MixSources(mix, 15_000, 1)
	if _, err := RunCheckpointed(cfg, core.NewLAP(), srcs, payload[:len(payload)/2], nil); err == nil {
		t.Fatal("truncated payload did not error")
	}
}

// TestCheckpointIneligibleConfigsRunCold verifies the silent-cold-start
// contract: configurations whose state the codec does not cover take no
// snapshots but still produce correct results.
func TestCheckpointIneligibleConfigsRunCold(t *testing.T) {
	mix := workload.TableIII()[0]
	cfg := ckTestConfig()
	cfg.Profile = true
	calls := 0
	srcs, _ := MixSources(mix, 15_000, 1)
	res, err := RunCheckpointed(cfg, core.NewLAP(), srcs, nil, func(_, _ uint64, _ []byte) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("profiled run took %d checkpoints; profiler state is not serialized", calls)
	}
	if res.Cycles == 0 {
		t.Fatal("ineligible run produced no result")
	}
}
