package sim

// Banked intra-run parallelism (Config.Banks > 1).
//
// The serial loop executes accesses in a total order: ascending
// (pre-access cycle count, core id). Per-core cycle counts are strictly
// increasing, so that order is fixed by each core's own history — it can
// be reproduced without a central scheduler. The banked mode exploits
// the observation that most of an access is private to its core (trace
// decode, L1/L2 walks) and only the section from the inclusion
// controller down (LLC, energy meter, bank timing, DRAM, set-dueling)
// touches shared state:
//
//   - Cores are sharded across up to Banks worker goroutines; each
//     worker runs the serial scheduling discipline over its own subset.
//   - Before processing an access, a worker publishes the access's key
//     (the core's pre-advance cycle count plus core id) through a pair
//     of atomics. Published keys are strictly increasing per worker.
//   - Private work proceeds immediately. The first time an access needs
//     shared state (enterShared), its worker spins until every other
//     worker's published key exceeds its own — at that moment it holds
//     the globally least pending key, so it may mutate shared state
//     exclusively, and the sequence of shared sections across the run is
//     exactly the serial execution order. The gate releases implicitly
//     when the worker publishes its next (larger) key.
//
// Because every shared mutation happens in the serial order and private
// state is only touched by its owning core, results are byte-identical
// to the serial loop. Upper-level counters accumulate into per-core
// shards merged after the run (integer sums are order-independent).
//
// Runs whose access walks reach across cores — coherent (bus snoops),
// MOESI-tracked, profiled (shared profiler on private paths), telemetry
// (reads shared metrics mid-run), or under the inclusive controller
// (back-invalidation) — fall back to the serial loop.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// parDoneKey marks a worker with no pending accesses. It is the NaN bit
// pattern ^0, which no real (non-negative) cycle count can produce and
// which compares above every live key.
const parDoneKey = ^uint64(0)

// parProgress is one worker's published pending-access key. The id is
// stored before the bits (both sequentially consistent), so a reader
// that observes a bits value sees an id at least as new; stale reads are
// conservative (they only delay the reader), never premature. Padding
// keeps each worker's words off its neighbours' cache lines.
type parProgress struct {
	_    [8]uint64
	bits atomic.Uint64
	id   atomic.Int64
	_    [7]uint64
}

// parEngine is the progress board shared by the run's workers.
type parEngine struct {
	workers []parProgress
}

// publish announces worker w's next pending access key: the owning
// core's pre-advance cycle count and id.
func (e *parEngine) publish(w int, cycles float64, id int) {
	p := &e.workers[w]
	p.id.Store(int64(id))
	p.bits.Store(math.Float64bits(cycles))
}

// finish marks worker w as out of pending accesses.
func (e *parEngine) finish(w int) { e.workers[w].bits.Store(parDoneKey) }

// await spins until every worker other than w has published a key
// strictly greater than (bits, id) — i.e. until (bits, id) is the least
// pending key in the run. Non-negative IEEE-754 doubles compare like
// their bit patterns, so the float comparison is exact.
func (e *parEngine) await(w int, bits uint64, id int) {
	for v := range e.workers {
		if v == w {
			continue
		}
		p := &e.workers[v]
		for spins := 0; ; spins++ {
			vb := p.bits.Load()
			if vb > bits || (vb == bits && p.id.Load() > int64(id)) {
				break
			}
			// Spin tight briefly (the blocking worker is usually about to
			// advance), then yield every iteration: on a host with fewer
			// CPUs than workers the blocking worker cannot run until we
			// give up the processor, so burning long spin batches only
			// delays it.
			if spins >= 32 {
				runtime.Gosched()
			}
		}
	}
}

// parWorkers decides the banked mode's worker count: 0 selects the
// serial loop.
func (m *machine) parWorkers() int {
	w := m.cfg.Banks
	if w > m.cfg.Cores {
		w = m.cfg.Cores
	}
	if w <= 1 {
		return 0
	}
	if m.cfg.Coherent || m.cfg.TrackMOESI || m.cfg.Profile || m.tel != nil || m.ck != nil {
		return 0
	}
	// Registry-declared ineligibility (the capability flag) and the
	// wired BackInvalidate hook both force the serial loop; the hook
	// check stays as ground truth for controllers built outside the
	// registry (e.g. experiment-only hybrid stages).
	if info, ok := core.LookupPolicy(m.ctrl.Name()); ok && !info.BankedEligible {
		return 0
	}
	if m.ctx.BackInvalidate != nil {
		return 0
	}
	return w
}

// enterShared gates entry into shared-machine state. In the serial loop
// (m.par == nil) it is a nil check; in the banked mode the first call of
// an access blocks until the access holds the least pending key.
func (m *machine) enterShared(c *coreState) {
	if m.par == nil || c.gateHeld {
		return
	}
	c.gateHeld = true
	m.par.await(c.worker, c.gateKey, c.id)
}

// runParallel executes the post-warmup region of the run on nw workers.
func (m *machine) runParallel(nw int) {
	eng := &parEngine{workers: make([]parProgress, nw)}
	m.par = eng
	groups := make([][]*coreState, nw)
	for i, c := range m.cores {
		w := i % nw
		c.worker = w
		groups[w] = append(groups[w], c)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int, mine []*coreState) {
			defer wg.Done()
			m.workerLoop(w, mine)
		}(w, groups[w])
	}
	wg.Wait()
	m.par = nil
}

// workerLoop is the serial scheduling discipline restricted to one
// worker's cores: repeatedly pick the least-progressed active core
// (ties to the lowest id, as in serialLoop), publish its key, and
// process one access.
func (m *machine) workerLoop(w int, mine []*coreState) {
	eng := m.par
	for {
		var next *coreState
		for _, c := range mine {
			if c.done {
				continue
			}
			if next == nil || c.cycles < next.cycles {
				next = c
			}
		}
		if next == nil {
			eng.finish(w)
			return
		}
		next.gateKey = math.Float64bits(next.cycles)
		next.gateHeld = false
		eng.publish(w, next.cycles, next.id)
		acc, ok := next.next()
		if !ok {
			next.done = true
			continue
		}
		m.step(next, acc)
		next.nAcc++
		if m.cfg.MaxAccessesPerCore > 0 && next.nAcc >= m.cfg.MaxAccessesPerCore+m.cfg.WarmupAccessesPerCore {
			next.done = true
		}
	}
}
