// Package coherence models a MOESI-style snooping bus at the message
// level, sufficient to reproduce the paper's Figure 20(c) coherence-
// traffic comparison. On every private-cache miss the requester
// broadcasts a probe to its peers; a peer holding the block dirty supplies
// it cache-to-cache and transfers ownership (the requester's copy becomes
// dirty, the supplier's clean — the M→O/S transition collapsed to the
// traffic-relevant essentials). Writes to blocks known to be replicated
// broadcast invalidations. LLC misses additionally cost memory-side
// request/response messages, which is why policies with fewer LLC misses
// generate less bus traffic.
package coherence

// Peer is the view the bus needs of one core's private cache hierarchy.
type Peer interface {
	// ProbeBlock searches the private caches for a block. It returns
	// found and dirty; when downgrade is set, a dirty copy is marked
	// clean (ownership transferred to the requester).
	ProbeBlock(block uint64, downgrade bool) (found, dirty bool)
	// DropBlock invalidates the block from the private caches.
	DropBlock(block uint64)
}

// Stats counts bus activity.
type Stats struct {
	// Probes is the number of point-to-point snoop probes sent.
	Probes uint64
	// Broadcasts is the number of miss-triggered probe broadcasts (one
	// bus transaction regardless of peer count).
	Broadcasts uint64
	// DirtyTransfers counts cache-to-cache supplies of dirty data.
	DirtyTransfers uint64
	// Invalidations counts upgrade-triggered invalidation messages.
	Invalidations uint64
	// MemMessages counts memory-side transactions caused by LLC misses.
	MemMessages uint64
}

// dataFlits is the bus cost of moving one 64B cache line relative to an
// 8B control message.
const dataFlits = 8

// Traffic is the weighted bus occupancy the Figure 20(c) comparison uses:
// control messages (probe broadcasts, invalidations) cost one flit; every
// data movement (cache-to-cache transfer, LLC-miss fill from memory)
// costs a control flit plus a cache line of data. LLC misses therefore
// dominate, which is why policies with larger effective capacity generate
// less coherence traffic.
func (s Stats) Traffic() uint64 {
	return s.Broadcasts + s.Invalidations + (1+dataFlits)*(s.DirtyTransfers+s.MemMessages)
}

// Bus is a snooping coherence bus connecting the peers of one simulated
// machine. The zero value is unusable; use NewBus.
type Bus struct {
	peers []Peer
	// Stats accumulates message counts.
	Stats Stats
}

// NewBus returns a bus over the given peers (one per core).
func NewBus(peers []Peer) *Bus { return &Bus{peers: peers} }

// ProbeResult reports the outcome of a miss-triggered snoop.
type ProbeResult struct {
	// SuppliedDirty is true when a peer supplied dirty data
	// cache-to-cache; the requester should install the block dirty and
	// skip the LLC fetch.
	SuppliedDirty bool
	// SharedElsewhere is true when any peer holds a (clean) copy, so the
	// requester's line must be marked shared.
	SharedElsewhere bool
}

// OnMiss broadcasts a probe for block on behalf of core requester. A
// dirty peer copy is downgraded and supplies the data.
func (b *Bus) OnMiss(requester int, block uint64) ProbeResult {
	var res ProbeResult
	b.Stats.Broadcasts++
	for i, p := range b.peers {
		if i == requester {
			continue
		}
		b.Stats.Probes++
		found, dirty := p.ProbeBlock(block, true)
		if !found {
			continue
		}
		res.SharedElsewhere = true
		if dirty && !res.SuppliedDirty {
			res.SuppliedDirty = true
			b.Stats.DirtyTransfers++
		}
	}
	return res
}

// OnWriteShared broadcasts invalidations for a store to a block the
// requester knows to be replicated, removing every peer copy.
func (b *Bus) OnWriteShared(requester int, block uint64) {
	for i, p := range b.peers {
		if i == requester {
			continue
		}
		b.Stats.Invalidations++
		p.DropBlock(block)
	}
}

// OnLLCMiss records the memory-side messages of an LLC miss.
func (b *Bus) OnLLCMiss() { b.Stats.MemMessages++ }
