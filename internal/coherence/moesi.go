package coherence

import "fmt"

// Full MOESI protocol engine. The Bus in this package is a lightweight
// traffic approximation; Directory is the complete reference protocol
// (the paper's gem5 baseline runs MOESI snooping), implemented as a
// directory over per-block sharer state. It is self-contained and
// usable as a drop-in coherence substrate: callers drive it with Read,
// Write and Evict and receive the actions (data source, invalidations,
// writebacks) the protocol mandates. Property tests assert the MOESI
// invariants: a single writable owner, no stale readers alongside a
// modifier, and no dirty data lost on eviction.

// MOESIState is one cache's state for a block.
type MOESIState uint8

// The five MOESI states.
const (
	Invalid MOESIState = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String names the state.
func (s MOESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("MOESIState(%d)", uint8(s))
	}
}

// writable reports whether a cache in this state may write locally.
func (s MOESIState) writable() bool { return s == Exclusive || s == Modified }

// dirty reports whether this state holds data newer than memory.
func (s MOESIState) dirty() bool { return s == Owned || s == Modified }

// DataSource says where a requester's data came from.
type DataSource uint8

// Data sources for a coherence fill.
const (
	FromMemory DataSource = iota
	FromCache             // supplied by an owner or sharer cache-to-cache
)

// Action summarises what the protocol did for one request.
type Action struct {
	// Source is where the data came from (reads and write-misses).
	Source DataSource
	// Invalidations is the number of peer copies invalidated.
	Invalidations int
	// Writeback reports that dirty data was written to memory (evictions
	// of M/O without other sharers able to take ownership).
	Writeback bool
}

// Directory tracks MOESI state per block across n caches.
type Directory struct {
	n      int
	blocks map[uint64][]MOESIState

	// Stats counts protocol activity.
	Stats DirectoryStats
}

// DirectoryStats counts protocol actions.
type DirectoryStats struct {
	Reads, Writes, Evicts     uint64
	CacheSupplies, MemFetches uint64
	Invalidations, Writebacks uint64
}

// NewDirectory returns a directory for n caches.
func NewDirectory(n int) *Directory {
	if n <= 0 {
		panic("coherence: directory needs at least one cache")
	}
	return &Directory{n: n, blocks: make(map[uint64][]MOESIState)}
}

// State returns cache c's state for a block.
func (d *Directory) State(c int, block uint64) MOESIState {
	st := d.blocks[block]
	if st == nil {
		return Invalid
	}
	return st[c]
}

func (d *Directory) entry(block uint64) []MOESIState {
	st := d.blocks[block]
	if st == nil {
		st = make([]MOESIState, d.n)
		d.blocks[block] = st
	}
	return st
}

// Read performs a load by cache c.
func (d *Directory) Read(c int, block uint64) Action {
	d.Stats.Reads++
	st := d.entry(block)
	if st[c] != Invalid {
		return Action{Source: FromCache} // local hit; no bus activity
	}
	var act Action
	// Find a supplier: an owner (M/O) preferentially, else any sharer.
	supplier := -1
	for i, s := range st {
		if i == c || s == Invalid {
			continue
		}
		if s.dirty() || supplier < 0 {
			supplier = i
		}
	}
	if supplier >= 0 {
		act.Source = FromCache
		d.Stats.CacheSupplies++
		// The supplier downgrades: M -> O (it keeps responsibility for
		// the dirty data), E -> S; O and S stay.
		switch st[supplier] {
		case Modified:
			st[supplier] = Owned
		case Exclusive:
			st[supplier] = Shared
		}
		st[c] = Shared
		return act
	}
	act.Source = FromMemory
	d.Stats.MemFetches++
	st[c] = Exclusive // sole copy
	return act
}

// Write performs a store by cache c, obtaining write permission.
func (d *Directory) Write(c int, block uint64) Action {
	d.Stats.Writes++
	st := d.entry(block)
	var act Action
	if !st[c].writable() {
		// Upgrade: invalidate every other copy. If we lacked data (I),
		// fetch it; a dirty peer supplies, else memory.
		if st[c] == Invalid {
			suppliedByCache := false
			for i, s := range st {
				if i != c && s != Invalid {
					suppliedByCache = true
					break
				}
			}
			if suppliedByCache {
				act.Source = FromCache
				d.Stats.CacheSupplies++
			} else {
				act.Source = FromMemory
				d.Stats.MemFetches++
			}
		} else {
			act.Source = FromCache // already had the data (S/O)
		}
		for i := range st {
			if i != c && st[i] != Invalid {
				st[i] = Invalid
				act.Invalidations++
				d.Stats.Invalidations++
			}
		}
	}
	st[c] = Modified
	return act
}

// Evict removes cache c's copy. Dirty data (M, or O with no remaining
// sharer to pass ownership to) is written back to memory.
func (d *Directory) Evict(c int, block uint64) Action {
	d.Stats.Evicts++
	st := d.blocks[block]
	if st == nil || st[c] == Invalid {
		return Action{}
	}
	var act Action
	if st[c].dirty() {
		// Try to hand ownership to a sharer (MOESI allows O migration);
		// otherwise write back.
		heir := -1
		for i, s := range st {
			if i != c && s == Shared {
				heir = i
				break
			}
		}
		if heir >= 0 {
			st[heir] = Owned
		} else {
			act.Writeback = true
			d.Stats.Writebacks++
		}
	}
	st[c] = Invalid
	// Last sharer standing upgrades S -> E is NOT automatic in MOESI;
	// leave states as they are.
	allInvalid := true
	for _, s := range st {
		if s != Invalid {
			allInvalid = false
			break
		}
	}
	if allInvalid {
		delete(d.blocks, block)
	}
	return act
}

// CheckInvariants verifies the MOESI safety properties for every tracked
// block, returning a description of the first violation or "" if clean.
func (d *Directory) CheckInvariants() string {
	for block, st := range d.blocks {
		var m, e, o, valid int
		for _, s := range st {
			switch s {
			case Modified:
				m++
			case Exclusive:
				e++
			case Owned:
				o++
			}
			if s != Invalid {
				valid++
			}
		}
		if m > 1 || e > 1 || o > 1 {
			return fmt.Sprintf("block %#x: duplicate owner states M=%d E=%d O=%d", block, m, e, o)
		}
		if (m == 1 || e == 1) && valid > 1 {
			return fmt.Sprintf("block %#x: M/E coexists with other copies (%d valid)", block, valid)
		}
		if m == 1 && o == 1 {
			return fmt.Sprintf("block %#x: M and O coexist", block)
		}
	}
	return ""
}

// Occupancy returns how many tracked (block, cache) pairs sit in each
// state — the coherence-mix statistic.
func (d *Directory) Occupancy() map[MOESIState]int {
	occ := map[MOESIState]int{}
	for _, st := range d.blocks {
		for _, s := range st {
			if s != Invalid {
				occ[s]++
			}
		}
	}
	return occ
}
