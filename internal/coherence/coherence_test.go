package coherence

import "testing"

// fakePeer is a map-backed private cache for bus tests.
type fakePeer struct {
	blocks map[uint64]bool // block -> dirty
}

func newFakePeer() *fakePeer { return &fakePeer{blocks: map[uint64]bool{}} }

func (p *fakePeer) ProbeBlock(block uint64, downgrade bool) (bool, bool) {
	dirty, found := p.blocks[block]
	if found && dirty && downgrade {
		p.blocks[block] = false
	}
	return found, dirty
}

func (p *fakePeer) DropBlock(block uint64) { delete(p.blocks, block) }

func TestOnMissProbesAllPeers(t *testing.T) {
	peers := []*fakePeer{newFakePeer(), newFakePeer(), newFakePeer(), newFakePeer()}
	ps := make([]Peer, len(peers))
	for i := range peers {
		ps[i] = peers[i]
	}
	bus := NewBus(ps)
	res := bus.OnMiss(0, 42)
	if res.SuppliedDirty || res.SharedElsewhere {
		t.Fatalf("probe of empty peers: %+v", res)
	}
	if bus.Stats.Probes != 3 {
		t.Fatalf("probes = %d, want 3", bus.Stats.Probes)
	}
}

func TestOnMissDirtySupplyAndDowngrade(t *testing.T) {
	a, b := newFakePeer(), newFakePeer()
	b.blocks[42] = true // dirty in peer 1
	bus := NewBus([]Peer{a, b})
	res := bus.OnMiss(0, 42)
	if !res.SuppliedDirty || !res.SharedElsewhere {
		t.Fatalf("dirty supply missing: %+v", res)
	}
	if b.blocks[42] {
		t.Fatal("supplier not downgraded to clean")
	}
	if bus.Stats.DirtyTransfers != 1 {
		t.Fatalf("dirty transfers = %d", bus.Stats.DirtyTransfers)
	}
}

func TestOnMissCleanSharing(t *testing.T) {
	a, b := newFakePeer(), newFakePeer()
	b.blocks[7] = false
	bus := NewBus([]Peer{a, b})
	res := bus.OnMiss(0, 7)
	if res.SuppliedDirty {
		t.Fatal("clean copy reported as dirty supply")
	}
	if !res.SharedElsewhere {
		t.Fatal("clean peer copy not reported shared")
	}
}

func TestOnWriteSharedInvalidates(t *testing.T) {
	a, b, c := newFakePeer(), newFakePeer(), newFakePeer()
	b.blocks[9] = false
	c.blocks[9] = true
	bus := NewBus([]Peer{a, b, c})
	bus.OnWriteShared(0, 9)
	if _, ok := b.blocks[9]; ok {
		t.Fatal("peer copy survived invalidation")
	}
	if _, ok := c.blocks[9]; ok {
		t.Fatal("dirty peer copy survived invalidation")
	}
	if bus.Stats.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", bus.Stats.Invalidations)
	}
}

func TestTrafficWeighting(t *testing.T) {
	s := Stats{Probes: 10, Broadcasts: 4, DirtyTransfers: 2, Invalidations: 3, MemMessages: 5}
	if got := s.Traffic(); got != 4+3+9*(2+5) {
		t.Fatalf("traffic = %d", got)
	}
	// Data movement dominates control traffic, so LLC misses drive the
	// total (the Fig. 20c mechanism).
	lessMisses := s
	lessMisses.MemMessages = 2
	if lessMisses.Traffic() >= s.Traffic() {
		t.Fatal("fewer LLC misses must reduce traffic")
	}
}

func TestOnLLCMiss(t *testing.T) {
	bus := NewBus(nil)
	bus.OnLLCMiss()
	bus.OnLLCMiss()
	if bus.Stats.MemMessages != 2 {
		t.Fatalf("mem messages = %d", bus.Stats.MemMessages)
	}
}

func TestRequesterNotProbed(t *testing.T) {
	a := newFakePeer()
	a.blocks[1] = true
	bus := NewBus([]Peer{a})
	res := bus.OnMiss(0, 1) // only peer is the requester itself
	if res.SharedElsewhere || bus.Stats.Probes != 0 {
		t.Fatal("requester was probed")
	}
}
