package coherence

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMOESIStateStrings(t *testing.T) {
	want := map[MOESIState]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
	if MOESIState(9).String() == "" {
		t.Error("unknown state empty string")
	}
}

func TestColdReadGetsExclusive(t *testing.T) {
	d := NewDirectory(4)
	act := d.Read(0, 100)
	if act.Source != FromMemory {
		t.Fatal("cold read not from memory")
	}
	if d.State(0, 100) != Exclusive {
		t.Fatalf("state = %v, want E", d.State(0, 100))
	}
}

func TestSecondReaderSharesAndDowngrades(t *testing.T) {
	d := NewDirectory(4)
	d.Read(0, 100) // E
	act := d.Read(1, 100)
	if act.Source != FromCache {
		t.Fatal("peer copy not supplied cache-to-cache")
	}
	if d.State(0, 100) != Shared || d.State(1, 100) != Shared {
		t.Fatalf("states = %v/%v, want S/S", d.State(0, 100), d.State(1, 100))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(4)
	d.Read(0, 100)
	d.Read(1, 100)
	d.Read(2, 100)
	act := d.Write(1, 100)
	if act.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", act.Invalidations)
	}
	if d.State(1, 100) != Modified {
		t.Fatal("writer not in M")
	}
	if d.State(0, 100) != Invalid || d.State(2, 100) != Invalid {
		t.Fatal("sharers not invalidated")
	}
}

func TestReadOfModifiedCreatesOwned(t *testing.T) {
	d := NewDirectory(2)
	d.Write(0, 100) // M (write-allocate)
	act := d.Read(1, 100)
	if act.Source != FromCache {
		t.Fatal("dirty supply not cache-to-cache")
	}
	if d.State(0, 100) != Owned || d.State(1, 100) != Shared {
		t.Fatalf("states = %v/%v, want O/S", d.State(0, 100), d.State(1, 100))
	}
}

func TestSilentUpgradeFromExclusive(t *testing.T) {
	d := NewDirectory(2)
	d.Read(0, 100) // E
	act := d.Write(0, 100)
	if act.Invalidations != 0 {
		t.Fatal("E->M upgrade should not invalidate anyone")
	}
	if d.State(0, 100) != Modified {
		t.Fatal("E->M upgrade failed")
	}
}

func TestEvictModifiedWritesBack(t *testing.T) {
	d := NewDirectory(2)
	d.Write(0, 100)
	act := d.Evict(0, 100)
	if !act.Writeback {
		t.Fatal("dirty eviction lost data")
	}
	if d.State(0, 100) != Invalid {
		t.Fatal("evicted state not I")
	}
}

func TestEvictOwnedPassesOwnership(t *testing.T) {
	d := NewDirectory(3)
	d.Write(0, 100) // M
	d.Read(1, 100)  // 0:O, 1:S
	act := d.Evict(0, 100)
	if act.Writeback {
		t.Fatal("ownership should migrate to the sharer, not memory")
	}
	if d.State(1, 100) != Owned {
		t.Fatalf("heir state = %v, want O", d.State(1, 100))
	}
	// Now the heir's eviction must write back.
	if act := d.Evict(1, 100); !act.Writeback {
		t.Fatal("final owner eviction lost dirty data")
	}
}

func TestEvictInvalidIsNoop(t *testing.T) {
	d := NewDirectory(2)
	if act := d.Evict(1, 999); act.Writeback || act.Invalidations != 0 {
		t.Fatal("evicting an invalid line did something")
	}
}

func TestWriteMissSuppliedByPeer(t *testing.T) {
	d := NewDirectory(2)
	d.Write(0, 100) // M in 0
	act := d.Write(1, 100)
	if act.Source != FromCache || act.Invalidations != 1 {
		t.Fatalf("write-miss action: %+v", act)
	}
	if d.State(0, 100) != Invalid || d.State(1, 100) != Modified {
		t.Fatal("ownership transfer on write-miss wrong")
	}
}

func TestOccupancy(t *testing.T) {
	d := NewDirectory(3)
	d.Read(0, 1)  // E
	d.Write(1, 2) // M
	d.Read(0, 2)  // 1:O, 0:S
	occ := d.Occupancy()
	if occ[Exclusive] != 1 || occ[Owned] != 1 || occ[Shared] != 1 {
		t.Fatalf("occupancy: %v", occ)
	}
}

func TestDirectoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDirectory(0) accepted")
		}
	}()
	NewDirectory(0)
}

// Property: after any random event sequence, the MOESI invariants hold
// (single writer, no stale copies beside M/E, at most one owner).
func TestPropertyMOESIInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		d := NewDirectory(4)
		for i := 0; i < 500; i++ {
			c := rng.IntN(4)
			b := rng.Uint64() % 16
			switch rng.IntN(3) {
			case 0:
				d.Read(c, b)
			case 1:
				d.Write(c, b)
			default:
				d.Evict(c, b)
			}
			if v := d.CheckInvariants(); v != "" {
				t.Logf("violation: %s", v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: dirty data is never lost — every Write is eventually matched
// by exactly one Writeback once all copies are evicted.
func TestPropertyNoLostDirtyData(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 67))
		d := NewDirectory(4)
		const block = 7
		dirty := false
		for i := 0; i < 300; i++ {
			c := rng.IntN(4)
			switch rng.IntN(3) {
			case 0:
				d.Read(c, block)
			case 1:
				d.Write(c, block)
				dirty = true
			default:
				if act := d.Evict(c, block); act.Writeback {
					if !dirty {
						return false // writeback without preceding write
					}
					dirty = false
				}
			}
		}
		// Drain: evict everything; dirty data must surface exactly once.
		for c := 0; c < 4; c++ {
			if act := d.Evict(c, block); act.Writeback {
				if !dirty {
					return false
				}
				dirty = false
			}
		}
		return !dirty // nothing dirty may remain untracked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDirectory(b *testing.B) {
	d := NewDirectory(4)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := rng.IntN(4)
		blk := rng.Uint64() % 4096
		switch i % 3 {
		case 0:
			d.Read(c, blk)
		case 1:
			d.Write(c, blk)
		default:
			d.Evict(c, blk)
		}
	}
}
