// Package sample implements interval-sampled simulation: instead of
// running every access of a workload through the detailed timing model,
// a cheap functional profiling pass splits the trace into fixed-size
// intervals and fingerprints each one, the intervals are clustered by
// behavior signature, and only one representative per cluster is
// simulated in detail — the rest are fast-forwarded in functional
// warmup mode and their contribution extrapolated by cluster weight.
// The approach follows the SimPoint/SMARTS lineage of sampled
// microarchitecture simulation (see arXiv:2402.00649): program behavior
// is phase-structured, so a handful of representative windows predicts
// whole-run metrics to within a few percent at a fraction of the cost.
//
// The profile is policy-independent (it is collected under a fixed
// always-loop-aware LAP configuration so the loop-block signature
// dimension stays populated) and is reused across every policy of a
// sweep: one profiling pass amortizes over the six-plus policies a
// Fig. 14-style comparison simulates.
package sample

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Profile is the outcome of the functional profiling pass: one
// signature per interval plus a source checkpoint at every interval
// boundary, so a sampled executor can jump to any interval in O(1).
type Profile struct {
	// PerCore is the interval length in accesses per core.
	PerCore uint64
	// Cores is the machine width the profile was collected at.
	Cores int
	// Intervals holds one telemetry signature per interval, in order.
	Intervals []sim.Interval

	// checkpoints[i] holds each core's source forked at the start of
	// interval i. They are forked again (fork-of-fork) for every replay,
	// so one profile serves any number of policy runs.
	checkpoints [][]trace.Source

	// states holds deep cache-hierarchy snapshots captured at the start
	// of every snapStride-th interval. Restoring the nearest snapshot
	// before a replay removes the stale-LLC bias a bare source jump
	// would introduce: the hierarchy resumes exactly as the profiling
	// pass left it at that boundary. snapStride doubles whenever the
	// map would exceed maxStateSnapshots, bounding profile memory.
	states     map[int]*sim.MachineState
	snapStride int
}

// maxStateSnapshots bounds how many cache-hierarchy snapshots a profile
// retains. At the paper's default geometry one snapshot is ~4 MB (the
// 8 MB LLC's metadata dominates), so a profile tops out around 70 MB of
// state regardless of how many intervals it spans.
const maxStateSnapshots = 16

// ErrNotForkable reports sources that do not implement trace.Forker;
// sampled mode cannot checkpoint them.
var ErrNotForkable = errors.New("sample: trace sources are not forkable (sampled mode needs workload or in-memory sources)")

// profileController returns the fixed controller signatures are
// collected under: LAP with loop-aware replacement always on, so the
// LoopBlocks dimension distinguishes loop-heavy phases regardless of
// which policies the profile is later replayed against.
func profileController() core.Controller {
	return core.NewLAPVariant(core.AlwaysLoopAware)
}

// BuildProfile runs the functional profiling pass: every access of
// every source executes once in functional mode (cache state and event
// counters update; no timing, no energy), with a checkpoint captured at
// each interval boundary. The sources are consumed.
func BuildProfile(cfg sim.Config, srcs []trace.Source, perCore uint64) (*Profile, error) {
	if perCore == 0 {
		return nil, fmt.Errorf("sample: interval length must be positive")
	}
	p := &Profile{
		PerCore:    perCore,
		Cores:      cfg.Cores,
		states:     make(map[int]*sim.MachineState),
		snapStride: 1,
	}
	tel := &sim.Telemetry{
		// Interval windows are closed manually by the engine after each
		// functional window; the access-count trigger stays disabled.
		OnInterval: func(iv sim.Interval) { p.Intervals = append(p.Intervals, iv) },
	}
	eng := sim.NewEngine(cfg, profileController(), srcs, tel)
	// Snapshots evicted by stride-doubling are recycled as copy targets
	// for later captures: the profile allocates at most
	// maxStateSnapshots+1 states total instead of one per capture.
	var free []*sim.MachineState
	for !eng.Exhausted() {
		ck, ok := eng.ForkSources()
		if !ok {
			return nil, ErrNotForkable
		}
		if i := len(p.checkpoints); i%p.snapStride == 0 {
			var reuse *sim.MachineState
			if n := len(free); n > 0 {
				reuse, free = free[n-1], free[:n-1]
			}
			p.states[i] = eng.SnapshotState(reuse)
			if len(p.states) > maxStateSnapshots {
				// Thin to every other snapshot. Because the stride only
				// ever doubles, the surviving positions are exactly the
				// multiples of the new stride.
				p.snapStride *= 2
				for pos, st := range p.states {
					if pos%p.snapStride != 0 {
						free = append(free, st)
						delete(p.states, pos)
					}
				}
			}
		}
		if eng.RunFunctional(perCore) == 0 {
			break
		}
		p.checkpoints = append(p.checkpoints, ck)
	}
	if len(p.Intervals) != len(p.checkpoints) {
		// RunFunctional flushes one Interval per non-empty window, and a
		// checkpoint is recorded only for non-empty windows; a mismatch
		// means the engine seam changed underneath us.
		panic(fmt.Sprintf("sample: %d intervals vs %d checkpoints", len(p.Intervals), len(p.checkpoints)))
	}
	if len(p.Intervals) == 0 {
		return nil, fmt.Errorf("sample: sources were empty, no intervals profiled")
	}
	return p, nil
}

// forkAt returns fresh forks of the checkpoint at the start of interval
// i, ready to hand to an engine. The stored checkpoints are never
// advanced, so the same profile replays any number of times.
func (p *Profile) forkAt(i int) []trace.Source {
	out := make([]trace.Source, len(p.checkpoints[i]))
	for j, s := range p.checkpoints[i] {
		f, ok := trace.ForkSource(s)
		if !ok {
			panic("sample: stored checkpoint lost forkability")
		}
		out[j] = f
	}
	return out
}

// stateFor returns the latest cache-state snapshot at or before
// interval i, with the interval index it was captured at. Position 0 is
// always captured (the cold boot state), so a snapshot always exists.
func (p *Profile) stateFor(i int) (int, *sim.MachineState) {
	pos := i - i%p.snapStride
	for pos > 0 {
		if st, ok := p.states[pos]; ok {
			return pos, st
		}
		pos -= p.snapStride
	}
	return 0, p.states[0]
}

// warmGap is the number of extra functional intervals a replay of
// representative r with warm warmup intervals must execute to bridge
// from the nearest snapshot to the start of its warmup window. The
// planner minimizes this when picking representatives: a gap of zero
// means the warmup window starts exactly on a snapshot.
func (p *Profile) warmGap(r, warm int) int {
	start := r - warm
	if start < 0 {
		start = 0
	}
	pos, _ := p.stateFor(start)
	return start - pos
}

// full reports whether interval i is a full-length window. The trailing
// window is usually short; short windows become singleton clusters and
// are always simulated in detail.
func (p *Profile) full(i int) bool {
	return p.Intervals[i].Accesses == p.PerCore*uint64(p.Cores)
}
