package sample

// Profile persistence. A profile is expensive to build (one functional
// pass over every access) and policy-independent, so the checkpoint
// store keeps it across process restarts: a restarted sweep skips the
// functional pass entirely when a digest-matching profile exists.
//
// Source checkpoints are not serialized — their positions are implicit.
// BuildProfile forks each core's source at the start of every interval,
// and each interval advances every live core by exactly PerCore
// accesses, so the checkpoint for interval i sits at access i*PerCore
// (clipped by stream exhaustion, which Skip reproduces). DecodeProfile
// therefore rebuilds the checkpoints by forking and fast-forwarding
// fresh base sources: cheap trace regeneration instead of functional
// simulation, and byte-identical replay positions.

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint/wire"
	"repro/internal/sim"
	"repro/internal/trace"
)

// profilePayloadVersion stamps the profile payload layout inside the
// store's (separately versioned) file envelope.
const profilePayloadVersion = 1

// Encode serializes the profile's signatures and cache-state snapshots
// (everything except the source checkpoints, which are positional).
func (p *Profile) Encode() []byte {
	var enc wire.Encoder
	enc.Byte(profilePayloadVersion)
	enc.U64(p.PerCore)
	enc.U64(uint64(p.Cores))
	enc.U64(uint64(len(p.Intervals)))
	for i := range p.Intervals {
		sim.EncodeInterval(&enc, &p.Intervals[i])
	}
	enc.U64(uint64(p.snapStride))
	positions := make([]int, 0, len(p.states))
	for pos := range p.states {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	enc.U64(uint64(len(positions)))
	for _, pos := range positions {
		enc.U64(uint64(pos))
		p.states[pos].Encode(&enc)
	}
	return append([]byte(nil), enc.Bytes()...)
}

// DecodeProfile reconstructs a profile from Encode's payload plus fresh
// base sources for the same workload (consumed, like BuildProfile's).
// Any layout or shape problem is an error — the caller rebuilds the
// profile from scratch; nothing is half-restored.
func DecodeProfile(data []byte, srcs []trace.Source) (*Profile, error) {
	d := wire.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != profilePayloadVersion {
		return nil, fmt.Errorf("sample: profile payload v%d, this build reads v%d", v, profilePayloadVersion)
	}
	p := &Profile{
		PerCore: d.U64(),
		Cores:   int(d.U64()),
		states:  make(map[int]*sim.MachineState),
	}
	nIv := d.Length(2)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if p.PerCore == 0 || nIv == 0 {
		return nil, fmt.Errorf("sample: profile payload has no intervals")
	}
	if p.Cores != len(srcs) {
		return nil, fmt.Errorf("sample: profile spans %d cores, sources span %d", p.Cores, len(srcs))
	}
	p.Intervals = make([]sim.Interval, nIv)
	for i := range p.Intervals {
		iv, err := sim.DecodeInterval(d)
		if err != nil {
			return nil, fmt.Errorf("interval %d: %w", i, err)
		}
		p.Intervals[i] = iv
	}
	p.snapStride = int(d.U64())
	nStates := d.Length(2)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if p.snapStride < 1 {
		return nil, fmt.Errorf("sample: profile snapshot stride %d", p.snapStride)
	}
	prev := -1
	for i := 0; i < nStates; i++ {
		pos := int(d.U64())
		st, err := sim.DecodeMachineState(d)
		if err != nil {
			return nil, fmt.Errorf("snapshot at %d: %w", pos, err)
		}
		if pos <= prev || pos >= nIv {
			return nil, fmt.Errorf("sample: snapshot position %d out of order or range", pos)
		}
		if st.NCores() != p.Cores {
			return nil, fmt.Errorf("sample: snapshot at %d spans %d cores, profile %d", pos, st.NCores(), p.Cores)
		}
		p.states[pos] = st
		prev = pos
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(d.Rest()) != 0 {
		return nil, fmt.Errorf("sample: %d trailing bytes in profile payload", len(d.Rest()))
	}
	if _, ok := p.states[0]; !ok {
		return nil, fmt.Errorf("sample: profile payload is missing the boot snapshot")
	}

	// Rebuild the per-interval source checkpoints positionally.
	p.checkpoints = make([][]trace.Source, nIv)
	for i := 0; i < nIv; i++ {
		ck := make([]trace.Source, len(srcs))
		for j, s := range srcs {
			f, ok := trace.ForkSource(s)
			if !ok {
				return nil, ErrNotForkable
			}
			ck[j] = f
		}
		p.checkpoints[i] = ck
		if i+1 < nIv {
			for _, s := range srcs {
				trace.Skip(s, p.PerCore)
			}
		}
	}
	return p, nil
}
