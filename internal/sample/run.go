package sample

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Estimate is the error model's report for one sampled run. It is
// sim.SampleEstimate (defined there so it can travel inside
// sim.Result.Sample through memo and cache layers).
type Estimate = sim.SampleEstimate

// Result pairs the extrapolated simulation result with its error
// estimate.
type Result struct {
	Sim sim.Result
	Est Estimate
}

// Run replays a profile against one policy: for each representative
// interval (in trace order) it restores the nearest cache-state
// snapshot, jumps the sources to match, re-runs the bridge and
// SampleWarmup intervals functionally so the target policy reshapes the
// restored hierarchy, simulates the representative in detail, and
// extrapolates its delta by cluster weight. Exact and sampled runs
// share the machine, the controllers, and the Result assembly; only the
// schedule differs.
func Run(cfg sim.Config, ctrl core.Controller, p *Profile) (Result, error) {
	warm := cfg.SampleWarmup
	plan := BuildPlan(p, cfg.SampleClusters, warm)

	eng := sim.NewEngine(cfg, ctrl, p.forkAt(0), nil)
	var total sim.Counters
	est := Estimate{
		Clusters:          plan.Clusters,
		IntervalsProfiled: len(p.Intervals),
	}
	for _, rep := range plan.Reps {
		start := rep.Interval - warm
		if start < 0 {
			start = 0
		}
		pos, st := p.stateFor(start)
		eng.RestoreState(st)
		eng.SetSources(p.forkAt(pos))
		for i := pos; i < rep.Interval; i++ {
			eng.RunFunctional(p.PerCore)
			est.IntervalsWarmup++
		}
		before := eng.Counters()
		eng.RunDetailed(p.PerCore)
		est.IntervalsDetailed++
		delta := eng.Counters()
		delta.Sub(&before)
		total.AddScaled(&delta, rep.Weight)
	}
	est.IntervalsSkipped = est.IntervalsProfiled - est.IntervalsDetailed - est.IntervalsWarmup
	if est.IntervalsSkipped < 0 {
		est.IntervalsSkipped = 0
	}
	if work := est.IntervalsDetailed + est.IntervalsWarmup; work > 0 {
		est.WorkReduction = float64(est.IntervalsProfiled) / float64(work)
	}
	est.MissRateRelCI, est.EPIRelCI = p.confidence(plan)

	sr := eng.Finalize(total)
	attached := est
	sr.Sample = &attached
	recordRun(&est)
	return Result{Sim: sr, Est: est}, nil
}

// confidence propagates within-cluster dispersion of the profile's
// per-interval series into relative 95% confidence half-widths for the
// miss rate and EPI. The estimator simulates one draw per cluster and
// scales it by the cluster's weight share, so
// Var(μ̂) = Σ_c (N_c/n)² σ_c², with σ_c the member dispersion of
// cluster c measured on the profiling pass.
func (p *Profile) confidence(plan Plan) (missRel, epiRel float64) {
	miss := func(iv sim.Interval) float64 {
		if iv.L3Accesses == 0 {
			return 0
		}
		return float64(iv.L3Misses) / float64(iv.L3Accesses)
	}
	reads := func(iv sim.Interval) float64 { return float64(iv.L3Accesses) }
	writes := func(iv sim.Interval) float64 { return float64(iv.Fills + iv.Writebacks) }

	missRel = p.seriesRelCI(plan, miss)
	// EPI's dynamic term is driven by LLC read and write activity;
	// combine the two series' independent relative errors in quadrature.
	r, w := p.seriesRelCI(plan, reads), p.seriesRelCI(plan, writes)
	epiRel = math.Hypot(r, w)
	return missRel, epiRel
}

// seriesRelCI computes the relative 95% CI half-width of the
// cluster-weighted estimator for one per-interval series.
func (p *Profile) seriesRelCI(plan Plan, f func(sim.Interval) float64) float64 {
	n := float64(len(p.Intervals))
	if n == 0 {
		return 0
	}
	var means, weights []float64
	var varSum float64
	for _, rep := range plan.Reps {
		xs := make([]float64, len(rep.Members))
		ws := make([]float64, len(rep.Members))
		for i, m := range rep.Members {
			xs[i] = f(p.Intervals[m])
			ws[i] = 1
		}
		mu := stats.WeightedMean(xs, ws)
		sigma2 := stats.WeightedVariance(xs, ws)
		share := float64(rep.Weight) / n
		means = append(means, mu)
		weights = append(weights, float64(rep.Weight))
		varSum += share * share * sigma2
	}
	mu := stats.WeightedMean(means, weights)
	return stats.RelCI95(mu, math.Sqrt(varSum))
}
