package sample

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// sigDims is the number of signature dimensions used for clustering.
// Each interval is embedded as a point in this space, z-score
// normalized per dimension so no single counter dominates distance.
const sigDims = 6

// signature embeds one interval's telemetry as a feature vector. The
// dimensions are the per-interval event series that distinguish program
// phases in this simulator: LLC pressure, miss intensity, write-path
// composition, and LAP-specific loop behavior.
func signature(iv sim.Interval) [sigDims]float64 {
	return [sigDims]float64{
		float64(iv.L3Accesses),
		float64(iv.L3Misses),
		float64(iv.Writebacks),
		float64(iv.Fills),
		float64(iv.LoopBlocks),
		float64(iv.TagOnlyUpdates),
	}
}

// Rep is one cluster of the sampling plan: the representative interval
// simulated in detail, and the member intervals it stands in for.
type Rep struct {
	// Interval is the representative's index into Profile.Intervals.
	Interval int
	// Weight is the cluster size — the representative's delta is
	// extrapolated by this factor.
	Weight uint64
	// Members lists every interval in the cluster (including the
	// representative), for the error model's dispersion estimate.
	Members []int
}

// Plan is a complete sampling plan: which intervals to simulate in
// detail and how to weight them. Reps are ordered by representative
// interval index, so an executor replays them in trace order.
type Plan struct {
	Reps []Rep
	// Clusters is the number of k-means clusters used for the full
	// intervals (excludes singleton clusters for partial windows).
	Clusters int
}

// autoClusters picks ~sqrt(n) clusters, clamped to 1..16 — enough to
// separate the major phases of our synthetic workloads without eroding
// the sampling speedup.
func autoClusters(n int) int {
	k := int(math.Round(math.Sqrt(float64(n))))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return k
}

// BuildPlan clusters the profile's full intervals into k groups
// (k = Config.SampleClusters, or ~sqrt(intervals) when 0) and picks one
// member of each as its representative. Selection is medoid-like but
// snapshot-aware: among a cluster's members the planner first minimizes
// the functional gap between the member's warmup window (warm intervals
// wide) and the nearest cache-state snapshot, then the distance to the
// cluster centroid. Cluster members are behaviorally interchangeable by
// construction, so trading a little centroid proximity for a gap of
// zero is cheap — and a zero gap means the replay restores exact warm
// state instead of re-simulating bridge intervals. Partial (short)
// trailing intervals become singleton clusters that are always
// simulated. The procedure is fully deterministic: maximin seeding from
// interval 0, ties broken by lowest index, no randomness.
func BuildPlan(p *Profile, k, warm int) Plan {
	var fullIdx, partIdx []int
	for i := range p.Intervals {
		if p.full(i) {
			fullIdx = append(fullIdx, i)
		} else {
			partIdx = append(partIdx, i)
		}
	}
	if k <= 0 {
		k = autoClusters(len(fullIdx))
	}
	if k > len(fullIdx) {
		k = len(fullIdx)
	}

	var reps []Rep
	if len(fullIdx) > 0 {
		pts := normalize(p, fullIdx)
		assign := kmeans(pts, k)
		for c := 0; c < k; c++ {
			var members []int
			for j, a := range assign {
				if a == c {
					members = append(members, j)
				}
			}
			if len(members) == 0 {
				continue
			}
			med := medoid(pts, members, func(j int) int { return p.warmGap(fullIdx[j], warm) })
			rep := Rep{Interval: fullIdx[med], Weight: uint64(len(members))}
			for _, j := range members {
				rep.Members = append(rep.Members, fullIdx[j])
			}
			reps = append(reps, rep)
		}
	}
	for _, i := range partIdx {
		reps = append(reps, Rep{Interval: i, Weight: 1, Members: []int{i}})
	}
	sort.Slice(reps, func(a, b int) bool { return reps[a].Interval < reps[b].Interval })
	return Plan{Reps: reps, Clusters: k}
}

// normalize embeds the selected intervals and z-scores each dimension
// (constant dimensions collapse to 0).
func normalize(p *Profile, idx []int) [][sigDims]float64 {
	pts := make([][sigDims]float64, len(idx))
	for j, i := range idx {
		pts[j] = signature(p.Intervals[i])
	}
	for d := 0; d < sigDims; d++ {
		var mean float64
		for j := range pts {
			mean += pts[j][d]
		}
		mean /= float64(len(pts))
		var varSum float64
		for j := range pts {
			dv := pts[j][d] - mean
			varSum += dv * dv
		}
		std := math.Sqrt(varSum / float64(len(pts)))
		for j := range pts {
			if std > 0 {
				pts[j][d] = (pts[j][d] - mean) / std
			} else {
				pts[j][d] = 0
			}
		}
	}
	return pts
}

func dist2(a, b [sigDims]float64) float64 {
	var s float64
	for d := 0; d < sigDims; d++ {
		dv := a[d] - b[d]
		s += dv * dv
	}
	return s
}

// kmeans runs deterministic Lloyd iterations: centers seeded by
// farthest-point traversal starting at point 0, assignment ties broken
// by lowest center index, at most 64 iterations (it converges far
// sooner on our interval counts).
func kmeans(pts [][sigDims]float64, k int) []int {
	centers := make([][sigDims]float64, 0, k)
	centers = append(centers, pts[0])
	minD := make([]float64, len(pts))
	for j := range pts {
		minD[j] = dist2(pts[j], centers[0])
	}
	for len(centers) < k {
		far, farD := 0, -1.0
		for j := range pts {
			if minD[j] > farD {
				far, farD = j, minD[j]
			}
		}
		centers = append(centers, pts[far])
		for j := range pts {
			if d := dist2(pts[j], pts[far]); d < minD[j] {
				minD[j] = d
			}
		}
	}

	assign := make([]int, len(pts))
	for iter := 0; iter < 64; iter++ {
		changed := false
		for j := range pts {
			best, bestD := 0, dist2(pts[j], centers[0])
			for c := 1; c < len(centers); c++ {
				if d := dist2(pts[j], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[j] != best {
				assign[j] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		var sums [][sigDims]float64 = make([][sigDims]float64, len(centers))
		counts := make([]int, len(centers))
		for j := range pts {
			c := assign[j]
			counts[c]++
			for d := 0; d < sigDims; d++ {
				sums[c][d] += pts[j][d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue // empty cluster keeps its old center
			}
			for d := 0; d < sigDims; d++ {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return assign
}

// medoid returns the member (an index into pts) minimizing, in order:
// the snapshot gap reported by gap, then the distance to the members'
// centroid, then the index.
func medoid(pts [][sigDims]float64, members []int, gap func(j int) int) int {
	var cen [sigDims]float64
	for _, j := range members {
		for d := 0; d < sigDims; d++ {
			cen[d] += pts[j][d]
		}
	}
	for d := 0; d < sigDims; d++ {
		cen[d] /= float64(len(members))
	}
	best, bestG, bestD := members[0], gap(members[0]), math.Inf(1)
	for _, j := range members {
		g, d := gap(j), dist2(pts[j], cen)
		if g < bestG || (g == bestG && d < bestD) {
			best, bestG, bestD = j, g, d
		}
	}
	return best
}
