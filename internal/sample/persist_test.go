package sample

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestProfilePersistRoundTrip is the satellite guarantee: a profile
// decoded from its serialized form (with positionally rebuilt source
// checkpoints) replays every policy to results deeply equal to the
// original profile's — so a persisted profile can stand in for the
// functional pass it skipped.
func TestProfilePersistRoundTrip(t *testing.T) {
	cfg := testCfg()
	cfg.SampleInterval = 2000
	cfg.SampleClusters = 4
	cfg.SampleWarmup = 1
	const total = 21000 // deliberately not an interval multiple

	orig, err := BuildProfile(cfg, testSources(2, total), cfg.SampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	payload := orig.Encode()
	restored, err := DecodeProfile(payload, testSources(2, total))
	if err != nil {
		t.Fatal(err)
	}
	if restored.PerCore != orig.PerCore || restored.Cores != orig.Cores ||
		!reflect.DeepEqual(restored.Intervals, orig.Intervals) {
		t.Fatal("restored profile metadata diverged")
	}
	if restored.snapStride != orig.snapStride || len(restored.states) != len(orig.states) {
		t.Fatalf("restored snapshots diverged: stride %d/%d, count %d/%d",
			restored.snapStride, orig.snapStride, len(restored.states), len(orig.states))
	}

	for name, mk := range map[string]func() core.Controller{
		"LAP":  func() core.Controller { return core.NewLAP() },
		"excl": func() core.Controller { return core.NewExclusive() },
	} {
		want, err := Run(cfg, mk(), orig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(cfg, mk(), restored)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: replay from restored profile diverged:\nwant %+v\ngot  %+v", name, want.Sim, got.Sim)
		}
	}
}

// TestProfileDecodeRejectsBadPayloads pins the degrade-to-rebuild path:
// shape and framing problems error, they never produce a usable-looking
// profile.
func TestProfileDecodeRejectsBadPayloads(t *testing.T) {
	cfg := testCfg()
	orig, err := BuildProfile(cfg, testSources(2, 21000), 2000)
	if err != nil {
		t.Fatal(err)
	}
	payload := orig.Encode()

	if _, err := DecodeProfile(payload, testSources(1, 21000)); err == nil {
		t.Fatal("decoding a 2-core profile with 1 source did not error")
	}
	if _, err := DecodeProfile(payload[:len(payload)-3], testSources(2, 21000)); err == nil {
		t.Fatal("truncated payload did not error")
	}
	if _, err := DecodeProfile(append(payload[:len(payload):len(payload)], 0), testSources(2, 21000)); err == nil {
		t.Fatal("trailing bytes did not error")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 99 // payload version
	if _, err := DecodeProfile(bad, testSources(2, 21000)); err == nil {
		t.Fatal("future payload version did not error")
	}
	if _, err := DecodeProfile(nil, testSources(2, 21000)); err == nil {
		t.Fatal("empty payload did not error")
	}
}
