package sample

import (
	"math"
	"sync/atomic"

	"repro/internal/obs"
)

// Package-level sampled-run telemetry. Counters accumulate across every
// sampled run in the process; the two gauges report the most recent
// run's headline figures. Package-level (rather than per-run) state
// matches how internal/experiments exposes its memo metrics: the obs
// registry is process-wide and sampled runs happen deep inside memoized
// closures.
var (
	runs              atomic.Uint64
	intervalsProfiled atomic.Uint64
	intervalsDetailed atomic.Uint64
	intervalsWarmup   atomic.Uint64
	intervalsSkipped  atomic.Uint64
	lastWorkReduction atomic.Uint64 // float64 bits
	lastMissRelCI     atomic.Uint64 // float64 bits
	lastEPIRelCI      atomic.Uint64 // float64 bits
)

// recordRun folds one finished run's estimate into the package
// telemetry.
func recordRun(est *Estimate) {
	runs.Add(1)
	intervalsProfiled.Add(uint64(est.IntervalsProfiled))
	intervalsDetailed.Add(uint64(est.IntervalsDetailed))
	intervalsWarmup.Add(uint64(est.IntervalsWarmup))
	intervalsSkipped.Add(uint64(est.IntervalsSkipped))
	lastWorkReduction.Store(math.Float64bits(est.WorkReduction))
	lastMissRelCI.Store(math.Float64bits(est.MissRateRelCI))
	lastEPIRelCI.Store(math.Float64bits(est.EPIRelCI))
}

// RegisterMetrics exposes the sampled-run telemetry on r under the
// ns_sample_* prefix. A nil registry is a no-op.
func RegisterMetrics(r *obs.Registry, ns string) {
	if r == nil {
		return
	}
	p := ns + "_sample_"
	r.CounterFunc(p+"runs_total", "sampled simulation runs completed", runs.Load)
	r.CounterFunc(p+"intervals_profiled_total", "trace intervals fingerprinted by profiling passes", intervalsProfiled.Load)
	r.CounterFunc(p+"intervals_detailed_total", "intervals simulated under the full timing model", intervalsDetailed.Load)
	r.CounterFunc(p+"intervals_warmup_total", "intervals re-run functionally for cache warmup", intervalsWarmup.Load)
	r.CounterFunc(p+"intervals_skipped_total", "intervals extrapolated without simulation", intervalsSkipped.Load)
	r.GaugeFunc(p+"last_work_reduction", "last run's profiled/(detailed+warmup) interval ratio", func() float64 {
		return math.Float64frombits(lastWorkReduction.Load())
	})
	r.GaugeFunc(p+"last_miss_rate_rel_ci", "last run's relative 95% CI half-width for miss rate", func() float64 {
		return math.Float64frombits(lastMissRelCI.Load())
	})
	r.GaugeFunc(p+"last_epi_rel_ci", "last run's relative 95% CI half-width for EPI", func() float64 {
		return math.Float64frombits(lastEPIRelCI.Load())
	})
}
