package sample

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.L1SizeBytes = 4 << 10
	cfg.L2SizeBytes = 16 << 10
	cfg.L3SizeBytes = 64 << 10
	return cfg
}

// phasey alternates loop-friendly and streaming behavior so the trace
// has genuinely distinct interval signatures to cluster.
func phasey() workload.Benchmark {
	return workload.Benchmark{
		Name: "phasey", InstrPerAccess: 2,
		Regions: []workload.Region{
			{Kind: workload.Loop, Blocks: 300, Weight: 0.5},
			{Kind: workload.StreamRMW, Weight: 0.3},
			{Kind: workload.Hot, Blocks: 16, Weight: 0.2, WriteFrac: 0.4},
		},
	}
}

func testSources(cores int, n uint64) []trace.Source {
	srcs := make([]trace.Source, cores)
	for i := 0; i < cores; i++ {
		srcs[i] = trace.Limit(trace.WithOffset(workload.New(phasey(), uint64(i+3)), uint64(i+1)<<50), n)
	}
	return srcs
}

func TestBuildProfileShape(t *testing.T) {
	cfg := testCfg()
	const perCore, total = 2000, 21000 // deliberately not a multiple
	p, err := BuildProfile(cfg, testSources(2, total), perCore)
	if err != nil {
		t.Fatal(err)
	}
	wantFull := total / perCore
	if len(p.Intervals) != wantFull+1 {
		t.Fatalf("got %d intervals, want %d full + 1 partial", len(p.Intervals), wantFull)
	}
	var acc uint64
	for i, iv := range p.Intervals {
		acc += iv.Accesses
		if i < wantFull && !p.full(i) {
			t.Fatalf("interval %d should be full, has %d accesses", i, iv.Accesses)
		}
	}
	if p.full(wantFull) {
		t.Fatalf("trailing interval should be partial")
	}
	if acc != 2*total {
		t.Fatalf("profile covers %d accesses, want %d", acc, 2*total)
	}
}

func TestBuildProfileDeterministic(t *testing.T) {
	cfg := testCfg()
	a, err := BuildProfile(cfg, testSources(2, 20000), 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildProfile(cfg, testSources(2, 20000), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Intervals) != len(b.Intervals) {
		t.Fatalf("interval counts differ: %d vs %d", len(a.Intervals), len(b.Intervals))
	}
	for i := range a.Intervals {
		if a.Intervals[i] != b.Intervals[i] {
			t.Fatalf("interval %d signatures differ:\n%+v\n%+v", i, a.Intervals[i], b.Intervals[i])
		}
	}
}

func TestBuildProfileRejectsUnforkable(t *testing.T) {
	cfg := testCfg()
	// Wrapping a source in a type that does not implement Forker makes
	// the whole stack unforkable.
	srcs := testSources(2, 1000)
	for i := range srcs {
		srcs[i] = unforkable{srcs[i]}
	}
	if _, err := BuildProfile(cfg, srcs, 1000); err == nil {
		t.Fatal("expected ErrNotForkable")
	}
}

type unforkable struct{ trace.Source }

func TestBuildPlanDeterministicAndComplete(t *testing.T) {
	cfg := testCfg()
	p, err := BuildProfile(cfg, testSources(2, 40000), 2000)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildPlan(p, 0, 0)
	b := BuildPlan(p, 0, 0)
	if len(a.Reps) != len(b.Reps) {
		t.Fatalf("plans differ in size: %d vs %d", len(a.Reps), len(b.Reps))
	}
	seen := make(map[int]bool)
	var weight uint64
	for i, rep := range a.Reps {
		br := b.Reps[i]
		if rep.Interval != br.Interval || rep.Weight != br.Weight {
			t.Fatalf("rep %d differs: %+v vs %+v", i, rep, br)
		}
		if i > 0 && rep.Interval <= a.Reps[i-1].Interval {
			t.Fatalf("reps not in trace order at %d", i)
		}
		weight += rep.Weight
		if uint64(len(rep.Members)) != rep.Weight {
			t.Fatalf("rep %d weight %d != member count %d", i, rep.Weight, len(rep.Members))
		}
		for _, m := range rep.Members {
			if seen[m] {
				t.Fatalf("interval %d assigned to two clusters", m)
			}
			seen[m] = true
		}
	}
	if weight != uint64(len(p.Intervals)) {
		t.Fatalf("cluster weights sum to %d, want %d intervals", weight, len(p.Intervals))
	}
}

// TestSampledTracksExact is the accuracy contract at unit-test scale:
// a sampled run must land within a few percent of the exact run on the
// headline metrics, and its estimate must report the work split
// coherently.
func TestSampledTracksExact(t *testing.T) {
	cfg := testCfg()
	const perCore, total = 2000, 60000

	exact := sim.Run(cfg, core.NewLAP(), testSources(2, total))

	scfg := cfg
	scfg.SampleInterval = perCore
	scfg.SampleClusters = 8
	scfg.SampleWarmup = 1
	p, err := BuildProfile(scfg, testSources(2, total), perCore)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(scfg, core.NewLAP(), p)
	if err != nil {
		t.Fatal(err)
	}

	relErr := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a)
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	missExact := float64(exact.Met.L3Misses) / float64(exact.Met.L3Accesses)
	missSampled := float64(got.Sim.Met.L3Misses) / float64(got.Sim.Met.L3Accesses)
	if e := relErr(missSampled, missExact); e > 0.05 {
		t.Fatalf("miss rate off by %.1f%%: sampled %.4f vs exact %.4f", 100*e, missSampled, missExact)
	}
	if e := relErr(got.Sim.EPI.Total(), exact.EPI.Total()); e > 0.05 {
		t.Fatalf("EPI off by %.1f%%: sampled %.4f vs exact %.4f", 100*e, got.Sim.EPI, exact.EPI)
	}
	if e := relErr(float64(got.Sim.Met.Instructions), float64(exact.Met.Instructions)); e > 0.01 {
		t.Fatalf("instructions off by %.2f%%: sampled %d vs exact %d", 100*e, got.Sim.Met.Instructions, exact.Met.Instructions)
	}

	est := got.Est
	if est.IntervalsProfiled != len(p.Intervals) {
		t.Fatalf("estimate reports %d profiled intervals, profile has %d", est.IntervalsProfiled, len(p.Intervals))
	}
	if est.IntervalsDetailed != len(BuildPlan(p, scfg.SampleClusters, scfg.SampleWarmup).Reps) {
		t.Fatalf("estimate reports %d detailed intervals, plan has %d reps", est.IntervalsDetailed, len(BuildPlan(p, scfg.SampleClusters, scfg.SampleWarmup).Reps))
	}
	if est.IntervalsDetailed >= est.IntervalsProfiled {
		t.Fatalf("sampling simulated %d of %d intervals — no reduction", est.IntervalsDetailed, est.IntervalsProfiled)
	}
	if est.WorkReduction <= 1 {
		t.Fatalf("work reduction %.2f, want > 1", est.WorkReduction)
	}
	if est.MissRateRelCI < 0 || est.EPIRelCI < 0 {
		t.Fatalf("negative confidence half-widths: %+v", est)
	}
}

// TestSampledDeterministic: two sampled runs of the same profile and
// policy must agree exactly.
func TestSampledDeterministic(t *testing.T) {
	cfg := testCfg()
	cfg.SampleInterval = 2000
	cfg.SampleClusters = 4
	cfg.SampleWarmup = 1
	p, err := BuildProfile(cfg, testSources(2, 30000), cfg.SampleInterval)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg, core.NewLAP(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, core.NewLAP(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.Met != b.Sim.Met || a.Sim.EPI != b.Sim.EPI {
		t.Fatalf("sampled runs of one profile diverged")
	}
	if a.Est != b.Est {
		t.Fatalf("estimates diverged: %+v vs %+v", a.Est, b.Est)
	}
}
