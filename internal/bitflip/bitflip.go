// Package bitflip implements Flip-N-Write (Cho & Lee, MICRO 2009 [21]),
// the bit-level write-reduction technique the paper cites as orthogonal
// to LAP: before writing a word, compare it with the old contents and, if
// more than half the bits would flip, store the complement instead,
// recording the choice in one flag bit per word. The number of written
// cells is then bounded by half the word width plus the flag.
//
// The LAP paper reduces how many LLC *writes* happen; Flip-N-Write
// reduces how many *cells* each write touches. The experiments package
// uses this codec's measured energy scale to demonstrate that the two
// compose (Ext. FNW).
package bitflip

import "math/bits"

// WordBits is the coding granularity in bits. Flip-N-Write operates on
// machine words; 64 matches the simulator's modelling granularity.
const WordBits = 64

// Word is one coded memory word: the stored payload plus the flip flag.
type Word struct {
	// Stored is the bit pattern kept in the array (possibly complemented).
	Stored uint64
	// Flipped reports whether Stored is the complement of the logical
	// value.
	Flipped bool
}

// Value returns the logical (decoded) value of the word.
func (w Word) Value() uint64 {
	if w.Flipped {
		return ^w.Stored
	}
	return w.Stored
}

// Write updates the word to hold the logical value v, returning the
// number of cells written (flipped data bits plus the flag bit when it
// changes). This is the Flip-N-Write coding decision: store v or ^v,
// whichever flips at most WordBits/2 data cells.
func (w *Word) Write(v uint64) (cellsWritten int) {
	direct := bits.OnesCount64(w.Stored ^ v)
	inverted := bits.OnesCount64(w.Stored ^ ^v)
	if direct <= inverted {
		// Store v as-is.
		cells := direct
		if w.Flipped {
			cells++ // flag bit changes
		}
		w.Stored = v
		w.Flipped = false
		return cells
	}
	cells := inverted
	if !w.Flipped {
		cells++
	}
	w.Stored = ^v
	w.Flipped = true
	return cells
}

// MaxCellsPerWrite is Flip-N-Write's guarantee: no write touches more
// than half the data cells plus the flag.
const MaxCellsPerWrite = WordBits/2 + 1

// Line is a 64-byte cache line coded word-by-word.
type Line struct {
	words [8]Word
}

// LineBits is the number of data bits in a coded line.
const LineBits = 8 * WordBits

// WriteLine updates the line with the 8-word payload, returning total
// cells written.
func (l *Line) WriteLine(payload *[8]uint64) (cellsWritten int) {
	for i := range l.words {
		cellsWritten += l.words[i].Write(payload[i])
	}
	return cellsWritten
}

// ReadLine decodes the line's logical contents.
func (l *Line) ReadLine() [8]uint64 {
	var out [8]uint64
	for i, w := range l.words {
		out[i] = w.Value()
	}
	return out
}

// EnergyScale converts a cells-written count into the fraction of a
// full-line write's dynamic energy, assuming per-cell write energy
// dominates (the STT-RAM case). The flag bits are counted as ordinary
// cells.
func EnergyScale(cellsWritten int) float64 {
	return float64(cellsWritten) / float64(LineBits)
}
