package bitflip

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWriteRoundTrip(t *testing.T) {
	var w Word
	for _, v := range []uint64{0, ^uint64(0), 0xdeadbeef, 0x5555555555555555} {
		w.Write(v)
		if w.Value() != v {
			t.Fatalf("Value after Write(%#x) = %#x", v, w.Value())
		}
	}
}

func TestComplementStoredWhenCheaper(t *testing.T) {
	var w Word // stored 0, not flipped
	// Writing all-ones directly would flip 64 cells; FNW must store the
	// complement (zero) and set the flag: 1 cell.
	cells := w.Write(^uint64(0))
	if !w.Flipped {
		t.Fatal("FNW did not complement an expensive write")
	}
	if cells != 1 {
		t.Fatalf("cells = %d, want 1 (flag only)", cells)
	}
	if w.Value() != ^uint64(0) {
		t.Fatal("decoded value wrong after complement")
	}
}

func TestDirectStoreWhenCheaper(t *testing.T) {
	var w Word
	cells := w.Write(0b1011) // 3 bits flip, far below half
	if w.Flipped || cells != 3 {
		t.Fatalf("flipped=%v cells=%d, want direct store of 3 cells", w.Flipped, cells)
	}
}

func TestFlagTransitionCounted(t *testing.T) {
	var w Word
	w.Write(^uint64(0)) // flips flag on
	// Now write zero: stored is 0 (complemented all-ones); storing 0
	// directly flips 0 data cells but clears the flag -> 1 cell.
	cells := w.Write(0)
	if w.Flipped || cells != 1 {
		t.Fatalf("flipped=%v cells=%d, want direct store costing only the flag", w.Flipped, cells)
	}
}

// Property: decode always returns the last written value, and cells per
// write never exceed the Flip-N-Write bound.
func TestPropertyRoundTripAndBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		var w Word
		for i := 0; i < 200; i++ {
			v := rng.Uint64()
			cells := w.Write(v)
			if cells > MaxCellsPerWrite {
				return false
			}
			if w.Value() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FNW never writes more cells than the naive (uncoded) scheme
// plus the flag bit.
func TestPropertyNeverWorseThanNaive(t *testing.T) {
	f := func(old, v uint64, flipped bool) bool {
		w := Word{Stored: old, Flipped: flipped}
		naive := bits.OnesCount64(w.Value() ^ v)
		cells := w.Write(v)
		return cells <= naive+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLineRoundTrip(t *testing.T) {
	var l Line
	payload := [8]uint64{1, 2, 3, ^uint64(0), 0, 42, 1 << 63, 0xabcdef}
	l.WriteLine(&payload)
	if l.ReadLine() != payload {
		t.Fatalf("line round trip failed: %v", l.ReadLine())
	}
}

// TestAverageEnergyScale documents the ~0.37 average write-energy scale
// the experiments package uses for the Ext. FNW composition table:
// random 64-bit payload updates flip ~half the bits, and FNW caps each
// word at 33 cells, giving an expectation just below 0.5; real update
// streams with partial-word locality land lower. We model the mixture
// with half random-word and half sparse updates.
func TestAverageEnergyScale(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	var l Line
	total := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		var payload [8]uint64
		cur := l.ReadLine()
		for j := range payload {
			switch i % 2 {
			case 0: // full random update
				payload[j] = rng.Uint64()
			default: // sparse update: change one byte per word
				payload[j] = cur[j] ^ (uint64(rng.Uint64N(256)) << (8 * (j % 8)))
			}
		}
		total += EnergyScale(l.WriteLine(&payload))
	}
	avg := total / n
	if avg < 0.25 || avg > 0.45 {
		t.Fatalf("average FNW energy scale = %.3f, want ~0.37 (update the Ext. FNW constant if the payload model changed)", avg)
	}
}

func TestEnergyScaleBounds(t *testing.T) {
	if EnergyScale(0) != 0 {
		t.Fatal("zero cells must scale to zero energy")
	}
	if s := EnergyScale(8 * MaxCellsPerWrite); s > 0.52 {
		t.Fatalf("worst-case FNW line write scale = %.3f, want <= ~0.52", s)
	}
}

func BenchmarkWriteLine(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	var l Line
	var payload [8]uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range payload {
			payload[j] = rng.Uint64()
		}
		l.WriteLine(&payload)
	}
}
