package experiments

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Robustness extensions: the headline policy ordering should survive
// changes to simulator components the paper holds fixed — the memory
// model and the (absent) prefetcher.

// robustnessTable runs the evaluated policies over the Table III mixes
// under two configurations and reports the average EPI vs non-inclusive
// for each.
func robustnessTable(id, title string, opt Options, configs []struct {
	label string
	cfg   sim.Config
}) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"configuration", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"avg over Table III mixes; the policy ordering must be stable across configurations",
		},
	}
	mixes := workload.TableIII()
	var batch []func()
	for _, c := range configs {
		pols := evaluatedPolicies(c.cfg, opt)
		batch = append(batch, mixRunBatch(c.cfg, opt, mixes, append([]namedPolicy{noniPol()}, pols...)...)...)
	}
	warm(opt, batch)
	for _, c := range configs {
		pols := evaluatedPolicies(c.cfg, opt)
		sums := make([]float64, len(pols))
		for _, mix := range mixes {
			base := run(c.cfg, "noni", Noni(), mix, opt)
			for i, p := range pols {
				r := run(c.cfg, p.Name, p.New, mix, opt)
				sums[i] += ratio(r.EPI.Total(), base.EPI.Total())
			}
		}
		row := []string{c.label}
		for _, s := range sums {
			row = append(row, f2(s/float64(len(mixes))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ExtDRAM re-runs the policy comparison under the DDR3-1600 row-buffer
// memory model instead of the fixed 160-cycle latency.
func ExtDRAM(opt Options) *Table {
	fixed := sim.DefaultConfig()
	rowbuf := fixed
	rowbuf.UseDRAM = true
	return robustnessTable("Ext. DRAM",
		"Policy EPI vs non-inclusive under fixed-latency and row-buffer DRAM memory",
		opt, []struct {
			label string
			cfg   sim.Config
		}{
			{"fixed 160-cycle memory", fixed},
			{"DDR3-1600 row-buffer model", rowbuf},
		})
}

// ExtPrefetch re-runs the policy comparison with a next-2-line L2
// prefetcher, which the paper's configuration lacks. Prefetch traffic
// flows through the inclusion controllers, so it stresses exactly the
// redundant-fill path LAP eliminates.
func ExtPrefetch(opt Options) *Table {
	off := sim.DefaultConfig()
	on := off
	on.PrefetchDegree = 2
	return robustnessTable("Ext. Prefetch",
		"Policy EPI vs non-inclusive without and with a next-2-line L2 prefetcher",
		opt, []struct {
			label string
			cfg   sim.Config
		}{
			{"no prefetcher (paper config)", off},
			{"next-2-line L2 prefetcher", on},
		})
}
