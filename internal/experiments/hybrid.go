package experiments

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Hybrid SRAM/STT-RAM LLC experiments (Section VI-E): Figure 24 compares
// all policies on the hybrid LLC; Figure 25 ablates the Lhybrid stages.

// Fig24 reports hybrid-LLC EPI normalised to non-inclusive.
func Fig24(opt Options) *Table {
	cfg := sim.DefaultConfig().WithHybridL3()
	pols := append(evaluatedPolicies(cfg, opt), namedPolicy{"Lhybrid", Lhybrid(opt)})
	t := &Table{
		ID:     "Fig. 24",
		Title:  "Hybrid 2MB SRAM + 6MB STT-RAM LLC: EPI normalised to non-inclusive",
		Header: []string{"mix", "Exclusive", "FLEXclusion", "Dswitch", "LAP", "Lhybrid"},
		Notes: []string{
			"paper shape: LAP saves ~15%/~8% vs noni/ex; Lhybrid ~22%/~15% (up to 50%/41%)",
		},
	}
	t.Rows = append(t.Rows, policyMixRows(cfg, opt, pols)...)
	return t
}

// policyMixRows runs every (Table III mix, policy) pair under cfg —
// warmed through the parallel scheduler, collected in mix order — and
// returns one row per mix plus a trailing average row, each cell the
// policy's EPI normalised to the mix's non-inclusive baseline.
func policyMixRows(cfg sim.Config, opt Options, pols []namedPolicy) [][]string {
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, append([]namedPolicy{noniPol()}, pols...)...)
	var rows [][]string
	sums := make([]float64, len(pols))
	for _, mix := range mixes {
		base := run(cfg, "noni", Noni(), mix, opt)
		row := []string{mix.Name}
		for i, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			rel := ratio(r.EPI.Total(), base.EPI.Total())
			sums[i] += rel
			row = append(row, f2(rel))
		}
		rows = append(rows, row)
	}
	avg := []string{"Avg"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(mixes))))
	}
	return append(rows, avg)
}

// Fig25 ablates Lhybrid's placement stages on the hybrid LLC.
func Fig25(opt Options) *Table {
	cfg := sim.DefaultConfig().WithHybridL3()
	pols := []namedPolicy{
		{"LAP", LAP(opt)},
		{"LAP+Winv", HybridStage(opt, true, false, false)},
		{"LAP+LoopSTT", HybridStage(opt, false, true, false)},
		{"LAP+NloopSRAM", HybridStage(opt, false, false, true)},
		{"Lhybrid", Lhybrid(opt)},
	}
	t := &Table{
		ID:     "Fig. 25",
		Title:  "Lhybrid placement-stage ablation on the hybrid LLC: EPI normalised to non-inclusive",
		Header: []string{"mix", "LAP", "LAP+Winv", "LAP+LoopSTT", "LAP+NloopSRAM", "Lhybrid"},
		Notes: []string{
			"paper shape: each stage helps a little; combined Lhybrid is ~7% better than plain LAP",
		},
	}
	t.Rows = append(t.Rows, policyMixRows(cfg, opt, pols)...)
	return t
}
