package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Evaluation experiments (Section VI-A/B): Figures 12-19 on
// multi-programmed SPEC mixes with the STT-RAM (and SRAM) LLC.

// namedPolicy pairs a policy name with its factory.
type namedPolicy struct {
	Name string
	New  sim.Controller
}

// evaluatedPolicies returns the Table IV comparison set (the baselines
// plus LAP) for a configuration.
func evaluatedPolicies(cfg sim.Config, opt Options) []namedPolicy {
	return []namedPolicy{
		{"Exclusive", Ex()},
		{"FLEXclusion", Flex(opt)},
		{"Dswitch", Dswitch(cfg, opt)},
		{"LAP", LAP(opt)},
	}
}

// mixStats holds one mix's non-inclusive/exclusive baseline measurements.
type mixStats struct {
	Mix  workload.Mix
	Noni sim.Result
	Ex   sim.Result
}

// Wrel is the exclusive policy's LLC write traffic relative to
// non-inclusive; Mrel the relative miss count.
func (m mixStats) Wrel() float64 {
	return ratio(float64(m.Ex.Met.WritesToLLC()), float64(m.Noni.Met.WritesToLLC()))
}

// Mrel is the relative LLC miss count.
func (m mixStats) Mrel() float64 {
	return ratio(float64(m.Ex.Met.L3Misses), float64(m.Noni.Met.L3Misses))
}

// baselines runs noni and ex for a mix under cfg.
func baselines(cfg sim.Config, mix workload.Mix, opt Options) mixStats {
	return mixStats{
		Mix:  mix,
		Noni: run(cfg, "noni", Noni(), mix, opt),
		Ex:   run(cfg, "ex", Ex(), mix, opt),
	}
}

// randomMixStats measures the opt.RandomMixes random mixes under the
// STT-RAM LLC and returns them sorted by Wrel, the paper's presentation
// order for Figures 12(c)/13/14.
func randomMixStats(opt Options) []mixStats {
	cfg := sim.DefaultConfig()
	mixes := workload.RandomMixes(opt.RandomMixes, cfg.Cores, opt.Seed)
	warmMixRuns(cfg, opt, mixes, noniPol(), exPol())
	stats := make([]mixStats, len(mixes))
	for i, m := range mixes {
		stats[i] = baselines(cfg, m, opt)
	}
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Wrel() < stats[j].Wrel() })
	return stats
}

// Fig12 reports the exclusive policy's EPI normalised to non-inclusive
// for the Table III mixes (SRAM and STT-RAM, with static/dynamic
// breakdown) plus WL/WH/overall summaries over the random mixes.
func Fig12(opt Options) *Table {
	stt := sim.DefaultConfig()
	sram := stt.WithSRAML3()
	t := &Table{
		ID:     "Fig. 12",
		Title:  "EPI of exclusive normalised to non-inclusive; static/dynamic breakdown (STT-RAM)",
		Header: []string{"mix", "Wrel", "SRAM ex/noni", "STT ex/noni", "noni st/dyn", "ex st/dyn"},
		Notes: []string{
			"paper shape: SRAM always favours exclusion; STT splits by Wrel (WL: ex ~18% better; WH: ex ~12% worse)",
		},
	}
	mixes := workload.TableIII()
	warm(opt, append(
		mixRunBatch(stt, opt, mixes, noniPol(), exPol()),
		mixRunBatch(sram, opt, mixes, noniPol(), exPol())...))
	for _, mix := range mixes {
		bSTT := baselines(stt, mix, opt)
		bSRAM := baselines(sram, mix, opt)
		t.AddRow(mix.Name,
			f2(bSTT.Wrel()),
			f2(ratio(bSRAM.Ex.EPI.Total(), bSRAM.Noni.EPI.Total())),
			f2(ratio(bSTT.Ex.EPI.Total(), bSTT.Noni.EPI.Total())),
			f2(bSTT.Noni.EPI.StaticNJPerInstr/bSTT.Noni.EPI.Total())+"/"+f2(bSTT.Noni.EPI.DynamicNJPerInstr/bSTT.Noni.EPI.Total()),
			f2(bSTT.Ex.EPI.StaticNJPerInstr/bSTT.Noni.EPI.Total())+"/"+f2(bSTT.Ex.EPI.DynamicNJPerInstr/bSTT.Noni.EPI.Total()),
		)
	}
	// Summaries over the random mixes (STT-RAM).
	var wl, wh, all []float64
	for _, s := range randomMixStats(opt) {
		r := ratio(s.Ex.EPI.Total(), s.Noni.EPI.Total())
		all = append(all, r)
		if s.Wrel() < 1 {
			wl = append(wl, r)
		} else {
			wh = append(wh, r)
		}
	}
	t.AddRow("AvgWL("+itoa(len(wl))+")", "<1", "", f2(mean(wl)), "", "")
	t.AddRow("AvgWH("+itoa(len(wh))+")", ">=1", "", f2(mean(wh)), "", "")
	t.AddRow("AvgAll", "", "", f2(mean(all)), "", "")
	t.AddRow("Max", "", "", f2(maxOf(all)), "", "")
	t.AddRow("Min", "", "", f2(minOf(all)), "", "")
	return t
}

// Fig13 reports the workload-characteristic scatter: relative misses vs
// relative writes of exclusion over the random mixes, and which policy
// each mix favours. The paper's borderline has slope -0.8 in
// (Mrel, Wrel) space: mixes below favour exclusion.
func Fig13(opt Options) *Table {
	t := &Table{
		ID:     "Fig. 13",
		Title:  "Workload characteristics: relative misses (Mrel) and writes (Wrel) of exclusion",
		Header: []string{"mix", "members", "Mrel", "Wrel", "favoured (by EPI)"},
		Notes: []string{
			"paper shape: mixes separate along a borderline of slope ~-0.8; higher Wrel favours non-inclusion",
		},
	}
	agree := 0
	stats := randomMixStats(opt)
	for _, s := range stats {
		fav := "exclusion"
		if s.Ex.EPI.Total() > s.Noni.EPI.Total() {
			fav = "non-inclusion"
		}
		// Paper borderline: Wrel = -0.8*Mrel + c with exclusion favoured
		// below. Using c ~= 1.8 matched against our measurements.
		predicted := "exclusion"
		if s.Wrel() > -0.8*s.Mrel()+1.8 {
			predicted = "non-inclusion"
		}
		if fav == predicted {
			agree++
		}
		t.AddRow(s.Mix.Name, joinShort(s.Mix.Members), f2(s.Mrel()), f2(s.Wrel()), fav)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("borderline (slope -0.8) classifies %d/%d mixes correctly", agree, len(stats)))
	return t
}

// Fig14 compares all evaluated policies: overall EPI, dynamic EPI, and
// throughput, each normalised to non-inclusive.
func Fig14(opt Options) *Table {
	cfg := sim.DefaultConfig()
	pols := evaluatedPolicies(cfg, opt)
	t := &Table{
		ID:     "Fig. 14",
		Title:  "Policy comparison on the STT-RAM LLC (normalised to non-inclusive)",
		Header: []string{"mix", "metric", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"paper shape: LAP saves ~20%/~12% energy vs noni/ex, Dswitch ~10%/~2%; LAP throughput ~= exclusive (+2%)",
		},
	}
	mixes := workload.TableIII()
	stats := randomMixStats(opt) // warms its own baselines in parallel
	statMixes := make([]workload.Mix, len(stats))
	for i, s := range stats {
		statMixes[i] = s.Mix
	}
	withBase := append([]namedPolicy{noniPol()}, pols...)
	warm(opt, append(
		mixRunBatch(cfg, opt, mixes, withBase...),
		mixRunBatch(cfg, opt, statMixes, pols...)...))
	addMix := func(mix workload.Mix) {
		base := run(cfg, "noni", Noni(), mix, opt)
		epi := []string{mix.Name, "EPI"}
		dyn := []string{"", "dynamic EPI"}
		perf := []string{"", "throughput"}
		for _, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			epi = append(epi, f2(ratio(r.EPI.Total(), base.EPI.Total())))
			dyn = append(dyn, f2(ratio(r.EPI.DynamicNJPerInstr, base.EPI.DynamicNJPerInstr)))
			perf = append(perf, f2(ratio(r.Throughput, base.Throughput)))
		}
		t.Rows = append(t.Rows, epi, dyn, perf)
	}
	for _, mix := range mixes {
		addMix(mix)
	}
	// Averages over the random mixes.
	sums := make(map[string][3]float64, len(pols))
	for _, s := range stats {
		for _, p := range pols {
			r := run(cfg, p.Name, p.New, s.Mix, opt)
			acc := sums[p.Name]
			acc[0] += ratio(r.EPI.Total(), s.Noni.EPI.Total())
			acc[1] += ratio(r.EPI.DynamicNJPerInstr, s.Noni.EPI.DynamicNJPerInstr)
			acc[2] += ratio(r.Throughput, s.Noni.Throughput)
			sums[p.Name] = acc
		}
	}
	n := float64(len(stats))
	for mi, metric := range []string{"EPI", "dynamic EPI", "throughput"} {
		row := []string{"", metric}
		if mi == 0 {
			row[0] = fmt.Sprintf("Avg(%d mixes)", len(stats))
		}
		for _, p := range pols {
			row = append(row, f2(sums[p.Name][mi]/n))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig15 decomposes LLC write traffic by source, normalised to the
// non-inclusive policy's total.
func Fig15(opt Options) *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Fig. 15",
		Title:  "Writes to the STT-RAM LLC by source, normalised to non-inclusive total",
		Header: []string{"mix", "policy", "data-fill", "L2 dirty", "L2 clean", "total"},
		Notes: []string{
			"paper shape: LAP eliminates data-fills and ~30% of clean insertions; -35%/-29% total vs noni/ex",
		},
	}
	pols := []namedPolicy{{"noni", Noni()}, {"ex", Ex()}, {"LAP", LAP(opt)}}
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, pols...)
	for _, mix := range mixes {
		noniRun := run(cfg, "noni", Noni(), mix, opt)
		base := float64(noniRun.Met.WritesToLLC())
		for _, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			t.AddRow(mix.Name, p.Name,
				f2(ratio(float64(r.Met.WritesFill), base)),
				f2(ratio(float64(r.Met.WritesDirty), base)),
				f2(ratio(float64(r.Met.WritesClean), base)),
				f2(ratio(float64(r.Met.WritesToLLC()), base)))
		}
	}
	return t
}

// Fig16 reports redundant clean (loop-block) insertions as a share of all
// LLC writes, per policy.
func Fig16(opt Options) *Table {
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	pols := evaluatedPolicies(cfg, opt)
	t := &Table{
		ID:     "Fig. 16",
		Title:  "Redundant clean (loop-block) insertions as a share of LLC writes",
		Header: []string{"mix", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"paper shape: WH mixes have many loop-blocks; FLEX/Dswitch trim a few points; LAP removes most",
		},
	}
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, pols...)
	for _, mix := range mixes {
		row := []string{mix.Name}
		for _, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			met := r.Met
			row = append(row, pct(ratio(float64(r.Prof.RedundantCleanInserts), float64(met.WritesToLLC()))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig17 reports the redundant share of LLC data-fills under the
// non-inclusive policy per mix.
func Fig17(opt Options) *Table {
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	t := &Table{
		ID:     "Fig. 17",
		Title:  "Redundant LLC data-fills under non-inclusion",
		Header: []string{"mix", "redundant fills"},
		Notes: []string{
			"paper shape: ~9.6% on average, >30% for some mixes (our RMW-calibrated surrogates run higher; see EXPERIMENTS.md)",
		},
	}
	total := 0.0
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, noniPol())
	for _, mix := range mixes {
		r := run(cfg, "noni", Noni(), mix, opt)
		fr := r.Prof.RedundantFillFrac()
		total += fr
		t.AddRow(mix.Name, pct(fr))
	}
	t.AddRow("Avg", pct(total/float64(len(mixes))))
	return t
}

// Fig18 reports LLC MPKI normalised to non-inclusive for exclusive and
// LAP.
func Fig18(opt Options) *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Fig. 18",
		Title:  "LLC MPKI normalised to non-inclusive",
		Header: []string{"mix", "Exclusive", "LAP"},
		Notes: []string{
			"paper shape: exclusive -23% misses on average; LAP within ~1% of exclusive",
		},
	}
	var sumEx, sumLap float64
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, noniPol(), exPol(), namedPolicy{"LAP", LAP(opt)})
	for _, mix := range mixes {
		base := run(cfg, "noni", Noni(), mix, opt)
		ex := run(cfg, "ex", Ex(), mix, opt)
		lap := run(cfg, "LAP", LAP(opt), mix, opt)
		re := ratio(ex.MPKI(), base.MPKI())
		rl := ratio(lap.MPKI(), base.MPKI())
		sumEx += re
		sumLap += rl
		t.AddRow(mix.Name, f2(re), f2(rl))
	}
	n := float64(len(mixes))
	t.AddRow("Avg", f2(sumEx/n), f2(sumLap/n))
	return t
}

// Fig19 compares LAP's replacement variants (LAP-LRU, LAP-Loop, dueling
// LAP), EPI normalised to non-inclusive.
func Fig19(opt Options) *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Fig. 19",
		Title:  "LAP replacement variants: overall EPI normalised to non-inclusive",
		Header: []string{"mix", "LAP-LRU", "LAP-Loop", "LAP"},
		Notes: []string{
			"paper shape: neither fixed policy dominates; set-dueling LAP tracks the better one per mix",
		},
	}
	var s1, s2, s3 float64
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, noniPol(),
		namedPolicy{"LAP-LRU", LAPLRU()}, namedPolicy{"LAP-Loop", LAPLoop()}, namedPolicy{"LAP", LAP(opt)})
	for _, mix := range mixes {
		base := run(cfg, "noni", Noni(), mix, opt)
		lru := run(cfg, "LAP-LRU", LAPLRU(), mix, opt)
		loop := run(cfg, "LAP-Loop", LAPLoop(), mix, opt)
		lap := run(cfg, "LAP", LAP(opt), mix, opt)
		r1 := ratio(lru.EPI.Total(), base.EPI.Total())
		r2 := ratio(loop.EPI.Total(), base.EPI.Total())
		r3 := ratio(lap.EPI.Total(), base.EPI.Total())
		s1, s2, s3 = s1+r1, s2+r2, s3+r3
		t.AddRow(mix.Name, f2(r1), f2(r2), f2(r3))
	}
	n := float64(len(mixes))
	t.AddRow("Avg", f2(s1/n), f2(s2/n), f2(s3/n))
	return t
}

// Helpers.

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func joinShort(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		if len(n) > 4 {
			n = n[:4]
		}
		out += n
	}
	return out
}
