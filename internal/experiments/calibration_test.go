package experiments

// The calibration-envelope test: executes the motivation experiments and
// verifies every SPEC surrogate still lands inside the target ranges of
// workload.CalibrationTargets(). This is the guard rail that turns the
// Fig. 2/4/6 calibration into an executable specification — edit a
// surrogate and this test tells you whether the paper's shapes survived.

import (
	"testing"

	"repro/internal/workload"
)

func TestCalibrationEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration envelope needs full-length traces")
	}
	opt := Defaults()
	opt.Accesses = 250_000 // enough passes for loop statistics, ~30s total

	loopFrac := map[string]float64{}
	for _, r := range Fig4Data(opt) {
		loopFrac[r.Bench] = r.Total()
	}
	redundant := map[string]float64{}
	for _, r := range Fig6Data(opt) {
		redundant[r.Bench] = r.RedundantFillFrac
	}
	wrel := map[string]float64{}
	for _, r := range Fig2Data(opt) {
		wrel[r.Bench] = r.Wrel
	}

	targets := workload.CalibrationTargets()
	if len(targets) != len(workload.SPEC()) {
		t.Fatalf("calibration covers %d of %d surrogates", len(targets), len(workload.SPEC()))
	}
	for _, c := range targets {
		lf, ok := loopFrac[c.Bench]
		if !ok {
			t.Errorf("%s: no Fig. 4 measurement", c.Bench)
			continue
		}
		if c.LoopFracMin > 0 && lf < c.LoopFracMin {
			t.Errorf("%s: loop fraction %.2f below target %.2f", c.Bench, lf, c.LoopFracMin)
		}
		if c.LoopFracMax > 0 && lf > c.LoopFracMax {
			t.Errorf("%s: loop fraction %.2f above target %.2f", c.Bench, lf, c.LoopFracMax)
		}
		rf := redundant[c.Bench]
		if c.RedundantFillMin > 0 && rf < c.RedundantFillMin {
			t.Errorf("%s: redundant fills %.2f below target %.2f", c.Bench, rf, c.RedundantFillMin)
		}
		if c.RedundantFillMax > 0 && rf > c.RedundantFillMax {
			t.Errorf("%s: redundant fills %.2f above target %.2f", c.Bench, rf, c.RedundantFillMax)
		}
		w := wrel[c.Bench]
		if c.WrelMin > 0 && w < c.WrelMin {
			t.Errorf("%s: Wrel %.2f below target %.2f", c.Bench, w, c.WrelMin)
		}
		if c.WrelMax > 0 && w > c.WrelMax {
			t.Errorf("%s: Wrel %.2f above target %.2f", c.Bench, w, c.WrelMax)
		}
	}
}
