// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigNN/TableNN function runs the required simulations
// and returns a Table whose rows mirror the series the paper plots;
// cmd/lapexp prints them and bench_test.go wraps each in a testing.B
// benchmark. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/sim"
)

// Options tunes experiment scale. The defaults trade absolute magnitude
// for wall-clock: shapes (ratios between policies) stabilise well below
// the paper's 2B-cycle windows.
type Options struct {
	// Accesses is the per-core trace length.
	Accesses uint64
	// Seed makes the synthetic workloads deterministic.
	Seed uint64
	// RandomMixes is the random-mix count for Figs. 12-14 (paper: 50).
	RandomMixes int
	// DuelPeriod is the set-dueling window in cycles. The paper uses 10M
	// cycles over 2B-cycle runs; our shorter runs scale the window so the
	// duel still re-elects many times per run.
	DuelPeriod uint64
	// Jobs bounds the scheduler's worker pool for the batched simulation
	// runs (see sched.go): 0 means one worker per schedulable CPU
	// (runtime.GOMAXPROCS), 1 forces the fully serial path. Tables are
	// byte-identical for any value; Jobs only changes wall-clock.
	Jobs int
	// Banks sets sim.Config.Banks on every run: intra-run parallelism
	// width for the banked execution engine. Like Jobs it is a pure
	// scheduling knob — results are byte-identical for any value — so it
	// is excluded from memo keys. Jobs parallelises across runs, Banks
	// within one; they compose, but oversubscribing both on a small
	// machine wastes time in the banked engine's spin gate.
	Banks int
	// Trace optionally records per-cell wall-clock spans (and the memo's
	// compute-vs-recall provenance) into a span tracer. Nil — the default
	// — is fully off; tables are byte-identical either way, the tracer
	// only observes. Scheduling-only, like Jobs: not part of memo keys.
	Trace *trace.Tracer
	// Journal optionally streams cell lifecycle events (cell.start,
	// cell.finish, cell.failed — executions only, recalls are silent)
	// into an event journal, so a long lapexp sweep can be watched live.
	// Nil — the default — is fully off; observation-only like Trace, so
	// not part of memo keys.
	Journal *journal.Journal
	// SampleInterval > 0 switches eligible runs to sampled interval
	// simulation (internal/sample) with this window length in accesses
	// per core. Runs that sampling cannot represent — coherent, MOESI-
	// tracked, profiled, or warmup-bounded configurations — silently stay
	// exact, so one flag can accelerate a whole artifact sweep. Unlike
	// Jobs/Banks this changes results (they become estimates), so the
	// sampling knobs ARE part of memo keys: sampled and exact runs never
	// share cache entries.
	SampleInterval uint64
	// SampleClusters is the detailed-interval budget per sampled run
	// (0 = ~sqrt(intervals) automatically).
	SampleClusters int
	// SampleWarmup is the functional re-warm depth before each
	// representative interval.
	SampleWarmup int
	// Checkpoints optionally attaches a durable checkpoint store: exact
	// runs snapshot their machine state every CheckpointEvery accesses
	// and resume from the latest valid snapshot when the same cell is
	// re-run after a crash, and sampling profiles persist across
	// processes. Results are byte-identical with or without a store, so
	// like Jobs/Banks neither field is part of memo keys; checkpoint
	// durability failures degrade to cold starts, never run failures.
	Checkpoints *checkpoint.Store
	// CheckpointEvery is the snapshot spacing in accesses (summed over
	// cores) for checkpointed runs; 0 disables run snapshots even with a
	// store attached (profiles still persist).
	CheckpointEvery uint64
}

// Defaults returns the standard experiment scale.
func Defaults() Options {
	return Options{Accesses: 400_000, Seed: 2016, RandomMixes: 50, DuelPeriod: 250_000}
}

// Quick returns a reduced scale for smoke tests and benchmarks.
func Quick() Options {
	return Options{Accesses: 120_000, Seed: 2016, RandomMixes: 8, DuelPeriod: 100_000}
}

// Table is a printable experiment result.
type Table struct {
	// ID and Title identify the paper artifact ("Fig. 14", ...).
	ID    string
	Title string
	// Header and Rows are the column names and data.
	Header []string
	Rows   [][]string
	// Notes carries interpretation hints printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float compactly.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Policy factories. Each run needs a fresh controller because dueling
// state is per-run. Registered policies are constructed through the core
// registry — the same path the CLI and the API use — so the experiment
// tables cannot drift from the shipped dispatch; only the Fig. 25
// ablation stages (not real policies) are built directly.

// registered returns a fresh-controller factory for a registry policy.
func registered(name string, params core.PolicyParams) sim.Controller {
	if _, ok := core.LookupPolicy(name); !ok {
		panic(fmt.Sprintf("experiments: unknown policy %q", name))
	}
	return func() core.Controller {
		c, err := core.NewPolicy(name, params)
		if err != nil {
			panic(err)
		}
		return c
	}
}

// Noni returns the non-inclusive baseline factory.
func Noni() sim.Controller { return registered("non-inclusive", core.PolicyParams{}) }

// Ex returns the exclusive policy factory.
func Ex() sim.Controller { return registered("exclusive", core.PolicyParams{}) }

// Incl returns the inclusive policy factory.
func Incl() sim.Controller { return registered("inclusive", core.PolicyParams{}) }

// dueler is implemented by controllers with set-dueling state.
type dueler interface{ Duel() *cache.Duel }

// withPeriod rescales a controller's dueling window.
func withPeriod(c core.Controller, period uint64) core.Controller {
	if period > 0 {
		if d, ok := c.(dueler); ok {
			d.Duel().PeriodCycles = period
		}
	}
	return c
}

// Flex returns the FLEXclusion factory.
func Flex(opt Options) sim.Controller {
	return registered("FLEXclusion", core.PolicyParams{DuelPeriod: opt.DuelPeriod})
}

// Dswitch returns the Dswitch factory for the LLC technology in cfg: the
// duel weighs writes by the technology's write energy and misses by the
// fill read plus the marginal leakage burned over the exposed (post-MLP)
// portion of a memory access (sim.Config.PolicyParams).
func Dswitch(cfg sim.Config, opt Options) sim.Controller {
	return registered("Dswitch", cfg.PolicyParams(opt.DuelPeriod))
}

// LAP returns the full LAP factory.
func LAP(opt Options) sim.Controller {
	return registered("LAP", core.PolicyParams{DuelPeriod: opt.DuelPeriod})
}

// LAPLRU returns the Fig. 19 always-LRU replacement variant.
func LAPLRU() sim.Controller {
	return registered("LAP-LRU", core.PolicyParams{})
}

// LAPLoop returns the always-loop-aware variant.
func LAPLoop() sim.Controller {
	return registered("LAP-Loop", core.PolicyParams{})
}

// Lhybrid returns the hybrid data-placement policy factory.
func Lhybrid(opt Options) sim.Controller {
	return registered("Lhybrid", core.PolicyParams{DuelPeriod: opt.DuelPeriod})
}

// ReuseDetector returns the STT-RAM reuse-detection bypass competitor.
func ReuseDetector() sim.Controller {
	return registered("reuse-detector", core.PolicyParams{})
}

// RDCopyback returns the reuse-distance copy-back competitor.
func RDCopyback() sim.Controller {
	return registered("rd-copyback", core.PolicyParams{})
}

// HybridStage returns a Fig. 25 ablation stage factory.
func HybridStage(opt Options, winv, loopSTT, nloopSRAM bool) sim.Controller {
	return func() core.Controller {
		return withPeriod(core.NewHybridStage(winv, loopSTT, nloopSRAM), opt.DuelPeriod)
	}
}

// ratio guards against zero denominators.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
