package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtRRIPTable(t *testing.T) {
	tab := ExtRRIP(tiny())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want LRU and RRIP", len(tab.Rows))
	}
	if tab.Rows[0][0] != "LRU" || tab.Rows[1][0] != "RRIP" {
		t.Fatalf("row labels: %v / %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	// LAP must stay the best policy under both replacement families.
	for _, row := range tab.Rows {
		lapV := parseCell(t, row[4])
		for i := 1; i < 4; i++ {
			if lapV > parseCell(t, row[i])+0.02 {
				t.Errorf("%s: LAP (%.2f) worse than %s (%.2f)", row[0], lapV, tab.Header[i], parseCell(t, row[i]))
			}
		}
	}
}

func TestExtFlipNWriteTable(t *testing.T) {
	tab := ExtFlipNWrite(tiny())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// LAP saves energy in both write-energy models, more in the uncoded
	// one (FNW shrinks the pie LAP eats from).
	base := parsePct(t, tab.Rows[0][2])
	fnw := parsePct(t, tab.Rows[1][2])
	if base <= 0 || fnw <= 0 {
		t.Fatalf("LAP savings not positive: %v / %v", base, fnw)
	}
	if fnw >= base {
		t.Fatalf("FNW-coded savings %.1f%% >= uncoded %.1f%%", fnw, base)
	}
}

func TestExtSeedsTable(t *testing.T) {
	opt := tiny()
	opt.Accesses = 20_000
	tab := ExtSeeds(opt)
	if len(tab.Rows) != 11 { // 10 mixes + All
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[1], "±") || !strings.Contains(row[1], "n=") {
			t.Fatalf("%s: malformed summary %q", row[0], row[1])
		}
	}
}

func TestCSVExport(t *testing.T) {
	tab := Table1(tiny())
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Table I") || !strings.Contains(out, "0.436") {
		t.Fatalf("csv output:\n%s", out)
	}
	dir := t.TempDir()
	path, err := tab.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, ".csv") {
		t.Fatalf("path %q", path)
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	return parseCell(t, strings.TrimSuffix(s, "%"))
}

func TestExtDRAMOrderingStable(t *testing.T) {
	tab := ExtDRAM(tiny())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		lapV := parseCell(t, row[4])
		for i := 1; i < 4; i++ {
			if lapV > parseCell(t, row[i])+0.02 {
				t.Errorf("%s: LAP (%.2f) worse than %s", row[0], lapV, tab.Header[i])
			}
		}
	}
}

func TestExtPrefetchLAPStillWins(t *testing.T) {
	tab := ExtPrefetch(tiny())
	pfRow := tab.Rows[1]
	lapV := parseCell(t, pfRow[4])
	exV := parseCell(t, pfRow[1])
	if lapV >= exV {
		t.Fatalf("with prefetching, LAP (%.2f) not below exclusive (%.2f)", lapV, exV)
	}
	if lapV >= 1.0 {
		t.Fatalf("with prefetching, LAP (%.2f) not below non-inclusive", lapV)
	}
}

func TestExtDWBComposition(t *testing.T) {
	// Dead-write training needs LLC evictions, so this test needs traces
	// long enough to put the 8MB L3 under replacement pressure.
	opt := tiny()
	opt.Accesses = 120_000
	tab := ExtDWB(opt)
	avg := tab.Rows[len(tab.Rows)-1]
	lapV := parseCell(t, avg[2])
	lapDWB := parseCell(t, avg[3])
	if lapDWB > lapV+0.01 {
		t.Fatalf("LAP+DWB (%.2f) worse than LAP (%.2f): composition broke", lapDWB, lapV)
	}
	// Some writes must actually be bypassed on at least one mix.
	sawBypass := false
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if row[4] != "0" && row[4] != "" {
			sawBypass = true
		}
	}
	if !sawBypass {
		t.Fatal("no writes bypassed anywhere")
	}
}
