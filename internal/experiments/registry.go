package experiments

// Registry maps artifact IDs to generators at the given scale; Order
// returns the canonical presentation order (paper order).

// Generator produces one artifact's table.
type Generator func() *Table

// Registry returns all artifact generators.
func Registry(opt Options) map[string]Generator {
	return map[string]Generator{
		"table1": func() *Table { return Table1(opt) },
		"table2": func() *Table { return Table2(opt) },
		"table3": func() *Table { return Table3(opt) },
		"table4": func() *Table { return Table4(opt) },
		"fig2":   func() *Table { return Fig2(opt) },
		"fig4":   func() *Table { return Fig4(opt) },
		"fig6":   func() *Table { return Fig6(opt) },
		"fig12":  func() *Table { return Fig12(opt) },
		"fig13":  func() *Table { return Fig13(opt) },
		"fig14":  func() *Table { return Fig14(opt) },
		"fig15":  func() *Table { return Fig15(opt) },
		"fig16":  func() *Table { return Fig16(opt) },
		"fig17":  func() *Table { return Fig17(opt) },
		"fig18":  func() *Table { return Fig18(opt) },
		"fig19":  func() *Table { return Fig19(opt) },
		"fig20":  func() *Table { return Fig20(opt) },
		"fig21":  func() *Table { return Fig21(opt) },
		"fig22":  func() *Table { return Fig22(opt) },
		"fig23":  func() *Table { return Fig23(opt) },
		"fig24":  func() *Table { return Fig24(opt) },
		"fig25":  func() *Table { return Fig25(opt) },
		// Extensions beyond the paper's artifacts.
		"ext-rrip":  func() *Table { return ExtRRIP(opt) },
		"ext-fnw":   func() *Table { return ExtFlipNWrite(opt) },
		"ext-seeds": func() *Table { return ExtSeeds(opt) },
		"ext-dram":  func() *Table { return ExtDRAM(opt) },
		"ext-pf":    func() *Table { return ExtPrefetch(opt) },
		"ext-dwb":   func() *Table { return ExtDWB(opt) },
		"ext-stt":   func() *Table { return ExtSTT(opt) },
	}
}

// Order returns artifact IDs in the paper's presentation order.
func Order() []string {
	return []string{
		"table1", "table2", "table3", "table4",
		"fig2", "fig4", "fig6",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
		"ext-rrip", "ext-fnw", "ext-seeds", "ext-dram", "ext-pf", "ext-dwb",
		"ext-stt",
	}
}
