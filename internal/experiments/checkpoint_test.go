package experiments

// Checkpointed experiment runs must be invisible in the tables: with a
// store attached, runs snapshot and resume, but every artifact stays
// byte-identical to a storeless generation — and a second process (a
// fresh memo over a warm store) reproduces the same bytes from the
// persisted checkpoints.

import (
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestCheckpointedTablesAreByteIdentical(t *testing.T) {
	opt := Options{Accesses: 12_000, Seed: 2016, RandomMixes: 1, DuelPeriod: 40_000}
	id := "table3"

	generate := func(o Options) *Table {
		ResetMemo()
		return Registry(o)[id]()
	}
	ref := generate(opt)

	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := opt
	ck.Checkpoints = st
	ck.CheckpointEvery = 2000

	// Cold pass with the store attached: identical bytes, checkpoints on
	// disk afterwards.
	cold := generate(ck)
	if !reflect.DeepEqual(ref.Rows, cold.Rows) {
		t.Fatalf("checkpointed rows diverged from plain rows:\nplain: %v\nckpt:  %v", ref.Rows, cold.Rows)
	}
	if st.Metrics().Writes() == 0 {
		t.Fatal("checkpointed generation wrote no checkpoints")
	}

	// "Second process": fresh memo, fresh store handle, same directory.
	// Every run resumes from its final checkpoint and the table is still
	// byte-identical.
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck.Checkpoints = st2
	warm := generate(ck)
	if !reflect.DeepEqual(ref.Rows, warm.Rows) {
		t.Fatalf("resumed rows diverged from plain rows:\nplain: %v\nwarm:  %v", ref.Rows, warm.Rows)
	}
	if st2.Metrics().Restores() == 0 {
		t.Error("warm generation restored no checkpoints")
	}
	if st2.Metrics().IntervalsSaved() == 0 {
		t.Error("warm generation saved no intervals")
	}
}

func TestCheckpointKeysExcludedFromMemoKey(t *testing.T) {
	cfg := sim.DefaultConfig()
	mix := workload.TableIII()[0]
	a := runKey(cfg, "LAP", mix, false, Options{Accesses: 1000, Seed: 1})
	cfg.CheckpointEvery = 50_000
	b := runKey(cfg, "LAP", mix, false, Options{Accesses: 1000, Seed: 1})
	if a != b {
		t.Error("CheckpointEvery leaked into the memo key; checkpointed and plain runs will not coalesce")
	}
}
