package experiments

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Extensions beyond the paper's figures, exercising the composability the
// paper claims: Section IV notes LAP's placement principle "can also be
// combined with other replacement policies, such as RRIP", and Section
// VII claims orthogonality to bit-level write-reduction schemes such as
// Flip-N-Write [21].

// ExtRRIP compares the evaluated policies under LRU and SRRIP base
// replacement. The paper's claim: LAP's selective inclusion and loop-bit
// mechanism are replacement-family agnostic, so its savings persist under
// RRIP.
func ExtRRIP(opt Options) *Table {
	t := &Table{
		ID:     "Ext. RRIP",
		Title:  "Policy EPI vs non-inclusive under LRU and SRRIP base replacement (avg over Table III mixes)",
		Header: []string{"replacement", "Exclusive", "FLEXclusion", "Dswitch", "LAP"},
		Notes: []string{
			"extension of the paper's Section IV note: LAP composes with RRIP as with LRU",
		},
	}
	for _, repl := range []cache.Replacement{cache.ReplLRU, cache.ReplRRIP} {
		cfg := sim.DefaultConfig()
		cfg.L3Replacement = repl
		pols := evaluatedPolicies(cfg, opt)
		_, _, all := avgEPIOverMixes(cfg, opt, pols)
		row := []string{repl.String()}
		for _, p := range pols {
			row = append(row, f2(all[p.Name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ExtFlipNWrite estimates the composition of LAP with Flip-N-Write
// bit-level write reduction (Cho & Lee [21]): FNW halves the worst-case
// written bits per word, which on average scales the effective write
// energy by the measured flip fraction. The table reports LAP's EPI
// savings over non-inclusion with and without FNW-scaled write energy,
// demonstrating the orthogonality claim: both techniques' savings stack.
func ExtFlipNWrite(opt Options) *Table {
	t := &Table{
		ID:     "Ext. FNW",
		Title:  "LAP x Flip-N-Write composition: EPI savings over non-inclusive",
		Header: []string{"write-energy model", "Exclusive", "LAP"},
		Notes: []string{
			"FNW write-energy scale measured by internal/bitflip on synthetic payloads;",
			"the paper's Section VII orthogonality claim: inclusion-level and bit-level savings compose",
		},
	}
	scales := []struct {
		label string
		scale float64
	}{
		{"full-line writes (baseline)", 1.0},
		// Average Flip-N-Write energy scale for random payload updates,
		// cross-checked by bitflip's tests (~0.37 of a full-line write).
		{"Flip-N-Write coded", 0.37},
	}
	cfgFor := func(scale float64) sim.Config {
		cfg := sim.DefaultConfig()
		tech := cfg.L3Tech
		tech.WriteNJ *= scale
		return cfg.WithSTTL3(tech)
	}
	mixes := workload.TableIII()
	var batch []func()
	for _, m := range scales {
		batch = append(batch, mixRunBatch(cfgFor(m.scale), opt, mixes,
			noniPol(), exPol(), namedPolicy{"LAP", LAP(opt)})...)
	}
	warm(opt, batch)
	for _, m := range scales {
		cfg := cfgFor(m.scale)
		var exSave, lapSave float64
		for _, mix := range mixes {
			base := run(cfg, "noni", Noni(), mix, opt)
			ex := run(cfg, "ex", Ex(), mix, opt)
			lapRes := run(cfg, "LAP", LAP(opt), mix, opt)
			exSave += 1 - ratio(ex.EPI.Total(), base.EPI.Total())
			lapSave += 1 - ratio(lapRes.EPI.Total(), base.EPI.Total())
		}
		n := float64(len(mixes))
		t.AddRow(m.label, pct(exSave/n), pct(lapSave/n))
	}
	return t
}

// ExtDWB composes LAP with DASCA-style dead-write bypassing (Ahn et al.
// [34]), the second orthogonality claim of the paper's related-work
// section: "their deadblock bypassing technique ... can be combined with
// our approaches to further reduce the dynamic energy consumption".
func ExtDWB(opt Options) *Table {
	cfg := sim.DefaultConfig()
	pols := []namedPolicy{
		{"ex+DWB", func() core.Controller { return core.NewDeadWriteBypass(core.NewExclusive()) }},
		{"LAP", LAP(opt)},
		{"LAP+DWB", func() core.Controller {
			return core.NewDeadWriteBypass(withPeriod(core.NewLAP(), opt.DuelPeriod))
		}},
	}
	t := &Table{
		ID:     "Ext. DWB",
		Title:  "Dead-write bypass composed with LAP: EPI and bypassed writes vs non-inclusive",
		Header: []string{"mix", "ex+DWB", "LAP", "LAP+DWB", "bypasses (LAP+DWB)"},
		Notes: []string{
			"the paper's [34] orthogonality claim: dead-write prediction stacks on selective inclusion;",
			"DWB wraps victim insertions, so it helps exclusive-style flows (non-inclusive victims keep LLC duplicates)",
		},
	}
	sums := make([]float64, len(pols))
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, append([]namedPolicy{noniPol()}, pols...)...)
	for _, mix := range mixes {
		base := run(cfg, "noni", Noni(), mix, opt)
		row := []string{mix.Name}
		var bypasses uint64
		for i, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			rel := ratio(r.EPI.Total(), base.EPI.Total())
			sums[i] += rel
			row = append(row, f2(rel))
			if p.Name == "LAP+DWB" {
				bypasses = r.Met.BypassedWrites
			}
		}
		row = append(row, itoa(int(bypasses)))
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(mixes))))
	}
	avg = append(avg, "")
	t.Rows = append(t.Rows, avg)
	return t
}
