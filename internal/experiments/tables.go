package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1 reproduces the paper's Table I: 2MB cache-bank characteristics.
func Table1(Options) *Table {
	s, m := energy.SRAM(), energy.STTRAM()
	t := &Table{
		ID:     "Table I",
		Title:  "Characteristics of a 2MB SRAM and STT-RAM cache bank (22nm, 350K)",
		Header: []string{"parameter", "SRAM", "STT-RAM"},
	}
	t.AddRow("Area (mm2)", fmt.Sprintf("%.2f", s.AreaMM2), fmt.Sprintf("%.2f", m.AreaMM2))
	t.AddRow("Read latency (ns)", fmt.Sprintf("%.2f", s.ReadLatNS), fmt.Sprintf("%.2f", m.ReadLatNS))
	t.AddRow("Write latency (ns)", fmt.Sprintf("%.2f", s.WriteLatNS), fmt.Sprintf("%.2f", m.WriteLatNS))
	t.AddRow("Read energy (nJ/access)", fmt.Sprintf("%.3f", s.ReadNJ), fmt.Sprintf("%.3f", m.ReadNJ))
	t.AddRow("Write energy (nJ/access)", fmt.Sprintf("%.3f", s.WriteNJ), fmt.Sprintf("%.3f", m.WriteNJ))
	t.AddRow("Leakage power (mW)", fmt.Sprintf("%.3f", s.LeakMWPerBank), fmt.Sprintf("%.3f", m.LeakMWPerBank))
	return t
}

// Table2 reproduces the paper's Table II: the simulated system.
func Table2(Options) *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Table II",
		Title:  "System configuration",
		Header: []string{"component", "configuration"},
	}
	t.AddRow("Cores", fmt.Sprintf("%d x %.0fGHz, OoO (BaseCPI %.2f, MLP %.0f)", cfg.Cores, cfg.ClockHz/1e9, cfg.BaseCPI, cfg.MLP))
	t.AddRow("L1 D", fmt.Sprintf("private %dKB per core, %d-way LRU, %dB blocks, %d-cycle", cfg.L1SizeBytes>>10, cfg.L1Ways, cfg.BlockBytes, cfg.L1Cycles))
	t.AddRow("L2", fmt.Sprintf("private %dKB per core, %d-way LRU, write-back, %d-cycle", cfg.L2SizeBytes>>10, cfg.L2Ways, cfg.L2Cycles))
	t.AddRow("L3", fmt.Sprintf("shared %dMB, %d-way, %d banks, write-back write-allocate", cfg.L3SizeBytes>>20, cfg.L3Ways, cfg.L3Banks))
	t.AddRow("L3 STT-RAM", fmt.Sprintf("%d-cycle read, %d-cycle write; r|w %.3f|%.3f nJ; leakage %.2f mW", cfg.STTReadCycles, cfg.STTWriteCycles, cfg.STTTech.ReadNJ, cfg.STTTech.WriteNJ, 4*cfg.STTTech.LeakMWPerBank))
	t.AddRow("L3 SRAM", fmt.Sprintf("%d-cycle read, %d-cycle write; r|w %.3f|%.3f nJ; leakage %.2f mW", cfg.SRAMReadCycles, cfg.SRAMWriteCycles, cfg.SRAMTech.ReadNJ, cfg.SRAMTech.WriteNJ, 4*cfg.SRAMTech.LeakMWPerBank))
	t.AddRow("L3 tag (SRAM)", fmt.Sprintf("leakage %.2f mW, dynamic %.3f nJ/access", energy.DefaultTag().LeakMW, energy.DefaultTag().DynNJ))
	t.AddRow("Hybrid L3", "2MB SRAM (4-way) + 6MB STT-RAM (12-way)")
	t.AddRow("Memory", fmt.Sprintf("%d-cycle (DDR3-1600 class)", cfg.MemCycles))
	return t
}

// Table3 reproduces the paper's Table III: the selected workload mixes,
// annotated with our measured write ratios.
func Table3(opt Options) *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "Table III",
		Title:  "Selected SPEC CPU2006 workload mixes (WL/WH: fewer/more writes under exclusion)",
		Header: []string{"mix", "benchmarks", "measured Wrel"},
	}
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, noniPol(), exPol())
	for _, mix := range mixes {
		b := baselines(cfg, mix, opt)
		t.AddRow(mix.Name, strings.Join(mix.Members, ","), f2(b.Wrel()))
	}
	return t
}

// Table4 reproduces the paper's Table IV: the evaluated policies.
func Table4(Options) *Table {
	t := &Table{
		ID:     "Table IV",
		Title:  "Evaluated policies",
		Header: []string{"policy", "description"},
	}
	// The rows are the policy registry itself: a policy registered in
	// internal/core appears here with no table edit.
	for _, info := range core.Policies() {
		t.AddRow(info.Name, info.Description)
	}
	return t
}
