package experiments

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtSTT runs the ROADMAP's STT-RAM competitor policies head-to-head
// against LAP on the Table II STT-RAM LLC: the reuse-detection fill
// bypass (arXiv 2402.00533) and the reuse-distance-gated copy-back of
// clean lines (arXiv 2105.14442). Both attack the same write-energy
// problem LAP does, from opposite ends — the reuse detector filters
// fills entering a non-inclusive LLC, the copy-back filter drops clean
// victims leaving an exclusive one — so the interesting comparison is
// EPI and miss rate per mix, both normalised to non-inclusive.
func ExtSTT(opt Options) *Table {
	cfg := sim.DefaultConfig()
	pols := []namedPolicy{
		{"LAP", LAP(opt)},
		{"reuse-detector", ReuseDetector()},
		{"rd-copyback", RDCopyback()},
	}
	t := &Table{
		ID:    "Ext. STT",
		Title: "STT-RAM competitor policies vs LAP: EPI and MPKI normalised to non-inclusive",
		Header: []string{"mix", "LAP", "reuse-det", "rd-copyback",
			"LAP miss", "reuse-det miss", "rd-copyback miss"},
		Notes: []string{
			"reuse-detector gates fills on a second LLC touch (write-filter on the fill path);",
			"rd-copyback drops clean copy-backs whose reuse distance exceeds the LLC capacity (write-filter on the victim path);",
			"both trade extra misses for fewer STT-RAM writes — LAP's loop-block signal keeps the miss side flat",
		},
	}
	epiSums := make([]float64, len(pols))
	missSums := make([]float64, len(pols))
	mixes := workload.TableIII()
	warmMixRuns(cfg, opt, mixes, append([]namedPolicy{noniPol()}, pols...)...)
	for _, mix := range mixes {
		base := run(cfg, "noni", Noni(), mix, opt)
		row := []string{mix.Name}
		miss := make([]string, 0, len(pols))
		for i, p := range pols {
			r := run(cfg, p.Name, p.New, mix, opt)
			epi := ratio(r.EPI.Total(), base.EPI.Total())
			mpki := ratio(r.Met.MPKI(), base.Met.MPKI())
			epiSums[i] += epi
			missSums[i] += mpki
			row = append(row, f2(epi))
			miss = append(miss, f2(mpki))
		}
		t.Rows = append(t.Rows, append(row, miss...))
	}
	avg := []string{"Avg"}
	for _, s := range epiSums {
		avg = append(avg, f2(s/float64(len(mixes))))
	}
	for _, s := range missSums {
		avg = append(avg, f2(s/float64(len(mixes))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}
